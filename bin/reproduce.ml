(* Regenerates the paper's Table I and the textual claims of §IV:
   per ITC'02 SoC, the RSN characteristics, the accessibility of the
   SIB-based and fault-tolerant RSNs under all single stuck-at faults, the
   area overhead ratios, and the augmentation solver statistics.

   See EXPERIMENTS.md for the recorded paper-vs-measured comparison. *)

module Itc02 = Ftrsn_itc02.Itc02
module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Pipeline = Ftrsn_core.Pipeline
module Metric = Ftrsn_core.Metric
module Area = Ftrsn_core.Area
module Augment = Ftrsn_core.Augment
module Engine = Ftrsn_access.Engine
module Retarget = Ftrsn_access.Retarget
module Query = Ftrsn_service.Query
module Response = Ftrsn_service.Response
module Pool = Ftrsn_service.Pool
module Exec = Ftrsn_service.Exec
module Json = Ftrsn_service.Json

(* The accessibility sweeps run through the service query layer against a
   process-wide warm pool: one SoC's synthesis, structural context and
   collapsed fault universe are built once and shared by every part that
   touches that network (sib-access, ft-access, double-faults), exactly
   as a `ftrsn-tool serve` daemon would share them between requests. *)
let pool = lazy (Pool.create ())

let soc_spec ?(ft = false) soc =
  { Query.ns_source = `Itc02 soc.Itc02.soc_name; Query.ns_ft = ft }

let net_of spec =
  match Pool.acquire (Lazy.force pool) spec with
  | Ok e ->
      let net = Pool.net e in
      Pool.release (Lazy.force pool) e;
      net
  | Error msg ->
      prerr_endline msg;
      exit 1

(* Runs one metric-class query; certification failures abort the run
   with the documented exit code. *)
let metric_query q =
  match Exec.run (Lazy.force pool) q with
  | Response.Metric_r m -> Response.result_of_metric_r m
  | Response.Error_r (Response.Cert_failed, msg) ->
      Printf.eprintf "certification: FAILED: %s\n" msg;
      exit 3
  | Response.Error_r (_, msg) ->
      prerr_endline msg;
      exit 1
  | _ ->
      prerr_endline "unexpected response payload";
      exit 1

type part =
  | Characteristics
  | Sib_access
  | Ft_access
  | Area_overhead
  | Ilp_stats
  | Latency
  | Ablation
  | Double_faults
  | Fault_models
  | Coverage
  | Csv
  | All

let part_of_string = function
  | "characteristics" -> Ok Characteristics
  | "sib-access" -> Ok Sib_access
  | "ft-access" -> Ok Ft_access
  | "area" -> Ok Area_overhead
  | "ilp-stats" -> Ok Ilp_stats
  | "latency" -> Ok Latency
  | "ablation" -> Ok Ablation
  | "double-faults" -> Ok Double_faults
  | "fault-models" -> Ok Fault_models
  | "coverage" -> Ok Coverage
  | "csv" -> Ok Csv
  | "all" -> Ok All
  | s -> Error (`Msg ("unknown part: " ^ s))

let soc_list socs =
  match socs with
  | [] -> Itc02.all
  | names ->
      List.map
        (fun n ->
          match Itc02.find n with
          | Some s -> s
          | None ->
              Printf.eprintf "unknown SoC: %s (known: %s)\n" n
                (String.concat ", "
                   (List.map (fun s -> s.Itc02.soc_name) Itc02.all));
              exit 1)
        names

let characteristics socs =
  Printf.printf "%-9s %8s %7s %6s %9s %7s\n" "SoC" "modules" "levels" "mux"
    "segments" "bits";
  List.iter
    (fun soc ->
      let net = Itc02.rsn soc in
      Printf.printf "%-9s %8d %7d %6d %9d %7d\n" soc.Itc02.soc_name
        soc.Itc02.soc_modules
        (Netlist.max_hier net)
        (Netlist.num_muxes net)
        (Netlist.num_segments net)
        (Netlist.total_bits net))
    socs

let metric_row name m =
  let red =
    match m.Metric.reduction with
    | None -> ""
    | Some r ->
        Printf.sprintf " -> %d classes, cone avg %.0f/%d segs"
          r.Metric.r_classes
          (if r.Metric.r_classes = 0 then 0.0
           else
             float_of_int r.Metric.r_cone_sum /. float_of_int r.Metric.r_classes)
          r.Metric.r_cone_max
  in
  let search =
    match m.Metric.solver with
    | Some s when s.Metric.s_learnt_lits > 0 ->
        Printf.sprintf "; %d restarts, %.0f%% lits minimized, %d reductions"
          s.Metric.s_restarts
          (100.0
          *. float_of_int s.Metric.s_minimized_lits
          /. float_of_int s.Metric.s_learnt_lits)
          s.Metric.s_reductions
    | _ -> ""
  in
  let simp =
    match m.Metric.solver with
    | Some s when s.Metric.s_simp_passes > 0 ->
        Printf.sprintf
          "; simplify: %d passes, %d subsumed, %d elim, %d viv lits"
          s.Metric.s_simp_passes s.Metric.s_subsumed s.Metric.s_eliminated_vars
          s.Metric.s_vivified_lits
    | _ -> ""
  in
  let cert =
    match m.Metric.solver with
    | Some s when s.Metric.s_cert_unsat > 0 || s.Metric.s_cert_lemmas > 0 ->
        Printf.sprintf "; certified: %d UNSAT, %d lemmas, %.2fs"
          s.Metric.s_cert_unsat s.Metric.s_cert_lemmas s.Metric.s_cert_time
    | _ -> ""
  in
  Printf.printf "%-9s %10.2f %9.3f %12.3f %11.3f   (%d faults%s%s%s%s)\n" name
    m.Metric.worst_bits m.Metric.avg_bits m.Metric.worst_segments
    m.Metric.avg_segments m.Metric.faults red search simp cert

let access_header () =
  Printf.printf "%-9s %10s %9s %12s %11s\n" "SoC" "bits-worst" "bits-avg"
    "segs-worst" "segs-avg"

(* [certify] switches the accessibility sweeps to the BMC engine in
   certified mode: the solver streams a DRUP proof to an independent RUP
   checker and every UNSAT verdict's final clause is verified inline;
   Bmc.Session.Certification_failed aborts the run (exit 3). *)

let access_query ?sample ~certify ~inprocess spec =
  if certify then
    Query.Certify
      {
        Query.cq_net = spec;
        cq_sample = sample;
        cq_domains = 1;
        cq_pairs = false;
        cq_inprocess = inprocess;
        cq_model = Fault.Stuck;
        cq_with_stats = true;
      }
  else
    Query.Metric
      {
        Query.mq_net = spec;
        mq_sample = sample;
        mq_domains = 1;
        mq_engine = `Structural;
        mq_reduce = true;
        mq_inprocess = inprocess;
        mq_model = Fault.Stuck;
        mq_with_stats = true;
      }

let access_sweep ?sample ~certify ~inprocess ~ft socs =
  List.map
    (fun soc ->
      let m =
        metric_query
          (access_query ?sample ~certify ~inprocess (soc_spec ~ft soc))
      in
      (soc.Itc02.soc_name, m))
    socs

(* One machine-readable row per SoC: the Table I accessibility numbers
   plus the reduction and lane-batch counters of the structural sweep
   that produced them (absent under --certify, which runs the BMC
   engine and has no lane batches). *)
let json_access_row (name, m) =
  let base =
    [
      ("soc", Json.Str name);
      ("worst_bits", Json.Float m.Metric.worst_bits);
      ("avg_bits", Json.Float m.Metric.avg_bits);
      ("worst_segments", Json.Float m.Metric.worst_segments);
      ("avg_segments", Json.Float m.Metric.avg_segments);
      ("faults", Json.Int m.Metric.faults);
      ("weight", Json.Int m.Metric.total_weight);
    ]
  in
  let reduction =
    match m.Metric.reduction with
    | None -> []
    | Some r ->
        [
          ( "reduction",
            Json.Obj
              [
                ("universe", Json.Int r.Metric.r_universe);
                ("classes", Json.Int r.Metric.r_classes);
                ("benign", Json.Int r.Metric.r_benign);
              ] );
        ]
  in
  let lanes =
    match m.Metric.lanes with
    | None -> []
    | Some l ->
        [
          ( "lanes",
            Json.Obj
              [
                ("batches", Json.Int l.Engine.ls_batches);
                ("lanes", Json.Int l.Engine.ls_lanes);
                ("masked", Json.Int l.Engine.ls_masked);
                ("fast", Json.Int l.Engine.ls_fast);
                ("rounds", Json.Int l.Engine.ls_rounds);
              ] );
        ]
  in
  let simp =
    match m.Metric.solver with
    | Some s when s.Metric.s_simp_passes > 0 ->
        [
          ( "simp",
            Json.Obj
              [
                ("passes", Json.Int s.Metric.s_simp_passes);
                ("subsumed", Json.Int s.Metric.s_subsumed);
                ("strengthened", Json.Int s.Metric.s_strengthened_lits);
                ("eliminated", Json.Int s.Metric.s_eliminated_vars);
                ("vivified", Json.Int s.Metric.s_vivified_lits);
              ] );
        ]
    | _ -> []
  in
  Json.Obj (base @ reduction @ lanes @ simp)

let sib_access ?sample ?(certify = false) ?(inprocess = true) socs =
  access_header ();
  List.iter
    (fun (name, m) -> metric_row name m)
    (access_sweep ?sample ~certify ~inprocess ~ft:false socs)

let ft_access ?sample ?(certify = false) ?(inprocess = true) socs =
  access_header ();
  List.iter
    (fun (name, m) -> metric_row name m)
    (access_sweep ?sample ~certify ~inprocess ~ft:true socs)

let area socs =
  Printf.printf "%-9s %6s %6s %6s %6s\n" "SoC" "mux" "bits" "nets" "area";
  let weighted = ref 0.0 and weight = ref 0.0 in
  List.iter
    (fun soc ->
      let net = Itc02.rsn soc in
      let r = Pipeline.synthesize net in
      let rt = r.Pipeline.area_ratios in
      weighted :=
        !weighted +. (float_of_int soc.Itc02.soc_bits *. (rt.Area.r_area -. 1.));
      weight := !weight +. float_of_int soc.Itc02.soc_bits;
      Printf.printf "%-9s %6.2f %6.2f %6.2f %6.2f\n" soc.Itc02.soc_name
        rt.Area.r_mux rt.Area.r_bits rt.Area.r_nets rt.Area.r_area)
    socs;
  Printf.printf
    "weighted average area increase (by scan bits): %.1f%% (paper: 8.2%%)\n"
    (100.0 *. !weighted /. !weight)

let ilp_stats socs =
  Printf.printf "%-9s %7s %9s %7s %7s %7s %9s\n" "SoC" "solver" "new-edges"
    "cost" "nodes" "cuts" "time(s)";
  List.iter
    (fun soc ->
      let net = Itc02.rsn soc in
      let p = Augment.of_netlist net in
      let t0 = Unix.gettimeofday () in
      let sol = Augment.solve p in
      let dt = Unix.gettimeofday () -. t0 in
      (match Augment.verify p sol.Augment.new_edges with
      | Ok () -> ()
      | Error e -> failwith ("augmentation verification failed: " ^ e));
      Printf.printf "%-9s %7s %9d %7d %7d %7d %9.2f\n" soc.Itc02.soc_name
        (match sol.Augment.solver with `Ilp -> "ilp" | `Flow -> "flow")
        (List.length sol.Augment.new_edges)
        sol.Augment.cost sol.Augment.ilp_nodes sol.Augment.ilp_cuts dt)
    socs

let latency socs =
  (* §IV intro: the number of cycles to access a segment on an active path
     is not increased by the synthesis — fault-free retargeting uses the
     same paths (same segments, same CSU count) in both RSNs. *)
  Printf.printf "%-9s %9s %12s %12s %9s\n" "SoC" "segments" "same-path"
    "same-csus" "checked";
  List.iter
    (fun soc ->
      let net = Itc02.rsn soc in
      let r = Pipeline.synthesize net in
      let ctx_o = Engine.make_ctx net in
      let ctx_f = Engine.make_ctx r.Pipeline.ft in
      let same_path = ref 0 and same_csus = ref 0 and checked = ref 0 in
      let step = max 1 (Netlist.num_segments net / 40) in
      let s = ref 0 in
      while !s < Netlist.num_segments net do
        (match
           ( Retarget.plan_write ctx_o ~target:!s (),
             Retarget.plan_write ctx_f ~target:!s () )
         with
        | Some po, Some pf ->
            incr checked;
            if po.Retarget.access_path = pf.Retarget.access_path then
              incr same_path;
            if List.length po.Retarget.steps = List.length pf.Retarget.steps
            then incr same_csus
        | _ -> failwith "fault-free plan missing");
        s := !s + step
      done;
      Printf.printf "%-9s %9d %12d %12d %9d\n" soc.Itc02.soc_name
        (Netlist.num_segments net)
        !same_path !same_csus !checked)
    socs

module Synthesis = Ftrsn_core.Synthesis

(* Contribution of each hardening mechanism (DESIGN.md §6): re-synthesize
   with one mechanism disabled and compare the metric and area. *)
let ablation ?sample socs =
  let variants =
    let d = Synthesis.default_options in
    [
      ("full", d);
      ("no-tmr", { d with Synthesis.opt_tmr = false });
      ("no-dual-ports", { d with Synthesis.opt_dual_ports = false });
      ("no-select-hardening", { d with Synthesis.opt_select_hardening = false });
      ("no-rescue-lines", { d with Synthesis.opt_rescue_lines = false });
      ("no-dual-host", { d with Synthesis.opt_dual_host = false });
      ( "graph-only",
        {
          Synthesis.opt_tmr = false;
          opt_dual_ports = false;
          opt_select_hardening = false;
          opt_rescue_lines = false;
          opt_dual_host = false;
        } );
    ]
  in
  List.iter
    (fun soc ->
      Printf.printf "%s:
" soc.Itc02.soc_name;
      Printf.printf "  %-22s %10s %9s %7s
" "variant" "segs-worst" "segs-avg"
        "area";
      let net = Itc02.rsn soc in
      List.iter
        (fun (name, options) ->
          let r = Pipeline.synthesize ~options net in
          let m = Metric.evaluate ?sample r.Pipeline.ft in
          Printf.printf "  %-22s %10.3f %9.4f %7.2f
%!" name
            m.Metric.worst_segments m.Metric.avg_segments
            r.Pipeline.area_ratios.Area.r_area)
        variants)
    socs

(* Double simultaneous faults: how gracefully does the single-fault
   design degrade?  (Extension beyond the paper's scope.)

   Fault universes up to this size get the EXACT full pair sweep via the
   class-pair reduction; beyond it the legacy deterministic pair
   subsample is the fallback.  Only p93791's original network and the FT
   networks of d695, t512505, p22081 and p93791 are over the line. *)
let exhaustive_pair_limit = 13_000

let double_fault_sweep ?sample socs =
  List.concat_map
    (fun soc ->
      let run name spec =
        let n = List.length (Ftrsn_fault.Fault.universe (net_of spec)) in
        let exact = sample = None && n <= exhaustive_pair_limit in
        let pair_sample =
          if exact then None
          else
            (* keep roughly 10k pairs *)
            Some (Option.value sample ~default:(max 37 (n * n / 2 / 10_000)))
        in
        let m =
          metric_query
            (Query.Pairs
               {
                 Query.pq_net = spec;
                 pq_fault_sample = None;
                 pq_pair_sample = pair_sample;
                 pq_domains = 1;
                 pq_engine = `Structural;
                 pq_reduce = true;
                 pq_inprocess = true;
                 pq_lanes = true;
                 pq_model = Fault.Stuck;
                 pq_with_stats = true;
               })
        in
        (soc.Itc02.soc_name, name, exact, m)
      in
      [ run "original" (soc_spec soc); run "ft" (soc_spec ~ft:true soc) ])
    socs

let double_faults ?sample socs =
  Printf.printf "%-9s %9s %8s %12s %11s %12s %11s\n" "SoC" "network" "mode"
    "segs-worst" "segs-avg" "bits-worst" "bits-avg";
  List.iter
    (fun (soc_name, name, exact, m) ->
      Printf.printf "%-9s %9s %8s %12.3f %11.4f %12.3f %11.4f\n%!" soc_name
        name
        (if exact then "exact" else "sampled")
        m.Metric.worst_segments m.Metric.avg_segments m.Metric.worst_bits
        m.Metric.avg_bits;
      (match m.Metric.pairs with
      | None -> ()
      | Some p ->
          Printf.printf
            "%-9s %9s          %d classes -> %d class pairs: %d diagonal, \
             %d disjoint (%.1f%%), %d stacked deltas\n%!"
            "" ""
            p.Metric.p_classes p.Metric.p_class_pairs p.Metric.p_diagonal
            p.Metric.p_disjoint
            (100.0
            *. float_of_int p.Metric.p_disjoint
            /. float_of_int (max 1 p.Metric.p_class_pairs))
            p.Metric.p_stacked);
      match m.Metric.pair_lanes with
      | None -> ()
      | Some l ->
          Printf.printf
            "%-9s %9s          pair lanes: %d batches x %d lanes, %d fast, \
             %d masked, %d rounds\n%!"
            "" "" l.Engine.ls_batches l.Engine.ls_lanes l.Engine.ls_fast
            l.Engine.ls_masked l.Engine.ls_rounds)
    (double_fault_sweep ?sample socs)

(* Accessibility under the non-stuck fault universes (extension beyond
   the paper): per SoC and network, one metric row per fault model with
   its universe / class-collapse counters.  All three models ride the
   same reduction machinery as the stuck-at sweep, warm-pooled per
   network, so this part exercises the per-model keying end to end. *)
let fault_models ?sample socs =
  Printf.printf "%-9s %9s %-9s %12s %11s %12s %11s %9s %8s\n" "SoC" "network"
    "model" "segs-worst" "segs-avg" "bits-worst" "bits-avg" "universe"
    "classes";
  List.iter
    (fun soc ->
      let run name spec =
        List.iter
          (fun model ->
            let m =
              metric_query
                (Query.Metric
                   {
                     Query.mq_net = spec;
                     mq_sample = sample;
                     mq_domains = 1;
                     mq_engine = `Structural;
                     mq_reduce = true;
                     mq_inprocess = true;
                     mq_model = model;
                     mq_with_stats = true;
                   })
            in
            let universe, classes =
              match m.Metric.reduction with
              | Some r -> (r.Metric.r_universe, r.Metric.r_classes)
              | None -> (m.Metric.faults, 0)
            in
            Printf.printf
              "%-9s %9s %-9s %12.3f %11.4f %12.3f %11.4f %9d %8d\n%!"
              soc.Itc02.soc_name name
              (Fault.model_to_string model)
              m.Metric.worst_segments m.Metric.avg_segments
              m.Metric.worst_bits m.Metric.avg_bits universe classes)
          Fault.all_models
      in
      run "original" (soc_spec soc);
      run "ft" (soc_spec ~ft:true soc))
    socs

module Report = Ftrsn_core.Report

let csv ?sample socs =
  print_endline Report.csv_header;
  List.iter
    (fun soc ->
      let net = Itc02.rsn soc in
      print_endline
        (Report.to_csv (Report.row ?sample ~name:soc.Itc02.soc_name net));
      flush stdout)
    socs

(* Fault coverage / diagnostic resolution of the built-in stimulus. *)
let coverage socs =
  Printf.printf "%-9s %9s %10s %9s %9s\n" "SoC" "network" "coverage"
    "classes" "faults";
  List.iter
    (fun soc ->
      let net = Itc02.rsn soc in
      let n = List.length (Ftrsn_fault.Fault.universe net) in
      Printf.printf "%-9s %9s %10.3f %9d %9d\n%!" soc.Itc02.soc_name
        "original"
        (Ftrsn_access.Diagnose.coverage net)
        (Ftrsn_access.Diagnose.distinguishable_classes net)
        n)
    socs

(* One machine-readable row per (SoC, network) of the double-fault
   sweep: the metric values plus the pair-dispatch and pair-lane
   counters (the latter mirror [json_access_row]'s "lanes" object, but
   count the lane batches rooted at stacked secondary baselines). *)
let json_double_fault_row (soc, name, exact, m) =
  let base =
    [
      ("soc", Json.Str soc);
      ("network", Json.Str name);
      ("mode", Json.Str (if exact then "exact" else "sampled"));
      ("worst_bits", Json.Float m.Metric.worst_bits);
      ("avg_bits", Json.Float m.Metric.avg_bits);
      ("worst_segments", Json.Float m.Metric.worst_segments);
      ("avg_segments", Json.Float m.Metric.avg_segments);
      ("faults", Json.Int m.Metric.faults);
      ("weight", Json.Int m.Metric.total_weight);
    ]
  in
  let pairs =
    match m.Metric.pairs with
    | None -> []
    | Some p ->
        [
          ( "pairs",
            Json.Obj
              [
                ("classes", Json.Int p.Metric.p_classes);
                ("class_pairs", Json.Int p.Metric.p_class_pairs);
                ("diagonal", Json.Int p.Metric.p_diagonal);
                ("disjoint", Json.Int p.Metric.p_disjoint);
                ("stacked", Json.Int p.Metric.p_stacked);
              ] );
        ]
  in
  let pair_lanes =
    match m.Metric.pair_lanes with
    | None -> []
    | Some l ->
        [
          ( "pair_lanes",
            Json.Obj
              [
                ("batches", Json.Int l.Engine.ls_batches);
                ("lanes", Json.Int l.Engine.ls_lanes);
                ("masked", Json.Int l.Engine.ls_masked);
                ("fast", Json.Int l.Engine.ls_fast);
                ("rounds", Json.Int l.Engine.ls_rounds);
              ] );
        ]
  in
  Json.Obj (base @ pairs @ pair_lanes)

(* --json output: one object, one array of per-SoC rows per access part
   (or per double-fault sweep).  Only these parts have a
   machine-readable form — they are what CI and EXPERIMENTS.md consume;
   the other parts stay human. *)
let run_json part socs sample certify inprocess =
  if part = Double_faults then begin
    let rows = List.map json_double_fault_row (double_fault_sweep ?sample socs) in
    print_endline
      (Json.to_string (Json.Obj [ ("double_faults", Json.List rows) ]))
  end
  else begin
    let parts =
      (match part with Sib_access | All -> [ ("sib_access", false) ] | _ -> [])
      @ match part with Ft_access | All -> [ ("ft_access", true) ] | _ -> []
    in
    if parts = [] then begin
      prerr_endline
        "--json supports only --part sib-access, ft-access, double-faults or \
         all";
      exit 1
    end;
    let doc =
      List.map
        (fun (key, ft) ->
          ( key,
            Json.List
              (List.map json_access_row
                 (access_sweep ?sample ~certify ~inprocess ~ft socs))
          ))
        parts
    in
    print_endline (Json.to_string (Json.Obj doc))
  end

let run part socs sample certify inprocess =
  let socs = soc_list socs in
  let banner title =
    Printf.printf "\n== %s ==\n" title
  in
  (match part with
  | Characteristics | All ->
      banner "Table I: RSN characteristics";
      characteristics socs
  | _ -> ());
  (match part with
  | Sib_access | All ->
      banner "Table I: accessibility in SIB-based RSNs";
      sib_access ?sample ~certify ~inprocess socs
  | _ -> ());
  (match part with
  | Ft_access | All ->
      banner "Table I: accessibility in fault-tolerant RSNs";
      ft_access ?sample ~certify ~inprocess socs
  | _ -> ());
  (match part with
  | Area_overhead | All ->
      banner "Table I: RSN area overhead (fault-tolerant / original)";
      area socs
  | _ -> ());
  (match part with
  | Ilp_stats | All ->
      banner "Augmentation solver statistics (paper <8 min for p93791)";
      ilp_stats socs
  | _ -> ());
  (match part with
  | Latency | All ->
      banner "Access latency preservation (paper SIV intro)";
      latency socs
  | _ -> ());
  (match part with
  | Ablation ->
      banner "Hardening ablation (DESIGN.md par. 6)";
      ablation ?sample socs
  | _ -> ());
  (match part with
  | Double_faults ->
      banner "Double simultaneous faults (extension beyond the paper)";
      double_faults ?sample socs
  | _ -> ());
  (match part with
  | Fault_models ->
      banner "Accessibility per fault model (extension beyond the paper)";
      fault_models ?sample socs
  | _ -> ());
  (match part with
  | Coverage ->
      banner "Diagnostic stimulus fault coverage (extension)";
      coverage socs
  | _ -> ());
  (match part with Csv -> csv ?sample socs | _ -> ());
  if certify then
    print_endline "\ncertification: OK (all UNSAT verdicts RUP-checked)"

let run part socs sample certify no_inprocess json =
  let inprocess = not no_inprocess in
  try
    if json then run_json part (soc_list socs) sample certify inprocess
    else run part socs sample certify inprocess
  with Ftrsn_bmc.Bmc.Session.Certification_failed msg ->
    Printf.eprintf "certification: FAILED: %s\n" msg;
    exit 3

let () =
  let open Cmdliner in
  let part_conv =
    Arg.conv ~docv:"PART" (part_of_string, fun fmt _ -> Fmt.string fmt "part")
  in
  let part =
    Arg.(value & opt part_conv All & info [ "part" ] ~doc:"Which experiment part to run: characteristics, sib-access, ft-access, area, ilp-stats, latency, ablation, double-faults, fault-models, coverage, csv or all.")
  in
  let socs =
    Arg.(value & opt_all string [] & info [ "soc" ] ~doc:"Restrict to a SoC (repeatable), e.g. --soc u226 --soc p93791.")
  in
  let sample =
    Arg.(value & opt (some int) None & info [ "sample" ] ~doc:"Evaluate every k-th fault only (primary port faults always kept).")
  in
  let certify =
    Arg.(value & flag & info [ "certify" ] ~doc:"Run the accessibility sweeps (sib-access, ft-access) through the BMC engine in certified mode: an independent RUP checker verifies the solver's proof of every UNSAT verdict inline.  Exits 3 on any rejected proof step.")
  in
  let no_inprocess =
    Arg.(value & flag & info [ "no-inprocess" ] ~doc:"Disable SAT inprocessing (subsumption, vivification, bounded variable elimination) on the BMC sessions of certified sweeps; verdicts are identical, only slower.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the accessibility sweeps (sib-access, ft-access) or the double-fault sweep as one JSON object instead of tables; each per-SoC row carries the metric values plus the reduction and lane-batch counters of the structural sweep (pair-dispatch and pair-lane counters for double-faults).  Only valid with --part sib-access, ft-access, double-faults or all.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "reproduce" ~doc:"Regenerate Table I of 'Synthesis of Fault-Tolerant Reconfigurable Scan Networks' (DATE'20)")
      Term.(const run $ part $ socs $ sample $ certify $ no_inprocess $ json)
  in
  exit (Cmd.eval cmd)
