(* ftrsn-tool: command-line utilities over RSN netlists.

   Every subcommand (except the graphviz export) is a thin front-end over
   the service query layer (Ftrsn_service): it builds a typed Query.t,
   executes it against a process-local warm pool and renders the typed
   Response.t — exactly the code path a long-running `serve` daemon runs,
   so `--json` output here is byte-identical to the corresponding serve
   response (CI diffs the two).

   Subcommands:
     stats      — netlist characteristics (netinfo query)
     dot        — emit the dataflow graph as Graphviz DOT
     harden     — fault-tolerant synthesis; prints the hardened netlist
     metric     — the fault-tolerance metric (single faults or pairs)
     certify    — the metric through the certified BMC engine
     access     — plan an access to a segment (optionally under a fault)
     diagnose   — list faults matching an observed signature
     serve      — newline-delimited JSON query loop (stdio or socket)

   Netlists are given as file paths (.icl parsed as ICL, anything else as
   the flat text format) or as "itc02:NAME" for a benchmark SoC.

   Exit codes: 0 success, 1 bad request (parse/usage/unknown name),
   2 target inaccessible, 3 certification failed, 4 admission/deadline,
   5 unsupported query (e.g. --pairs under the transient model). *)

module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Dot = Ftrsn_topo.Dot
module Augment = Ftrsn_core.Augment
module Metric = Ftrsn_core.Metric
module Json = Ftrsn_service.Json
module Query = Ftrsn_service.Query
module Response = Ftrsn_service.Response
module Pool = Ftrsn_service.Pool
module Exec = Ftrsn_service.Exec
module Server = Ftrsn_service.Server

let pool = lazy (Pool.create ())

(* Renders a response (human form), returns the exit code.  [render] only
   sees success payloads; errors are reported uniformly on stderr. *)
let finish ?(json = false) ~render resp =
  (if json then print_endline (Response.to_string resp)
   else
     match resp with
     | Response.Error_r (_, msg) -> Printf.eprintf "%s\n" msg
     | ok -> render ok);
  Response.exit_code resp

let run ?json ~render q = finish ?json ~render (Exec.run (Lazy.force pool) q)

let unexpected _ = prerr_endline "unexpected response payload"

(* ------------------------------------------------------------------ *)
(* Subcommand actions                                                  *)

let cmd_stats spec json =
  run ~json
    ~render:(function
      | Response.Netinfo_r n ->
          Printf.printf
            "%s: %d segments, %d muxes, %d scan bits, %d shadow bits\n\
             %d control bits, %d primary controls, %d levels\n\
             reset path %d bits, full path %d bits\n"
            n.Response.ni_name n.Response.ni_segments n.Response.ni_muxes
            n.Response.ni_scan_bits n.Response.ni_shadow_bits
            n.Response.ni_control_bits n.Response.ni_primary_controls
            n.Response.ni_levels n.Response.ni_reset_path_bits
            n.Response.ni_full_path_bits
      | r -> unexpected r)
    (Query.Netinfo (Query.net_spec_of_cli spec))

(* The graphviz export has no service counterpart (it is a developer
   visualisation, not a netlist query); it loads directly. *)
let cmd_dot spec augmented =
  match Pool.acquire (Lazy.force pool) (Query.net_spec_of_cli spec) with
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      1
  | Ok entry ->
      let net = Pool.net entry in
      let g, _ = Netlist.dataflow_graph net in
      let label v =
        if v = 0 then "scan-in"
        else if v = 1 then "scan-out"
        else Netlist.segment_name net (v - 2)
      in
      let highlight =
        if not augmented then []
        else (Augment.solve (Augment.of_netlist net)).Augment.new_edges
      in
      print_string
        (Dot.to_dot ~name:net.Netlist.net_name ~vertex_label:label
           ~highlight_edges:highlight g);
      Pool.release (Lazy.force pool) entry;
      0

let cmd_harden spec json =
  run ~json
    ~render:(function
      | Response.Synth_r s ->
          Option.iter print_string s.Response.sy_netlist;
          Printf.eprintf "added %d muxes, %d control bits; area x%.2f\n"
            s.Response.sy_added_muxes s.Response.sy_added_ctrl_bits
            s.Response.sy_area_ratio
      | r -> unexpected r)
    (Query.Synthesize
       { Query.sq_net = Query.net_spec_of_cli spec; sq_emit = not json })

let render_metric = function
  | Response.Metric_r m ->
      Format.printf "%a@." Metric.pp (Response.result_of_metric_r m)
  | r -> unexpected r

let pool_stats_line () =
  let p = Pool.stats (Lazy.force pool) in
  Printf.eprintf "pool: %d hits, %d misses, %d evictions, %d entries (%d KiB)\n"
    p.Response.po_hits p.Response.po_misses p.Response.po_evictions
    p.Response.po_entries
    (p.Response.po_bytes / 1024)

let cmd_metric spec sample domains engine model brute pairs no_pair_lanes
    no_inprocess json with_stats =
  let net = Query.net_spec_of_cli spec in
  (* Human output renders the full Metric.pp line (steals, solver stats),
     so it needs the volatile block; JSON keeps the deterministic default
     unless --with-stats asks otherwise. *)
  let ws = if json then with_stats else true in
  let q =
    if pairs then
      Query.Pairs
        {
          Query.pq_net = net;
          pq_fault_sample = sample;
          pq_pair_sample = None;
          pq_domains = domains;
          pq_engine = engine;
          pq_reduce = not brute;
          pq_inprocess = not no_inprocess;
          pq_lanes = not no_pair_lanes;
          pq_model = model;
          pq_with_stats = ws;
        }
    else
      Query.Metric
        {
          Query.mq_net = net;
          mq_sample = sample;
          mq_domains = domains;
          mq_engine = engine;
          mq_reduce = not brute;
          mq_inprocess = not no_inprocess;
          mq_model = model;
          mq_with_stats = ws;
        }
  in
  let code = run ~json ~render:render_metric q in
  pool_stats_line ();
  code

let cmd_certify spec sample domains model pairs no_inprocess json with_stats =
  let q =
    Query.Certify
      {
        Query.cq_net = Query.net_spec_of_cli spec;
        cq_sample = sample;
        cq_domains = domains;
        cq_pairs = pairs;
        cq_inprocess = not no_inprocess;
        cq_model = model;
        cq_with_stats = (if json then with_stats else true);
      }
  in
  run ~json
    ~render:(function
      | Response.Metric_r m ->
          let r = Response.result_of_metric_r m in
          Format.printf "%a@." Metric.pp r;
          (match r.Metric.solver with
          | Some s ->
              Printf.printf
                "certification: OK (%d UNSAT verdicts RUP-checked, %d \
                 lemmas, %d deletions, %.2fs in checker)\n"
                s.Metric.s_cert_unsat s.Metric.s_cert_lemmas
                s.Metric.s_cert_deletes s.Metric.s_cert_time
          | None -> ())
      | r -> unexpected r)
    q

let cmd_access spec target fault model svf json =
  run ~json
    ~render:(function
      | Response.Svf_r svf -> print_string svf
      | Response.Plan_r p ->
          List.iter
            (fun (name, v) -> Printf.printf "assert primary %s := %b\n" name v)
            p.Response.pl_primaries;
          List.iteri
            (fun i (path, writes) ->
              Printf.printf "CSU %d: path [%s] writes [%s]\n" i
                (String.concat "; " path)
                (String.concat "; "
                   (List.map
                      (fun (s, b, v) -> Printf.sprintf "%s[%d]:=%b" s b v)
                      writes)))
            p.Response.pl_steps;
          Printf.printf "CSU %d: access via [%s], %d cycles total\n"
            (List.length p.Response.pl_steps)
            (String.concat "; " p.Response.pl_access_path)
            p.Response.pl_cycles
      | r -> unexpected r)
    (Query.Probe
       {
         Query.pb_net = Query.net_spec_of_cli spec;
         pb_target = target;
         pb_fault = fault;
         pb_model = model;
         pb_svf = svf;
       })

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      really_input_string ic (in_channel_length ic)
      |> String.split_on_char '\n')

let cmd_diagnose spec sig_file healthy limit json =
  let signature =
    if healthy then Ok None
    else
      match sig_file with
      | None -> Error "a SIGNATURE file is required unless --healthy is given"
      | Some path -> (
          match read_lines path with
          | lines -> Ok (Some lines)
          | exception Sys_error e -> Error e)
  in
  match signature with
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      1
  | Ok signature ->
      run ~json
        ~render:(function
          | Response.Diagnose_r [] ->
              print_endline "no single stuck-at fault matches"
          | Response.Diagnose_r fs -> List.iter print_endline fs
          | r -> unexpected r)
        (Query.Diagnose
           {
             Query.dq_net = Query.net_spec_of_cli spec;
             dq_signature = signature;
             dq_limit = limit;
           })

let cmd_serve socket workers heavy_workers queue_cap deadline_ms budget_mb =
  let cfg =
    {
      Server.workers;
      heavy_workers;
      queue_cap;
      deadline =
        Option.map (fun ms -> float_of_int ms /. 1000.0) deadline_ms;
    }
  in
  let pool = Pool.create ~budget_bytes:(budget_mb * 1024 * 1024) () in
  (match socket with
  | Some path -> Server.serve_socket cfg pool path
  | None -> Server.serve_stdio cfg pool);
  0

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

let () =
  let open Cmdliner in
  let spec =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NETLIST"
          ~doc:"Netlist file (.icl parsed as ICL) or itc02:NAME.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the service-layer JSON response (one line), identical to \
             the $(b,serve) response for the same query.")
  in
  let with_stats =
    Arg.(
      value & flag
      & info [ "with-stats" ]
          ~doc:
            "Include volatile statistics (steals, solver counters) in the \
             JSON response.  Off by default so responses are deterministic \
             and warm results diff clean against cold ones.")
  in
  let stats_cmd =
    Cmd.v (Cmd.info "stats" ~doc:"Netlist statistics")
      Term.(const cmd_stats $ spec $ json)
  in
  let dot_cmd =
    let augmented =
      Arg.(
        value & flag
        & info [ "augmented" ] ~doc:"Highlight the augmenting edge set.")
    in
    Cmd.v (Cmd.info "dot" ~doc:"Dataflow graph as Graphviz DOT")
      Term.(const cmd_dot $ spec $ augmented)
  in
  let harden_cmd =
    Cmd.v
      (Cmd.info "harden"
         ~doc:"Fault-tolerant synthesis; prints the hardened netlist")
      Term.(const cmd_harden $ spec $ json)
  in
  let sample =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample" ] ~doc:"Every k-th fault only.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~doc:"Evaluation domains (work-stealing queue).")
  in
  let no_inprocess =
    Arg.(
      value & flag
      & info [ "no-inprocess" ]
          ~doc:
            "Disable SAT inprocessing (subsumption, vivification, bounded \
             variable elimination) on the BMC sessions; results are \
             identical, only slower.  Ablation switch.")
  in
  let model =
    Arg.(
      value
      & opt
          (enum
             (List.map
                (fun m -> (Fault.model_to_string m, m))
                Fault.all_models))
          Fault.Stuck
      & info [ "model" ]
          ~doc:
            "Fault model: $(b,stuck) (single stuck-at, the default), \
             $(b,bridge) (wired-AND/OR bridges between adjacent scan \
             segments), $(b,select) (selection-control faults incl. broken \
             TMR voters), or $(b,transient) (single-event upsets of shadow \
             bits; accessibility = recoverability after the glitch).")
  in
  let metric_cmd =
    let engine =
      Arg.(
        value
        & opt (enum [ ("structural", `Structural); ("bmc", `Bmc) ]) `Structural
        & info [ "engine" ] ~doc:"Verdict engine: $(b,structural) or $(b,bmc).")
    in
    let brute =
      Arg.(
        value & flag
        & info [ "brute" ]
            ~doc:
              "Disable fault-universe reduction (collapsing + cone deltas); \
               results are identical, only slower.")
    in
    let pairs =
      Arg.(
        value & flag
        & info [ "pairs" ]
            ~doc:
              "Exhaustive double-fault sweep: every unordered fault pair, \
               exactly, via class-pair collapsing, disjoint-cone splicing \
               and stacked deltas.  $(b,--sample) then thins the fault \
               universe (not the pairs); $(b,--brute) enumerates all pairs \
               one by one.")
    in
    let no_pair_lanes =
      Arg.(
        value & flag
        & info [ "no-pair-lanes" ]
            ~doc:
              "Disable the lane-parallel interacting-pair sweep; every \
               stacked secondary is analysed one at a time.  Results are \
               identical, only slower.  Ablation switch.")
    in
    Cmd.v (Cmd.info "metric" ~doc:"Fault-tolerance metric")
      Term.(
        const cmd_metric $ spec $ sample $ domains $ engine $ model $ brute
        $ pairs $ no_pair_lanes $ no_inprocess $ json $ with_stats)
  in
  let certify_cmd =
    let pairs =
      Arg.(
        value & flag
        & info [ "pairs" ]
            ~doc:
              "Certify the exhaustive double-fault sweep instead of the \
               single-fault metric.")
    in
    Cmd.v
      (Cmd.info "certify"
         ~doc:
           "Fault-tolerance metric through the BMC engine in certified \
            mode: every solver derivation and every UNSAT verdict is \
            verified inline by an independent RUP proof checker.  Exits 3 \
            if any proof step is rejected.")
      Term.(
        const cmd_certify $ spec $ sample $ domains $ model $ pairs
        $ no_inprocess $ json $ with_stats)
  in
  let access_cmd =
    let target =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"SEGMENT")
    in
    let fault =
      Arg.(
        value
        & opt (some string) None
        & info [ "fault" ]
            ~doc:"Plan around this fault (e.g. 'core.sib.shadow[0]/sa0').")
    in
    let svf =
      Arg.(
        value & flag
        & info [ "svf" ] ~doc:"Emit SVF vectors instead of a schedule.")
    in
    Cmd.v (Cmd.info "access" ~doc:"Plan a write access to a segment")
      Term.(const cmd_access $ spec $ target $ fault $ model $ svf $ json)
  in
  let diagnose_cmd =
    let sig_file =
      Arg.(value & pos 1 (some string) None & info [] ~docv:"SIGNATURE")
    in
    let healthy =
      Arg.(
        value & flag
        & info [ "healthy" ]
            ~doc:
              "Diagnose the fault-free reference signature instead of a \
               file (self-test; lists the faults indistinguishable from a \
               healthy network).")
    in
    let limit =
      Arg.(
        value
        & opt (some int) None
        & info [ "limit" ] ~doc:"Report at most this many candidates.")
    in
    Cmd.v
      (Cmd.info "diagnose"
         ~doc:
           "List faults matching an observed signature (one 0/1 line per \
            diagnostic CSU)")
      Term.(const cmd_diagnose $ spec $ sig_file $ healthy $ limit $ json)
  in
  let serve_cmd =
    let socket =
      Arg.(
        value
        & opt (some string) None
        & info [ "socket" ] ~docv:"PATH"
            ~doc:
              "Listen on a Unix-domain socket instead of serving \
               stdin/stdout.")
    in
    let workers =
      Arg.(
        value & opt int 2
        & info [ "workers" ]
            ~doc:
              "Worker threads for light queries; 1 processes everything \
               serially in request order (deterministic transcripts).")
    in
    let heavy_workers =
      Arg.(
        value & opt int 1
        & info [ "heavy-workers" ]
            ~doc:
              "Worker threads for heavy queries (pair sweeps, unsampled \
               BMC, synthesis) — a separate queue so they cannot starve \
               light ones.")
    in
    let queue_cap =
      Arg.(
        value & opt int 64
        & info [ "queue-cap" ]
            ~doc:
              "Admission bound per queue; requests beyond it are rejected \
               immediately with an admission error.")
    in
    let deadline_ms =
      Arg.(
        value
        & opt (some int) None
        & info [ "deadline-ms" ]
            ~doc:
              "Default queueing deadline: a request still waiting after \
               this many milliseconds is rejected instead of executed \
               (per-request \"deadline_ms\" overrides).")
    in
    let budget_mb =
      Arg.(
        value & opt int 256
        & info [ "budget-mb" ]
            ~doc:
              "Warm-pool byte budget; least-recently-used netlist state is \
               evicted beyond it.")
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Serve newline-delimited JSON queries against a shared warm \
            pool.  Each request is an object with an \"op\" field \
            (metric, pairs, certify, probe, diagnose, synthesize, \
            netinfo, stats); each response is one JSON line, \"id\" \
            echoed if given.")
      Term.(
        const cmd_serve $ socket $ workers $ heavy_workers $ queue_cap
        $ deadline_ms $ budget_mb)
  in
  let group =
    Cmd.group
      (Cmd.info "ftrsn-tool" ~doc:"RSN netlist utilities")
      [
        stats_cmd;
        dot_cmd;
        harden_cmd;
        metric_cmd;
        certify_cmd;
        access_cmd;
        diagnose_cmd;
        serve_cmd;
      ]
  in
  (* cmdliner reports usage errors as 124; fold them into the documented
     "bad request" code so scripts see one stable value. *)
  exit (match Cmd.eval' group with 124 -> 1 | c -> c)
