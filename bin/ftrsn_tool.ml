(* ftrsn-tool: command-line utilities over RSN netlists.

   Subcommands:
     stats      — parse a netlist (text or ICL) and print its statistics
     dot        — emit the dataflow graph as Graphviz DOT (optionally with
                  the augmenting edge set highlighted)
     harden     — run the fault-tolerant synthesis and write the result in
                  the flat text format
     metric     — evaluate the fault-tolerance metric
     certify    — the metric through the BMC engine with every UNSAT
                  verdict verified by an independent RUP proof checker
     access     — plan an access to a segment (optionally under a fault)
                  and print the CSU schedule or SVF vectors
     diagnose   — read an observed signature (bit lines) and list candidate
                  faults

   Input format is chosen by extension: .icl is parsed by the ICL
   front-end, anything else by the flat text format. *)

module Netlist = Ftrsn_rsn.Netlist
module Text = Ftrsn_rsn.Text
module Icl = Ftrsn_rsn.Icl
module Stats = Ftrsn_rsn.Stats
module Dot = Ftrsn_topo.Dot
module Fault = Ftrsn_fault.Fault
module Engine = Ftrsn_access.Engine
module Retarget = Ftrsn_access.Retarget
module Vectors = Ftrsn_access.Vectors
module Diagnose = Ftrsn_access.Diagnose
module Augment = Ftrsn_core.Augment
module Pipeline = Ftrsn_core.Pipeline
module Metric = Ftrsn_core.Metric

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  let text = read_file path in
  let result =
    if Filename.check_suffix path ".icl" then Icl.parse text
    else Text.parse text
  in
  match result with
  | Ok net -> net
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1

(* Name -> index table, built once per loaded netlist; replaces the O(n)
   scan-per-lookup over segment names. *)
let seg_table net =
  let tbl = Hashtbl.create (max 16 (Netlist.num_segments net)) in
  for i = 0 to Netlist.num_segments net - 1 do
    Hashtbl.replace tbl (Netlist.segment_name net i) i
  done;
  tbl

let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <-
        min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let seg_by_name tbl name =
  match Hashtbl.find_opt tbl name with
  | Some i -> i
  | None ->
      let near =
        Hashtbl.fold (fun n _ acc -> (edit_distance name n, n) :: acc) tbl []
        |> List.filter (fun (d, _) -> d <= max 2 (String.length name / 3))
        |> List.sort compare
        |> List.filteri (fun i _ -> i < 3)
        |> List.map snd
      in
      Printf.eprintf "no segment named %s%s\n" name
        (match near with
        | [] -> ""
        | _ ->
            Printf.sprintf " (did you mean %s?)" (String.concat ", " near));
      exit 1

let cmd_stats path =
  let net = load path in
  Format.printf "%a@.%a@." Netlist.pp_summary net Stats.pp (Stats.compute net)

let cmd_dot path augmented =
  let net = load path in
  let g, _ = Netlist.dataflow_graph net in
  let label v =
    if v = 0 then "scan-in"
    else if v = 1 then "scan-out"
    else Netlist.segment_name net (v - 2)
  in
  let highlight =
    if not augmented then []
    else begin
      let p = Augment.of_netlist net in
      (Augment.solve p).Augment.new_edges
    end
  in
  print_string
    (Dot.to_dot ~name:net.Netlist.net_name ~vertex_label:label
       ~highlight_edges:highlight g)

let cmd_harden path =
  let net = load path in
  let r = Pipeline.synthesize net in
  print_string (Text.to_string r.Pipeline.ft);
  Printf.eprintf "added %d muxes, %d control bits; area x%.2f\n"
    r.Pipeline.syn_stats.Ftrsn_core.Synthesis.added_muxes
    r.Pipeline.syn_stats.Ftrsn_core.Synthesis.added_ctrl_bits
    r.Pipeline.area_ratios.Ftrsn_core.Area.r_area

let cmd_metric path sample domains brute pairs =
  let net = load path in
  let r =
    if pairs then
      Metric.evaluate_pairs ?fault_sample:sample ~domains ~exhaustive:true
        ~reduce:(not brute) net
    else Metric.evaluate ?sample ~domains ~reduce:(not brute) net
  in
  Format.printf "%a@." Metric.pp r

let cmd_certify path sample domains pairs =
  let net = load path in
  match
    if pairs then
      Metric.evaluate_pairs ?fault_sample:sample ~domains ~exhaustive:true
        ~engine:`Bmc ~certify:true net
    else Metric.evaluate ?sample ~domains ~engine:`Bmc ~certify:true net
  with
  | r ->
      Format.printf "%a@." Metric.pp r;
      let s = Option.get r.Metric.solver in
      Printf.printf
        "certification: OK (%d UNSAT verdicts RUP-checked, %d lemmas, %d \
         deletions, %.2fs in checker)\n"
        s.Metric.s_cert_unsat s.Metric.s_cert_lemmas s.Metric.s_cert_deletes
        s.Metric.s_cert_time
  | exception Ftrsn_bmc.Bmc.Session.Certification_failed msg ->
      Printf.eprintf "certification: FAILED: %s\n" msg;
      exit 3

let parse_fault net spec =
  (* "<segment or mux name>.<site>/sa<0|1>", matching Fault.to_string. *)
  match
    List.find_opt
      (fun f -> Fault.to_string net f = spec)
      (Fault.universe net)
  with
  | Some f -> f
  | None ->
      Printf.eprintf
        "unknown fault %s (use names as printed by the universe, e.g. \
         mysib.shadow[0]/sa0)\n"
        spec;
      exit 1

let cmd_access path target fault svf =
  let net = load path in
  let ctx = Engine.make_ctx net in
  let target = seg_by_name (seg_table net) target in
  let fault = Option.map (parse_fault net) fault in
  match Retarget.plan_write ctx ?fault ~target () with
  | None ->
      Printf.eprintf "target not writable under this fault\n";
      exit 2
  | Some plan ->
      if svf then begin
        match fault with
        | Some _ ->
            Printf.eprintf "vector export is for fault-free plans\n";
            exit 1
        | None -> (
            let pattern =
              List.init (Netlist.seg_len net target) (fun i -> i mod 2 = 0)
            in
            match Vectors.of_plan net plan ~pattern with
            | Ok svf -> print_string svf
            | Error e ->
                Printf.eprintf "%s\n" e;
                exit 1)
      end
      else begin
        List.iter
          (fun (p, v) ->
            Printf.printf "assert primary %s := %b\n" p v)
          plan.Retarget.primaries;
        List.iteri
          (fun i step ->
            Printf.printf "CSU %d: path [%s] writes [%s]\n" i
              (String.concat "; "
                 (List.map (Netlist.segment_name net) step.Retarget.path))
              (String.concat "; "
                 (List.map
                    (fun (s, b, v) ->
                      Printf.sprintf "%s[%d]:=%b"
                        (Netlist.segment_name net s) b v)
                    step.Retarget.writes)))
          plan.Retarget.steps;
        Printf.printf "CSU %d: access via [%s], %d cycles total\n"
          (List.length plan.Retarget.steps)
          (String.concat "; "
             (List.map (Netlist.segment_name net) plan.Retarget.access_path))
          plan.Retarget.cycles
      end

let cmd_diagnose path sig_file =
  let net = load path in
  let observed =
    read_file sig_file |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           List.init (String.length (String.trim line)) (fun i ->
               (String.trim line).[i] = '1'))
  in
  let candidates = Diagnose.diagnose net ~observed in
  if candidates = [] then print_endline "no single stuck-at fault matches"
  else
    List.iter
      (fun f -> print_endline (Fault.to_string net f))
      candidates

let () =
  let open Cmdliner in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST")
  in
  let stats_cmd =
    Cmd.v (Cmd.info "stats" ~doc:"Netlist statistics")
      Term.(const cmd_stats $ path)
  in
  let dot_cmd =
    let augmented =
      Arg.(value & flag & info [ "augmented" ] ~doc:"Highlight the augmenting edge set.")
    in
    Cmd.v (Cmd.info "dot" ~doc:"Dataflow graph as Graphviz DOT")
      Term.(const cmd_dot $ path $ augmented)
  in
  let harden_cmd =
    Cmd.v (Cmd.info "harden" ~doc:"Fault-tolerant synthesis; prints the hardened netlist")
      Term.(const cmd_harden $ path)
  in
  let metric_cmd =
    let sample =
      Arg.(value & opt (some int) None & info [ "sample" ] ~doc:"Every k-th fault only.")
    in
    let domains =
      Arg.(value & opt int 1 & info [ "domains" ] ~doc:"Evaluation domains (work-stealing queue).")
    in
    let brute =
      Arg.(value & flag & info [ "brute" ] ~doc:"Disable fault-universe reduction (collapsing + cone deltas); results are identical, only slower.")
    in
    let pairs =
      Arg.(value & flag & info [ "pairs" ] ~doc:"Exhaustive double-fault sweep: every unordered fault pair, exactly, via class-pair collapsing, disjoint-cone splicing and stacked deltas.  $(b,--sample) then thins the fault universe (not the pairs); $(b,--brute) enumerates all pairs one by one.")
    in
    Cmd.v (Cmd.info "metric" ~doc:"Fault-tolerance metric")
      Term.(const cmd_metric $ path $ sample $ domains $ brute $ pairs)
  in
  let certify_cmd =
    let sample =
      Arg.(value & opt (some int) None & info [ "sample" ] ~doc:"Every k-th fault only.")
    in
    let domains =
      Arg.(value & opt int 1 & info [ "domains" ] ~doc:"Evaluation domains (work-stealing queue).")
    in
    let pairs =
      Arg.(value & flag & info [ "pairs" ] ~doc:"Certify the exhaustive double-fault sweep instead of the single-fault metric.")
    in
    Cmd.v
      (Cmd.info "certify"
         ~doc:"Fault-tolerance metric through the BMC engine in certified \
               mode: every solver derivation and every UNSAT verdict is \
               verified inline by an independent RUP proof checker.  Exits \
               3 if any proof step is rejected.")
      Term.(const cmd_certify $ path $ sample $ domains $ pairs)
  in
  let access_cmd =
    let target =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"SEGMENT")
    in
    let fault =
      Arg.(value & opt (some string) None & info [ "fault" ] ~doc:"Plan around this fault (e.g. 'core.sib.shadow[0]/sa0').")
    in
    let svf = Arg.(value & flag & info [ "svf" ] ~doc:"Emit SVF vectors instead of a schedule.") in
    Cmd.v (Cmd.info "access" ~doc:"Plan a write access to a segment")
      Term.(const cmd_access $ path $ target $ fault $ svf)
  in
  let diagnose_cmd =
    let sig_file =
      Arg.(required & pos 1 (some file) None & info [] ~docv:"SIGNATURE")
    in
    Cmd.v
      (Cmd.info "diagnose"
         ~doc:"List faults matching an observed signature (one 0/1 line per diagnostic CSU)")
      Term.(const cmd_diagnose $ path $ sig_file)
  in
  let group =
    Cmd.group
      (Cmd.info "ftrsn-tool" ~doc:"RSN netlist utilities")
      [
        stats_cmd;
        dot_cmd;
        harden_cmd;
        metric_cmd;
        certify_cmd;
        access_cmd;
        diagnose_cmd;
      ]
  in
  exit (Cmd.eval group)
