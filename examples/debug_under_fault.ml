(* Post-silicon debug with a faulty scan network — the scenario motivating
   the paper's introduction.

   A health-monitor SoC has three modules of instruments behind a SIB-based
   RSN.  A manufacturing defect leaves one module's SIB register stuck.
   In the original network the whole module is unreachable; in the
   fault-tolerant network the synthesis' redundant routing restores access
   to every instrument except the faulty register itself.  The example
   computes an access plan around the fault and executes it on the
   cycle-accurate simulator to prove that the pattern really lands.

   Run with: dune exec examples/debug_under_fault.exe *)

module Netlist = Ftrsn_rsn.Netlist
module Sib = Ftrsn_rsn.Sib
module Sim = Ftrsn_rsn.Sim
module Fault = Ftrsn_fault.Fault
module Engine = Ftrsn_access.Engine
module Retarget = Ftrsn_access.Retarget
module Pipeline = Ftrsn_core.Pipeline

let seg_id net name =
  let found = ref (-1) in
  for i = 0 to Netlist.num_segments net - 1 do
    if Netlist.segment_name net i = name then found := i
  done;
  assert (!found >= 0);
  !found

let show_accessibility title net fault =
  let ctx = Engine.make_ctx net in
  let v = Engine.analyze ctx (Some fault) in
  let dead =
    List.filter_map
      (fun s -> if v.Engine.accessible.(s) then None else Some (Netlist.segment_name net s))
      (List.init (Netlist.num_segments net) Fun.id)
  in
  Printf.printf "%s: %d/%d instruments accessible%s\n" title
    (Engine.accessible_count v)
    (Netlist.num_segments net)
    (if dead = [] then "" else " (lost: " ^ String.concat ", " dead ^ ")")

let () =
  (* Three monitoring domains: thermal sensors, voltage droop detectors and
     a trace buffer with its own sub-hierarchy. *)
  let net =
    Sib.build ~name:"monitor_soc"
      [
        Sib
          {
            name = "thermal";
            inner =
              [
                Sib.leaf ~name:"tsense0" ~len:12;
                Sib.leaf ~name:"tsense1" ~len:12;
                Sib.leaf ~name:"tcal" ~len:8;
              ];
          };
        Sib
          {
            name = "vdroop";
            inner =
              [ Sib.leaf ~name:"vmon0" ~len:10; Sib.leaf ~name:"vmon1" ~len:10 ];
          };
        Sib
          {
            name = "trace";
            inner =
              [
                Sib
                  {
                    name = "trace_cfg";
                    inner =
                      [
                        Sib.leaf ~name:"trig" ~len:16;
                        Sib.leaf ~name:"mask" ~len:16;
                      ];
                  };
                Sib.leaf ~name:"tbuf" ~len:64;
              ];
          };
      ]
  in
  Format.printf "%a@.@." Netlist.pp_summary net;

  (* The defect: the thermal module's SIB register is stuck at 0 — the
     module can never be opened. *)
  let fault =
    { Fault.site = Fault.Seg_shadow_reg (seg_id net "thermal", 0); stuck = false }
  in
  Printf.printf "defect: %s\n\n" (Fault.to_string net fault);

  (* Step 0: locate the defect.  Apply the diagnostic stimulus to the
     (simulated) faulty device and compare signatures against every
     candidate fault. *)
  let observed =
    Ftrsn_access.Diagnose.apply net ~fault (Ftrsn_access.Diagnose.stimulus net)
  in
  let candidates = Ftrsn_access.Diagnose.diagnose net ~observed in
  Printf.printf "diagnosis from scan-out signatures: %d candidate fault(s)\n"
    (List.length candidates);
  List.iter
    (fun f -> Printf.printf "  candidate: %s\n" (Fault.to_string net f))
    candidates;
  Printf.printf "  injected defect among candidates: %b\n\n"
    (List.mem fault candidates);

  show_accessibility "original RSN " net fault;

  let r = Pipeline.synthesize net in
  let ft = r.Pipeline.ft in
  show_accessibility "fault-tolerant" ft fault;

  (* Debug task: read/write the thermal calibration register despite the
     defect.  Plan an access in the FT network and execute it. *)
  let target = seg_id ft "tcal" in
  let ctx = Engine.make_ctx ft in
  (match Retarget.plan_write ctx ~fault ~target () with
  | None -> Printf.printf "\nno plan found (unexpected)\n"
  | Some plan ->
      Printf.printf "\naccess plan for tcal around the defect:\n";
      List.iteri
        (fun i step ->
          Printf.printf "  CSU %d: configure via path [%s], writes %s\n" i
            (String.concat "; "
               (List.map (Netlist.segment_name ft) step.Retarget.path))
            (String.concat ", "
               (List.map
                  (fun (s, b, v) ->
                    Printf.sprintf "%s[%d]:=%b" (Netlist.segment_name ft s) b v)
                  step.Retarget.writes)))
        plan.Retarget.steps;
      Printf.printf "  CSU %d: access via path [%s] (%d cycles total)\n"
        (List.length plan.Retarget.steps)
        (String.concat "; "
           (List.map (Netlist.segment_name ft) plan.Retarget.access_path))
        plan.Retarget.cycles;
      let pattern = List.init (Netlist.seg_len ft target) (fun i -> i mod 3 = 0) in
      (match Retarget.execute ft ~fault plan ~pattern with
      | Error e -> Printf.printf "  simulator execution FAILED: %s\n" e
      | Ok state ->
          let got = Array.to_list state.Sim.shift.(target) in
          Printf.printf "  simulator: pattern %s => register holds %s (%s)\n"
            (String.concat ""
               (List.map (fun b -> if b then "1" else "0") pattern))
            (String.concat ""
               (List.map (fun b -> if b then "1" else "0") got))
            (if got = pattern then "MATCH" else "MISMATCH")));
      (* And read the sensor back out: capture the instrument data and
         shift it to the (secondary) scan-out around the defect. *)
      (match Retarget.plan_read ctx ~fault ~target () with
      | None -> Printf.printf "  no read plan (unexpected)\n"
      | Some rplan -> (
          let instrument =
            List.init (Netlist.seg_len ft target) (fun i -> i mod 2 = 0)
          in
          match Retarget.execute_read ft ~fault rplan ~instrument with
          | Error e -> Printf.printf "  read-back FAILED: %s\n" e
          | Ok bits ->
              Printf.printf "  read-back: captured %s, observed %s (%s)\n"
                (String.concat ""
                   (List.map (fun b -> if b then "1" else "0") instrument))
                (String.concat ""
                   (List.map (fun b -> if b then "1" else "0") bits))
                (if bits = instrument then "MATCH" else "MISMATCH")))
