(* Survivability survey of an ITC'02 SoC: which single stuck-at faults
   hurt the most, before and after the fault-tolerant synthesis?

   For the chosen SoC (default u226) the example ranks the worst faults of
   the original SIB-based RSN, shows how many instruments each one
   disconnects, and then demonstrates that the fault-tolerant RSN confines
   every single fault to at most one segment.

   Run with: dune exec examples/soc_survivability.exe [-- SoC] *)

module Itc02 = Ftrsn_itc02.Itc02
module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Engine = Ftrsn_access.Engine
module Pipeline = Ftrsn_core.Pipeline
module Metric = Ftrsn_core.Metric

let rank_faults net limit =
  let ctx = Engine.make_ctx net in
  let total = Netlist.num_segments net in
  let scored =
    List.map
      (fun f ->
        let v = Engine.analyze ctx (Some f) in
        (f, total - Engine.accessible_count v))
      (Fault.universe net)
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
  (List.filteri (fun i _ -> i < limit) sorted, scored)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "u226" in
  let soc =
    match Itc02.find name with
    | Some s -> s
    | None ->
        Printf.eprintf "unknown SoC %s\n" name;
        exit 1
  in
  let net = Itc02.rsn soc in
  Format.printf "%a@.@." Netlist.pp_summary net;

  Printf.printf "worst single stuck-at faults in the original SIB-based RSN:\n";
  let worst, scored = rank_faults net 8 in
  List.iter
    (fun (f, lost) ->
      Printf.printf "  %-28s disconnects %4d / %d segments\n"
        (Fault.to_string net f) lost (Netlist.num_segments net))
    worst;
  let catastrophic =
    List.length (List.filter (fun (_, l) -> l = Netlist.num_segments net) scored)
  in
  Printf.printf
    "  (%d of %d faults disconnect the complete network)\n\n"
    catastrophic (List.length scored);

  Printf.printf "synthesizing the fault-tolerant RSN...\n%!";
  let r = Pipeline.synthesize net in
  let ft = r.Pipeline.ft in
  let worst_ft, scored_ft = rank_faults ft 5 in
  Printf.printf "worst single stuck-at faults in the fault-tolerant RSN:\n";
  List.iter
    (fun (f, lost) ->
      Printf.printf "  %-28s disconnects %4d / %d segments\n"
        (Fault.to_string ft f) lost (Netlist.num_segments ft))
    worst_ft;
  let multi =
    List.length (List.filter (fun (_, l) -> l > 1) scored_ft)
  in
  Printf.printf "  (%d faults disconnect more than one segment)\n\n" multi;

  let mo = Metric.evaluate net and mf = Metric.evaluate ft in
  Printf.printf "metric summary (worst / average accessible segments):\n";
  Printf.printf "  original:       %.3f / %.4f\n" mo.Metric.worst_segments
    mo.Metric.avg_segments;
  Printf.printf "  fault-tolerant: %.3f / %.4f\n" mf.Metric.worst_segments
    mf.Metric.avg_segments;
  Printf.printf "  area ratio:     %.2fx (mux %.2fx, bits %.2fx)\n"
    r.Pipeline.area_ratios.Ftrsn_core.Area.r_area
    r.Pipeline.area_ratios.Ftrsn_core.Area.r_mux
    r.Pipeline.area_ratios.Ftrsn_core.Area.r_bits
