// Example ICL description: a small health-monitor network.
// Try:  dune exec bin/ftrsn_tool.exe -- stats examples/monitor.icl
//       dune exec bin/ftrsn_tool.exe -- harden examples/monitor.icl
Module SIB {
  ScanInPort si;
  ScanInPort host;
  ScanOutPort so { Source m; }
  ScanRegister r { ScanInSource si; ResetValue 1'b0; Update; }
  ScanMux m SelectedBy r { 1'b0 : r; 1'b1 : host; }
}
Module sensor_bank {
  ScanInPort si;
  ScanOutPort so { Source s1.so; }
  ScanRegister temp[11:0]  { ScanInSource s0.r; }
  Instance s0 Of SIB { InputPort si = si;    InputPort host = temp; }
  ScanRegister volt[9:0]   { ScanInSource s1.r; }
  Instance s1 Of SIB { InputPort si = s0.so; InputPort host = volt; }
}
Module monitor {
  ScanInPort si;
  ScanOutPort so { Source g1.so; }
  Instance bank Of sensor_bank { InputPort si = g0.r; }
  Instance g0 Of SIB { InputPort si = si;    InputPort host = bank.so; }
  ScanRegister status[7:0] { ScanInSource g1.r; }
  Instance g1 Of SIB { InputPort si = g0.so; InputPort host = status; }
}
