(* Quickstart: the worked example behind figs. 2, 4 and 5 of the paper.

   Builds a small RSN with segments A, B, C, D (A, B, D on the initial
   active path, C on a reconfigurable branch), extracts its dataflow graph,
   runs the connectivity augmentation (exact ILP), synthesizes the
   fault-tolerant RSN and compares the fault-tolerance metric of the two.

   Run with: dune exec examples/quickstart.exe *)

module Netlist = Ftrsn_rsn.Netlist
module Builder = Ftrsn_rsn.Builder
module Config = Ftrsn_rsn.Config
module Digraph = Ftrsn_topo.Digraph
module Augment = Ftrsn_core.Augment
module Pipeline = Ftrsn_core.Pipeline
module Metric = Ftrsn_core.Metric
module Area = Ftrsn_core.Area

let vertex_name net v =
  if v = 0 then "PI" else if v = 1 then "PO" else Netlist.segment_name net (v - 2)

let () =
  (* 1. The RSN of fig. 2: scan-in -> A -> B -> {C | bypass} -> D ->
     scan-out, with mux m1 addressed from A's shadow register. *)
  let b = Builder.create "fig2" in
  let a =
    Builder.add_segment b ~shadow:2 ~name:"A" ~len:2 ~input:Netlist.Scan_in ()
  in
  let sb = Builder.add_segment b ~name:"B" ~len:3 ~input:(Netlist.Seg a) () in
  let c = Builder.add_segment b ~name:"C" ~len:4 ~input:(Netlist.Seg sb) () in
  let m1 =
    Builder.add_mux b ~name:"m1"
      ~inputs:[ Netlist.Seg sb; Netlist.Seg c ]
      ~addr:[ Netlist.Ctrl_shadow { cseg = a; cbit = 0 } ]
      ()
  in
  let d = Builder.add_segment b ~name:"D" ~len:2 ~input:(Netlist.Mux m1) () in
  ignore m1;
  let net = Builder.finish b ~out:(Netlist.Seg d) () in
  Format.printf "%a@.@." Netlist.pp_summary net;

  (* The initial active path (fig. 2: light blue). *)
  (match Config.active_path net (Config.reset net) with
  | Some path ->
      Printf.printf "initial active path: %s\n"
        (String.concat " -> " (List.map (Netlist.segment_name net) path))
  | None -> assert false);

  (* Reconfigure: include C. *)
  let cfg = Config.reset net in
  Config.set_shadow cfg ~seg:a ~bit:0 true;
  (match Config.active_path net cfg with
  | Some path ->
      Printf.printf "after writing A[0]=1:   %s\n\n"
        (String.concat " -> " (List.map (Netlist.segment_name net) path))
  | None -> assert false);

  (* 2. Dataflow graph (SIII-B) and connectivity requirements (SIII-C). *)
  let p = Augment.of_netlist net in
  Printf.printf "dataflow edges (levels in parentheses):\n";
  Digraph.iter_edges
    (fun u v ->
      Printf.printf "  %s(%d) -> %s(%d)\n" (vertex_name net u)
        p.Augment.levels.(u) (vertex_name net v) p.Augment.levels.(v))
    p.Augment.graph;
  let d_in, d_out = Augment.demands p in
  Printf.printf "\ndegree demands (new in-edges / out-edges per vertex):\n";
  for v = 0 to Digraph.vertex_count p.Augment.graph - 1 do
    if d_in.(v) > 0 || d_out.(v) > 0 then
      Printf.printf "  %-3s in+%d out+%d\n" (vertex_name net v) d_in.(v)
        d_out.(v)
  done;

  (* 3. The minimal augmenting edge set (fig. 4), by the exact ILP. *)
  let sol =
    match Augment.solve_ilp p with Some s -> s | None -> failwith "infeasible"
  in
  Printf.printf
    "\nminimal augmenting edge set E_A \\ E (ILP, cost %d, %d B&B nodes):\n"
    sol.Augment.cost sol.Augment.ilp_nodes;
  List.iter
    (fun (u, v) ->
      Printf.printf "  %s -> %s  (cost %d)\n" (vertex_name net u)
        (vertex_name net v)
        (Augment.edge_cost p (u, v)))
    sol.Augment.new_edges;
  (match Augment.verify p sol.Augment.new_edges with
  | Ok () -> Printf.printf "verified: two vertex-independent paths everywhere\n"
  | Error e -> Printf.printf "verification FAILED: %s\n" e);

  (* 4. Final synthesis (SIII-E) and evaluation. *)
  let r = Pipeline.synthesize net in
  Printf.printf "\nfault-tolerant RSN: %s\n"
    (Format.asprintf "%a" Netlist.pp_summary r.Pipeline.ft);
  Printf.printf "  inserted muxes: %d, port muxes: %d, control bits: %d\n"
    r.Pipeline.syn_stats.Ftrsn_core.Synthesis.added_muxes
    r.Pipeline.syn_stats.Ftrsn_core.Synthesis.port_muxes
    r.Pipeline.syn_stats.Ftrsn_core.Synthesis.added_ctrl_bits;
  Printf.printf "  area ratios: %s\n"
    (Format.asprintf "%a" Area.pp_ratios r.Pipeline.area_ratios);

  let mo = Metric.evaluate net and mf = Metric.evaluate r.Pipeline.ft in
  Printf.printf "\nfault tolerance metric (SIII-A):\n";
  Printf.printf "  original:       %s\n" (Format.asprintf "%a" Metric.pp mo);
  Printf.printf "  fault-tolerant: %s\n" (Format.asprintf "%a" Metric.pp mf)
