(* Which hardening mechanism buys what?  (DESIGN.md §6 ablations)

   Re-synthesizes an ITC'02 SoC with each mechanism of the final synthesis
   (§III-E) disabled in turn and reports the fault-tolerance metric and
   area ratio.  Asserting the headline: dual scan ports and the rescue
   lines are what eliminate total-loss faults; TMR narrows the worst case
   to a single segment; graph augmentation alone already lifts the average.

   Run with: dune exec examples/hardening_ablation.exe [-- SoC] *)

module Itc02 = Ftrsn_itc02.Itc02
module Synthesis = Ftrsn_core.Synthesis
module Pipeline = Ftrsn_core.Pipeline
module Metric = Ftrsn_core.Metric
module Area = Ftrsn_core.Area

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "q12710" in
  let soc =
    match Itc02.find name with
    | Some s -> s
    | None ->
        Printf.eprintf "unknown SoC %s\n" name;
        exit 1
  in
  let net = Itc02.rsn soc in
  let d = Synthesis.default_options in
  let variants =
    [
      ("full synthesis", d);
      ("without TMR addresses", { d with Synthesis.opt_tmr = false });
      ("without dual scan ports", { d with Synthesis.opt_dual_ports = false });
      ( "without select hardening",
        { d with Synthesis.opt_select_hardening = false } );
      ( "without rescue lines",
        { d with Synthesis.opt_rescue_lines = false } );
      ("without dual hosting", { d with Synthesis.opt_dual_host = false });
      ( "graph augmentation only",
        {
          Synthesis.opt_tmr = false;
          opt_dual_ports = false;
          opt_select_hardening = false;
          opt_rescue_lines = false;
          opt_dual_host = false;
        } );
    ]
  in
  let baseline = Metric.evaluate net in
  Printf.printf "%s (%d segments)\n" soc.Itc02.soc_name soc.Itc02.soc_segments;
  Printf.printf "%-26s %10s %9s %6s\n" "variant" "segs-worst" "segs-avg" "area";
  Printf.printf "%-26s %10.3f %9.4f %6s\n" "original SIB RSN"
    baseline.Metric.worst_segments baseline.Metric.avg_segments "1.00";
  List.iter
    (fun (label, options) ->
      let r = Pipeline.synthesize ~options net in
      let m = Metric.evaluate r.Pipeline.ft in
      Printf.printf "%-26s %10.3f %9.4f %6.2f\n%!" label
        m.Metric.worst_segments m.Metric.avg_segments
        r.Pipeline.area_ratios.Area.r_area)
    variants
