(* Merged multi-target access: programming many instruments at once.

   In-field calibration often writes dozens of instrument registers.
   Accessing them one by one re-pays the configuration overhead per
   target; merging compatible targets into shared CSU schedules (in the
   spirit of scan pattern merging, Baranowski et al., ETS'13) amortizes
   it.  This example programs every instrument of an ITC'02 SoC both ways
   and reports the cycle savings, then proves the merged schedule on the
   cycle-accurate simulator.

   Run with: dune exec examples/broadcast_write.exe [-- SoC] *)

module Itc02 = Ftrsn_itc02.Itc02
module Netlist = Ftrsn_rsn.Netlist
module Sim = Ftrsn_rsn.Sim
module Engine = Ftrsn_access.Engine
module Retarget = Ftrsn_access.Retarget

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "x1331" in
  let soc =
    match Itc02.find name with
    | Some s -> s
    | None ->
        Printf.eprintf "unknown SoC %s\n" name;
        exit 1
  in
  let net = Itc02.rsn soc in
  Format.printf "%a@.@." Netlist.pp_summary net;

  (* Targets: every instrument segment (shadow-less leaves). *)
  let targets =
    List.filter
      (fun s -> net.Netlist.segs.(s).Netlist.seg_shadow = 0)
      (List.init (Netlist.num_segments net) Fun.id)
  in
  Printf.printf "programming %d instrument registers\n" (List.length targets);

  let ctx = Engine.make_ctx net in
  match Retarget.plan_write_merged ctx ~targets () with
  | None -> print_endline "merged planning failed (unexpected)"
  | Some mp ->
      Printf.printf "merged schedule: %d group(s), %d cycles\n"
        (List.length mp.Retarget.groups)
        mp.Retarget.merged_cycles;
      Printf.printf "sequential accesses: %d cycles\n"
        mp.Retarget.sequential_cycles;
      Printf.printf "saving: %.1f%%\n\n"
        (100.
        *. (1.
           -. float_of_int mp.Retarget.merged_cycles
              /. float_of_int mp.Retarget.sequential_cycles));
      (* Prove the first group on the simulator. *)
      let plan, ts = List.hd mp.Retarget.groups in
      let patterns =
        List.map
          (fun t ->
            (t, List.init (Netlist.seg_len net t) (fun i -> (i + t) mod 2 = 0)))
          ts
      in
      (match Retarget.execute_merged net plan ~patterns with
      | Error e -> Printf.printf "simulation failed: %s\n" e
      | Ok state ->
          let ok =
            List.for_all
              (fun (t, bits) ->
                List.mapi (fun j v -> state.Sim.shift.(t).(j) = v) bits
                |> List.for_all Fun.id)
              patterns
          in
          Printf.printf
            "simulator check of group 1 (%d targets, one access CSU): %s\n"
            (List.length ts)
            (if ok then "ALL PATTERNS MATCH" else "MISMATCH"))
