(* Using the library on your own network: parse an RSN from the flat text
   format, harden it, verify it with the BMC engine, and emit the
   fault-tolerant netlist back as text.

   Run with: dune exec examples/custom_network.exe *)

module Netlist = Ftrsn_rsn.Netlist
module Text = Ftrsn_rsn.Text
module Bmc = Ftrsn_bmc.Bmc
module Fault = Ftrsn_fault.Fault
module Pipeline = Ftrsn_core.Pipeline

let source = {|
# A tiny instrument network: a status register, then a SIB-gated
# configuration block with two registers.
rsn custom
seg status len=8 shadow=0 reset=- hier=1 input=pi
seg cfg_sib len=1 shadow=1 reset=0 hier=1 input=seg:status
seg cfg_lo len=6 shadow=0 reset=- hier=2 input=seg:cfg_sib
seg cfg_hi len=6 shadow=0 reset=- hier=2 input=seg:cfg_lo
mux cfg_mux inputs=seg:cfg_sib,seg:cfg_hi addr=shadow:cfg_sib.0
out mux:cfg_mux
|}

let () =
  let net =
    match Text.parse source with
    | Ok n -> n
    | Error e ->
        Printf.eprintf "parse error: %s\n" e;
        exit 1
  in
  Format.printf "parsed: %a@.@." Netlist.pp_summary net;

  let r = Pipeline.synthesize net in
  let ft = r.Pipeline.ft in

  (* Verify with the formal (BMC) engine: every segment must stay
     accessible under a representative fault at the SIB register. *)
  let t = Bmc.create ft in
  let fault = { Fault.site = Fault.Seg_shadow_reg (1, 0); stuck = false } in
  Printf.printf "access under %s (BMC over the paper's formal model):\n"
    (Fault.to_string ft fault);
  for s = 0 to Netlist.num_segments ft - 1 do
    let verdict =
      match Bmc.check_access t ~fault ~target:s () with
      | Bmc.Accessible n -> Printf.sprintf "accessible in %d CSU steps" n
      | Bmc.Inaccessible -> "INACCESSIBLE"
    in
    Printf.printf "  %-8s %s\n" (Netlist.segment_name ft s) verdict
  done;

  Printf.printf "\nfault-tolerant netlist:\n%s" (Text.to_string ft);

  (* Export a tester program (SVF-flavoured) for writing the cfg_hi
     register through the hardened network. *)
  let ctx = Ftrsn_access.Engine.make_ctx ft in
  let target = 3 (* cfg_hi *) in
  match Ftrsn_access.Retarget.plan_write ctx ~target () with
  | None -> print_endline "no plan (unexpected)"
  | Some plan -> (
      let pattern =
        List.init (Netlist.seg_len ft target) (fun i -> i mod 2 = 1)
      in
      match Ftrsn_access.Vectors.of_plan ft plan ~pattern with
      | Error e -> print_endline ("vector export failed: " ^ e)
      | Ok svf -> Printf.printf "\ntester vectors:\n%s" svf)
