type t = {
  segments : int;
  muxes : int;
  scan_bits : int;
  shadow_bits : int;
  control_bits : int;
  primary_controls : int;
  levels : int;
  min_seg_len : int;
  max_seg_len : int;
  mean_seg_len : float;
  reset_path_segments : int;
  reset_path_bits : int;
  full_path_bits : int;
}

let compute (net : Netlist.t) =
  let segments = Netlist.num_segments net in
  let scan_bits = Netlist.total_bits net in
  let shadow_bits =
    Array.fold_left (fun acc s -> acc + s.Netlist.seg_shadow) 0 net.segs
  in
  let controls = Hashtbl.create 32 in
  let primaries = Hashtbl.create 8 in
  Array.iter
    (fun (m : Netlist.mux) ->
      Array.iter
        (function
          | Netlist.Ctrl_shadow { cseg; cbit } ->
              Hashtbl.replace controls (cseg, cbit) ()
          | Netlist.Ctrl_primary p -> Hashtbl.replace primaries p ()
          | Netlist.Ctrl_const _ -> ())
        m.mux_addr)
    net.muxes;
  let lens = Array.map (fun s -> s.Netlist.seg_len) net.segs in
  let min_seg_len = Array.fold_left min max_int lens in
  let max_seg_len = Array.fold_left max 0 lens in
  let reset_path_segments, reset_path_bits =
    match Config.active_path net (Config.reset net) with
    | Some p -> (List.length p, Config.path_length net p)
    | None -> (0, 0)
  in
  (* Steer every mux to its last sensitizable selection: in SIB-style
     networks this splices every hosted chain in, giving the longest
     access path. *)
  let full_cfg = Config.reset net in
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      let want = Array.length mx.mux_inputs - 1 in
      Array.iteri
        (fun b ctrl ->
          let v = want land (1 lsl b) <> 0 in
          match ctrl with
          | Netlist.Ctrl_shadow { cseg; cbit } ->
              Config.set_shadow full_cfg ~seg:cseg ~bit:cbit v
          | Netlist.Ctrl_const _ | Netlist.Ctrl_primary _ -> ())
        mx.mux_addr;
      ignore m)
    net.muxes;
  let full_path_bits =
    match Config.active_path net full_cfg with
    | Some p -> Config.path_length net p
    | None -> 0
  in
  {
    segments;
    muxes = Netlist.num_muxes net;
    scan_bits;
    shadow_bits;
    control_bits = Hashtbl.length controls;
    primary_controls = Hashtbl.length primaries;
    levels = Netlist.max_hier net;
    min_seg_len;
    max_seg_len;
    mean_seg_len = float_of_int scan_bits /. float_of_int (max 1 segments);
    reset_path_segments;
    reset_path_bits;
    full_path_bits;
  }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>%d segments (len %d..%d, mean %.1f), %d muxes, %d levels@,\
     %d scan bits, %d shadow bits (%d control), %d primary controls@,\
     reset path: %d segments / %d bits; fully-open path: %d bits@]"
    s.segments s.min_seg_len s.max_seg_len s.mean_seg_len s.muxes s.levels
    s.scan_bits s.shadow_bits s.control_bits s.primary_controls
    s.reset_path_segments s.reset_path_bits s.full_path_bits
