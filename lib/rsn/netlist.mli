(** Structural netlists of reconfigurable scan networks (RSNs).

    An RSN (IEEE Std 1687 / iJTAG style, paper §II-A) consists of scan
    segments, scan multiplexers and control logic between a primary scan-in
    and a primary scan-out port.  A {e scan segment} has a shift register of
    [seg_len] flip-flops and an optional shadow register whose bits may
    drive multiplexer address inputs.  A {e scan multiplexer} routes one of
    its data inputs to its output according to address bits read from
    shadow registers (or primary control inputs).

    The netlist is purely structural; configuration state lives in
    {!Config.t} and operational semantics in {!Sim}. *)

(** A driver/consumer endpoint in the scan dataflow. *)
type node =
  | Scan_in        (** primary scan-in port *)
  | Scan_out       (** primary scan-out port (only as a consumer) *)
  | Seg of int     (** output of segment [i] *)
  | Mux of int     (** output of multiplexer [i] *)

(** Source of a 1-bit control signal (multiplexer address). *)
type control =
  | Ctrl_const of bool
      (** tied off *)
  | Ctrl_shadow of { cseg : int; cbit : int }
      (** bit [cbit] of segment [cseg]'s shadow register *)
  | Ctrl_primary of string
      (** a primary control input, settable without scan access (used for
          the duplicated scan ports of the fault-tolerant synthesis) *)

type segment = {
  seg_name : string;
  seg_len : int;          (** shift register length, >= 1 *)
  seg_shadow : int;
      (** shadow register length, [0 <= seg_shadow <= seg_len]; 0 = no
          shadow.  Shadow bit [j] mirrors shift stage
          [seg_len - seg_shadow + j] on update, i.e. the shadow covers the
          {e tail} of the shift register — so control bits appended by the
          fault-tolerant synthesis never collide with instrument data. *)
  seg_input : node;       (** driver of the segment's scan-in port *)
  seg_reset : bool array; (** reset state of the shadow bits *)
  seg_hier : int;         (** hierarchy depth, for reporting only *)
}

type mux = {
  mux_name : string;
  mux_inputs : node array;   (** data inputs, >= 2 *)
  mux_addr : control array;  (** address bits, LSB first *)
  mux_tmr : bool;            (** address signals hardened by TMR *)
  mux_rescue_from : int;
      (** selections [>= mux_rescue_from] are redundant rescue routes
          added by the fault-tolerant synthesis (an extra address bit ORed
          into the decode): retargeting only takes them when the normal
          selections fail.  [>= Array.length mux_inputs] means none. *)
}

type t = {
  net_name : string;
  segs : segment array;
  muxes : mux array;
  out_src : node;            (** driver of the primary scan-out port *)
  select_hardened : bool;    (** select network with two assertion stems *)
  dual_ports : bool;         (** duplicated primary scan-in/scan-out *)
}

val validate : t -> (unit, string) result
(** Checks structural sanity: node references in range, mux arities and
    address widths consistent, shadow references within shadow lengths,
    reset vectors of the right length, element graph acyclic, and every
    element both reachable from scan-in and co-reachable from scan-out. *)

val num_segments : t -> int
val num_muxes : t -> int

val total_bits : t -> int
(** Total scan bits: sum of all shift register lengths. *)

val seg_len : t -> int -> int
val segment_name : t -> int -> string

val max_hier : t -> int
(** Deepest [seg_hier] value (the "levels" RSN characteristic). *)

(** Dense integer ids for scan elements, used by the graph views and the
    fault universe.  Layout: scan-in, scan-out, all segments, all muxes. *)
module Elt : sig
  val scan_in : int
  val scan_out : int
  val of_seg : int -> int
  val of_mux : t -> int -> int
  val of_node : t -> node -> int
  val count : t -> int
  val to_node : t -> int -> node
  val name : t -> int -> string
end

val element_graph : t -> Ftrsn_topo.Digraph.t
(** The directed graph over element ids ({!Elt}) with an edge per
    interconnect (mux inputs/outputs, segment inputs, port connections). *)

val dataflow_graph : t -> Ftrsn_topo.Digraph.t * int array
(** The paper's dataflow graph (§III-B): vertices are scan segments plus
    the two ports ([Elt.scan_in] = 0 is the root, [Elt.scan_out] = 1 the
    sink, segment [i] is vertex [2 + i]); multiplexers are collapsed so
    each mux input contributes an edge from its driving segment/port to the
    elements fed by the mux.  Control logic is excluded.  The second
    component maps each dataflow vertex to its topological level. *)

val edge_routes : t -> (int * int, (int * int) list list) Hashtbl.t
(** For every dataflow edge [(src, dst)] (dataflow vertex ids), its steering
    routes: each route is the list of [(mux, input index)] pairs that must
    be configured, listed from the consumer towards the source, to
    sensitize that interconnect.  An empty route is a direct connection.
    Several routes arise when multiple mux input combinations resolve to
    the same source (e.g. the redundantly-steered augmentation muxes of the
    fault-tolerant synthesis). *)

val mux_input_class : t -> int -> int -> int
(** [mux_input_class net m k] is the canonical index of mux [m]'s input
    [k]: the first input index driven by the same node.  Inputs sharing a
    driver (the one-hot 4:1 realization of dual-steered muxes duplicates
    its second data port) are physically one port, so stuck-at faults on
    them are identified. *)

val mux_on_edge : t -> src:int -> dst:int -> int option
(** [mux_on_edge net ~src ~dst] is the mux (if any) through which dataflow
    edge [src -> dst] (dataflow vertex ids) is routed in the netlist.
    [None] means a direct interconnect. *)

val pp_summary : Format.formatter -> t -> unit
