type spec =
  | Segment of { name : string; len : int; shadow : int }
  | Sib of { name : string; inner : spec list }

let leaf ~name ~len =
  Sib { name = name ^ ".sib"; inner = [ Segment { name; len; shadow = 0 } ] }

let rec count_muxes specs =
  List.fold_left
    (fun acc s ->
      match s with
      | Segment _ -> acc
      | Sib { inner; _ } -> acc + 1 + count_muxes inner)
    0 specs

let rec count_segments specs =
  List.fold_left
    (fun acc s ->
      match s with
      | Segment _ -> acc + 1
      | Sib { inner; _ } -> acc + 1 + count_segments inner)
    0 specs

let rec count_bits specs =
  List.fold_left
    (fun acc s ->
      match s with
      | Segment { len; _ } -> acc + len
      | Sib { inner; _ } -> acc + 1 + count_bits inner)
    0 specs

let rec depth specs =
  List.fold_left
    (fun acc s ->
      match s with
      | Segment _ -> acc
      | Sib { inner; _ } -> max acc (1 + depth inner))
    0 specs

type flavor = [ `Post | `Pre ]

let build ?(flavor = `Post) ~name specs =
  let b = Builder.create name in
  (* [chain] threads the scan path through a spec list, returning the node
     that drives whatever follows the list. *)
  let rec chain input hier specs =
    List.fold_left
      (fun cur spec ->
        match spec with
        | Segment { name; len; shadow } ->
            (* An instrument segment lives at its host SIB's level. *)
            let s =
              Builder.add_segment b ~shadow ~hier:(max 1 (hier - 1)) ~name
                ~len ~input:cur ()
            in
            Netlist.Seg s
        | Sib { name; inner } -> (
            match flavor with
            | `Post ->
                (* register first, hosted chain off its output, mux after *)
                let sib =
                  Builder.add_segment b ~shadow:1 ~hier ~name ~len:1
                    ~input:cur ()
                in
                let sub_out = chain (Netlist.Seg sib) (hier + 1) inner in
                let m =
                  Builder.add_mux b ~name:(name ^ ".mux")
                    ~inputs:[ Netlist.Seg sib; sub_out ]
                    ~addr:[ Netlist.Ctrl_shadow { cseg = sib; cbit = 0 } ]
                    ()
                in
                Netlist.Mux m
            | `Pre ->
                (* hosted chain off the scan-in, mux before the register *)
                let sub_out = chain cur (hier + 1) inner in
                let sib_id = Builder.seg_count b in
                let m =
                  Builder.add_mux b ~name:(name ^ ".mux")
                    ~inputs:[ cur; sub_out ]
                    ~addr:[ Netlist.Ctrl_shadow { cseg = sib_id; cbit = 0 } ]
                    ()
                in
                let sib =
                  Builder.add_segment b ~shadow:1 ~hier ~name ~len:1
                    ~input:(Netlist.Mux m) ()
                in
                assert (sib = sib_id);
                Netlist.Seg sib))
      input specs
  in
  let out = chain Netlist.Scan_in 1 specs in
  Builder.finish b ~out ()
