(** Construction of SIB-based RSNs (paper §IV-A).

    A segment insertion bit (SIB) is a 1-bit scan segment plus a 2:1 scan
    multiplexer: when the SIB register holds 0 the mux bypasses the hosted
    sub-network, when it holds 1 the sub-network is spliced into the scan
    path after the SIB bit.  Hierarchies of SIBs yield the SIB-based RSNs
    generated from the ITC'02 SoC benchmarks in the paper's evaluation. *)

type spec =
  | Segment of { name : string; len : int; shadow : int }
      (** a plain scan segment spliced directly into the current chain *)
  | Sib of { name : string; inner : spec list }
      (** a SIB hosting the chain [inner] *)

val leaf : name:string -> len:int -> spec
(** [leaf ~name ~len] is a SIB gating one instrument segment of [len] bits
    — the common leaf pattern of ITC'02-derived networks. *)

(** The two SIB realizations found in the IEEE 1687 literature:
    - [`Post] (default): the SIB register sits BEFORE its mux on the scan
      path; the hosted network branches off the register's output
      (Zadegan et al., DATE'11 style);
    - [`Pre]: the mux sits before the register; the hosted network
      branches off the SIB's scan-in, and rejoins through the mux into the
      register.  Dataflow degrees differ slightly, which makes [`Pre] a
      useful generality check for the synthesis. *)
type flavor = [ `Post | `Pre ]

val build : ?flavor:flavor -> name:string -> spec list -> Netlist.t
(** [build ~name specs] assembles the top-level chain [specs] between the
    primary scan ports.  SIB registers reset to 0 (sub-network bypassed). *)

val count_muxes : spec list -> int
val count_segments : spec list -> int
val count_bits : spec list -> int
val depth : spec list -> int
(** Static characteristics of a spec forest, matching what {!build}
    produces ({!depth} is the max SIB nesting, the "levels" column). *)
