(** Random RSN generation beyond the SIB idiom, for property-based testing.

    The generated networks are branchy mux networks in the style of the
    paper's fig. 2: a backbone chain of segments with randomly inserted
    bypassable branches, steered by dedicated shadow bits of
    configuration segments placed earlier on the backbone.  Invariants by
    construction (checked by {!Netlist.validate}):
    - acyclic, all elements reachable and co-reachable;
    - the reset configuration selects the backbone;
    - every mux address bit has a dedicated driver bit (no shared-driver
      conflicts), so the structural engine's steering model is exact. *)

val generate : seed:int -> ?segments:int -> unit -> Netlist.t
(** [generate ~seed ()] builds a deterministic pseudo-random netlist with
    roughly [segments] (default 8) scan segments. *)
