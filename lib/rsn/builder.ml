type b = {
  name : string;
  mutable segs_rev : Netlist.segment list;
  mutable nsegs : int;
  mutable muxes_rev : Netlist.mux list;
  mutable nmuxes : int;
}

let create name =
  { name; segs_rev = []; nsegs = 0; muxes_rev = []; nmuxes = 0 }

let add_segment b ?(shadow = 0) ?reset ?(hier = 1) ~name ~len ~input () =
  let reset =
    match reset with Some r -> Array.copy r | None -> Array.make shadow false
  in
  if Array.length reset <> shadow then
    invalid_arg "Builder.add_segment: reset length mismatch";
  let seg =
    {
      Netlist.seg_name = name;
      seg_len = len;
      seg_shadow = shadow;
      seg_input = input;
      seg_reset = reset;
      seg_hier = hier;
    }
  in
  b.segs_rev <- seg :: b.segs_rev;
  b.nsegs <- b.nsegs + 1;
  b.nsegs - 1

let add_mux b ?(tmr = false) ?rescue_from ~name ~inputs ~addr () =
  let mux =
    {
      Netlist.mux_name = name;
      mux_inputs = Array.of_list inputs;
      mux_addr = Array.of_list addr;
      mux_tmr = tmr;
      mux_rescue_from =
        Option.value ~default:(List.length inputs) rescue_from;
    }
  in
  b.muxes_rev <- mux :: b.muxes_rev;
  b.nmuxes <- b.nmuxes + 1;
  b.nmuxes - 1

let seg_count b = b.nsegs
let mux_count b = b.nmuxes

let finish b ?(select_hardened = false) ?(dual_ports = false) ~out () =
  let net =
    {
      Netlist.net_name = b.name;
      segs = Array.of_list (List.rev b.segs_rev);
      muxes = Array.of_list (List.rev b.muxes_rev);
      out_src = out;
      select_hardened;
      dual_ports;
    }
  in
  match Netlist.validate net with
  | Ok () -> net
  | Error msg -> invalid_arg ("Builder.finish: invalid netlist: " ^ msg)
