(** Cycle-accurate CSU-level simulation of RSN netlists, with optional
    stuck-at fault injection.

    A read/write access to an RSN is a CSU operation (paper §II-A): one
    capture cycle, a number of shift cycles, one update cycle.  The
    simulator executes CSU operations against the structural netlist: each
    shift cycle evaluates the combinational scan routing (multiplexers,
    ports) and clocks every selected segment.  This is the ground truth the
    access-computation engines are validated against. *)

(** Stuck-at overrides applied during simulation.  All lists are
    association-style; absent entries mean fault-free behaviour. *)
type injection = {
  stuck_shift : (int * int * bool) list;     (** (segment, flop, value) *)
  stuck_shadow : (int * int * bool) list;    (** (segment, bit, value) *)
  stuck_seg_in : (int * bool) list;          (** segment scan-in port *)
  stuck_seg_out : (int * bool) list;         (** segment scan-out port *)
  stuck_mux_addr : (int * int * bool) list;  (** (mux, addr bit, value) *)
  stuck_mux_in : (int * int * bool) list;    (** (mux, input port, value) *)
  stuck_mux_out : (int * bool) list;         (** mux output port *)
  stuck_select : (int * bool) list;          (** segment select line *)
  stuck_capture : (int * bool) list;         (** capture enable line *)
  stuck_update : (int * bool) list;          (** update enable line *)
  stuck_pi : bool option;                    (** primary scan-in port *)
  stuck_po : bool option;                    (** primary scan-out port *)
}

val no_injection : injection

type state = {
  shift : bool array array;       (** shift register contents, per segment *)
  config : Config.t;              (** shadow registers *)
  instrument : bool array array;  (** data-input values captured by segments *)
}

val initial : Netlist.t -> state
(** Reset state: shift registers all-zero, shadows at reset. *)

val effective_config : Netlist.t -> injection -> Config.t -> Config.t
(** The configuration as seen by the control logic: shadow values with the
    stuck-shadow overrides applied. *)

val effective_selection : Netlist.t -> injection -> Config.t -> int -> int option
(** Mux selection under a configuration with address-line stucks applied. *)

(** One element on the traced scan route: a segment, or a mux with the
    input it currently selects. *)
type trace_item = T_seg of int | T_mux of int * int

val active_trace : Netlist.t -> injection -> Config.t -> trace_item list option
(** Full element-level scan route from scan-in to scan-out under a
    configuration with injection applied, or [None] if the configuration
    is invalid. *)

val active_path : Netlist.t -> injection -> Config.t -> int list option
(** Active scan path (segments only) under injection (address and shadow
    stucks change the routing; data stucks do not). *)

val csu :
  Netlist.t ->
  ?inj:injection ->
  ?updis:int list ->
  state ->
  scan_in:bool list ->
  bool list
(** [csu net state ~scan_in] performs one CSU operation, shifting the
    [scan_in] stream in (one shift cycle per element) and returning the
    stream observed at the primary scan-out port (same length).  [state] is
    updated in place (capture at the start, update at the end).  [updis]
    lists segments whose update is disabled for this operation (the Updis
    control of the paper's formal model) — used by retargeting to keep
    corrupted data out of shadow registers. *)

val shift_only :
  Netlist.t -> ?inj:injection -> state -> scan_in:bool list -> bool list
(** Shift cycles without capture and update (for chain diagnosis tests). *)
