type injection = {
  stuck_shift : (int * int * bool) list;
  stuck_shadow : (int * int * bool) list;
  stuck_seg_in : (int * bool) list;
  stuck_seg_out : (int * bool) list;
  stuck_mux_addr : (int * int * bool) list;
  stuck_mux_in : (int * int * bool) list;
  stuck_mux_out : (int * bool) list;
  stuck_select : (int * bool) list;
  stuck_capture : (int * bool) list;
  stuck_update : (int * bool) list;
  stuck_pi : bool option;
  stuck_po : bool option;
}

let no_injection =
  {
    stuck_shift = [];
    stuck_shadow = [];
    stuck_seg_in = [];
    stuck_seg_out = [];
    stuck_mux_addr = [];
    stuck_mux_in = [];
    stuck_mux_out = [];
    stuck_select = [];
    stuck_capture = [];
    stuck_update = [];
    stuck_pi = None;
    stuck_po = None;
  }

type state = {
  shift : bool array array;
  config : Config.t;
  instrument : bool array array;
}

let initial (net : Netlist.t) =
  {
    shift = Array.map (fun s -> Array.make s.Netlist.seg_len false) net.segs;
    config = Config.reset net;
    instrument =
      Array.map (fun s -> Array.make s.Netlist.seg_len false) net.segs;
  }

let assoc2 l a b = List.find_map (fun (x, y, v) -> if x = a && y = b then Some v else None) l

let pin_stuck_shadows inj (c : Config.t) =
  List.iter (fun (s, b, v) -> c.Config.shadows.(s).(b) <- v) inj.stuck_shadow

let effective_config (_net : Netlist.t) inj (c : Config.t) =
  let c' = Config.copy c in
  pin_stuck_shadows inj c';
  c'

let effective_selection (net : Netlist.t) inj c m =
  let mux = net.muxes.(m) in
  let v = ref 0 in
  Array.iteri
    (fun i a ->
      let bit =
        match assoc2 inj.stuck_mux_addr m i with
        | Some forced -> forced
        | None -> Config.control_value net c a
      in
      if bit then v := !v lor (1 lsl i))
    mux.mux_addr;
  if !v < Array.length mux.mux_inputs then Some !v else None

type trace_item = T_seg of int | T_mux of int * int

let active_trace (net : Netlist.t) inj c =
  let c = effective_config net inj c in
  let bound = 2 * (Netlist.Elt.count net + 1) in
  let rec walk node acc steps =
    if steps > bound then None
    else
      match node with
      | Netlist.Scan_in -> Some acc
      | Netlist.Scan_out -> None
      | Netlist.Seg i ->
          walk net.segs.(i).seg_input (T_seg i :: acc) (steps + 1)
      | Netlist.Mux m -> (
          match effective_selection net inj c m with
          | None -> None
          | Some k ->
              walk net.muxes.(m).mux_inputs.(k) (T_mux (m, k) :: acc)
                (steps + 1))
  in
  walk net.out_src [] 0

let active_path net inj c =
  match active_trace net inj c with
  | None -> None
  | Some items ->
      Some
        (List.filter_map
           (function T_seg i -> Some i | T_mux _ -> None)
           items)

(* Which segments shift this CSU: active path membership adjusted by
   select-line stucks. *)
let selected_set (net : Netlist.t) inj c =
  let n = Netlist.num_segments net in
  let sel = Array.make n false in
  (match active_path net inj c with
  | Some path -> List.iter (fun i -> sel.(i) <- true) path
  | None -> ());
  List.iter (fun (i, v) -> sel.(i) <- v) inj.stuck_select;
  sel

(* Combinational value at a node given the current register state.  [memo]
   caches per-cycle evaluations (the netlist is a DAG). *)
let value_of_node (net : Netlist.t) inj c state pi_bit =
  let memo = Hashtbl.create 32 in
  let rec value node =
    match node with
    | Netlist.Scan_in -> (
        match inj.stuck_pi with Some v -> v | None -> pi_bit)
    | Netlist.Scan_out -> invalid_arg "Sim: scan-out has no value"
    | Netlist.Seg i -> (
        match List.assoc_opt i inj.stuck_seg_out with
        | Some v -> v
        | None -> state.shift.(i).(net.segs.(i).seg_len - 1))
    | Netlist.Mux m -> (
        match Hashtbl.find_opt memo m with
        | Some v -> v
        | None ->
            let v =
              match List.assoc_opt m inj.stuck_mux_out with
              | Some forced -> forced
              | None -> (
                  match effective_selection net inj c m with
                  | None -> false
                  | Some k -> (
                      match assoc2 inj.stuck_mux_in m k with
                      | Some forced -> forced
                      | None -> value net.muxes.(m).mux_inputs.(k)))
            in
            Hashtbl.add memo m v;
            v)
  in
  value

let shift_cycle (net : Netlist.t) inj state sel pi_bit =
  let c = effective_config net inj state.config in
  let value = value_of_node net inj c state pi_bit in
  let po =
    match inj.stuck_po with Some v -> v | None -> value net.out_src
  in
  (* Evaluate every selected segment's next first bit before clocking. *)
  let first = Array.make (Netlist.num_segments net) false in
  Array.iteri
    (fun i (s : Netlist.segment) ->
      if sel.(i) then
        first.(i) <-
          (match List.assoc_opt i inj.stuck_seg_in with
          | Some v -> v
          | None -> value s.seg_input))
    net.segs;
  Array.iteri
    (fun i (s : Netlist.segment) ->
      if sel.(i) then begin
        let r = state.shift.(i) in
        for j = s.seg_len - 1 downto 1 do
          r.(j) <- r.(j - 1)
        done;
        r.(0) <- first.(i)
      end)
    net.segs;
  List.iter (fun (i, j, v) -> state.shift.(i).(j) <- v) inj.stuck_shift;
  po

let capture_op (net : Netlist.t) inj state sel =
  Array.iteri
    (fun i (_ : Netlist.segment) ->
      let enabled =
        match List.assoc_opt i inj.stuck_capture with
        | Some v -> v
        | None -> sel.(i)
      in
      if enabled then
        Array.blit state.instrument.(i) 0 state.shift.(i) 0
          (Array.length state.shift.(i)))
    net.segs;
  List.iter (fun (i, j, v) -> state.shift.(i).(j) <- v) inj.stuck_shift

let update_op (net : Netlist.t) inj state sel updis =
  Array.iteri
    (fun i (s : Netlist.segment) ->
      let enabled =
        match List.assoc_opt i inj.stuck_update with
        | Some v -> v
        | None -> sel.(i) && not (List.mem i updis)
      in
      if enabled && s.seg_shadow > 0 then begin
        (* The shadow register mirrors the LAST [seg_shadow] stages of the
           shift register, so control bits appended by the fault-tolerant
           synthesis never collide with instrument data at the head. *)
        let off = s.seg_len - s.seg_shadow in
        for j = 0 to s.seg_shadow - 1 do
          state.config.Config.shadows.(i).(j) <- state.shift.(i).(off + j)
        done
      end)
    net.segs;
  pin_stuck_shadows inj state.config

let run_shifts net inj state ~scan_in =
  let sel = selected_set net inj state.config in
  List.map (fun bit -> shift_cycle net inj state sel bit) scan_in

let csu net ?(inj = no_injection) ?(updis = []) state ~scan_in =
  let sel = selected_set net inj state.config in
  capture_op net inj state sel;
  let out = run_shifts net inj state ~scan_in in
  (* Selection is re-derived for update: shifting cannot have changed it
     (shadows only change at update), but select stucks must stay pinned. *)
  update_op net inj state sel updis;
  out

let shift_only net ?(inj = no_injection) state ~scan_in =
  run_shifts net inj state ~scan_in
