(** Descriptive statistics of RSN netlists, for reports and sanity checks. *)

type t = {
  segments : int;
  muxes : int;
  scan_bits : int;          (** total shift-register flops *)
  shadow_bits : int;        (** total shadow flops *)
  control_bits : int;       (** shadow bits driving mux addresses *)
  primary_controls : int;   (** distinct primary control inputs *)
  levels : int;             (** hierarchy depth *)
  min_seg_len : int;
  max_seg_len : int;
  mean_seg_len : float;
  reset_path_segments : int;
  reset_path_bits : int;    (** shift cycles of a reset-configuration CSU *)
  full_path_bits : int;
      (** shift cycles with every mux steered to its highest-numbered
          sensitizable selection (the "everything spliced in" bound for
          SIB-style networks) *)
}

val compute : Netlist.t -> t

val pp : Format.formatter -> t -> unit
