(** Scan configurations and active-path computation.

    A {e scan configuration} is the state of all shadow registers and
    primary control inputs (paper §II-A).  The {e active scan path} is the
    unique scan route from the primary scan-in to the primary scan-out
    determined by the multiplexer address values; a configuration is valid
    iff tracing from the scan-out port reaches the scan-in port. *)

type t = {
  shadows : bool array array;        (** per segment, its shadow bits *)
  primaries : (string * bool) list;  (** primary control input values *)
}

val reset : Netlist.t -> t
(** The reset configuration: every shadow register at its reset state, all
    primary control inputs low. *)

val copy : t -> t
val equal : t -> t -> bool

val get_shadow : t -> seg:int -> bit:int -> bool
val set_shadow : t -> seg:int -> bit:int -> bool -> unit
val set_primary : t -> string -> bool -> t
(** Functional update of a primary control input. *)

val control_value : Netlist.t -> t -> Netlist.control -> bool
(** Value of a control source under a configuration. *)

val mux_selection : Netlist.t -> t -> int -> int option
(** [mux_selection net c m] is the input index selected by mux [m] under
    [c], or [None] if the address decodes outside the input range. *)

val active_path : Netlist.t -> t -> int list option
(** [active_path net c] is the list of segment indices on the active scan
    path, ordered from scan-in to scan-out, or [None] if [c] is not a
    valid configuration (the backwards trace fails to reach scan-in). *)

val path_length : Netlist.t -> int list -> int
(** Number of shift cycles needed to traverse the given path: the sum of
    the segment shift-register lengths. *)

val is_selected : Netlist.t -> t -> int -> bool
(** Whether a segment lies on the active scan path. *)
