(** Low-level netlist construction. *)

type b
(** A netlist under construction. *)

val create : string -> b

val add_segment :
  b ->
  ?shadow:int ->
  ?reset:bool array ->
  ?hier:int ->
  name:string ->
  len:int ->
  input:Netlist.node ->
  unit ->
  int
(** Adds a scan segment and returns its index.  [shadow] defaults to 0,
    [reset] to all-zero of length [shadow], [hier] to 1. *)

val add_mux :
  b ->
  ?tmr:bool ->
  ?rescue_from:int ->
  name:string ->
  inputs:Netlist.node list ->
  addr:Netlist.control list ->
  unit ->
  int
(** Adds a scan multiplexer and returns its index. *)

val seg_count : b -> int
val mux_count : b -> int

val finish :
  b ->
  ?select_hardened:bool ->
  ?dual_ports:bool ->
  out:Netlist.node ->
  unit ->
  Netlist.t
(** Seals the netlist with [out] driving the primary scan-out port.
    @raise Invalid_argument if the result fails {!Netlist.validate}. *)
