let node_to_string (net : Netlist.t) = function
  | Netlist.Scan_in -> "pi"
  | Netlist.Scan_out -> "po"
  | Netlist.Seg i -> "seg:" ^ net.segs.(i).seg_name
  | Netlist.Mux i -> "mux:" ^ net.muxes.(i).mux_name

let ctrl_to_string (net : Netlist.t) = function
  | Netlist.Ctrl_const b -> if b then "const:1" else "const:0"
  | Netlist.Ctrl_shadow { cseg; cbit } ->
      Printf.sprintf "shadow:%s.%d" net.segs.(cseg).seg_name cbit
  | Netlist.Ctrl_primary p -> "primary:" ^ p

let to_string (net : Netlist.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("rsn " ^ net.net_name);
  if net.select_hardened then Buffer.add_string buf " select_hardened";
  if net.dual_ports then Buffer.add_string buf " dual_ports";
  Buffer.add_char buf '\n';
  Array.iter
    (fun (s : Netlist.segment) ->
      let reset =
        String.concat ""
          (List.map (fun b -> if b then "1" else "0")
             (Array.to_list s.seg_reset))
      in
      Buffer.add_string buf
        (Printf.sprintf "seg %s len=%d shadow=%d reset=%s hier=%d input=%s\n"
           s.seg_name s.seg_len s.seg_shadow
           (if reset = "" then "-" else reset)
           s.seg_hier
           (node_to_string net s.seg_input)))
    net.segs;
  Array.iter
    (fun (m : Netlist.mux) ->
      Buffer.add_string buf
        (Printf.sprintf "mux %s%s%s inputs=%s addr=%s\n" m.mux_name
           (if m.mux_tmr then " tmr" else "")
           (if m.mux_rescue_from < Array.length m.mux_inputs then
              Printf.sprintf " rescue=%d" m.mux_rescue_from
            else "")
           (String.concat ","
              (List.map (node_to_string net) (Array.to_list m.mux_inputs)))
           (String.concat ","
              (List.map (ctrl_to_string net) (Array.to_list m.mux_addr)))))
    net.muxes;
  Buffer.add_string buf ("out " ^ node_to_string net net.out_src ^ "\n");
  Buffer.contents buf

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let split_ws line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let kv_field fields key =
  List.find_map
    (fun f ->
      let prefix = key ^ "=" in
      if String.length f > String.length prefix
         && String.sub f 0 (String.length prefix) = prefix
      then Some (String.sub f (String.length prefix)
                   (String.length f - String.length prefix))
      else if f = prefix then Some ""
      else None)
    fields

let required fields key =
  match kv_field fields key with
  | Some v -> v
  | None -> fail "missing field %s" key

(* Intermediate declarations collected in a first pass, so that node
   references can point at not-yet-declared elements. *)
type decl =
  | D_seg of { name : string; len : int; shadow : int; reset : string;
               hier : int; input : string }
  | D_mux of { name : string; tmr : bool; rescue : int option;
               inputs : string list; addr : string list }

let parse text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    let name = ref "" in
    let select_hardened = ref false in
    let dual_ports = ref false in
    let out = ref None in
    let decls = ref [] in
    List.iter
      (fun line ->
        match split_ws line with
        | "rsn" :: n :: opts ->
            name := n;
            List.iter
              (function
                | "select_hardened" -> select_hardened := true
                | "dual_ports" -> dual_ports := true
                | o -> fail "unknown rsn option %s" o)
              opts
        | "seg" :: n :: fields ->
            decls :=
              D_seg
                {
                  name = n;
                  len = int_of_string (required fields "len");
                  shadow = int_of_string (required fields "shadow");
                  reset = required fields "reset";
                  hier = int_of_string (required fields "hier");
                  input = required fields "input";
                }
              :: !decls
        | "mux" :: n :: fields ->
            let tmr = List.mem "tmr" fields in
            let rescue = Option.map int_of_string (kv_field fields "rescue") in
            decls :=
              D_mux
                {
                  name = n;
                  tmr;
                  rescue;
                  inputs =
                    String.split_on_char ',' (required fields "inputs");
                  addr = String.split_on_char ',' (required fields "addr");
                }
              :: !decls
        | [ "out"; n ] -> out := Some n
        | w :: _ -> fail "unknown declaration %s" w
        | [] -> ())
      lines;
    let decls = List.rev !decls in
    let seg_ids = Hashtbl.create 16 and mux_ids = Hashtbl.create 16 in
    let nsegs = ref 0 and nmuxes = ref 0 in
    List.iter
      (function
        | D_seg { name; _ } ->
            if Hashtbl.mem seg_ids name then fail "duplicate segment %s" name;
            Hashtbl.add seg_ids name !nsegs;
            incr nsegs
        | D_mux { name; _ } ->
            if Hashtbl.mem mux_ids name then fail "duplicate mux %s" name;
            Hashtbl.add mux_ids name !nmuxes;
            incr nmuxes)
      decls;
    let node_of_string s =
      if s = "pi" then Netlist.Scan_in
      else if s = "po" then Netlist.Scan_out
      else
        match String.index_opt s ':' with
        | Some i -> (
            let kind = String.sub s 0 i in
            let n = String.sub s (i + 1) (String.length s - i - 1) in
            match kind with
            | "seg" -> (
                match Hashtbl.find_opt seg_ids n with
                | Some id -> Netlist.Seg id
                | None -> fail "unknown segment %s" n)
            | "mux" -> (
                match Hashtbl.find_opt mux_ids n with
                | Some id -> Netlist.Mux id
                | None -> fail "unknown mux %s" n)
            | _ -> fail "bad node %s" s)
        | None -> fail "bad node %s" s
    in
    let ctrl_of_string s =
      match String.index_opt s ':' with
      | None -> fail "bad control %s" s
      | Some i -> (
          let kind = String.sub s 0 i in
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match kind with
          | "const" -> Netlist.Ctrl_const (rest = "1")
          | "primary" -> Netlist.Ctrl_primary rest
          | "shadow" -> (
              match String.rindex_opt rest '.' with
              | None -> fail "bad shadow control %s" s
              | Some j ->
                  let sname = String.sub rest 0 j in
                  let bit =
                    int_of_string
                      (String.sub rest (j + 1) (String.length rest - j - 1))
                  in
                  let cseg =
                    match Hashtbl.find_opt seg_ids sname with
                    | Some id -> id
                    | None -> fail "unknown segment %s in control" sname
                  in
                  Netlist.Ctrl_shadow { cseg; cbit = bit })
          | _ -> fail "bad control %s" s)
    in
    let segs = ref [] and muxes = ref [] in
    List.iter
      (function
        | D_seg { name; len; shadow; reset; hier; input } ->
            let reset_bits =
              if reset = "-" then Array.make shadow false
              else
                Array.init (String.length reset) (fun i -> reset.[i] = '1')
            in
            segs :=
              {
                Netlist.seg_name = name;
                seg_len = len;
                seg_shadow = shadow;
                seg_input = node_of_string input;
                seg_reset = reset_bits;
                seg_hier = hier;
              }
              :: !segs
        | D_mux { name; tmr; rescue; inputs; addr } ->
            muxes :=
              {
                Netlist.mux_name = name;
                mux_inputs =
                  Array.of_list (List.map node_of_string inputs);
                mux_addr = Array.of_list (List.map ctrl_of_string addr);
                mux_tmr = tmr;
                mux_rescue_from =
                  Option.value ~default:(List.length inputs) rescue;
              }
              :: !muxes)
      decls;
    let out_src =
      match !out with
      | Some n -> node_of_string n
      | None -> fail "missing out declaration"
    in
    let net =
      {
        Netlist.net_name = !name;
        segs = Array.of_list (List.rev !segs);
        muxes = Array.of_list (List.rev !muxes);
        out_src;
        select_hardened = !select_hardened;
        dual_ports = !dual_ports;
      }
    in
    match Netlist.validate net with
    | Ok () -> Ok net
    | Error e -> Error ("invalid netlist: " ^ e)
  with
  | Parse_error e -> Error e
  | Failure e -> Error e
