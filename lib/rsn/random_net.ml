let generate ~seed ?(segments = 8) () =
  let st = Random.State.make [| seed |] in
  let b = Builder.create (Printf.sprintf "rand%d" seed) in
  (* Backbone segments; some carry spare shadow bits usable as dedicated
     mux addresses.  [spare.(i)] counts the unclaimed control bits of
     segment i. *)
  let ids = ref [] in
  let spare = Hashtbl.create 16 in
  let claim_ctrl () =
    (* Find an already-built segment with a spare control bit. *)
    let candidates =
      List.filter (fun s -> Hashtbl.find spare s > 0) !ids
    in
    match candidates with
    | [] -> None
    | _ ->
        let s = List.nth candidates (Random.State.int st (List.length candidates)) in
        let used = Hashtbl.find spare s in
        Hashtbl.replace spare s (used - 1);
        (* Bits are claimed from the top: shadow index = remaining - 1. *)
        Some (s, used - 1)
  in
  let tail = ref Netlist.Scan_in in
  let n = max 3 segments in
  for i = 0 to n - 1 do
    let len = 1 + Random.State.int st 4 in
    let shadow = if Random.State.bool st then min len 2 else 0 in
    let seg =
      Builder.add_segment b ~shadow
        ~name:(Printf.sprintf "s%d" i)
        ~len ~input:!tail ()
    in
    Hashtbl.replace spare seg shadow;
    ids := seg :: !ids;
    tail := Netlist.Seg seg;
    (* Occasionally make the NEXT hop a mux that can bypass back to an
       older segment (a reconfigurable branch), steered by a dedicated
       control bit.  Input 0 keeps the backbone, so reset stays valid. *)
    if i >= 2 && Random.State.int st 100 < 45 then begin
      match claim_ctrl () with
      | None -> ()
      | Some (cseg, cbit) ->
          let older =
            List.nth !ids (Random.State.int st (List.length !ids))
          in
          if Netlist.Seg older <> !tail then begin
            let m =
              Builder.add_mux b
                ~name:(Printf.sprintf "m%d" i)
                ~inputs:[ !tail; Netlist.Seg older ]
                ~addr:[ Netlist.Ctrl_shadow { cseg; cbit } ]
                ()
            in
            tail := Netlist.Mux m
          end
    end
  done;
  Builder.finish b ~out:!tail ()
