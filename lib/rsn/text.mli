(** A flat text format for RSN netlists, round-trippable with {!parse}.

    Grammar (one declaration per line, [#] starts a comment):
    {v
    rsn <name> [select_hardened] [dual_ports]
    seg <name> len=<n> shadow=<n> reset=<bits> hier=<n> input=<node>
    mux <name> [tmr] inputs=<node>,<node>,... addr=<ctrl>,...
    out <node>
    v}
    where [<node>] is [pi], [seg:<name>] or [mux:<name>], and [<ctrl>] is
    [const:0], [const:1], [shadow:<seg name>.<bit>] or [primary:<name>].
    Element names must not contain whitespace, [,] or [.]. *)

val to_string : Netlist.t -> string

val parse : string -> (Netlist.t, string) result
(** Parses the format produced by {!to_string}.  The result is validated
    with {!Netlist.validate}. *)
