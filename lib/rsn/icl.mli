(** A front-end for a practical subset of IEEE Std 1687 ICL (Instrument
    Connectivity Language), elaborating hierarchical module descriptions
    into flat {!Netlist.t} values.

    Supported subset:
    {v
    Module <name> {
      ScanInPort  <name> ;
      ScanOutPort <name> { Source <path> ; }
      SelectPort  <name> ;                      // primary control input
      ScanRegister <name> [msb:lsb]? {
        ScanInSource <path> ;
        ResetValue  <n>'b<bits> ;               // optional, default 0s
        Update ;                                // optional: shadow register
      }
      ScanMux <name> SelectedBy <path> {        // path: reg[i], reg[hi:lo],
        <n>'b<bits> : <path> ;                  //   or a SelectPort
        ...
      }
      Instance <name> Of <module> {
        InputPort <port> = <path> ;
      }
    }
    v}

    Paths are dot-separated ([inst.so], [reg], [mux1]) and resolve to: a
    local scan register or mux output, the module's scan-in port, a bound
    input port, or an instance's scan-out port.  The LAST module in the
    file is the top module unless [top] names another.  Registers with
    [Update] get a full shadow (their whole shift register is mirrored);
    mux select sources must be shadow bits of such registers or
    SelectPorts.

    Elaboration flattens instances with dot-separated name prefixes, so
    the segment names of the resulting netlist are hierarchical
    ([core1.sib], [core1.chain0], ...). *)

val parse : ?top:string -> string -> (Netlist.t, string) result
(** Parses and elaborates ICL text.  Errors carry a line number and a
    description. *)

val sib_module_library : string
(** A reusable ICL library defining a [SIB] module (1-bit segment
    insertion bit with host port) — prepend it to descriptions that
    instantiate [Sib]-style bypasses. *)
