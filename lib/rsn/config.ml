type t = {
  shadows : bool array array;
  primaries : (string * bool) list;
}

let reset (net : Netlist.t) =
  {
    shadows = Array.map (fun s -> Array.copy s.Netlist.seg_reset) net.segs;
    primaries = [];
  }

let copy c = { c with shadows = Array.map Array.copy c.shadows }

let equal a b =
  a.primaries = b.primaries
  && Array.length a.shadows = Array.length b.shadows
  && Array.for_all2 (fun x y -> x = y) a.shadows b.shadows

let get_shadow c ~seg ~bit = c.shadows.(seg).(bit)
let set_shadow c ~seg ~bit v = c.shadows.(seg).(bit) <- v

let set_primary c name v =
  { c with primaries = (name, v) :: List.remove_assoc name c.primaries }

let control_value (_net : Netlist.t) c = function
  | Netlist.Ctrl_const b -> b
  | Netlist.Ctrl_shadow { cseg; cbit } -> c.shadows.(cseg).(cbit)
  | Netlist.Ctrl_primary name ->
      Option.value ~default:false (List.assoc_opt name c.primaries)

let mux_selection (net : Netlist.t) c m =
  let mux = net.muxes.(m) in
  let v = ref 0 in
  Array.iteri
    (fun i a -> if control_value net c a then v := !v lor (1 lsl i))
    mux.mux_addr;
  if !v < Array.length mux.mux_inputs then Some !v else None

(* Trace from the scan-out driver backwards through muxes and segments.  A
   bound on steps guards against malformed netlists (validation rejects
   cyclic ones, but tracing must not diverge on unvalidated input). *)
let active_path (net : Netlist.t) c =
  let bound = 2 * (Netlist.Elt.count net + 1) in
  let rec walk node acc steps =
    if steps > bound then None
    else
      match node with
      | Netlist.Scan_in -> Some acc
      | Netlist.Scan_out -> None
      | Netlist.Seg i -> walk net.segs.(i).seg_input (i :: acc) (steps + 1)
      | Netlist.Mux m -> (
          match mux_selection net c m with
          | None -> None
          | Some k -> walk net.muxes.(m).mux_inputs.(k) acc (steps + 1))
  in
  walk net.out_src [] 0

let path_length (net : Netlist.t) path =
  List.fold_left (fun acc i -> acc + net.segs.(i).seg_len) 0 path

let is_selected net c i =
  match active_path net c with
  | None -> false
  | Some path -> List.mem i path
