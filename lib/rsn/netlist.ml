type node = Scan_in | Scan_out | Seg of int | Mux of int

type control =
  | Ctrl_const of bool
  | Ctrl_shadow of { cseg : int; cbit : int }
  | Ctrl_primary of string

type segment = {
  seg_name : string;
  seg_len : int;
  seg_shadow : int;
  seg_input : node;
  seg_reset : bool array;
  seg_hier : int;
}

type mux = {
  mux_name : string;
  mux_inputs : node array;
  mux_addr : control array;
  mux_tmr : bool;
  mux_rescue_from : int;
}

type t = {
  net_name : string;
  segs : segment array;
  muxes : mux array;
  out_src : node;
  select_hardened : bool;
  dual_ports : bool;
}

let num_segments net = Array.length net.segs
let num_muxes net = Array.length net.muxes

let total_bits net =
  Array.fold_left (fun acc s -> acc + s.seg_len) 0 net.segs

let seg_len net i = net.segs.(i).seg_len
let segment_name net i = net.segs.(i).seg_name

let max_hier net =
  Array.fold_left (fun acc s -> max acc s.seg_hier) 0 net.segs

module Elt = struct
  let scan_in = 0
  let scan_out = 1
  let of_seg i = 2 + i
  let of_mux net i = 2 + Array.length net.segs + i

  let of_node net = function
    | Scan_in -> scan_in
    | Scan_out -> scan_out
    | Seg i -> of_seg i
    | Mux i -> of_mux net i

  let count net = 2 + Array.length net.segs + Array.length net.muxes

  let to_node net e =
    if e = scan_in then Scan_in
    else if e = scan_out then Scan_out
    else if e < 2 + Array.length net.segs then Seg (e - 2)
    else Mux (e - 2 - Array.length net.segs)

  let name net e =
    match to_node net e with
    | Scan_in -> "scan-in"
    | Scan_out -> "scan-out"
    | Seg i -> net.segs.(i).seg_name
    | Mux i -> net.muxes.(i).mux_name
end

let element_graph net =
  let g = Ftrsn_topo.Digraph.create ~size_hint:(Elt.count net) () in
  Ftrsn_topo.Digraph.add_vertices g (Elt.count net);
  Array.iteri
    (fun i s ->
      Ftrsn_topo.Digraph.add_edge g (Elt.of_node net s.seg_input)
        (Elt.of_seg i))
    net.segs;
  Array.iteri
    (fun i m ->
      Array.iter
        (fun inp ->
          Ftrsn_topo.Digraph.add_edge g (Elt.of_node net inp)
            (Elt.of_mux net i))
        m.mux_inputs)
    net.muxes;
  Ftrsn_topo.Digraph.add_edge g (Elt.of_node net net.out_src) Elt.scan_out;
  g

(* Resolve a driver node through any chain of muxes down to segment/port
   sources.  Each source comes with its steering route: the (mux, input
   index) pairs encountered from the consumer towards the source. *)
let rec resolve_sources net route = function
  | Scan_in -> [ (Elt.scan_in, List.rev route) ]
  | Scan_out -> invalid_arg "Netlist: scan-out used as a driver"
  | Seg i -> [ (Elt.of_seg i, List.rev route) ]
  | Mux m ->
      let inputs = net.muxes.(m).mux_inputs in
      List.concat
        (List.init (Array.length inputs) (fun k ->
             resolve_sources net ((m, k) :: route) inputs.(k)))

let dataflow_edges net =
  (* (src dataflow vertex, dst dataflow vertex, steering route) *)
  let consumer_edges dst_v driver =
    List.map (fun (src, route) -> (src, dst_v, route)) (resolve_sources net [] driver)
  in
  let seg_edges =
    Array.to_list
      (Array.mapi (fun i s -> consumer_edges (Elt.of_seg i) s.seg_input) net.segs)
  in
  List.concat (consumer_edges Elt.scan_out net.out_src :: seg_edges)

let dataflow_graph net =
  let n = 2 + Array.length net.segs in
  let g = Ftrsn_topo.Digraph.create ~size_hint:n () in
  Ftrsn_topo.Digraph.add_vertices g n;
  List.iter (fun (u, v, _) -> Ftrsn_topo.Digraph.add_edge g u v)
    (dataflow_edges net);
  let lv = Ftrsn_topo.Order.levels g in
  (g, lv)

let edge_routes net =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (u, v, route) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl (u, v)) in
      Hashtbl.replace tbl (u, v) (prev @ [ route ]))
    (dataflow_edges net);
  tbl

let mux_input_class net m k =
  let inputs = net.muxes.(m).mux_inputs in
  let rec first i = if inputs.(i) = inputs.(k) then i else first (i + 1) in
  first 0

let mux_on_edge net ~src ~dst =
  let tbl = edge_routes net in
  match Hashtbl.find_opt tbl (src, dst) with
  | Some (((m, _) :: _) :: _) -> Some m
  | _ -> None

let validate net =
  let ok = ref (Ok ()) in
  let fail fmt = Format.kasprintf (fun s -> if !ok = Ok () then ok := Error s) fmt in
  let nsegs = Array.length net.segs and nmux = Array.length net.muxes in
  let check_node ctx = function
    | Scan_in -> ()
    | Scan_out -> fail "%s: scan-out used as a driver" ctx
    | Seg i -> if i < 0 || i >= nsegs then fail "%s: bad segment ref %d" ctx i
    | Mux i -> if i < 0 || i >= nmux then fail "%s: bad mux ref %d" ctx i
  in
  Array.iteri
    (fun i s ->
      if s.seg_len < 1 then fail "segment %d: empty shift register" i;
      if s.seg_shadow < 0 then fail "segment %d: negative shadow length" i;
      if s.seg_shadow > s.seg_len then
        fail "segment %d: shadow longer than shift register" i;
      if Array.length s.seg_reset <> s.seg_shadow then
        fail "segment %d: reset vector length mismatch" i;
      check_node (Printf.sprintf "segment %d input" i) s.seg_input)
    net.segs;
  Array.iteri
    (fun i m ->
      if Array.length m.mux_inputs < 2 then fail "mux %d: fewer than 2 inputs" i;
      let width = Array.length m.mux_addr in
      if 1 lsl width < Array.length m.mux_inputs then
        fail "mux %d: address too narrow for %d inputs" i
          (Array.length m.mux_inputs);
      Array.iter (check_node (Printf.sprintf "mux %d input" i)) m.mux_inputs;
      Array.iter
        (function
          | Ctrl_const _ | Ctrl_primary _ -> ()
          | Ctrl_shadow { cseg; cbit } ->
              if cseg < 0 || cseg >= nsegs then
                fail "mux %d: address from bad segment %d" i cseg
              else if cbit < 0 || cbit >= net.segs.(cseg).seg_shadow then
                fail "mux %d: address bit %d outside shadow of segment %d" i
                  cbit cseg)
        m.mux_addr)
    net.muxes;
  check_node "primary scan-out" net.out_src;
  (match !ok with
  | Error _ -> ()
  | Ok () ->
      let g = element_graph net in
      if not (Ftrsn_topo.Order.is_acyclic g) then
        fail "element graph contains a structural cycle"
      else begin
        let reach = Ftrsn_topo.Order.reachable g ~from:Elt.scan_in in
        let coreach = Ftrsn_topo.Order.co_reachable g ~to_:Elt.scan_out in
        for e = 0 to Elt.count net - 1 do
          if not (Ftrsn_topo.Bitset.mem reach e) then
            fail "element %s unreachable from scan-in" (Elt.name net e);
          if not (Ftrsn_topo.Bitset.mem coreach e) then
            fail "element %s cannot reach scan-out" (Elt.name net e)
        done
      end);
  !ok

let pp_summary fmt net =
  Format.fprintf fmt
    "@[<v>RSN %s: %d segments, %d muxes, %d bits, %d levels%s%s@]"
    net.net_name (num_segments net) (num_muxes net) (total_bits net)
    (max_hier net)
    (if net.select_hardened then ", hardened select" else "")
    (if net.dual_ports then ", dual ports" else "")
