(* Tokenizer, recursive-descent parser and hierarchical elaborator for the
   ICL subset documented in the interface.  Elaboration works in two
   passes: pass 1 walks the instance tree and creates every flattened
   register and mux (allocating netlist ids), pass 2 resolves all driver
   and select paths against the scope tree (local names, bound input
   ports, instance internals). *)

exception Err of string

let err fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

(* ---------- tokens ---------- *)

type token =
  | Tid of string
  | Tint of int
  | Tbits of string   (* the bit string of n'b0101 *)
  | Tpunct of char    (* { } [ ] : ; = . *)
  | Teof

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
    then begin
      let j = ref !i in
      while
        !j < n
        &&
        let d = text.[!j] in
        (d >= 'a' && d <= 'z')
        || (d >= 'A' && d <= 'Z')
        || (d >= '0' && d <= '9')
        || d = '_'
      do
        incr j
      done;
      push (Tid (String.sub text !i (!j - !i)));
      i := !j
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && text.[!j] >= '0' && text.[!j] <= '9' do
        incr j
      done;
      let value = int_of_string (String.sub text !i (!j - !i)) in
      (* Verilog-style sized binary constant? *)
      if !j + 1 < n && text.[!j] = '\'' && (text.[!j + 1] = 'b' || text.[!j + 1] = 'B')
      then begin
        let k = ref (!j + 2) in
        while !k < n && (text.[!k] = '0' || text.[!k] = '1') do
          incr k
        done;
        let bits = String.sub text (!j + 2) (!k - !j - 2) in
        if String.length bits <> value then
          err "line %d: %d'b constant with %d bits" !line value
            (String.length bits);
        push (Tbits bits);
        i := !k
      end
      else begin
        push (Tint value);
        i := !j
      end
    end
    else if String.contains "{}[]:;=." c then begin
      push (Tpunct c);
      incr i
    end
    else err "line %d: unexpected character %c" !line c
  done;
  push Teof;
  List.rev !toks

(* ---------- AST ---------- *)

type path = { steps : string list; range : (int * int) option }
(* range (msb, lsb); a single index i is (i, i) *)

type reg_decl = {
  r_name : string;
  r_width : int;
  r_scan_in : path;
  r_reset : string option;  (* bit string, msb first *)
  r_update : bool;
}

type mux_decl = {
  m_name : string;
  m_sel : path;
  m_cases : (string * path) list;  (* bit pattern (msb first) -> source *)
}

type inst_decl = {
  i_name : string;
  i_module : string;
  i_bindings : (string * path) list;  (* input port -> parent path *)
}

type item =
  | I_scan_in of string
  | I_scan_out of string * path
  | I_select of string
  | I_reg of reg_decl
  | I_mux of mux_decl
  | I_inst of inst_decl

type module_decl = { mod_name : string; items : item list }

(* ---------- parser ---------- *)

type parser_state = { mutable toks : (token * int) list }

let peek ps = fst (List.hd ps.toks)
let line_of ps = snd (List.hd ps.toks)
let advance ps = ps.toks <- List.tl ps.toks

let expect_id ps =
  match peek ps with
  | Tid s ->
      advance ps;
      s
  | _ -> err "line %d: identifier expected" (line_of ps)

let expect_punct ps c =
  match peek ps with
  | Tpunct c' when c' = c -> advance ps
  | _ -> err "line %d: '%c' expected" (line_of ps) c

let expect_kw ps kw =
  match peek ps with
  | Tid s when s = kw -> advance ps
  | _ -> err "line %d: keyword '%s' expected" (line_of ps) kw

let expect_int ps =
  match peek ps with
  | Tint v ->
      advance ps;
      v
  | _ -> err "line %d: integer expected" (line_of ps)

let parse_range_opt ps =
  match peek ps with
  | Tpunct '[' ->
      advance ps;
      let msb = expect_int ps in
      let lsb =
        match peek ps with
        | Tpunct ':' ->
            advance ps;
            expect_int ps
        | _ -> msb
      in
      expect_punct ps ']';
      Some (msb, lsb)
  | _ -> None

let parse_path ps =
  let first = expect_id ps in
  let steps = ref [ first ] in
  let continue = ref true in
  while !continue do
    match peek ps with
    | Tpunct '.' ->
        advance ps;
        steps := expect_id ps :: !steps
    | _ -> continue := false
  done;
  let range = parse_range_opt ps in
  { steps = List.rev !steps; range }

let parse_reg ps name =
  let width =
    match parse_range_opt ps with
    | Some (msb, lsb) ->
        if lsb <> 0 then err "line %d: register ranges must end at 0" (line_of ps);
        msb + 1
    | None -> 1
  in
  expect_punct ps '{';
  let scan_in = ref None in
  let reset = ref None in
  let update = ref false in
  let continue = ref true in
  while !continue do
    match peek ps with
    | Tpunct '}' ->
        advance ps;
        continue := false
    | Tid "ScanInSource" ->
        advance ps;
        scan_in := Some (parse_path ps);
        expect_punct ps ';'
    | Tid "ResetValue" -> (
        advance ps;
        match peek ps with
        | Tbits b ->
            advance ps;
            if String.length b <> width then
              err "line %d: reset width mismatch" (line_of ps);
            reset := Some b;
            expect_punct ps ';'
        | _ -> err "line %d: sized binary constant expected" (line_of ps))
    | Tid "Update" ->
        advance ps;
        update := true;
        expect_punct ps ';'
    | _ -> err "line %d: unknown register attribute" (line_of ps)
  done;
  match !scan_in with
  | None -> err "register %s: missing ScanInSource" name
  | Some scan_in ->
      {
        r_name = name;
        r_width = width;
        r_scan_in = scan_in;
        r_reset = !reset;
        r_update = !update;
      }

let parse_mux ps name =
  expect_kw ps "SelectedBy";
  let sel = parse_path ps in
  expect_punct ps '{';
  let cases = ref [] in
  let continue = ref true in
  while !continue do
    match peek ps with
    | Tpunct '}' ->
        advance ps;
        continue := false
    | Tbits pattern ->
        advance ps;
        expect_punct ps ':';
        let src = parse_path ps in
        expect_punct ps ';';
        cases := (pattern, src) :: !cases
    | _ -> err "line %d: mux case or '}' expected" (line_of ps)
  done;
  { m_name = name; m_sel = sel; m_cases = List.rev !cases }

let parse_instance ps name =
  expect_kw ps "Of";
  let m = expect_id ps in
  let bindings = ref [] in
  (match peek ps with
  | Tpunct '{' ->
      advance ps;
      let continue = ref true in
      while !continue do
        match peek ps with
        | Tpunct '}' ->
            advance ps;
            continue := false
        | Tid "InputPort" ->
            advance ps;
            let port = expect_id ps in
            expect_punct ps '=';
            let src = parse_path ps in
            expect_punct ps ';';
            bindings := (port, src) :: !bindings
        | _ -> err "line %d: InputPort binding or '}' expected" (line_of ps)
      done
  | Tpunct ';' -> advance ps
  | _ -> err "line %d: instance body or ';' expected" (line_of ps));
  { i_name = name; i_module = m; i_bindings = List.rev !bindings }

let parse_module ps =
  expect_kw ps "Module";
  let name = expect_id ps in
  expect_punct ps '{';
  let items = ref [] in
  let continue = ref true in
  while !continue do
    match peek ps with
    | Tpunct '}' ->
        advance ps;
        continue := false
    | Tid "ScanInPort" ->
        advance ps;
        let n = expect_id ps in
        expect_punct ps ';';
        items := I_scan_in n :: !items
    | Tid "SelectPort" ->
        advance ps;
        let n = expect_id ps in
        expect_punct ps ';';
        items := I_select n :: !items
    | Tid "ScanOutPort" ->
        advance ps;
        let n = expect_id ps in
        expect_punct ps '{';
        expect_kw ps "Source";
        let src = parse_path ps in
        expect_punct ps ';';
        expect_punct ps '}';
        items := I_scan_out (n, src) :: !items
    | Tid "ScanRegister" ->
        advance ps;
        let n = expect_id ps in
        items := I_reg (parse_reg ps n) :: !items
    | Tid "ScanMux" ->
        advance ps;
        let n = expect_id ps in
        items := I_mux (parse_mux ps n) :: !items
    | Tid "Instance" ->
        advance ps;
        let n = expect_id ps in
        items := I_inst (parse_instance ps n) :: !items
    | _ -> err "line %d: module item expected" (line_of ps)
  done;
  { mod_name = name; items = List.rev !items }

let parse_modules text =
  let ps = { toks = tokenize text } in
  let mods = ref [] in
  while peek ps <> Teof do
    mods := parse_module ps :: !mods
  done;
  List.rev !mods

(* ---------- elaboration ---------- *)

type scope = {
  prefix : string;  (* "" for top, "core1." for instances *)
  ast : module_decl;
  bindings : (string * (path * scope)) list;
      (* input port -> (path, scope to resolve it in) *)
  top : bool;
}

let find_module mods name =
  match List.find_opt (fun m -> m.mod_name = name) mods with
  | Some m -> m
  | None -> err "unknown module %s" name

let find_item scope name =
  List.find_opt
    (fun item ->
      match item with
      | I_reg r -> r.r_name = name
      | I_mux m -> m.m_name = name
      | I_inst i -> i.i_name = name
      | I_scan_in p | I_select p -> p = name
      | I_scan_out (p, _) -> p = name)
    scope.ast.items

let elaborate mods top_name =
  let top_ast = find_module mods top_name in
  (* Pass 1: flatten registers and muxes, assign ids. *)
  let regs : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let muxes : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let reg_list = ref [] (* (flat name, decl, scope) in creation order *) in
  let mux_list = ref [] in
  let nregs = ref 0 and nmuxes = ref 0 in
  let rec flatten scope depth =
    if depth > 64 then err "instance nesting too deep (recursive modules?)";
    List.iter
      (fun item ->
        match item with
        | I_reg r ->
            Hashtbl.replace regs (scope.prefix ^ r.r_name) !nregs;
            reg_list := (scope.prefix ^ r.r_name, r, scope, depth) :: !reg_list;
            incr nregs
        | I_mux m ->
            Hashtbl.replace muxes (scope.prefix ^ m.m_name) !nmuxes;
            mux_list := (scope.prefix ^ m.m_name, m, scope) :: !mux_list;
            incr nmuxes
        | I_inst inst ->
            let child_ast = find_module mods inst.i_module in
            let child =
              {
                prefix = scope.prefix ^ inst.i_name ^ ".";
                ast = child_ast;
                bindings =
                  List.map (fun (p, src) -> (p, (src, scope))) inst.i_bindings;
                top = false;
              }
            in
            flatten child (depth + 1)
        | I_scan_in _ | I_scan_out _ | I_select _ -> ())
      scope.ast.items
  in
  let top_scope = { prefix = ""; ast = top_ast; bindings = []; top = true } in
  flatten top_scope 0;
  let reg_list = List.rev !reg_list and mux_list = List.rev !mux_list in
  (* Pass 2: resolve paths to netlist nodes. *)
  let rec resolve scope (p : path) : Netlist.node =
    match p.steps with
    | [] -> err "empty path"
    | head :: rest -> (
        match find_item scope head with
        | Some (I_reg _) when rest = [] ->
            Netlist.Seg (Hashtbl.find regs (scope.prefix ^ head))
        | Some (I_mux _) when rest = [] ->
            Netlist.Mux (Hashtbl.find muxes (scope.prefix ^ head))
        | Some (I_scan_in _) when rest = [] ->
            if scope.top then Netlist.Scan_in
            else begin
              match List.assoc_opt head scope.bindings with
              | Some (src, parent) -> resolve parent src
              | None ->
                  err "unbound scan-in port %s%s" scope.prefix head
            end
        | Some (I_inst inst) -> (
            let child_ast = find_module mods inst.i_module in
            let child =
              {
                prefix = scope.prefix ^ inst.i_name ^ ".";
                ast = child_ast;
                bindings =
                  List.map (fun (q, src) -> (q, (src, scope))) inst.i_bindings;
                top = false;
              }
            in
            match rest with
            | [] -> err "instance %s used as a scan source without port" head
            | _ -> resolve child { p with steps = rest })
        | Some (I_scan_out (_, src)) when rest = [] -> resolve scope src
        | Some (I_select _) -> err "select port %s used as data" head
        | Some _ -> err "path %s: trailing components" (String.concat "." p.steps)
        | None ->
            err "unresolved path %s in %s" (String.concat "." p.steps)
              (if scope.prefix = "" then "top" else scope.prefix))
  in
  (* Select sources: a path must denote shadow bits or a select port. *)
  let rec resolve_select scope (p : path) : Netlist.control list =
    match p.steps with
    | [ one ] -> (
        match find_item scope one with
        | Some (I_select _) ->
            if scope.top then [ Netlist.Ctrl_primary one ]
            else begin
              (* Select ports of instances may be bound like inputs. *)
              match List.assoc_opt one scope.bindings with
              | Some (src, parent) -> resolve_select parent src
              | None -> [ Netlist.Ctrl_primary (scope.prefix ^ one) ]
            end
        | Some (I_reg r) ->
            if not r.r_update then
              err "mux select from register %s without Update" one;
            let id = Hashtbl.find regs (scope.prefix ^ one) in
            let msb, lsb =
              match p.range with Some (m, l) -> (m, l) | None -> (0, 0)
            in
            if msb < lsb then err "select range must be [msb:lsb]";
            List.init (msb - lsb + 1) (fun k ->
                Netlist.Ctrl_shadow { cseg = id; cbit = lsb + k })
        | _ -> err "bad select source %s" one)
    | head :: rest -> (
        match find_item scope head with
        | Some (I_inst inst) ->
            let child_ast = find_module mods inst.i_module in
            let child =
              {
                prefix = scope.prefix ^ inst.i_name ^ ".";
                ast = child_ast;
                bindings =
                  List.map (fun (q, src) -> (q, (src, scope))) inst.i_bindings;
                top = false;
              }
            in
            resolve_select child { p with steps = rest }
        | _ -> err "bad select path %s" (String.concat "." p.steps))
    | [] -> err "empty select path"
  in
  (* Build the netlist arrays. *)
  let segments =
    List.map
      (fun (flat, r, scope, depth) ->
        let reset =
          match r.r_reset with
          | None -> Array.make (if r.r_update then r.r_width else 0) false
          | Some bits ->
              if not r.r_update then [||]
              else
                (* bits are msb-first; shadow bit 0 = lsb. *)
                Array.init r.r_width (fun k ->
                    bits.[r.r_width - 1 - k] = '1')
        in
        {
          Netlist.seg_name = flat;
          seg_len = r.r_width;
          seg_shadow = (if r.r_update then r.r_width else 0);
          seg_input = resolve scope r.r_scan_in;
          seg_reset = reset;
          seg_hier = depth + 1;
        })
      reg_list
  in
  let mux_array =
    List.map
      (fun (flat, m, scope) ->
        let addr = resolve_select scope m.m_sel in
        let width = List.length addr in
        let n_inputs = 1 lsl width in
        let cases =
          List.map
            (fun (pattern, src) ->
              if String.length pattern <> width then
                err "mux %s: case width mismatch" flat;
              let v = ref 0 in
              String.iteri
                (fun i c ->
                  if c = '1' then v := !v lor (1 lsl (width - 1 - i)))
                pattern;
              (!v, resolve scope src))
            m.m_cases
        in
        (match cases with [] -> err "mux %s: no cases" flat | _ -> ());
        let default = snd (List.hd cases) in
        let inputs =
          Array.init n_inputs (fun k ->
              match List.assoc_opt k cases with
              | Some src -> src
              | None -> default)
        in
        {
          Netlist.mux_name = flat;
          mux_inputs = inputs;
          mux_addr = Array.of_list addr;
          mux_tmr = false;
          mux_rescue_from = n_inputs;
        })
      mux_list
  in
  (* Top scan-out. *)
  let out_src =
    match
      List.find_map
        (function I_scan_out (_, src) -> Some src | _ -> None)
        top_ast.items
    with
    | Some src -> resolve top_scope src
    | None -> err "top module %s has no ScanOutPort" top_name
  in
  let net =
    {
      Netlist.net_name = top_name;
      segs = Array.of_list segments;
      muxes = Array.of_list mux_array;
      out_src;
      select_hardened = false;
      dual_ports = false;
    }
  in
  match Netlist.validate net with
  | Ok () -> net
  | Error e -> err "elaborated netlist invalid: %s" e

let parse ?top text =
  try
    let mods = parse_modules text in
    if mods = [] then Error "no modules"
    else begin
      let top_name =
        match top with
        | Some t -> t
        | None -> (List.nth mods (List.length mods - 1)).mod_name
      in
      Ok (elaborate mods top_name)
    end
  with
  | Err e -> Error e
  | Failure e -> Error e

let sib_module_library =
  {|
Module SIB {
  ScanInPort si;
  ScanInPort host;
  ScanOutPort so { Source m; }
  ScanRegister r { ScanInSource si; ResetValue 1'b0; Update; }
  ScanMux m SelectedBy r { 1'b0 : r; 1'b1 : host; }
}
|}
