(* An independent reverse-unit-propagation (RUP) proof checker.

   This module is the trusted core of the certified pipeline, so it
   deliberately shares no propagation or analysis machinery with
   Solver: where the solver uses two watched literals per clause, lazy
   watch-list repair and first-UIP analysis, the checker uses plain
   counter-based propagation — each clause tracks how many of its
   literals are not yet false, with full occurrence lists per literal.
   Slower, but simple enough to audit in isolation.

   State is a persistent root trail: the unit-propagation fixpoint of
   the accumulated formula (inputs + verified lemmas).  A RUP query
   marks the trail, asserts the negations of the candidate clause,
   propagates, and unwinds to the mark; the clause is RUP exactly when
   propagation hits a conflict.  All literals are DIMACS. *)

type cls = {
  lits : int array; (* deduplicated, never mutated *)
  mutable free : int; (* literals not currently false *)
  mutable dead : bool; (* deleted: ignored by propagation *)
}

(* Occurrence list of one literal, stored densely: propagation and
   unwinding walk these for every trail literal, so a flat array beats a
   cons list on locality without changing the counter-based design. *)
type occ = {
  mutable oa : cls array;
  mutable on : int; (* live prefix length of [oa] *)
}

let dummy_cls = { lits = [||]; free = 0; dead = true }
let occ_make () = { oa = [||]; on = 0 }

let occ_push o c =
  if o.on = Array.length o.oa then begin
    let na = Array.make (max 4 (2 * o.on)) dummy_cls in
    Array.blit o.oa 0 na 0 o.on;
    o.oa <- na
  end;
  o.oa.(o.on) <- c;
  o.on <- o.on + 1

type t = {
  mutable value : int array; (* per var (1-based): 0 unknown, 1 true, -1 false *)
  mutable occ : occ array; (* per literal index: clauses containing it *)
  mutable nvars : int;
  mutable trail : int array; (* assigned literals, in assignment order *)
  mutable trail_len : int;
  mutable qhead : int; (* propagation frontier within the trail *)
  mutable conflict : bool; (* the empty clause is derivable at the root *)
  index : (int list, cls list ref) Hashtbl.t;
      (* sorted literal list -> live instances, for deletion by value *)
  mutable live : int;
  mutable dead_count : int;
  mutable n_lemmas : int;
  mutable n_deletes : int;
  mutable n_props : int;
}

let create () =
  {
    value = Array.make 16 0;
    occ = Array.init 32 (fun _ -> occ_make ());
    nvars = 0;
    trail = Array.make 16 0;
    trail_len = 0;
    qhead = 0;
    conflict = false;
    index = Hashtbl.create 64;
    live = 0;
    dead_count = 0;
    n_lemmas = 0;
    n_deletes = 0;
    n_props = 0;
  }

let contradiction t = t.conflict
let num_clauses t = t.live
let stats t = (t.n_lemmas, t.n_deletes, t.n_props)

(* occurrence-list slot of a literal *)
let lidx l = (2 * abs l) + if l < 0 then 1 else 0

let grow t v =
  if v > t.nvars then begin
    let cap = Array.length t.value in
    if v >= cap then begin
      let ncap = max (v + 1) (2 * cap) in
      let nv = Array.make ncap 0 in
      Array.blit t.value 0 nv 0 cap;
      t.value <- nv;
      let old = t.occ in
      let nocc =
        Array.init (2 * ncap) (fun i ->
            if i < Array.length old then old.(i) else occ_make ())
      in
      t.occ <- nocc;
      let ntr = Array.make ncap 0 in
      Array.blit t.trail 0 ntr 0 t.trail_len;
      t.trail <- ntr
    end;
    t.nvars <- v
  end

(* truth value of a literal under the current assignment: 0 unknown *)
let lval t l =
  let v = t.value.(abs l) in
  if v = 0 then 0 else if (l > 0) = (v > 0) then 1 else -1

let assign t l =
  t.value.(abs l) <- (if l > 0 then 1 else -1);
  if t.trail_len >= Array.length t.trail then begin
    let ntr = Array.make (max 16 (2 * t.trail_len)) 0 in
    Array.blit t.trail 0 ntr 0 t.trail_len;
    t.trail <- ntr
  end;
  t.trail.(t.trail_len) <- l;
  t.trail_len <- t.trail_len + 1

(* Propagate to fixpoint.  Returns false on conflict.  The decrement
   pass over a literal's occurrence list always runs to completion even
   after a conflict, so that [undo_to] (which re-increments the lists of
   every processed trail literal) restores the counters exactly. *)
let propagate t =
  let ok = ref true in
  while !ok && t.qhead < t.trail_len do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.n_props <- t.n_props + 1;
    let o = t.occ.(lidx (-l)) in
    for i = 0 to o.on - 1 do
      let c = o.oa.(i) in
      if not c.dead then begin
        c.free <- c.free - 1;
        if c.free = 0 then ok := false
        else if c.free = 1 && !ok then begin
          (* locate the single non-false literal *)
          let n = Array.length c.lits in
          let rec find i =
            if i >= n then 0
            else if lval t c.lits.(i) >= 0 then c.lits.(i)
            else find (i + 1)
          in
          let u = find 0 in
          if u <> 0 && lval t u = 0 then assign t u
        end
      end
    done
  done;
  !ok

(* Unwind the trail to [mark], re-incrementing the free counters of the
   clauses whose literal was falsified by each *processed* literal
   (unprocessed trail entries never touched any counter). *)
let undo_to t mark =
  for i = t.trail_len - 1 downto mark do
    let l = t.trail.(i) in
    t.value.(abs l) <- 0;
    if i < t.qhead then begin
      let o = t.occ.(lidx (-l)) in
      for j = 0 to o.on - 1 do
        let c = o.oa.(j) in
        if not c.dead then c.free <- c.free + 1
      done
    end
  done;
  t.trail_len <- mark;
  t.qhead <- mark

(* Rebuild occurrence lists without dead clauses once they dominate, so
   long incremental sessions (which retire whole clause groups) do not
   slow propagation down forever. *)
let compact t =
  Array.iter
    (fun o ->
      let k = ref 0 in
      for i = 0 to o.on - 1 do
        let c = o.oa.(i) in
        if not c.dead then begin
          o.oa.(!k) <- c;
          incr k
        end
      done;
      (* clear the slack so deleted clauses can be collected *)
      for i = !k to o.on - 1 do
        o.oa.(i) <- dummy_cls
      done;
      o.on <- !k)
    t.occ;
  t.dead_count <- 0

let key_of lits = List.sort_uniq compare lits

let tautology key = List.exists (fun l -> List.mem (-l) key) key

(* Register a clause (axiom or verified lemma) into the database and
   propagate any consequence.  Assumes the trail is at the root. *)
let register t lits =
  List.iter
    (fun l -> if l = 0 then invalid_arg "Sat.Checker: zero literal")
    lits;
  let key = key_of lits in
  if tautology key then ()
  else begin
    List.iter (fun l -> grow t (abs l)) key;
    let arr = Array.of_list key in
    let free = ref 0 in
    Array.iter (fun l -> if lval t l >= 0 then incr free) arr;
    let c = { lits = arr; free = !free; dead = false } in
    Array.iter (fun l -> occ_push t.occ.(lidx l) c) arr;
    (match Hashtbl.find_opt t.index key with
    | Some r -> r := c :: !r
    | None -> Hashtbl.add t.index key (ref [ c ]));
    t.live <- t.live + 1;
    if c.free = 0 then t.conflict <- true
    else if c.free = 1 then begin
      let rec find i =
        if i >= Array.length arr then 0
        else if lval t arr.(i) >= 0 then arr.(i)
        else find (i + 1)
      in
      let u = find 0 in
      if u <> 0 && lval t u = 0 then begin
        assign t u;
        if not (propagate t) then t.conflict <- true
      end
    end
  end

let add_clause t lits = register t lits

(* Is [clause] derivable by reverse unit propagation?  Assert the
   negation of every literal on top of the root trail, propagate, and
   look for a conflict.  The empty clause is RUP exactly when the root
   formula already propagates to a conflict. *)
let check_rup t clause =
  if t.conflict then true
  else begin
    let mark = t.trail_len in
    let clash = ref false in
    List.iter
      (fun l ->
        if not !clash then
          match lval t l with
          | 1 -> clash := true (* l already implied: negation conflicts *)
          | -1 -> () (* already false: nothing to assert *)
          | _ -> assign t (-l))
      clause;
    let refuted = !clash || not (propagate t) in
    undo_to t mark;
    refuted
  end

let add_lemma t lits =
  if check_rup t lits then begin
    t.n_lemmas <- t.n_lemmas + 1;
    register t lits;
    Ok ()
  end
  else
    Error
      (Printf.sprintf "lemma is not RUP: [%s]"
         (String.concat " " (List.map string_of_int lits)))

(* Delete one live instance of the clause with these literals; a no-op
   when no live instance exists (the solver may delete a clause it
   strengthened at level 0, which the checker never attached in that
   form — ignoring the deletion only leaves the checker with a stronger
   formula, which is sound for certification). *)
let delete_clause t lits =
  let key = key_of lits in
  match Hashtbl.find_opt t.index key with
  | None -> ()
  | Some r -> (
      match List.filter (fun c -> not c.dead) !r with
      | [] -> Hashtbl.remove t.index key
      | c :: rest ->
          c.dead <- true;
          if rest = [] then Hashtbl.remove t.index key else r := rest;
          t.live <- t.live - 1;
          t.dead_count <- t.dead_count + 1;
          t.n_deletes <- t.n_deletes + 1;
          if t.dead_count > 2 * (t.live + 16) then compact t)
