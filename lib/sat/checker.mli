(** An independent reverse-unit-propagation (RUP) proof checker — the
    trusted core that certifies the solver's UNSAT verdicts.

    The checker accumulates a clause database from a DRUP trace (problem
    clauses, verified lemmas, deletions) and decides RUP queries: clause
    [C] is RUP when unit propagation over the database extended with the
    negations of [C]'s literals yields a conflict.  It shares no
    propagation or conflict-analysis code with {!module:Solver}: it uses
    counter-based propagation with full occurrence lists instead of the
    solver's two watched literals, so a bug in the solver's propagation
    cannot hide in its own certificate check.

    All literals are DIMACS ([v] positive phase, [-v] negative phase,
    never [0]).  Clauses are compared as literal {e sets}: duplicates
    are ignored and tautologies are accepted but never constrain. *)

type t

val create : unit -> t

val add_clause : t -> int list -> unit
(** Adds a problem clause (an axiom — not RUP-checked) and propagates.
    Feed every [Solver.P_input] event here.
    @raise Invalid_argument on a zero literal. *)

val add_lemma : t -> int list -> (unit, string) result
(** Verifies that the clause is RUP with respect to the current database
    and, on success, adds it and propagates.  Feed every [Solver.P_add]
    event here; [Error _] means the solver emitted an unjustified
    derivation.  The empty lemma is accepted exactly when
    [contradiction] already holds.
    @raise Invalid_argument on a zero literal. *)

val delete_clause : t -> int list -> unit
(** Deletes one live clause with exactly this literal set, if any; a
    no-op otherwise (the solver may delete a level-0-strengthened form
    the checker never attached — keeping the original only strengthens
    the checker's propagation, which is sound).  Feed every
    [Solver.P_delete] event here. *)

val check_rup : t -> int list -> bool
(** [check_rup t c] is [true] iff [c] is RUP with respect to the current
    database.  Used for final clauses that are consequences but are not
    added: the negation of a failed-assumption set, or the empty clause
    for an unconditional UNSAT.  Leaves the database unchanged. *)

val contradiction : t -> bool
(** The database propagates to a conflict at the root: unconditional
    unsatisfiability has been established. *)

val num_clauses : t -> int
(** Live (non-deleted) clauses currently in the database. *)

val stats : t -> int * int * int
(** [(lemmas verified, deletions applied, propagations)] since
    creation. *)
