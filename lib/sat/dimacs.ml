type cnf = {
  num_vars : int;
  clauses : int list list;
}

let parse text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref (-1) in
  let num_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; v; c ] -> (
            match (int_of_string_opt v, int_of_string_opt c) with
            | Some v, Some c ->
                num_vars := v;
                num_clauses := c
            | _ -> fail "malformed p-line")
        | _ -> fail "malformed p-line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> fail ("bad literal: " ^ tok)
               | Some 0 ->
                   clauses := List.rev !current :: !clauses;
                   current := []
               | Some l ->
                   if !num_vars >= 0 && abs l > !num_vars then
                     fail ("literal out of range: " ^ tok)
                   else current := l :: !current))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      if !num_vars < 0 then Error "missing p-line"
      else if !current <> [] then Error "unterminated clause"
      else begin
        let clauses = List.rev !clauses in
        if !num_clauses >= 0 && List.length clauses <> !num_clauses then
          Error "clause count mismatch"
        else Ok { num_vars = !num_vars; clauses }
      end

let print cnf =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" cnf.num_vars (List.length cnf.clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    cnf.clauses;
  Buffer.contents buf

(* One-shot solving gets a SatELite-style preprocessing pass: the whole
   formula is known up front and nothing is assumed later, so every
   variable is fair game for elimination; [solve] reconstructs the model
   from the witness stack before any [value] read. *)
let solve cnf =
  let s = Solver.create () in
  Solver.ensure_vars s cnf.num_vars;
  List.iter (Solver.add_clause s) cnf.clauses;
  Solver.inprocess s;
  Solver.solve s

(* ---- DRAT proof traces ---- *)

type drat_event = Add of int list | Delete of int list

let drat_of_proof events =
  List.filter_map
    (function
      | Solver.P_input _ -> None
      | Solver.P_add c -> Some (Add c)
      | Solver.P_delete c -> Some (Delete c))
    events

let solve_certified cnf =
  let s = Solver.create () in
  let trace = ref [] in
  Solver.set_proof_sink s (Some (fun ev -> trace := ev :: !trace));
  Solver.ensure_vars s cnf.num_vars;
  List.iter (Solver.add_clause s) cnf.clauses;
  Solver.inprocess s;
  let r = Solver.solve s in
  (r, List.rev !trace)

let print_drat events =
  let buf = Buffer.create 256 in
  List.iter
    (fun ev ->
      let lits =
        match ev with
        | Add lits -> lits
        | Delete lits ->
            Buffer.add_string buf "d ";
            lits
      in
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) lits;
      Buffer.add_string buf "0\n")
    events;
  Buffer.contents buf

let parse_drat text =
  let toks =
    String.split_on_char '\n' text
    |> List.concat_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = 'c' then []
           else
             String.split_on_char ' ' line
             |> List.concat_map (String.split_on_char '\t')
             |> List.filter (( <> ) ""))
  in
  let events = ref [] in
  let current = ref [] in
  let deleting = ref false in
  let in_clause = ref false in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  List.iter
    (fun tok ->
      if !error = None then
        if tok = "d" then begin
          if !in_clause then fail "'d' inside a clause" else deleting := true;
          in_clause := true
        end
        else
          match int_of_string_opt tok with
          | None -> fail ("bad literal: " ^ tok)
          | Some 0 ->
              let lits = List.rev !current in
              events :=
                (if !deleting then Delete lits else Add lits) :: !events;
              current := [];
              deleting := false;
              in_clause := false
          | Some l ->
              in_clause := true;
              current := l :: !current)
    toks;
  match !error with
  | Some e -> Error e
  | None ->
      if !in_clause || !current <> [] then Error "unterminated lemma"
      else Ok (List.rev !events)

(* Binary DRAT (the drat-trim wire format): each lemma is a prefix byte
   'a' (add) or 'd' (delete), then each literal as the variable-length
   7-bit little-endian encoding of the unsigned mapping
   [2*|l| + (if l < 0 then 1 else 0)], then a 0x00 terminator. *)

let print_drat_binary events =
  let buf = Buffer.create 256 in
  let emit_lit l =
    let u = ref ((2 * abs l) + if l < 0 then 1 else 0) in
    while !u >= 0x80 do
      Buffer.add_char buf (Char.chr (0x80 lor (!u land 0x7f)));
      u := !u lsr 7
    done;
    Buffer.add_char buf (Char.chr !u)
  in
  List.iter
    (fun ev ->
      let lits =
        match ev with
        | Add lits ->
            Buffer.add_char buf 'a';
            lits
        | Delete lits ->
            Buffer.add_char buf 'd';
            lits
      in
      List.iter emit_lit lits;
      Buffer.add_char buf '\x00')
    events;
  Buffer.contents buf

let parse_drat_binary data =
  let n = String.length data in
  let pos = ref 0 in
  let events = ref [] in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let read_unsigned () =
    (* 7-bit little-endian, high bit = continuation *)
    let u = ref 0 and shift = ref 0 and stop = ref false in
    while (not !stop) && !error = None do
      if !pos >= n then begin
        fail "truncated literal";
        stop := true
      end
      else begin
        let b = Char.code data.[!pos] in
        incr pos;
        u := !u lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        if b < 0x80 then stop := true
        else if !shift > 62 then begin
          fail "literal overflow";
          stop := true
        end
      end
    done;
    !u
  in
  while !pos < n && !error = None do
    let prefix = data.[!pos] in
    incr pos;
    let deleting =
      match prefix with
      | 'a' -> false
      | 'd' -> true
      | c ->
          fail (Printf.sprintf "bad lemma prefix byte 0x%02x" (Char.code c));
          false
    in
    let lits = ref [] in
    let closed = ref false in
    while (not !closed) && !error = None do
      if !pos >= n then fail "missing lemma terminator"
      else begin
        let u = read_unsigned () in
        if !error = None then
          if u = 0 then closed := true
          else if u = 1 then fail "zero literal"
          else
            let l = if u land 1 = 1 then -(u lsr 1) else u lsr 1 in
            lits := l :: !lits
      end
    done;
    if !error = None then
      let lits = List.rev !lits in
      events := (if deleting then Delete lits else Add lits) :: !events
  done;
  match !error with Some e -> Error e | None -> Ok (List.rev !events)
