type cnf = {
  num_vars : int;
  clauses : int list list;
}

let parse text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref (-1) in
  let num_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; v; c ] -> (
            match (int_of_string_opt v, int_of_string_opt c) with
            | Some v, Some c ->
                num_vars := v;
                num_clauses := c
            | _ -> fail "malformed p-line")
        | _ -> fail "malformed p-line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> fail ("bad literal: " ^ tok)
               | Some 0 ->
                   clauses := List.rev !current :: !clauses;
                   current := []
               | Some l ->
                   if !num_vars >= 0 && abs l > !num_vars then
                     fail ("literal out of range: " ^ tok)
                   else current := l :: !current))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      if !num_vars < 0 then Error "missing p-line"
      else if !current <> [] then Error "unterminated clause"
      else begin
        let clauses = List.rev !clauses in
        if !num_clauses >= 0 && List.length clauses <> !num_clauses then
          Error "clause count mismatch"
        else Ok { num_vars = !num_vars; clauses }
      end

let print cnf =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" cnf.num_vars (List.length cnf.clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    cnf.clauses;
  Buffer.contents buf

let solve cnf =
  let s = Solver.create () in
  Solver.ensure_vars s cnf.num_vars;
  List.iter (Solver.add_clause s) cnf.clauses;
  Solver.solve s
