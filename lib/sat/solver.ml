(* Minisat-2.2/Glucose-style CDCL.  Internals use 0-based variables and
   literals packed as [2*var + sign] (sign 1 = negated); the external API
   speaks DIMACS.
   Invariants:
   - clauses of length >= 3 watch exactly their first two literals:
     watches.(l) is a flat vector of (clause, blocker) entries for the
     clauses with watched literal [lit_neg l], where the blocker is some
     other literal of the clause — if the blocker is true the clause is
     satisfied and the entry is skipped without touching the clause;
   - binary clauses live in bin_watches.(l) as (clause, other) entries and
     never migrate: when l becomes true, [other] is either satisfied,
     propagated, or the conflict — no watch search, no literal-array scan;
   - the trail is a stack of assigned literals; qhead marks the propagation
     frontier;
   - level.(v) / reason.(v) are meaningful only while v is assigned;
   - whenever a clause is some variable's reason, its implied literal is at
     position 0 (propagation only swaps lits 0/1 while lits.(0) is false);
   - deleted clauses are dropped lazily from the watcher vectors during
     propagation. *)

type clause = {
  mutable lits : int array;
  mutable learnt : bool;
      (* flips to false exactly once, when a learnt clause subsumes a
         problem clause and must take over its constraint role *)
  mutable act : float;
  mutable lbd : int;       (* literal block distance at learn time, refreshed
                              downward whenever the clause resolves a
                              conflict; 0 for problem clauses *)
  mutable deleted : bool;
  mutable csig : int;
      (* subsumption signature: one bit per variable (mod word size);
         [c] can only subsume [d] when [csig c land lnot (csig d) = 0] *)
}

let dummy_clause =
  { lits = [||]; learnt = false; act = 0.0; lbd = 0; deleted = true; csig = 0 }

let clause_sig lits =
  Array.fold_left (fun acc l -> acc lor (1 lsl ((l lsr 1) land 62))) 0 lits

(* Flat resizable watcher vector: parallel clause / literal payload arrays.
   For long-clause watchers the payload is the blocker literal; for binary
   watchers it is the other (implied) literal of the pair. *)
type watchlist = {
  mutable wc : clause array;
  mutable wb : int array;
  mutable wlen : int;
}

let new_watchlist () = { wc = [||]; wb = [||]; wlen = 0 }

let wpush wl c b =
  let n = Array.length wl.wc in
  if wl.wlen = n then begin
    let ncap = max 4 (2 * n) in
    let nc = Array.make ncap dummy_clause and nb = Array.make ncap 0 in
    Array.blit wl.wc 0 nc 0 n;
    Array.blit wl.wb 0 nb 0 n;
    wl.wc <- nc;
    wl.wb <- nb
  end;
  wl.wc.(wl.wlen) <- c;
  wl.wb.(wl.wlen) <- b;
  wl.wlen <- wl.wlen + 1

(* DRUP-style proof events, in DIMACS literals.  [P_input] is a problem
   clause exactly as the caller supplied it (before deduplication and
   level-0 strengthening) so an external checker sees a formula that is a
   superset of the attached clause database; [P_add] is a clause derivable
   from the events so far by reverse unit propagation (learnt clauses —
   already minimized, which self-subsuming resolution keeps RUP —
   root-level implied units, and the empty clause when the instance
   becomes unsatisfiable); [P_delete] retracts an attached clause. *)
type proof_event =
  | P_input of int list
  | P_add of int list
  | P_delete of int list

(* One bounded-variable-elimination event.  [ev_side] snapshots the
   deleted clauses that contained the positive literal [ev_lit = 2*ev_var]
   (internal literals, as at deletion time): model reconstruction sets the
   variable true iff one of them has every other literal false.  [ev_all]
   keeps every deleted problem clause in DIMACS form so a later mention of
   the variable can revive them verbatim as fresh inputs. *)
type elim = {
  ev_var : int;
  ev_lit : int;
  mutable ev_dead : bool;
  ev_side : int array list;
  ev_all : int list list;
}

type t = {
  mutable nvars : int;
  mutable assign : int array;        (* -1 undef / 0 false / 1 true, per var *)
  mutable level : int array;         (* decision level, per var *)
  mutable reason : clause array;
      (* [dummy_clause] = no reason (decision / assumption / level 0);
         avoids a [Some] allocation per propagated literal *)
  mutable watches : watchlist array;     (* per literal, length >= 3 clauses *)
  mutable bin_watches : watchlist array; (* per literal, binary clauses *)
  mutable activity : float array;    (* per var *)
  mutable polarity : bool array;     (* saved phase, per var *)
  mutable heap : int array;          (* binary max-heap of vars *)
  mutable heap_pos : int array;      (* position in heap, -1 if absent *)
  mutable heap_len : int;
  mutable trail : int array;         (* literals *)
  mutable trail_len : int;
  mutable qhead : int;
  mutable trail_lim : int array;     (* trail length at each decision *)
  mutable n_levels : int;
  mutable learnts : clause array;    (* growable; may hold deleted slots *)
  mutable n_learnts : int;           (* used slots of [learnts] *)
  mutable probs : clause array;
      (* every attached problem clause (growable; may hold deleted
         slots).  Simplification passes need to enumerate the problem
         database, which otherwise lives only in the watch lists. *)
  mutable n_probs : int;             (* used slots of [probs] *)
  mutable n_problem : int;
  mutable n_learnt : int;            (* live learnt clauses *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable unsat_at_root : bool;
  mutable have_model : bool;
      (* A [Sat] answer needs no model snapshot: [solve] backtracks to the
         root before returning, which saves every popped assignment in
         [polarity], and nothing moves [assign]/[polarity] again until the
         next mutation — which clears this flag.  [value] reads the root
         assignment if any, the saved phase otherwise. *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnt_lits : int;         (* learnt literals before minimization *)
  mutable minimized_lits : int;      (* literals removed by minimization *)
  mutable db_reductions : int;
  mutable simp_subsumed : int;       (* clauses deleted by subsumption *)
  mutable simp_strengthened : int;   (* literals removed by self-subsumption *)
  mutable simp_eliminated : int;     (* variables eliminated (cumulative) *)
  mutable simp_vivified : int;       (* literals removed by vivification *)
  mutable simp_passes : int;         (* completed inprocessing passes *)
  mutable seen : bool array;         (* scratch for conflict analysis *)
  mutable lbd_mark : int array;      (* per level: stamp for LBD counting *)
  mutable lbd_tick : int;
  mutable failed : int list;         (* failed assumptions of the last Unsat *)
  groups : (int, clause list ref) Hashtbl.t;
      (* activation var -> clauses gated by it, for O(group) retirement *)
  mutable occurs : int array;
      (* per var: number of live attached clauses containing it.  A var
         with no occurrences is unconstrained: the search never decides
         it and the model reports its saved phase.  This is what makes
         retiring a clause group actually cheap — the group's private
         variables stop costing decision and propagation time. *)
  mutable frozen : bool array;
      (* per var: never eliminated.  Activation literals and every
         variable that has ever been assumed are frozen — the session
         layer may assume them again, and an eliminated variable has no
         clauses left to constrain an assumption. *)
  mutable elimed : bool array;       (* per var: currently eliminated *)
  mutable revived : bool array;
      (* per var: was eliminated once and then revived by a later
         mention.  Such variables are shared with future clauses (e.g. a
         session's unrolling variables, touched by every fault's delta),
         so re-eliminating them would thrash: eliminate, revive on the
         next batch, re-derive the resolvents, forever.  One revival
         disqualifies the variable from BVE for good. *)
  mutable elim_stack : elim list;    (* newest first *)
  mutable proof_sink : (proof_event -> unit) option;
  (* feature switches (bench ablation / test hooks) *)
  mutable cfg_minimize : bool;
  mutable cfg_lbd_tiers : bool;
  mutable cfg_learnt_limit : int option;
  mutable cfg_phase_saving : bool;
      (* When off, decisions ignore [polarity] and always pick the
         default (false) phase.  [cancel_until] keeps writing [polarity]
         regardless: the model contract of [value] depends on it. *)
  mutable cfg_inprocess : bool;
      (* When off, [inprocess] is a no-op — callers schedule passes
         unconditionally and this switch is the single ablation point. *)
}

let create () =
  {
    nvars = 0;
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 dummy_clause;
    watches = Array.init 32 (fun _ -> new_watchlist ());
    bin_watches = Array.init 32 (fun _ -> new_watchlist ());
    activity = Array.make 16 0.0;
    polarity = Array.make 16 false;
    heap = Array.make 16 0;
    heap_pos = Array.make 16 (-1);
    heap_len = 0;
    trail = Array.make 16 0;
    trail_len = 0;
    qhead = 0;
    trail_lim = Array.make 16 0;
    n_levels = 0;
    learnts = [||];
    n_learnts = 0;
    probs = [||];
    n_probs = 0;
    n_problem = 0;
    n_learnt = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    unsat_at_root = false;
    have_model = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnt_lits = 0;
    minimized_lits = 0;
    db_reductions = 0;
    simp_subsumed = 0;
    simp_strengthened = 0;
    simp_eliminated = 0;
    simp_vivified = 0;
    simp_passes = 0;
    seen = Array.make 16 false;
    lbd_mark = Array.make 16 0;
    lbd_tick = 0;
    failed = [];
    groups = Hashtbl.create 16;
    occurs = Array.make 16 0;
    frozen = Array.make 16 false;
    elimed = Array.make 16 false;
    revived = Array.make 16 false;
    elim_stack = [];
    proof_sink = None;
    cfg_minimize = true;
    cfg_lbd_tiers = true;
    cfg_learnt_limit = None;
    cfg_phase_saving = true;
    cfg_inprocess = true;
  }

let num_vars s = s.nvars
let num_clauses s = s.n_problem
let stats s = (s.conflicts, s.decisions, s.propagations)

type search_stats = {
  st_conflicts : int;
  st_decisions : int;
  st_propagations : int;
  st_restarts : int;
  st_learnt_lits : int;
  st_minimized_lits : int;
  st_reductions : int;
  st_learnt_db : int;
  st_subsumed : int;
  st_strengthened_lits : int;
  st_eliminated_vars : int;
  st_vivified_lits : int;
  st_simp_passes : int;
}

let search_stats s =
  {
    st_conflicts = s.conflicts;
    st_decisions = s.decisions;
    st_propagations = s.propagations;
    st_restarts = s.restarts;
    st_learnt_lits = s.learnt_lits;
    st_minimized_lits = s.minimized_lits;
    st_reductions = s.db_reductions;
    st_learnt_db = s.n_learnt;
    st_subsumed = s.simp_subsumed;
    st_strengthened_lits = s.simp_strengthened;
    st_eliminated_vars = s.simp_eliminated;
    st_vivified_lits = s.simp_vivified;
    st_simp_passes = s.simp_passes;
  }

let set_minimize s b = s.cfg_minimize <- b
let set_lbd_tiers s b = s.cfg_lbd_tiers <- b
let set_learnt_limit s n = s.cfg_learnt_limit <- n
let set_phase_saving s b = s.cfg_phase_saving <- b
let set_inprocess s b = s.cfg_inprocess <- b
let set_proof_sink s sink = s.proof_sink <- sink

let log_proof s ev =
  match s.proof_sink with None -> () | Some f -> f ev

(* Root unsatisfiability is the proof's terminal fact: the first time it
   is established, the empty clause is RUP and gets logged once. *)
let set_root_unsat s =
  if not s.unsat_at_root then begin
    s.unsat_at_root <- true;
    log_proof s (P_add [])
  end

(* ---- variable order heap (max-heap on activity) ---- *)

(* Sift the var at slot [i] up/down to restore the max-heap-on-activity
   order.  Hot (every decision pops, every backtracked assignment may
   reinsert), so both walks are iterative, hold the moving var in a
   register and write each vacated slot once; the unsafe accesses are
   bounded by heap_len <= length heap and vars < length activity. *)
let heap_up s i =
  let act = s.activity and heap = s.heap and pos = s.heap_pos in
  let v = Array.unsafe_get heap i in
  let av = Array.unsafe_get act v in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let w = Array.unsafe_get heap p in
    if av > Array.unsafe_get act w then begin
      Array.unsafe_set heap !i w;
      Array.unsafe_set pos w !i;
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set heap !i v;
  Array.unsafe_set pos v !i

let heap_down s i =
  let act = s.activity and heap = s.heap and pos = s.heap_pos in
  let n = s.heap_len in
  let v = Array.unsafe_get heap i in
  let av = Array.unsafe_get act v in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let r = l + 1 in
      let c =
        if
          r < n
          && Array.unsafe_get act (Array.unsafe_get heap r)
             > Array.unsafe_get act (Array.unsafe_get heap l)
        then r
        else l
      in
      let w = Array.unsafe_get heap c in
      if Array.unsafe_get act w > av then begin
        Array.unsafe_set heap !i w;
        Array.unsafe_set pos w !i;
        i := c
      end
      else continue := false
    end
  done;
  Array.unsafe_set heap !i v;
  Array.unsafe_set pos v !i

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_len = Array.length s.heap then
      s.heap <- Array.append s.heap (Array.make (max 16 s.heap_len) 0);
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    let w = s.heap.(s.heap_len) in
    s.heap.(0) <- w;
    s.heap_pos.(w) <- 0;
    heap_down s 0
  end;
  v

let heap_update s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* ---- variable allocation ---- *)

let grow_to s n =
  let old = Array.length s.assign in
  if n > old then begin
    let cap = max n (2 * old) in
    let extend a fill = Array.append a (Array.make (cap - old) fill) in
    s.assign <- extend s.assign (-1);
    s.level <- extend s.level 0;
    s.reason <- extend s.reason dummy_clause;
    s.activity <- extend s.activity 0.0;
    s.polarity <- extend s.polarity false;
    s.seen <- extend s.seen false;
    s.occurs <- extend s.occurs 0;
    s.frozen <- extend s.frozen false;
    s.elimed <- extend s.elimed false;
    s.revived <- extend s.revived false;
    s.heap_pos <- extend s.heap_pos (-1);
    s.trail <- extend s.trail 0;
    s.trail_lim <- extend s.trail_lim 0;
    let oldw = Array.length s.watches in
    let extra = (2 * cap) - oldw in
    s.watches <-
      Array.append s.watches (Array.init extra (fun _ -> new_watchlist ()));
    s.bin_watches <-
      Array.append s.bin_watches (Array.init extra (fun _ -> new_watchlist ()))
  end

let new_var s =
  grow_to s (s.nvars + 1);
  let v = s.nvars in
  s.nvars <- s.nvars + 1;
  heap_insert s v;
  v + 1

let ensure_vars s n =
  while s.nvars < n do
    ignore (new_var s)
  done

(* ---- literal helpers ---- *)

let lit_of_dimacs s d =
  if d = 0 then invalid_arg "Sat.Solver: zero literal";
  let v = abs d in
  ensure_vars s v;
  if d > 0 then 2 * (v - 1) else (2 * (v - 1)) + 1

let lit_var l = l lsr 1
let lit_neg l = l lxor 1
let dimacs_of_lit l = if l land 1 = 0 then (l lsr 1) + 1 else -((l lsr 1) + 1)

(* value of a literal: -1 undef, 0 false, 1 true *)
let lit_val s l =
  let a = s.assign.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = s.n_levels

(* ---- assignment ---- *)

let enqueue s l reason =
  (* Every level-0 assignment is a fact implied by unit propagation over
     the clauses logged so far, so it is RUP; emitting it as a unit lemma
     keeps the proof sound across level-0 clause strengthening and the
     later deletion of its reason clause. *)
  if s.n_levels = 0 then log_proof s (P_add [ dimacs_of_lit l ]);
  let v = l lsr 1 in
  Array.unsafe_set s.assign v (1 lxor (l land 1));
  Array.unsafe_set s.level v s.n_levels;
  Array.unsafe_set s.reason v reason;
  Array.unsafe_set s.trail s.trail_len l;
  s.trail_len <- s.trail_len + 1

(* One level per assumption plus one per decision can exceed the
   variable-count sizing of [trail_lim] (assumptions already implied open
   an empty level), so the level stack grows on demand. *)
let push_level s =
  let n = Array.length s.trail_lim in
  if s.n_levels >= n then
    s.trail_lim <- Array.append s.trail_lim (Array.make (max 16 n) 0);
  s.trail_lim.(s.n_levels) <- s.trail_len;
  s.n_levels <- s.n_levels + 1

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let target = s.trail_lim.(lvl) in
    let trail = s.trail
    and assign = s.assign
    and polarity = s.polarity
    and reason = s.reason
    and heap_pos = s.heap_pos in
    for i = s.trail_len - 1 downto target do
      let v = Array.unsafe_get trail i lsr 1 in
      Array.unsafe_set polarity v (Array.unsafe_get assign v = 1);
      Array.unsafe_set assign v (-1);
      Array.unsafe_set reason v dummy_clause;
      (* Most backtracked vars were assigned by propagation and are still
         heap members; test that inline and only call out for the popped
         (decision) vars that really need reinsertion. *)
      if Array.unsafe_get heap_pos v < 0 then heap_insert s v
    done;
    s.trail_len <- target;
    s.qhead <- target;
    s.n_levels <- lvl
  end

(* ---- activity ---- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_update s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to s.n_learnts - 1 do
      let c = s.learnts.(i) in
      c.act <- c.act *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* ---- LBD (literal block distance) ---- *)

(* Number of distinct non-root decision levels among the clause's
   literals, counted with a stamped per-level scratch array.  Only
   meaningful while the literals are assigned (call before backjumping). *)
let clause_lbd s lits =
  if Array.length s.lbd_mark <= s.n_levels then
    s.lbd_mark <-
      Array.append s.lbd_mark
        (Array.make (s.n_levels + 16 - Array.length s.lbd_mark) 0);
  s.lbd_tick <- s.lbd_tick + 1;
  let tick = s.lbd_tick in
  let d = ref 0 in
  Array.iter
    (fun q ->
      let lv = s.level.(lit_var q) in
      if lv > 0 && s.lbd_mark.(lv) <> tick then begin
        s.lbd_mark.(lv) <- tick;
        incr d
      end)
    lits;
  !d

(* ---- clause attachment ---- *)

let attach_watches s c =
  if Array.length c.lits = 2 then begin
    wpush s.bin_watches.(lit_neg c.lits.(0)) c c.lits.(1);
    wpush s.bin_watches.(lit_neg c.lits.(1)) c c.lits.(0)
  end
  else begin
    wpush s.watches.(lit_neg c.lits.(0)) c c.lits.(1);
    wpush s.watches.(lit_neg c.lits.(1)) c c.lits.(0)
  end

let attach s c =
  attach_watches s c;
  Array.iter
    (fun l ->
      let v = lit_var l in
      s.occurs.(v) <- s.occurs.(v) + 1;
      (* A var regaining occurrences must become decidable again: it may
         have been popped from the order heap while unconstrained. *)
      if s.occurs.(v) = 1 && s.assign.(v) < 0 then heap_insert s v)
    c.lits

let wl_remove wl c =
  let i = ref 0 in
  while !i < wl.wlen && wl.wc.(!i) != c do
    incr i
  done;
  if !i < wl.wlen then begin
    wl.wlen <- wl.wlen - 1;
    wl.wc.(!i) <- wl.wc.(wl.wlen);
    wl.wb.(!i) <- wl.wb.(wl.wlen);
    wl.wc.(wl.wlen) <- dummy_clause
  end

(* Remove the clause from its two watch lists (it watches exactly
   lits.(0) / lits.(1) whenever propagation is at a fixpoint).  Occurrence
   counts are untouched: the clause is still logically present. *)
let detach s c =
  if Array.length c.lits = 2 then begin
    wl_remove s.bin_watches.(lit_neg c.lits.(0)) c;
    wl_remove s.bin_watches.(lit_neg c.lits.(1)) c
  end
  else begin
    wl_remove s.watches.(lit_neg c.lits.(0)) c;
    wl_remove s.watches.(lit_neg c.lits.(1)) c
  end

(* Delete a clause in place: propagation drops deleted clauses from the
   watcher vectors lazily the next time it scans them.  A deleted clause
   may still be the reason of a level-0 assignment; that is safe because
   conflict analysis never resolves on level-0 literals. *)
let delete_clause s c =
  if not c.deleted then begin
    log_proof s (P_delete (Array.to_list (Array.map dimacs_of_lit c.lits)));
    c.deleted <- true;
    if c.learnt then s.n_learnt <- s.n_learnt - 1
    else s.n_problem <- s.n_problem - 1;
    Array.iter
      (fun l ->
        let v = lit_var l in
        s.occurs.(v) <- s.occurs.(v) - 1)
      c.lits
  end

let push_learnt s c =
  let n = Array.length s.learnts in
  if s.n_learnts = n then begin
    let nl = Array.make (max 16 (2 * n)) dummy_clause in
    Array.blit s.learnts 0 nl 0 n;
    s.learnts <- nl
  end;
  s.learnts.(s.n_learnts) <- c;
  s.n_learnts <- s.n_learnts + 1

let push_prob s c =
  let n = Array.length s.probs in
  if s.n_probs = n then begin
    let np = Array.make (max 16 (2 * n)) dummy_clause in
    Array.blit s.probs 0 np 0 n;
    s.probs <- np
  end;
  s.probs.(s.n_probs) <- c;
  s.n_probs <- s.n_probs + 1

(* Drop deleted slots from the learnt array (the live clauses keep their
   relative order).  Clauses promoted to problem status by subsumption
   leave too — [reduce_db] must never see (let alone delete) them. *)
let compact_learnts s =
  let j = ref 0 in
  for i = 0 to s.n_learnts - 1 do
    let c = s.learnts.(i) in
    if (not c.deleted) && c.learnt then begin
      s.learnts.(!j) <- c;
      incr j
    end
  done;
  for i = !j to s.n_learnts - 1 do
    s.learnts.(i) <- dummy_clause
  done;
  s.n_learnts <- !j

let compact_probs s =
  let j = ref 0 in
  for i = 0 to s.n_probs - 1 do
    let c = s.probs.(i) in
    if not c.deleted then begin
      s.probs.(!j) <- c;
      incr j
    end
  done;
  for i = !j to s.n_probs - 1 do
    s.probs.(i) <- dummy_clause
  done;
  s.n_probs <- !j

(* ---- propagation ---- *)

exception Conflict of clause

(* The propagation inner loop visits every watcher entry of every
   assigned literal — the hottest code in the solver by far.  It uses
   unsafe array accesses, each safe by construction: watcher indices are
   < wlen <= capacity, literals are < 2*nvars <= length assign, and
   clause literal indices are < Array.length lits.  Assignment tests are
   inlined against [assign]: literal [x] is true iff
   [assign.(x/2) = (x land 1) lxor 1] and false iff
   [assign.(x/2) = x land 1] (unassigned is -1, matching neither). *)
let propagate s =
  let assign = s.assign in
  try
    while s.qhead < s.trail_len do
      let l = Array.unsafe_get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      (* Binary clauses first: (c, other) with c = {~l, other}.  No watch
         search and no migration — the pair either satisfies, propagates,
         or conflicts.  Deleted pairs are purged by swap-with-last. *)
      let bw = Array.unsafe_get s.bin_watches l in
      let i = ref 0 in
      while !i < bw.wlen do
        let c = Array.unsafe_get bw.wc !i in
        if c.deleted then begin
          bw.wlen <- bw.wlen - 1;
          Array.unsafe_set bw.wc !i (Array.unsafe_get bw.wc bw.wlen);
          Array.unsafe_set bw.wb !i (Array.unsafe_get bw.wb bw.wlen);
          Array.unsafe_set bw.wc bw.wlen dummy_clause
        end
        else begin
          let other = Array.unsafe_get bw.wb !i in
          let a = Array.unsafe_get assign (other lsr 1) in
          let sgn = other land 1 in
          if a <> sgn lxor 1 then
            if a = sgn then raise (Conflict c)
            else enqueue s other c;
          incr i
        end
      done;
      (* Long clauses watching ~l: skip on a true blocker, otherwise find
         a new watch or propagate/conflict. *)
      let wl = Array.unsafe_get s.watches l in
      let i = ref 0 and j = ref 0 in
      while !i < wl.wlen do
        let blocker = Array.unsafe_get wl.wb !i in
        let c = Array.unsafe_get wl.wc !i in
        incr i;
        if Array.unsafe_get assign (blocker lsr 1) = (blocker land 1) lxor 1
        then begin
          (* Satisfied without dereferencing the clause. *)
          Array.unsafe_set wl.wc !j c;
          Array.unsafe_set wl.wb !j blocker;
          incr j
        end
        else if not c.deleted then begin
          let lits = c.lits in
          (* Ensure the false literal is at position 1. *)
          let fl = l lxor 1 in
          if Array.unsafe_get lits 0 = fl then begin
            Array.unsafe_set lits 0 (Array.unsafe_get lits 1);
            Array.unsafe_set lits 1 fl
          end;
          let first = Array.unsafe_get lits 0 in
          if
            first <> blocker
            && Array.unsafe_get assign (first lsr 1) = (first land 1) lxor 1
          then begin
            Array.unsafe_set wl.wc !j c;
            Array.unsafe_set wl.wb !j first;
            incr j
          end
          else begin
            (* Look for a new watch among lits.(2..). *)
            let n = Array.length lits in
            let k = ref 2 in
            while
              !k < n
              &&
              let x = Array.unsafe_get lits !k in
              Array.unsafe_get assign (x lsr 1) = x land 1
            do
              incr k
            done;
            if !k < n then begin
              let w = Array.unsafe_get lits !k in
              Array.unsafe_set lits !k (Array.unsafe_get lits 1);
              Array.unsafe_set lits 1 w;
              wpush (Array.unsafe_get s.watches (w lxor 1)) c first
            end
            else begin
              (* Unit or conflicting: keep watching l. *)
              Array.unsafe_set wl.wc !j c;
              Array.unsafe_set wl.wb !j first;
              incr j;
              if Array.unsafe_get assign (first lsr 1) = first land 1
              then begin
                (* Conflict: keep the unscanned watcher tail before
                   raising. *)
                while !i < wl.wlen do
                  Array.unsafe_set wl.wc !j (Array.unsafe_get wl.wc !i);
                  Array.unsafe_set wl.wb !j (Array.unsafe_get wl.wb !i);
                  incr i;
                  incr j
                done;
                for t = !j to wl.wlen - 1 do
                  Array.unsafe_set wl.wc t dummy_clause
                done;
                wl.wlen <- !j;
                raise (Conflict c)
              end
              else enqueue s first c
            end
          end
        end
      done;
      for t = !j to wl.wlen - 1 do
        Array.unsafe_set wl.wc t dummy_clause
      done;
      wl.wlen <- !j
    done;
    None
  with Conflict c -> Some c

(* ---- conflict analysis (first UIP + recursive minimization) ---- *)

let abstract_level s v = 1 lsl (s.level.(v) land 31)

(* Self-subsuming resolution, deep (recursive) check: a learnt literal is
   redundant when every path through its reason antecedents bottoms out in
   other learnt literals or level-0 facts, never leaving the decision
   levels of the learnt clause ([abstract_levels] mask).  Vars shown
   redundant keep their seen mark (memoized for later queries within this
   conflict); marks added by a failed walk are undone. *)
let lit_redundant s abstract_levels p to_clear =
  let stack = ref [ p ] in
  let newly = ref [] in
  let ok = ref true in
  while !ok && !stack <> [] do
    let q = List.hd !stack in
    stack := List.tl !stack;
    let r = s.reason.(lit_var q) in
    Array.iter
      (fun x ->
        let v = lit_var x in
        if !ok && v <> lit_var q && (not s.seen.(v)) && s.level.(v) > 0 then begin
          if
            s.reason.(v) != dummy_clause
            && abstract_level s v land abstract_levels <> 0
          then begin
            s.seen.(v) <- true;
            newly := v :: !newly;
            stack := x :: !stack
          end
          else ok := false
        end)
      r.lits
  done;
  if !ok then begin
    to_clear := List.rev_append !newly !to_clear;
    true
  end
  else begin
    List.iter (fun v -> s.seen.(v) <- false) !newly;
    false
  end

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_len - 1) in
  let c = ref confl in
  let to_clear = ref [] in
  let uip = ref 0 in
  let continue = ref true in
  while !continue do
    cla_bump s !c;
    (* Glucose-style LBD refresh: a learnt clause that keeps resolving
       conflicts gets its (only ever smaller) current LBD, promoting it
       toward the protected tier. *)
    if (!c).learnt then begin
      let d = clause_lbd s (!c).lits in
      if d < (!c).lbd then (!c).lbd <- d
    end;
    Array.iter
      (fun q ->
        let v = lit_var q in
        if (!p < 0 || q <> !p) && (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          to_clear := v :: !to_clear;
          var_bump s v;
          if s.level.(v) >= decision_level s then incr path
          else learnt := q :: !learnt
        end)
      (!c).lits;
    (* Next literal to resolve on: last assigned marked literal. *)
    while not s.seen.(lit_var s.trail.(!idx)) do
      decr idx
    done;
    let q = s.trail.(!idx) in
    decr idx;
    s.seen.(lit_var q) <- false;
    decr path;
    if !path = 0 then begin
      uip := lit_neg q;
      continue := false
    end
    else begin
      c := s.reason.(lit_var q);
      p := q
    end
  done;
  s.learnt_lits <- s.learnt_lits + List.length !learnt + 1;
  let kept =
    if not s.cfg_minimize then !learnt
    else begin
      let abstract_levels =
        List.fold_left
          (fun m q -> m lor abstract_level s (lit_var q))
          0 !learnt
      in
      List.filter
        (fun q ->
          s.reason.(lit_var q) == dummy_clause
          || not (lit_redundant s abstract_levels q to_clear))
        !learnt
    end
  in
  s.minimized_lits <-
    s.minimized_lits + (List.length !learnt - List.length kept);
  let btlevel =
    List.fold_left (fun m q -> max m s.level.(lit_var q)) 0 kept
  in
  let lits = Array.of_list (!uip :: kept) in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  (lits, btlevel)

(* Final conflict analysis: assumption literal [p] came up false during the
   assumption scan.  Walk the implication trail backwards from the top and
   collect the assumption decisions (reason = None above level 0) that the
   falsification of [p] depends on — the failed-assumption subset, in the
   DIMACS convention of the caller's assumption list. *)
let analyze_final s p =
  let out = ref [ dimacs_of_lit p ] in
  if decision_level s > 0 then begin
    s.seen.(lit_var p) <- true;
    let bottom = s.trail_lim.(0) in
    for i = s.trail_len - 1 downto bottom do
      let v = lit_var s.trail.(i) in
      if s.seen.(v) then begin
        (let c = s.reason.(v) in
         if c == dummy_clause then
           out := dimacs_of_lit s.trail.(i) :: !out
         else
           Array.iter
             (fun q ->
               let u = lit_var q in
               if u <> v && s.level.(u) > 0 then s.seen.(u) <- true)
             c.lits);
        s.seen.(v) <- false
      end
    done;
    s.seen.(lit_var p) <- false
  end;
  List.sort_uniq compare !out

(* ---- learnt clause database reduction ---- *)

let locked s c =
  s.reason.(lit_var c.lits.(0)) == c && lit_val s c.lits.(0) = 1

(* Glucose-style two-tier reduction: glue clauses (LBD <= 2), binaries and
   locked clauses are kept; the rest sort worst-first (highest LBD, then
   lowest activity) and the worse half is deleted.  With [cfg_lbd_tiers]
   off the candidate set and order degrade to the activity-only policy. *)
let reduce_db s =
  compact_learnts s;
  let cand = ref [] and ncand = ref 0 in
  for i = 0 to s.n_learnts - 1 do
    let c = s.learnts.(i) in
    if
      Array.length c.lits > 2
      && (not (locked s c))
      && ((not s.cfg_lbd_tiers) || c.lbd > 2)
    then begin
      cand := c :: !cand;
      incr ncand
    end
  done;
  let arr = Array.of_list !cand in
  Array.sort
    (fun a b ->
      if s.cfg_lbd_tiers && a.lbd <> b.lbd then Int.compare b.lbd a.lbd
      else Float.compare a.act b.act)
    arr;
  for i = 0 to (!ncand / 2) - 1 do
    delete_clause s arr.(i)
  done;
  compact_learnts s;
  s.db_reductions <- s.db_reductions + 1

let learnt_limit s =
  match s.cfg_learnt_limit with
  | Some n -> n
  | None -> (2 * s.n_problem) + 1000

(* ---- adding clauses ---- *)

(* Returns the clause when one was actually attached (length >= 2 after
   level-0 strengthening); None when the clause was dropped, became a unit
   fact, or made the instance unsat. *)
let add_clause_internal s lits =
  if s.unsat_at_root then None
  else begin
    let lits = List.sort_uniq Int.compare lits in
    (* Sorted and deduplicated, a tautology is an adjacent pair (2v, 2v+1)
       — one linear scan. *)
    let rec taut = function
      | a :: (b :: _ as rest) -> b = a lxor 1 || taut rest
      | _ -> false
    in
    let tautology = taut lits in
    let satisfied =
      List.exists (fun l -> lit_val s l = 1 && s.level.(lit_var l) = 0) lits
    in
    if tautology || satisfied then None
    else begin
      let lits =
        List.filter
          (fun l -> not (lit_val s l = 0 && s.level.(lit_var l) = 0))
          lits
      in
      match lits with
      | [] ->
          set_root_unsat s;
          None
      | [ l ] ->
          if lit_val s l = 0 then set_root_unsat s
          else if lit_val s l = -1 then begin
            enqueue s l dummy_clause;
            (match propagate s with
            | Some _ -> set_root_unsat s
            | None -> ())
          end;
          None
      | _ ->
          let lits = Array.of_list lits in
          let c =
            { lits; learnt = false; act = 0.0; lbd = 0; deleted = false;
              csig = clause_sig lits }
          in
          s.n_problem <- s.n_problem + 1;
          attach s c;
          push_prob s c;
          Some c
    end
  end

(* ---- simplification: subsumption, vivification, variable elimination ----

   Every transformation speaks DRUP through the proof sink: a derived
   clause is logged as [P_add] while its antecedents are still live (so
   the checker verifies it by reverse unit propagation), and only then are
   clauses retracted with [P_delete].  Deletions need no justification in
   DRUP, which is what makes variable elimination certifiable here: the
   resolvents are each RUP with respect to their two parents, and the
   parent clauses are then simply deleted. *)

let dimacs_list lits = Array.to_list (Array.map dimacs_of_lit lits)

(* Level-0 propagation to a fixpoint; a root conflict closes the proof. *)
let saturate s =
  match propagate s with Some _ -> set_root_unsat s | None -> ()

(* Replace a *detached* clause's literal set with [new_lits] (a strict
   subset that the caller has shown to be RUP).  Shrinking to a unit or
   to the empty clause dissolves the clause object into a level-0 fact.
   Level 0 only. *)
let replace_lits s c new_lits =
  if Array.length new_lits >= 2 then begin
    log_proof s (P_add (dimacs_list new_lits));
    log_proof s (P_delete (dimacs_list c.lits));
    Array.iter
      (fun l -> s.occurs.(lit_var l) <- s.occurs.(lit_var l) - 1)
      c.lits;
    c.lits <- new_lits;
    c.csig <- clause_sig new_lits;
    Array.iter
      (fun l ->
        let v = lit_var l in
        s.occurs.(v) <- s.occurs.(v) + 1;
        if s.occurs.(v) = 1 && s.assign.(v) < 0 then heap_insert s v)
      new_lits;
    attach_watches s c
  end
  else begin
    (match Array.length new_lits with
    | 1 -> (
        let l = new_lits.(0) in
        (* [enqueue] at level 0 logs the unit lemma; a literal already
           true needed no new event, one already false closes the proof
           (its negation is a logged level-0 unit). *)
        match lit_val s l with
        | -1 -> enqueue s l dummy_clause
        | 0 ->
            log_proof s (P_add [ dimacs_of_lit l ]);
            set_root_unsat s
        | _ -> ())
    | _ -> set_root_unsat s);
    delete_clause s c
  end

(* Attach a clause derived by simplification (already RUP w.r.t. the live
   database).  The full derived clause is logged; literals false at level
   0 are stripped from the attached copy exactly as in the input path, so
   the checker's formula stays a superset of the attached database. *)
let add_derived s lits =
  log_proof s (P_add (dimacs_list lits));
  if Array.exists (fun l -> lit_val s l = 1) lits then None
  else begin
    let live =
      Array.of_list
        (List.filter (fun l -> lit_val s l <> 0) (Array.to_list lits))
    in
    match Array.length live with
    | 0 ->
        set_root_unsat s;
        None
    | 1 ->
        (match lit_val s live.(0) with
        | -1 -> enqueue s live.(0) dummy_clause
        | _ -> ());
        None
    | _ ->
        let c =
          { lits = live; learnt = false; act = 0.0; lbd = 0;
            deleted = false; csig = clause_sig live }
        in
        s.n_problem <- s.n_problem + 1;
        attach s c;
        push_prob s c;
        Some c
  end

(* A learnt clause that subsumes a problem clause takes over its
   constraint role: promote it to problem status so database reduction
   can never delete it ([compact_learnts] drops it from the learnt
   array). *)
let promote s c =
  if c.learnt then begin
    c.learnt <- false;
    c.lbd <- 0;
    s.n_learnt <- s.n_learnt - 1;
    s.n_problem <- s.n_problem + 1;
    push_prob s c
  end

(* Bring a clause in sync with the level-0 trail: delete it if satisfied,
   strip its false literals (the stripped clause is RUP — each removed
   literal is falsified by a logged unit lemma). *)
let cleanup_clause s c =
  if not c.deleted then begin
    if Array.exists (fun l -> lit_val s l = 1) c.lits then delete_clause s c
    else if Array.exists (fun l -> lit_val s l = 0) c.lits then begin
      let kept =
        Array.of_list
          (List.filter (fun l -> lit_val s l <> 0) (Array.to_list c.lits))
      in
      detach s c;
      replace_lits s c kept
    end
  end

let mem_lit lits l =
  let n = Array.length lits in
  let i = ref 0 in
  while !i < n && Array.unsafe_get lits !i <> l do
    incr i
  done;
  !i < n

let sig_subset c d = c.csig land lnot d.csig = 0

(* [c] subsumes [d]: every literal of [c] appears in [d]. *)
let subsumes c d =
  Array.length c.lits <= Array.length d.lits
  && sig_subset c d
  && Array.for_all (fun l -> mem_lit d.lits l) c.lits

(* Self-subsuming resolution: [c \ {l} ⊆ d] and [¬l ∈ d] — resolving the
   two on [l] yields [d \ {¬l}], a strict strengthening of [d] that is
   RUP while both parents are live. *)
let strengthens c d l =
  Array.length c.lits <= Array.length d.lits
  && sig_subset c d
  && mem_lit d.lits (lit_neg l)
  && Array.for_all (fun x -> x = l || mem_lit d.lits x) c.lits

(* Re-adding a mention of an eliminated variable (a new clause, an
   assumption, an explicit freeze) revives it: the deleted problem
   clauses of its elimination event are re-added verbatim as fresh inputs
   — every one is a logical consequence of the original formula, so the
   checker's certificate is unaffected — and the witness entry dies.
   Revival cascades: a revived clause may mention other eliminated
   variables.  Level 0 only. *)
let rec revive_var s v =
  if s.elimed.(v) then begin
    s.elimed.(v) <- false;
    s.revived.(v) <- true;
    List.iter
      (fun e ->
        if (not e.ev_dead) && e.ev_var = v then begin
          e.ev_dead <- true;
          List.iter
            (fun dl ->
              List.iter
                (fun d ->
                  let u = abs d - 1 in
                  if u < s.nvars && s.elimed.(u) then revive_var s u)
                dl;
              log_proof s (P_input dl);
              ignore (add_clause_internal s (List.map (lit_of_dimacs s) dl)))
            e.ev_all
        end)
      s.elim_stack
  end

let revive_mentioned s dimacs_lits =
  List.iter
    (fun d ->
      let u = abs d - 1 in
      if u >= 0 && u < s.nvars && s.elimed.(u) then begin
        cancel_until s 0;
        s.have_model <- false;
        revive_var s u
      end)
    dimacs_lits

(* Replay the elimination witnesses, newest first: an eliminated variable
   is true iff one of its stored positive-side clauses has every other
   literal false under the model reconstructed so far.  Values land in
   [polarity]; eliminated variables are never assigned (they occur in no
   live clause), so {!value} reads exactly these bits. *)
let reconstruct s =
  List.iter
    (fun e ->
      if not e.ev_dead then begin
        let ltrue l =
          let u = l lsr 1 in
          let b =
            if s.assign.(u) >= 0 then s.assign.(u) = 1 else s.polarity.(u)
          in
          b = (l land 1 = 0)
        in
        let forced =
          List.exists
            (fun cl ->
              Array.for_all (fun l -> l = e.ev_lit || not (ltrue l)) cl)
            e.ev_side
        in
        s.polarity.(e.ev_var) <- forced
      end)
    s.elim_stack

let freeze_var s v =
  if v <= 0 || v > s.nvars then
    invalid_arg "Sat.Solver.freeze_var: bad variable";
  let v0 = v - 1 in
  if s.elimed.(v0) then begin
    cancel_until s 0;
    s.have_model <- false;
    revive_var s v0
  end;
  s.frozen.(v0) <- true

let var_eliminated s v = v >= 1 && v <= s.nvars && s.elimed.(v - 1)

let default_simp_budget = 4_000_000

let inprocess ?(budget = default_simp_budget) s =
  if s.cfg_inprocess && not s.unsat_at_root then begin
    cancel_until s 0;
    s.have_model <- false;
    saturate s;
    if not s.unsat_at_root then begin
      s.simp_passes <- s.simp_passes + 1;
      (* 0. sync the clause arrays with the level-0 trail, to a fixpoint
         (stripping may create units that satisfy or shorten others). *)
      let stable = ref false in
      while (not !stable) && not s.unsat_at_root do
        let t0 = s.trail_len in
        for i = 0 to s.n_probs - 1 do
          cleanup_clause s s.probs.(i)
        done;
        for i = 0 to s.n_learnts - 1 do
          cleanup_clause s s.learnts.(i)
        done;
        if not s.unsat_at_root then saturate s;
        stable := s.trail_len = t0
      done;
      if not s.unsat_at_root then begin
        compact_probs s;
        compact_learnts s;
        (* Occurrence lists over the live database.  Clauses only ever
           shrink in place, so the lists stay supersets: a stale entry is
           filtered by a membership test at use.  Clauses attached during
           the pass (resolvents) are registered as they appear. *)
        let occ = Array.make (2 * s.nvars) [] in
        let nocc = Array.make (2 * s.nvars) 0 in
        let register c =
          Array.iter
            (fun l ->
              occ.(l) <- c :: occ.(l);
              nocc.(l) <- nocc.(l) + 1)
            c.lits
        in
        for i = 0 to s.n_probs - 1 do
          register s.probs.(i)
        done;
        for i = 0 to s.n_learnts - 1 do
          register s.learnts.(i)
        done;
        let work = ref 0 in
        (* 1. backward subsumption and self-subsuming strengthening. *)
        let try_clause c =
          if (not c.deleted) && !work <= budget && not s.unsat_at_root
          then begin
            let best = ref c.lits.(0) in
            Array.iter
              (fun l -> if nocc.(l) < nocc.(!best) then best := l)
              c.lits;
            List.iter
              (fun d ->
                incr work;
                if d != c && (not d.deleted) && subsumes c d then begin
                  if (not d.learnt) && c.learnt then promote s c;
                  delete_clause s d;
                  s.simp_subsumed <- s.simp_subsumed + 1
                end)
              occ.(!best);
            Array.iter
              (fun l ->
                if (not c.deleted) && !work <= budget then
                  List.iter
                    (fun d ->
                      incr work;
                      if d != c && (not d.deleted) && strengthens c d l
                      then begin
                        let kept =
                          Array.of_list
                            (List.filter
                               (fun x -> x <> lit_neg l)
                               (Array.to_list d.lits))
                        in
                        detach s d;
                        replace_lits s d kept;
                        s.simp_strengthened <- s.simp_strengthened + 1
                      end)
                    occ.(lit_neg l))
              c.lits
          end
        in
        for i = 0 to s.n_probs - 1 do
          try_clause s.probs.(i)
        done;
        for i = 0 to s.n_learnts - 1 do
          try_clause s.learnts.(i)
        done;
        if not s.unsat_at_root then saturate s;
        (* 2. vivification of problem clauses: assert the negations of
           the literals one by one; a conflict or an implied literal
           proves a shorter RUP clause, an implied-false literal is
           redundant.  The clause is detached first so its own
           propagation cannot mask a strengthening. *)
        let vivify c =
          if
            (not c.deleted)
            && (not c.learnt)
            && Array.length c.lits >= 3
            && !work <= budget
            && (not s.unsat_at_root)
            && not (Array.exists (fun l -> lit_val s l = 1) c.lits)
          then begin
            let p0 = s.propagations in
            detach s c;
            let lits = Array.copy c.lits in
            let n = Array.length lits in
            let kept = ref [] in
            let dropped = ref 0 in
            (try
               for i = 0 to n - 1 do
                 let l = lits.(i) in
                 match lit_val s l with
                 | 1 ->
                     kept := l :: !kept;
                     dropped := !dropped + (n - i - 1);
                     raise Exit
                 | 0 -> incr dropped
                 | _ -> (
                     push_level s;
                     enqueue s (lit_neg l) dummy_clause;
                     match propagate s with
                     | Some _ ->
                         kept := l :: !kept;
                         dropped := !dropped + (n - i - 1);
                         raise Exit
                     | None -> kept := l :: !kept)
               done
             with Exit -> ());
            cancel_until s 0;
            work := !work + (s.propagations - p0) + n;
            if !dropped > 0 then begin
              s.simp_vivified <- s.simp_vivified + !dropped;
              replace_lits s c (Array.of_list (List.rev !kept))
            end
            else attach_watches s c;
            if s.qhead < s.trail_len then saturate s
          end
        in
        for i = 0 to s.n_probs - 1 do
          vivify s.probs.(i)
        done;
        (* 3. bounded variable elimination.  Frozen and assigned
           variables are skipped; the gate is the classic one — the
           non-tautological resolvent count must not exceed the number
           of deleted clauses.  Learnt clauses on the variable are
           deleted without resolution (they are consequences). *)
        let live_side lst l =
          List.filter (fun c -> (not c.deleted) && mem_lit c.lits l) lst
        in
        let resolve c d v =
          let buf = ref [] in
          Array.iter (fun l -> if l lsr 1 <> v then buf := l :: !buf) c.lits;
          Array.iter (fun l -> if l lsr 1 <> v then buf := l :: !buf) d.lits;
          let lits = List.sort_uniq Int.compare !buf in
          let rec taut = function
            | a :: (b :: _ as rest) -> b = a lxor 1 || taut rest
            | _ -> false
          in
          if taut lits then None else Some (Array.of_list lits)
        in
        let try_eliminate v =
          if
            !work <= budget
            && (not s.unsat_at_root)
            && (not s.frozen.(v))
            && (not s.elimed.(v))
            && (not s.revived.(v))
            && s.assign.(v) < 0
          then begin
            let p = 2 * v and np = (2 * v) + 1 in
            let pos_all = live_side occ.(p) p
            and neg_all = live_side occ.(np) np in
            let pos = List.filter (fun c -> not c.learnt) pos_all
            and neg = List.filter (fun c -> not c.learnt) neg_all in
            let cp = List.length pos and cn = List.length neg in
            if (cp > 0 || cn > 0) && cp + cn <= 16 then begin
              work := !work + (cp * cn) + 1;
              let limit = cp + cn in
              let resolvents = ref [] and cnt = ref 0 and ok = ref true in
              List.iter
                (fun c ->
                  List.iter
                    (fun d ->
                      if !ok then
                        match resolve c d v with
                        | None -> ()
                        | Some r ->
                            incr cnt;
                            if !cnt > limit then ok := false
                            else resolvents := r :: !resolvents)
                    neg)
                pos;
              if !ok then begin
                (* Derive every resolvent while both parents are live,
                   snapshot the witness and revival sets, then retract
                   all clauses on the variable. *)
                List.iter
                  (fun r ->
                    match add_derived s r with
                    | Some c -> register c
                    | None -> ())
                  (List.rev !resolvents);
                s.elim_stack <-
                  {
                    ev_var = v;
                    ev_lit = p;
                    ev_dead = false;
                    ev_side = List.map (fun c -> Array.copy c.lits) pos;
                    ev_all =
                      List.map (fun c -> dimacs_list c.lits) (pos @ neg);
                  }
                  :: s.elim_stack;
                s.elimed.(v) <- true;
                s.simp_eliminated <- s.simp_eliminated + 1;
                List.iter (fun c -> delete_clause s c) pos_all;
                List.iter (fun c -> delete_clause s c) neg_all;
                if s.qhead < s.trail_len then saturate s
              end
            end
          end
        in
        for v = 0 to s.nvars - 1 do
          try_eliminate v
        done;
        compact_probs s;
        compact_learnts s
      end
    end
  end

(* ---- public clause entry points ---- *)

let add_clause s dimacs_lits =
  cancel_until s 0;
  s.have_model <- false;
  revive_mentioned s dimacs_lits;
  let lits = List.map (lit_of_dimacs s) dimacs_lits in
  log_proof s (P_input dimacs_lits);
  ignore (add_clause_internal s lits)

(* ---- search ---- *)

type result = Sat | Unsat

(* luby i (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

(* Unconstrained vars (no live clause mentions them) are never decided:
   any phase satisfies the live clause set, so the model just reports
   their saved polarity.  [attach] re-inserts a var into the heap when a
   new clause constrains it again. *)
let pick_branch s =
  let rec go () =
    if s.heap_len = 0 then -1
    else begin
      let v = heap_pop s in
      if s.assign.(v) < 0 && s.occurs.(v) > 0 then v else go ()
    end
  in
  go ()

let record_learnt s lits btlevel =
  (* LBD is counted over the pre-backjump levels. *)
  let lbd = clause_lbd s lits in
  cancel_until s btlevel;
  match Array.length lits with
  | 1 -> enqueue s lits.(0) dummy_clause
  | _ ->
      (* Watch the asserting literal and a literal of the backjump level. *)
      let best = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if s.level.(lit_var lits.(i)) > s.level.(lit_var lits.(!best)) then
          best := i
      done;
      let t = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- t;
      log_proof s (P_add (Array.to_list (Array.map dimacs_of_lit lits)));
      let c =
        { lits; learnt = true; act = 0.0; lbd; deleted = false;
          csig = clause_sig lits }
      in
      cla_bump s c;
      push_learnt s c;
      s.n_learnt <- s.n_learnt + 1;
      attach s c;
      enqueue s lits.(0) c

let solve ?(assumptions = []) s =
  s.have_model <- false;
  s.failed <- [];
  cancel_until s 0;
  (* Assumption variables are frozen permanently — the caller may assume
     them again, and an eliminated variable has no clauses left for an
     assumption to constrain — and revived first if a previous pass
     eliminated them. *)
  let assumption_lits = List.map (lit_of_dimacs s) assumptions in
  List.iter
    (fun l ->
      let u = lit_var l in
      if s.elimed.(u) then revive_var s u;
      s.frozen.(u) <- true)
    assumption_lits;
  if s.unsat_at_root then Unsat
  else begin
    (* Duplicate assumptions would each open a level; keep the first
       occurrence of each literal (order preserved, failed-assumption
       semantics unchanged — the failed set is duplicate-free anyway). *)
    let assumps =
      let seen = Hashtbl.create 16 in
      Array.of_list
        (List.filter
           (fun l ->
             if Hashtbl.mem seen l then false
             else begin
               Hashtbl.add seen l ();
               true
             end)
           assumption_lits)
    in
    let n_assumed = Array.length assumps in
    cancel_until s 0;
    let restart = ref 1 in
    let answer = ref None in
    (* [= None] would be a polymorphic-equality C call in the innermost
       search loop; a tag match compiles to a branch. *)
    let undecided () = match !answer with None -> true | Some _ -> false in
    while undecided () do
      let budget = 100 * luby !restart in
      incr restart;
      let conflicts_here = ref 0 in
      cancel_until s 0;
      let running = ref true in
      while !running && undecided () do
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            incr conflicts_here;
            if decision_level s = 0 then begin
              set_root_unsat s;
              answer := Some Unsat
            end
            else begin
              let lits, bt = analyze s confl in
              record_learnt s lits bt;
              var_decay s;
              cla_decay s
            end
        | None ->
            if !conflicts_here >= budget then begin
              s.restarts <- s.restarts + 1;
              running := false
            end
            else begin
              let dl = decision_level s in
              if dl = 0 && s.n_learnt > learnt_limit s then reduce_db s;
              if dl < n_assumed then begin
                let l = assumps.(dl) in
                match lit_val s l with
                | 1 ->
                    (* Already implied: open an empty level to keep the
                       level <-> assumption alignment. *)
                    push_level s
                | 0 ->
                    s.failed <- analyze_final s l;
                    answer := Some Unsat
                | _ ->
                    push_level s;
                    enqueue s l dummy_clause
              end
              else begin
                let v = pick_branch s in
                if v < 0 then begin
                  (* Replay the elimination witnesses before anything can
                     read the model. *)
                  reconstruct s;
                  s.have_model <- true;
                  answer := Some Sat
                end
                else begin
                  s.decisions <- s.decisions + 1;
                  push_level s;
                  enqueue s
                    ((2 * v)
                    + if s.cfg_phase_saving && s.polarity.(v) then 0 else 1)
                    dummy_clause
                end
              end
            end
      done
    done;
    cancel_until s 0;
    match !answer with Some r -> r | None -> assert false
  end

let value s v =
  if not s.have_model then invalid_arg "Sat.Solver.value: no model";
  if v <= 0 || v > s.nvars then invalid_arg "Sat.Solver.value: bad variable";
  if s.assign.(v - 1) >= 0 then s.assign.(v - 1) = 1 else s.polarity.(v - 1)

let failed_assumptions s = s.failed

(* ---- activation literals (incremental sessions) ---- *)

let new_activation s =
  let a = new_var s in
  (* An activation variable is assumed by later queries; it must never be
     eliminated. *)
  s.frozen.(a - 1) <- true;
  a

let add_clause_under s act lits =
  if act <= 0 || act > s.nvars then
    invalid_arg "Sat.Solver.add_clause_under: bad activation literal";
  cancel_until s 0;
  s.have_model <- false;
  let dimacs_lits = -act :: lits in
  revive_mentioned s dimacs_lits;
  let lits = List.map (lit_of_dimacs s) dimacs_lits in
  log_proof s (P_input dimacs_lits);
  match add_clause_internal s lits with
  | None -> ()
  | Some c -> (
      match Hashtbl.find_opt s.groups act with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add s.groups act (ref [ c ]))

(* Drop clauses satisfied at level 0 from the watcher vectors, so retired
   activation groups stop costing propagation time.  Safe: conflict
   analysis never dereferences reasons of level-0 assignments, and a
   satisfied clause constrains nothing. *)
let simplify s =
  cancel_until s 0;
  if not s.unsat_at_root then begin
    (match propagate s with
    | Some _ -> set_root_unsat s
    | None -> ());
    if not s.unsat_at_root then begin
      let satisfied c =
        Array.exists
          (fun l -> lit_val s l = 1 && s.level.(lit_var l) = 0)
          c.lits
      in
      let sweep wl =
        let j = ref 0 in
        for i = 0 to wl.wlen - 1 do
          let c = wl.wc.(i) in
          if c.deleted then ()
          else if satisfied c then delete_clause s c
          else begin
            wl.wc.(!j) <- c;
            wl.wb.(!j) <- wl.wb.(i);
            incr j
          end
        done;
        for t = !j to wl.wlen - 1 do
          wl.wc.(t) <- dummy_clause
        done;
        wl.wlen <- !j
      in
      for l = 0 to (2 * s.nvars) - 1 do
        sweep s.watches.(l);
        sweep s.bin_watches.(l)
      done;
      compact_learnts s
    end
  end

(* Permanently deactivate a group: assert the negated activator (making
   every gated clause satisfied at level 0) and delete the group's clauses
   in O(group size) — no global sweep.  Propagation evicts them from the
   watcher vectors as it encounters them.  Learnt clauses satisfied at
   level 0 (they typically contain the negated activator) are swept too,
   so they stop pinning the group's dead variables as constrained. *)
let retire_activation s act =
  if act <= 0 || act > s.nvars then
    invalid_arg "Sat.Solver.retire_activation: bad activation literal";
  add_clause s [ -act ];
  match Hashtbl.find_opt s.groups act with
  | Some l ->
      List.iter (delete_clause s) !l;
      Hashtbl.remove s.groups act;
      if s.n_learnt > 0 && not s.unsat_at_root then begin
        let sat0 c =
          Array.exists
            (fun q -> lit_val s q = 1 && s.level.(lit_var q) = 0)
            c.lits
        in
        for i = 0 to s.n_learnts - 1 do
          let c = s.learnts.(i) in
          if (not c.deleted) && sat0 c then delete_clause s c
        done;
        compact_learnts s
      end
  | None -> ()
