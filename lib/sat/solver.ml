(* Minisat-2.2/Glucose-style CDCL.  Internals use 0-based variables and
   literals packed as [2*var + sign] (sign 1 = negated); the external API
   speaks DIMACS.
   Invariants:
   - clauses of length >= 3 watch exactly their first two literals:
     watches.(l) is a flat vector of (clause, blocker) entries for the
     clauses with watched literal [lit_neg l], where the blocker is some
     other literal of the clause — if the blocker is true the clause is
     satisfied and the entry is skipped without touching the clause;
   - binary clauses live in bin_watches.(l) as (clause, other) entries and
     never migrate: when l becomes true, [other] is either satisfied,
     propagated, or the conflict — no watch search, no literal-array scan;
   - the trail is a stack of assigned literals; qhead marks the propagation
     frontier;
   - level.(v) / reason.(v) are meaningful only while v is assigned;
   - whenever a clause is some variable's reason, its implied literal is at
     position 0 (propagation only swaps lits 0/1 while lits.(0) is false);
   - deleted clauses are dropped lazily from the watcher vectors during
     propagation. *)

type clause = {
  mutable lits : int array;
  learnt : bool;
  mutable act : float;
  mutable lbd : int;       (* literal block distance at learn time, refreshed
                              downward whenever the clause resolves a
                              conflict; 0 for problem clauses *)
  mutable deleted : bool;
}

let dummy_clause =
  { lits = [||]; learnt = false; act = 0.0; lbd = 0; deleted = true }

(* Flat resizable watcher vector: parallel clause / literal payload arrays.
   For long-clause watchers the payload is the blocker literal; for binary
   watchers it is the other (implied) literal of the pair. *)
type watchlist = {
  mutable wc : clause array;
  mutable wb : int array;
  mutable wlen : int;
}

let new_watchlist () = { wc = [||]; wb = [||]; wlen = 0 }

let wpush wl c b =
  let n = Array.length wl.wc in
  if wl.wlen = n then begin
    let ncap = max 4 (2 * n) in
    let nc = Array.make ncap dummy_clause and nb = Array.make ncap 0 in
    Array.blit wl.wc 0 nc 0 n;
    Array.blit wl.wb 0 nb 0 n;
    wl.wc <- nc;
    wl.wb <- nb
  end;
  wl.wc.(wl.wlen) <- c;
  wl.wb.(wl.wlen) <- b;
  wl.wlen <- wl.wlen + 1

(* DRUP-style proof events, in DIMACS literals.  [P_input] is a problem
   clause exactly as the caller supplied it (before deduplication and
   level-0 strengthening) so an external checker sees a formula that is a
   superset of the attached clause database; [P_add] is a clause derivable
   from the events so far by reverse unit propagation (learnt clauses —
   already minimized, which self-subsuming resolution keeps RUP —
   root-level implied units, and the empty clause when the instance
   becomes unsatisfiable); [P_delete] retracts an attached clause. *)
type proof_event =
  | P_input of int list
  | P_add of int list
  | P_delete of int list

type t = {
  mutable nvars : int;
  mutable assign : int array;        (* -1 undef / 0 false / 1 true, per var *)
  mutable level : int array;         (* decision level, per var *)
  mutable reason : clause array;
      (* [dummy_clause] = no reason (decision / assumption / level 0);
         avoids a [Some] allocation per propagated literal *)
  mutable watches : watchlist array;     (* per literal, length >= 3 clauses *)
  mutable bin_watches : watchlist array; (* per literal, binary clauses *)
  mutable activity : float array;    (* per var *)
  mutable polarity : bool array;     (* saved phase, per var *)
  mutable heap : int array;          (* binary max-heap of vars *)
  mutable heap_pos : int array;      (* position in heap, -1 if absent *)
  mutable heap_len : int;
  mutable trail : int array;         (* literals *)
  mutable trail_len : int;
  mutable qhead : int;
  mutable trail_lim : int array;     (* trail length at each decision *)
  mutable n_levels : int;
  mutable learnts : clause array;    (* growable; may hold deleted slots *)
  mutable n_learnts : int;           (* used slots of [learnts] *)
  mutable n_problem : int;
  mutable n_learnt : int;            (* live learnt clauses *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable unsat_at_root : bool;
  mutable have_model : bool;
      (* A [Sat] answer needs no model snapshot: [solve] backtracks to the
         root before returning, which saves every popped assignment in
         [polarity], and nothing moves [assign]/[polarity] again until the
         next mutation — which clears this flag.  [value] reads the root
         assignment if any, the saved phase otherwise. *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnt_lits : int;         (* learnt literals before minimization *)
  mutable minimized_lits : int;      (* literals removed by minimization *)
  mutable db_reductions : int;
  mutable seen : bool array;         (* scratch for conflict analysis *)
  mutable lbd_mark : int array;      (* per level: stamp for LBD counting *)
  mutable lbd_tick : int;
  mutable failed : int list;         (* failed assumptions of the last Unsat *)
  groups : (int, clause list ref) Hashtbl.t;
      (* activation var -> clauses gated by it, for O(group) retirement *)
  mutable occurs : int array;
      (* per var: number of live attached clauses containing it.  A var
         with no occurrences is unconstrained: the search never decides
         it and the model reports its saved phase.  This is what makes
         retiring a clause group actually cheap — the group's private
         variables stop costing decision and propagation time. *)
  mutable proof_sink : (proof_event -> unit) option;
  (* feature switches (bench ablation / test hooks) *)
  mutable cfg_minimize : bool;
  mutable cfg_lbd_tiers : bool;
  mutable cfg_learnt_limit : int option;
  mutable cfg_phase_saving : bool;
      (* When off, decisions ignore [polarity] and always pick the
         default (false) phase.  [cancel_until] keeps writing [polarity]
         regardless: the model contract of [value] depends on it. *)
}

let create () =
  {
    nvars = 0;
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 dummy_clause;
    watches = Array.init 32 (fun _ -> new_watchlist ());
    bin_watches = Array.init 32 (fun _ -> new_watchlist ());
    activity = Array.make 16 0.0;
    polarity = Array.make 16 false;
    heap = Array.make 16 0;
    heap_pos = Array.make 16 (-1);
    heap_len = 0;
    trail = Array.make 16 0;
    trail_len = 0;
    qhead = 0;
    trail_lim = Array.make 16 0;
    n_levels = 0;
    learnts = [||];
    n_learnts = 0;
    n_problem = 0;
    n_learnt = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    unsat_at_root = false;
    have_model = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnt_lits = 0;
    minimized_lits = 0;
    db_reductions = 0;
    seen = Array.make 16 false;
    lbd_mark = Array.make 16 0;
    lbd_tick = 0;
    failed = [];
    groups = Hashtbl.create 16;
    occurs = Array.make 16 0;
    proof_sink = None;
    cfg_minimize = true;
    cfg_lbd_tiers = true;
    cfg_learnt_limit = None;
    cfg_phase_saving = true;
  }

let num_vars s = s.nvars
let num_clauses s = s.n_problem
let stats s = (s.conflicts, s.decisions, s.propagations)

type search_stats = {
  st_conflicts : int;
  st_decisions : int;
  st_propagations : int;
  st_restarts : int;
  st_learnt_lits : int;
  st_minimized_lits : int;
  st_reductions : int;
  st_learnt_db : int;
}

let search_stats s =
  {
    st_conflicts = s.conflicts;
    st_decisions = s.decisions;
    st_propagations = s.propagations;
    st_restarts = s.restarts;
    st_learnt_lits = s.learnt_lits;
    st_minimized_lits = s.minimized_lits;
    st_reductions = s.db_reductions;
    st_learnt_db = s.n_learnt;
  }

let set_minimize s b = s.cfg_minimize <- b
let set_lbd_tiers s b = s.cfg_lbd_tiers <- b
let set_learnt_limit s n = s.cfg_learnt_limit <- n
let set_phase_saving s b = s.cfg_phase_saving <- b
let set_proof_sink s sink = s.proof_sink <- sink

let log_proof s ev =
  match s.proof_sink with None -> () | Some f -> f ev

(* Root unsatisfiability is the proof's terminal fact: the first time it
   is established, the empty clause is RUP and gets logged once. *)
let set_root_unsat s =
  if not s.unsat_at_root then begin
    s.unsat_at_root <- true;
    log_proof s (P_add [])
  end

(* ---- variable order heap (max-heap on activity) ---- *)

(* Sift the var at slot [i] up/down to restore the max-heap-on-activity
   order.  Hot (every decision pops, every backtracked assignment may
   reinsert), so both walks are iterative, hold the moving var in a
   register and write each vacated slot once; the unsafe accesses are
   bounded by heap_len <= length heap and vars < length activity. *)
let heap_up s i =
  let act = s.activity and heap = s.heap and pos = s.heap_pos in
  let v = Array.unsafe_get heap i in
  let av = Array.unsafe_get act v in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let w = Array.unsafe_get heap p in
    if av > Array.unsafe_get act w then begin
      Array.unsafe_set heap !i w;
      Array.unsafe_set pos w !i;
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set heap !i v;
  Array.unsafe_set pos v !i

let heap_down s i =
  let act = s.activity and heap = s.heap and pos = s.heap_pos in
  let n = s.heap_len in
  let v = Array.unsafe_get heap i in
  let av = Array.unsafe_get act v in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let r = l + 1 in
      let c =
        if
          r < n
          && Array.unsafe_get act (Array.unsafe_get heap r)
             > Array.unsafe_get act (Array.unsafe_get heap l)
        then r
        else l
      in
      let w = Array.unsafe_get heap c in
      if Array.unsafe_get act w > av then begin
        Array.unsafe_set heap !i w;
        Array.unsafe_set pos w !i;
        i := c
      end
      else continue := false
    end
  done;
  Array.unsafe_set heap !i v;
  Array.unsafe_set pos v !i

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_len = Array.length s.heap then
      s.heap <- Array.append s.heap (Array.make (max 16 s.heap_len) 0);
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    let w = s.heap.(s.heap_len) in
    s.heap.(0) <- w;
    s.heap_pos.(w) <- 0;
    heap_down s 0
  end;
  v

let heap_update s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* ---- variable allocation ---- *)

let grow_to s n =
  let old = Array.length s.assign in
  if n > old then begin
    let cap = max n (2 * old) in
    let extend a fill = Array.append a (Array.make (cap - old) fill) in
    s.assign <- extend s.assign (-1);
    s.level <- extend s.level 0;
    s.reason <- extend s.reason dummy_clause;
    s.activity <- extend s.activity 0.0;
    s.polarity <- extend s.polarity false;
    s.seen <- extend s.seen false;
    s.occurs <- extend s.occurs 0;
    s.heap_pos <- extend s.heap_pos (-1);
    s.trail <- extend s.trail 0;
    s.trail_lim <- extend s.trail_lim 0;
    let oldw = Array.length s.watches in
    let extra = (2 * cap) - oldw in
    s.watches <-
      Array.append s.watches (Array.init extra (fun _ -> new_watchlist ()));
    s.bin_watches <-
      Array.append s.bin_watches (Array.init extra (fun _ -> new_watchlist ()))
  end

let new_var s =
  grow_to s (s.nvars + 1);
  let v = s.nvars in
  s.nvars <- s.nvars + 1;
  heap_insert s v;
  v + 1

let ensure_vars s n =
  while s.nvars < n do
    ignore (new_var s)
  done

(* ---- literal helpers ---- *)

let lit_of_dimacs s d =
  if d = 0 then invalid_arg "Sat.Solver: zero literal";
  let v = abs d in
  ensure_vars s v;
  if d > 0 then 2 * (v - 1) else (2 * (v - 1)) + 1

let lit_var l = l lsr 1
let lit_neg l = l lxor 1
let dimacs_of_lit l = if l land 1 = 0 then (l lsr 1) + 1 else -((l lsr 1) + 1)

(* value of a literal: -1 undef, 0 false, 1 true *)
let lit_val s l =
  let a = s.assign.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = s.n_levels

(* ---- assignment ---- *)

let enqueue s l reason =
  (* Every level-0 assignment is a fact implied by unit propagation over
     the clauses logged so far, so it is RUP; emitting it as a unit lemma
     keeps the proof sound across level-0 clause strengthening and the
     later deletion of its reason clause. *)
  if s.n_levels = 0 then log_proof s (P_add [ dimacs_of_lit l ]);
  let v = l lsr 1 in
  Array.unsafe_set s.assign v (1 lxor (l land 1));
  Array.unsafe_set s.level v s.n_levels;
  Array.unsafe_set s.reason v reason;
  Array.unsafe_set s.trail s.trail_len l;
  s.trail_len <- s.trail_len + 1

(* One level per assumption plus one per decision can exceed the
   variable-count sizing of [trail_lim] (assumptions already implied open
   an empty level), so the level stack grows on demand. *)
let push_level s =
  let n = Array.length s.trail_lim in
  if s.n_levels >= n then
    s.trail_lim <- Array.append s.trail_lim (Array.make (max 16 n) 0);
  s.trail_lim.(s.n_levels) <- s.trail_len;
  s.n_levels <- s.n_levels + 1

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let target = s.trail_lim.(lvl) in
    let trail = s.trail
    and assign = s.assign
    and polarity = s.polarity
    and reason = s.reason
    and heap_pos = s.heap_pos in
    for i = s.trail_len - 1 downto target do
      let v = Array.unsafe_get trail i lsr 1 in
      Array.unsafe_set polarity v (Array.unsafe_get assign v = 1);
      Array.unsafe_set assign v (-1);
      Array.unsafe_set reason v dummy_clause;
      (* Most backtracked vars were assigned by propagation and are still
         heap members; test that inline and only call out for the popped
         (decision) vars that really need reinsertion. *)
      if Array.unsafe_get heap_pos v < 0 then heap_insert s v
    done;
    s.trail_len <- target;
    s.qhead <- target;
    s.n_levels <- lvl
  end

(* ---- activity ---- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_update s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to s.n_learnts - 1 do
      let c = s.learnts.(i) in
      c.act <- c.act *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* ---- LBD (literal block distance) ---- *)

(* Number of distinct non-root decision levels among the clause's
   literals, counted with a stamped per-level scratch array.  Only
   meaningful while the literals are assigned (call before backjumping). *)
let clause_lbd s lits =
  if Array.length s.lbd_mark <= s.n_levels then
    s.lbd_mark <-
      Array.append s.lbd_mark
        (Array.make (s.n_levels + 16 - Array.length s.lbd_mark) 0);
  s.lbd_tick <- s.lbd_tick + 1;
  let tick = s.lbd_tick in
  let d = ref 0 in
  Array.iter
    (fun q ->
      let lv = s.level.(lit_var q) in
      if lv > 0 && s.lbd_mark.(lv) <> tick then begin
        s.lbd_mark.(lv) <- tick;
        incr d
      end)
    lits;
  !d

(* ---- clause attachment ---- *)

let attach s c =
  if Array.length c.lits = 2 then begin
    wpush s.bin_watches.(lit_neg c.lits.(0)) c c.lits.(1);
    wpush s.bin_watches.(lit_neg c.lits.(1)) c c.lits.(0)
  end
  else begin
    wpush s.watches.(lit_neg c.lits.(0)) c c.lits.(1);
    wpush s.watches.(lit_neg c.lits.(1)) c c.lits.(0)
  end;
  Array.iter
    (fun l ->
      let v = lit_var l in
      s.occurs.(v) <- s.occurs.(v) + 1;
      (* A var regaining occurrences must become decidable again: it may
         have been popped from the order heap while unconstrained. *)
      if s.occurs.(v) = 1 && s.assign.(v) < 0 then heap_insert s v)
    c.lits

(* Delete a clause in place: propagation drops deleted clauses from the
   watcher vectors lazily the next time it scans them.  A deleted clause
   may still be the reason of a level-0 assignment; that is safe because
   conflict analysis never resolves on level-0 literals. *)
let delete_clause s c =
  if not c.deleted then begin
    log_proof s (P_delete (Array.to_list (Array.map dimacs_of_lit c.lits)));
    c.deleted <- true;
    if c.learnt then s.n_learnt <- s.n_learnt - 1
    else s.n_problem <- s.n_problem - 1;
    Array.iter
      (fun l ->
        let v = lit_var l in
        s.occurs.(v) <- s.occurs.(v) - 1)
      c.lits
  end

let push_learnt s c =
  let n = Array.length s.learnts in
  if s.n_learnts = n then begin
    let nl = Array.make (max 16 (2 * n)) dummy_clause in
    Array.blit s.learnts 0 nl 0 n;
    s.learnts <- nl
  end;
  s.learnts.(s.n_learnts) <- c;
  s.n_learnts <- s.n_learnts + 1

(* Drop deleted slots from the learnt array (the live clauses keep their
   relative order). *)
let compact_learnts s =
  let j = ref 0 in
  for i = 0 to s.n_learnts - 1 do
    let c = s.learnts.(i) in
    if not c.deleted then begin
      s.learnts.(!j) <- c;
      incr j
    end
  done;
  for i = !j to s.n_learnts - 1 do
    s.learnts.(i) <- dummy_clause
  done;
  s.n_learnts <- !j

(* ---- propagation ---- *)

exception Conflict of clause

(* The propagation inner loop visits every watcher entry of every
   assigned literal — the hottest code in the solver by far.  It uses
   unsafe array accesses, each safe by construction: watcher indices are
   < wlen <= capacity, literals are < 2*nvars <= length assign, and
   clause literal indices are < Array.length lits.  Assignment tests are
   inlined against [assign]: literal [x] is true iff
   [assign.(x/2) = (x land 1) lxor 1] and false iff
   [assign.(x/2) = x land 1] (unassigned is -1, matching neither). *)
let propagate s =
  let assign = s.assign in
  try
    while s.qhead < s.trail_len do
      let l = Array.unsafe_get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      (* Binary clauses first: (c, other) with c = {~l, other}.  No watch
         search and no migration — the pair either satisfies, propagates,
         or conflicts.  Deleted pairs are purged by swap-with-last. *)
      let bw = Array.unsafe_get s.bin_watches l in
      let i = ref 0 in
      while !i < bw.wlen do
        let c = Array.unsafe_get bw.wc !i in
        if c.deleted then begin
          bw.wlen <- bw.wlen - 1;
          Array.unsafe_set bw.wc !i (Array.unsafe_get bw.wc bw.wlen);
          Array.unsafe_set bw.wb !i (Array.unsafe_get bw.wb bw.wlen);
          Array.unsafe_set bw.wc bw.wlen dummy_clause
        end
        else begin
          let other = Array.unsafe_get bw.wb !i in
          let a = Array.unsafe_get assign (other lsr 1) in
          let sgn = other land 1 in
          if a <> sgn lxor 1 then
            if a = sgn then raise (Conflict c)
            else enqueue s other c;
          incr i
        end
      done;
      (* Long clauses watching ~l: skip on a true blocker, otherwise find
         a new watch or propagate/conflict. *)
      let wl = Array.unsafe_get s.watches l in
      let i = ref 0 and j = ref 0 in
      while !i < wl.wlen do
        let blocker = Array.unsafe_get wl.wb !i in
        let c = Array.unsafe_get wl.wc !i in
        incr i;
        if Array.unsafe_get assign (blocker lsr 1) = (blocker land 1) lxor 1
        then begin
          (* Satisfied without dereferencing the clause. *)
          Array.unsafe_set wl.wc !j c;
          Array.unsafe_set wl.wb !j blocker;
          incr j
        end
        else if not c.deleted then begin
          let lits = c.lits in
          (* Ensure the false literal is at position 1. *)
          let fl = l lxor 1 in
          if Array.unsafe_get lits 0 = fl then begin
            Array.unsafe_set lits 0 (Array.unsafe_get lits 1);
            Array.unsafe_set lits 1 fl
          end;
          let first = Array.unsafe_get lits 0 in
          if
            first <> blocker
            && Array.unsafe_get assign (first lsr 1) = (first land 1) lxor 1
          then begin
            Array.unsafe_set wl.wc !j c;
            Array.unsafe_set wl.wb !j first;
            incr j
          end
          else begin
            (* Look for a new watch among lits.(2..). *)
            let n = Array.length lits in
            let k = ref 2 in
            while
              !k < n
              &&
              let x = Array.unsafe_get lits !k in
              Array.unsafe_get assign (x lsr 1) = x land 1
            do
              incr k
            done;
            if !k < n then begin
              let w = Array.unsafe_get lits !k in
              Array.unsafe_set lits !k (Array.unsafe_get lits 1);
              Array.unsafe_set lits 1 w;
              wpush (Array.unsafe_get s.watches (w lxor 1)) c first
            end
            else begin
              (* Unit or conflicting: keep watching l. *)
              Array.unsafe_set wl.wc !j c;
              Array.unsafe_set wl.wb !j first;
              incr j;
              if Array.unsafe_get assign (first lsr 1) = first land 1
              then begin
                (* Conflict: keep the unscanned watcher tail before
                   raising. *)
                while !i < wl.wlen do
                  Array.unsafe_set wl.wc !j (Array.unsafe_get wl.wc !i);
                  Array.unsafe_set wl.wb !j (Array.unsafe_get wl.wb !i);
                  incr i;
                  incr j
                done;
                for t = !j to wl.wlen - 1 do
                  Array.unsafe_set wl.wc t dummy_clause
                done;
                wl.wlen <- !j;
                raise (Conflict c)
              end
              else enqueue s first c
            end
          end
        end
      done;
      for t = !j to wl.wlen - 1 do
        Array.unsafe_set wl.wc t dummy_clause
      done;
      wl.wlen <- !j
    done;
    None
  with Conflict c -> Some c

(* ---- conflict analysis (first UIP + recursive minimization) ---- *)

let abstract_level s v = 1 lsl (s.level.(v) land 31)

(* Self-subsuming resolution, deep (recursive) check: a learnt literal is
   redundant when every path through its reason antecedents bottoms out in
   other learnt literals or level-0 facts, never leaving the decision
   levels of the learnt clause ([abstract_levels] mask).  Vars shown
   redundant keep their seen mark (memoized for later queries within this
   conflict); marks added by a failed walk are undone. *)
let lit_redundant s abstract_levels p to_clear =
  let stack = ref [ p ] in
  let newly = ref [] in
  let ok = ref true in
  while !ok && !stack <> [] do
    let q = List.hd !stack in
    stack := List.tl !stack;
    let r = s.reason.(lit_var q) in
    Array.iter
      (fun x ->
        let v = lit_var x in
        if !ok && v <> lit_var q && (not s.seen.(v)) && s.level.(v) > 0 then begin
          if
            s.reason.(v) != dummy_clause
            && abstract_level s v land abstract_levels <> 0
          then begin
            s.seen.(v) <- true;
            newly := v :: !newly;
            stack := x :: !stack
          end
          else ok := false
        end)
      r.lits
  done;
  if !ok then begin
    to_clear := List.rev_append !newly !to_clear;
    true
  end
  else begin
    List.iter (fun v -> s.seen.(v) <- false) !newly;
    false
  end

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_len - 1) in
  let c = ref confl in
  let to_clear = ref [] in
  let uip = ref 0 in
  let continue = ref true in
  while !continue do
    cla_bump s !c;
    (* Glucose-style LBD refresh: a learnt clause that keeps resolving
       conflicts gets its (only ever smaller) current LBD, promoting it
       toward the protected tier. *)
    if (!c).learnt then begin
      let d = clause_lbd s (!c).lits in
      if d < (!c).lbd then (!c).lbd <- d
    end;
    Array.iter
      (fun q ->
        let v = lit_var q in
        if (!p < 0 || q <> !p) && (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          to_clear := v :: !to_clear;
          var_bump s v;
          if s.level.(v) >= decision_level s then incr path
          else learnt := q :: !learnt
        end)
      (!c).lits;
    (* Next literal to resolve on: last assigned marked literal. *)
    while not s.seen.(lit_var s.trail.(!idx)) do
      decr idx
    done;
    let q = s.trail.(!idx) in
    decr idx;
    s.seen.(lit_var q) <- false;
    decr path;
    if !path = 0 then begin
      uip := lit_neg q;
      continue := false
    end
    else begin
      c := s.reason.(lit_var q);
      p := q
    end
  done;
  s.learnt_lits <- s.learnt_lits + List.length !learnt + 1;
  let kept =
    if not s.cfg_minimize then !learnt
    else begin
      let abstract_levels =
        List.fold_left
          (fun m q -> m lor abstract_level s (lit_var q))
          0 !learnt
      in
      List.filter
        (fun q ->
          s.reason.(lit_var q) == dummy_clause
          || not (lit_redundant s abstract_levels q to_clear))
        !learnt
    end
  in
  s.minimized_lits <-
    s.minimized_lits + (List.length !learnt - List.length kept);
  let btlevel =
    List.fold_left (fun m q -> max m s.level.(lit_var q)) 0 kept
  in
  let lits = Array.of_list (!uip :: kept) in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  (lits, btlevel)

(* Final conflict analysis: assumption literal [p] came up false during the
   assumption scan.  Walk the implication trail backwards from the top and
   collect the assumption decisions (reason = None above level 0) that the
   falsification of [p] depends on — the failed-assumption subset, in the
   DIMACS convention of the caller's assumption list. *)
let analyze_final s p =
  let out = ref [ dimacs_of_lit p ] in
  if decision_level s > 0 then begin
    s.seen.(lit_var p) <- true;
    let bottom = s.trail_lim.(0) in
    for i = s.trail_len - 1 downto bottom do
      let v = lit_var s.trail.(i) in
      if s.seen.(v) then begin
        (let c = s.reason.(v) in
         if c == dummy_clause then
           out := dimacs_of_lit s.trail.(i) :: !out
         else
           Array.iter
             (fun q ->
               let u = lit_var q in
               if u <> v && s.level.(u) > 0 then s.seen.(u) <- true)
             c.lits);
        s.seen.(v) <- false
      end
    done;
    s.seen.(lit_var p) <- false
  end;
  List.sort_uniq compare !out

(* ---- learnt clause database reduction ---- *)

let locked s c =
  s.reason.(lit_var c.lits.(0)) == c && lit_val s c.lits.(0) = 1

(* Glucose-style two-tier reduction: glue clauses (LBD <= 2), binaries and
   locked clauses are kept; the rest sort worst-first (highest LBD, then
   lowest activity) and the worse half is deleted.  With [cfg_lbd_tiers]
   off the candidate set and order degrade to the activity-only policy. *)
let reduce_db s =
  compact_learnts s;
  let cand = ref [] and ncand = ref 0 in
  for i = 0 to s.n_learnts - 1 do
    let c = s.learnts.(i) in
    if
      Array.length c.lits > 2
      && (not (locked s c))
      && ((not s.cfg_lbd_tiers) || c.lbd > 2)
    then begin
      cand := c :: !cand;
      incr ncand
    end
  done;
  let arr = Array.of_list !cand in
  Array.sort
    (fun a b ->
      if s.cfg_lbd_tiers && a.lbd <> b.lbd then Int.compare b.lbd a.lbd
      else Float.compare a.act b.act)
    arr;
  for i = 0 to (!ncand / 2) - 1 do
    delete_clause s arr.(i)
  done;
  compact_learnts s;
  s.db_reductions <- s.db_reductions + 1

let learnt_limit s =
  match s.cfg_learnt_limit with
  | Some n -> n
  | None -> (2 * s.n_problem) + 1000

(* ---- adding clauses ---- *)

(* Returns the clause when one was actually attached (length >= 2 after
   level-0 strengthening); None when the clause was dropped, became a unit
   fact, or made the instance unsat. *)
let add_clause_internal s lits =
  if s.unsat_at_root then None
  else begin
    let lits = List.sort_uniq Int.compare lits in
    (* Sorted and deduplicated, a tautology is an adjacent pair (2v, 2v+1)
       — one linear scan. *)
    let rec taut = function
      | a :: (b :: _ as rest) -> b = a lxor 1 || taut rest
      | _ -> false
    in
    let tautology = taut lits in
    let satisfied =
      List.exists (fun l -> lit_val s l = 1 && s.level.(lit_var l) = 0) lits
    in
    if tautology || satisfied then None
    else begin
      let lits =
        List.filter
          (fun l -> not (lit_val s l = 0 && s.level.(lit_var l) = 0))
          lits
      in
      match lits with
      | [] ->
          set_root_unsat s;
          None
      | [ l ] ->
          if lit_val s l = 0 then set_root_unsat s
          else if lit_val s l = -1 then begin
            enqueue s l dummy_clause;
            (match propagate s with
            | Some _ -> set_root_unsat s
            | None -> ())
          end;
          None
      | _ ->
          let c =
            { lits = Array.of_list lits; learnt = false; act = 0.0;
              lbd = 0; deleted = false }
          in
          s.n_problem <- s.n_problem + 1;
          attach s c;
          Some c
    end
  end

let add_clause s dimacs_lits =
  cancel_until s 0;
  s.have_model <- false;
  let lits = List.map (lit_of_dimacs s) dimacs_lits in
  log_proof s (P_input dimacs_lits);
  ignore (add_clause_internal s lits)

(* ---- search ---- *)

type result = Sat | Unsat

(* luby i (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

(* Unconstrained vars (no live clause mentions them) are never decided:
   any phase satisfies the live clause set, so the model just reports
   their saved polarity.  [attach] re-inserts a var into the heap when a
   new clause constrains it again. *)
let pick_branch s =
  let rec go () =
    if s.heap_len = 0 then -1
    else begin
      let v = heap_pop s in
      if s.assign.(v) < 0 && s.occurs.(v) > 0 then v else go ()
    end
  in
  go ()

let record_learnt s lits btlevel =
  (* LBD is counted over the pre-backjump levels. *)
  let lbd = clause_lbd s lits in
  cancel_until s btlevel;
  match Array.length lits with
  | 1 -> enqueue s lits.(0) dummy_clause
  | _ ->
      (* Watch the asserting literal and a literal of the backjump level. *)
      let best = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if s.level.(lit_var lits.(i)) > s.level.(lit_var lits.(!best)) then
          best := i
      done;
      let t = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- t;
      log_proof s (P_add (Array.to_list (Array.map dimacs_of_lit lits)));
      let c = { lits; learnt = true; act = 0.0; lbd; deleted = false } in
      cla_bump s c;
      push_learnt s c;
      s.n_learnt <- s.n_learnt + 1;
      attach s c;
      enqueue s lits.(0) c

let solve ?(assumptions = []) s =
  s.have_model <- false;
  s.failed <- [];
  if s.unsat_at_root then Unsat
  else begin
    (* Duplicate assumptions would each open a level; keep the first
       occurrence of each literal (order preserved, failed-assumption
       semantics unchanged — the failed set is duplicate-free anyway). *)
    let assumps =
      let seen = Hashtbl.create 16 in
      let lits = List.map (lit_of_dimacs s) assumptions in
      Array.of_list
        (List.filter
           (fun l ->
             if Hashtbl.mem seen l then false
             else begin
               Hashtbl.add seen l ();
               true
             end)
           lits)
    in
    let n_assumed = Array.length assumps in
    cancel_until s 0;
    let restart = ref 1 in
    let answer = ref None in
    (* [= None] would be a polymorphic-equality C call in the innermost
       search loop; a tag match compiles to a branch. *)
    let undecided () = match !answer with None -> true | Some _ -> false in
    while undecided () do
      let budget = 100 * luby !restart in
      incr restart;
      let conflicts_here = ref 0 in
      cancel_until s 0;
      let running = ref true in
      while !running && undecided () do
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            incr conflicts_here;
            if decision_level s = 0 then begin
              set_root_unsat s;
              answer := Some Unsat
            end
            else begin
              let lits, bt = analyze s confl in
              record_learnt s lits bt;
              var_decay s;
              cla_decay s
            end
        | None ->
            if !conflicts_here >= budget then begin
              s.restarts <- s.restarts + 1;
              running := false
            end
            else begin
              let dl = decision_level s in
              if dl = 0 && s.n_learnt > learnt_limit s then reduce_db s;
              if dl < n_assumed then begin
                let l = assumps.(dl) in
                match lit_val s l with
                | 1 ->
                    (* Already implied: open an empty level to keep the
                       level <-> assumption alignment. *)
                    push_level s
                | 0 ->
                    s.failed <- analyze_final s l;
                    answer := Some Unsat
                | _ ->
                    push_level s;
                    enqueue s l dummy_clause
              end
              else begin
                let v = pick_branch s in
                if v < 0 then begin
                  s.have_model <- true;
                  answer := Some Sat
                end
                else begin
                  s.decisions <- s.decisions + 1;
                  push_level s;
                  enqueue s
                    ((2 * v)
                    + if s.cfg_phase_saving && s.polarity.(v) then 0 else 1)
                    dummy_clause
                end
              end
            end
      done
    done;
    cancel_until s 0;
    match !answer with Some r -> r | None -> assert false
  end

let value s v =
  if not s.have_model then invalid_arg "Sat.Solver.value: no model";
  if v <= 0 || v > s.nvars then invalid_arg "Sat.Solver.value: bad variable";
  if s.assign.(v - 1) >= 0 then s.assign.(v - 1) = 1 else s.polarity.(v - 1)

let failed_assumptions s = s.failed

(* ---- activation literals (incremental sessions) ---- *)

let new_activation s = new_var s

let add_clause_under s act lits =
  if act <= 0 || act > s.nvars then
    invalid_arg "Sat.Solver.add_clause_under: bad activation literal";
  cancel_until s 0;
  s.have_model <- false;
  let dimacs_lits = -act :: lits in
  let lits = List.map (lit_of_dimacs s) dimacs_lits in
  log_proof s (P_input dimacs_lits);
  match add_clause_internal s lits with
  | None -> ()
  | Some c -> (
      match Hashtbl.find_opt s.groups act with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add s.groups act (ref [ c ]))

(* Drop clauses satisfied at level 0 from the watcher vectors, so retired
   activation groups stop costing propagation time.  Safe: conflict
   analysis never dereferences reasons of level-0 assignments, and a
   satisfied clause constrains nothing. *)
let simplify s =
  cancel_until s 0;
  if not s.unsat_at_root then begin
    (match propagate s with
    | Some _ -> set_root_unsat s
    | None -> ());
    if not s.unsat_at_root then begin
      let satisfied c =
        Array.exists
          (fun l -> lit_val s l = 1 && s.level.(lit_var l) = 0)
          c.lits
      in
      let sweep wl =
        let j = ref 0 in
        for i = 0 to wl.wlen - 1 do
          let c = wl.wc.(i) in
          if c.deleted then ()
          else if satisfied c then delete_clause s c
          else begin
            wl.wc.(!j) <- c;
            wl.wb.(!j) <- wl.wb.(i);
            incr j
          end
        done;
        for t = !j to wl.wlen - 1 do
          wl.wc.(t) <- dummy_clause
        done;
        wl.wlen <- !j
      in
      for l = 0 to (2 * s.nvars) - 1 do
        sweep s.watches.(l);
        sweep s.bin_watches.(l)
      done;
      compact_learnts s
    end
  end

(* Permanently deactivate a group: assert the negated activator (making
   every gated clause satisfied at level 0) and delete the group's clauses
   in O(group size) — no global sweep.  Propagation evicts them from the
   watcher vectors as it encounters them.  Learnt clauses satisfied at
   level 0 (they typically contain the negated activator) are swept too,
   so they stop pinning the group's dead variables as constrained. *)
let retire_activation s act =
  if act <= 0 || act > s.nvars then
    invalid_arg "Sat.Solver.retire_activation: bad activation literal";
  add_clause s [ -act ];
  match Hashtbl.find_opt s.groups act with
  | Some l ->
      List.iter (delete_clause s) !l;
      Hashtbl.remove s.groups act;
      if s.n_learnt > 0 && not s.unsat_at_root then begin
        let sat0 c =
          Array.exists
            (fun q -> lit_val s q = 1 && s.level.(lit_var q) = 0)
            c.lits
        in
        for i = 0 to s.n_learnts - 1 do
          let c = s.learnts.(i) in
          if (not c.deleted) && sat0 c then delete_clause s c
        done;
        compact_learnts s
      end
  | None -> ()
