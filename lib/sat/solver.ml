(* Minisat-style CDCL.  Internals use 0-based variables and literals packed
   as [2*var + sign] (sign 1 = negated); the external API speaks DIMACS.
   Invariants:
   - watches.(l) holds the clauses currently watching literal l, and every
     live clause of length >= 2 watches exactly its first two literals;
   - the trail is a stack of assigned literals; qhead marks the propagation
     frontier;
   - level.(v) / reason.(v) are meaningful only while v is assigned;
   - deleted clauses are dropped lazily from watch lists during
     propagation. *)

type clause = {
  mutable lits : int array;
  learnt : bool;
  mutable act : float;
  mutable deleted : bool;
}

(* DRUP-style proof events, in DIMACS literals.  [P_input] is a problem
   clause exactly as the caller supplied it (before deduplication and
   level-0 strengthening) so an external checker sees a formula that is a
   superset of the attached clause database; [P_add] is a clause derivable
   from the events so far by reverse unit propagation (learnt clauses,
   root-level implied units, and the empty clause when the instance
   becomes unsatisfiable); [P_delete] retracts an attached clause. *)
type proof_event =
  | P_input of int list
  | P_add of int list
  | P_delete of int list

type t = {
  mutable nvars : int;
  mutable assign : int array;        (* -1 undef / 0 false / 1 true, per var *)
  mutable level : int array;         (* decision level, per var *)
  mutable reason : clause option array;
  mutable watches : clause list array; (* per literal *)
  mutable activity : float array;    (* per var *)
  mutable polarity : bool array;     (* saved phase, per var *)
  mutable heap : int array;          (* binary max-heap of vars *)
  mutable heap_pos : int array;      (* position in heap, -1 if absent *)
  mutable heap_len : int;
  mutable trail : int array;         (* literals *)
  mutable trail_len : int;
  mutable qhead : int;
  mutable trail_lim : int array;     (* trail length at each decision *)
  mutable n_levels : int;
  mutable learnt_clauses : clause list;
  mutable n_problem : int;
  mutable n_learnt : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable unsat_at_root : bool;
  mutable model : bool array;        (* valid after a Sat answer *)
  mutable have_model : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable seen : bool array;         (* scratch for conflict analysis *)
  mutable failed : int list;         (* failed assumptions of the last Unsat *)
  groups : (int, clause list ref) Hashtbl.t;
      (* activation var -> clauses gated by it, for O(group) retirement *)
  mutable occurs : int array;
      (* per var: number of live attached clauses containing it.  A var
         with no occurrences is unconstrained: the search never decides
         it and the model reports its saved phase.  This is what makes
         retiring a clause group actually cheap — the group's private
         variables stop costing decision and propagation time. *)
  mutable proof_sink : (proof_event -> unit) option;
}

let create () =
  {
    nvars = 0;
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 None;
    watches = Array.make 32 [];
    activity = Array.make 16 0.0;
    polarity = Array.make 16 false;
    heap = Array.make 16 0;
    heap_pos = Array.make 16 (-1);
    heap_len = 0;
    trail = Array.make 16 0;
    trail_len = 0;
    qhead = 0;
    trail_lim = Array.make 16 0;
    n_levels = 0;
    learnt_clauses = [];
    n_problem = 0;
    n_learnt = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    unsat_at_root = false;
    model = Array.make 16 false;
    have_model = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    seen = Array.make 16 false;
    failed = [];
    groups = Hashtbl.create 16;
    occurs = Array.make 16 0;
    proof_sink = None;
  }

let num_vars s = s.nvars
let num_clauses s = s.n_problem
let stats s = (s.conflicts, s.decisions, s.propagations)
let set_proof_sink s sink = s.proof_sink <- sink

let log_proof s ev =
  match s.proof_sink with None -> () | Some f -> f ev

(* Root unsatisfiability is the proof's terminal fact: the first time it
   is established, the empty clause is RUP and gets logged once. *)
let set_root_unsat s =
  if not s.unsat_at_root then begin
    s.unsat_at_root <- true;
    log_proof s (P_add [])
  end

(* ---- variable order heap (max-heap on activity) ---- *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < s.heap_len && heap_less s s.heap.(l) s.heap.(!m) then m := l;
  if r < s.heap_len && heap_less s s.heap.(r) s.heap.(!m) then m := r;
  if !m <> i then begin
    heap_swap s i !m;
    heap_down s !m
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_len = Array.length s.heap then
      s.heap <- Array.append s.heap (Array.make (max 16 s.heap_len) 0);
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    let w = s.heap.(s.heap_len) in
    s.heap.(0) <- w;
    s.heap_pos.(w) <- 0;
    heap_down s 0
  end;
  v

let heap_update s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* ---- variable allocation ---- *)

let grow_to s n =
  let old = Array.length s.assign in
  if n > old then begin
    let cap = max n (2 * old) in
    let extend a fill = Array.append a (Array.make (cap - old) fill) in
    s.assign <- extend s.assign (-1);
    s.level <- extend s.level 0;
    s.reason <- extend s.reason None;
    s.activity <- extend s.activity 0.0;
    s.polarity <- extend s.polarity false;
    s.seen <- extend s.seen false;
    s.model <- extend s.model false;
    s.occurs <- extend s.occurs 0;
    s.heap_pos <- extend s.heap_pos (-1);
    s.trail <- extend s.trail 0;
    s.trail_lim <- extend s.trail_lim 0;
    let oldw = Array.length s.watches in
    s.watches <- Array.append s.watches (Array.make ((2 * cap) - oldw) [])
  end

let new_var s =
  grow_to s (s.nvars + 1);
  let v = s.nvars in
  s.nvars <- s.nvars + 1;
  heap_insert s v;
  v + 1

let ensure_vars s n =
  while s.nvars < n do
    ignore (new_var s)
  done

(* ---- literal helpers ---- *)

let lit_of_dimacs s d =
  if d = 0 then invalid_arg "Sat.Solver: zero literal";
  let v = abs d in
  ensure_vars s v;
  if d > 0 then 2 * (v - 1) else (2 * (v - 1)) + 1

let lit_var l = l lsr 1
let lit_neg l = l lxor 1
let dimacs_of_lit l = if l land 1 = 0 then (l lsr 1) + 1 else -((l lsr 1) + 1)

(* value of a literal: -1 undef, 0 false, 1 true *)
let lit_val s l =
  let a = s.assign.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = s.n_levels

(* ---- assignment ---- *)

let enqueue s l reason =
  (* Every level-0 assignment is a fact implied by unit propagation over
     the clauses logged so far, so it is RUP; emitting it as a unit lemma
     keeps the proof sound across level-0 clause strengthening and the
     later deletion of its reason clause. *)
  if s.n_levels = 0 then log_proof s (P_add [ dimacs_of_lit l ]);
  s.assign.(lit_var l) <- 1 lxor (l land 1);
  s.level.(lit_var l) <- s.n_levels;
  s.reason.(lit_var l) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let push_level s =
  s.trail_lim.(s.n_levels) <- s.trail_len;
  s.n_levels <- s.n_levels + 1

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let target = s.trail_lim.(lvl) in
    for i = s.trail_len - 1 downto target do
      let v = lit_var s.trail.(i) in
      s.polarity.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- -1;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_len <- target;
    s.qhead <- target;
    s.n_levels <- lvl
  end

(* ---- activity ---- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_update s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    List.iter (fun c -> c.act <- c.act *. 1e-20) s.learnt_clauses;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* ---- clause attachment ---- *)

let watch s l c = s.watches.(l) <- c :: s.watches.(l)

let attach s c =
  watch s (lit_neg c.lits.(0)) c;
  watch s (lit_neg c.lits.(1)) c;
  Array.iter
    (fun l ->
      let v = lit_var l in
      s.occurs.(v) <- s.occurs.(v) + 1;
      (* A var regaining occurrences must become decidable again: it may
         have been popped from the order heap while unconstrained. *)
      if s.occurs.(v) = 1 && s.assign.(v) < 0 then heap_insert s v)
    c.lits

(* Delete a clause in place: propagation drops deleted clauses from the
   watch lists lazily the next time it scans them.  A deleted clause may
   still be the reason of a level-0 assignment; that is safe because
   conflict analysis never resolves on level-0 literals. *)
let delete_clause s c =
  if not c.deleted then begin
    log_proof s (P_delete (Array.to_list (Array.map dimacs_of_lit c.lits)));
    c.deleted <- true;
    if c.learnt then s.n_learnt <- s.n_learnt - 1
    else s.n_problem <- s.n_problem - 1;
    Array.iter
      (fun l ->
        let v = lit_var l in
        s.occurs.(v) <- s.occurs.(v) - 1)
      c.lits
  end

(* ---- propagation ---- *)

exception Conflict of clause

let propagate s =
  try
    while s.qhead < s.trail_len do
      let l = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      (* Clauses watching ~l must find a new watch or propagate/conflict. *)
      let ws = s.watches.(l) in
      s.watches.(l) <- [];
      let rec go = function
        | [] -> ()
        | c :: rest when c.deleted -> go rest
        | c :: rest -> begin
            (* Ensure the false literal is at position 1. *)
            if c.lits.(0) = lit_neg l then begin
              c.lits.(0) <- c.lits.(1);
              c.lits.(1) <- lit_neg l
            end;
            if lit_val s c.lits.(0) = 1 then begin
              (* Clause already satisfied: keep watching l. *)
              s.watches.(l) <- c :: s.watches.(l);
              go rest
            end
            else begin
              (* Look for a new watch among lits.(2..). *)
              let n = Array.length c.lits in
              let rec find i =
                if i >= n then -1
                else if lit_val s c.lits.(i) <> 0 then i
                else find (i + 1)
              in
              let i = find 2 in
              if i >= 0 then begin
                let w = c.lits.(i) in
                c.lits.(i) <- c.lits.(1);
                c.lits.(1) <- w;
                watch s (lit_neg w) c;
                go rest
              end
              else begin
                (* Unit or conflicting. *)
                s.watches.(l) <- c :: s.watches.(l);
                if lit_val s c.lits.(0) = 0 then begin
                  (* Conflict: restore remaining watchers before raising. *)
                  s.watches.(l) <- List.rev_append rest s.watches.(l);
                  raise (Conflict c)
                end
                else begin
                  enqueue s c.lits.(0) (Some c);
                  go rest
                end
              end
            end
          end
      in
      go ws
    done;
    None
  with Conflict c -> Some c

(* ---- conflict analysis (first UIP) ---- *)

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_len - 1) in
  let btlevel = ref 0 in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    cla_bump s !c;
    Array.iter
      (fun q ->
        let v = lit_var q in
        if (!p < 0 || q <> !p) && (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          var_bump s v;
          if s.level.(v) >= decision_level s then incr path
          else begin
            learnt := q :: !learnt;
            if s.level.(v) > !btlevel then btlevel := s.level.(v)
          end
        end)
      (!c).lits;
    (* Next literal to resolve on: last assigned marked literal. *)
    while not s.seen.(lit_var s.trail.(!idx)) do
      decr idx
    done;
    let q = s.trail.(!idx) in
    decr idx;
    s.seen.(lit_var q) <- false;
    decr path;
    if !path = 0 then begin
      learnt := lit_neg q :: !learnt;
      continue := false
    end
    else begin
      (match s.reason.(lit_var q) with
      | Some r -> c := r
      | None -> assert false);
      p := q
    end
  done;
  let lits = Array.of_list !learnt in
  List.iter (fun q -> s.seen.(lit_var q) <- false) (List.tl !learnt);
  (lits, !btlevel)

(* Final conflict analysis: assumption literal [p] came up false during the
   assumption scan.  Walk the implication trail backwards from the top and
   collect the assumption decisions (reason = None above level 0) that the
   falsification of [p] depends on — the failed-assumption subset, in the
   DIMACS convention of the caller's assumption list. *)
let analyze_final s p =
  let out = ref [ dimacs_of_lit p ] in
  if decision_level s > 0 then begin
    s.seen.(lit_var p) <- true;
    let bottom = s.trail_lim.(0) in
    for i = s.trail_len - 1 downto bottom do
      let v = lit_var s.trail.(i) in
      if s.seen.(v) then begin
        (match s.reason.(v) with
        | None -> out := dimacs_of_lit s.trail.(i) :: !out
        | Some c ->
            Array.iter
              (fun q ->
                let u = lit_var q in
                if u <> v && s.level.(u) > 0 then s.seen.(u) <- true)
              c.lits);
        s.seen.(v) <- false
      end
    done;
    s.seen.(lit_var p) <- false
  end;
  List.sort_uniq compare !out

(* ---- learnt clause database reduction ---- *)

let locked s c =
  match s.reason.(lit_var c.lits.(0)) with
  | Some r -> r == c && lit_val s c.lits.(0) = 1
  | None -> false

let reduce_db s =
  let sorted =
    List.sort (fun a b -> compare a.act b.act) s.learnt_clauses
  in
  let n = List.length sorted in
  List.iteri
    (fun i c ->
      if i < n / 2 && (not (locked s c)) && Array.length c.lits > 2 then
        delete_clause s c)
    sorted;
  s.learnt_clauses <- List.filter (fun c -> not c.deleted) s.learnt_clauses

(* ---- adding clauses ---- *)

(* Returns the clause when one was actually attached (length >= 2 after
   level-0 strengthening); None when the clause was dropped, became a unit
   fact, or made the instance unsat. *)
let add_clause_internal s lits =
  if s.unsat_at_root then None
  else begin
    let lits = List.sort_uniq compare lits in
    let tautology = List.exists (fun l -> List.mem (lit_neg l) lits) lits in
    let satisfied =
      List.exists (fun l -> lit_val s l = 1 && s.level.(lit_var l) = 0) lits
    in
    if tautology || satisfied then None
    else begin
      let lits =
        List.filter
          (fun l -> not (lit_val s l = 0 && s.level.(lit_var l) = 0))
          lits
      in
      match lits with
      | [] ->
          set_root_unsat s;
          None
      | [ l ] ->
          if lit_val s l = 0 then set_root_unsat s
          else if lit_val s l = -1 then begin
            enqueue s l None;
            if propagate s <> None then set_root_unsat s
          end;
          None
      | _ ->
          let c =
            { lits = Array.of_list lits; learnt = false; act = 0.0;
              deleted = false }
          in
          s.n_problem <- s.n_problem + 1;
          attach s c;
          Some c
    end
  end

let add_clause s dimacs_lits =
  cancel_until s 0;
  s.have_model <- false;
  let lits = List.map (lit_of_dimacs s) dimacs_lits in
  log_proof s (P_input dimacs_lits);
  ignore (add_clause_internal s lits)

(* ---- search ---- *)

type result = Sat | Unsat

(* luby i (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

(* Unconstrained vars (no live clause mentions them) are never decided:
   any phase satisfies the live clause set, so the model just reports
   their saved polarity.  [attach] re-inserts a var into the heap when a
   new clause constrains it again. *)
let pick_branch s =
  let rec go () =
    if s.heap_len = 0 then -1
    else begin
      let v = heap_pop s in
      if s.assign.(v) < 0 && s.occurs.(v) > 0 then v else go ()
    end
  in
  go ()

let record_learnt s lits btlevel =
  cancel_until s btlevel;
  match Array.length lits with
  | 1 -> enqueue s lits.(0) None
  | _ ->
      (* Watch the asserting literal and a literal of the backjump level. *)
      let best = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if s.level.(lit_var lits.(i)) > s.level.(lit_var lits.(!best)) then
          best := i
      done;
      let t = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- t;
      log_proof s (P_add (Array.to_list (Array.map dimacs_of_lit lits)));
      let c = { lits; learnt = true; act = 0.0; deleted = false } in
      cla_bump s c;
      s.learnt_clauses <- c :: s.learnt_clauses;
      s.n_learnt <- s.n_learnt + 1;
      attach s c;
      enqueue s lits.(0) (Some c)

let solve ?(assumptions = []) s =
  s.have_model <- false;
  s.failed <- [];
  if s.unsat_at_root then Unsat
  else begin
    let assumps = Array.of_list (List.map (lit_of_dimacs s) assumptions) in
    let n_assumed = Array.length assumps in
    cancel_until s 0;
    let restart = ref 1 in
    let answer = ref None in
    while !answer = None do
      let budget = 100 * luby !restart in
      incr restart;
      let conflicts_here = ref 0 in
      cancel_until s 0;
      let running = ref true in
      while !running && !answer = None do
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            incr conflicts_here;
            if decision_level s = 0 then begin
              set_root_unsat s;
              answer := Some Unsat
            end
            else begin
              let lits, bt = analyze s confl in
              record_learnt s lits bt;
              var_decay s;
              cla_decay s
            end
        | None ->
            if !conflicts_here >= budget then running := false
            else begin
              let dl = decision_level s in
              if dl = 0 && s.n_learnt > (2 * s.n_problem) + 1000 then
                reduce_db s;
              if dl < n_assumed then begin
                let l = assumps.(dl) in
                match lit_val s l with
                | 1 ->
                    (* Already implied: open an empty level to keep the
                       level <-> assumption alignment. *)
                    push_level s
                | 0 ->
                    s.failed <- analyze_final s l;
                    answer := Some Unsat
                | _ ->
                    push_level s;
                    enqueue s l None
              end
              else begin
                let v = pick_branch s in
                if v < 0 then begin
                  for i = 0 to s.nvars - 1 do
                    s.model.(i) <-
                      (if s.assign.(i) >= 0 then s.assign.(i) = 1
                       else s.polarity.(i))
                  done;
                  s.have_model <- true;
                  answer := Some Sat
                end
                else begin
                  s.decisions <- s.decisions + 1;
                  push_level s;
                  enqueue s ((2 * v) + if s.polarity.(v) then 0 else 1) None
                end
              end
            end
      done
    done;
    cancel_until s 0;
    match !answer with Some r -> r | None -> assert false
  end

let value s v =
  if not s.have_model then invalid_arg "Sat.Solver.value: no model";
  if v <= 0 || v > s.nvars then invalid_arg "Sat.Solver.value: bad variable";
  s.model.(v - 1)

let failed_assumptions s = s.failed

(* ---- activation literals (incremental sessions) ---- *)

let new_activation s = new_var s

let add_clause_under s act lits =
  if act <= 0 || act > s.nvars then
    invalid_arg "Sat.Solver.add_clause_under: bad activation literal";
  cancel_until s 0;
  s.have_model <- false;
  let dimacs_lits = -act :: lits in
  let lits = List.map (lit_of_dimacs s) dimacs_lits in
  log_proof s (P_input dimacs_lits);
  match add_clause_internal s lits with
  | None -> ()
  | Some c -> (
      match Hashtbl.find_opt s.groups act with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add s.groups act (ref [ c ]))

(* Drop clauses satisfied at level 0 from the watch lists, so retired
   activation groups stop costing propagation time.  Safe: conflict
   analysis never dereferences reasons of level-0 assignments, and a
   satisfied clause constrains nothing. *)
let simplify s =
  cancel_until s 0;
  if not s.unsat_at_root then begin
    (match propagate s with
    | Some _ -> set_root_unsat s
    | None -> ());
    if not s.unsat_at_root then begin
      let satisfied c =
        Array.exists
          (fun l -> lit_val s l = 1 && s.level.(lit_var l) = 0)
          c.lits
      in
      for l = 0 to (2 * s.nvars) - 1 do
        s.watches.(l) <-
          List.filter
            (fun c ->
              if c.deleted then false
              else if satisfied c then begin
                delete_clause s c;
                false
              end
              else true)
            s.watches.(l)
      done;
      s.learnt_clauses <-
        List.filter (fun c -> not c.deleted) s.learnt_clauses
    end
  end

(* Permanently deactivate a group: assert the negated activator (making
   every gated clause satisfied at level 0) and delete the group's clauses
   in O(group size) — no global sweep.  Propagation evicts them from the
   watch lists as it encounters them.  Learnt clauses satisfied at level 0
   (they typically contain the negated activator) are swept too, so they
   stop pinning the group's dead variables as constrained. *)
let retire_activation s act =
  if act <= 0 || act > s.nvars then
    invalid_arg "Sat.Solver.retire_activation: bad activation literal";
  add_clause s [ -act ];
  match Hashtbl.find_opt s.groups act with
  | Some l ->
      List.iter (delete_clause s) !l;
      Hashtbl.remove s.groups act;
      if s.n_learnt > 0 && not s.unsat_at_root then begin
        let sat0 c =
          Array.exists
            (fun q -> lit_val s q = 1 && s.level.(lit_var q) = 0)
            c.lits
        in
        List.iter
          (fun c -> if sat0 c then delete_clause s c)
          s.learnt_clauses;
        s.learnt_clauses <-
          List.filter (fun c -> not c.deleted) s.learnt_clauses
      end
  | None -> ()
