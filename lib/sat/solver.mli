(** A CDCL SAT solver: two-watched-literal propagation over flat watcher
    vectors with blocker literals, dedicated binary-clause watch lists,
    first-UIP conflict analysis with recursive learnt-clause minimization
    and non-chronological backjumping, VSIDS-style variable activities,
    phase saving, Luby restarts, and an LBD-tiered learnt-clause
    database.

    The external literal convention is DIMACS: variables are positive
    integers [1, 2, ...]; literal [v] is the positive phase, [-v] the
    negative phase.  This is the back end of the BMC accessibility checks
    (paper §II-B / §III-A). *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocates the next variable and returns its (positive) index. *)

val ensure_vars : t -> int -> unit
(** [ensure_vars s n] makes sure variables [1 .. n] exist. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Number of problem (non-learnt) clauses added. *)

val add_clause : t -> int list -> unit
(** Adds a clause of DIMACS literals.  Adding the empty clause (or a clause
    that is falsified at level 0) makes the instance permanently
    unsatisfiable.  Variables are allocated on demand.
    @raise Invalid_argument on a zero literal. *)

type result = Sat | Unsat

val solve : ?assumptions:int list -> t -> result
(** [solve s] decides satisfiability of the added clauses, under the given
    assumption literals if any.  The solver is incremental: more clauses
    may be added after a call and [solve] called again. *)

val failed_assumptions : t -> int list
(** After a [solve ~assumptions] call that returned [Unsat], the subset of
    the assumption literals whose conjunction was refuted (sorted, duplicate
    free) — the incremental-session analogue of a final conflict clause.
    Empty when the instance is unsatisfiable independently of the
    assumptions (or after a [Sat] answer). *)

(** {2 Activation literals}

    An activation literal [a] guards a group of clauses added with
    [add_clause_under s a]: the group is active exactly in the [solve]
    calls that assume [a].  Retiring [a] permanently asserts [-a] and
    deletes the group's clauses in time proportional to the group size —
    the lifecycle used by the BMC session layer to share one solver across
    many queries without accumulating dead clauses. *)

val new_activation : t -> int
(** A fresh activation literal (a plain variable; returned positive). *)

val add_clause_under : t -> int -> int list -> unit
(** [add_clause_under s a lits] adds the clause [(-a) :: lits]: [lits] is
    enforced only while [a] is assumed.
    @raise Invalid_argument if [a] is not an allocated variable. *)

val retire_activation : t -> int -> unit
(** Permanently asserts the negation of the activation literal and deletes
    the clauses registered under it (they can never constrain the search
    again); costs O(group size), with the watch lists cleaned lazily by
    propagation.  Assuming a retired activation in a later [solve] yields
    [Unsat] with that literal among the failed assumptions. *)

val simplify : t -> unit
(** Removes clauses satisfied at decision level 0 from the watch lists
    (learnt and problem clauses alike); sound at any point between
    [solve] calls. *)

(** {2 Inprocessing}

    [inprocess] runs one bounded simplification pass over the live clause
    database: level-0 cleanup, backward subsumption with self-subsuming
    literal strengthening, clause vivification, and bounded variable
    elimination (BVE) with witness recording.  Every derived clause is
    emitted as [P_add] and every removed clause as [P_delete] through the
    proof sink, so certified sessions keep verifying unchanged.

    Incremental safety: variables are {e frozen} (never eliminated) when
    they are activation literals, have ever appeared in an assumption, or
    were frozen explicitly with {!freeze_var}.  If a later clause,
    assumption, or freeze mentions an eliminated variable, the variable is
    {e revived}: its deleted clauses are re-added as fresh inputs (they
    are consequences of the original formula) before the mention takes
    effect.  [solve] replays the elimination witnesses before returning
    [Sat], so {!value} always reports a model of the original formula. *)

val inprocess : ?budget:int -> t -> unit
(** One simplification pass, bounded by [budget] abstract work steps
    (candidate checks plus propagation during vivification); a no-op when
    inprocessing is disabled with {!set_inprocess} or the instance is
    already unsatisfiable at the root.  Sound at any point between
    [solve] calls; invalidates the current model. *)

val freeze_var : t -> int -> unit
(** Marks the (DIMACS, positive) variable as never eliminable, reviving
    it first if a previous pass eliminated it.  Activation literals and
    assumption variables are frozen automatically.
    @raise Invalid_argument if the variable is not allocated. *)

val var_eliminated : t -> int -> bool
(** Whether the variable is currently eliminated (test hook; [false] for
    out-of-range variables). *)

val value : t -> int -> bool
(** [value s v] is the phase of variable [v] in the model found by the last
    [solve] call that returned [Sat].
    @raise Invalid_argument if the last call did not return [Sat] or [v] is
    out of range. *)

val stats : t -> int * int * int
(** [(conflicts, decisions, propagations)] since creation. *)

type search_stats = {
  st_conflicts : int;
  st_decisions : int;
  st_propagations : int;
  st_restarts : int;  (** restart-budget exhaustions *)
  st_learnt_lits : int;
      (** literals of learnt clauses, before minimization *)
  st_minimized_lits : int;
      (** literals removed by learnt-clause minimization *)
  st_reductions : int;  (** learnt-database reduction passes *)
  st_learnt_db : int;  (** live learnt clauses right now *)
  st_subsumed : int;  (** clauses deleted by subsumption *)
  st_strengthened_lits : int;
      (** literals removed by self-subsuming strengthening *)
  st_eliminated_vars : int;
      (** variables eliminated by BVE (cumulative; revival does not
          decrement) *)
  st_vivified_lits : int;  (** literals removed by vivification *)
  st_simp_passes : int;  (** completed inprocessing passes *)
}

val search_stats : t -> search_stats
(** Cumulative search counters since creation ([st_learnt_db] is the
    current live learnt-clause count, i.e. the database size after the
    last reduction and subsequent learning). *)

(** {2 Feature switches}

    Test and benchmark-ablation hooks; the defaults are the fast
    configuration and there is no reason to change them in normal use.
    All four are sound to flip at any point between [solve] calls. *)

val set_minimize : t -> bool -> unit
(** Enables/disables learnt-clause minimization (default [true]).
    Minimized clauses remain RUP, so proof logging is unaffected. *)

val set_lbd_tiers : t -> bool -> unit
(** Enables/disables the LBD-tiered reduction policy (default [true]);
    disabled, [reduce_db] falls back to activity-only ranking. *)

val set_learnt_limit : t -> int option -> unit
(** Overrides the learnt-database size that triggers a reduction
    ([Some n]); [None] (default) restores the adaptive limit of
    [2 * problem clauses + 1000].  [Some 0] forces a reduction after
    every root-level return — useful to exercise reduction in tests. *)

val set_phase_saving : t -> bool -> unit
(** Enables/disables phase saving (default [true]).  Disabled, every
    decision picks the default (negative) phase instead of the variable's
    last assigned value.  Answers and proofs stay sound either way — only
    the search trajectory changes.  Models of unconstrained variables
    still report the saved phase; the save itself is never switched off
    (the {!value} contract depends on it). *)

val set_inprocess : t -> bool -> unit
(** Enables/disables inprocessing (default [true]).  Disabled,
    {!inprocess} is a no-op — callers schedule passes unconditionally and
    this switch is the single ablation point, mirroring the phase-saving
    hook. *)

(** {2 DRUP proof logging}

    With a proof sink installed, the solver emits a DRUP-style trace of
    its clause database: problem clauses as [P_input], derived clauses as
    [P_add], and forgotten clauses as [P_delete].  All literals are in
    the DIMACS convention.  The trace satisfies the reverse-unit-
    propagation invariant checked by {!module:Checker}: every [P_add]
    clause (including the empty clause, logged once when the instance
    becomes unsatisfiable at the root) is RUP with respect to the
    non-deleted clauses logged before it.

    Specifics that make incremental sessions certifiable:
    - [P_input] carries the clause exactly as the caller gave it (before
      deduplication and level-0 strengthening), so the checker's formula
      is always a superset of the attached database — deletions of
      clauses the checker never attached are no-ops, which only
      strengthens its propagation.
    - Every level-0 assignment is also logged as a unit [P_add] lemma, so
      later deletion of its reason clause cannot invalidate the trace.
    - [retire_activation a] shows up as the input unit [-a] plus
      [P_delete] events for the group's clauses; clause revival by a
      higher layer is a fresh [P_input] — delete/re-add pairs keep the
      trace aligned with the live database.
    - Simplification ({!inprocess}) logs every derived clause
      (strengthenings, vivified clauses, BVE resolvents) as [P_add]
      {e before} the [P_delete] of the clauses it replaces, so each is
      RUP against a database that still contains its antecedents.
      Deletions need no justification in DRUP, which is what makes
      variable elimination certifiable.  Reviving an eliminated variable
      re-adds its deleted clauses as fresh [P_input]s — each is a
      consequence of the original formula, so the certificate that every
      verdict follows from the inputs is preserved.
    - An [Unsat] answer under assumptions logs no event by itself: the
      certificate is that the negation of {!failed_assumptions} is RUP
      with respect to the trace so far, which a caller checks with
      {!Checker.check_rup}. *)

type proof_event =
  | P_input of int list  (** problem clause, exactly as added *)
  | P_add of int list  (** clause derivable by reverse unit propagation *)
  | P_delete of int list  (** clause forgotten by the solver *)

val set_proof_sink : t -> (proof_event -> unit) option -> unit
(** Installs (or removes) the proof sink.  Install it before adding
    clauses: events are emitted as they happen and are not replayed. *)
