(** A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
    analysis with non-chronological backjumping, VSIDS-style variable
    activities, phase saving and Luby restarts.

    The external literal convention is DIMACS: variables are positive
    integers [1, 2, ...]; literal [v] is the positive phase, [-v] the
    negative phase.  This is the back end of the BMC accessibility checks
    (paper §II-B / §III-A). *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocates the next variable and returns its (positive) index. *)

val ensure_vars : t -> int -> unit
(** [ensure_vars s n] makes sure variables [1 .. n] exist. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Number of problem (non-learnt) clauses added. *)

val add_clause : t -> int list -> unit
(** Adds a clause of DIMACS literals.  Adding the empty clause (or a clause
    that is falsified at level 0) makes the instance permanently
    unsatisfiable.  Variables are allocated on demand.
    @raise Invalid_argument on a zero literal. *)

type result = Sat | Unsat

val solve : ?assumptions:int list -> t -> result
(** [solve s] decides satisfiability of the added clauses, under the given
    assumption literals if any.  The solver is incremental: more clauses
    may be added after a call and [solve] called again. *)

val value : t -> int -> bool
(** [value s v] is the phase of variable [v] in the model found by the last
    [solve] call that returned [Sat].
    @raise Invalid_argument if the last call did not return [Sat] or [v] is
    out of range. *)

val stats : t -> int * int * int
(** [(conflicts, decisions, propagations)] since creation. *)
