(** DIMACS CNF reading and writing, for interoperability with external SAT
    tooling and for snapshotting BMC instances. *)

type cnf = {
  num_vars : int;
  clauses : int list list;  (** DIMACS literals, no terminating 0 *)
}

val parse : string -> (cnf, string) result
(** Parses DIMACS CNF text ([c] comments, [p cnf V C] header, clauses
    terminated by 0; clauses may span lines).  Literals outside the
    declared variable range are an error. *)

val print : cnf -> string
(** Renders the standard DIMACS form, one clause per line. *)

val solve : cnf -> Solver.result
(** Convenience: loads the CNF into a fresh {!Solver} and decides it. *)
