(** DIMACS CNF reading and writing, for interoperability with external SAT
    tooling and for snapshotting BMC instances. *)

type cnf = {
  num_vars : int;
  clauses : int list list;  (** DIMACS literals, no terminating 0 *)
}

val parse : string -> (cnf, string) result
(** Parses DIMACS CNF text ([c] comments, [p cnf V C] header, clauses
    terminated by 0; clauses may span lines).  Literals outside the
    declared variable range are an error. *)

val print : cnf -> string
(** Renders the standard DIMACS form, one clause per line. *)

val solve : cnf -> Solver.result
(** Convenience: loads the CNF into a fresh {!Solver} and decides it. *)

(** {2 DRAT proof traces}

    Interchange formats for the solver's DRUP proof events, compatible
    with external tooling such as drat-trim: the line-oriented text
    format ([d] prefix for deletions, 0-terminated lemmas) and the
    binary format (['a']/['d'] prefix byte, literals as variable-length
    7-bit little-endian encodings of [2*|l| + (l < 0)], 0x00
    terminator). *)

type drat_event = Add of int list | Delete of int list

val drat_of_proof : Solver.proof_event list -> drat_event list
(** Projects a solver trace onto the proof-relevant events: [P_add]
    becomes [Add], [P_delete] becomes [Delete], and [P_input] clauses
    are dropped (a DRAT file accompanies the original CNF rather than
    restating it). *)

val solve_certified : cnf -> Solver.result * Solver.proof_event list
(** Like {!solve}, but also returns the full proof trace of the run
    (inputs included), ready for {!drat_of_proof} or replay through
    {!module:Checker}. *)

val print_drat : drat_event list -> string
(** Renders the text DRAT form, one lemma per line. *)

val parse_drat : string -> (drat_event list, string) result
(** Parses text DRAT ([c] comment lines allowed; lemmas may span lines).
    Errors include a ['d'] appearing inside a clause, non-integer
    tokens, and a missing 0 terminator on the final lemma. *)

val print_drat_binary : drat_event list -> string
(** Renders the binary DRAT form. *)

val parse_drat_binary : string -> (drat_event list, string) result
(** Parses binary DRAT.  Errors include a bad prefix byte, a truncated
    literal or lemma, and the reserved zero-literal encoding. *)
