module Sib = Ftrsn_rsn.Sib
module Netlist = Ftrsn_rsn.Netlist

type soc = {
  soc_name : string;
  soc_modules : int;
  soc_levels : int;
  soc_mux : int;
  soc_segments : int;
  soc_bits : int;
}

(* Number of module SIBs placed below the top level (depth >= 2), from the
   hierarchy shapes of the original ITC'02 descriptions: p93791 nests most
   of its cores under a few parents, p22081 is almost flat, p34392 and
   a586710 are in between, x1331 is a deep but narrow hierarchy.  This
   only shapes the generated hierarchy; the Table I totals are exact. *)
let nested_groups = function
  | "p93791" -> 26
  | "p22081" -> 4
  | "p34392" -> 9
  | "a586710" -> 3
  | "x1331" -> 3
  | _ -> 0

let mk name modules levels mux segments bits =
  {
    soc_name = name;
    soc_modules = modules;
    soc_levels = levels;
    soc_mux = mux;
    soc_segments = segments;
    soc_bits = bits;
  }

(* Table I, "RSN characteristics" columns. *)
let all =
  [
    mk "u226" 10 2 49 89 1465;
    mk "d281" 9 2 58 108 3871;
    mk "d695" 11 2 167 324 8396;
    mk "h953" 9 2 54 100 5640;
    mk "g1023" 15 2 79 144 5385;
    mk "x1331" 7 4 31 56 4023;
    mk "f2126" 5 2 40 76 15829;
    mk "q12710" 5 2 25 46 26183;
    mk "t512505" 31 2 159 287 77005;
    mk "a586710" 8 3 39 71 41674;
    mk "p22081" 29 3 282 536 30110;
    mk "p34392" 20 3 122 225 23241;
    mk "p93791" 33 3 620 1208 98604;
  ]

let find name = List.find_opt (fun s -> s.soc_name = name) all

(* Small deterministic PRNG so that the generated hierarchy only depends on
   the SoC name. *)
let lcg_of_string s =
  let seed = ref 0 in
  String.iter (fun c -> seed := (!seed * 131) + Char.code c) s;
  let state = ref ((!seed land 0x3FFFFFFF) lor 1) in
  fun bound ->
    state := ((1103515245 * !state) + 12345) land 0x3FFFFFFF;
    !state mod bound

(* Split [total] into [parts] summands (each >= min_each), with
   deterministic pseudo-random weights. *)
let split lcg ~parts ~total ~min_each =
  if parts = 0 then [||]
  else begin
    if total < parts * min_each then invalid_arg "Itc02.split: total too small";
    let weights = Array.init parts (fun _ -> 1 + lcg 7) in
    let wsum = Array.fold_left ( + ) 0 weights in
    let spare = total - (parts * min_each) in
    let out = Array.make parts min_each in
    let assigned = ref 0 in
    for i = 0 to parts - 1 do
      let extra = spare * weights.(i) / wsum in
      out.(i) <- out.(i) + extra;
      assigned := !assigned + extra
    done;
    let rest = ref (spare - !assigned) in
    let i = ref 0 in
    while !rest > 0 do
      out.(!i mod parts) <- out.(!i mod parts) + 1;
      decr rest;
      incr i
    done;
    out
  end

let generate soc =
  let leaves = soc.soc_segments - soc.soc_mux in
  let groups = soc.soc_mux - leaves in
  if leaves <= 0 || groups <= 0 then
    invalid_arg (soc.soc_name ^ ": inconsistent descriptor");
  let lcg = lcg_of_string soc.soc_name in
  let instrument_bits = soc.soc_bits - soc.soc_mux in
  let nested = min (nested_groups soc.soc_name) (groups - 1) in
  let top_count = groups - nested in
  (* The top module hosts leaves directly iff it has no group of its own
     (groups = modules - 1, the common case). *)
  let root_hosts_leaves = groups = soc.soc_modules - 1 in
  let root_leaves =
    if root_hosts_leaves then
      max 0 (min (leaves - groups) (leaves / soc.soc_modules))
    else 0
  in
  let group_leaf_counts =
    split lcg ~parts:groups ~total:(leaves - root_leaves) ~min_each:1
  in
  let leaf_lens = split lcg ~parts:leaves ~total:instrument_bits ~min_each:1 in
  let next_leaf = ref 0 in
  let take_leaf prefix =
    let len = leaf_lens.(!next_leaf) in
    let name = Printf.sprintf "%s_c%d" prefix !next_leaf in
    incr next_leaf;
    Sib.leaf ~name ~len
  in
  (* Group indices: 0 .. top_count-1 are top level, the rest nested.  Each
     nested group is assigned a top-level parent; for a 4-level SoC, one
     nested group is re-parented under another nested group to realize the
     extra depth. *)
  let parent = Array.make groups (-1) in
  for g = top_count to groups - 1 do
    parent.(g) <- lcg top_count
  done;
  if soc.soc_levels >= 4 && nested >= 2 then begin
    (* chain: last nested group under the one before it, recursively for
       deeper targets *)
    for d = 0 to soc.soc_levels - 4 do
      let child = groups - 1 - d and new_parent = groups - 2 - d in
      if child > top_count then parent.(child) <- new_parent
    done
  end;
  (* Build bottom-up: children lists. *)
  let children = Array.make groups [] in
  for g = groups - 1 downto top_count do
    children.(parent.(g)) <- g :: children.(parent.(g))
  done;
  let rec group_spec idx =
    let own_leaves =
      List.init group_leaf_counts.(idx) (fun _ ->
          take_leaf (Printf.sprintf "%s_m%d" soc.soc_name idx))
    in
    let nested_specs = List.map group_spec children.(idx) in
    Sib.Sib
      {
        name = Printf.sprintf "%s_m%d" soc.soc_name idx;
        inner = nested_specs @ own_leaves;
      }
  in
  let top_groups = List.init top_count group_spec in
  let root =
    List.init root_leaves (fun _ -> take_leaf (soc.soc_name ^ "_top"))
  in
  top_groups @ root

let rsn soc =
  let specs = generate soc in
  let net = Sib.build ~name:soc.soc_name specs in
  let check what got want =
    if got <> want then
      failwith
        (Printf.sprintf "Itc02.rsn %s: %s = %d, expected %d" soc.soc_name
           what got want)
  in
  check "mux" (Netlist.num_muxes net) soc.soc_mux;
  check "segments" (Netlist.num_segments net) soc.soc_segments;
  check "bits" (Netlist.total_bits net) soc.soc_bits;
  check "levels" (Netlist.max_hier net) soc.soc_levels;
  net
