(** The ITC'02 system-on-chip benchmarks as SIB-based RSNs (paper §IV-A).

    The original ITC'02 benchmark files describe SoCs as module hierarchies
    with scan chains.  The paper generates SIB-based RSNs from them
    (Zadegan et al., DATE'11) and reports the resulting RSN characteristics
    in Table I.  This module embeds, for each of the 13 evaluated SoCs, a
    descriptor whose module count, hierarchy depth, multiplexer, segment
    and scan-bit totals match Table I exactly; the per-module distribution
    of scan chains and chain lengths — which the synthesis and the metric
    are insensitive to beyond these totals — is generated deterministically
    from the SoC name (see DESIGN.md §2 for the substitution argument).

    Structural identities of the generated networks:
    [segments = leaf segments + leaf SIBs + group SIBs],
    [mux = leaf SIBs + group SIBs], [bits = mux + instrument bits]. *)

type soc = {
  soc_name : string;
  soc_modules : int;  (** "modules" column: cores incl. the top module *)
  soc_levels : int;   (** "levels" column: hierarchical depth *)
  soc_mux : int;      (** "mux" column *)
  soc_segments : int; (** "segments" column *)
  soc_bits : int;     (** "bits" column *)
}

val all : soc list
(** The 13 SoCs of Table I, in table order. *)

val find : string -> soc option
(** Lookup by name (e.g. ["d695"]). *)

val generate : soc -> Ftrsn_rsn.Sib.spec list
(** Deterministic SIB hierarchy matching the descriptor's totals. *)

val rsn : soc -> Ftrsn_rsn.Netlist.t
(** [rsn soc] builds the SIB-based RSN and checks that its characteristics
    (mux, segments, bits, levels) equal the descriptor's.
    @raise Failure if the generated network does not match. *)
