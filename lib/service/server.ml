type config = {
  workers : int;
  heavy_workers : int;
  queue_cap : int;
  deadline : float option;
}

let default_config =
  { workers = 2; heavy_workers = 1; queue_cap = 64; deadline = None }

type item = {
  it_query : Query.t;
  it_id : Json.t option;
  it_enqueued : float;
  it_deadline : float option;  (* seconds of queueing budget *)
}

type outp = { oc : out_channel; omx : Mutex.t }

let respond outp ?id resp =
  Mutex.lock outp.omx;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock outp.omx)
    (fun () ->
      output_string outp.oc (Response.to_string ?id resp);
      output_char outp.oc '\n';
      flush outp.oc)

(* Parses one request line into (query, id, deadline). *)
let parse_line cfg line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Error (msg, None)
  | v -> (
      let id = Json.member "id" v in
      match Query.decode v with
      | exception Json.Parse_error msg -> Error (msg, id)
      | q ->
          let deadline =
            match Json.get_int_opt "deadline_ms" v with
            | Some ms -> Some (float_of_int ms /. 1000.0)
            | None -> cfg.deadline
            | exception Json.Parse_error _ -> cfg.deadline
          in
          Ok (q, id, deadline))

(* ------------------------------------------------------------------ *)
(* Serial mode: everything on the reader thread, in request order.     *)

let serve_serial cfg pool ic outp =
  try
    while true do
      let line = input_line ic in
      if String.trim line <> "" then
        match parse_line cfg line with
        | Error (msg, id) ->
            respond outp ?id (Response.error Response.Bad_request msg)
        | Ok (q, id, _deadline) -> respond outp ?id (Exec.run pool q)
    done
  with End_of_file -> ()

(* ------------------------------------------------------------------ *)
(* Threaded mode: bounded light/heavy queues, dedicated workers.       *)

type shared = {
  cfg : config;
  pool : Pool.t;
  outp : outp;
  mx : Mutex.t;
  nonempty : Condition.t;
  light : item Queue.t;
  heavy : item Queue.t;
  mutable eof : bool;
}

let worker sh queue () =
  let rec loop () =
    Mutex.lock sh.mx;
    let rec next () =
      if not (Queue.is_empty queue) then Some (Queue.pop queue)
      else if sh.eof then None
      else begin
        Condition.wait sh.nonempty sh.mx;
        next ()
      end
    in
    let item = next () in
    Mutex.unlock sh.mx;
    match item with
    | None -> ()
    | Some it ->
        let expired =
          match it.it_deadline with
          | Some d -> Unix.gettimeofday () -. it.it_enqueued > d
          | None -> false
        in
        let resp =
          if expired then
            Response.error Response.Admission
              "deadline expired before execution"
          else Exec.run sh.pool it.it_query
        in
        respond sh.outp ?id:it.it_id resp;
        loop ()
  in
  loop ()

let serve_threaded cfg pool ic outp =
  let sh =
    {
      cfg;
      pool;
      outp;
      mx = Mutex.create ();
      nonempty = Condition.create ();
      light = Queue.create ();
      heavy = Queue.create ();
      eof = false;
    }
  in
  let threads =
    List.init cfg.workers (fun _ -> Thread.create (worker sh sh.light) ())
    @ List.init (max 1 cfg.heavy_workers) (fun _ ->
          Thread.create (worker sh sh.heavy) ())
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match parse_line cfg line with
         | Error (msg, id) ->
             respond outp ?id (Response.error Response.Bad_request msg)
         | Ok (q, id, deadline) ->
             let queue =
               match Exec.classify q with
               | `Light -> sh.light
               | `Heavy -> sh.heavy
             in
             let admitted =
               Mutex.lock sh.mx;
               let ok = Queue.length queue < cfg.queue_cap in
               if ok then begin
                 Queue.push
                   {
                     it_query = q;
                     it_id = id;
                     it_enqueued = Unix.gettimeofday ();
                     it_deadline = deadline;
                   }
                   queue;
                 Condition.broadcast sh.nonempty
               end;
               Mutex.unlock sh.mx;
               ok
             in
             if not admitted then
               respond outp ?id
                 (Response.error Response.Admission "queue full, try later")
     done
   with End_of_file -> ());
  Mutex.lock sh.mx;
  sh.eof <- true;
  Condition.broadcast sh.nonempty;
  Mutex.unlock sh.mx;
  List.iter Thread.join threads

let serve_channels cfg pool ic oc =
  let outp = { oc; omx = Mutex.create () } in
  if cfg.workers <= 1 then serve_serial cfg pool ic outp
  else serve_threaded cfg pool ic outp

let serve_stdio cfg pool = serve_channels cfg pool stdin stdout

let serve_socket cfg pool path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  while true do
    let fd, _ = Unix.accept sock in
    let (_ : Thread.t) =
      Thread.create
        (fun () ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> serve_channels cfg pool ic oc))
        ()
    in
    ()
  done
