(** The warm-state pool: one {!Ftrsn_core.Metric.warm} (plus lookup
    tables and, for fault-tolerant specs, the synthesis result) per
    distinct netlist spec, behind an LRU with a byte budget.

    Entries are pinned while a query holds them ({!acquire} …
    {!release}), so eviction never destroys state under a running
    evaluation; unpinned entries are evicted least-recently-used first
    whenever the pool's reachable size exceeds the budget.  Sizes are
    measured with [Obj.reachable_words] and recomputed lazily (every few
    releases), since a warm entry's footprint grows as its BMC sessions
    learn.

    All operations are thread-safe; the heavy work of building an entry
    (parsing, synthesis) runs outside the pool lock, so concurrent
    queries for different netlists never serialize on each other. *)

type t
type entry

val create : ?budget_bytes:int -> unit -> t
(** Default budget 256 MiB.  The budget bounds {e unpinned} state: a
    single entry larger than the budget is still served (and evicted as
    soon as it is released). *)

val acquire : t -> Query.net_spec -> (entry, string) result
(** Looks up (hit) or builds (miss) the entry for the spec and pins it.
    Errors are user errors: unknown benchmark name, unreadable file,
    netlist parse failure. *)

val release : t -> entry -> unit
(** Unpins; every [acquire] must be paired with exactly one [release]. *)

val net : entry -> Ftrsn_rsn.Netlist.t
val warm : entry -> Ftrsn_core.Metric.warm

val synthesis : entry -> Ftrsn_core.Pipeline.result
(** The synthesis artefacts; only available on entries whose spec has
    [ns_ft = true] (raises [Invalid_argument] otherwise — the executor
    rewrites synthesis queries to fault-tolerant specs). *)

val seg_index : entry -> string -> int option
(** Segment index by name (hash lookup, built on first use). *)

val fault_of_string :
  ?model:Ftrsn_fault.Fault.model ->
  entry ->
  string ->
  Ftrsn_fault.Fault.t option
(** Fault by canonical name ({!Ftrsn_fault.Fault.to_string}) in the
    given model's universe (default [Stuck]); one table per model,
    built on first use. *)

val stats : t -> Response.pool_r
val session_stats : t -> Response.session_r list
(** One row per idle pooled BMC session, across all entries. *)
