(** The [serve] loop: newline-delimited JSON queries in, one JSON
    response line per query out, executed against a shared warm pool.

    Admission control: requests are classified ({!Exec.classify}) into a
    light and a heavy bounded queue with separate worker threads, so an
    exhaustive pair sweep in flight never starves cheap netinfo/metric
    queries.  A request arriving at a full queue is answered immediately
    with an [admission] error (exit code 4); a request whose deadline
    (["deadline_ms"] field, or the configured default) has already
    expired when a worker picks it up is likewise rejected — queries are
    pure OCaml compute and cannot be preempted mid-run, so the deadline
    is enforced at dequeue.

    With [workers <= 1] the loop runs serially on the reader thread:
    responses appear in request order, queues are bypassed (every
    request is processed immediately), and the transcript is fully
    deterministic — the mode CI diffs against one-shot CLI runs. *)

type config = {
  workers : int;        (** light worker threads; [<= 1] = serial mode *)
  heavy_workers : int;  (** threads draining the heavy queue *)
  queue_cap : int;      (** per-queue admission bound *)
  deadline : float option;
      (** default per-request deadline in seconds ([None] = unbounded);
          a request's ["deadline_ms"] overrides it *)
}

val default_config : config
(** 2 light workers, 1 heavy worker, 64-deep queues, no deadline. *)

val serve_channels : config -> Pool.t -> in_channel -> out_channel -> unit
(** Serves until end-of-input, then drains the queues and returns.
    Response lines are mutex-serialized on the output channel and
    flushed per response. *)

val serve_stdio : config -> Pool.t -> unit

val serve_socket : config -> Pool.t -> string -> unit
(** Listens on a Unix-domain socket at the given path (an existing
    socket file is replaced), serving each accepted connection with
    {!serve_channels} on its own thread against the shared pool.  Does
    not return. *)
