(** Query execution against the warm pool — the single entry point both
    front-ends (CLI subcommands and the [serve] loop) call.

    [run] never raises: user errors, inaccessible targets, rejected
    certifications and unexpected exceptions all come back as typed
    {!Response.Error_r} payloads carrying their stable exit code. *)

val classify : Query.t -> [ `Light | `Heavy ]
(** Admission class: [`Heavy] for the open-ended computations — pair
    sweeps, unsampled BMC metrics (certified or not) and synthesis —
    which the server routes through a separate bounded queue so they
    cannot starve small queries. *)

val run : Pool.t -> Query.t -> Response.t
(** Executes one query against pooled warm state.  Deterministic
    response fields are bit-identical to a fresh one-shot evaluation of
    the same query (see {!Response}). *)
