module Fault = Ftrsn_fault.Fault

type net_spec = {
  ns_source : [ `Itc02 of string | `File of string | `Inline of string ];
  ns_ft : bool;
}

let net_spec_of_cli arg =
  let spec =
    if String.length arg > 6 && String.sub arg 0 6 = "itc02:" then
      `Itc02 (String.sub arg 6 (String.length arg - 6))
    else `File arg
  in
  { ns_source = spec; ns_ft = false }

let net_spec_key spec =
  let body =
    match spec.ns_source with
    | `Itc02 n -> "itc02\x00" ^ n
    | `File p -> "file\x00" ^ p
    | `Inline t -> "inline\x00" ^ t
  in
  if spec.ns_ft then body ^ "\x00ft" else body

type engine = [ `Structural | `Bmc ]

type metric_q = {
  mq_net : net_spec;
  mq_sample : int option;
  mq_domains : int;
  mq_engine : engine;
  mq_reduce : bool;
  mq_inprocess : bool;
  mq_model : Fault.model;
  mq_with_stats : bool;
}

type pairs_q = {
  pq_net : net_spec;
  pq_fault_sample : int option;
  pq_pair_sample : int option;
  pq_domains : int;
  pq_engine : engine;
  pq_reduce : bool;
  pq_inprocess : bool;
  pq_lanes : bool;
  pq_model : Fault.model;
  pq_with_stats : bool;
}

type certify_q = {
  cq_net : net_spec;
  cq_sample : int option;
  cq_domains : int;
  cq_pairs : bool;
  cq_inprocess : bool;
  cq_model : Fault.model;
  cq_with_stats : bool;
}

type probe_q = {
  pb_net : net_spec;
  pb_target : string;
  pb_fault : string option;
  pb_model : Fault.model;
  pb_svf : bool;
}

type diagnose_q = {
  dq_net : net_spec;
  dq_signature : string list option;
  dq_limit : int option;
}

type synth_q = { sq_net : net_spec; sq_emit : bool }

type t =
  | Metric of metric_q
  | Pairs of pairs_q
  | Certify of certify_q
  | Probe of probe_q
  | Diagnose of diagnose_q
  | Synthesize of synth_q
  | Netinfo of net_spec
  | Stats

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let encode_net spec =
  let source =
    match spec.ns_source with
    | `Itc02 n -> ("itc02", Json.Str n)
    | `File p -> ("file", Json.Str p)
    | `Inline t -> ("inline", Json.Str t)
  in
  Json.Obj (source :: (if spec.ns_ft then [ ("ft", Json.Bool true) ] else []))

let opt_int k = function
  | None -> []
  | Some i -> [ (k, Json.Int i) ]

let engine_str = function `Structural -> "structural" | `Bmc -> "bmc"

let model_field m = ("fault_model", Json.Str (Fault.model_to_string m))

let encode = function
  | Metric q ->
      Json.Obj
        ([ ("op", Json.Str "metric"); ("net", encode_net q.mq_net) ]
        @ opt_int "sample" q.mq_sample
        @ [
            ("domains", Json.Int q.mq_domains);
            ("engine", Json.Str (engine_str q.mq_engine));
            ("reduce", Json.Bool q.mq_reduce);
            ("inprocess", Json.Bool q.mq_inprocess);
            model_field q.mq_model;
            ("with_stats", Json.Bool q.mq_with_stats);
          ])
  | Pairs q ->
      Json.Obj
        ([ ("op", Json.Str "pairs"); ("net", encode_net q.pq_net) ]
        @ opt_int "fault_sample" q.pq_fault_sample
        @ opt_int "pair_sample" q.pq_pair_sample
        @ [
            ("domains", Json.Int q.pq_domains);
            ("engine", Json.Str (engine_str q.pq_engine));
            ("reduce", Json.Bool q.pq_reduce);
            ("inprocess", Json.Bool q.pq_inprocess);
          ]
        (* default-true: emitted only when disabled, keeping the wire
           form of pre-lane queries unchanged *)
        @ (if q.pq_lanes then [] else [ ("pair_lanes", Json.Bool false) ])
        @ [
            model_field q.pq_model;
            ("with_stats", Json.Bool q.pq_with_stats);
          ])
  | Certify q ->
      Json.Obj
        ([ ("op", Json.Str "certify"); ("net", encode_net q.cq_net) ]
        @ opt_int "sample" q.cq_sample
        @ [
            ("domains", Json.Int q.cq_domains);
            ("pairs", Json.Bool q.cq_pairs);
            ("inprocess", Json.Bool q.cq_inprocess);
            model_field q.cq_model;
            ("with_stats", Json.Bool q.cq_with_stats);
          ])
  | Probe q ->
      Json.Obj
        ([
           ("op", Json.Str "probe");
           ("net", encode_net q.pb_net);
           ("target", Json.Str q.pb_target);
         ]
        @ (match q.pb_fault with
          | None -> []
          | Some f -> [ ("fault", Json.Str f) ])
        @ [ model_field q.pb_model; ("svf", Json.Bool q.pb_svf) ])
  | Diagnose q ->
      Json.Obj
        ([ ("op", Json.Str "diagnose"); ("net", encode_net q.dq_net) ]
        @ (match q.dq_signature with
          | None -> []
          | Some lines ->
              [ ("signature", Json.List (List.map (fun l -> Json.Str l) lines)) ])
        @ opt_int "limit" q.dq_limit)
  | Synthesize q ->
      Json.Obj
        [
          ("op", Json.Str "synthesize");
          ("net", encode_net q.sq_net);
          ("emit", Json.Bool q.sq_emit);
        ]
  | Netinfo spec ->
      Json.Obj [ ("op", Json.Str "netinfo"); ("net", encode_net spec) ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]

let to_string q = Json.to_string (encode q)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let fail fmt = Printf.ksprintf (fun s -> raise (Json.Parse_error s)) fmt

let decode_net v =
  match Json.get "net" v with
  | Json.Str s -> net_spec_of_cli s
  | Json.Obj _ as o ->
      let ft = Json.get_bool_default "ft" false o in
      let source =
        match
          ( Json.get_str_opt "itc02" o,
            Json.get_str_opt "file" o,
            Json.get_str_opt "inline" o )
        with
        | Some n, None, None -> `Itc02 n
        | None, Some p, None -> `File p
        | None, None, Some t -> `Inline t
        | None, None, None ->
            fail "net: one of \"itc02\", \"file\", \"inline\" required"
        | _ -> fail "net: \"itc02\", \"file\", \"inline\" are exclusive"
      in
      { ns_source = source; ns_ft = ft }
  | _ -> fail "field \"net\": expected an object or a string"

let decode_engine v =
  match Json.get_str_opt "engine" v with
  | None | Some "structural" -> `Structural
  | Some "bmc" -> `Bmc
  | Some e -> fail "unknown engine %S (expected \"structural\" or \"bmc\")" e

let decode_model v =
  match Json.get_str_opt "fault_model" v with
  | None -> Fault.Stuck
  | Some s -> (
      match Fault.model_of_string s with
      | Some m -> m
      | None ->
          fail
            "unknown fault_model %S (expected \"stuck\", \"bridge\", \
             \"select\" or \"transient\")"
            s)

let decode v =
  match Json.get_str_opt "op" v with
  | None -> fail "missing field \"op\""
  | Some "metric" ->
      Metric
        {
          mq_net = decode_net v;
          mq_sample = Json.get_int_opt "sample" v;
          mq_domains = Json.get_int_default "domains" 1 v;
          mq_engine = decode_engine v;
          mq_reduce = Json.get_bool_default "reduce" true v;
          mq_inprocess = Json.get_bool_default "inprocess" true v;
          mq_model = decode_model v;
          mq_with_stats = Json.get_bool_default "with_stats" false v;
        }
  | Some "pairs" ->
      Pairs
        {
          pq_net = decode_net v;
          pq_fault_sample = Json.get_int_opt "fault_sample" v;
          pq_pair_sample = Json.get_int_opt "pair_sample" v;
          pq_domains = Json.get_int_default "domains" 1 v;
          pq_engine = decode_engine v;
          pq_reduce = Json.get_bool_default "reduce" true v;
          pq_inprocess = Json.get_bool_default "inprocess" true v;
          pq_lanes = Json.get_bool_default "pair_lanes" true v;
          pq_model = decode_model v;
          pq_with_stats = Json.get_bool_default "with_stats" false v;
        }
  | Some "certify" ->
      Certify
        {
          cq_net = decode_net v;
          cq_sample = Json.get_int_opt "sample" v;
          cq_domains = Json.get_int_default "domains" 1 v;
          cq_pairs = Json.get_bool_default "pairs" false v;
          cq_inprocess = Json.get_bool_default "inprocess" true v;
          cq_model = decode_model v;
          cq_with_stats = Json.get_bool_default "with_stats" false v;
        }
  | Some "probe" ->
      Probe
        {
          pb_net = decode_net v;
          pb_target = Json.get_str "target" v;
          pb_fault = Json.get_str_opt "fault" v;
          pb_model = decode_model v;
          pb_svf = Json.get_bool_default "svf" false v;
        }
  | Some "diagnose" ->
      Diagnose
        {
          dq_net = decode_net v;
          dq_signature =
            (match Json.get_opt "signature" v with
            | None -> None
            | Some j -> Some (List.map Json.to_str (Json.to_list j)));
          dq_limit = Json.get_int_opt "limit" v;
        }
  | Some "synthesize" ->
      Synthesize
        {
          sq_net = decode_net v;
          sq_emit = Json.get_bool_default "emit" false v;
        }
  | Some "netinfo" -> Netinfo (decode_net v)
  | Some "stats" -> Stats
  | Some op -> fail "unknown op %S" op

let decode_line line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Error msg
  | v -> (
      match decode v with
      | q -> Ok (q, Json.member "id" v)
      | exception Json.Parse_error msg -> Error msg)
