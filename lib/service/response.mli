(** Typed responses of the accessibility service.

    A response is either a payload mirroring the query's result or a
    typed error; both carry a stable wire encoding and a stable process
    exit code, so the CLI front-end and the [serve] loop report the same
    outcomes the same way.

    Determinism contract: the always-present payload fields are
    deterministic functions of the query (bit-identical whether they
    were computed cold or from warm pooled state); everything that can
    legitimately differ between runs — work-stealing counters,
    accumulated solver statistics of reused sessions, secondary-baseline
    counts under [domains > 1] — lives in the optional [*_stats] blocks
    that only appear when the query asked for them ([with_stats]).  CI
    diffs serve transcripts against one-shot CLI runs on the
    deterministic part. *)

type error_code =
  | Bad_request     (** malformed JSON / unknown op / unknown name *)
  | Inaccessible    (** probe target not accessible under the fault *)
  | Cert_failed     (** the RUP checker rejected a solver proof step *)
  | Admission       (** queue full or deadline expired before execution *)
  | Internal        (** unexpected exception; message carries details *)
  | Unsupported     (** well-formed query the engine cannot serve
                        (e.g. transient double faults, whose composition
                        is not a set-wise union of summaries) *)

type solver_r = {
  so_conflicts : int;
  so_decisions : int;
  so_propagations : int;
  so_restarts : int;
  so_learnt_lits : int;
  so_minimized_lits : int;
  so_reductions : int;
  so_learnt_db : int;
  so_clauses_emitted : int;
  so_nodes_reused : int;
  so_subsumed : int;
  so_strengthened : int;
  so_eliminated : int;
  so_vivified : int;
  so_simp_passes : int;
  so_cert_unsat : int;
  so_cert_lemmas : int;
  so_cert_deletes : int;
  so_cert_time : float;
}
(** Mirror of {!Ftrsn_core.Metric.solver_stats} (volatile: a pooled
    session's counters accumulate over every query it served). *)

val solver_r_of_stats : Ftrsn_core.Metric.solver_stats -> solver_r

type reduction_r = {
  rd_universe : int;
  rd_classes : int;
  rd_benign : int;
  rd_cone_sum : int;
  rd_cone_max : int;
}
(** Deterministic: the collapse is a function of the netlist. *)

type pairdisp_r = {
  pd_classes : int;
  pd_class_pairs : int;
  pd_diagonal : int;
  pd_disjoint : int;
  pd_stacked : int;
}
(** Deterministic pair-dispatch counts.  The secondary-baseline count
    ([p_stacks]) depends on the domain split and is reported in
    {!metric_stats_r} instead. *)

type lanes_r = {
  la_batches : int;
  la_lanes : int;
  la_masked : int;
  la_fast : int;
  la_rounds : int;
}
(** Mirror of {!Ftrsn_access.Engine.lane_stats}: lane-parallel batch
    counters of the structural engine.  Deterministic — a function of
    the class universe, not of scheduling — but reported under
    [with_stats] alongside the other engine internals. *)

type metric_stats_r = {
  ms_steals : int;
  ms_stacks : int option;  (** secondary baselines built (pair sweeps) *)
  ms_solver : solver_r option;
  ms_lanes : lanes_r option;  (** lane batches (structural engine only) *)
  ms_pair_lanes : lanes_r option;
      (** lane batches rooted at stacked baselines (interacting-pair
          sweep); deterministic like [ms_lanes] *)
}

type metric_r = {
  mr_worst_segments : float;
  mr_avg_segments : float;
  mr_worst_bits : float;
  mr_avg_bits : float;
  mr_faults : int;
  mr_weight : int;
  mr_reduction : reduction_r option;
  mr_pairs : pairdisp_r option;
  mr_stats : metric_stats_r option;  (** [Some] iff [with_stats] *)
}

val metric_r_of_result :
  with_stats:bool -> Ftrsn_core.Metric.result -> metric_r

val result_of_metric_r : metric_r -> Ftrsn_core.Metric.result
(** Reconstruction for human-readable rendering ({!Ftrsn_core.Metric.pp});
    lossless when the response carries its stats block, volatile fields
    zeroed otherwise. *)

type plan_r = {
  pl_target : string;
  pl_primaries : (string * bool) list;
  pl_steps : (string list * (string * int * bool) list) list;
      (** per configuration CSU: active path, (segment, bit, value) writes *)
  pl_access_path : string list;
  pl_cycles : int;
}

type netinfo_r = {
  ni_name : string;
  ni_segments : int;
  ni_muxes : int;
  ni_scan_bits : int;
  ni_shadow_bits : int;
  ni_control_bits : int;
  ni_primary_controls : int;
  ni_levels : int;
  ni_reset_path_bits : int;
  ni_full_path_bits : int;
}

type synth_r = {
  sy_added_muxes : int;
  sy_port_muxes : int;
  sy_added_ctrl_bits : int;
  sy_added_primary_ctrls : int;
  sy_area_ratio : float;
  sy_netlist : string option;  (** hardened netlist text iff [emit] *)
}

type pool_r = {
  po_entries : int;
  po_bytes : int;
  po_budget : int;
  po_hits : int;
  po_misses : int;
  po_evictions : int;
}

type session_r = {
  se_net : string;     (** pool key of the owning entry *)
  se_certified : bool;
  se_queries : int;
  se_solver : solver_r;
}

type stats_r = { st_pool : pool_r; st_sessions : session_r list }

type payload =
  | Metric_r of metric_r
  | Plan_r of plan_r
  | Svf_r of string
  | Diagnose_r of string list  (** candidate fault names, universe order *)
  | Synth_r of synth_r
  | Netinfo_r of netinfo_r
  | Stats_r of stats_r
  | Error_r of error_code * string

type t = payload

val error : error_code -> string -> t

val exit_code : t -> int
(** The CLI exit code this response maps to: 0 for any success payload,
    1 bad request/internal, 2 inaccessible, 3 certification failed,
    4 admission/deadline, 5 unsupported. *)

val encode : ?id:Json.t -> t -> Json.t
(** Wire form: [{"id":…, "ok":bool, "type":…, "data":{…}}]; ["id"] is
    present only when given (echoed from the request). *)

val decode : Json.t -> t * Json.t option
(** Inverse of {!encode}. @raise Json.Parse_error on malformed input. *)

val to_string : ?id:Json.t -> t -> string
