(** Typed queries of the accessibility service.

    One value of {!t} describes one request against one netlist — the
    same vocabulary whether it arrives as a CLI subcommand or as a line
    of JSON on a [serve] connection.  Both front-ends build queries,
    hand them to {!Exec.run} and render the {!Response.t}; the service
    pool behind them decides what per-netlist state is reused. *)

type net_spec = {
  ns_source :
    [ `Itc02 of string  (** a benchmark SoC by name, e.g. ["d695"] *)
    | `File of string   (** a netlist file; [.icl] parsed as ICL *)
    | `Inline of string (** flat-text netlist carried in the request *) ];
  ns_ft : bool;
      (** evaluate the fault-tolerant synthesis of the netlist instead
          of the netlist itself *)
}

val net_spec_of_cli : string -> net_spec
(** The CLI netlist argument: ["itc02:NAME"] selects a benchmark SoC,
    anything else is a file path. *)

val net_spec_key : net_spec -> string
(** Canonical pool key: equal specs (same source, same [ns_ft]) map to
    the same key and therefore the same warm pool entry. *)

type engine = [ `Structural | `Bmc ]

type metric_q = {
  mq_net : net_spec;
  mq_sample : int option;  (** every k-th fault, as [Metric.evaluate] *)
  mq_domains : int;
  mq_engine : engine;
  mq_reduce : bool;
  mq_inprocess : bool;
      (** SAT inprocessing on the sessions (BMC engine; default on) *)
  mq_model : Ftrsn_fault.Fault.model;
      (** fault universe to evaluate (wire field ["fault_model"]:
          "stuck" | "bridge" | "select" | "transient"; default stuck) *)
  mq_with_stats : bool;
      (** include the volatile statistics (steals, solver counters) in
          the response; off by default so that warm responses are
          byte-identical to cold ones *)
}

type pairs_q = {
  pq_net : net_spec;
  pq_fault_sample : int option;
  pq_pair_sample : int option;
      (** [None] = exhaustive class-pair sweep; [Some k] = every k-th
          pair of the brute enumeration *)
  pq_domains : int;
  pq_engine : engine;
  pq_reduce : bool;
  pq_inprocess : bool;
  pq_lanes : bool;
      (** lane-parallel interacting-pair sweep (wire field
          ["pair_lanes"], default true; emitted only when disabled).
          [false] forces the scalar stacked path — same results,
          ablation/debug only *)
  pq_model : Ftrsn_fault.Fault.model;
      (** as [mq_model]; [Transient] is rejected with the
          [unsupported] error (pairs undefined) *)
  pq_with_stats : bool;
}

type certify_q = {
  cq_net : net_spec;
  cq_sample : int option;
  cq_domains : int;
  cq_pairs : bool;  (** certify the exhaustive pair sweep instead *)
  cq_inprocess : bool;
  cq_model : Ftrsn_fault.Fault.model;  (** as [mq_model] *)
  cq_with_stats : bool;
}

type probe_q = {
  pb_net : net_spec;
  pb_target : string;          (** segment name *)
  pb_fault : string option;    (** canonical fault name, as [Fault.to_string] *)
  pb_model : Ftrsn_fault.Fault.model;
      (** universe [pb_fault] is resolved against (default stuck) *)
  pb_svf : bool;               (** return SVF vectors (fault-free only) *)
}

type diagnose_q = {
  dq_net : net_spec;
  dq_signature : string list option;
      (** observed scan-out signature, one 0/1 line per diagnostic CSU;
          [None] diagnoses the healthy reference signature (self-test) *)
  dq_limit : int option;  (** cap on candidates returned *)
}

type synth_q = {
  sq_net : net_spec;  (** [ns_ft] is ignored (synthesis implies it) *)
  sq_emit : bool;     (** include the hardened netlist text *)
}

type t =
  | Metric of metric_q
  | Pairs of pairs_q
  | Certify of certify_q
  | Probe of probe_q
  | Diagnose of diagnose_q
  | Synthesize of synth_q
  | Netinfo of net_spec
  | Stats  (** pool and per-session solver statistics *)

val encode : t -> Json.t
(** The wire form: an object with an ["op"] discriminator. *)

val decode : Json.t -> t
(** Inverse of {!encode}, with defaults for omitted optional fields
    ([domains] 1, [engine] structural, [reduce] true, [with_stats]
    false).  @raise Json.Parse_error on malformed requests. *)

val decode_line : string -> (t * Json.t option, string) result
(** Parses one request line: the query plus the client's ["id"] field
    (echoed verbatim in the response), or a parse error message. *)

val to_string : t -> string
(** [Json.to_string (encode q)]. *)
