(** Minimal line-oriented JSON, the wire format of the query service.

    Hand-rolled on purpose: the service speaks newline-delimited JSON and
    the repo carries no JSON dependency.  The printer is deterministic
    (object fields keep construction order, floats print in the shortest
    form that round-trips), which is what lets CI diff a [serve]
    transcript against the equivalent one-shot CLI invocations
    byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} and by the [get_*] accessors on a
    type/shape mismatch; the message names the offending position or
    field. *)

val to_string : t -> string
(** One line, no newlines, minimal whitespace.  Non-finite floats print
    as [null] (they are not representable in JSON). *)

val of_string : string -> t
(** Parses one JSON value (surrounding whitespace allowed); rejects
    trailing garbage.  @raise Parse_error on malformed input. *)

(** {2 Accessors} — total ([member], [to_*_opt]) and partial ([get_*],
    raising {!Parse_error} with the field name). *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on absent field or non-object. *)

val get : string -> t -> t
val get_str : string -> t -> string
val get_int : string -> t -> int
val get_bool : string -> t -> bool

val get_opt : string -> t -> t option
(** Like {!member} but treats an explicit [Null] as absent. *)

val get_str_opt : string -> t -> string option
val get_int_opt : string -> t -> int option

val get_bool_default : string -> bool -> t -> bool
val get_int_default : string -> int -> t -> int

val to_float : t -> float
(** [Int] and [Float] both coerce; anything else raises. *)

val to_str : t -> string
val to_list : t -> t list
