module Netlist = Ftrsn_rsn.Netlist
module Text = Ftrsn_rsn.Text
module Icl = Ftrsn_rsn.Icl
module Fault = Ftrsn_fault.Fault
module Metric = Ftrsn_core.Metric
module Pipeline = Ftrsn_core.Pipeline

type entry = {
  e_key : string;
  e_net : Netlist.t;
  e_warm : Metric.warm;
  e_synth : Pipeline.result option;  (* Some iff the spec is fault-tolerant *)
  e_mx : Mutex.t;  (* guards the lazily-built lookup tables below *)
  mutable e_segs : (string, int) Hashtbl.t option;
  mutable e_faults : (Fault.model * (string, Fault.t) Hashtbl.t) list;
      (* one name table per fault model, built on first use *)
  (* LRU bookkeeping, guarded by the pool lock *)
  mutable e_pins : int;
  mutable e_last : int;
  mutable e_words : int;     (* last [Obj.reachable_words]; 0 = unmeasured *)
  mutable e_releases : int;  (* releases since the last measurement *)
}

type slot = Building | Ready of entry

type t = {
  mx : Mutex.t;
  cond : Condition.t;  (* signalled when a Building slot resolves *)
  tbl : (string, slot) Hashtbl.t;
  budget : int;  (* bytes *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let word_bytes = Sys.word_size / 8

let create ?(budget_bytes = 256 * 1024 * 1024) () =
  {
    mx = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 16;
    budget = budget_bytes;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mx;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mx) f

(* ------------------------------------------------------------------ *)
(* Entry construction (runs outside the pool lock)                     *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let build_netlist (spec : Query.net_spec) =
  match spec.Query.ns_source with
  | `Itc02 name -> (
      match Ftrsn_itc02.Itc02.find name with
      | Some soc -> Ok (Ftrsn_itc02.Itc02.rsn soc)
      | None ->
          Error
            (Printf.sprintf "unknown ITC'02 SoC %S (known: %s)" name
               (String.concat ", "
                  (List.map
                     (fun s -> s.Ftrsn_itc02.Itc02.soc_name)
                     Ftrsn_itc02.Itc02.all))))
  | `File path -> (
      match read_file path with
      | exception Sys_error e -> Error e
      | text -> (
          let parsed =
            if Filename.check_suffix path ".icl" then Icl.parse text
            else Text.parse text
          in
          match parsed with
          | Ok net -> Ok net
          | Error e -> Error (Printf.sprintf "%s: %s" path e)))
  | `Inline text -> (
      match Text.parse text with
      | Ok net -> Ok net
      | Error e -> Error (Printf.sprintf "inline netlist: %s" e))

let build_entry key (spec : Query.net_spec) =
  match build_netlist spec with
  | Error _ as e -> e
  | Ok base ->
      let net, synth =
        if spec.Query.ns_ft then
          let r = Pipeline.synthesize base in
          (r.Pipeline.ft, Some r)
        else (base, None)
      in
      Ok
        {
          e_key = key;
          e_net = net;
          e_warm = Metric.warm net;
          e_synth = synth;
          e_mx = Mutex.create ();
          e_segs = None;
          e_faults = [];
          e_pins = 0;
          e_last = 0;
          e_words = 0;
          e_releases = 0;
        }

(* ------------------------------------------------------------------ *)
(* LRU / byte budget (caller holds the pool lock)                      *)

let evict_to_budget t =
  let total () =
    Hashtbl.fold
      (fun _ slot acc ->
        match slot with Ready e -> acc + (e.e_words * word_bytes) | _ -> acc)
      t.tbl 0
  in
  let victim () =
    Hashtbl.fold
      (fun _ slot best ->
        match slot with
        | Ready e when e.e_pins = 0 && e.e_words > 0 -> (
            match best with
            | Some b when b.e_last <= e.e_last -> best
            | _ -> Some e)
        | _ -> best)
      t.tbl None
  in
  let rec go () =
    if total () > t.budget then
      match victim () with
      | None -> ()  (* everything left is pinned or unmeasured *)
      | Some e ->
          Hashtbl.remove t.tbl e.e_key;
          t.evictions <- t.evictions + 1;
          go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

let rec acquire t spec =
  let key = Query.net_spec_key spec in
  let action =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some (Ready e) ->
            t.hits <- t.hits + 1;
            e.e_pins <- e.e_pins + 1;
            t.tick <- t.tick + 1;
            e.e_last <- t.tick;
            `Hit e
        | Some Building ->
            Condition.wait t.cond t.mx;
            `Retry
        | None ->
            t.misses <- t.misses + 1;
            Hashtbl.replace t.tbl key Building;
            `Build)
  in
  match action with
  | `Hit e -> Ok e
  | `Retry -> acquire t spec
  | `Build -> (
      let built =
        try build_entry key spec
        with e -> Error (Printexc.to_string e)
      in
      match built with
      | Ok entry ->
          (* Not measured yet (e_words = 0): the warm artifacts only
             materialize during the first query, so the first release
             takes the first measurement. *)
          locked t (fun () ->
              entry.e_pins <- 1;
              t.tick <- t.tick + 1;
              entry.e_last <- t.tick;
              Hashtbl.replace t.tbl key (Ready entry);
              evict_to_budget t;
              Condition.broadcast t.cond);
          Ok entry
      | Error msg ->
          locked t (fun () ->
              Hashtbl.remove t.tbl key;
              Condition.broadcast t.cond);
          Error msg)

let release t e =
  locked t (fun () ->
      e.e_pins <- max 0 (e.e_pins - 1);
      e.e_releases <- e.e_releases + 1;
      (* Re-measure only on quiescent entries, amortized: the reachable
         size grows as BMC sessions learn, but a full heap walk per
         release would dominate small queries. *)
      if e.e_pins = 0 && (e.e_words = 0 || e.e_releases >= 16) then begin
        e.e_words <- Obj.reachable_words (Obj.repr e);
        e.e_releases <- 0
      end;
      evict_to_budget t)

let net e = e.e_net
let warm e = e.e_warm

let synthesis e =
  match e.e_synth with
  | Some r -> r
  | None -> invalid_arg "Pool.synthesis: not a fault-tolerant entry"

let entry_locked e f =
  Mutex.lock e.e_mx;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.e_mx) f

let seg_index e name =
  entry_locked e (fun () ->
      let tbl =
        match e.e_segs with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create (max 16 (Netlist.num_segments e.e_net)) in
            for i = 0 to Netlist.num_segments e.e_net - 1 do
              Hashtbl.replace tbl (Netlist.segment_name e.e_net i) i
            done;
            e.e_segs <- Some tbl;
            tbl
      in
      Hashtbl.find_opt tbl name)

let fault_of_string ?(model = Fault.Stuck) e name =
  entry_locked e (fun () ->
      let tbl =
        match List.assoc_opt model e.e_faults with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 256 in
            List.iter
              (fun f -> Hashtbl.replace tbl (Fault.to_string e.e_net f) f)
              (Fault.universe ~model e.e_net);
            e.e_faults <- (model, tbl) :: e.e_faults;
            tbl
      in
      Hashtbl.find_opt tbl name)

let stats t =
  locked t (fun () ->
      let entries, bytes =
        Hashtbl.fold
          (fun _ slot (n, b) ->
            match slot with
            | Ready e -> (n + 1, b + (e.e_words * word_bytes))
            | Building -> (n, b))
          t.tbl (0, 0)
      in
      {
        Response.po_entries = entries;
        po_bytes = bytes;
        po_budget = t.budget;
        po_hits = t.hits;
        po_misses = t.misses;
        po_evictions = t.evictions;
      })

let session_stats t =
  let entries =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ slot acc ->
            match slot with Ready e -> e :: acc | Building -> acc)
          t.tbl [])
  in
  entries
  |> List.sort (fun a b -> compare a.e_key b.e_key)
  |> List.concat_map (fun e ->
         List.map
           (fun (cert, (st : Ftrsn_bmc.Bmc.Session.stats)) ->
             {
               Response.se_net = e.e_key;
               se_certified = cert;
               se_queries = st.Ftrsn_bmc.Bmc.Session.queries;
               se_solver =
                 Response.solver_r_of_stats
                   {
                     Metric.s_conflicts = st.Ftrsn_bmc.Bmc.Session.conflicts;
                     s_decisions = st.decisions;
                     s_propagations = st.propagations;
                     s_restarts = st.restarts;
                     s_learnt_lits = st.learnt_lits;
                     s_minimized_lits = st.minimized_lits;
                     s_reductions = st.reductions;
                     s_learnt_db = st.learnt_db;
                     s_clauses_emitted = st.clauses_emitted;
                     s_nodes_reused = st.nodes_reused;
                     s_subsumed = st.subsumed;
                     s_strengthened_lits = st.strengthened_lits;
                     s_eliminated_vars = st.eliminated_vars;
                     s_vivified_lits = st.vivified_lits;
                     s_simp_passes = st.simp_passes;
                     s_cert_unsat =
                       (match st.cert with Some c -> c.cert_unsat | None -> 0);
                     s_cert_lemmas =
                       (match st.cert with Some c -> c.cert_lemmas | None -> 0);
                     s_cert_deletes =
                       (match st.cert with
                       | Some c -> c.cert_deletes
                       | None -> 0);
                     s_cert_time =
                       (match st.cert with Some c -> c.cert_time | None -> 0.0);
                   };
             })
           (Metric.warm_session_stats e.e_warm))
