type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

(* Shortest decimal form that round-trips; always carries a '.' or an
   exponent so re-parsing yields a Float again. *)
let float_str f =
  if f <> f || f = infinity || f = neg_infinity then "null"
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match try_prec 15 with
      | Some s -> s
      | None -> (
          match try_prec 16 with
          | Some s -> s
          | None -> Printf.sprintf "%.17g" f)
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | Str s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print_to buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          print_to buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_to buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a string with a cursor.       *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> fail "expected '%c' at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then (
    c.pos <- c.pos + n;
    value)
  else fail "invalid literal at offset %d" c.pos

(* UTF-8 encoding of a \uXXXX escape (surrogate pairs handled). *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
  else if code < 0x10000 then (
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek c with
      | Some ('0' .. '9' as x) -> Char.code x - Char.code '0'
      | Some ('a' .. 'f' as x) -> Char.code x - Char.code 'a' + 10
      | Some ('A' .. 'F' as x) -> Char.code x - Char.code 'A' + 10
      | _ -> fail "invalid \\u escape at offset %d" c.pos
    in
    advance c;
    v := (!v lsl 4) lor d
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail "unterminated string at offset %d" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance c;
            let hi = hex4 c in
            let code =
              if hi >= 0xD800 && hi <= 0xDBFF then (
                (* surrogate pair: expect \uDC00-\uDFFF next *)
                expect c '\\';
                expect c 'u';
                let lo = hex4 c in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail "lone surrogate at offset %d" c.pos
                else 0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
              else hi
            in
            add_utf8 buf code;
            loop ()
        | _ -> fail "invalid escape at offset %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () = advance c in
  (match peek c with Some '-' -> consume () | _ -> ());
  let rec digits () =
    match peek c with
    | Some '0' .. '9' ->
        consume ();
        digits ()
    | _ -> ()
  in
  digits ();
  (match peek c with
  | Some '.' ->
      is_float := true;
      consume ();
      digits ()
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      consume ();
      (match peek c with Some ('+' | '-') -> consume () | _ -> ());
      digits ()
  | _ -> ());
  let s = String.sub c.src start (c.pos - start) in
  if s = "" || s = "-" then fail "invalid number at offset %d" start;
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "invalid number %S at offset %d" s start
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* overflowing integer literal: keep the value as a float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "invalid number %S at offset %d" s start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then (
        advance c;
        List [])
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" c.pos
        in
        List (items [])
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then (
        advance c;
        Obj [])
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" c.pos
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected character '%c' at offset %d" ch c.pos

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    fail "trailing garbage at offset %d" c.pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let get k v =
  match member k v with
  | Some x -> x
  | None -> fail "missing field %S" k

let get_opt k v =
  match member k v with Some Null | None -> None | Some x -> Some x

let to_str = function Str s -> s | _ -> fail "expected a string"
let to_list = function List l -> l | _ -> fail "expected an array"

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> fail "expected a number"

let get_str k v =
  match get k v with Str s -> s | _ -> fail "field %S: expected a string" k

let get_int k v =
  match get k v with Int i -> i | _ -> fail "field %S: expected an integer" k

let get_bool k v =
  match get k v with
  | Bool b -> b
  | _ -> fail "field %S: expected a boolean" k

let get_str_opt k v =
  match get_opt k v with
  | None -> None
  | Some (Str s) -> Some s
  | Some _ -> fail "field %S: expected a string" k

let get_int_opt k v =
  match get_opt k v with
  | None -> None
  | Some (Int i) -> Some i
  | Some _ -> fail "field %S: expected an integer" k

let get_bool_default k d v =
  match get_opt k v with
  | None -> d
  | Some (Bool b) -> b
  | Some _ -> fail "field %S: expected a boolean" k

let get_int_default k d v =
  match get_opt k v with
  | None -> d
  | Some (Int i) -> i
  | Some _ -> fail "field %S: expected an integer" k
