module Netlist = Ftrsn_rsn.Netlist
module Text = Ftrsn_rsn.Text
module Stats = Ftrsn_rsn.Stats
module Fault = Ftrsn_fault.Fault
module Retarget = Ftrsn_access.Retarget
module Vectors = Ftrsn_access.Vectors
module Diagnose = Ftrsn_access.Diagnose
module Metric = Ftrsn_core.Metric
module Pipeline = Ftrsn_core.Pipeline
module Synthesis = Ftrsn_core.Synthesis
module Area = Ftrsn_core.Area
module Bmc = Ftrsn_bmc.Bmc

let classify = function
  | Query.Pairs _ | Query.Synthesize _ -> `Heavy
  | Query.Certify { cq_pairs = true; _ } | Query.Certify { cq_sample = None; _ }
    ->
      `Heavy
  | Query.Metric { mq_engine = `Bmc; mq_sample = None; _ } -> `Heavy
  | Query.Metric _ | Query.Certify _ | Query.Probe _ | Query.Diagnose _
  | Query.Netinfo _ | Query.Stats ->
      `Light

let with_entry pool spec f =
  match Pool.acquire pool spec with
  | Error msg -> Response.error Response.Bad_request msg
  | Ok e -> Fun.protect ~finally:(fun () -> Pool.release pool e) (fun () -> f e)

let take k l = List.filteri (fun i _ -> i < k) l

(* Banded Levenshtein distance for "did you mean" suggestions on
   mistyped segment names. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <-
        min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let plan_r_of_plan net target (p : Retarget.plan) =
  let name = Netlist.segment_name net in
  {
    Response.pl_target = name target;
    pl_primaries = p.Retarget.primaries;
    pl_steps =
      List.map
        (fun (st : Retarget.csu_step) ->
          ( List.map name st.Retarget.path,
            List.map (fun (s, b, v) -> (name s, b, v)) st.Retarget.writes ))
        p.Retarget.steps;
    pl_access_path = List.map name p.Retarget.access_path;
    pl_cycles = p.Retarget.cycles;
  }

let run_probe e (q : Query.probe_q) =
  let net = Pool.net e in
  match Pool.seg_index e q.Query.pb_target with
  | None ->
      let near =
        List.init (Netlist.num_segments net) (fun i ->
            let n = Netlist.segment_name net i in
            (edit_distance q.Query.pb_target n, n))
        |> List.filter (fun (d, _) ->
               d <= max 2 (String.length q.Query.pb_target / 3))
        |> List.sort compare
        |> List.filteri (fun i _ -> i < 3)
        |> List.map snd
      in
      Response.error Response.Bad_request
        (Printf.sprintf "no segment named %s%s" q.Query.pb_target
           (match near with
           | [] -> ""
           | _ ->
               Printf.sprintf " (did you mean %s?)" (String.concat ", " near)))
  | Some target -> (
      let fault =
        match q.Query.pb_fault with
        | None -> Ok None
        | Some fs -> (
            match Pool.fault_of_string ~model:q.Query.pb_model e fs with
            | Some f -> Ok (Some f)
            | None ->
                Error
                  (Printf.sprintf
                     "unknown fault %s (use names as printed by the universe, \
                      e.g. mysib.shadow[0]/sa0)"
                     fs))
      in
      match fault with
      | Error msg -> Response.error Response.Bad_request msg
      | Ok fault -> (
          let ctx = Metric.warm_ctx (Pool.warm e) in
          match Retarget.plan_write ctx ?fault ~target () with
          | None ->
              Response.error Response.Inaccessible
                "target not writable under this fault"
          | Some plan ->
              if not q.Query.pb_svf then
                Response.Plan_r (plan_r_of_plan net target plan)
              else if fault <> None then
                Response.error Response.Bad_request
                  "vector export is for fault-free plans"
              else
                let pattern =
                  List.init (Netlist.seg_len net target) (fun i -> i mod 2 = 0)
                in
                (match Vectors.of_plan net plan ~pattern with
                | Ok svf -> Response.Svf_r svf
                | Error e -> Response.error Response.Internal e)))

let run_exn pool = function
  | Query.Metric q ->
      with_entry pool q.Query.mq_net (fun e ->
          let r =
            Metric.evaluate ?sample:q.Query.mq_sample
              ~domains:q.Query.mq_domains ~engine:q.Query.mq_engine
              ~reduce:q.Query.mq_reduce ~inprocess:q.Query.mq_inprocess
              ~model:q.Query.mq_model ~warm:(Pool.warm e) (Pool.net e)
          in
          Response.Metric_r
            (Response.metric_r_of_result ~with_stats:q.Query.mq_with_stats r))
  | Query.Pairs q ->
      with_entry pool q.Query.pq_net (fun e ->
          let r =
            Metric.evaluate_pairs ?sample:q.Query.pq_pair_sample
              ?fault_sample:q.Query.pq_fault_sample
              ~domains:q.Query.pq_domains ~engine:q.Query.pq_engine
              ~exhaustive:(q.Query.pq_pair_sample = None)
              ~reduce:q.Query.pq_reduce ~inprocess:q.Query.pq_inprocess
              ~lanes:q.Query.pq_lanes ~model:q.Query.pq_model
              ~warm:(Pool.warm e) (Pool.net e)
          in
          Response.Metric_r
            (Response.metric_r_of_result ~with_stats:q.Query.pq_with_stats r))
  | Query.Certify q ->
      with_entry pool q.Query.cq_net (fun e ->
          let warm = Pool.warm e in
          let net = Pool.net e in
          match
            if q.Query.cq_pairs then
              Metric.evaluate_pairs ?fault_sample:q.Query.cq_sample
                ~domains:q.Query.cq_domains ~engine:`Bmc ~exhaustive:true
                ~certify:true ~inprocess:q.Query.cq_inprocess
                ~model:q.Query.cq_model ~warm net
            else
              Metric.evaluate ?sample:q.Query.cq_sample
                ~domains:q.Query.cq_domains ~engine:`Bmc ~certify:true
                ~inprocess:q.Query.cq_inprocess ~model:q.Query.cq_model ~warm
                net
          with
          | r ->
              Response.Metric_r
                (Response.metric_r_of_result ~with_stats:q.Query.cq_with_stats
                   r)
          | exception Bmc.Session.Certification_failed msg ->
              Response.error Response.Cert_failed msg)
  | Query.Probe q -> with_entry pool q.Query.pb_net (fun e -> run_probe e q)
  | Query.Diagnose q ->
      with_entry pool q.Query.dq_net (fun e ->
          let net = Pool.net e in
          let observed =
            match q.Query.dq_signature with
            | Some lines -> Diagnose.signature_of_lines lines
            | None -> Diagnose.healthy net
          in
          let candidates = Diagnose.diagnose net ~observed in
          let candidates =
            match q.Query.dq_limit with
            | Some k -> take k candidates
            | None -> candidates
          in
          Response.Diagnose_r (List.map (Fault.to_string net) candidates))
  | Query.Synthesize q ->
      let spec = { q.Query.sq_net with Query.ns_ft = true } in
      with_entry pool spec (fun e ->
          let r = Pool.synthesis e in
          Response.Synth_r
            {
              Response.sy_added_muxes =
                r.Pipeline.syn_stats.Synthesis.added_muxes;
              sy_port_muxes = r.Pipeline.syn_stats.Synthesis.port_muxes;
              sy_added_ctrl_bits =
                r.Pipeline.syn_stats.Synthesis.added_ctrl_bits;
              sy_added_primary_ctrls =
                r.Pipeline.syn_stats.Synthesis.added_primary_ctrls;
              sy_area_ratio = r.Pipeline.area_ratios.Area.r_area;
              sy_netlist =
                (if q.Query.sq_emit then Some (Text.to_string r.Pipeline.ft)
                 else None);
            })
  | Query.Netinfo spec ->
      with_entry pool spec (fun e ->
          let net = Pool.net e in
          let s = Stats.compute net in
          Response.Netinfo_r
            {
              Response.ni_name = net.Netlist.net_name;
              ni_segments = s.Stats.segments;
              ni_muxes = s.Stats.muxes;
              ni_scan_bits = s.Stats.scan_bits;
              ni_shadow_bits = s.Stats.shadow_bits;
              ni_control_bits = s.Stats.control_bits;
              ni_primary_controls = s.Stats.primary_controls;
              ni_levels = s.Stats.levels;
              ni_reset_path_bits = s.Stats.reset_path_bits;
              ni_full_path_bits = s.Stats.full_path_bits;
            })
  | Query.Stats ->
      Response.Stats_r
        {
          Response.st_pool = Pool.stats pool;
          st_sessions = Pool.session_stats pool;
        }

let run pool q =
  try run_exn pool q with
  | Bmc.Session.Certification_failed msg ->
      Response.error Response.Cert_failed msg
  | Metric.Unsupported msg -> Response.error Response.Unsupported msg
  | e -> Response.error Response.Internal (Printexc.to_string e)
