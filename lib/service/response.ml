module Metric = Ftrsn_core.Metric

type error_code =
  | Bad_request
  | Inaccessible
  | Cert_failed
  | Admission
  | Internal
  | Unsupported

type solver_r = {
  so_conflicts : int;
  so_decisions : int;
  so_propagations : int;
  so_restarts : int;
  so_learnt_lits : int;
  so_minimized_lits : int;
  so_reductions : int;
  so_learnt_db : int;
  so_clauses_emitted : int;
  so_nodes_reused : int;
  so_subsumed : int;
  so_strengthened : int;
  so_eliminated : int;
  so_vivified : int;
  so_simp_passes : int;
  so_cert_unsat : int;
  so_cert_lemmas : int;
  so_cert_deletes : int;
  so_cert_time : float;
}

type reduction_r = {
  rd_universe : int;
  rd_classes : int;
  rd_benign : int;
  rd_cone_sum : int;
  rd_cone_max : int;
}

type pairdisp_r = {
  pd_classes : int;
  pd_class_pairs : int;
  pd_diagonal : int;
  pd_disjoint : int;
  pd_stacked : int;
}

type lanes_r = {
  la_batches : int;
  la_lanes : int;
  la_masked : int;
  la_fast : int;
  la_rounds : int;
}

type metric_stats_r = {
  ms_steals : int;
  ms_stacks : int option;
  ms_solver : solver_r option;
  ms_lanes : lanes_r option;
  ms_pair_lanes : lanes_r option;
}

type metric_r = {
  mr_worst_segments : float;
  mr_avg_segments : float;
  mr_worst_bits : float;
  mr_avg_bits : float;
  mr_faults : int;
  mr_weight : int;
  mr_reduction : reduction_r option;
  mr_pairs : pairdisp_r option;
  mr_stats : metric_stats_r option;
}

let solver_r_of_stats (s : Metric.solver_stats) =
  {
    so_conflicts = s.Metric.s_conflicts;
    so_decisions = s.Metric.s_decisions;
    so_propagations = s.Metric.s_propagations;
    so_restarts = s.Metric.s_restarts;
    so_learnt_lits = s.Metric.s_learnt_lits;
    so_minimized_lits = s.Metric.s_minimized_lits;
    so_reductions = s.Metric.s_reductions;
    so_learnt_db = s.Metric.s_learnt_db;
    so_clauses_emitted = s.Metric.s_clauses_emitted;
    so_nodes_reused = s.Metric.s_nodes_reused;
    so_subsumed = s.Metric.s_subsumed;
    so_strengthened = s.Metric.s_strengthened_lits;
    so_eliminated = s.Metric.s_eliminated_vars;
    so_vivified = s.Metric.s_vivified_lits;
    so_simp_passes = s.Metric.s_simp_passes;
    so_cert_unsat = s.Metric.s_cert_unsat;
    so_cert_lemmas = s.Metric.s_cert_lemmas;
    so_cert_deletes = s.Metric.s_cert_deletes;
    so_cert_time = s.Metric.s_cert_time;
  }

let stats_of_solver_r s =
  {
    Metric.s_conflicts = s.so_conflicts;
    s_decisions = s.so_decisions;
    s_propagations = s.so_propagations;
    s_restarts = s.so_restarts;
    s_learnt_lits = s.so_learnt_lits;
    s_minimized_lits = s.so_minimized_lits;
    s_reductions = s.so_reductions;
    s_learnt_db = s.so_learnt_db;
    s_clauses_emitted = s.so_clauses_emitted;
    s_nodes_reused = s.so_nodes_reused;
    s_subsumed = s.so_subsumed;
    s_strengthened_lits = s.so_strengthened;
    s_eliminated_vars = s.so_eliminated;
    s_vivified_lits = s.so_vivified;
    s_simp_passes = s.so_simp_passes;
    s_cert_unsat = s.so_cert_unsat;
    s_cert_lemmas = s.so_cert_lemmas;
    s_cert_deletes = s.so_cert_deletes;
    s_cert_time = s.so_cert_time;
  }

let lanes_r_of_stats (l : Ftrsn_access.Engine.lane_stats) =
  {
    la_batches = l.Ftrsn_access.Engine.ls_batches;
    la_lanes = l.Ftrsn_access.Engine.ls_lanes;
    la_masked = l.Ftrsn_access.Engine.ls_masked;
    la_fast = l.Ftrsn_access.Engine.ls_fast;
    la_rounds = l.Ftrsn_access.Engine.ls_rounds;
  }

let stats_of_lanes_r l =
  {
    Ftrsn_access.Engine.ls_batches = l.la_batches;
    ls_lanes = l.la_lanes;
    ls_masked = l.la_masked;
    ls_fast = l.la_fast;
    ls_rounds = l.la_rounds;
  }

let metric_r_of_result ~with_stats (r : Metric.result) =
  {
    mr_worst_segments = r.Metric.worst_segments;
    mr_avg_segments = r.Metric.avg_segments;
    mr_worst_bits = r.Metric.worst_bits;
    mr_avg_bits = r.Metric.avg_bits;
    mr_faults = r.Metric.faults;
    mr_weight = r.Metric.total_weight;
    mr_reduction =
      Option.map
        (fun (red : Metric.reduction_stats) ->
          {
            rd_universe = red.Metric.r_universe;
            rd_classes = red.Metric.r_classes;
            rd_benign = red.Metric.r_benign;
            rd_cone_sum = red.Metric.r_cone_sum;
            rd_cone_max = red.Metric.r_cone_max;
          })
        r.Metric.reduction;
    mr_pairs =
      Option.map
        (fun (p : Metric.pair_stats) ->
          {
            pd_classes = p.Metric.p_classes;
            pd_class_pairs = p.Metric.p_class_pairs;
            pd_diagonal = p.Metric.p_diagonal;
            pd_disjoint = p.Metric.p_disjoint;
            pd_stacked = p.Metric.p_stacked;
          })
        r.Metric.pairs;
    mr_stats =
      (if not with_stats then None
       else
         Some
           {
             ms_steals = r.Metric.steals;
             ms_stacks =
               Option.map (fun (p : Metric.pair_stats) -> p.Metric.p_stacks)
                 r.Metric.pairs;
             ms_solver = Option.map solver_r_of_stats r.Metric.solver;
             ms_lanes = Option.map lanes_r_of_stats r.Metric.lanes;
             ms_pair_lanes = Option.map lanes_r_of_stats r.Metric.pair_lanes;
           });
  }

let result_of_metric_r m =
  {
    Metric.worst_segments = m.mr_worst_segments;
    avg_segments = m.mr_avg_segments;
    worst_bits = m.mr_worst_bits;
    avg_bits = m.mr_avg_bits;
    faults = m.mr_faults;
    total_weight = m.mr_weight;
    steals = (match m.mr_stats with Some s -> s.ms_steals | None -> 0);
    solver =
      (match m.mr_stats with
      | Some { ms_solver = Some s; _ } -> Some (stats_of_solver_r s)
      | _ -> None);
    lanes =
      (match m.mr_stats with
      | Some { ms_lanes = Some l; _ } -> Some (stats_of_lanes_r l)
      | _ -> None);
    pair_lanes =
      (match m.mr_stats with
      | Some { ms_pair_lanes = Some l; _ } -> Some (stats_of_lanes_r l)
      | _ -> None);
    reduction =
      Option.map
        (fun rd ->
          {
            Metric.r_universe = rd.rd_universe;
            r_classes = rd.rd_classes;
            r_benign = rd.rd_benign;
            r_cone_sum = rd.rd_cone_sum;
            r_cone_max = rd.rd_cone_max;
          })
        m.mr_reduction;
    pairs =
      Option.map
        (fun pd ->
          {
            Metric.p_classes = pd.pd_classes;
            p_class_pairs = pd.pd_class_pairs;
            p_diagonal = pd.pd_diagonal;
            p_disjoint = pd.pd_disjoint;
            p_stacked = pd.pd_stacked;
            p_stacks =
              (match m.mr_stats with
              | Some { ms_stacks = Some s; _ } -> s
              | _ -> 0);
          })
        m.mr_pairs;
  }

type plan_r = {
  pl_target : string;
  pl_primaries : (string * bool) list;
  pl_steps : (string list * (string * int * bool) list) list;
  pl_access_path : string list;
  pl_cycles : int;
}

type netinfo_r = {
  ni_name : string;
  ni_segments : int;
  ni_muxes : int;
  ni_scan_bits : int;
  ni_shadow_bits : int;
  ni_control_bits : int;
  ni_primary_controls : int;
  ni_levels : int;
  ni_reset_path_bits : int;
  ni_full_path_bits : int;
}

type synth_r = {
  sy_added_muxes : int;
  sy_port_muxes : int;
  sy_added_ctrl_bits : int;
  sy_added_primary_ctrls : int;
  sy_area_ratio : float;
  sy_netlist : string option;
}

type pool_r = {
  po_entries : int;
  po_bytes : int;
  po_budget : int;
  po_hits : int;
  po_misses : int;
  po_evictions : int;
}

type session_r = {
  se_net : string;
  se_certified : bool;
  se_queries : int;
  se_solver : solver_r;
}

type stats_r = { st_pool : pool_r; st_sessions : session_r list }

type payload =
  | Metric_r of metric_r
  | Plan_r of plan_r
  | Svf_r of string
  | Diagnose_r of string list
  | Synth_r of synth_r
  | Netinfo_r of netinfo_r
  | Stats_r of stats_r
  | Error_r of error_code * string

type t = payload

let error code msg = Error_r (code, msg)

let exit_code = function
  | Error_r (Bad_request, _) | Error_r (Internal, _) -> 1
  | Error_r (Inaccessible, _) -> 2
  | Error_r (Cert_failed, _) -> 3
  | Error_r (Admission, _) -> 4
  | Error_r (Unsupported, _) -> 5
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let code_str = function
  | Bad_request -> "bad_request"
  | Inaccessible -> "inaccessible"
  | Cert_failed -> "certification_failed"
  | Admission -> "admission"
  | Unsupported -> "unsupported"
  | Internal -> "internal"

let code_of_str = function
  | "bad_request" -> Bad_request
  | "inaccessible" -> Inaccessible
  | "certification_failed" -> Cert_failed
  | "admission" -> Admission
  | "unsupported" -> Unsupported
  | "internal" -> Internal
  | s -> raise (Json.Parse_error (Printf.sprintf "unknown error code %S" s))

let enc_solver s =
  Json.Obj
    [
      ("conflicts", Json.Int s.so_conflicts);
      ("decisions", Json.Int s.so_decisions);
      ("propagations", Json.Int s.so_propagations);
      ("restarts", Json.Int s.so_restarts);
      ("learnt_lits", Json.Int s.so_learnt_lits);
      ("minimized_lits", Json.Int s.so_minimized_lits);
      ("reductions", Json.Int s.so_reductions);
      ("learnt_db", Json.Int s.so_learnt_db);
      ("clauses_emitted", Json.Int s.so_clauses_emitted);
      ("nodes_reused", Json.Int s.so_nodes_reused);
      ("subsumed", Json.Int s.so_subsumed);
      ("strengthened", Json.Int s.so_strengthened);
      ("eliminated", Json.Int s.so_eliminated);
      ("vivified", Json.Int s.so_vivified);
      ("simp_passes", Json.Int s.so_simp_passes);
      ("cert_unsat", Json.Int s.so_cert_unsat);
      ("cert_lemmas", Json.Int s.so_cert_lemmas);
      ("cert_deletes", Json.Int s.so_cert_deletes);
      ("cert_time", Json.Float s.so_cert_time);
    ]

let dec_solver v =
  {
    so_conflicts = Json.get_int "conflicts" v;
    so_decisions = Json.get_int "decisions" v;
    so_propagations = Json.get_int "propagations" v;
    so_restarts = Json.get_int "restarts" v;
    so_learnt_lits = Json.get_int "learnt_lits" v;
    so_minimized_lits = Json.get_int "minimized_lits" v;
    so_reductions = Json.get_int "reductions" v;
    so_learnt_db = Json.get_int "learnt_db" v;
    so_clauses_emitted = Json.get_int "clauses_emitted" v;
    so_nodes_reused = Json.get_int "nodes_reused" v;
    so_subsumed = Json.get_int "subsumed" v;
    so_strengthened = Json.get_int "strengthened" v;
    so_eliminated = Json.get_int "eliminated" v;
    so_vivified = Json.get_int "vivified" v;
    so_simp_passes = Json.get_int "simp_passes" v;
    so_cert_unsat = Json.get_int "cert_unsat" v;
    so_cert_lemmas = Json.get_int "cert_lemmas" v;
    so_cert_deletes = Json.get_int "cert_deletes" v;
    so_cert_time = Json.to_float (Json.get "cert_time" v);
  }

let enc_lanes l =
  Json.Obj
    [
      ("batches", Json.Int l.la_batches);
      ("lanes", Json.Int l.la_lanes);
      ("masked", Json.Int l.la_masked);
      ("fast", Json.Int l.la_fast);
      ("rounds", Json.Int l.la_rounds);
    ]

let dec_lanes l =
  {
    la_batches = Json.get_int "batches" l;
    la_lanes = Json.get_int "lanes" l;
    la_masked = Json.get_int "masked" l;
    la_fast = Json.get_int "fast" l;
    la_rounds = Json.get_int "rounds" l;
  }

let enc_metric m =
  let base =
    [
      ("worst_segments", Json.Float m.mr_worst_segments);
      ("avg_segments", Json.Float m.mr_avg_segments);
      ("worst_bits", Json.Float m.mr_worst_bits);
      ("avg_bits", Json.Float m.mr_avg_bits);
      ("faults", Json.Int m.mr_faults);
      ("weight", Json.Int m.mr_weight);
    ]
  in
  let reduction =
    match m.mr_reduction with
    | None -> []
    | Some r ->
        [
          ( "reduction",
            Json.Obj
              [
                ("universe", Json.Int r.rd_universe);
                ("classes", Json.Int r.rd_classes);
                ("benign", Json.Int r.rd_benign);
                ("cone_sum", Json.Int r.rd_cone_sum);
                ("cone_max", Json.Int r.rd_cone_max);
              ] );
        ]
  in
  let pairs =
    match m.mr_pairs with
    | None -> []
    | Some p ->
        [
          ( "pairs",
            Json.Obj
              [
                ("classes", Json.Int p.pd_classes);
                ("class_pairs", Json.Int p.pd_class_pairs);
                ("diagonal", Json.Int p.pd_diagonal);
                ("disjoint", Json.Int p.pd_disjoint);
                ("stacked", Json.Int p.pd_stacked);
              ] );
        ]
  in
  let stats =
    match m.mr_stats with
    | None -> []
    | Some s ->
        [
          ( "stats",
            Json.Obj
              (("steals", Json.Int s.ms_steals)
               ::
               (match s.ms_stacks with
               | None -> []
               | Some st -> [ ("stacks", Json.Int st) ])
              @ (match s.ms_solver with
                | None -> []
                | Some so -> [ ("solver", enc_solver so) ])
              @ (match s.ms_lanes with
                | None -> []
                | Some l -> [ ("lanes", enc_lanes l) ])
              @
              match s.ms_pair_lanes with
              | None -> []
              | Some l -> [ ("pair_lanes", enc_lanes l) ]) );
        ]
  in
  Json.Obj (base @ reduction @ pairs @ stats)

let dec_metric v =
  {
    mr_worst_segments = Json.to_float (Json.get "worst_segments" v);
    mr_avg_segments = Json.to_float (Json.get "avg_segments" v);
    mr_worst_bits = Json.to_float (Json.get "worst_bits" v);
    mr_avg_bits = Json.to_float (Json.get "avg_bits" v);
    mr_faults = Json.get_int "faults" v;
    mr_weight = Json.get_int "weight" v;
    mr_reduction =
      Option.map
        (fun r ->
          {
            rd_universe = Json.get_int "universe" r;
            rd_classes = Json.get_int "classes" r;
            rd_benign = Json.get_int "benign" r;
            rd_cone_sum = Json.get_int "cone_sum" r;
            rd_cone_max = Json.get_int "cone_max" r;
          })
        (Json.get_opt "reduction" v);
    mr_pairs =
      Option.map
        (fun p ->
          {
            pd_classes = Json.get_int "classes" p;
            pd_class_pairs = Json.get_int "class_pairs" p;
            pd_diagonal = Json.get_int "diagonal" p;
            pd_disjoint = Json.get_int "disjoint" p;
            pd_stacked = Json.get_int "stacked" p;
          })
        (Json.get_opt "pairs" v);
    mr_stats =
      Option.map
        (fun s ->
          {
            ms_steals = Json.get_int "steals" s;
            ms_stacks = Json.get_int_opt "stacks" s;
            ms_solver = Option.map dec_solver (Json.get_opt "solver" s);
            ms_lanes = Option.map dec_lanes (Json.get_opt "lanes" s);
            ms_pair_lanes =
              Option.map dec_lanes (Json.get_opt "pair_lanes" s);
          })
        (Json.get_opt "stats" v);
  }

let enc_plan p =
  Json.Obj
    [
      ("target", Json.Str p.pl_target);
      ( "primaries",
        Json.List
          (List.map
             (fun (n, v) -> Json.Obj [ ("name", Json.Str n); ("value", Json.Bool v) ])
             p.pl_primaries) );
      ( "steps",
        Json.List
          (List.map
             (fun (path, writes) ->
               Json.Obj
                 [
                   ("path", Json.List (List.map (fun s -> Json.Str s) path));
                   ( "writes",
                     Json.List
                       (List.map
                          (fun (s, b, v) ->
                            Json.Obj
                              [
                                ("segment", Json.Str s);
                                ("bit", Json.Int b);
                                ("value", Json.Bool v);
                              ])
                          writes) );
                 ])
             p.pl_steps) );
      ( "access_path",
        Json.List (List.map (fun s -> Json.Str s) p.pl_access_path) );
      ("cycles", Json.Int p.pl_cycles);
    ]

let dec_plan v =
  {
    pl_target = Json.get_str "target" v;
    pl_primaries =
      List.map
        (fun o -> (Json.get_str "name" o, Json.get_bool "value" o))
        (Json.to_list (Json.get "primaries" v));
    pl_steps =
      List.map
        (fun o ->
          ( List.map Json.to_str (Json.to_list (Json.get "path" o)),
            List.map
              (fun w ->
                ( Json.get_str "segment" w,
                  Json.get_int "bit" w,
                  Json.get_bool "value" w ))
              (Json.to_list (Json.get "writes" o)) ))
        (Json.to_list (Json.get "steps" v));
    pl_access_path =
      List.map Json.to_str (Json.to_list (Json.get "access_path" v));
    pl_cycles = Json.get_int "cycles" v;
  }

let enc_netinfo n =
  Json.Obj
    [
      ("name", Json.Str n.ni_name);
      ("segments", Json.Int n.ni_segments);
      ("muxes", Json.Int n.ni_muxes);
      ("scan_bits", Json.Int n.ni_scan_bits);
      ("shadow_bits", Json.Int n.ni_shadow_bits);
      ("control_bits", Json.Int n.ni_control_bits);
      ("primary_controls", Json.Int n.ni_primary_controls);
      ("levels", Json.Int n.ni_levels);
      ("reset_path_bits", Json.Int n.ni_reset_path_bits);
      ("full_path_bits", Json.Int n.ni_full_path_bits);
    ]

let dec_netinfo v =
  {
    ni_name = Json.get_str "name" v;
    ni_segments = Json.get_int "segments" v;
    ni_muxes = Json.get_int "muxes" v;
    ni_scan_bits = Json.get_int "scan_bits" v;
    ni_shadow_bits = Json.get_int "shadow_bits" v;
    ni_control_bits = Json.get_int "control_bits" v;
    ni_primary_controls = Json.get_int "primary_controls" v;
    ni_levels = Json.get_int "levels" v;
    ni_reset_path_bits = Json.get_int "reset_path_bits" v;
    ni_full_path_bits = Json.get_int "full_path_bits" v;
  }

let enc_synth s =
  Json.Obj
    ([
       ("added_muxes", Json.Int s.sy_added_muxes);
       ("port_muxes", Json.Int s.sy_port_muxes);
       ("added_ctrl_bits", Json.Int s.sy_added_ctrl_bits);
       ("added_primary_ctrls", Json.Int s.sy_added_primary_ctrls);
       ("area_ratio", Json.Float s.sy_area_ratio);
     ]
    @
    match s.sy_netlist with
    | None -> []
    | Some t -> [ ("netlist", Json.Str t) ])

let dec_synth v =
  {
    sy_added_muxes = Json.get_int "added_muxes" v;
    sy_port_muxes = Json.get_int "port_muxes" v;
    sy_added_ctrl_bits = Json.get_int "added_ctrl_bits" v;
    sy_added_primary_ctrls = Json.get_int "added_primary_ctrls" v;
    sy_area_ratio = Json.to_float (Json.get "area_ratio" v);
    sy_netlist = Json.get_str_opt "netlist" v;
  }

let enc_stats s =
  Json.Obj
    [
      ( "pool",
        Json.Obj
          [
            ("entries", Json.Int s.st_pool.po_entries);
            ("bytes", Json.Int s.st_pool.po_bytes);
            ("budget", Json.Int s.st_pool.po_budget);
            ("hits", Json.Int s.st_pool.po_hits);
            ("misses", Json.Int s.st_pool.po_misses);
            ("evictions", Json.Int s.st_pool.po_evictions);
          ] );
      ( "sessions",
        Json.List
          (List.map
             (fun se ->
               Json.Obj
                 [
                   ("net", Json.Str se.se_net);
                   ("certified", Json.Bool se.se_certified);
                   ("queries", Json.Int se.se_queries);
                   ("solver", enc_solver se.se_solver);
                 ])
             s.st_sessions) );
    ]

let dec_stats v =
  let p = Json.get "pool" v in
  {
    st_pool =
      {
        po_entries = Json.get_int "entries" p;
        po_bytes = Json.get_int "bytes" p;
        po_budget = Json.get_int "budget" p;
        po_hits = Json.get_int "hits" p;
        po_misses = Json.get_int "misses" p;
        po_evictions = Json.get_int "evictions" p;
      };
    st_sessions =
      List.map
        (fun se ->
          {
            se_net = Json.get_str "net" se;
            se_certified = Json.get_bool "certified" se;
            se_queries = Json.get_int "queries" se;
            se_solver = dec_solver (Json.get "solver" se);
          })
        (Json.to_list (Json.get "sessions" v));
  }

let encode ?id t =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  let ok, ty, data =
    match t with
    | Metric_r m -> (true, "metric", enc_metric m)
    | Plan_r p -> (true, "plan", enc_plan p)
    | Svf_r s -> (true, "svf", Json.Obj [ ("svf", Json.Str s) ])
    | Diagnose_r fs ->
        ( true,
          "diagnose",
          Json.Obj
            [ ("candidates", Json.List (List.map (fun f -> Json.Str f) fs)) ] )
    | Synth_r s -> (true, "synth", enc_synth s)
    | Netinfo_r n -> (true, "netinfo", enc_netinfo n)
    | Stats_r s -> (true, "stats", enc_stats s)
    | Error_r (code, msg) ->
        ( false,
          "error",
          Json.Obj
            [
              ("code", Json.Str (code_str code));
              ("msg", Json.Str msg);
              ("exit", Json.Int (exit_code (Error_r (code, msg))));
            ] )
  in
  Json.Obj
    (id_field @ [ ("ok", Json.Bool ok); ("type", Json.Str ty); ("data", data) ])

let decode v =
  let id = Json.member "id" v in
  let data = Json.get "data" v in
  let payload =
    match Json.get_str "type" v with
    | "metric" -> Metric_r (dec_metric data)
    | "plan" -> Plan_r (dec_plan data)
    | "svf" -> Svf_r (Json.get_str "svf" data)
    | "diagnose" ->
        Diagnose_r
          (List.map Json.to_str (Json.to_list (Json.get "candidates" data)))
    | "synth" -> Synth_r (dec_synth data)
    | "netinfo" -> Netinfo_r (dec_netinfo data)
    | "stats" -> Stats_r (dec_stats data)
    | "error" ->
        Error_r (code_of_str (Json.get_str "code" data), Json.get_str "msg" data)
    | ty -> raise (Json.Parse_error (Printf.sprintf "unknown response type %S" ty))
  in
  (payload, id)

let to_string ?id t = Json.to_string (encode ?id t)
