(** Final synthesis of fault-tolerant RSNs (paper §III-E).

    Starting from the original netlist and the augmenting edge set, the
    synthesis:

    + inserts one scan multiplexer per augmenting edge in front of the
      target element, cascading when a target has several new in-edges;
      every inserted mux defaults (reset = 0) to the original route, so all
      scan paths configurable in the original RSN remain configurable and
      access latency is preserved (§IV);
    + steers each inserted mux from BOTH endpoints of its edge (a 4:1
      one-hot realization with two address bits): one bit is appended as a
      tail control bit of the {e source} segment, one of the {e target}
      (primary control inputs when the endpoint is a scan port) — opening
      the edge from either side breaks the circular dependency "opening
      the edge requires a bit only reachable through the edge";
    + adds a TMR'd primary-controlled rescue address bit to every original
      2:1 scan mux, forcing its hosted route open regardless of scan state
      (a hosted subtree's drain is otherwise controlled from inside);
    + hardens all multiplexer address signals with TMR (replica flip-flops
      plus voters, accounted by {!Area});
    + re-derives select signals with two independent assertion stems per
      segment ([select_hardened]);
    + duplicates the primary scan ports ([dual_ports]); the port switch
      multiplexers are counted in {!stats}.

    Every mechanism can be disabled individually through {!options} for
    ablation studies (see `bin/reproduce.ml --part ablation`). *)

type options = {
  opt_tmr : bool;           (** TMR hardening of mux addresses (§III-E-3) *)
  opt_dual_ports : bool;    (** duplicated scan ports (§III-E-4) *)
  opt_select_hardening : bool;  (** dual select stems (§III-E-2) *)
  opt_rescue_lines : bool;  (** primary rescue bits on original muxes *)
  opt_dual_host : bool;     (** target-side hosts on inserted muxes *)
}

val default_options : options
(** Everything enabled — the paper's full synthesis. *)

type stats = {
  added_muxes : int;        (** augmenting-edge muxes inserted *)
  port_muxes : int;         (** duplicated-port switch muxes *)
  added_ctrl_bits : int;    (** appended scan control bits (pre-TMR) *)
  added_primary_ctrls : int;(** primary control inputs added *)
}

val run :
  ?options:options ->
  Ftrsn_rsn.Netlist.t ->
  new_edges:(int * int) list ->
  Ftrsn_rsn.Netlist.t * stats
(** [run net ~new_edges] builds the fault-tolerant netlist.  [new_edges]
    are dataflow-vertex pairs as produced by {!Augment.solve}.
    @raise Invalid_argument if an edge references the root as target or
    the sink as source, or if the resulting netlist fails validation. *)
