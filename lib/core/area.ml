module Netlist = Ftrsn_rsn.Netlist

type report = {
  muxes : int;
  bits : int;
  nets : int;
  area : float;
}

type technology = {
  ge_scan_ff : float;
  ge_plain_ff : float;
  ge_mux2 : float;
  ge_voter : float;
  ge_select_plain : float;
  ge_select_hardened : float;
}

let default_technology =
  {
    ge_scan_ff = 5.0;
    ge_plain_ff = 4.0;
    ge_mux2 = 2.0;
    ge_voter = 1.5;
    ge_select_plain = 1.5;
    ge_select_hardened = 4.0;
  }

let compact_technology =
  {
    ge_scan_ff = 4.0;
    ge_plain_ff = 3.0;
    ge_mux2 = 1.5;
    ge_voter = 1.0;
    ge_select_plain = 1.0;
    ge_select_hardened = 2.5;
  }

let of_netlist ?(technology = default_technology) ?(port_muxes = 0)
    (net : Netlist.t) =
  let { ge_scan_ff; ge_plain_ff; ge_mux2; ge_voter; ge_select_plain;
        ge_select_hardened } =
    technology
  in
  let shift_ffs = Netlist.total_bits net in
  let shadow_ffs =
    Array.fold_left (fun acc s -> acc + s.Netlist.seg_shadow) 0 net.segs
  in
  (* TMR'd address bits: two replica flip-flops and a voter each. *)
  let tmr_bits = ref 0 in
  let addr_nets = ref 0 in
  let mux_ge = ref 0.0 in
  Array.iter
    (fun (m : Netlist.mux) ->
      mux_ge :=
        !mux_ge +. (ge_mux2 *. float_of_int (Array.length m.mux_inputs - 1));
      Array.iter
        (fun ctrl ->
          match ctrl with
          | Netlist.Ctrl_const _ -> ()
          | Netlist.Ctrl_shadow _ | Netlist.Ctrl_primary _ ->
              incr addr_nets;
              if m.mux_tmr then incr tmr_bits)
        m.mux_addr)
    net.muxes;
  (* Port-switch muxes are 2:1 with one TMR'd primary-controlled address. *)
  tmr_bits := !tmr_bits + port_muxes;
  addr_nets := !addr_nets + port_muxes;
  mux_ge := !mux_ge +. (ge_mux2 *. float_of_int port_muxes);
  let replica_ffs = 2 * !tmr_bits in
  let voters = !tmr_bits in
  let nsegs = Netlist.num_segments net in
  let nmux = Netlist.num_muxes net + port_muxes in
  let select_nets = nsegs * if net.select_hardened then 2 else 1 in
  let select_ge =
    float_of_int nsegs
    *. (if net.select_hardened then ge_select_hardened else ge_select_plain)
  in
  let bits = shift_ffs + shadow_ffs + replica_ffs in
  let nets = bits + nmux + !addr_nets + voters + select_nets in
  let area =
    (float_of_int shift_ffs *. ge_scan_ff)
    +. (float_of_int (shadow_ffs + replica_ffs) *. ge_plain_ff)
    +. (float_of_int voters *. ge_voter)
    +. !mux_ge +. select_ge
  in
  { muxes = nmux; bits; nets; area }

type ratios = {
  r_mux : float;
  r_bits : float;
  r_nets : float;
  r_area : float;
}

let ratios ~orig ~ft =
  {
    r_mux = float_of_int ft.muxes /. float_of_int orig.muxes;
    r_bits = float_of_int ft.bits /. float_of_int orig.bits;
    r_nets = float_of_int ft.nets /. float_of_int orig.nets;
    r_area = ft.area /. orig.area;
  }

let pp fmt r =
  Format.fprintf fmt "mux %d, bits %d, nets %d, area %.1f GE" r.muxes r.bits
    r.nets r.area

let pp_ratios fmt r =
  Format.fprintf fmt "mux %.2f, bits %.2f, nets %.2f, area %.2f" r.r_mux
    r.r_bits r.r_nets r.r_area
