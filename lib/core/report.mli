(** One Table I row as a structured value: characteristics, both
    accessibility metrics, area ratios and augmentation statistics for a
    named RSN — shared by the reproduction CLI, the benches and any
    downstream tooling; serializable as CSV. *)

type row = {
  name : string;
  segments : int;
  muxes : int;
  bits : int;
  levels : int;
  orig_metric : Metric.result;
  ft_metric : Metric.result;
  ratios : Area.ratios;
  new_edges : int;
  augment_cost : int;
  augment_seconds : float;
}

val row : ?sample:int -> name:string -> Ftrsn_rsn.Netlist.t -> row
(** Runs the complete pipeline (augmentation, synthesis, both metrics,
    area) on the netlist. *)

val csv_header : string
(** Column names, comma-separated (matches {!to_csv}). *)

val to_csv : row -> string

val pp : Format.formatter -> row -> unit
