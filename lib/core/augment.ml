module Digraph = Ftrsn_topo.Digraph
module Order = Ftrsn_topo.Order
module Acyclic = Ftrsn_topo.Acyclic
module Menger = Ftrsn_topo.Menger
module Simplex = Ftrsn_lp.Simplex
module Bnb = Ftrsn_ilp.Bnb
module Mcf = Ftrsn_flow.Mincost

type problem = {
  graph : Digraph.t;
  levels : int array;
  root : int;
  sink : int;
}

let of_netlist net =
  let g, levels = Ftrsn_rsn.Netlist.dataflow_graph net in
  { graph = g; levels; root = 0; sink = 1 }

let edge_cost p (i, j) =
  if Digraph.has_edge p.graph i j then 0 else 1 + p.levels.(j) - p.levels.(i)

(* A pair (i, j) may carry a new edge: the level constraint of E_P, no
   self-loops, nothing leaves the sink or enters the root, and it must not
   already exist. *)
let potential_pair p i j =
  i <> j
  && i <> p.sink
  && j <> p.root
  && p.levels.(j) >= p.levels.(i)
  && not (Digraph.has_edge p.graph i j)

(* Existing degrees are counted per physical interconnect, not per
   collapsed dataflow edge: a segment has exactly one scan-in port, and
   every original in-edge reaches it through that single port (one mux
   tree), so a stuck-at on the port or on the mux output corrupts all of
   them together.  The fault-tolerance requirement therefore needs a
   second, physically distinct input (a new mux) at every vertex — which
   is why the paper observes "at least one additional multiplexer at the
   scan-in port of every scan segment" (§IV-C).  Out-edges are distinct
   interconnects (one per consumer port) and count individually. *)
let demands p =
  let n = Digraph.vertex_count p.graph in
  let d_in = Array.make n 0 and d_out = Array.make n 0 in
  for t = 0 to n - 1 do
    if t <> p.root then begin
      let potential = ref 1 in
      for i = 0 to n - 1 do
        if potential_pair p i t then incr potential
      done;
      d_in.(t) <- max 0 (min 2 !potential - 1)
    end;
    if t <> p.sink then begin
      let potential = ref (Digraph.out_degree p.graph t) in
      for j = 0 to n - 1 do
        if potential_pair p t j then incr potential
      done;
      d_out.(t) <-
        max 0 (min 2 !potential - Digraph.out_degree p.graph t)
    end
  done;
  (d_in, d_out)

type solution = {
  new_edges : (int * int) list;
  cost : int;
  solver : [ `Ilp | `Flow ];
  ilp_nodes : int;
  ilp_cuts : int;
}

(* ---- exact ILP (paper eqs. 2-5, subtours separated lazily) ---- *)

let solve_ilp ?(max_nodes = 100_000) p =
  let n = Digraph.vertex_count p.graph in
  let d_in, d_out = demands p in
  (* Enumerate variables: one per potential new edge. *)
  let vars = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if potential_pair p i j then vars := (i, j) :: !vars
    done
  done;
  let vars = Array.of_list (List.rev !vars) in
  let nv = Array.length vars in
  let index = Hashtbl.create (2 * nv) in
  Array.iteri (fun k e -> Hashtbl.add index e k) vars;
  let objective =
    Array.map (fun e -> float_of_int (edge_cost p e)) vars
  in
  let t = Bnb.make ~num_vars:nv ~objective in
  for v = 0 to n - 1 do
    if d_in.(v) > 0 then begin
      let coeffs = ref [] in
      Array.iteri (fun k (_, j) -> if j = v then coeffs := (k, 1.0) :: !coeffs) vars;
      Bnb.add_constraint t ~coeffs:!coeffs ~op:Simplex.Ge
        ~rhs:(float_of_int d_in.(v))
    end;
    if d_out.(v) > 0 then begin
      let coeffs = ref [] in
      Array.iteri (fun k (i, _) -> if i = v then coeffs := (k, 1.0) :: !coeffs) vars;
      Bnb.add_constraint t ~coeffs:!coeffs ~op:Simplex.Ge
        ~rhs:(float_of_int d_out.(v))
    end
  done;
  (* Lazy acyclicity: a cycle in the augmented graph can only use new
     same-level edges (existing edges and cross-level new edges strictly
     increase the level).  Cut each cycle found in a candidate. *)
  let lazy_cuts x =
    let g = Digraph.copy p.graph in
    Array.iteri (fun k (i, j) -> if x.(k) then Digraph.add_edge g i j) vars;
    match Acyclic.find_cycle g with
    | None -> []
    | Some cycle ->
        let arr = Array.of_list cycle in
        let m = Array.length arr in
        let members = ref [] in
        for a = 0 to m - 1 do
          let e = (arr.(a), arr.((a + 1) mod m)) in
          match Hashtbl.find_opt index e with
          | Some k -> members := k :: !members
          | None -> ()
        done;
        let coeffs = List.map (fun k -> (k, 1.0)) !members in
        [ (coeffs, Simplex.Le, float_of_int (List.length !members - 1)) ]
  in
  let report = Bnb.solve ~lazy_cuts ~max_nodes ~integral_objective:true t in
  match report.Bnb.best with
  | None -> None
  | Some sol ->
      let new_edges = ref [] in
      Array.iteri (fun k e -> if sol.Bnb.x.(k) then new_edges := e :: !new_edges) vars;
      Some
        {
          new_edges = List.rev !new_edges;
          cost = int_of_float (Float.round sol.Bnb.obj);
          solver = `Ilp;
          ilp_nodes = report.Bnb.nodes;
          ilp_cuts = report.Bnb.cuts;
        }

(* ---- scalable min-cost-flow solver ---- *)

(* Candidate edges: level difference at most [window]; same-level pairs are
   oriented by vertex id, which keeps the result acyclic by construction
   (every chosen edge strictly increases (level, id) lexicographically). *)
let candidate p window i j =
  potential_pair p i j
  && p.levels.(j) - p.levels.(i) <= window
  && (p.levels.(i) <> p.levels.(j) || i < j)

let solve_flow ?(window = 4) p =
  let n = Digraph.vertex_count p.graph in
  let d_in, d_out = demands p in
  (* Bucket vertices by level so candidate enumeration is near-linear. *)
  let max_level = Array.fold_left max 0 p.levels in
  let by_level = Array.make (max_level + 1) [] in
  for v = n - 1 downto 0 do
    by_level.(p.levels.(v)) <- v :: by_level.(p.levels.(v))
  done;
  let candidates = ref [] in
  let out_count = Array.make n 0 and in_count = Array.make n 0 in
  for i = 0 to n - 1 do
    if i <> p.sink then
      for lv = p.levels.(i) to min max_level (p.levels.(i) + window) do
        List.iter
          (fun j ->
            if candidate p window i j then begin
              candidates := (i, j) :: !candidates;
              out_count.(i) <- out_count.(i) + 1;
              in_count.(j) <- in_count.(j) + 1
            end)
          by_level.(lv)
      done
  done;
  let candidates = Array.of_list !candidates in
  let feasible = ref true in
  for v = 0 to n - 1 do
    if d_out.(v) > out_count.(v) then feasible := false;
    if d_in.(v) > in_count.(v) then feasible := false
  done;
  if not !feasible then None
  else begin
    (* Nodes: out-copy v, in-copy n + v, source 2n, sink 2n + 1. *)
    let s = 2 * n and t = (2 * n) + 1 in
    let arcs =
      Array.concat
        [
          Array.map
            (fun (i, j) ->
              {
                Mcf.With_lower_bounds.lb_src = i;
                lb_dst = n + j;
                lb_low = 0;
                lb_cap = 1;
                lb_cost = edge_cost p (i, j);
              })
            candidates;
          Array.init n (fun v ->
              {
                Mcf.With_lower_bounds.lb_src = s;
                lb_dst = v;
                lb_low = d_out.(v);
                lb_cap = out_count.(v);
                lb_cost = 0;
              });
          Array.init n (fun v ->
              {
                Mcf.With_lower_bounds.lb_src = n + v;
                lb_dst = t;
                lb_low = d_in.(v);
                lb_cap = in_count.(v);
                lb_cost = 0;
              });
        ]
    in
    match Mcf.With_lower_bounds.solve ~n:((2 * n) + 2) ~arcs ~s ~t with
    | None -> None
    | Some (cost, flows) ->
        let new_edges = ref [] in
        Array.iteri
          (fun k (i, j) -> if flows.(k) > 0 then new_edges := (i, j) :: !new_edges)
          candidates;
        Some
          {
            new_edges = List.rev !new_edges;
            cost;
            solver = `Flow;
            ilp_nodes = 0;
            ilp_cuts = 0;
          }
  end

let solve p =
  let n = Digraph.vertex_count p.graph in
  let result =
    if n <= 30 then
      match solve_ilp p with
      | Some s -> Some s
      | None -> solve_flow ~window:(Array.fold_left max 1 p.levels) p
    else
      let rec widen w =
        let max_w = Array.fold_left max 1 p.levels in
        match solve_flow ~window:w p with
        | Some s -> Some s
        | None -> if w >= max_w then None else widen (min max_w (2 * w))
      in
      widen 4
  in
  match result with
  | Some s -> s
  | None -> failwith "Augment.solve: augmentation infeasible"

let verify p new_edges =
  let g = Digraph.copy p.graph in
  List.iter (fun (i, j) -> Digraph.add_edge g i j) new_edges;
  let n = Digraph.vertex_count g in
  let d_in, d_out = demands p in
  let problems = ref [] in
  if not (Order.is_acyclic g) then problems := "augmented graph is cyclic" :: !problems;
  for v = 0 to n - 1 do
    if Digraph.in_degree g v < Digraph.in_degree p.graph v + d_in.(v) then
      problems := Printf.sprintf "vertex %d in-degree demand unmet" v :: !problems;
    if Digraph.out_degree g v < Digraph.out_degree p.graph v + d_out.(v) then
      problems := Printf.sprintf "vertex %d out-degree demand unmet" v :: !problems;
    (* Semantic check: two vertex-independent paths wherever the degree
       demands claimed it possible. *)
    if v <> p.root && Digraph.in_degree g v >= 2 then begin
      if Menger.vertex_disjoint_paths g ~src:p.root ~dst:v < 2 then
        problems :=
          Printf.sprintf "vertex %d lacks 2 root paths" v :: !problems
    end;
    if v <> p.sink && Digraph.out_degree g v >= 2 then begin
      if Menger.vertex_disjoint_paths g ~src:v ~dst:p.sink < 2 then
        problems :=
          Printf.sprintf "vertex %d lacks 2 sink paths" v :: !problems
    end
  done;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " ps)
