(** End-to-end fault-tolerant synthesis (fig. 1 of the paper): dataflow
    graph extraction, connectivity augmentation, final synthesis, and the
    evaluation artefacts of Table I. *)

type result = {
  original : Ftrsn_rsn.Netlist.t;
  ft : Ftrsn_rsn.Netlist.t;            (** the fault-tolerant RSN *)
  augmentation : Augment.solution;
  syn_stats : Synthesis.stats;
  orig_area : Area.report;
  ft_area : Area.report;
  area_ratios : Area.ratios;
}

val synthesize :
  ?options:Synthesis.options -> Ftrsn_rsn.Netlist.t -> result
(** Runs augmentation (exact ILP for small graphs, min-cost flow
    otherwise) and the final synthesis, verifying on the way that the
    augmented graph meets the connectivity requirements and that the
    fault-tolerant netlist still validates and preserves the reset path.
    @raise Failure on infeasibility (does not happen for well-formed
    SIB-based RSNs). *)

type evaluation = {
  orig_metric : Metric.result;
  ft_metric : Metric.result;
}

val evaluate : ?sample:int -> result -> evaluation
(** The accessibility halves of a Table I row (original vs fault-tolerant
    metric over the respective full fault universes; [sample] as in
    {!Metric.evaluate}). *)
