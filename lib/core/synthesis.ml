module Netlist = Ftrsn_rsn.Netlist

type options = {
  opt_tmr : bool;
  opt_dual_ports : bool;
  opt_select_hardening : bool;
  opt_rescue_lines : bool;
  opt_dual_host : bool;
}

let default_options =
  {
    opt_tmr = true;
    opt_dual_ports = true;
    opt_select_hardening = true;
    opt_rescue_lines = true;
    opt_dual_host = true;
  }

type stats = {
  added_muxes : int;
  port_muxes : int;
  added_ctrl_bits : int;
  added_primary_ctrls : int;
}

(* Dataflow vertex ids: 0 = root (scan-in), 1 = sink (scan-out), 2 + i =
   segment i. *)
let seg_of_vertex v = v - 2

let node_of_vertex v =
  if v = 0 then Netlist.Scan_in
  else if v = 1 then invalid_arg "Synthesis: sink used as edge source"
  else Netlist.Seg (seg_of_vertex v)

let run ?(options = default_options) (net : Netlist.t) ~new_edges =
  List.iter
    (fun (u, v) ->
      if v = 0 then invalid_arg "Synthesis: edge into the root";
      if u = 1 then invalid_arg "Synthesis: edge out of the sink")
    new_edges;
  let nsegs = Array.length net.segs in
  (* Mutable working copies of the segment records. *)
  let seg_len = Array.map (fun s -> s.Netlist.seg_len) net.segs in
  let seg_shadow = Array.map (fun s -> s.Netlist.seg_shadow) net.segs in
  let seg_reset =
    Array.map (fun s -> Array.to_list s.Netlist.seg_reset) net.segs
  in
  let seg_input = Array.map (fun s -> s.Netlist.seg_input) net.segs in
  let out_src = ref net.out_src in
  let new_muxes = ref [] in
  let n_new_muxes = ref 0 in
  let added_ctrl_bits = ref 0 in
  let added_primary_ctrls = ref 0 in
  (* Allocate a control bit hosted in the segment of dataflow vertex [x],
     or a primary control input when [x] is a scan port.  Each inserted mux
     is steered from BOTH endpoints of its augmenting edge: whichever side
     of a faulty region a path must escape from or be rescued into, the
     other side hosts a writable copy of the address — this breaks the
     circular dependency "opening the edge requires writing a bit that is
     only reachable through the edge". *)
  let ctrl_hosted_at x =
    if x = 0 || x = 1 then begin
      incr added_primary_ctrls;
      Netlist.Ctrl_primary (Printf.sprintf "aug_port_%d" !added_primary_ctrls)
    end
    else begin
      let s = seg_of_vertex x in
      let bit = seg_shadow.(s) in
      seg_shadow.(s) <- seg_shadow.(s) + 1;
      seg_len.(s) <- seg_len.(s) + 1;
      seg_reset.(s) <- seg_reset.(s) @ [ false ];
      incr added_ctrl_bits;
      Netlist.Ctrl_shadow { cseg = s; cbit = bit }
    end
  in
  (* Insert one dual-steered mux per augmenting edge, cascading per target.
     The mux has four data inputs [prev; src; src; src] and two address
     bits (source-hosted, target-hosted): any non-zero address selects the
     new source, so setting EITHER bit re-routes — OR semantics realized as
     a one-hot 4:1 mux.  Input 0 is always the previous route, so the reset
     state preserves the original topology.  (With [opt_dual_host] off the
     mux degrades to a 2:1 steered from the source only.) *)
  let grouped = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace grouped v (u :: Option.value ~default:[] (Hashtbl.find_opt grouped v)))
    new_edges;
  let targets = Hashtbl.fold (fun v us acc -> (v, List.rev us) :: acc) grouped [] in
  let targets = List.sort compare targets in
  List.iter
    (fun (v, sources) ->
      let current =
        ref (if v = 1 then !out_src else seg_input.(seg_of_vertex v))
      in
      List.iteri
        (fun k u ->
          let name = Printf.sprintf "aug_%d_%d" v k in
          let src = node_of_vertex u in
          let ctrl_src = ctrl_hosted_at u in
          let mux =
            if options.opt_dual_host then begin
              let ctrl_dst = ctrl_hosted_at v in
              {
                Netlist.mux_name = name;
                mux_inputs = [| !current; src; src; src |];
                mux_addr = [| ctrl_src; ctrl_dst |];
                mux_tmr = options.opt_tmr;
                mux_rescue_from = 1;
              }
            end
            else
              {
                Netlist.mux_name = name;
                mux_inputs = [| !current; src |];
                mux_addr = [| ctrl_src |];
                mux_tmr = options.opt_tmr;
                mux_rescue_from = 1;
              }
          in
          let id = Array.length net.muxes + !n_new_muxes in
          incr n_new_muxes;
          new_muxes := mux :: !new_muxes;
          current := Netlist.Mux id)
        sources;
      if v = 1 then out_src := !current
      else seg_input.(seg_of_vertex v) <- !current)
    targets;
  (* Rescue steering for the ORIGINAL 2:1 scan muxes: a hosted subtree's
     only drain runs through its host SIB's mux, whose address is the SIB
     register itself — a fault that makes the SIB unwritable would seal the
     whole subtree, and any scan-hosted copy of the address can itself land
     inside the sealed region.  Each original 2:1 mux therefore gets an
     extra TMR'd rescue address bit driven by a primary control input
     (TAP-side, like the duplicated-port switching of §III-E-4), ORed into
     the decode and realized as inputs [a; b; b; b]: asserting it forces
     the hosted route open regardless of the scan state. *)
  let rescued_originals =
    Array.mapi
      (fun m (mx : Netlist.mux) ->
        if
          options.opt_rescue_lines
          && Array.length mx.mux_inputs = 2
          && Array.length mx.mux_addr = 1
        then begin
          incr added_primary_ctrls;
          let rescue = Netlist.Ctrl_primary (Printf.sprintf "rescue_%d" m) in
          let b = mx.mux_inputs.(1) in
          {
            mx with
            Netlist.mux_inputs = [| mx.mux_inputs.(0); b; b; b |];
            mux_addr = [| mx.mux_addr.(0); rescue |];
            mux_tmr = options.opt_tmr;
            mux_rescue_from = 2;
          }
        end
        else { mx with Netlist.mux_tmr = options.opt_tmr })
      net.muxes
  in
  let segs =
    Array.init nsegs (fun i ->
        {
          (net.segs.(i)) with
          Netlist.seg_len = seg_len.(i);
          seg_shadow = seg_shadow.(i);
          seg_reset = Array.of_list seg_reset.(i);
          seg_input = seg_input.(i);
        })
  in
  let muxes =
    Array.append rescued_originals (Array.of_list (List.rev !new_muxes))
  in
  let ft =
    {
      Netlist.net_name = net.net_name ^ "_ft";
      segs;
      muxes;
      out_src = !out_src;
      select_hardened = options.opt_select_hardening;
      dual_ports = options.opt_dual_ports;
    }
  in
  (match Netlist.validate ft with
  | Ok () -> ()
  | Error e -> invalid_arg ("Synthesis.run: invalid result: " ^ e));
  (* Duplicated-port switch muxes: one per successor of the (new) root and
     one per predecessor of the (new) sink. *)
  let port_muxes =
    if options.opt_dual_ports then begin
      let g, _ = Netlist.dataflow_graph ft in
      Ftrsn_topo.Digraph.out_degree g 0 + Ftrsn_topo.Digraph.in_degree g 1
    end
    else 0
  in
  ( ft,
    {
      added_muxes = !n_new_muxes;
      port_muxes;
      added_ctrl_bits = !added_ctrl_bits;
      added_primary_ctrls = !added_primary_ctrls;
    } )
