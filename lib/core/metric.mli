(** The fault-tolerance metric (paper §III-A, evaluated in §IV-B).

    For every single stuck-at-0/1 fault in the netlist's fault universe the
    metric computes the fraction of scan segments, and of scan bits, that
    remain accessible (writable and readable), then reports the worst case
    and the fault-weighted average — the eight accessibility columns of
    Table I. *)

type result = {
  worst_segments : float;  (** min over faults of accessible-segment fraction *)
  avg_segments : float;    (** weighted average of accessible-segment fraction *)
  worst_bits : float;
  avg_bits : float;
  faults : int;            (** faults evaluated *)
  total_weight : int;
}

val evaluate :
  ?sample:int ->
  ?domains:int ->
  Ftrsn_rsn.Netlist.t ->
  result
(** [evaluate net] runs the accessibility engine over the full single
    stuck-at fault universe.  [sample:k] keeps every [k]-th fault site
    (deterministically) to bound runtime on very large networks; the
    primary scan-port faults are always retained, so the worst case of
    port-dominated networks is exact.  [domains:n] spreads the per-fault
    analyses over [n] OCaml 5 domains (worst cases merge exactly;
    averages agree with the sequential result up to floating-point
    summation order). *)

val evaluate_faults :
  Ftrsn_access.Engine.ctx -> Ftrsn_fault.Fault.t list -> result
(** The metric restricted to a given fault list (shared context). *)

val evaluate_pairs :
  ?sample:int -> Ftrsn_rsn.Netlist.t -> result
(** Double-fault study (beyond the paper's single-fault scope): evaluates
    accessibility under PAIRS of simultaneous stuck-at faults.  The pair
    universe is quadratic, so [sample] (default 37) keeps every k-th pair
    of a deterministic enumeration. *)

val pp : Format.formatter -> result -> unit
