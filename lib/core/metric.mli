(** The fault-tolerance metric (paper §III-A, evaluated in §IV-B).

    For every single stuck-at-0/1 fault in the netlist's fault universe the
    metric computes the fraction of scan segments, and of scan bits, that
    remain accessible (writable and readable), then reports the worst case
    and the fault-weighted average — the eight accessibility columns of
    Table I.

    Verdicts come from one of two engines: the structural fixpoint engine
    ({!Ftrsn_access.Engine}, the default) or the SAT-based BMC engine
    driven through incremental {!Ftrsn_bmc.Bmc.Session}s (one session per
    domain; clauses are reused across the faults a session sweeps).

    By default the fault universe is reduced before any engine runs:

    - faults with the same semantic {!Ftrsn_fault.Fault.summary} are
      collapsed into one equivalence class (the class carries the summed
      weight and member count, so the aggregates are unchanged);
    - each class verdict is computed as a cone-of-influence delta against
      the fault-free baseline — only segments the fault can disturb are
      re-analyzed ({!Ftrsn_access.Engine.analyze_delta}, or
      [Bmc.Session.check_targets ~only] for the BMC engine), the
      fault-free verdict is spliced in for the rest.

    Both reductions are exact: the reduced result is bit-identical to the
    brute-force one ([~reduce:false]) in every [result] field.  All
    accumulation is integer (min / weighted sums), divided to fractions
    once at the end, so results are also independent of evaluation order —
    which lets a work-stealing scheduler distribute faults dynamically
    over domains instead of static chunking. *)

type solver_stats = {
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_restarts : int;         (** restart-budget exhaustions *)
  s_learnt_lits : int;      (** learnt literals before minimization *)
  s_minimized_lits : int;   (** literals removed by clause minimization *)
  s_reductions : int;       (** learnt-DB reduction passes *)
  s_learnt_db : int;        (** live learnt clauses at session end (summed) *)
  s_clauses_emitted : int;  (** CNF clauses emitted into the solver(s) *)
  s_nodes_reused : int;     (** emitter memo hits: nodes NOT re-emitted *)
  s_subsumed : int;         (** clauses deleted by subsumption *)
  s_strengthened_lits : int;
      (** literals removed by self-subsuming strengthening *)
  s_eliminated_vars : int;  (** variables eliminated by BVE *)
  s_vivified_lits : int;    (** literals removed by vivification *)
  s_simp_passes : int;      (** inprocessing passes (0 with [~inprocess:false]) *)
  s_cert_unsat : int;
      (** UNSAT verdicts certified by the independent RUP checker
          (certified mode only; 0 otherwise) *)
  s_cert_lemmas : int;   (** solver derivations RUP-verified (proof size) *)
  s_cert_deletes : int;  (** proof deletion events applied *)
  s_cert_time : float;
      (** CPU seconds spent RUP-verifying (lemma checks + UNSAT
          certifications; cheap mirror/delete events are untimed) *)
}
(** Cumulative SAT statistics over every session the evaluation used;
    merging partial results sums them. *)

type reduction_stats = {
  r_universe : int;  (** faults in the (sampled) universe *)
  r_classes : int;   (** equivalence classes actually evaluated *)
  r_benign : int;    (** faults whose summary is benign (one shared class) *)
  r_cone_sum : int;  (** sum over classes of cone size, in segments *)
  r_cone_max : int;  (** largest cone *)
}
(** What the reduction layer saved: [r_universe - r_classes] engine runs
    avoided by collapsing, and an average cone of
    [r_cone_sum / r_classes] segments re-analyzed per class instead of
    all of them. *)

type pair_stats = {
  p_classes : int;      (** fault classes in the collapsed universe *)
  p_class_pairs : int;
      (** unordered class pairs examined, diagonal included:
          [p_classes * (p_classes + 1) / 2] *)
  p_diagonal : int;
      (** same-class pairs — answered by the class's single-fault verdict
          (equal summaries are idempotent in both engines) *)
  p_disjoint : int;
      (** non-interacting pairs — interaction regions disjoint and the
          mutual-support gate passed, so the pair verdict is the
          pointwise AND of the single-fault verdicts and the counts
          follow arithmetically; no fixpoint or SAT query *)
  p_stacked : int;
      (** interacting pairs — a cone delta on a secondary baseline
          (structural) or a cone-restricted SAT sweep of the merged
          summary (BMC) *)
  p_stacks : int;  (** secondary baselines actually built (structural) *)
}
(** How the exhaustive double-fault sweep dispatched the class pairs;
    [p_diagonal + p_disjoint + p_stacked = p_class_pairs]. *)

type result = {
  worst_segments : float;  (** min over faults of accessible-segment fraction *)
  avg_segments : float;    (** weighted average of accessible-segment fraction *)
  worst_bits : float;
  avg_bits : float;
  faults : int;            (** faults represented (class members included) *)
  total_weight : int;      (** sum of {!Ftrsn_fault.Fault.weight} *)
  steals : int;
      (** work items executed by a different domain than the static
          ceil-chunk split would have assigned (0 when [domains = 1]) *)
  solver : solver_stats option;
      (** [Some] iff the BMC engine produced the verdicts *)
  reduction : reduction_stats option;
      (** [Some] iff the reduction layer was used ([reduce = true]) *)
  lanes : Ftrsn_access.Engine.lane_stats option;
      (** [Some] iff the lane-parallel structural path produced the
          verdicts (structural engine, [reduce = true]): batches swept,
          lanes occupied, lanes settled at their cone seed, fast-path
          classes, fixpoint rounds.  Deterministic — a function of the
          class universe, not of scheduling. *)
  pairs : pair_stats option;
      (** [Some] iff the exhaustive reduced pair sweep produced the result *)
  pair_lanes : Ftrsn_access.Engine.lane_stats option;
      (** [Some] iff the lane-parallel stacked pair path produced the
          interacting-pair verdicts (structural exhaustive sweep with
          [lanes = true]): one entry per secondary-baseline batch swept
          by {!Ftrsn_access.Engine.analyze_lane_batch_on}, plus the
          fast-path partner deltas in [ls_fast].  Deterministic — a
          function of the class universe and the disjointness gates, not
          of scheduling. *)
}

exception Unsupported of string
(** A request outside an evaluator's semantic scope — today only
    transient ([Fault.Transient]) double faults, whose glitch pairs are
    not a set-wise union of summaries.  Typed (rather than
    [Invalid_argument]) so the service layer can map it to a stable
    error variant and exit code. *)

(** {2 Warm per-netlist state}

    The unit of reuse behind the service pool
    ({!Ftrsn_service.Pool}, which keys one [warm] per netlist): the
    expensive per-netlist artifacts — structural context, fault-free
    baseline, the full-universe class collapse and exhaustive-pair
    phase-1 probe tables (both keyed per fault model, so evaluations of
    different models never share a slot), and idle incremental BMC
    sessions — built once
    and shared by every subsequent evaluation of the same netlist.  All
    cached artifacts are deterministic functions of the netlist, so warm
    results are bit-identical to cold ones in every verdict-derived
    field; only [result.solver] differs (a reused session's statistics
    accumulate over every query it served).

    Thread-safe: construction and the session free list are guarded by a
    mutex, so concurrent evaluations of the same netlist share artifacts
    instead of racing to rebuild them. *)

type warm

val warm : Ftrsn_rsn.Netlist.t -> warm
(** An empty warm state; artifacts are built lazily on first use. *)

val warm_netlist : warm -> Ftrsn_rsn.Netlist.t

val warm_ctx : warm -> Ftrsn_access.Engine.ctx
(** The shared structural context (built on first call). *)

val warm_baseline : warm -> Ftrsn_access.Engine.baseline
(** The shared fault-free baseline (built on first call). *)

val warm_session : warm -> certify:bool -> Ftrsn_bmc.Bmc.Session.t
(** Checks an idle incremental session out of the free list (sessions
    created certified are only handed to [certify:true] callers), or
    creates one against the shared model.  The caller has exclusive use
    until {!warm_release}. *)

val warm_release : warm -> Ftrsn_bmc.Bmc.Session.t -> unit
(** Returns a checked-out session to the free list. *)

val warm_session_stats :
  warm -> (bool * Ftrsn_bmc.Bmc.Session.stats) list
(** [(certified, stats)] of each currently idle session — the service
    [stats] query's per-session solver health. *)

val evaluate :
  ?sample:int ->
  ?domains:int ->
  ?engine:[ `Structural | `Bmc ] ->
  ?reduce:bool ->
  ?certify:bool ->
  ?inprocess:bool ->
  ?model:Ftrsn_fault.Fault.model ->
  ?warm:warm ->
  Ftrsn_rsn.Netlist.t ->
  result
(** [evaluate net] runs the accessibility analysis over the full fault
    universe of [model] (default [Stuck], the paper's single stuck-at
    universe; see {!Ftrsn_fault.Fault.model} for the bridging,
    selection-control and transient universes — all of them flow through
    the same collapse / cone / lane reduction machinery and both
    engines).  [sample:k] keeps every [k]-th fault site
    (deterministically) to bound runtime on very large networks; the
    primary scan-port faults are always retained, so the worst case of
    port-dominated networks is exact.  Sampling is applied {e before}
    collapsing, so a sampled reduced run represents exactly the sampled
    universe.  [domains:n] spreads the work over [n] OCaml 5 domains
    through the work-stealing queue; results are bit-identical to the
    sequential run.  [engine] selects the verdict engine; with [`Bmc]
    each domain drives its own incremental SAT session and the result
    carries the cumulative {!solver_stats}.  [reduce] (default [true])
    enables equivalence collapsing and cone-of-influence deltas; the
    result fields are bit-identical either way, only [reduction] and the
    runtime differ.

    [certify:true] (BMC engine only; [Invalid_argument] otherwise) runs
    every session in certified mode: an independent RUP checker verifies
    the solver's DRUP proof stream and every UNSAT verdict's final
    clause inline ({!Ftrsn_bmc.Bmc.Session.create}), raising
    [Ftrsn_bmc.Bmc.Session.Certification_failed] on any rejection; the
    proof size and checking time land in the [s_cert_*] fields of
    [result.solver].

    [inprocess:false] (BMC engine; ablation) disables SAT inprocessing on
    every session the evaluation checks out — the sessions' solvers run
    without subsumption / vivification / variable elimination, and the
    [s_simp_*] / [s_subsumed] counters stay zero.  Default on.  Verdicts
    and metric values are identical either way; only speed and the
    volatile solver counters change. *)

val evaluate_faults :
  Ftrsn_access.Engine.ctx -> Ftrsn_fault.Fault.t list -> result
(** The structural metric restricted to a given fault list (shared
    context), brute-force and sequential. *)

val evaluate_faults_bmc :
  Ftrsn_bmc.Bmc.Session.t -> Ftrsn_fault.Fault.t list -> result
(** The BMC metric restricted to a given fault list, reusing the given
    incremental session (its cumulative stats are reported in
    [result.solver]). *)

val evaluate_pairs :
  ?sample:int ->
  ?fault_sample:int ->
  ?domains:int ->
  ?engine:[ `Structural | `Bmc ] ->
  ?exhaustive:bool ->
  ?reduce:bool ->
  ?certify:bool ->
  ?inprocess:bool ->
  ?lanes:bool ->
  ?model:Ftrsn_fault.Fault.model ->
  ?warm:warm ->
  Ftrsn_rsn.Netlist.t ->
  result
(** Double-fault study (beyond the paper's single-fault scope): evaluates
    accessibility under PAIRS of simultaneous faults of the given
    [model] (default [Stuck]; [Transient] raises {!Unsupported} —
    two glitches are not the set-wise union of their summaries, which
    the pair factorization rests on), each pair
    weighted by the product of its faults' weights.

    With [exhaustive:true] (and the default [reduce:true]) the FULL pair
    universe is evaluated exactly: faults are collapsed into semantic
    classes as in {!evaluate} and the sweep runs over unordered class
    pairs — diagonal pairs reuse the class's single-fault verdict;
    non-interacting pairs (disjoint interaction regions, no
    mutual-support hazard — see {!Ftrsn_access.Engine.probe}) are
    answered arithmetically from the two single-fault verdicts, whose
    pointwise AND the pair verdict provably equals; only the remaining
    interacting pairs run an engine.  On the structural engine the
    interacting pairs are lane-parallel by default ([lanes], default
    [true]): pairs are grouped by first class, each group's secondary
    baseline is built once (memoized in an LRU-bounded stack cache,
    shared with the warm state's phase-1 pair tables on full sweeps)
    and up to {!Ftrsn_access.Engine.lane_width} second classes sweep
    against it per fixpoint
    ({!Ftrsn_access.Engine.analyze_lane_batch_on}); [lanes:false] is the
    scalar ablation (one {!Ftrsn_access.Engine.analyze_delta_on} per
    pair).  The BMC engine runs a cone-restricted SAT sweep of each
    merged summary.  The result is bit-identical to the brute pair
    enumeration ([reduce:false]) — and across [lanes] — in every field,
    sequentially and for any [domains]; [result.pairs] reports the
    dispatch statistics and [result.pair_lanes] the stacked-batch lane
    statistics.

    Without [exhaustive] the quadratic universe is subsampled: [sample]
    (default 37) keeps every k-th pair of a deterministic enumeration —
    the fallback for networks whose fault universe makes even the
    class-pair count intractable.  [fault_sample] additionally thins the
    fault universe itself (as [evaluate ~sample]) before pairing, in
    either mode.

    Work is distributed over [domains] at pair granularity (brute) or,
    exhaustively, lane-batch granularity by the work-stealing queue:
    the discovery pass (gates + pure counting) steals first-class rows,
    then each secondary-baseline lane batch is one steal unit — so
    stealing never shreds a batch, and a heavy row's batches spread
    across domains instead of serializing on one ([lanes:false] falls
    back to row granularity).  Pair costs are highly skewed (port and
    trunk faults force whole-graph re-analysis), which used to leave
    the statically-chunked first domain the straggler.

    [certify] behaves as in {!evaluate} (BMC engine only). *)

val steal_map :
  domains:int ->
  'a array ->
  init:(int -> 'b) ->
  step:('b -> 'a -> unit) ->
  finish:('b -> 'c) ->
  ('c * int) list
(** The work-stealing scheduler underlying every evaluator: one shared
    atomic cursor over the item array; each of [domains] domains builds
    its private state with [init domain], folds claimed items into it
    with [step] and extracts a partial with [finish].  Returns one
    [(partial, steals)] per domain, where [steals] counts items executed
    by a different domain than a static ceil-chunk split would have
    assigned (always 0 when [domains <= 1], which runs inline without
    spawning).  Exact whenever the fold is commutative — the evaluators
    use integer accumulators so their results are bit-identical to the
    sequential fold. *)

val merge : result -> result -> result
(** Recombination of two partial results (min of worsts, weighted mean of
    averages, sums of counts, solver and reduction stats).  The averages
    recombine through floats, so prefer a single [evaluate] call when
    bit-exactness matters — the internal accumulators are integers and
    need no such recombination. *)

val pp : Format.formatter -> result -> unit

val pp_reduction_stats : Format.formatter -> reduction_stats -> unit

val pp_pair_stats : Format.formatter -> pair_stats -> unit

val pp_lane_stats :
  Format.formatter -> Ftrsn_access.Engine.lane_stats -> unit
