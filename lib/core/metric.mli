(** The fault-tolerance metric (paper §III-A, evaluated in §IV-B).

    For every single stuck-at-0/1 fault in the netlist's fault universe the
    metric computes the fraction of scan segments, and of scan bits, that
    remain accessible (writable and readable), then reports the worst case
    and the fault-weighted average — the eight accessibility columns of
    Table I.

    Verdicts come from one of two engines: the structural fixpoint engine
    ({!Ftrsn_access.Engine}, the default) or the SAT-based BMC engine
    driven through incremental {!Ftrsn_bmc.Bmc.Session}s (one session per
    domain; clauses are reused across the faults a session sweeps). *)

type solver_stats = {
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_clauses_emitted : int;  (** CNF clauses emitted into the solver(s) *)
  s_nodes_reused : int;     (** emitter memo hits: nodes NOT re-emitted *)
}
(** Cumulative SAT statistics over every session the evaluation used;
    merging partial results sums them. *)

type result = {
  worst_segments : float;  (** min over faults of accessible-segment fraction *)
  avg_segments : float;    (** weighted average of accessible-segment fraction *)
  worst_bits : float;
  avg_bits : float;
  faults : int;            (** faults evaluated *)
  total_weight : int;      (** sum of {!Ftrsn_fault.Fault.weight} *)
  solver : solver_stats option;
      (** [Some] iff the BMC engine produced the verdicts *)
}

val evaluate :
  ?sample:int ->
  ?domains:int ->
  ?engine:[ `Structural | `Bmc ] ->
  Ftrsn_rsn.Netlist.t ->
  result
(** [evaluate net] runs the accessibility analysis over the full single
    stuck-at fault universe.  [sample:k] keeps every [k]-th fault site
    (deterministically) to bound runtime on very large networks; the
    primary scan-port faults are always retained, so the worst case of
    port-dominated networks is exact.  [domains:n] spreads the per-fault
    analyses over [n] OCaml 5 domains (worst cases merge exactly;
    averages agree with the sequential result up to floating-point
    summation order).  [engine] selects the verdict engine; with [`Bmc]
    each domain drives its own incremental SAT session and the result
    carries the cumulative {!solver_stats}. *)

val evaluate_faults :
  Ftrsn_access.Engine.ctx -> Ftrsn_fault.Fault.t list -> result
(** The structural metric restricted to a given fault list (shared
    context). *)

val evaluate_faults_bmc :
  Ftrsn_bmc.Bmc.Session.t -> Ftrsn_fault.Fault.t list -> result
(** The BMC metric restricted to a given fault list, reusing the given
    incremental session (its cumulative stats are reported in
    [result.solver]). *)

val evaluate_pairs :
  ?sample:int -> ?domains:int -> Ftrsn_rsn.Netlist.t -> result
(** Double-fault study (beyond the paper's single-fault scope): evaluates
    accessibility under PAIRS of simultaneous stuck-at faults.  The pair
    universe is quadratic, so [sample] (default 37) keeps every k-th pair
    of a deterministic enumeration.  Each pair is weighted by the product
    of its faults' weights; [domains] parallelizes as in {!evaluate}. *)

val split_chunks : chunks:int -> 'a list -> 'a list list
(** Partition a list into at most [chunks] contiguous chunks of equal ceil
    size (the last may be shorter; none is empty) — the unit of work
    distribution of the [domains] options, exposed for testing.
    @raise Invalid_argument if [chunks <= 0]. *)

val merge : result -> result -> result
(** Exact recombination of two partial results (min of worsts, weighted
    mean of averages, sum of solver stats). *)

val pp : Format.formatter -> result -> unit
