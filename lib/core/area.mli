(** Gate-equivalent area model (paper §IV-C).

    The paper extracts multiplexer, flip-flop ("bits"), net and area
    figures for the original and fault-tolerant RSNs from a commercial
    logic synthesis tool and reports their ratios.  This model substitutes
    a consistent gate-equivalent (GE) accounting: since only ratios are
    reported, any consistent technology mapping preserves the comparison
    (see DESIGN.md §2).

    Conventions: a scan flip-flop (shift stage, including its shift-path
    mux) is 5 GE, a plain flip-flop (shadow or TMR replica) 4 GE, a 2:1
    multiplexer 2 GE, a majority voter 1.5 GE, plain select logic 1.5 GE
    per segment and hardened (dual-stem) select logic 4 GE per segment.
    "Bits" counts all flip-flops; "nets" counts driven wires (flip-flop
    outputs, mux outputs, address and select lines). *)

(** Technology profile: gate-equivalent weights of the primitive cells.
    Only ratios matter for Table I, but profiles make the sensitivity of
    the area column to the mapping explicit (see the `area-profile`
    ablation bench). *)
type technology = {
  ge_scan_ff : float;   (** shift stage incl. its scan path mux *)
  ge_plain_ff : float;  (** shadow / TMR replica flop *)
  ge_mux2 : float;      (** 2:1 mux; a k:1 counts (k-1) of these *)
  ge_voter : float;     (** TMR majority voter *)
  ge_select_plain : float;     (** per-segment select logic *)
  ge_select_hardened : float;  (** dual-stem select logic *)
}

val default_technology : technology
(** 5 / 4 / 2 / 1.5 / 1.5 / 4 GE. *)

val compact_technology : technology
(** A denser mapping (4 / 3 / 1.5 / 1 / 1 / 2.5 GE): smaller relative mux
    cost, used by the sensitivity bench. *)

type report = {
  muxes : int;   (** scan multiplexers, including port-switch muxes *)
  bits : int;    (** flip-flops: shift + shadow + TMR replicas *)
  nets : int;    (** driven nets *)
  area : float;  (** gate equivalents *)
}

val of_netlist :
  ?technology:technology -> ?port_muxes:int -> Ftrsn_rsn.Netlist.t -> report
(** [of_netlist net] tallies the netlist; [port_muxes] adds the duplicated
    scan-port switch muxes reported by {!Synthesis.stats} (2:1, TMR'd
    primary-controlled address). *)

type ratios = {
  r_mux : float;
  r_bits : float;
  r_nets : float;
  r_area : float;
}

val ratios : orig:report -> ft:report -> ratios
(** Fault-tolerant over original, the four rightmost Table I columns. *)

val pp : Format.formatter -> report -> unit
val pp_ratios : Format.formatter -> ratios -> unit
