module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Engine = Ftrsn_access.Engine

type result = {
  worst_segments : float;
  avg_segments : float;
  worst_bits : float;
  avg_bits : float;
  faults : int;
  total_weight : int;
}

(* Merge two partial results (weighted sums are kept internally as
   averages times weight, so recombine carefully). *)
let merge a b =
  {
    worst_segments = min a.worst_segments b.worst_segments;
    avg_segments =
      ((a.avg_segments *. float_of_int a.total_weight)
      +. (b.avg_segments *. float_of_int b.total_weight))
      /. float_of_int (a.total_weight + b.total_weight);
    worst_bits = min a.worst_bits b.worst_bits;
    avg_bits =
      ((a.avg_bits *. float_of_int a.total_weight)
      +. (b.avg_bits *. float_of_int b.total_weight))
      /. float_of_int (a.total_weight + b.total_weight);
    faults = a.faults + b.faults;
    total_weight = a.total_weight + b.total_weight;
  }

let evaluate_faults ctx faults =
  let net = Engine.netlist ctx in
  let nsegs = Netlist.num_segments net in
  let nbits = Netlist.total_bits net in
  let worst_segments = ref 1.0 and worst_bits = ref 1.0 in
  let sum_segments = ref 0.0 and sum_bits = ref 0.0 in
  let total_weight = ref 0 in
  let count = ref 0 in
  List.iter
    (fun f ->
      let v = Engine.analyze ctx (Some f) in
      let w = Fault.weight net f in
      let fs = float_of_int (Engine.accessible_count v) /. float_of_int nsegs in
      let fb = float_of_int (Engine.accessible_bits ctx v) /. float_of_int nbits in
      if fs < !worst_segments then worst_segments := fs;
      if fb < !worst_bits then worst_bits := fb;
      sum_segments := !sum_segments +. (float_of_int w *. fs);
      sum_bits := !sum_bits +. (float_of_int w *. fb);
      total_weight := !total_weight + w;
      incr count)
    faults;
  if !count = 0 then invalid_arg "Metric.evaluate_faults: empty fault list";
  {
    worst_segments = !worst_segments;
    avg_segments = !sum_segments /. float_of_int !total_weight;
    worst_bits = !worst_bits;
    avg_bits = !sum_bits /. float_of_int !total_weight;
    faults = !count;
    total_weight = !total_weight;
  }

let evaluate ?sample ?(domains = 1) net =
  let ctx = Engine.make_ctx net in
  let faults = Fault.universe net in
  let faults =
    match sample with
    | None -> faults
    | Some k when k <= 1 -> faults
    | Some k ->
        List.filteri
          (fun i f ->
            i mod k = 0
            ||
            match f.Fault.site with
            | Fault.Primary_in | Fault.Primary_out -> true
            | _ -> false)
          faults
  in
  if domains <= 1 then evaluate_faults ctx faults
  else begin
    (* The engine context is read-only during analysis, so the fault list
       can be chunked across domains; each domain evaluates its share and
       the partial results merge exactly (min for worst, weighted mean for
       averages). *)
    let n = List.length faults in
    let chunk = max 1 ((n + domains - 1) / domains) in
    let rec split i = function
      | [] -> []
      | l when i + chunk >= n -> [ l ]
      | l ->
          let rec take k acc rest =
            if k = 0 then (List.rev acc, rest)
            else
              match rest with
              | [] -> (List.rev acc, [])
              | x :: tl -> take (k - 1) (x :: acc) tl
          in
          let head, tail = take chunk [] l in
          head :: split (i + chunk) tail
    in
    let chunks = split 0 faults in
    let workers =
      List.map
        (fun fs -> Domain.spawn (fun () -> evaluate_faults ctx fs))
        chunks
    in
    match List.map Domain.join workers with
    | [] -> invalid_arg "Metric.evaluate: empty universe"
    | first :: rest -> List.fold_left merge first rest
  end

let evaluate_pairs ?(sample = 37) net =
  let ctx = Engine.make_ctx net in
  let faults = Array.of_list (Fault.universe net) in
  let n = Array.length faults in
  let nsegs = Netlist.num_segments net in
  let nbits = Netlist.total_bits net in
  let worst_segments = ref 1.0 and worst_bits = ref 1.0 in
  let sum_segments = ref 0.0 and sum_bits = ref 0.0 in
  let count = ref 0 in
  let idx = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !idx mod sample = 0 then begin
        let v = Engine.analyze_multi ctx [ faults.(i); faults.(j) ] in
        let fs =
          float_of_int (Engine.accessible_count v) /. float_of_int nsegs
        in
        let fb =
          float_of_int (Engine.accessible_bits ctx v) /. float_of_int nbits
        in
        if fs < !worst_segments then worst_segments := fs;
        if fb < !worst_bits then worst_bits := fb;
        sum_segments := !sum_segments +. fs;
        sum_bits := !sum_bits +. fb;
        incr count
      end;
      incr idx
    done
  done;
  if !count = 0 then invalid_arg "Metric.evaluate_pairs: empty";
  {
    worst_segments = !worst_segments;
    avg_segments = !sum_segments /. float_of_int !count;
    worst_bits = !worst_bits;
    avg_bits = !sum_bits /. float_of_int !count;
    faults = !count;
    total_weight = !count;
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>segments: worst %.3f avg %.4f@,bits: worst %.3f avg %.4f@,(%d faults, weight %d)@]"
    r.worst_segments r.avg_segments r.worst_bits r.avg_bits r.faults
    r.total_weight
