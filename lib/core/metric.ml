module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Engine = Ftrsn_access.Engine
module Bmc = Ftrsn_bmc.Bmc
module Solver = Ftrsn_sat.Solver
module Bitset = Ftrsn_topo.Bitset

type solver_stats = {
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_restarts : int;
  s_learnt_lits : int;
  s_minimized_lits : int;
  s_reductions : int;
  s_learnt_db : int;
  s_clauses_emitted : int;
  s_nodes_reused : int;
  (* inprocessing counters; all zero with --no-inprocess *)
  s_subsumed : int;
  s_strengthened_lits : int;
  s_eliminated_vars : int;
  s_vivified_lits : int;
  s_simp_passes : int;
  (* certified-mode counters; all zero when certification was off *)
  s_cert_unsat : int;
  s_cert_lemmas : int;
  s_cert_deletes : int;
  s_cert_time : float;
}

type reduction_stats = {
  r_universe : int;
  r_classes : int;
  r_benign : int;
  r_cone_sum : int;
  r_cone_max : int;
}

type pair_stats = {
  p_classes : int;      (* fault classes in the collapsed universe *)
  p_class_pairs : int;  (* unordered class pairs examined (incl. diagonal) *)
  p_diagonal : int;     (* same-class pairs: answered by the single verdict *)
  p_disjoint : int;     (* non-interacting pairs: pointwise-AND counting *)
  p_stacked : int;      (* interacting pairs: delta on a secondary baseline *)
  p_stacks : int;       (* secondary baselines built *)
}

type result = {
  worst_segments : float;
  avg_segments : float;
  worst_bits : float;
  avg_bits : float;
  faults : int;
  total_weight : int;
  steals : int;
  solver : solver_stats option;
  reduction : reduction_stats option;
  lanes : Engine.lane_stats option;
  pairs : pair_stats option;
  pair_lanes : Engine.lane_stats option;
}

(* Typed rejection for requests outside an evaluator's semantic scope
   (transient double faults: two glitches are not a set-wise union of
   summaries).  Distinct from [Invalid_argument] — which stays reserved
   for caller bugs like empty fault lists — so the service layer can map
   it to a stable error variant instead of an internal error. *)
exception Unsupported of string

let merge_solver a b =
  match (a, b) with
  | None, s | s, None -> s
  | Some x, Some y ->
      Some
        {
          s_conflicts = x.s_conflicts + y.s_conflicts;
          s_decisions = x.s_decisions + y.s_decisions;
          s_propagations = x.s_propagations + y.s_propagations;
          s_restarts = x.s_restarts + y.s_restarts;
          s_learnt_lits = x.s_learnt_lits + y.s_learnt_lits;
          s_minimized_lits = x.s_minimized_lits + y.s_minimized_lits;
          s_reductions = x.s_reductions + y.s_reductions;
          s_learnt_db = x.s_learnt_db + y.s_learnt_db;
          s_clauses_emitted = x.s_clauses_emitted + y.s_clauses_emitted;
          s_nodes_reused = x.s_nodes_reused + y.s_nodes_reused;
          s_subsumed = x.s_subsumed + y.s_subsumed;
          s_strengthened_lits = x.s_strengthened_lits + y.s_strengthened_lits;
          s_eliminated_vars = x.s_eliminated_vars + y.s_eliminated_vars;
          s_vivified_lits = x.s_vivified_lits + y.s_vivified_lits;
          s_simp_passes = x.s_simp_passes + y.s_simp_passes;
          s_cert_unsat = x.s_cert_unsat + y.s_cert_unsat;
          s_cert_lemmas = x.s_cert_lemmas + y.s_cert_lemmas;
          s_cert_deletes = x.s_cert_deletes + y.s_cert_deletes;
          s_cert_time = x.s_cert_time +. y.s_cert_time;
        }

let merge_reduction a b =
  match (a, b) with
  | None, r | r, None -> r
  | Some x, Some y ->
      Some
        {
          r_universe = x.r_universe + y.r_universe;
          r_classes = x.r_classes + y.r_classes;
          r_benign = x.r_benign + y.r_benign;
          r_cone_sum = x.r_cone_sum + y.r_cone_sum;
          r_cone_max = max x.r_cone_max y.r_cone_max;
        }

let merge_lanes a b =
  match (a, b) with
  | None, l | l, None -> l
  | Some x, Some y -> Some (Engine.lane_stats_add x y)

let merge_pairs a b =
  match (a, b) with
  | None, p | p, None -> p
  | Some x, Some y ->
      Some
        {
          p_classes = x.p_classes + y.p_classes;
          p_class_pairs = x.p_class_pairs + y.p_class_pairs;
          p_diagonal = x.p_diagonal + y.p_diagonal;
          p_disjoint = x.p_disjoint + y.p_disjoint;
          p_stacked = x.p_stacked + y.p_stacked;
          p_stacks = x.p_stacks + y.p_stacks;
        }

(* Merge two partial results (weighted sums are kept internally as
   averages times weight, so recombine carefully).  The evaluation paths
   below merge their integer accumulators instead, which is exact; this
   float-level recombination is kept for callers composing finished
   results. *)
let merge a b =
  {
    worst_segments = min a.worst_segments b.worst_segments;
    avg_segments =
      ((a.avg_segments *. float_of_int a.total_weight)
      +. (b.avg_segments *. float_of_int b.total_weight))
      /. float_of_int (a.total_weight + b.total_weight);
    worst_bits = min a.worst_bits b.worst_bits;
    avg_bits =
      ((a.avg_bits *. float_of_int a.total_weight)
      +. (b.avg_bits *. float_of_int b.total_weight))
      /. float_of_int (a.total_weight + b.total_weight);
    faults = a.faults + b.faults;
    total_weight = a.total_weight + b.total_weight;
    steals = a.steals + b.steals;
    solver = merge_solver a.solver b.solver;
    reduction = merge_reduction a.reduction b.reduction;
    lanes = merge_lanes a.lanes b.lanes;
    pairs = merge_pairs a.pairs b.pairs;
    pair_lanes = merge_lanes a.pair_lanes b.pair_lanes;
  }

(* Integer accumulation of per-fault accessible counts.  All fields are
   exact integers folded with commutative operations (min / sum), so the
   final result is bit-identical however the faults are partitioned or
   interleaved across domains — the property that lets the dynamic
   scheduler reorder work freely and the collapsed classes stand in for
   their members.  The single float division happens once at the end. *)
type iacc = {
  mutable a_min_segs : int;
  mutable a_min_bits : int;
  mutable a_sum_segs : int;  (* sum of weight * accessible segments *)
  mutable a_sum_bits : int;  (* sum of weight * accessible bits *)
  mutable a_weight : int;
  mutable a_count : int;
}

let iacc_create () =
  {
    a_min_segs = max_int;
    a_min_bits = max_int;
    a_sum_segs = 0;
    a_sum_bits = 0;
    a_weight = 0;
    a_count = 0;
  }

let iacc_add acc ~w ~n ~segs ~bits =
  if segs < acc.a_min_segs then acc.a_min_segs <- segs;
  if bits < acc.a_min_bits then acc.a_min_bits <- bits;
  acc.a_sum_segs <- acc.a_sum_segs + (w * segs);
  acc.a_sum_bits <- acc.a_sum_bits + (w * bits);
  acc.a_weight <- acc.a_weight + w;
  acc.a_count <- acc.a_count + n

let iacc_merge a b =
  a.a_min_segs <- min a.a_min_segs b.a_min_segs;
  a.a_min_bits <- min a.a_min_bits b.a_min_bits;
  a.a_sum_segs <- a.a_sum_segs + b.a_sum_segs;
  a.a_sum_bits <- a.a_sum_bits + b.a_sum_bits;
  a.a_weight <- a.a_weight + b.a_weight;
  a.a_count <- a.a_count + b.a_count

let iacc_result ?(pairs = None) ?(lanes = None) ?(pair_lanes = None) ~what
    ~nsegs ~nbits ~steals ~solver ~reduction acc =
  if acc.a_count = 0 then invalid_arg (what ^ ": empty fault list");
  let fsegs = float_of_int nsegs and fbits = float_of_int nbits in
  let fweight = float_of_int acc.a_weight in
  {
    worst_segments = float_of_int acc.a_min_segs /. fsegs;
    avg_segments = float_of_int acc.a_sum_segs /. (fweight *. fsegs);
    worst_bits = float_of_int acc.a_min_bits /. fbits;
    avg_bits = float_of_int acc.a_sum_bits /. (fweight *. fbits);
    faults = acc.a_count;
    total_weight = acc.a_weight;
    steals;
    solver;
    reduction;
    lanes;
    pairs;
    pair_lanes;
  }

(* ---- dynamic work-stealing scheduler ----

   One shared atomic cursor over the item array; every domain claims the
   next unclaimed item until exhaustion, so an expensive item (a trunk
   fault, a slow SAT query) delays only the domain it runs on while the
   others drain the rest of the queue.  An item counts as stolen when it
   lands on a different domain than the static ceil-chunk split would
   have assigned.  [init] builds each domain's private worker state
   (engine context or SAT session), [step] folds one item into it and
   [finish] extracts the partial result; partials merge exactly because
   the accumulators are integers. *)
let steal_map ~domains items ~init ~step ~finish =
  let n = Array.length items in
  let next = Atomic.make 0 in
  let chunk = if domains <= 1 then max n 1 else (n + domains - 1) / domains in
  let run d () =
    let st = init d in
    let steals = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue_ := false
      else begin
        if i / chunk <> d then incr steals;
        step st items.(i)
      end
    done;
    (finish st, !steals)
  in
  if domains <= 1 then [ run 0 () ]
  else
    List.map Domain.join
      (List.init domains (fun d -> Domain.spawn (run d)))

let count_verdict net v =
  let segs = ref 0 and bits = ref 0 in
  Array.iteri
    (fun i ok ->
      if ok then begin
        incr segs;
        bits := !bits + Netlist.seg_len net i
      end)
    v.Engine.accessible;
  (!segs, !bits)

let count_bmc net vs =
  let segs = ref 0 and bits = ref 0 in
  Array.iteri
    (fun i v ->
      match v with
      | Bmc.Accessible _ ->
          incr segs;
          bits := !bits + Netlist.seg_len net i
      | Bmc.Inaccessible -> ())
    vs;
  (!segs, !bits)

let solver_of_session sess =
  let st = Bmc.Session.stats sess in
  let cu, cl, cd, ct =
    match st.Bmc.Session.cert with
    | None -> (0, 0, 0, 0.0)
    | Some c ->
        ( c.Bmc.Session.cert_unsat, c.Bmc.Session.cert_lemmas,
          c.Bmc.Session.cert_deletes, c.Bmc.Session.cert_time )
  in
  Some
    {
      s_conflicts = st.Bmc.Session.conflicts;
      s_decisions = st.Bmc.Session.decisions;
      s_propagations = st.Bmc.Session.propagations;
      s_restarts = st.Bmc.Session.restarts;
      s_learnt_lits = st.Bmc.Session.learnt_lits;
      s_minimized_lits = st.Bmc.Session.minimized_lits;
      s_reductions = st.Bmc.Session.reductions;
      s_learnt_db = st.Bmc.Session.learnt_db;
      s_clauses_emitted = st.Bmc.Session.clauses_emitted;
      s_nodes_reused = st.Bmc.Session.nodes_reused;
      s_subsumed = st.Bmc.Session.subsumed;
      s_strengthened_lits = st.Bmc.Session.strengthened_lits;
      s_eliminated_vars = st.Bmc.Session.eliminated_vars;
      s_vivified_lits = st.Bmc.Session.vivified_lits;
      s_simp_passes = st.Bmc.Session.simp_passes;
      s_cert_unsat = cu;
      s_cert_lemmas = cl;
      s_cert_deletes = cd;
      s_cert_time = ct;
    }

(* Per-class data shared by both exhaustive pair engines (filled by their
   phase 1; the full definition is documented at the pair sweep below).
   Declared here so the warm per-netlist state can cache it. *)
type pair_prep = {
  pq_sms : Fault.summary array;
  pq_cones : Bitset.t array;
  pq_regions : Bitset.t array;
  pq_wlost : Bitset.t array;
  pq_fragile : Bitset.t array;
  pq_supp : Bitset.t array;
  pq_supp_edges : Bitset.t array;
  pq_dead_edges : Bitset.t array;
  pq_dmg : Bitset.t array;
  pq_rhosts : Bitset.t array;
  pq_members : int array;
  pq_weight : int array;
  pq_sq : int array;
  pq_segs : int array;
  pq_bits : int array;
  pq_acc : Bitset.t array;
  pq_lost : int array array;
  pq_len : int array;
}

(* ---- warm per-netlist state ----

   The unit of reuse behind the service pool (Ftrsn_service.Pool): the
   expensive per-netlist artifacts — structural context, fault-free
   baseline, the full-universe class collapse, the exhaustive-pair
   phase-1 probe tables, and idle incremental BMC sessions — built once
   and shared by every subsequent evaluation of the same netlist.  All
   cached artifacts are deterministic functions of the netlist, so warm
   results are bit-identical to cold ones; only solver statistics (which
   accumulate across the queries a reused session served) differ.

   Thread-safe: one mutex guards construction and the session free list,
   so concurrent evaluations of the same netlist share artifacts instead
   of racing to rebuild them.  Sessions are checked out exclusively and
   returned when the evaluation finishes. *)
(* ---- memoized secondary-baseline (stack) cache ----

   The lane-parallel pair sweep builds each interacting row's stacked
   baseline ONCE and sweeps lane batches of second summaries against it.
   Because the steal units are lane batches (not whole rows), several
   items of the same row — and, across domains, of neighbouring rows —
   need the same stack: a small LRU-bounded, single-flight cache keyed
   by first-class index serves them.  The steal cursor claims items in
   array order, so the working set at any instant is about one stack per
   domain and [stack_cache_cap] is generous; a warm state keeps the
   per-model cache across evaluations, so repeated exhaustive sweeps
   skip the stack builds the way they already skip phase 1. *)

type stack_slot = Stk_built of Engine.stacked | Stk_building

type stack_cache = {
  sc_lock : Mutex.t;
  sc_cond : Condition.t;  (* signalled when a build completes or fails *)
  sc_cap : int;
  mutable sc_tick : int;  (* LRU clock *)
  sc_tbl : (int, stack_slot * int ref) Hashtbl.t;
}

let stack_cache_cap = 64

let stack_cache () =
  {
    sc_lock = Mutex.create ();
    sc_cond = Condition.create ();
    sc_cap = stack_cache_cap;
    sc_tick = 0;
    sc_tbl = Hashtbl.create 64;
  }

(* [stack_cached sc build i] returns class [i]'s secondary baseline and
   whether this call actually built it (the caller's [ps_stacks]
   attribution).  Single-flight: a concurrent request for a stack being
   built waits on the condition variable instead of duplicating the
   fixpoint; eviction only ever removes settled entries. *)
let stack_cached sc build i =
  Mutex.lock sc.sc_lock;
  let rec get () =
    match Hashtbl.find_opt sc.sc_tbl i with
    | Some (Stk_built s, tick) ->
        sc.sc_tick <- sc.sc_tick + 1;
        tick := sc.sc_tick;
        Mutex.unlock sc.sc_lock;
        (s, false)
    | Some (Stk_building, _) ->
        Condition.wait sc.sc_cond sc.sc_lock;
        get ()
    | None ->
        Hashtbl.replace sc.sc_tbl i (Stk_building, ref 0);
        Mutex.unlock sc.sc_lock;
        let s =
          try build i
          with e ->
            Mutex.lock sc.sc_lock;
            Hashtbl.remove sc.sc_tbl i;
            Condition.broadcast sc.sc_cond;
            Mutex.unlock sc.sc_lock;
            raise e
        in
        Mutex.lock sc.sc_lock;
        sc.sc_tick <- sc.sc_tick + 1;
        Hashtbl.replace sc.sc_tbl i (Stk_built s, ref sc.sc_tick);
        if Hashtbl.length sc.sc_tbl > sc.sc_cap then begin
          let victim = ref (-1) and best = ref max_int in
          Hashtbl.iter
            (fun k (slot, tick) ->
              match slot with
              | Stk_built _ when k <> i && !tick < !best ->
                  victim := k;
                  best := !tick
              | _ -> ())
            sc.sc_tbl;
          if !victim >= 0 then Hashtbl.remove sc.sc_tbl !victim
        end;
        Condition.broadcast sc.sc_cond;
        Mutex.unlock sc.sc_lock;
        (s, true)
  in
  get ()

type warm = {
  w_net : Netlist.t;
  w_lock : Mutex.t;
  mutable w_ctx : Engine.ctx option;
  mutable w_base : Engine.baseline option;
  mutable w_model : Bmc.t option;
  mutable w_classes : (Fault.model * Fault.clas array) list;
      (* one collapsed full universe per fault model; models never share a
         slot, so a bridge evaluation can't serve select classes *)
  mutable w_pair_prep : (Fault.model * (Fault.clas array * pair_prep)) list;
  mutable w_pair_stacks : (Fault.model * stack_cache) list;
      (* per-model secondary-baseline caches for the full universe,
         shared with [w_pair_prep]'s phase-1 tables: the cached class
         indices refer to the cached class array *)
  mutable w_idle : (bool * Bmc.Session.t) list;  (* (certified, session) *)
}

let warm net =
  {
    w_net = net;
    w_lock = Mutex.create ();
    w_ctx = None;
    w_base = None;
    w_model = None;
    w_classes = [];
    w_pair_prep = [];
    w_pair_stacks = [];
    w_idle = [];
  }

let locked w f =
  Mutex.lock w.w_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.w_lock) f

let warm_netlist w = w.w_net

let warm_ctx w =
  locked w (fun () ->
      match w.w_ctx with
      | Some c -> c
      | None ->
          let c = Engine.make_ctx w.w_net in
          w.w_ctx <- Some c;
          c)

let warm_baseline w =
  let ctx = warm_ctx w in
  locked w (fun () ->
      match w.w_base with
      | Some b -> b
      | None ->
          let b = Engine.baseline ctx in
          w.w_base <- Some b;
          b)

let warm_classes w ~model =
  locked w (fun () ->
      match List.assoc_opt model w.w_classes with
      | Some c -> c
      | None ->
          let c =
            Array.of_list
              (Fault.collapse w.w_net (Fault.universe ~model w.w_net))
          in
          w.w_classes <- (model, c) :: w.w_classes;
          c)

let warm_model w =
  locked w (fun () ->
      match w.w_model with
      | Some m -> m
      | None ->
          let m = Bmc.create w.w_net in
          w.w_model <- Some m;
          m)

let warm_session w ~certify =
  let model = warm_model w in
  locked w (fun () ->
      let rec take acc = function
        | [] -> (None, List.rev acc)
        | (c, s) :: rest when c = certify -> (Some s, List.rev_append acc rest)
        | x :: rest -> take (x :: acc) rest
      in
      match take [] w.w_idle with
      | Some s, rest ->
          w.w_idle <- rest;
          s
      | None, _ -> Bmc.Session.create ~certify model)

let warm_release w sess =
  locked w (fun () ->
      w.w_idle <- (Bmc.Session.certified sess, sess) :: w.w_idle)

let warm_session_stats w =
  locked w (fun () ->
      List.map (fun (cert, s) -> (cert, Bmc.Session.stats s)) w.w_idle)

(* Resolution of per-evaluation resources against an optional warm state:
   without one, behave exactly as before (build fresh, discard). *)
let ctx_of warm net =
  match warm with Some w -> warm_ctx w | None -> Engine.make_ctx net

let base_of warm ctx =
  match warm with Some w -> warm_baseline w | None -> Engine.baseline ctx

let classes_of warm ~full ~model net faults =
  match warm with
  | Some w when full -> warm_classes w ~model
  | _ -> Array.of_list (Fault.collapse net faults)

let session_of ?(inprocess = true) warm ~certify net =
  let sess =
    match warm with
    | Some w -> warm_session w ~certify
    | None -> Bmc.Session.create ~certify (Bmc.create net)
  in
  (* Pooled sessions may carry the previous caller's setting; (re)apply
     the ablation switch on every checkout so it is per-evaluation. *)
  Solver.set_inprocess (Bmc.Session.solver sess) inprocess;
  sess

let release_session warm sess =
  match warm with Some w -> warm_release w sess | None -> ()

let check_warm warm net what =
  match warm with
  | Some w when w.w_net != net ->
      invalid_arg (what ^ ": warm state built for a different netlist")
  | _ -> ()

let evaluate_faults ctx faults =
  let net = Engine.netlist ctx in
  let acc = iacc_create () in
  List.iter
    (fun f ->
      let v = Engine.analyze ctx (Some f) in
      let segs, bits = count_verdict net v in
      iacc_add acc ~w:(Fault.weight net f) ~n:1 ~segs ~bits)
    faults;
  iacc_result ~what:"Metric.evaluate_faults" ~nsegs:(Netlist.num_segments net)
    ~nbits:(Netlist.total_bits net) ~steals:0 ~solver:None ~reduction:None acc

let evaluate_faults_bmc sess faults =
  let net = Bmc.netlist (Bmc.Session.model sess) in
  let nsegs = Netlist.num_segments net in
  let targets = List.init nsegs Fun.id in
  let acc = iacc_create () in
  List.iter
    (fun f ->
      let vs = Bmc.Session.check_targets sess ~fault:f targets in
      let segs, bits = count_bmc net vs in
      iacc_add acc ~w:(Fault.weight net f) ~n:1 ~segs ~bits)
    faults;
  iacc_result ~what:"Metric.evaluate_faults_bmc" ~nsegs
    ~nbits:(Netlist.total_bits net) ~steals:0
    ~solver:(solver_of_session sess) ~reduction:None acc

(* Per-domain partial of the collapsed paths: accumulator plus the cone
   statistics the domain observed. *)
type red_state = {
  rs_acc : iacc;
  mutable rs_cone_sum : int;
  mutable rs_cone_max : int;
  mutable rs_lanes : Engine.lane_stats option;
      (* lane-batch statistics this domain observed; [None] on the
         evaluation paths that don't run lane sweeps (BMC) *)
}

let red_state () =
  { rs_acc = iacc_create (); rs_cone_sum = 0; rs_cone_max = 0; rs_lanes = None }

let red_note rs cone =
  rs.rs_cone_sum <- rs.rs_cone_sum + cone;
  if cone > rs.rs_cone_max then rs.rs_cone_max <- cone

let red_lanes rs st = rs.rs_lanes <- merge_lanes rs.rs_lanes (Some st)

let finish_partials ~what ~net ~universe ~classes ~benign partials =
  let acc = iacc_create () in
  let steals = ref 0 and cone_sum = ref 0 and cone_max = ref 0 in
  let solver = ref None and lanes = ref None in
  List.iter
    (fun ((rs, sv), st) ->
      iacc_merge acc rs.rs_acc;
      steals := !steals + st;
      cone_sum := !cone_sum + rs.rs_cone_sum;
      if rs.rs_cone_max > !cone_max then cone_max := rs.rs_cone_max;
      lanes := merge_lanes !lanes rs.rs_lanes;
      solver := merge_solver !solver sv)
    partials;
  let reduction =
    Some
      {
        r_universe = universe;
        r_classes = classes;
        r_benign = benign;
        r_cone_sum = !cone_sum;
        r_cone_max = !cone_max;
      }
  in
  iacc_result ~lanes:!lanes ~what ~nsegs:(Netlist.num_segments net)
    ~nbits:(Netlist.total_bits net) ~steals:!steals ~solver:!solver ~reduction
    acc

let class_counts classes =
  Array.fold_left
    (fun (total, benign) (c : Fault.clas) ->
      let members = List.length c.Fault.cls_members in
      ( total + members,
        if Fault.summary_benign c.Fault.cls_summary then benign + members
        else benign ))
    (0, 0) classes

(* Full-universe evaluation through the reduction layer: equivalence
   classes stand in for their members (weights already summed by
   {!Fault.collapse}) and the class verdicts come from lane-parallel
   batch sweeps — up to [Engine.lane_width] classes share one seeded
   fixpoint ([Engine.analyze_lane_batch], bit-identical per lane to the
   scalar [Engine.analyze_delta]); the classes the scalar fast paths
   answer in O(1) never occupy a lane and are folded in chunks.  One
   batch (or one fast chunk) is one steal unit of the work-stealing
   queue, and the accumulators are integers, so the result stays
   bit-identical however the items land on domains.  Context and
   baseline are immutable after construction, so all domains share
   them. *)
type lane_item = L_fast of int array | L_batch of int array

let lane_fast_chunk = 256

let lane_items base sms =
  let fast, batches = Engine.lane_plan base sms in
  let rec chunks acc l =
    if l = [] then List.rev acc
    else
      let rec take n acc' l =
        match l with
        | x :: rest when n > 0 -> take (n - 1) (x :: acc') rest
        | _ -> (List.rev acc', l)
      in
      let c, rest = take lane_fast_chunk [] l in
      chunks (L_fast (Array.of_list c) :: acc) rest
  in
  Array.of_list
    (List.map (fun b -> L_batch b) batches @ chunks [] fast)

let lane_step ctx base net classes sms rs = function
  | L_fast idxs ->
      red_lanes rs
        { Engine.lane_stats_zero with Engine.ls_fast = Array.length idxs };
      Array.iter
        (fun i ->
          let c : Fault.clas = classes.(i) in
          let v, cone = Engine.analyze_delta ctx base sms.(i) in
          red_note rs cone;
          let segs, bits = count_verdict net v in
          iacc_add rs.rs_acc ~w:c.Fault.cls_weight
            ~n:(List.length c.Fault.cls_members)
            ~segs ~bits)
        idxs
  | L_batch idxs ->
      let batch = Array.map (fun i -> sms.(i)) idxs in
      let vs, st = Engine.analyze_lane_batch ctx base batch in
      red_lanes rs st;
      Array.iteri
        (fun j i ->
          let c : Fault.clas = classes.(i) in
          let v, cone = vs.(j) in
          red_note rs cone;
          let segs, bits = count_verdict net v in
          iacc_add rs.rs_acc ~w:c.Fault.cls_weight
            ~n:(List.length c.Fault.cls_members)
            ~segs ~bits)
        idxs

let evaluate_reduced_structural ~domains ?warm ~full ~model net faults =
  let ctx = ctx_of warm net in
  let base = base_of warm ctx in
  let classes = classes_of warm ~full ~model net faults in
  let universe, benign = class_counts classes in
  let sms = Array.map (fun c -> c.Fault.cls_summary) classes in
  let items = lane_items base sms in
  let partials =
    steal_map ~domains items
      ~init:(fun _ -> red_state ())
      ~step:(lane_step ctx base net classes sms)
      ~finish:(fun rs -> (rs, None))
  in
  finish_partials ~what:"Metric.evaluate" ~net ~universe
    ~classes:(Array.length classes) ~benign partials

(* The BMC variant: per-domain incremental session, fault-free verdicts
   established once per session, then each non-benign class re-checks only
   the targets inside its cone ([Session.check_targets ~only]) with the
   fault-free verdict spliced in for the rest.  The structural baseline
   supplies the cones; the SAT solver supplies the verdicts. *)
let evaluate_reduced_bmc ~domains ~certify ~inprocess ?warm ~full ~model net
    faults =
  let ctx = ctx_of warm net in
  let base = base_of warm ctx in
  let classes = classes_of warm ~full ~model net faults in
  let universe, benign = class_counts classes in
  let nsegs = Netlist.num_segments net in
  let targets = List.init nsegs Fun.id in
  let partials =
    steal_map ~domains classes
      ~init:(fun _ ->
        let sess = session_of ~inprocess warm ~certify net in
        let base_vs = Bmc.Session.check_targets_base sess targets in
        (sess, base_vs, red_state ()))
      ~step:(fun (sess, base_vs, rs) (c : Fault.clas) ->
        let n = List.length c.Fault.cls_members in
        if Fault.summary_benign c.Fault.cls_summary then begin
          red_note rs 0;
          let segs, bits = count_bmc net base_vs in
          iacc_add rs.rs_acc ~w:c.Fault.cls_weight ~n ~segs ~bits
        end
        else begin
          let cone =
            match Engine.cone ctx base c.Fault.cls_summary with
            | Some cs -> cs
            | None -> Bitset.create nsegs (* unreachable: benign handled *)
          in
          red_note rs (Bitset.cardinal cone);
          let vs =
            Bmc.Session.check_targets sess ~fault:c.Fault.cls_rep
              ~only:(Bitset.mem cone)
              ~fallback:(fun t -> base_vs.(t))
              targets
          in
          let segs, bits = count_bmc net vs in
          iacc_add rs.rs_acc ~w:c.Fault.cls_weight ~n ~segs ~bits
        end)
      ~finish:(fun (sess, _, rs) ->
        let sv = solver_of_session sess in
        release_session warm sess;
        (rs, sv))
  in
  finish_partials ~what:"Metric.evaluate" ~net ~universe
    ~classes:(Array.length classes) ~benign partials

let evaluate_brute_structural ~domains ?warm net faults =
  let items = Array.of_list faults in
  (* With a warm state the (read-only during analysis) context is shared
     across domains instead of rebuilt per domain. *)
  let shared = Option.map warm_ctx warm in
  let partials =
    steal_map ~domains items
      ~init:(fun _ ->
        ( (match shared with Some c -> c | None -> Engine.make_ctx net),
          iacc_create () ))
      ~step:(fun (ctx, acc) f ->
        let v = Engine.analyze ctx (Some f) in
        let segs, bits = count_verdict net v in
        iacc_add acc ~w:(Fault.weight net f) ~n:1 ~segs ~bits)
      ~finish:(fun (_, acc) -> acc)
  in
  let acc = iacc_create () in
  let steals = ref 0 in
  List.iter
    (fun (a, st) ->
      iacc_merge acc a;
      steals := !steals + st)
    partials;
  iacc_result ~what:"Metric.evaluate" ~nsegs:(Netlist.num_segments net)
    ~nbits:(Netlist.total_bits net) ~steals:!steals ~solver:None
    ~reduction:None acc

let evaluate_brute_bmc ~domains ~certify ~inprocess ?warm net faults =
  let items = Array.of_list faults in
  let nsegs = Netlist.num_segments net in
  let targets = List.init nsegs Fun.id in
  let partials =
    steal_map ~domains items
      ~init:(fun _ ->
        (session_of ~inprocess warm ~certify net, iacc_create ()))
      ~step:(fun (sess, acc) f ->
        let vs = Bmc.Session.check_targets sess ~fault:f targets in
        let segs, bits = count_bmc net vs in
        iacc_add acc ~w:(Fault.weight net f) ~n:1 ~segs ~bits)
      ~finish:(fun (sess, acc) ->
        let sv = solver_of_session sess in
        release_session warm sess;
        (acc, sv))
  in
  let acc = iacc_create () in
  let steals = ref 0 and solver = ref None in
  List.iter
    (fun ((a, sv), st) ->
      iacc_merge acc a;
      steals := !steals + st;
      solver := merge_solver !solver sv)
    partials;
  iacc_result ~what:"Metric.evaluate" ~nsegs ~nbits:(Netlist.total_bits net)
    ~steals:!steals ~solver:!solver ~reduction:None acc

let sample_faults sample faults =
  match sample with
  | None -> faults
  | Some k when k <= 1 -> faults
  | Some k ->
      List.filteri
        (fun i f ->
          i mod k = 0
          ||
          match f.Fault.site with
          | Fault.Primary_in | Fault.Primary_out -> true
          | _ -> false)
        faults

let evaluate ?sample ?(domains = 1) ?(engine = `Structural) ?(reduce = true)
    ?(certify = false) ?(inprocess = true) ?(model = Fault.Stuck) ?warm net =
  if certify && engine <> `Bmc then
    invalid_arg "Metric.evaluate: ~certify:true requires ~engine:`Bmc";
  check_warm warm net "Metric.evaluate";
  let full = match sample with None -> true | Some k -> k <= 1 in
  let faults = sample_faults sample (Fault.universe ~model net) in
  match (engine, reduce) with
  | `Structural, true ->
      evaluate_reduced_structural ~domains ?warm ~full ~model net faults
  | `Structural, false -> evaluate_brute_structural ~domains ?warm net faults
  | `Bmc, true ->
      evaluate_reduced_bmc ~domains ~certify ~inprocess ?warm ~full ~model net
        faults
  | `Bmc, false ->
      evaluate_brute_bmc ~domains ~certify ~inprocess ?warm net faults

(* ---- double-fault sweeps ----

   A pair verdict depends only on the two faults' canonical summaries, so
   the exhaustive sweep runs over unordered CLASS pairs with product
   weights instead of fault pairs.  Per class pair (i, j):

   - diagonal (i = j): duplicated semantic effects are idempotent in both
     engines, so every member pair of the class shares the class's own
     single-fault verdict — m*(m-1)/2 pairs answered by a lookup;
   - disjoint interaction regions and no mutual-support hazard
     ({!Engine.probe}'s region + fragility gate): the pair verdict is
     the pointwise AND of the two single-fault verdicts, so the pair's
     counts follow from the single-fault results and the (small) list of
     segments the partner lost — O(min lost), no fixpoint;
   - interacting regions: the first class's faulty state is computed once
     per row as a secondary baseline ({!Engine.stack}) and the second
     summary's cone delta runs on top ({!Engine.analyze_delta_on}).

   Everything is integer-exact, so the sweep is bit-identical to the brute
   pair enumeration, sequentially and across domains. *)

(* Deterministic enumeration of every [sample]-th unordered fault pair,
   generated straight into the result array (at millions of pairs the
   intermediate list was measurable garbage). *)
let pair_items ~sample faults =
  let n = Array.length faults in
  let total = n * (n - 1) / 2 in
  let count = (total + sample - 1) / sample in
  if count = 0 then [||]
  else begin
    let items = Array.make count (faults.(0), faults.(0)) in
    let idx = ref 0 and pos = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if !idx mod sample = 0 then begin
          items.(!pos) <- (faults.(i), faults.(j));
          incr pos
        end;
        incr idx
      done
    done;
    items
  end

let evaluate_pairs_brute ~sample ~domains ~engine ~certify ~inprocess ?warm
    net faults =
  let faults = Array.of_list faults in
  let items = pair_items ~sample faults in
  if Array.length items = 0 then invalid_arg "Metric.evaluate_pairs: empty";
  let nsegs = Netlist.num_segments net in
  let acc = iacc_create () in
  let steals = ref 0 and solver = ref None in
  let collect fold partials =
    List.iter
      (fun (st, s) ->
        fold st;
        steals := !steals + s)
      partials
  in
  (match engine with
  | `Structural ->
      (* The context is read-only during analysis, so the domains share
         it. *)
      let ctx = ctx_of warm net in
      steal_map ~domains items
        ~init:(fun _ -> iacc_create ())
        ~step:(fun a (fi, fj) ->
          let v = Engine.analyze_multi ctx [ fi; fj ] in
          let segs, bits = count_verdict net v in
          iacc_add a
            ~w:(Fault.weight net fi * Fault.weight net fj)
            ~n:1 ~segs ~bits)
        ~finish:Fun.id
      |> collect (fun a -> iacc_merge acc a)
  | `Bmc ->
      let targets = List.init nsegs Fun.id in
      steal_map ~domains items
        ~init:(fun _ ->
          (session_of ~inprocess warm ~certify net, iacc_create ()))
        ~step:(fun (sess, a) (fi, fj) ->
          let vs =
            Bmc.Session.check_targets_multi sess ~faults:[ fi; fj ] targets
          in
          let segs, bits = count_bmc net vs in
          iacc_add a
            ~w:(Fault.weight net fi * Fault.weight net fj)
            ~n:1 ~segs ~bits)
        ~finish:(fun (sess, a) ->
          let sv = solver_of_session sess in
          release_session warm sess;
          (a, sv))
      |> collect (fun (a, sv) ->
             iacc_merge acc a;
             solver := merge_solver !solver sv));
  iacc_result ~what:"Metric.evaluate_pairs" ~nsegs
    ~nbits:(Netlist.total_bits net) ~steals:!steals ~solver:!solver
    ~reduction:None acc

(* [pair_prep] (declared above, next to the warm state that caches it):
   per-class data shared by both exhaustive engines — summaries, member
   counts, weights, the sum of squared member weights (for the diagonal
   pair weight), and — filled in by phase 1, to disjoint indices, so the
   domains share the arrays — cones, interaction regions ([pq_regions];
   region-disjoint classes compose pointwise per Engine.probe provided
   the fragility gate also passes), writability losses ([pq_wlost]),
   fragile segments and their re-route certificate footprints
   ([pq_fragile] / [pq_supp] / [pq_supp_edges] / [pq_rhosts]), the class
   damage ([pq_dead_edges] / [pq_dmg]), accessibility counts/bitsets and
   lost-segment lists ([pq_lost]: baseline-accessible segments no longer
   accessible — every non-coarse class's accessible set is a subset of
   the baseline's, effects only remove capabilities). *)
let pair_prep_static net classes =
  let nc = Array.length classes in
  let none = Bitset.create 0 in
  {
    pq_sms = Array.map (fun c -> c.Fault.cls_summary) classes;
    pq_cones = Array.make nc none;
    pq_regions = Array.make nc none;
    pq_wlost = Array.make nc none;
    pq_fragile = Array.make nc none;
    pq_supp = Array.make nc none;
    pq_supp_edges = Array.make nc none;
    pq_dead_edges = Array.make nc none;
    pq_dmg = Array.make nc none;
    pq_rhosts = Array.make nc none;
    pq_members =
      Array.map (fun c -> List.length c.Fault.cls_members) classes;
    pq_weight = Array.map (fun c -> c.Fault.cls_weight) classes;
    pq_sq =
      Array.map
        (fun (c : Fault.clas) ->
          List.fold_left
            (fun a f ->
              let w = Fault.weight net f in
              a + (w * w))
            0 c.Fault.cls_members)
        classes;
    pq_segs = Array.make nc 0;
    pq_bits = Array.make nc 0;
    pq_acc = Array.make nc none;
    pq_lost = Array.make nc [||];
    pq_len =
      Array.init (Netlist.num_segments net) (fun i -> Netlist.seg_len net i);
  }

(* Accessibility bitset and lost list of one class, given a per-segment
   accessibility predicate. *)
let pair_prep_note pq i ~nsegs ~base_acc ~acc_of =
  let acc = Bitset.create nsegs in
  let lost = ref [] in
  for s = nsegs - 1 downto 0 do
    if acc_of s then Bitset.add acc s
    else if base_acc s then lost := s :: !lost
  done;
  pq.pq_acc.(i) <- acc;
  pq.pq_lost.(i) <- Array.of_list !lost

(* Per-domain partial of the exhaustive pair sweeps. *)
type pair_state = {
  ps_acc : iacc;
  mutable ps_diagonal : int;
  mutable ps_disjoint : int;
  mutable ps_stacked : int;
  mutable ps_stacks : int;
  mutable ps_lanes : Engine.lane_stats option;
}

let pair_state () =
  {
    ps_acc = iacc_create ();
    ps_diagonal = 0;
    ps_disjoint = 0;
    ps_stacked = 0;
    ps_stacks = 0;
    ps_lanes = None;
  }

(* Can pair (i, j) be composed pointwise?  Disjoint interaction regions
   and no mutual-support hazard (a fragile segment of one class
   surviving in the other, a support edge of one killed by the other, a
   steering host of one losing writability under the other). *)
let pair_disjoint_gates pq i j =
  Bitset.disjoint pq.pq_regions.(i) pq.pq_regions.(j)
  && Bitset.disjoint pq.pq_supp_edges.(i) pq.pq_dead_edges.(j)
  && Bitset.disjoint pq.pq_supp_edges.(j) pq.pq_dead_edges.(i)
  && Bitset.disjoint pq.pq_supp.(i) pq.pq_dmg.(j)
  && Bitset.disjoint pq.pq_supp.(j) pq.pq_dmg.(i)
  && Bitset.disjoint pq.pq_rhosts.(i) pq.pq_fragile.(j)
  && Bitset.disjoint pq.pq_rhosts.(j) pq.pq_fragile.(i)
  && Bitset.disjoint pq.pq_rhosts.(i) pq.pq_wlost.(j)
  && Bitset.disjoint pq.pq_rhosts.(j) pq.pq_wlost.(i)

(* Diagonal: every unordered pair of distinct members of class i.  The
   union of two equal summaries is engine-equivalent to the summary
   itself, so the pair verdict is the class verdict. *)
let pair_diagonal_add pq ps i =
  ps.ps_diagonal <- ps.ps_diagonal + 1;
  let m = pq.pq_members.(i) in
  let npairs = m * (m - 1) / 2 in
  if npairs > 0 then begin
    let w = (pq.pq_weight.(i) * pq.pq_weight.(i)) - pq.pq_sq.(i) in
    iacc_add ps.ps_acc ~w:(w / 2) ~n:npairs ~segs:pq.pq_segs.(i)
      ~bits:pq.pq_bits.(i)
  end

(* Disjoint pair: the pair's accessible set is the intersection of the
   two classes' — class [keep]'s count minus the partner's lost segments
   that [keep] still had.  Exact because both accessible sets are
   subsets of the baseline's (coarse classes have full regions and never
   get here). *)
let pair_disjoint_add pq ps i j =
  ps.ps_disjoint <- ps.ps_disjoint + 1;
  let keep, lost =
    if Array.length pq.pq_lost.(j) <= Array.length pq.pq_lost.(i) then
      (i, pq.pq_lost.(j))
    else (j, pq.pq_lost.(i))
  in
  let acc = pq.pq_acc.(keep) in
  let dsegs = ref 0 and dbits = ref 0 in
  Array.iter
    (fun s ->
      if Bitset.mem acc s then begin
        incr dsegs;
        dbits := !dbits + pq.pq_len.(s)
      end)
    lost;
  iacc_add ps.ps_acc ~w:(pq.pq_weight.(i) * pq.pq_weight.(j))
    ~n:(pq.pq_members.(i) * pq.pq_members.(j))
    ~segs:(pq.pq_segs.(keep) - !dsegs)
    ~bits:(pq.pq_bits.(keep) - !dbits)

(* Interacting pair (i, j) whose combined accessible counts are known. *)
let pair_interact_add pq ps i j ~segs ~bits =
  ps.ps_stacked <- ps.ps_stacked + 1;
  iacc_add ps.ps_acc
    ~w:(pq.pq_weight.(i) * pq.pq_weight.(j))
    ~n:(pq.pq_members.(i) * pq.pq_members.(j))
    ~segs ~bits

(* The row [i]'s pair arithmetic shared by both engines: the diagonal and
   the disjoint fast path are pure counting; [interact j] supplies the
   accessible counts of an interacting pair (i, j). *)
let pair_row pq ps i ~interact =
  let nc = Array.length pq.pq_sms in
  pair_diagonal_add pq ps i;
  for j = i + 1 to nc - 1 do
    if pair_disjoint_gates pq i j then pair_disjoint_add pq ps i j
    else begin
      let segs, bits = interact j in
      pair_interact_add pq ps i j ~segs ~bits
    end
  done

(* [pair_row] with the interacting partners DEFERRED instead of
   evaluated in place: the lane scheduler's discovery pass, which runs
   the gates and the pure counting exactly once and hands the
   interacting column indices (ascending) to the lane-batch planner. *)
let pair_row_defer pq ps i ~defer =
  let nc = Array.length pq.pq_sms in
  pair_diagonal_add pq ps i;
  for j = i + 1 to nc - 1 do
    if pair_disjoint_gates pq i j then pair_disjoint_add pq ps i j
    else defer j
  done

let finish_pair_partials ~net ~nclasses partials =
  let acc = iacc_create () in
  let steals = ref 0 and solver = ref None in
  let stats =
    ref
      {
        p_classes = nclasses;
        p_class_pairs = nclasses * (nclasses + 1) / 2;
        p_diagonal = 0;
        p_disjoint = 0;
        p_stacked = 0;
        p_stacks = 0;
      }
  in
  let pair_lanes = ref None in
  List.iter
    (fun ((ps, sv), st) ->
      iacc_merge acc ps.ps_acc;
      steals := !steals + st;
      solver := merge_solver !solver sv;
      pair_lanes := merge_lanes !pair_lanes ps.ps_lanes;
      stats :=
        {
          !stats with
          p_diagonal = !stats.p_diagonal + ps.ps_diagonal;
          p_disjoint = !stats.p_disjoint + ps.ps_disjoint;
          p_stacked = !stats.p_stacked + ps.ps_stacked;
          p_stacks = !stats.p_stacks + ps.ps_stacks;
        })
    partials;
  iacc_result ~pairs:(Some !stats) ~pair_lanes:!pair_lanes
    ~what:"Metric.evaluate_pairs" ~nsegs:(Netlist.num_segments net)
    ~nbits:(Netlist.total_bits net) ~steals:!steals ~solver:!solver
    ~reduction:None acc

(* Steal units of the lane-parallel pair sweep: one fast-path chunk or
   one lane batch of second summaries against one row's secondary
   baseline.  Batch-granular (not row-granular) so work stealing never
   shreds a batch: a domain claims whole fixpoints, and a heavy row's
   batches spread across domains instead of serializing on one. *)
type pair_item =
  | Pi_scalar of int * int array  (* row, fast-path partner columns *)
  | Pi_batch of int * int array   (* row, one lane batch of columns *)

(* The per-model stack cache: served from the warm state for full
   sweeps (the cached column indices refer to the warm class array,
   exactly like [w_pair_prep]), private to the evaluation otherwise. *)
let pair_stacks_of warm ~full ~model =
  match warm with
  | Some w when full ->
      locked w (fun () ->
          match List.assoc_opt model w.w_pair_stacks with
          | Some sc -> sc
          | None ->
              let sc = stack_cache () in
              w.w_pair_stacks <- (model, sc) :: w.w_pair_stacks;
              sc)
  | _ -> stack_cache ()

let evaluate_pairs_reduced_structural ~domains ?warm ~full ~lanes ~model net
    faults =
  let ctx = ctx_of warm net in
  let base = base_of warm ctx in
  (* The phase-1 probe tables are a deterministic function of the netlist
     and the fault model (for the full universe), so a warm state serves
     them from a per-model cache and repeated exhaustive sweeps skip
     phase 1 entirely. *)
  let cached =
    match warm with
    | Some w when full ->
        locked w (fun () -> List.assoc_opt model w.w_pair_prep)
    | _ -> None
  in
  let classes, pq, prep_steals =
    match cached with
    | Some (classes, pq) -> (classes, pq, 0)
    | None ->
        let classes = classes_of warm ~full ~model net faults in
        let nc = Array.length classes in
        let nsegs = Netlist.num_segments net in
        let pq = pair_prep_static net classes in
        let base_v = Engine.baseline_verdict base in
        let base_acc s = base_v.Engine.accessible.(s) in
        (* Phase 1: per-class probes — single-fault verdict counts plus
           the exact cones and interaction regions.  Writes go to
           disjoint indices, so the domains share the arrays. *)
        let prep_partials =
          steal_map ~domains (Array.init nc Fun.id)
            ~init:(fun _ -> ())
            ~step:(fun () i ->
              let p = Engine.probe ctx base pq.pq_sms.(i) in
              pq.pq_cones.(i) <- p.Engine.pr_cone;
              pq.pq_regions.(i) <- p.Engine.pr_region;
              pq.pq_fragile.(i) <- p.Engine.pr_fragile;
              pq.pq_supp.(i) <- p.Engine.pr_supp;
              pq.pq_supp_edges.(i) <- p.Engine.pr_supp_edges;
              pq.pq_dead_edges.(i) <- p.Engine.pr_dead_edges;
              pq.pq_dmg.(i) <- p.Engine.pr_dmg;
              pq.pq_rhosts.(i) <- p.Engine.pr_rhosts;
              let v = p.Engine.pr_verdict in
              let wlost = Bitset.create nsegs in
              for s = 0 to nsegs - 1 do
                if base_v.Engine.writable.(s) && not v.Engine.writable.(s)
                then Bitset.add wlost s
              done;
              pq.pq_wlost.(i) <- wlost;
              let segs, bits = count_verdict net v in
              pq.pq_segs.(i) <- segs;
              pq.pq_bits.(i) <- bits;
              pair_prep_note pq i ~nsegs ~base_acc
                ~acc_of:(fun s -> v.Engine.accessible.(s)))
            ~finish:(fun () -> ())
        in
        let prep_steals =
          List.fold_left (fun a ((), s) -> a + s) 0 prep_partials
        in
        (match warm with
        | Some w when full ->
            locked w (fun () ->
                if not (List.mem_assoc model w.w_pair_prep) then
                  w.w_pair_prep <- (model, (classes, pq)) :: w.w_pair_prep)
        | _ -> ());
        (classes, pq, prep_steals)
  in
  let nc = Array.length classes in
  if not lanes then begin
    (* Scalar ablation path (--no-pair-lanes): the pre-lane scheduler —
       row-granular sweep over first classes, each row lazily building
       its secondary baseline the first time it meets an interacting
       partner.  Kept verbatim as the oracle the lane path is
       property-tested (and benched) against. *)
    let partials =
      steal_map ~domains (Array.init nc Fun.id)
        ~init:(fun _ -> pair_state ())
        ~step:(fun ps i ->
          let stk = ref None in
          pair_row pq ps i ~interact:(fun j ->
              let s =
                match !stk with
                | Some s -> s
                | None ->
                    let s = Engine.stack ctx base pq.pq_sms.(i) in
                    ps.ps_stacks <- ps.ps_stacks + 1;
                    stk := Some s;
                    s
              in
              let v, _ = Engine.analyze_delta_on ctx s pq.pq_sms.(j) in
              count_verdict net v))
        ~finish:(fun ps -> (ps, None))
    in
    let r = finish_pair_partials ~net ~nclasses:nc partials in
    { r with steals = r.steals + prep_steals }
  end
  else begin
    (* Phase 2a: discovery — run the disjointness gates and the pure
       counting (diagonal + disjoint) once per row, deferring the
       interacting columns.  Rows write disjoint slots of [inter], so
       the domains share the array. *)
    let inter = Array.make nc [||] in
    let partials_a =
      steal_map ~domains (Array.init nc Fun.id)
        ~init:(fun _ -> pair_state ())
        ~step:(fun ps i ->
          let defer = ref [] in
          pair_row_defer pq ps i ~defer:(fun j -> defer := j :: !defer);
          if !defer <> [] then inter.(i) <- Array.of_list (List.rev !defer))
        ~finish:(fun ps -> (ps, None))
    in
    (* Phase 2b: lane-batch-granular steal units.  Per interacting row,
       [Engine.lane_plan] shape-groups the partner summaries (fast
       classes aside, dead-port batches apart) and every batch becomes
       one item; the row's secondary baseline is built once, on first
       use, by whichever domain gets there first. *)
    let items =
      let acc = ref [] in
      for i = 0 to nc - 1 do
        let js = inter.(i) in
        if Array.length js > 0 then begin
          let sms = Array.map (fun j -> pq.pq_sms.(j)) js in
          let fast, batches = Engine.lane_plan base sms in
          if fast <> [] then
            acc :=
              Pi_scalar (i, Array.of_list (List.map (Array.get js) fast))
              :: !acc;
          List.iter
            (fun idxs -> acc := Pi_batch (i, Array.map (Array.get js) idxs) :: !acc)
            batches
        end
      done;
      Array.of_list (List.rev !acc)
    in
    let sc = pair_stacks_of warm ~full ~model in
    let partials_b =
      steal_map ~domains items
        ~init:(fun _ -> pair_state ())
        ~step:(fun ps item ->
          let stack_for i =
            let s, built =
              stack_cached sc
                (fun i -> Engine.stack ctx base pq.pq_sms.(i))
                i
            in
            if built then ps.ps_stacks <- ps.ps_stacks + 1;
            s
          in
          match item with
          | Pi_scalar (i, js) ->
              let stk = stack_for i in
              Array.iter
                (fun j ->
                  let v, _ = Engine.analyze_delta_on ctx stk pq.pq_sms.(j) in
                  let segs, bits = count_verdict net v in
                  pair_interact_add pq ps i j ~segs ~bits)
                js;
              ps.ps_lanes <-
                merge_lanes ps.ps_lanes
                  (Some
                     {
                       Engine.lane_stats_zero with
                       Engine.ls_fast = Array.length js;
                     })
          | Pi_batch (i, js) ->
              let stk = stack_for i in
              let batch = Array.map (fun j -> pq.pq_sms.(j)) js in
              let vs, st = Engine.analyze_lane_batch_on ctx stk batch in
              ps.ps_lanes <- merge_lanes ps.ps_lanes (Some st);
              Array.iteri
                (fun l j ->
                  let segs, bits = count_verdict net (fst vs.(l)) in
                  pair_interact_add pq ps i j ~segs ~bits)
                js)
        ~finish:(fun ps -> (ps, None))
    in
    let r = finish_pair_partials ~net ~nclasses:nc (partials_a @ partials_b) in
    { r with steals = r.steals + prep_steals }
  end

let evaluate_pairs_reduced_bmc ~domains ~certify ~inprocess ?warm ~full
    ~model net faults =
  let ctx = ctx_of warm net in
  let base = base_of warm ctx in
  let classes = classes_of warm ~full ~model net faults in
  let nc = Array.length classes in
  let nsegs = Netlist.num_segments net in
  let targets = List.init nsegs Fun.id in
  let pq = pair_prep_static net classes in
  let base_wrt = (Engine.baseline_verdict base).Engine.writable in
  (* Phase 1: per-class structural probes (cones and interaction regions)
     and cone-restricted SAT counts, as in the single-fault sweep.  The
     structural regions drive the factorization below — the engines agree
     on them (the cone-splice assumption the reduced single-fault BMC
     path already rests on, property-tested). *)
  let bmc_acc vs s =
    match vs.(s) with Bmc.Accessible _ -> true | Bmc.Inaccessible -> false
  in
  let prep_partials =
    steal_map ~domains (Array.init nc Fun.id)
      ~init:(fun _ ->
        let sess = session_of ~inprocess warm ~certify net in
        let base_vs = Bmc.Session.check_targets_base sess targets in
        (sess, base_vs))
      ~step:(fun (sess, base_vs) i ->
        let p = Engine.probe ctx base pq.pq_sms.(i) in
        pq.pq_cones.(i) <- p.Engine.pr_cone;
        pq.pq_regions.(i) <- p.Engine.pr_region;
        pq.pq_fragile.(i) <- p.Engine.pr_fragile;
        pq.pq_supp.(i) <- p.Engine.pr_supp;
        pq.pq_supp_edges.(i) <- p.Engine.pr_supp_edges;
        pq.pq_dead_edges.(i) <- p.Engine.pr_dead_edges;
        pq.pq_dmg.(i) <- p.Engine.pr_dmg;
        pq.pq_rhosts.(i) <- p.Engine.pr_rhosts;
        let wlost = Bitset.create nsegs in
        for s = 0 to nsegs - 1 do
          if
            base_wrt.(s)
            && not p.Engine.pr_verdict.Engine.writable.(s)
          then Bitset.add wlost s
        done;
        pq.pq_wlost.(i) <- wlost;
        let vs =
          if Fault.summary_benign pq.pq_sms.(i) then base_vs
          else
            Bmc.Session.check_targets sess ~fault:classes.(i).Fault.cls_rep
              ~only:(Bitset.mem p.Engine.pr_cone)
              ~fallback:(fun t -> base_vs.(t))
              targets
        in
        let segs, bits = count_bmc net vs in
        pq.pq_segs.(i) <- segs;
        pq.pq_bits.(i) <- bits;
        pair_prep_note pq i ~nsegs ~base_acc:(bmc_acc base_vs)
          ~acc_of:(bmc_acc vs))
      ~finish:(fun (sess, _) ->
        let sv = solver_of_session sess in
        release_session warm sess;
        sv)
  in
  let prep_steals = ref 0 and prep_solver = ref None in
  List.iter
    (fun (sv, st) ->
      prep_steals := !prep_steals + st;
      prep_solver := merge_solver !prep_solver sv)
    prep_partials;
  (* Phase 2: the row sweep; interacting pairs are SAT-checked under the
     merged fault set, restricted to the union of the two cones. *)
  let partials =
    steal_map ~domains (Array.init nc Fun.id)
      ~init:(fun _ ->
        let sess = session_of ~inprocess warm ~certify net in
        let base_vs = Bmc.Session.check_targets_base sess targets in
        (sess, base_vs, pair_state ()))
      ~step:(fun (sess, base_vs, ps) i ->
        pair_row pq ps i ~interact:(fun j ->
            (* The restriction must be the cone of the MERGED summary:
               with tight cones the union of the two single-fault taints
               can undershoot the pair's (interaction can kill paths both
               single faults left alive). *)
            let u =
              match
                Engine.cone ctx base
                  (Fault.summary_union pq.pq_sms.(i) pq.pq_sms.(j))
              with
              | Some cs -> cs
              | None -> Bitset.create nsegs
            in
            let vs =
              Bmc.Session.check_targets_multi sess
                ~faults:
                  [ classes.(i).Fault.cls_rep; classes.(j).Fault.cls_rep ]
                ~only:(Bitset.mem u)
                ~fallback:(fun t -> base_vs.(t))
                targets
            in
            count_bmc net vs))
      ~finish:(fun (sess, _, ps) ->
        let sv = solver_of_session sess in
        release_session warm sess;
        (ps, sv))
  in
  let r = finish_pair_partials ~net ~nclasses:nc partials in
  {
    r with
    steals = r.steals + !prep_steals;
    solver = merge_solver r.solver !prep_solver;
  }

let evaluate_pairs ?(sample = 37) ?fault_sample ?(domains = 1)
    ?(engine = `Structural) ?(exhaustive = false) ?(reduce = true)
    ?(certify = false) ?(inprocess = true) ?(lanes = true)
    ?(model = Fault.Stuck) ?warm net =
  if certify && engine <> `Bmc then
    invalid_arg "Metric.evaluate_pairs: ~certify:true requires ~engine:`Bmc";
  if model = Fault.Transient then
    raise
      (Unsupported
         "transient pairs are unsupported (two glitches are not a set-wise \
          union of summaries)");
  check_warm warm net "Metric.evaluate_pairs";
  let full = match fault_sample with None -> true | Some k -> k <= 1 in
  let faults = sample_faults fault_sample (Fault.universe ~model net) in
  if exhaustive && reduce then
    match engine with
    | `Structural ->
        evaluate_pairs_reduced_structural ~domains ?warm ~full ~lanes ~model
          net faults
    | `Bmc ->
        evaluate_pairs_reduced_bmc ~domains ~certify ~inprocess ?warm ~full
          ~model net faults
  else
    let sample = if exhaustive then 1 else max 1 sample in
    evaluate_pairs_brute ~sample ~domains ~engine ~certify ~inprocess ?warm
      net faults

let pp_solver_stats fmt s =
  Format.fprintf fmt
    "@[<h>solver: %d conflicts, %d decisions, %d propagations; %d clauses emitted, %d nodes reused@]"
    s.s_conflicts s.s_decisions s.s_propagations s.s_clauses_emitted
    s.s_nodes_reused;
  if s.s_learnt_lits > 0 then
    Format.fprintf fmt
      "@,@[<h>search: %d restarts; learnt lits %d -> %d (%.1f%% minimized); %d DB reductions, %d learnts live@]"
      s.s_restarts s.s_learnt_lits
      (s.s_learnt_lits - s.s_minimized_lits)
      (100.0 *. float_of_int s.s_minimized_lits /. float_of_int s.s_learnt_lits)
      s.s_reductions s.s_learnt_db;
  if s.s_simp_passes > 0 then
    Format.fprintf fmt
      "@,@[<h>simplify: %d passes; %d subsumed, %d lits strengthened, %d vars eliminated, %d lits vivified@]"
      s.s_simp_passes s.s_subsumed s.s_strengthened_lits s.s_eliminated_vars
      s.s_vivified_lits;
  if s.s_cert_unsat > 0 || s.s_cert_lemmas > 0 then
    Format.fprintf fmt
      "@,@[<h>certified: %d UNSAT verdicts RUP-checked, %d lemmas verified, %d deletions, %.2fs in checker@]"
      s.s_cert_unsat s.s_cert_lemmas s.s_cert_deletes s.s_cert_time

let pp_reduction_stats fmt r =
  Format.fprintf fmt
    "@[<h>reduction: %d faults -> %d classes (%d benign); cone avg %.1f max %d@]"
    r.r_universe r.r_classes r.r_benign
    (if r.r_classes = 0 then 0.0
     else float_of_int r.r_cone_sum /. float_of_int r.r_classes)
    r.r_cone_max

let pp_lane_stats fmt (l : Engine.lane_stats) =
  Format.fprintf fmt
    "@[<h>lanes: %d batches (width %d), %d lanes (avg occupancy %.1f), %d settled at seed, %d fast-path classes, %d rounds@]"
    l.Engine.ls_batches Engine.lane_width l.Engine.ls_lanes
    (if l.Engine.ls_batches = 0 then 0.0
     else float_of_int l.Engine.ls_lanes /. float_of_int l.Engine.ls_batches)
    l.Engine.ls_masked l.Engine.ls_fast l.Engine.ls_rounds

let pp_pair_stats fmt p =
  Format.fprintf fmt
    "@[<h>pairs: %d classes -> %d class pairs (%d diagonal, %d disjoint, %d stacked); %d secondary baselines@]"
    p.p_classes p.p_class_pairs p.p_diagonal p.p_disjoint p.p_stacked
    p.p_stacks

let pp fmt r =
  Format.fprintf fmt
    "@[<v>segments: worst %.3f avg %.4f@,bits: worst %.3f avg %.4f@,(%d faults, weight %d)@]"
    r.worst_segments r.avg_segments r.worst_bits r.avg_bits r.faults
    r.total_weight;
  (match r.reduction with
  | None -> ()
  | Some red -> Format.fprintf fmt "@,%a" pp_reduction_stats red);
  (match r.lanes with
  | None -> ()
  | Some l -> Format.fprintf fmt "@,%a" pp_lane_stats l);
  (match r.pairs with
  | None -> ()
  | Some p -> Format.fprintf fmt "@,%a" pp_pair_stats p);
  (match r.pair_lanes with
  | None -> ()
  | Some l -> Format.fprintf fmt "@,pair %a" pp_lane_stats l);
  if r.steals > 0 then Format.fprintf fmt "@,steals: %d" r.steals;
  match r.solver with
  | None -> ()
  | Some s -> Format.fprintf fmt "@,%a" pp_solver_stats s
