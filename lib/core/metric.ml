module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Engine = Ftrsn_access.Engine
module Bmc = Ftrsn_bmc.Bmc
module Bitset = Ftrsn_topo.Bitset

type solver_stats = {
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_clauses_emitted : int;
  s_nodes_reused : int;
}

type reduction_stats = {
  r_universe : int;
  r_classes : int;
  r_benign : int;
  r_cone_sum : int;
  r_cone_max : int;
}

type result = {
  worst_segments : float;
  avg_segments : float;
  worst_bits : float;
  avg_bits : float;
  faults : int;
  total_weight : int;
  steals : int;
  solver : solver_stats option;
  reduction : reduction_stats option;
}

let merge_solver a b =
  match (a, b) with
  | None, s | s, None -> s
  | Some x, Some y ->
      Some
        {
          s_conflicts = x.s_conflicts + y.s_conflicts;
          s_decisions = x.s_decisions + y.s_decisions;
          s_propagations = x.s_propagations + y.s_propagations;
          s_clauses_emitted = x.s_clauses_emitted + y.s_clauses_emitted;
          s_nodes_reused = x.s_nodes_reused + y.s_nodes_reused;
        }

let merge_reduction a b =
  match (a, b) with
  | None, r | r, None -> r
  | Some x, Some y ->
      Some
        {
          r_universe = x.r_universe + y.r_universe;
          r_classes = x.r_classes + y.r_classes;
          r_benign = x.r_benign + y.r_benign;
          r_cone_sum = x.r_cone_sum + y.r_cone_sum;
          r_cone_max = max x.r_cone_max y.r_cone_max;
        }

(* Merge two partial results (weighted sums are kept internally as
   averages times weight, so recombine carefully).  The evaluation paths
   below merge their integer accumulators instead, which is exact; this
   float-level recombination is kept for callers composing finished
   results. *)
let merge a b =
  {
    worst_segments = min a.worst_segments b.worst_segments;
    avg_segments =
      ((a.avg_segments *. float_of_int a.total_weight)
      +. (b.avg_segments *. float_of_int b.total_weight))
      /. float_of_int (a.total_weight + b.total_weight);
    worst_bits = min a.worst_bits b.worst_bits;
    avg_bits =
      ((a.avg_bits *. float_of_int a.total_weight)
      +. (b.avg_bits *. float_of_int b.total_weight))
      /. float_of_int (a.total_weight + b.total_weight);
    faults = a.faults + b.faults;
    total_weight = a.total_weight + b.total_weight;
    steals = a.steals + b.steals;
    solver = merge_solver a.solver b.solver;
    reduction = merge_reduction a.reduction b.reduction;
  }

(* Split a list into [chunks] chunks of (near-)equal ceil size; the last
   chunk may be shorter, none is empty.  E.g. 10 items over 3 chunks give
   sizes [4; 4; 2].  Deprecated as a work-distribution strategy (the
   evaluators now pull from a shared queue); kept for its unit tests. *)
let split_chunks ~chunks l =
  if chunks <= 0 then invalid_arg "Metric.split_chunks: chunks must be > 0";
  let n = List.length l in
  if n = 0 then []
  else begin
    let k = min chunks n in
    let chunk = (n + k - 1) / k in
    let rec take k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let rec go = function
      | [] -> []
      | l ->
          let head, tail = take chunk [] l in
          head :: go tail
    in
    go l
  end

(* Integer accumulation of per-fault accessible counts.  All fields are
   exact integers folded with commutative operations (min / sum), so the
   final result is bit-identical however the faults are partitioned or
   interleaved across domains — the property that lets the dynamic
   scheduler reorder work freely and the collapsed classes stand in for
   their members.  The single float division happens once at the end. *)
type iacc = {
  mutable a_min_segs : int;
  mutable a_min_bits : int;
  mutable a_sum_segs : int;  (* sum of weight * accessible segments *)
  mutable a_sum_bits : int;  (* sum of weight * accessible bits *)
  mutable a_weight : int;
  mutable a_count : int;
}

let iacc_create () =
  {
    a_min_segs = max_int;
    a_min_bits = max_int;
    a_sum_segs = 0;
    a_sum_bits = 0;
    a_weight = 0;
    a_count = 0;
  }

let iacc_add acc ~w ~n ~segs ~bits =
  if segs < acc.a_min_segs then acc.a_min_segs <- segs;
  if bits < acc.a_min_bits then acc.a_min_bits <- bits;
  acc.a_sum_segs <- acc.a_sum_segs + (w * segs);
  acc.a_sum_bits <- acc.a_sum_bits + (w * bits);
  acc.a_weight <- acc.a_weight + w;
  acc.a_count <- acc.a_count + n

let iacc_merge a b =
  a.a_min_segs <- min a.a_min_segs b.a_min_segs;
  a.a_min_bits <- min a.a_min_bits b.a_min_bits;
  a.a_sum_segs <- a.a_sum_segs + b.a_sum_segs;
  a.a_sum_bits <- a.a_sum_bits + b.a_sum_bits;
  a.a_weight <- a.a_weight + b.a_weight;
  a.a_count <- a.a_count + b.a_count

let iacc_result ~what ~nsegs ~nbits ~steals ~solver ~reduction acc =
  if acc.a_count = 0 then invalid_arg (what ^ ": empty fault list");
  let fsegs = float_of_int nsegs and fbits = float_of_int nbits in
  let fweight = float_of_int acc.a_weight in
  {
    worst_segments = float_of_int acc.a_min_segs /. fsegs;
    avg_segments = float_of_int acc.a_sum_segs /. (fweight *. fsegs);
    worst_bits = float_of_int acc.a_min_bits /. fbits;
    avg_bits = float_of_int acc.a_sum_bits /. (fweight *. fbits);
    faults = acc.a_count;
    total_weight = acc.a_weight;
    steals;
    solver;
    reduction;
  }

(* ---- dynamic work-stealing scheduler ----

   One shared atomic cursor over the item array; every domain claims the
   next unclaimed item until exhaustion, so an expensive item (a trunk
   fault, a slow SAT query) delays only the domain it runs on while the
   others drain the rest of the queue.  An item counts as stolen when it
   lands on a different domain than the static ceil-chunk split would
   have assigned.  [init] builds each domain's private worker state
   (engine context or SAT session), [step] folds one item into it and
   [finish] extracts the partial result; partials merge exactly because
   the accumulators are integers. *)
let steal_map ~domains items ~init ~step ~finish =
  let n = Array.length items in
  let next = Atomic.make 0 in
  let chunk = if domains <= 1 then max n 1 else (n + domains - 1) / domains in
  let run d () =
    let st = init d in
    let steals = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue_ := false
      else begin
        if i / chunk <> d then incr steals;
        step st items.(i)
      end
    done;
    (finish st, !steals)
  in
  if domains <= 1 then [ run 0 () ]
  else
    List.map Domain.join
      (List.init domains (fun d -> Domain.spawn (run d)))

let count_verdict net v =
  let segs = ref 0 and bits = ref 0 in
  Array.iteri
    (fun i ok ->
      if ok then begin
        incr segs;
        bits := !bits + Netlist.seg_len net i
      end)
    v.Engine.accessible;
  (!segs, !bits)

let count_bmc net vs =
  let segs = ref 0 and bits = ref 0 in
  Array.iteri
    (fun i v ->
      match v with
      | Bmc.Accessible _ ->
          incr segs;
          bits := !bits + Netlist.seg_len net i
      | Bmc.Inaccessible -> ())
    vs;
  (!segs, !bits)

let solver_of_session sess =
  let st = Bmc.Session.stats sess in
  Some
    {
      s_conflicts = st.Bmc.Session.conflicts;
      s_decisions = st.Bmc.Session.decisions;
      s_propagations = st.Bmc.Session.propagations;
      s_clauses_emitted = st.Bmc.Session.clauses_emitted;
      s_nodes_reused = st.Bmc.Session.nodes_reused;
    }

let evaluate_faults ctx faults =
  let net = Engine.netlist ctx in
  let acc = iacc_create () in
  List.iter
    (fun f ->
      let v = Engine.analyze ctx (Some f) in
      let segs, bits = count_verdict net v in
      iacc_add acc ~w:(Fault.weight net f) ~n:1 ~segs ~bits)
    faults;
  iacc_result ~what:"Metric.evaluate_faults" ~nsegs:(Netlist.num_segments net)
    ~nbits:(Netlist.total_bits net) ~steals:0 ~solver:None ~reduction:None acc

let evaluate_faults_bmc sess faults =
  let net = Bmc.netlist (Bmc.Session.model sess) in
  let nsegs = Netlist.num_segments net in
  let targets = List.init nsegs Fun.id in
  let acc = iacc_create () in
  List.iter
    (fun f ->
      let vs = Bmc.Session.check_targets sess ~fault:f targets in
      let segs, bits = count_bmc net vs in
      iacc_add acc ~w:(Fault.weight net f) ~n:1 ~segs ~bits)
    faults;
  iacc_result ~what:"Metric.evaluate_faults_bmc" ~nsegs
    ~nbits:(Netlist.total_bits net) ~steals:0
    ~solver:(solver_of_session sess) ~reduction:None acc

(* Per-domain partial of the collapsed paths: accumulator plus the cone
   statistics the domain observed. *)
type red_state = {
  rs_acc : iacc;
  mutable rs_cone_sum : int;
  mutable rs_cone_max : int;
}

let red_state () = { rs_acc = iacc_create (); rs_cone_sum = 0; rs_cone_max = 0 }

let red_note rs cone =
  rs.rs_cone_sum <- rs.rs_cone_sum + cone;
  if cone > rs.rs_cone_max then rs.rs_cone_max <- cone

let finish_partials ~what ~net ~universe ~classes ~benign partials =
  let acc = iacc_create () in
  let steals = ref 0 and cone_sum = ref 0 and cone_max = ref 0 in
  let solver = ref None in
  List.iter
    (fun ((rs, sv), st) ->
      iacc_merge acc rs.rs_acc;
      steals := !steals + st;
      cone_sum := !cone_sum + rs.rs_cone_sum;
      if rs.rs_cone_max > !cone_max then cone_max := rs.rs_cone_max;
      solver := merge_solver !solver sv)
    partials;
  let reduction =
    Some
      {
        r_universe = universe;
        r_classes = classes;
        r_benign = benign;
        r_cone_sum = !cone_sum;
        r_cone_max = !cone_max;
      }
  in
  iacc_result ~what ~nsegs:(Netlist.num_segments net)
    ~nbits:(Netlist.total_bits net) ~steals:!steals ~solver:!solver ~reduction
    acc

let class_counts classes =
  Array.fold_left
    (fun (total, benign) (c : Fault.clas) ->
      let members = List.length c.Fault.cls_members in
      ( total + members,
        if Fault.summary_benign c.Fault.cls_summary then benign + members
        else benign ))
    (0, 0) classes

(* Full-universe evaluation through the reduction layer: equivalence
   classes stand in for their members (weights already summed by
   {!Fault.collapse}) and each class verdict is a cone-of-influence delta
   against the shared fault-free baseline.  Context and baseline are
   immutable after construction, so all domains share them. *)
let evaluate_reduced_structural ~domains net faults =
  let ctx = Engine.make_ctx net in
  let base = Engine.baseline ctx in
  let classes = Array.of_list (Fault.collapse net faults) in
  let universe, benign = class_counts classes in
  let partials =
    steal_map ~domains classes
      ~init:(fun _ -> red_state ())
      ~step:(fun rs (c : Fault.clas) ->
        let v, cone = Engine.analyze_delta ctx base c.Fault.cls_summary in
        red_note rs cone;
        let segs, bits = count_verdict net v in
        iacc_add rs.rs_acc ~w:c.Fault.cls_weight
          ~n:(List.length c.Fault.cls_members)
          ~segs ~bits)
      ~finish:(fun rs -> (rs, None))
  in
  finish_partials ~what:"Metric.evaluate" ~net ~universe
    ~classes:(Array.length classes) ~benign partials

(* The BMC variant: per-domain incremental session, fault-free verdicts
   established once per session, then each non-benign class re-checks only
   the targets inside its cone ([Session.check_targets ~only]) with the
   fault-free verdict spliced in for the rest.  The structural baseline
   supplies the cones; the SAT solver supplies the verdicts. *)
let evaluate_reduced_bmc ~domains net faults =
  let ctx = Engine.make_ctx net in
  let base = Engine.baseline ctx in
  let classes = Array.of_list (Fault.collapse net faults) in
  let universe, benign = class_counts classes in
  let nsegs = Netlist.num_segments net in
  let targets = List.init nsegs Fun.id in
  let partials =
    steal_map ~domains classes
      ~init:(fun _ ->
        let sess = Bmc.Session.create (Bmc.create net) in
        let base_vs = Bmc.Session.check_targets sess targets in
        (sess, base_vs, red_state ()))
      ~step:(fun (sess, base_vs, rs) (c : Fault.clas) ->
        let n = List.length c.Fault.cls_members in
        if Fault.summary_benign c.Fault.cls_summary then begin
          red_note rs 0;
          let segs, bits = count_bmc net base_vs in
          iacc_add rs.rs_acc ~w:c.Fault.cls_weight ~n ~segs ~bits
        end
        else begin
          let cone =
            match Engine.cone ctx base c.Fault.cls_summary with
            | Some cs -> cs
            | None -> Bitset.create nsegs (* unreachable: benign handled *)
          in
          red_note rs (Bitset.cardinal cone);
          let vs =
            Bmc.Session.check_targets sess ~fault:c.Fault.cls_rep
              ~only:(Bitset.mem cone)
              ~fallback:(fun t -> base_vs.(t))
              targets
          in
          let segs, bits = count_bmc net vs in
          iacc_add rs.rs_acc ~w:c.Fault.cls_weight ~n ~segs ~bits
        end)
      ~finish:(fun (sess, _, rs) -> (rs, solver_of_session sess))
  in
  finish_partials ~what:"Metric.evaluate" ~net ~universe
    ~classes:(Array.length classes) ~benign partials

let evaluate_brute_structural ~domains net faults =
  let items = Array.of_list faults in
  let partials =
    steal_map ~domains items
      ~init:(fun _ -> (Engine.make_ctx net, iacc_create ()))
      ~step:(fun (ctx, acc) f ->
        let v = Engine.analyze ctx (Some f) in
        let segs, bits = count_verdict net v in
        iacc_add acc ~w:(Fault.weight net f) ~n:1 ~segs ~bits)
      ~finish:(fun (_, acc) -> acc)
  in
  let acc = iacc_create () in
  let steals = ref 0 in
  List.iter
    (fun (a, st) ->
      iacc_merge acc a;
      steals := !steals + st)
    partials;
  iacc_result ~what:"Metric.evaluate" ~nsegs:(Netlist.num_segments net)
    ~nbits:(Netlist.total_bits net) ~steals:!steals ~solver:None
    ~reduction:None acc

let evaluate_brute_bmc ~domains net faults =
  let items = Array.of_list faults in
  let nsegs = Netlist.num_segments net in
  let targets = List.init nsegs Fun.id in
  let partials =
    steal_map ~domains items
      ~init:(fun _ -> (Bmc.Session.create (Bmc.create net), iacc_create ()))
      ~step:(fun (sess, acc) f ->
        let vs = Bmc.Session.check_targets sess ~fault:f targets in
        let segs, bits = count_bmc net vs in
        iacc_add acc ~w:(Fault.weight net f) ~n:1 ~segs ~bits)
      ~finish:(fun (sess, acc) -> (acc, solver_of_session sess))
  in
  let acc = iacc_create () in
  let steals = ref 0 and solver = ref None in
  List.iter
    (fun ((a, sv), st) ->
      iacc_merge acc a;
      steals := !steals + st;
      solver := merge_solver !solver sv)
    partials;
  iacc_result ~what:"Metric.evaluate" ~nsegs ~nbits:(Netlist.total_bits net)
    ~steals:!steals ~solver:!solver ~reduction:None acc

let sample_faults sample faults =
  match sample with
  | None -> faults
  | Some k when k <= 1 -> faults
  | Some k ->
      List.filteri
        (fun i f ->
          i mod k = 0
          ||
          match f.Fault.site with
          | Fault.Primary_in | Fault.Primary_out -> true
          | _ -> false)
        faults

let evaluate ?sample ?(domains = 1) ?(engine = `Structural) ?(reduce = true)
    net =
  let faults = sample_faults sample (Fault.universe net) in
  match (engine, reduce) with
  | `Structural, true -> evaluate_reduced_structural ~domains net faults
  | `Structural, false -> evaluate_brute_structural ~domains net faults
  | `Bmc, true -> evaluate_reduced_bmc ~domains net faults
  | `Bmc, false -> evaluate_brute_bmc ~domains net faults

let evaluate_pairs ?(sample = 37) ?(domains = 1) net =
  let sample = max 1 sample in
  let ctx = Engine.make_ctx net in
  let faults = Array.of_list (Fault.universe net) in
  let n = Array.length faults in
  (* Deterministic enumeration of every k-th unordered pair. *)
  let pairs = ref [] in
  let idx = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !idx mod sample = 0 then pairs := (faults.(i), faults.(j)) :: !pairs;
      incr idx
    done
  done;
  let items = Array.of_list (List.rev !pairs) in
  if Array.length items = 0 then invalid_arg "Metric.evaluate_pairs: empty";
  (* The context is read-only during analysis, so the domains share it;
     the shared-cursor scheduler replaces the static chunk split, whose
     first chunk used to concentrate the slow port/trunk pairs. *)
  let partials =
    steal_map ~domains items
      ~init:(fun _ -> iacc_create ())
      ~step:(fun acc (fi, fj) ->
        let v = Engine.analyze_multi ctx [ fi; fj ] in
        let segs, bits = count_verdict net v in
        iacc_add acc
          ~w:(Fault.weight net fi * Fault.weight net fj)
          ~n:1 ~segs ~bits)
      ~finish:Fun.id
  in
  let acc = iacc_create () in
  let steals = ref 0 in
  List.iter
    (fun (a, st) ->
      iacc_merge acc a;
      steals := !steals + st)
    partials;
  iacc_result ~what:"Metric.evaluate_pairs" ~nsegs:(Netlist.num_segments net)
    ~nbits:(Netlist.total_bits net) ~steals:!steals ~solver:None
    ~reduction:None acc

let pp_solver_stats fmt s =
  Format.fprintf fmt
    "@[<h>solver: %d conflicts, %d decisions, %d propagations; %d clauses emitted, %d nodes reused@]"
    s.s_conflicts s.s_decisions s.s_propagations s.s_clauses_emitted
    s.s_nodes_reused

let pp_reduction_stats fmt r =
  Format.fprintf fmt
    "@[<h>reduction: %d faults -> %d classes (%d benign); cone avg %.1f max %d@]"
    r.r_universe r.r_classes r.r_benign
    (if r.r_classes = 0 then 0.0
     else float_of_int r.r_cone_sum /. float_of_int r.r_classes)
    r.r_cone_max

let pp fmt r =
  Format.fprintf fmt
    "@[<v>segments: worst %.3f avg %.4f@,bits: worst %.3f avg %.4f@,(%d faults, weight %d)@]"
    r.worst_segments r.avg_segments r.worst_bits r.avg_bits r.faults
    r.total_weight;
  (match r.reduction with
  | None -> ()
  | Some red -> Format.fprintf fmt "@,%a" pp_reduction_stats red);
  if r.steals > 0 then Format.fprintf fmt "@,steals: %d" r.steals;
  match r.solver with
  | None -> ()
  | Some s -> Format.fprintf fmt "@,%a" pp_solver_stats s
