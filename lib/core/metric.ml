module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Engine = Ftrsn_access.Engine
module Bmc = Ftrsn_bmc.Bmc

type solver_stats = {
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_clauses_emitted : int;
  s_nodes_reused : int;
}

type result = {
  worst_segments : float;
  avg_segments : float;
  worst_bits : float;
  avg_bits : float;
  faults : int;
  total_weight : int;
  solver : solver_stats option;
}

(* Merge two partial results (weighted sums are kept internally as
   averages times weight, so recombine carefully). *)
let merge a b =
  {
    worst_segments = min a.worst_segments b.worst_segments;
    avg_segments =
      ((a.avg_segments *. float_of_int a.total_weight)
      +. (b.avg_segments *. float_of_int b.total_weight))
      /. float_of_int (a.total_weight + b.total_weight);
    worst_bits = min a.worst_bits b.worst_bits;
    avg_bits =
      ((a.avg_bits *. float_of_int a.total_weight)
      +. (b.avg_bits *. float_of_int b.total_weight))
      /. float_of_int (a.total_weight + b.total_weight);
    faults = a.faults + b.faults;
    total_weight = a.total_weight + b.total_weight;
    solver =
      (match (a.solver, b.solver) with
      | None, s | s, None -> s
      | Some x, Some y ->
          Some
            {
              s_conflicts = x.s_conflicts + y.s_conflicts;
              s_decisions = x.s_decisions + y.s_decisions;
              s_propagations = x.s_propagations + y.s_propagations;
              s_clauses_emitted = x.s_clauses_emitted + y.s_clauses_emitted;
              s_nodes_reused = x.s_nodes_reused + y.s_nodes_reused;
            });
  }

(* Split a list into [chunks] chunks of (near-)equal ceil size; the last
   chunk may be shorter, none is empty.  E.g. 10 items over 3 chunks give
   sizes [4; 4; 2]. *)
let split_chunks ~chunks l =
  if chunks <= 0 then invalid_arg "Metric.split_chunks: chunks must be > 0";
  let n = List.length l in
  if n = 0 then []
  else begin
    let k = min chunks n in
    let chunk = (n + k - 1) / k in
    let rec take k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let rec go = function
      | [] -> []
      | l ->
          let head, tail = take chunk [] l in
          head :: go tail
    in
    go l
  end

(* Shared accumulation: per-fault (segment fraction, bit fraction, weight)
   samples folded into worst/weighted-average form. *)
type acc = {
  mutable a_worst_segments : float;
  mutable a_worst_bits : float;
  mutable a_sum_segments : float;
  mutable a_sum_bits : float;
  mutable a_weight : int;
  mutable a_count : int;
}

let acc_create () =
  {
    a_worst_segments = 1.0;
    a_worst_bits = 1.0;
    a_sum_segments = 0.0;
    a_sum_bits = 0.0;
    a_weight = 0;
    a_count = 0;
  }

let acc_add acc ~w ~fs ~fb =
  if fs < acc.a_worst_segments then acc.a_worst_segments <- fs;
  if fb < acc.a_worst_bits then acc.a_worst_bits <- fb;
  acc.a_sum_segments <- acc.a_sum_segments +. (float_of_int w *. fs);
  acc.a_sum_bits <- acc.a_sum_bits +. (float_of_int w *. fb);
  acc.a_weight <- acc.a_weight + w;
  acc.a_count <- acc.a_count + 1

let acc_result ~what ~solver acc =
  if acc.a_count = 0 then invalid_arg (what ^ ": empty fault list");
  {
    worst_segments = acc.a_worst_segments;
    avg_segments = acc.a_sum_segments /. float_of_int acc.a_weight;
    worst_bits = acc.a_worst_bits;
    avg_bits = acc.a_sum_bits /. float_of_int acc.a_weight;
    faults = acc.a_count;
    total_weight = acc.a_weight;
    solver;
  }

let evaluate_faults ctx faults =
  let net = Engine.netlist ctx in
  let nsegs = Netlist.num_segments net in
  let nbits = Netlist.total_bits net in
  let acc = acc_create () in
  List.iter
    (fun f ->
      let v = Engine.analyze ctx (Some f) in
      let w = Fault.weight net f in
      let fs = float_of_int (Engine.accessible_count v) /. float_of_int nsegs in
      let fb = float_of_int (Engine.accessible_bits ctx v) /. float_of_int nbits in
      acc_add acc ~w ~fs ~fb)
    faults;
  acc_result ~what:"Metric.evaluate_faults" ~solver:None acc

let evaluate_faults_bmc sess faults =
  let net = Bmc.netlist (Bmc.Session.model sess) in
  let nsegs = Netlist.num_segments net in
  let nbits = Netlist.total_bits net in
  let targets = List.init nsegs Fun.id in
  let acc = acc_create () in
  List.iter
    (fun f ->
      let vs = Bmc.Session.check_targets sess ~fault:f targets in
      let w = Fault.weight net f in
      let segs = ref 0 and bits = ref 0 in
      Array.iteri
        (fun i v ->
          match v with
          | Bmc.Accessible _ ->
              incr segs;
              bits := !bits + Netlist.seg_len net i
          | Bmc.Inaccessible -> ())
        vs;
      let fs = float_of_int !segs /. float_of_int nsegs in
      let fb = float_of_int !bits /. float_of_int nbits in
      acc_add acc ~w ~fs ~fb)
    faults;
  let st = Bmc.Session.stats sess in
  let solver =
    Some
      {
        s_conflicts = st.Bmc.Session.conflicts;
        s_decisions = st.Bmc.Session.decisions;
        s_propagations = st.Bmc.Session.propagations;
        s_clauses_emitted = st.Bmc.Session.clauses_emitted;
        s_nodes_reused = st.Bmc.Session.nodes_reused;
      }
  in
  acc_result ~what:"Metric.evaluate_faults_bmc" ~solver acc

let evaluate ?sample ?(domains = 1) ?(engine = `Structural) net =
  let faults = Fault.universe net in
  let faults =
    match sample with
    | None -> faults
    | Some k when k <= 1 -> faults
    | Some k ->
        List.filteri
          (fun i f ->
            i mod k = 0
            ||
            match f.Fault.site with
            | Fault.Primary_in | Fault.Primary_out -> true
            | _ -> false)
          faults
  in
  let eval_chunk =
    match engine with
    | `Structural ->
        (* The engine context is read-only during analysis, so one context
           can serve every domain; a fresh one per chunk keeps the two
           engines symmetric. *)
        fun fs -> evaluate_faults (Engine.make_ctx net) fs
    | `Bmc ->
        (* A SAT session is stateful, so each domain drives its own. *)
        fun fs -> evaluate_faults_bmc (Bmc.Session.create (Bmc.create net)) fs
  in
  if domains <= 1 then eval_chunk faults
  else begin
    let chunks = split_chunks ~chunks:domains faults in
    let workers =
      List.map (fun fs -> Domain.spawn (fun () -> eval_chunk fs)) chunks
    in
    match List.map Domain.join workers with
    | [] -> invalid_arg "Metric.evaluate: empty universe"
    | first :: rest -> List.fold_left merge first rest
  end

let evaluate_pairs ?(sample = 37) ?(domains = 1) net =
  let sample = max 1 sample in
  let ctx = Engine.make_ctx net in
  let faults = Array.of_list (Fault.universe net) in
  let n = Array.length faults in
  let nsegs = Netlist.num_segments net in
  let nbits = Netlist.total_bits net in
  (* Deterministic enumeration of every k-th unordered pair. *)
  let pairs = ref [] in
  let idx = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !idx mod sample = 0 then pairs := (faults.(i), faults.(j)) :: !pairs;
      incr idx
    done
  done;
  let pairs = List.rev !pairs in
  let eval_chunk ps =
    let acc = acc_create () in
    List.iter
      (fun (fi, fj) ->
        let v = Engine.analyze_multi ctx [ fi; fj ] in
        let w = Fault.weight net fi * Fault.weight net fj in
        let fs =
          float_of_int (Engine.accessible_count v) /. float_of_int nsegs
        in
        let fb =
          float_of_int (Engine.accessible_bits ctx v) /. float_of_int nbits
        in
        acc_add acc ~w ~fs ~fb)
      ps;
    acc_result ~what:"Metric.evaluate_pairs" ~solver:None acc
  in
  if domains <= 1 then begin
    if pairs = [] then invalid_arg "Metric.evaluate_pairs: empty";
    eval_chunk pairs
  end
  else begin
    let chunks = split_chunks ~chunks:domains pairs in
    let workers =
      List.map (fun ps -> Domain.spawn (fun () -> eval_chunk ps)) chunks
    in
    match List.map Domain.join workers with
    | [] -> invalid_arg "Metric.evaluate_pairs: empty"
    | first :: rest -> List.fold_left merge first rest
  end

let pp_solver_stats fmt s =
  Format.fprintf fmt
    "@[<h>solver: %d conflicts, %d decisions, %d propagations; %d clauses emitted, %d nodes reused@]"
    s.s_conflicts s.s_decisions s.s_propagations s.s_clauses_emitted
    s.s_nodes_reused

let pp fmt r =
  Format.fprintf fmt
    "@[<v>segments: worst %.3f avg %.4f@,bits: worst %.3f avg %.4f@,(%d faults, weight %d)@]"
    r.worst_segments r.avg_segments r.worst_bits r.avg_bits r.faults
    r.total_weight;
  match r.solver with
  | None -> ()
  | Some s -> Format.fprintf fmt "@,%a" pp_solver_stats s
