module Netlist = Ftrsn_rsn.Netlist
module Config = Ftrsn_rsn.Config

type result = {
  original : Netlist.t;
  ft : Netlist.t;
  augmentation : Augment.solution;
  syn_stats : Synthesis.stats;
  orig_area : Area.report;
  ft_area : Area.report;
  area_ratios : Area.ratios;
}

let synthesize ?options net =
  let problem = Augment.of_netlist net in
  let augmentation = Augment.solve problem in
  (match Augment.verify problem augmentation.Augment.new_edges with
  | Ok () -> ()
  | Error e -> failwith ("Pipeline.synthesize: augmentation unsound: " ^ e));
  let ft, syn_stats =
    Synthesis.run ?options net ~new_edges:augmentation.Augment.new_edges
  in
  (* All original scan paths must remain configurable: in the reset state
     the fault-tolerant RSN exposes exactly the original reset path. *)
  (match
     ( Config.active_path net (Config.reset net),
       Config.active_path ft (Config.reset ft) )
   with
  | Some p0, Some p1 when p0 = p1 -> ()
  | _ -> failwith "Pipeline.synthesize: reset path not preserved");
  let orig_area = Area.of_netlist net in
  let ft_area = Area.of_netlist ~port_muxes:syn_stats.Synthesis.port_muxes ft in
  {
    original = net;
    ft;
    augmentation;
    syn_stats;
    orig_area;
    ft_area;
    area_ratios = Area.ratios ~orig:orig_area ~ft:ft_area;
  }

type evaluation = {
  orig_metric : Metric.result;
  ft_metric : Metric.result;
}

let evaluate ?sample r =
  {
    orig_metric = Metric.evaluate ?sample r.original;
    ft_metric = Metric.evaluate ?sample r.ft;
  }
