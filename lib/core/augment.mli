(** Connectivity augmentation of RSN dataflow graphs (paper §III-C/§III-D).

    Fault tolerance requires every dataflow vertex to lie on two
    vertex-independent paths from the root (primary scan-in) and two to the
    sink (primary scan-out).  By the degree characterization used in the
    paper, it suffices for every vertex of the augmented DAG to have at
    least two incoming and two outgoing edges (from/to distinct vertices),
    where a constraint is only enforced for vertices that can satisfy it in
    principle.

    The optimization chooses a minimum-cost set of additional edges from
    the potential set [E_P = {(i,j) | level j >= level i}], with
    [cost (i,j) = 1 + level j - level i] for new edges (zero for edges of
    the original graph, which are always kept), subject to acyclicity.

    Two solvers are provided:
    - {!solve_ilp} — the paper's formulation (eqs. 2-5) solved exactly by
      branch & bound with lazily separated same-level subtour cuts;
    - {!solve_flow} — a polynomial min-cost-flow reduction (the degree
      cover is a b-matching) over a windowed candidate set, with same-level
      candidates pre-oriented so the result is acyclic by construction.
      This is the scalable path used for the large ITC'02 SoCs.

    Both agree on cost for the benchmark graphs (tested): SIB-derived
    dataflow graphs have singleton topological levels, so the subtour
    constraints never bind and the window never hides an optimal edge of
    cost <= 1 + window. *)

type problem = {
  graph : Ftrsn_topo.Digraph.t;  (** the dataflow DAG *)
  levels : int array;            (** topological levels *)
  root : int;                    (** primary scan-in vertex *)
  sink : int;                    (** primary scan-out vertex *)
}

val of_netlist : Ftrsn_rsn.Netlist.t -> problem
(** The augmentation problem of a netlist's dataflow graph. *)

val edge_cost : problem -> int * int -> int
(** [1 + level j - level i] for a potential edge (0 for existing edges). *)

val demands : problem -> int array * int array
(** [(d_in, d_out)] per vertex: the missing in/out degree after accounting
    for existing edges, clamped by what the potential edge set can provide
    (root in-degree and sink out-degree are never demanded). *)

type solution = {
  new_edges : (int * int) list;  (** augmenting edges not in the original *)
  cost : int;                    (** total cost of the new edges *)
  solver : [ `Ilp | `Flow ];
  ilp_nodes : int;               (** B&B nodes explored (0 for flow) *)
  ilp_cuts : int;                (** lazy subtour cuts added (0 for flow) *)
}

val solve_ilp : ?max_nodes:int -> problem -> solution option
(** Exact branch & bound over the full potential edge set.  [None] if the
    demands are unsatisfiable.  Intended for graphs up to a few hundred
    potential edges. *)

val solve_flow : ?window:int -> problem -> solution option
(** Min-cost-flow solver over candidates with level difference at most
    [window] (default 4).  [None] if infeasible within the window. *)

val solve : problem -> solution
(** Picks {!solve_ilp} for small instances and {!solve_flow} otherwise.
    @raise Failure if the problem is infeasible. *)

val verify : problem -> (int * int) list -> (unit, string) result
(** Checks that the original graph plus [new_edges] is acyclic, meets the
    degree demands, and actually gives every vertex two vertex-independent
    paths from the root and to the sink (Menger check) — the semantic
    requirement of §III-C. *)
