module Netlist = Ftrsn_rsn.Netlist

type row = {
  name : string;
  segments : int;
  muxes : int;
  bits : int;
  levels : int;
  orig_metric : Metric.result;
  ft_metric : Metric.result;
  ratios : Area.ratios;
  new_edges : int;
  augment_cost : int;
  augment_seconds : float;
}

let row ?sample ~name net =
  let t0 = Unix.gettimeofday () in
  let r = Pipeline.synthesize net in
  let augment_seconds = Unix.gettimeofday () -. t0 in
  {
    name;
    segments = Netlist.num_segments net;
    muxes = Netlist.num_muxes net;
    bits = Netlist.total_bits net;
    levels = Netlist.max_hier net;
    orig_metric = Metric.evaluate ?sample net;
    ft_metric = Metric.evaluate ?sample r.Pipeline.ft;
    ratios = r.Pipeline.area_ratios;
    new_edges = List.length r.Pipeline.augmentation.Augment.new_edges;
    augment_cost = r.Pipeline.augmentation.Augment.cost;
    augment_seconds;
  }

let csv_header =
  "name,segments,muxes,bits,levels,\
   sib_bits_worst,sib_bits_avg,sib_segs_worst,sib_segs_avg,\
   ft_bits_worst,ft_bits_avg,ft_segs_worst,ft_segs_avg,\
   r_mux,r_bits,r_nets,r_area,new_edges,augment_cost,augment_seconds"

let to_csv r =
  Printf.sprintf "%s,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.3f,%.3f,%.3f,%.3f,%d,%d,%.2f"
    r.name r.segments r.muxes r.bits r.levels
    r.orig_metric.Metric.worst_bits r.orig_metric.Metric.avg_bits
    r.orig_metric.Metric.worst_segments r.orig_metric.Metric.avg_segments
    r.ft_metric.Metric.worst_bits r.ft_metric.Metric.avg_bits
    r.ft_metric.Metric.worst_segments r.ft_metric.Metric.avg_segments
    r.ratios.Area.r_mux r.ratios.Area.r_bits r.ratios.Area.r_nets
    r.ratios.Area.r_area r.new_edges r.augment_cost r.augment_seconds

let pp fmt r =
  Format.fprintf fmt
    "@[<v>%s: %d segments / %d muxes / %d bits / %d levels@,\
     original:       %a@,\
     fault-tolerant: %a@,\
     area ratios: %a; %d new edges (cost %d, %.2fs)@]"
    r.name r.segments r.muxes r.bits r.levels Metric.pp r.orig_metric
    Metric.pp r.ft_metric Area.pp_ratios r.ratios r.new_edges r.augment_cost
    r.augment_seconds
