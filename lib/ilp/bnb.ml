module Simplex = Ftrsn_lp.Simplex

type t = {
  nv : int;
  obj : float array;
  mutable cons : ((int * float) list * Simplex.relop * float) list;
}

let make ~num_vars ~objective =
  if Array.length objective <> num_vars then
    invalid_arg "Bnb.make: objective length mismatch";
  { nv = num_vars; obj = Array.copy objective; cons = [] }

let add_constraint t ~coeffs ~op ~rhs = t.cons <- (coeffs, op, rhs) :: t.cons
let num_vars t = t.nv

type solution = { obj : float; x : bool array }

type report = {
  best : solution option;
  optimal : bool;
  nodes : int;
  cuts : int;
}

(* A node is the list of fixed (variable, value) pairs along its branch. *)
type node = (int * bool) list

let eval_obj (t : t) x =
  let v = ref 0.0 in
  Array.iteri (fun i xi -> if xi then v := !v +. t.obj.(i)) x;
  !v

let solve ?(lazy_cuts = fun _ -> []) ?initial ?(max_nodes = 200_000)
    ?(integral_objective = false) t =
  let lp = Simplex.make ~num_vars:t.nv ~objective:t.obj in
  List.iter
    (fun (coeffs, op, rhs) -> Simplex.add_constraint lp ~coeffs ~op ~rhs)
    t.cons;
  for i = 0 to t.nv - 1 do
    Simplex.set_bounds lp i ~lo:0.0 ~hi:1.0
  done;
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  (match initial with
  | Some x0 when Array.length x0 = t.nv ->
      incumbent := Some { obj = eval_obj t x0; x = Array.copy x0 };
      incumbent_obj := eval_obj t x0
  | Some _ -> invalid_arg "Bnb.solve: initial length mismatch"
  | None -> ());
  let nodes = ref 0 in
  let cuts = ref 0 in
  let hit_limit = ref false in
  let stack : node Stack.t = Stack.create () in
  Stack.push [] stack;
  let apply_fixings fixings =
    List.iter
      (fun (i, v) ->
        if v then Simplex.set_bounds lp i ~lo:1.0 ~hi:1.0
        else Simplex.set_bounds lp i ~lo:0.0 ~hi:0.0)
      fixings
  in
  let clear_fixings fixings =
    List.iter (fun (i, _) -> Simplex.set_bounds lp i ~lo:0.0 ~hi:1.0) fixings
  in
  let prune_bound () =
    if integral_objective then !incumbent_obj -. 0.5
    else !incumbent_obj -. 1e-7
  in
  while not (Stack.is_empty stack) do
    let fixings = Stack.pop stack in
    incr nodes;
    if !nodes > max_nodes then begin
      hit_limit := true;
      Stack.clear stack
    end
    else begin
      apply_fixings fixings;
      let outcome = Simplex.solve lp in
      clear_fixings fixings;
      match outcome with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded ->
          (* Impossible with 0/1 bounds; defensive. *)
          ()
      | Simplex.Optimal { obj; x } ->
          if obj <= prune_bound () then begin
            (* Find the most fractional variable. *)
            let frac_var = ref (-1) in
            let frac_dist = ref 0.0 in
            Array.iteri
              (fun i xi ->
                let d = abs_float (xi -. Float.round xi) in
                if d > !frac_dist +. 1e-9 then begin
                  frac_dist := d;
                  frac_var := i
                end)
              x;
            if !frac_var < 0 then begin
              (* Integral candidate: check lazy cuts. *)
              let xi = Array.map (fun v -> v > 0.5) x in
              match lazy_cuts xi with
              | [] ->
                  if obj < !incumbent_obj then begin
                    incumbent := Some { obj; x = xi };
                    incumbent_obj := obj
                  end
              | violated ->
                  List.iter
                    (fun (coeffs, op, rhs) ->
                      Simplex.add_constraint lp ~coeffs ~op ~rhs;
                      t.cons <- (coeffs, op, rhs) :: t.cons;
                      incr cuts)
                    violated;
                  (* Re-explore this node with the cuts in place. *)
                  Stack.push fixings stack
            end
            else begin
              let v = !frac_var in
              (* Explore the rounded-up branch first: augmentation
                 solutions tend to include candidate edges. *)
              Stack.push ((v, false) :: fixings) stack;
              Stack.push ((v, true) :: fixings) stack
            end
          end
    end
  done;
  { best = !incumbent; optimal = not !hit_limit; nodes = !nodes; cuts = !cuts }
