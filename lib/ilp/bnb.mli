(** 0/1 integer linear programming by branch & bound over the LP
    relaxation, with support for lazily separated constraints.

    This is the optimization engine of the connectivity augmentation
    (paper §III-D, eqs. 2-5): the subtour-elimination family (4) is
    exponential, so it is supplied as a [lazy_cuts] callback that inspects
    candidate integral solutions and returns violated cuts, exactly like a
    lazy-constraint callback of a commercial solver. *)

type t

val make : num_vars:int -> objective:float array -> t
(** A minimization problem over 0/1 variables. *)

val add_constraint :
  t -> coeffs:(int * float) list -> op:Ftrsn_lp.Simplex.relop -> rhs:float -> unit

val num_vars : t -> int

type solution = { obj : float; x : bool array }

type report = {
  best : solution option;  (** incumbent, [None] if infeasible *)
  optimal : bool;          (** proven optimal (node limit not hit) *)
  nodes : int;             (** branch & bound nodes explored *)
  cuts : int;              (** lazy cuts added *)
}

val solve :
  ?lazy_cuts:(bool array -> ((int * float) list * Ftrsn_lp.Simplex.relop * float) list) ->
  ?initial:bool array ->
  ?max_nodes:int ->
  ?integral_objective:bool ->
  t ->
  report
(** [solve t] explores the 0/1 search space.  [lazy_cuts x] is called on
    every candidate integral solution; returning violated constraints
    rejects the candidate and adds the cuts globally.  [initial] primes the
    incumbent (it must be feasible for the explicit constraints; it is
    {e not} checked against lazy cuts).  [integral_objective] enables
    pruning by [ceil] when all objective coefficients are integers. *)
