module Netlist = Ftrsn_rsn.Netlist

(* SVF hex: the LAST bit shifted is the most significant.  Bits arrive
   first-shifted-first, so reverse, pad to a nibble boundary, group. *)
let hex_of_bits bits =
  let bits = List.rev bits in
  let n = List.length bits in
  let pad = (4 - (n mod 4)) mod 4 in
  let padded = List.init pad (fun _ -> false) @ bits in
  let buf = Buffer.create 16 in
  let rec go = function
    | b3 :: b2 :: b1 :: b0 :: tl ->
        let v =
          (if b3 then 8 else 0) lor (if b2 then 4 else 0)
          lor (if b1 then 2 else 0)
          lor if b0 then 1 else 0
        in
        Buffer.add_char buf "0123456789ABCDEF".[v];
        go tl
    | [] -> ()
    | _ -> assert false
  in
  go padded;
  if Buffer.length buf = 0 then "0" else Buffer.contents buf

let of_plan (net : Netlist.t) (plan : Retarget.plan) ~pattern =
  match Retarget.trace_execution net plan ~pattern with
  | Error e -> Error e
  | Ok vectors ->
      let buf = Buffer.create 1024 in
      let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      p "! %s: write access to segment %s\n" net.Netlist.net_name
        (Netlist.segment_name net plan.Retarget.target);
      p "! %d configuration CSU(s) + 1 access CSU, %d clock cycles total\n"
        (List.length plan.Retarget.steps)
        plan.Retarget.cycles;
      p "TRST OFF;\nENDDR DRPAUSE;\nSTATE RESET;\n";
      List.iter
        (fun (name, v) ->
          p "! primary control %s := %d\nPIO (%s=%d);\n" name
            (if v then 1 else 0) name
            (if v then 1 else 0))
        plan.Retarget.primaries;
      List.iteri
        (fun i (tdi, tdo) ->
          let len = List.length tdi in
          (match List.nth_opt plan.Retarget.steps i with
          | Some step ->
              p "! CSU %d: configure %s\n" i
                (String.concat ", "
                   (List.map
                      (fun (s, b, v) ->
                        Printf.sprintf "%s[%d]=%d"
                          (Netlist.segment_name net s)
                          b
                          (if v then 1 else 0))
                      step.Retarget.writes))
          | None -> p "! CSU %d: access (pattern into target)\n" i);
          p "SDR %d TDI (%s) TDO (%s) MASK (%s);\n" len (hex_of_bits tdi)
            (hex_of_bits tdo)
            (hex_of_bits (List.map (fun _ -> true) tdo)))
        vectors;
      p "STATE IDLE;\n";
      Ok (Buffer.contents buf)
