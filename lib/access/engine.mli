(** Scan-segment accessibility in fault-free and faulty RSNs (paper
    contribution 1: "a model and an algorithm to compute scan paths in
    faulty RSNs").

    The engine decides, for every scan segment [s] and a given stuck-at
    fault, whether [s] is still {e writable} (a pattern can be shifted into
    [s] and latched) and {e readable} (the captured contents of [s] can be
    shifted out unscathed), using only reachable configurations:

    - a configuration change can only be performed through segments that
      are themselves writable, so multiplexer steering is computed as a
      least fixpoint starting from the reset configuration;
    - data faults partition the path condition: writing [s] needs a
      corruption-free prefix (scan-in up to and including [s]) and a
      shiftable suffix, reading [s] the converse;
    - a select line stuck at 0 makes a segment non-shifting, which blocks
      any path through it; stuck-at-1 select faults are recoverable (the
      segment can always be kept on the active path) and treated as
      benign;
    - TMR-protected address replicas are masked; primary scan-port faults
      are masked iff the netlist has duplicated ports.

    [accessible s = writable s && readable s]. *)

type ctx
(** Preprocessed netlist information shared across fault analyses. *)

val make_ctx : Ftrsn_rsn.Netlist.t -> ctx

val netlist : ctx -> Ftrsn_rsn.Netlist.t

type verdict = {
  writable : bool array;    (** per segment *)
  readable : bool array;    (** per segment *)
  accessible : bool array;  (** per segment: writable && readable *)
}

val port_masked : ctx -> int -> bool
(** Whether faults in the given mux are bypassed by the duplicated scan
    ports (§III-E-4): the mux feeds the scan-out or a direct successor of
    the scan-in, and the netlist has [dual_ports].  Exposed so that the
    BMC engine applies the identical masking rule. *)

val analyze : ctx -> Ftrsn_fault.Fault.t option -> verdict
(** [analyze ctx fault] computes the per-segment verdicts under the given
    fault ([None] = fault-free). *)

val analyze_multi : ctx -> Ftrsn_fault.Fault.t list -> verdict
(** Accessibility under a SET of simultaneous stuck-at faults — beyond the
    paper's single-fault scope; used for the double-fault experiments. *)

val accessible_count : verdict -> int
val accessible_bits : ctx -> verdict -> int

(** {2 Fault-free baseline and cone-of-influence deltas}

    Evaluating the whole fault universe repeats almost identical work per
    fault: most stuck-ats disturb only a small cone of the dataflow graph.
    {!baseline} packages the fault-free verdict together with static
    reachability and steering-dependency tables; {!analyze_delta} then
    re-runs the writability fixpoint and the final traversals only for
    segments inside the fault's cone and splices the fault-free verdict
    for the rest.  The result is bit-identical to {!analyze} — outside the
    cone the faulty least fixpoint provably coincides with the fault-free
    one — it is just computed faster. *)

type baseline
(** Fault-free verdict plus per-vertex reach/co-reach bitsets and
    per-segment / per-mux edge dependency tables for one {!ctx}.
    Immutable once built; safe to share across domains. *)

val baseline : ctx -> baseline

val baseline_verdict : baseline -> verdict
(** The fault-free verdict ({!analyze}[ ctx None]). *)

val cone : ctx -> baseline -> Ftrsn_fault.Fault.summary -> Ftrsn_topo.Bitset.t option
(** The fault's cone of influence as a set of segment indices: an
    over-approximation of the segments whose verdict (or writability) can
    differ from the fault-free baseline.  [None] for a benign summary
    (empty cone, verdict = baseline). *)

val analyze_delta :
  ctx -> baseline -> Ftrsn_fault.Fault.summary -> verdict * int
(** [analyze_delta ctx base sm] is the verdict under the summarized fault,
    bit-identical to [analyze ctx (Some f)] for any fault [f] with summary
    [sm], together with the cone size ([0] for a benign summary).  The
    returned verdict may share arrays with {!baseline_verdict}; treat it
    as immutable. *)

type witness = {
  w_vertices : int list;
      (** dataflow vertices from scan-in to scan-out, through the target *)
  w_routes : (int * int) list list;
      (** per edge of the path, the chosen steering route: (mux, input)
          pairs that must be configured to sensitize the interconnect *)
}

val access_witness : ctx -> Ftrsn_fault.Fault.t option -> int -> witness option
(** [access_witness ctx fault s] is, if [s] is writable under the fault, a
    minimum-shift-length scan path through [s] with a corruption-free
    prefix and steerable muxes, together with the mux route chosen for each
    hop — the witness used for pattern retargeting in the faulty RSN. *)

val access_path : ctx -> Ftrsn_fault.Fault.t option -> int -> int list option
(** The vertices of {!access_witness}. *)

val read_witness : ctx -> Ftrsn_fault.Fault.t option -> int -> witness option
(** The read counterpart of {!access_witness}: a scan path through the
    target whose suffix (target to scan-out) is corruption-free and
    shiftable, so that captured contents can be observed unscathed. *)
