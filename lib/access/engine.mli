(** Scan-segment accessibility in fault-free and faulty RSNs (paper
    contribution 1: "a model and an algorithm to compute scan paths in
    faulty RSNs").

    The engine decides, for every scan segment [s] and a given stuck-at
    fault, whether [s] is still {e writable} (a pattern can be shifted into
    [s] and latched) and {e readable} (the captured contents of [s] can be
    shifted out unscathed), using only reachable configurations:

    - a configuration change can only be performed through segments that
      are themselves writable, so multiplexer steering is computed as a
      least fixpoint starting from the reset configuration;
    - data faults partition the path condition: writing [s] needs a
      corruption-free prefix (scan-in up to and including [s]) and a
      shiftable suffix, reading [s] the converse;
    - a select line stuck at 0 makes a segment non-shifting, which blocks
      any path through it; stuck-at-1 select faults are recoverable (the
      segment can always be kept on the active path) and treated as
      benign;
    - TMR-protected address replicas are masked; primary scan-port faults
      are masked iff the netlist has duplicated ports.

    [accessible s = writable s && readable s]. *)

type ctx
(** Preprocessed netlist information shared across fault analyses. *)

val make_ctx : Ftrsn_rsn.Netlist.t -> ctx

val netlist : ctx -> Ftrsn_rsn.Netlist.t

type verdict = {
  writable : bool array;    (** per segment *)
  readable : bool array;    (** per segment *)
  accessible : bool array;  (** per segment: writable && readable *)
}

val port_masked : ctx -> int -> bool
(** Whether faults in the given mux are bypassed by the duplicated scan
    ports (§III-E-4): the mux feeds the scan-out or a direct successor of
    the scan-in, and the netlist has [dual_ports].  Exposed so that the
    BMC engine applies the identical masking rule. *)

val analyze : ctx -> Ftrsn_fault.Fault.t option -> verdict
(** [analyze ctx fault] computes the per-segment verdicts under the given
    fault ([None] = fault-free). *)

val analyze_multi : ctx -> Ftrsn_fault.Fault.t list -> verdict
(** Accessibility under a SET of simultaneous stuck-at faults — beyond the
    paper's single-fault scope; used for the double-fault experiments. *)

val accessible_count : verdict -> int
val accessible_bits : ctx -> verdict -> int

(** {2 Fault-free baseline and cone-of-influence deltas}

    Evaluating the whole fault universe repeats almost identical work per
    fault: most stuck-ats disturb only a small cone of the dataflow graph.
    {!baseline} packages the fault-free verdict together with static
    reachability and steering-dependency tables; {!analyze_delta} then
    re-runs the writability fixpoint and the final traversals only for
    segments inside the fault's cone and splices the fault-free verdict
    for the rest.  The result is bit-identical to {!analyze} — outside the
    cone the faulty least fixpoint provably coincides with the fault-free
    one — it is just computed faster. *)

type baseline
(** Fault-free verdict plus per-vertex reach/co-reach bitsets and
    per-segment / per-mux edge dependency tables for one {!ctx}.
    Immutable once built; safe to share across domains. *)

val baseline : ctx -> baseline

val baseline_verdict : baseline -> verdict
(** The fault-free verdict ({!analyze}[ ctx None]). *)

val cone : ctx -> baseline -> Ftrsn_fault.Fault.summary -> Ftrsn_topo.Bitset.t option
(** The fault's cone of influence as a set of segment indices: an
    over-approximation of the segments whose verdict (or writability) can
    differ from the fault-free baseline.  [None] for a benign summary
    (empty cone, verdict = baseline). *)

type probe = {
  pr_verdict : verdict;
      (** the class verdict, = [analyze_delta]'s (may share arrays with
          the baseline verdict; treat as immutable) *)
  pr_cone : Ftrsn_topo.Bitset.t;
      (** segment indices whose verdict differs from the fault-free
          baseline — EXACT (the verdict diff) unless [pr_coarse], then
          the static reach/co-reach over-approximation *)
  pr_region : Ftrsn_topo.Bitset.t;
      (** dataflow-vertex interaction region: endpoints of every live
          edge the fault killed, corrupted, or pinned into its required
          steering value, live neighborhoods of blocked/corrupting
          segments, and the surviving boundary of every access traversal
          the fault disturbed.  Empty for purely local kill_write /
          kill_read summaries; full when [pr_coarse]. *)
  pr_fragile : Ftrsn_topo.Bitset.t;
      (** segments that stay writable under the fault but lost their
          canonical baseline write certificate (their writability rests
          on a re-routed derivation).  Empty for purely local kill
          summaries; full when [pr_coarse]. *)
  pr_supp : Ftrsn_topo.Bitset.t;
      (** vertex footprint of the founded re-route certificates backing
          the fragile segments' writability under this fault.  Empty
          when nothing is fragile; full when [pr_coarse]. *)
  pr_supp_edges : Ftrsn_topo.Bitset.t;
      (** edge footprint of the same re-route certificates (indices into
          the dataflow edge array).  Empty when nothing is fragile; full
          when [pr_coarse]. *)
  pr_rhosts : Ftrsn_topo.Bitset.t;
      (** steering hosts (segments) the re-route certificates rest on.
          Empty when nothing is fragile; full when [pr_coarse]. *)
  pr_dead_edges : Ftrsn_topo.Bitset.t;
      (** baseline-live edges this fault kills (unsteerable under the
          faulty fixpoint) or corrupts.  Subset of the edge endpoints
          folded into [pr_region]; full when [pr_coarse]. *)
  pr_dmg : Ftrsn_topo.Bitset.t;
      (** dataflow vertices the fault makes non-shifting or corrupting
          (hard blocks and data-corrupting segments).  Subset of
          [pr_region]; full when [pr_coarse]. *)
  pr_coarse : bool;
      (** the summary defeated the region analysis (dead scan ports,
          steering-improving pins on unwritable hosts, cyclic dataflow) *)
}
(** A fault class's footprint for the double-fault factorization.  Two
    summaries compose POINTWISE — the verdict under both faults is the
    bitwise AND of the two single-fault verdicts — when (a) their
    regions are DISJOINT, (b) each summary's re-route certificates
    avoid the other's damage ([pr_supp_edges] disjoint from the other's
    [pr_dead_edges], [pr_supp] disjoint from the other's [pr_dmg]), and
    (c) each summary's [pr_rhosts] avoids both the other's [pr_fragile]
    set and the other's writability losses.  Conditions (b)+(c) rule
    out mutual support: two faults that each destroy the other's only
    founded writability derivation can deflate the combined least
    fixpoint without any shared damage region; a fragile segment's
    re-route certificate provably survives the partner when the
    partner's damage (killed/corrupted live edges, blocked/corrupting
    vertices) misses its footprint and every steering host it rests on
    keeps both its writability and its canonical certificate.  Note (b)
    checks the partner's exact damage, not its whole region: the region
    also contains undamaged rim vertices that a re-route may freely
    traverse.  Under (a)-(c) the pair's accessibility counts follow
    from the single-fault results (subtract the partner's
    lost-but-still-accessible segments) and no pair fixpoint is needed.
    NOT a splice: the two faults may well taint common segments (their
    cones need not be disjoint). *)

val probe : ctx -> baseline -> Ftrsn_fault.Fault.summary -> probe
(** The verdict, tight cone and interaction region of a summary.
    [pr_cone] agrees with {!cone} (modulo [None] vs empty). *)

val analyze_delta :
  ctx -> baseline -> Ftrsn_fault.Fault.summary -> verdict * int
(** [analyze_delta ctx base sm] is the verdict under the summarized fault,
    bit-identical to [analyze ctx (Some f)] for any fault [f] with summary
    [sm], together with the cone size ([0] for a benign summary).  The
    returned verdict may share arrays with {!baseline_verdict}; treat it
    as immutable. *)

(** {2 Lane-parallel batch sweeps}

    [analyze_delta] still pays one fixpoint per class.  The lane sweep
    transposes the computation: up to {!lane_width} classes share ONE
    fixpoint — every per-vertex / per-edge predicate becomes a machine
    word whose bit L answers lane L, and word-level AND/OR/ANDN replace
    per-class boolean evaluation.  Each lane's writability is seeded
    with the baseline minus the lane's cone, so the sweep composes with
    the cone reduction; lanes whose seed is already settled never
    promote.  The per-lane verdicts are bit-identical to
    {!analyze_delta}'s, hence to {!analyze}'s. *)

val lane_width : int
(** Classes per batch: [Ftrsn_topo.Lanes.width] = [Sys.int_size] (63 on
    64-bit OCaml — the native int drops one tag bit). *)

type lane_stats = {
  ls_batches : int;  (** batch sweeps run *)
  ls_lanes : int;    (** lanes occupied across all batches *)
  ls_masked : int;   (** lanes settled at their cone seed (no promotion) *)
  ls_fast : int;     (** classes answered by the O(1) fast paths instead *)
  ls_rounds : int;   (** fixpoint rounds across all batches *)
}

val lane_stats_zero : lane_stats
val lane_stats_add : lane_stats -> lane_stats -> lane_stats

val lane_fast : baseline -> Ftrsn_fault.Fault.summary -> bool
(** Classes {!analyze_delta} answers without any traversal (benign,
    pure kill-read, local kill-write); they never occupy a lane. *)

val lane_plan :
  baseline -> Ftrsn_fault.Fault.summary array -> int list * int array list
(** [lane_plan base sms] splits the summaries into the fast indices
    (input order) and the lane batches: non-fast indices grouped by
    {!Ftrsn_fault.Fault.summary_shape} — dead-port classes, whose cones
    are the whole network, batch separately — then chunked
    {!lane_width} wide in input order.  Deterministic. *)

val analyze_lane_batch :
  ctx ->
  baseline ->
  Ftrsn_fault.Fault.summary array ->
  (verdict * int) array * lane_stats
(** One batch of [1 .. lane_width] non-fast summaries, one shared
    fixpoint: per summary the verdict and cone size, bit-identical to
    {!analyze_delta} on the same summary.  The returned stats cover
    this batch alone ([ls_batches = 1]). *)

val analyze_lanes :
  ctx -> ?base:baseline -> Ftrsn_fault.Fault.clas array -> verdict array
(** [analyze_lanes ctx classes] is the per-class verdict array,
    bit-identical to [analyze_delta ctx base cls_summary] for each
    class (fast classes via the fast paths, the rest in lane batches).
    [base] defaults to a freshly computed {!baseline}. *)

val analyze_lanes_stats :
  ctx ->
  ?base:baseline ->
  Ftrsn_fault.Fault.clas array ->
  verdict array * lane_stats
(** {!analyze_lanes} plus the accumulated batch statistics. *)

(** {2 Stacked secondary baselines (double-fault deltas)}

    The exhaustive double-fault sweep groups pairs by first fault class:
    {!stack} computes that class's faulty state once — verdict plus the
    per-edge steering/corruption caches, the exact analogue of
    {!baseline} for a faulty base — and {!analyze_delta_on} runs the
    second summary's cone-restricted delta on top, so each interacting
    pair costs one small fixpoint instead of a full {!analyze_multi}. *)

type stacked
(** A secondary baseline: the exact state of the network under one
    summarized fault, ready to receive further deltas.  Immutable once
    built; safe to share across domains. *)

val stack : ctx -> baseline -> Ftrsn_fault.Fault.summary -> stacked
(** [stack ctx base sm] is the secondary baseline under [sm]
    (the fault-free stacked state when [sm] is benign). *)

val stacked_verdict : stacked -> verdict
(** The verdict under the stacked summary (= [analyze_delta ctx base sm]'s
    verdict). *)

val analyze_delta_on :
  ctx -> stacked -> Ftrsn_fault.Fault.summary -> verdict * int
(** [analyze_delta_on ctx stk sm] is the verdict under the UNION of the
    stacked summary and [sm], bit-identical to [analyze_multi] over both
    faults, with the delta's cone size.  [analyze_delta] is the special
    case over the fault-free stacked state. *)

val analyze_lane_batch_on :
  ctx ->
  stacked ->
  Ftrsn_fault.Fault.summary array ->
  (verdict * int) array * lane_stats
(** {!analyze_lane_batch} rooted at a stacked (possibly faulty) base:
    one batch of [1 .. lane_width] non-fast, non-glitch summaries swept
    against the secondary baseline in one shared fixpoint.  The stacked
    summary's effect masks are folded into every lane, and each lane's
    writability seed is the stacked writable set minus the cone of the
    UNION of the stacked and delta summaries — so per summary the
    verdict and cone size are bit-identical to {!analyze_delta_on} on
    the same summary.  Raises [Invalid_argument] on a glitchy (transient)
    stacked base or delta: those stay scalar. *)

val analyze_lanes_on :
  ctx ->
  stacked ->
  Ftrsn_fault.Fault.summary array ->
  (verdict * int) array * lane_stats
(** Many summaries against one stacked root: fast classes through the
    scalar {!analyze_delta_on} fast paths, the rest shape-grouped and
    chunked by {!lane_plan} into {!analyze_lane_batch_on} sweeps.  Per
    summary bit-identical to {!analyze_delta_on}; a glitchy stacked root
    degrades to all-scalar (counted in [ls_fast]) instead of raising. *)

type witness = {
  w_vertices : int list;
      (** dataflow vertices from scan-in to scan-out, through the target *)
  w_routes : (int * int) list list;
      (** per edge of the path, the chosen steering route: (mux, input)
          pairs that must be configured to sensitize the interconnect *)
}

val access_witness : ctx -> Ftrsn_fault.Fault.t option -> int -> witness option
(** [access_witness ctx fault s] is, if [s] is writable under the fault, a
    minimum-shift-length scan path through [s] with a corruption-free
    prefix and steerable muxes, together with the mux route chosen for each
    hop — the witness used for pattern retargeting in the faulty RSN. *)

val access_path : ctx -> Ftrsn_fault.Fault.t option -> int -> int list option
(** The vertices of {!access_witness}. *)

val read_witness : ctx -> Ftrsn_fault.Fault.t option -> int -> witness option
(** The read counterpart of {!access_witness}: a scan path through the
    target whose suffix (target to scan-out) is corruption-free and
    shiftable, so that captured contents can be observed unscathed. *)
