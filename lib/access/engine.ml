module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault

(* Dataflow vertex ids follow Netlist.dataflow_graph: 0 = scan-in,
   1 = scan-out, 2 + i = segment i. *)
let v_pi = 0
let v_po = 1
let v_of_seg i = 2 + i
let seg_of_v v = v - 2

type edge = {
  e_src : int;
  e_dst : int;
  e_route : (int * int) list;  (* (mux, input index) pairs, consumer first *)
  (* Compiled steering requirements (performance: the metric evaluates the
     whole fault universe, so the per-edge checks must be flat arrays). *)
  e_dead : bool;  (* a constant address bit contradicts the requirement *)
  e_shadow_reqs : ((int * int) * int * int * bool * bool) array;
      (* ((mux, addr bit), seg, bit, required, reset_matches) for
         shadow-driven addresses *)
  e_addr_ports : (int * int * bool) array;
      (* (mux, addr bit, required) for lock checks, incl. primary/const *)
  e_muxes : (int * int) array;  (* (mux, input) for data-corruption checks *)
  e_detour : bool;
      (* the route steers an augmentation mux away from its default input:
         a redundant detour, only taken when the default routes fail *)
}

type ctx = {
  net : Netlist.t;
  nsegs : int;
  nv : int;
  edges : edge array;
  out_edges : int list array;  (* edge indices by source vertex *)
  in_edges : int list array;   (* edge indices by destination vertex *)
  mux_consumer : int array;    (* dataflow vertex fed by each mux *)
  pi_successor : bool array;   (* vertex has a direct edge from scan-in *)
}

let netlist ctx = ctx.net

let compile_edge (net : Netlist.t) src dst route =
  let dead = ref false in
  let detour = ref false in
  let shadow_reqs = ref [] in
  let addr_ports = ref [] in
  List.iter
    (fun (m, k) ->
      let mx = net.Netlist.muxes.(m) in
      if k >= mx.Netlist.mux_rescue_from then detour := true;
      Array.iteri
        (fun b ctrl ->
          let required = k land (1 lsl b) <> 0 in
          addr_ports := (m, b, required) :: !addr_ports;
          match ctrl with
          | Netlist.Ctrl_const c -> if c <> required then dead := true
          | Netlist.Ctrl_primary _ -> ()
          | Netlist.Ctrl_shadow { cseg; cbit } ->
              let reset_matches =
                net.Netlist.segs.(cseg).Netlist.seg_reset.(cbit) = required
              in
              shadow_reqs :=
                ((m, b), cseg, cbit, required, reset_matches) :: !shadow_reqs)
        mx.mux_addr)
    route;
  {
    e_src = src;
    e_dst = dst;
    e_route = route;
    e_dead = !dead;
    e_shadow_reqs = Array.of_list !shadow_reqs;
    e_addr_ports = Array.of_list !addr_ports;
    (* Canonical input indices: duplicated data ports are one fault site. *)
    e_muxes =
      Array.of_list
        (List.map (fun (m, k) -> (m, Netlist.mux_input_class net m k)) route);
    e_detour = !detour;
  }

let make_ctx (net : Netlist.t) =
  let nsegs = Netlist.num_segments net in
  let nv = 2 + nsegs in
  let routes = Netlist.edge_routes net in
  let edges =
    Hashtbl.fold
      (fun (src, dst) rs acc ->
        List.rev_append (List.map (compile_edge net src dst) rs) acc)
      routes []
    |> Array.of_list
  in
  let out_edges = Array.make nv [] in
  let in_edges = Array.make nv [] in
  let mux_consumer = Array.make (Netlist.num_muxes net) (-1) in
  let pi_successor = Array.make nv false in
  Array.iteri
    (fun i e ->
      out_edges.(e.e_src) <- i :: out_edges.(e.e_src);
      in_edges.(e.e_dst) <- i :: in_edges.(e.e_dst);
      if e.e_src = 0 then pi_successor.(e.e_dst) <- true;
      Array.iter (fun (m, _) -> mux_consumer.(m) <- e.e_dst) e.e_muxes)
    edges;
  { net; nsegs; nv; edges; out_edges; in_edges; mux_consumer; pi_successor }

type verdict = {
  writable : bool array;
  readable : bool array;
  accessible : bool array;
}

(* Static per-fault effects, independent of the writability fixpoint. *)
type effects = {
  hard_block : bool array;      (* segment cannot shift at all *)
  corrupt_vertex : bool array;  (* data through the segment is corrupted *)
  corrupt_in : bool array;      (* data entering the segment is corrupted *)
  corrupt_out : bool array;     (* data leaving the segment is corrupted *)
  kill_write : bool array;      (* local write capability lost *)
  kill_read : bool array;       (* local read capability lost *)
  mux_out_bad : bool array;     (* per mux: output corrupts data *)
  mutable mux_in_bad : (int * int) list;  (* (mux, input) data faults *)
  mutable locked_addr : (int * int * bool) list; (* mux addr bits forced *)
  mutable stuck_shadow : (int * int * bool) list; (* shadow bits pinned *)
  mutable pi_dead : bool;
  mutable po_dead : bool;
}

let no_effects ctx =
  {
    hard_block = Array.make ctx.nsegs false;
    corrupt_vertex = Array.make ctx.nsegs false;
    corrupt_in = Array.make ctx.nsegs false;
    corrupt_out = Array.make ctx.nsegs false;
    kill_write = Array.make ctx.nsegs false;
    kill_read = Array.make ctx.nsegs false;
    mux_out_bad = Array.make (Netlist.num_muxes ctx.net) false;
    mux_in_bad = [];
    locked_addr = [];
    stuck_shadow = [];
    pi_dead = false;
    po_dead = false;
  }

(* Muxes whose address is driven by the given shadow bit, with the bit
   position within each mux's address. *)
let driven_muxes (net : Netlist.t) seg bit =
  let result = ref [] in
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      Array.iteri
        (fun b ctrl ->
          match ctrl with
          | Netlist.Ctrl_shadow { cseg; cbit } when cseg = seg && cbit = bit ->
              result := (m, b) :: !result
          | _ -> ())
        mx.mux_addr)
    net.muxes;
  !result

(* With duplicated scan ports (§III-E-4), the secondary scan-in is wired to
   the input of every successor of the primary scan-in, and every
   predecessor of the primary scan-out is wired to the secondary scan-out.
   A fault in a mux feeding such a vertex (or feeding the scan-out) is
   therefore bypassed by the port switch: data can enter the vertex from
   the secondary scan-in, or be observed at the secondary scan-out,
   without traversing the faulty mux. *)
let port_mux_masked ctx m =
  ctx.net.Netlist.dual_ports
  &&
  let c = ctx.mux_consumer.(m) in
  c = v_po || (c >= 0 && ctx.pi_successor.(c))

let port_masked = port_mux_masked

(* Accumulates one fault's contribution into [e]; composable, so the same
   machinery analyzes multi-fault scenarios (beyond the paper's single
   stuck-at scope). *)
let add_fault_effects ctx e (f : Fault.t) =
  match f with
  | f when Fault.is_masked ctx.net f -> e
  | { site; stuck } -> (
      let net = ctx.net in
      match site with
      | Fault.Seg_scan_in i ->
          e.corrupt_in.(i) <- true;
          (* The corrupted stream also fills the segment itself. *)
          e.kill_write.(i) <- true;
          e
      | Fault.Seg_scan_out i ->
          e.corrupt_out.(i) <- true;
          e.kill_read.(i) <- true;
          e
      | Fault.Seg_shift_reg i ->
          e.corrupt_vertex.(i) <- true;
          e.kill_write.(i) <- true;
          e.kill_read.(i) <- true;
          e
      | Fault.Seg_shadow_reg (i, b) ->
          (* The pinned bit breaks the segment's own write interface and
             freezes every address line it drives. *)
          e.kill_write.(i) <- true;
          let driven = driven_muxes net i b in
          let tmr_protected =
            driven <> []
            && List.for_all (fun (m, _) -> net.muxes.(m).Netlist.mux_tmr) driven
          in
          if tmr_protected then begin
            (* Register replica outvoted: only the segment's write interface
               of that bit is affected. *)
            e
          end
          else begin
            e.stuck_shadow <- (i, b, stuck) :: e.stuck_shadow;
            e
          end
      | Fault.Seg_select i ->
          (* Stuck-at-0 prevents shifting; stuck-at-1 is recoverable by
             keeping the segment on every active path. *)
          if not stuck then e.hard_block.(i) <- true;
          e
      | Fault.Seg_capture_en i ->
          (* Never-capture kills read; always-capture is the normal
             behaviour of a selected segment. *)
          if not stuck then e.kill_read.(i) <- true;
          e
      | Fault.Seg_update_en i ->
          if not stuck then begin
            e.kill_write.(i) <- true;
            (* Shadow frozen at reset: address lines driven by this segment
               can never change.  Modelled by treating the segment as an
               unwritable steering driver (the fixpoint already consults
               writability), which kill_write achieves. *)
            ()
          end;
          e
      | Fault.Mux_addr (m, b) ->
          if not (port_mux_masked ctx m) then
            e.locked_addr <- (m, b, stuck) :: e.locked_addr;
          e
      | Fault.Mux_addr_replica _ -> e
      | Fault.Mux_data_in (m, k) ->
          if not (port_mux_masked ctx m) then
            e.mux_in_bad <- (m, Netlist.mux_input_class net m k) :: e.mux_in_bad;
          e
      | Fault.Mux_out m ->
          if not (port_mux_masked ctx m) then e.mux_out_bad.(m) <- true;
          e
      | Fault.Primary_in ->
          if not net.Netlist.dual_ports then e.pi_dead <- true;
          e
      | Fault.Primary_out ->
          if not net.Netlist.dual_ports then e.po_dead <- true;
          e)

let effects_of_faults ctx faults =
  List.fold_left (add_fault_effects ctx) (no_effects ctx) faults

let effects_of_fault ctx (f : Fault.t option) =
  effects_of_faults ctx (Option.to_list f)

(* Is an edge's data corrupted by the fault (mux data faults and the
   endpoint port faults)? *)
let edge_corrupt eff edge =
  (let bad = ref false in
   Array.iter
     (fun (m, k) ->
       if eff.mux_out_bad.(m) then bad := true
       else if List.mem (m, k) eff.mux_in_bad then bad := true)
     edge.e_muxes;
   !bad)
  || (edge.e_src >= 2 && eff.corrupt_out.(seg_of_v edge.e_src))
  || (edge.e_dst >= 2 && eff.corrupt_in.(seg_of_v edge.e_dst))

(* Can the muxes along an edge's route be steered to sensitize it, given
   the current set of writable segments?  A driver not (yet) writable must
   already hold the required value in its reset state (or be pinned to it
   by the fault). *)
let edge_steerable _ctx eff writable edge =
  (not edge.e_dead)
  && (eff.locked_addr = []
     ||
     let ok = ref true in
     Array.iter
       (fun (m', b', required) ->
         List.iter
           (fun (m, b, v) -> if m = m' && b = b' && v <> required then ok := false)
           eff.locked_addr)
       edge.e_addr_ports;
     !ok)
  &&
  let ok = ref true in
  Array.iter
    (fun (port, cseg, cbit, required, reset_matches) ->
      (* A port locked to the required value overrides its driver. *)
      let locked_right =
        List.exists (fun (m, b, v) -> (m, b) = port && v = required)
          eff.locked_addr
      in
      if not locked_right then
        match
          List.find_opt (fun (s', b', _) -> s' = cseg && b' = cbit)
            eff.stuck_shadow
        with
        | Some (_, _, v) -> if v <> required then ok := false
        | None -> if (not writable.(cseg)) && not reset_matches then ok := false)
    edge.e_shadow_reqs;
  !ok

(* Vertex can shift data through (ports always; segments unless hard
   blocked). *)
let shiftable eff v = v < 2 || not eff.hard_block.(seg_of_v v)

(* Vertex passes data through uncorrupted. *)
let clean_through eff v = v < 2 || not (eff.corrupt_vertex.(seg_of_v v))

(* Forward reachability from scan-in over steerable edges.  [clean] selects
   whether data integrity is required along the way. *)
let reach_from_pi ctx eff writable ~clean =
  let ok = Array.make ctx.nv false in
  if not (clean && eff.pi_dead) then begin
    ok.(v_pi) <- true;
    let q = Queue.create () in
    Queue.add v_pi q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun ei ->
          let e = ctx.edges.(ei) in
          let v = e.e_dst in
          if
            (not ok.(v))
            && v <> v_po
            (* Data integrity (and the ability to shift) matter only in
               clean mode: the non-clean prefix/suffix of an access just
               has to exist topologically — segments behind the target
               may hold frozen or corrupted data without affecting it.
               Membership only needs clean data INTO v; v's own through-
               corruption is checked when extending beyond v. *)
            && ((not clean) || shiftable eff v)
            && (not clean || not (edge_corrupt eff e))
            && edge_steerable ctx eff writable e
          then begin
            (* In clean mode the source must also pass data through
               uncorrupted (except the scan-in port itself). *)
            if (not clean) || u = v_pi || clean_through eff u then begin
              ok.(v) <- true;
              Queue.add v q
            end
          end)
        ctx.out_edges.(u)
    done
  end;
  ok

(* Backward reachability to scan-out over steerable edges. *)
let coreach_to_po ctx eff writable ~clean =
  let ok = Array.make ctx.nv false in
  if not (clean && eff.po_dead) then begin
    ok.(v_po) <- true;
    let q = Queue.create () in
    Queue.add v_po q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun ei ->
          let e = ctx.edges.(ei) in
          let u = e.e_src in
          if
            (not ok.(u))
            && u <> v_pi
            && ((not clean) || shiftable eff u)
            && (not clean
               || ((not (edge_corrupt eff e)) && clean_through eff u))
            && edge_steerable ctx eff writable e
          then begin
            ok.(u) <- true;
            Queue.add u q
          end)
        ctx.in_edges.(v)
    done
  end;
  ok

(* Direct scan-in -> scan-out edges don't matter for segment access, and
   [reach_from_pi] never enters v_po; symmetric for the co-reach. *)

let fixpoint_writable ctx eff =
  let writable = Array.make ctx.nsegs false in
  let changed = ref true in
  while !changed do
    changed := false;
    let rw = reach_from_pi ctx eff writable ~clean:true in
    let s_any = coreach_to_po ctx eff writable ~clean:false in
    for i = 0 to ctx.nsegs - 1 do
      if
        (not writable.(i))
        && rw.(v_of_seg i)
        && s_any.(v_of_seg i)
        && (not eff.kill_write.(i))
        && (not eff.pi_dead)
      then begin
        writable.(i) <- true;
        changed := true
      end
    done
  done;
  writable

let analyze_multi ctx faults =
  let eff = effects_of_faults ctx faults in
  let writable = fixpoint_writable ctx eff in
  let r_any = reach_from_pi ctx eff writable ~clean:false in
  let s_clean = coreach_to_po ctx eff writable ~clean:true in
  let readable = Array.make ctx.nsegs false in
  for i = 0 to ctx.nsegs - 1 do
    readable.(i) <-
      r_any.(v_of_seg i)
      && s_clean.(v_of_seg i)
      && (not eff.kill_read.(i))
      && (not eff.corrupt_vertex.(i))
      && (not eff.po_dead)
  done;
  let accessible = Array.init ctx.nsegs (fun i -> writable.(i) && readable.(i)) in
  { writable; readable; accessible }

let analyze ctx fault = analyze_multi ctx (Option.to_list fault)

let accessible_count v =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v.accessible

let accessible_bits ctx v =
  let total = ref 0 in
  Array.iteri
    (fun i b -> if b then total := !total + Netlist.seg_len ctx.net i)
    v.accessible;
  !total

(* Dijkstra over dataflow vertices minimizing the scan-bit length of the
   path (the per-CSU shift-cycle count).  [edge_ok] filters usable edges.
   Returns the predecessor array, or distances of unreached vertices as
   max_int. *)
let shortest_paths ctx ~src ~edge_ok ~vertex_ok =
  let n = ctx.nv in
  (* Detour edges carry a dominating penalty so that witnesses use the
     original routes whenever possible — this keeps fault-free retargeting
     plans (and access latency) identical to the original RSN's, as §IV of
     the paper requires. *)
  let detour_penalty = (4 * Netlist.total_bits ctx.net) + 16 in
  let weight v =
    if v < 2 then 0 else Netlist.seg_len ctx.net (seg_of_v v)
  in
  let dist = Array.make n max_int in
  let prev = Array.make n (-1) in
  (* prev_edge.(v) is the edge index used to reach v *)
  let prev_edge = Array.make n (-1) in
  let done_ = Array.make n false in
  dist.(src) <- 0;
  let continue = ref true in
  while !continue do
    (* O(V^2) selection: dataflow graphs here have a few thousand
       vertices at most. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not done_.(v)) && dist.(v) < max_int
         && (!best < 0 || dist.(v) < dist.(!best))
      then best := v
    done;
    if !best < 0 then continue := false
    else begin
      let u = !best in
      done_.(u) <- true;
      List.iter
        (fun ei ->
          let e = ctx.edges.(ei) in
          let v = e.e_dst in
          if (not done_.(v)) && vertex_ok v && edge_ok e then begin
            let d =
              dist.(u) + weight v
              + if e.e_detour then detour_penalty else 0
            in
            if d < dist.(v) then begin
              dist.(v) <- d;
              prev.(v) <- u;
              prev_edge.(v) <- ei
            end
          end)
        ctx.out_edges.(u)
    end
  done;
  (dist, prev, prev_edge)

type witness = {
  w_vertices : int list;             (** scan-in .. scan-out *)
  w_routes : (int * int) list list;  (** steering route per edge, in order *)
}

let access_witness ctx fault s =
  let eff = effects_of_fault ctx fault in
  let writable = fixpoint_writable ctx eff in
  let target = v_of_seg s in
  let feasible =
    let rw = reach_from_pi ctx eff writable ~clean:true in
    let s_any = coreach_to_po ctx eff writable ~clean:false in
    rw.(target) && s_any.(target) && not eff.kill_write.(s)
  in
  if not feasible then None
  else begin
    (* The witness must be realizable BEFORE the target has ever been
       written, so its routes may not be steered by bits hosted in the
       target itself.  The fixpoint guarantees such a path exists: the
       target entered the writable set using only previously-writable
       hosts. *)
    let writable = Array.copy writable in
    writable.(s) <- false;
    let rw = reach_from_pi ctx eff writable ~clean:true in
    let s_any = coreach_to_po ctx eff writable ~clean:false in
    (* Minimum-bit prefix over clean steerable edges, then minimum-bit
       suffix over shiftable steerable edges. *)
    let prefix_edge_ok e =
      (not (edge_corrupt eff e))
      && edge_steerable ctx eff writable e
      && (e.e_src = v_pi || (rw.(e.e_src) && clean_through eff e.e_src))
    in
    let prefix_vertex_ok v = v = target || (v <> v_po && rw.(v)) in
    let _, pre_prev, pre_edge =
      shortest_paths ctx ~src:v_pi ~edge_ok:prefix_edge_ok
        ~vertex_ok:prefix_vertex_ok
    in
    let suffix_edge_ok e =
      edge_steerable ctx eff writable e
      && (e.e_src = target || s_any.(e.e_src))
    in
    let suffix_vertex_ok v = v = v_po || s_any.(v) in
    let _, suf_prev, suf_edge =
      shortest_paths ctx ~src:target ~edge_ok:suffix_edge_ok
        ~vertex_ok:suffix_vertex_ok
    in
    let rec unwind prev prev_e v acc_v acc_e =
      if prev.(v) < 0 then
        if v = v_pi || v = target then Some (v :: acc_v, acc_e) else None
      else
        unwind prev prev_e prev.(v) (v :: acc_v)
          (ctx.edges.(prev_e.(v)).e_route :: acc_e)
    in
    match
      (unwind pre_prev pre_edge target [] [],
       unwind suf_prev suf_edge v_po [] [])
    with
    | Some (pre_v, pre_r), Some (_ :: suf_v, suf_r) ->
        Some { w_vertices = pre_v @ suf_v; w_routes = pre_r @ suf_r }
    | _ -> None
  end

let access_path ctx fault s =
  Option.map (fun w -> w.w_vertices) (access_witness ctx fault s)

(* Read counterpart: a path through the target whose SUFFIX (target to
   scan-out) is corruption-free and shiftable, while the prefix only needs
   to exist topologically.  Same self-steering exclusion as the write
   witness. *)
let read_witness ctx fault s =
  let eff = effects_of_fault ctx fault in
  let writable = fixpoint_writable ctx eff in
  let target = v_of_seg s in
  let feasible =
    let r_any = reach_from_pi ctx eff writable ~clean:false in
    let s_clean = coreach_to_po ctx eff writable ~clean:true in
    r_any.(target) && s_clean.(target)
    && (not eff.kill_read.(s))
    && (not eff.corrupt_vertex.(s))
    && not eff.po_dead
  in
  if not feasible then None
  else begin
    (* Unlike the write witness, steering by the target's own bits is
       allowed here whenever the target is writable: the bit can be
       pre-written (a write needs no clean suffix), then the read follows.
       An unwritable target is already excluded by the fixpoint. *)
    let r_any = reach_from_pi ctx eff writable ~clean:false in
    let s_clean = coreach_to_po ctx eff writable ~clean:true in
    if not (r_any.(target) && s_clean.(target)) then None
    else begin
      let prefix_edge_ok e =
        edge_steerable ctx eff writable e
        && (e.e_src = v_pi || r_any.(e.e_src))
      in
      let prefix_vertex_ok v = v = target || (v <> v_po && r_any.(v)) in
      let _, pre_prev, pre_edge =
        shortest_paths ctx ~src:v_pi ~edge_ok:prefix_edge_ok
          ~vertex_ok:prefix_vertex_ok
      in
      let suffix_edge_ok e =
        (not (edge_corrupt eff e))
        && edge_steerable ctx eff writable e
        && (e.e_src = target || (s_clean.(e.e_src) && clean_through eff e.e_src))
        && shiftable eff e.e_src
      in
      let suffix_vertex_ok v =
        v = v_po || (s_clean.(v) && shiftable eff v)
      in
      let _, suf_prev, suf_edge =
        shortest_paths ctx ~src:target ~edge_ok:suffix_edge_ok
          ~vertex_ok:suffix_vertex_ok
      in
      let rec unwind prev prev_e v acc_v acc_e =
        if prev.(v) < 0 then
          if v = v_pi || v = target then Some (v :: acc_v, acc_e) else None
        else
          unwind prev prev_e prev.(v) (v :: acc_v)
            (ctx.edges.(prev_e.(v)).e_route :: acc_e)
      in
      match
        (unwind pre_prev pre_edge target [] [],
         unwind suf_prev suf_edge v_po [] [])
      with
      | Some (pre_v, pre_r), Some (_ :: suf_v, suf_r) ->
          Some { w_vertices = pre_v @ suf_v; w_routes = pre_r @ suf_r }
      | _ -> None
    end
  end
