module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Bitset = Ftrsn_topo.Bitset
module Lanes = Ftrsn_topo.Lanes
module Digraph = Ftrsn_topo.Digraph
module Order = Ftrsn_topo.Order

(* Dataflow vertex ids follow Netlist.dataflow_graph: 0 = scan-in,
   1 = scan-out, 2 + i = segment i. *)
let v_pi = 0
let v_po = 1
let v_of_seg i = 2 + i
let seg_of_v v = v - 2

type edge = {
  e_src : int;
  e_dst : int;
  e_route : (int * int) list;  (* (mux, input index) pairs, consumer first *)
  (* Compiled steering requirements (performance: the metric evaluates the
     whole fault universe, so the per-edge checks must be flat arrays). *)
  e_dead : bool;  (* a constant address bit contradicts the requirement *)
  e_shadow_reqs : ((int * int) * int * int * bool * bool) array;
      (* ((mux, addr bit), seg, bit, required, reset_matches) for
         shadow-driven addresses *)
  e_addr_ports : (int * int * bool) array;
      (* (mux, addr bit, required) for lock checks, incl. primary/const *)
  e_muxes : (int * int) array;  (* (mux, input) for data-corruption checks *)
  e_detour : bool;
      (* the route steers an augmentation mux away from its default input:
         a redundant detour, only taken when the default routes fail *)
}

type ctx = {
  net : Netlist.t;
  nsegs : int;
  nv : int;
  edges : edge array;
  out_edges : int list array;  (* edge indices by source vertex *)
  in_edges : int list array;   (* edge indices by destination vertex *)
  mux_consumer : int array;    (* dataflow vertex fed by each mux *)
  pi_successor : bool array;   (* vertex has a direct edge from scan-in *)
}

let netlist ctx = ctx.net

let compile_edge (net : Netlist.t) src dst route =
  let dead = ref false in
  let detour = ref false in
  let shadow_reqs = ref [] in
  let addr_ports = ref [] in
  List.iter
    (fun (m, k) ->
      let mx = net.Netlist.muxes.(m) in
      if k >= mx.Netlist.mux_rescue_from then detour := true;
      Array.iteri
        (fun b ctrl ->
          let required = k land (1 lsl b) <> 0 in
          addr_ports := (m, b, required) :: !addr_ports;
          match ctrl with
          | Netlist.Ctrl_const c -> if c <> required then dead := true
          | Netlist.Ctrl_primary _ -> ()
          | Netlist.Ctrl_shadow { cseg; cbit } ->
              let reset_matches =
                net.Netlist.segs.(cseg).Netlist.seg_reset.(cbit) = required
              in
              shadow_reqs :=
                ((m, b), cseg, cbit, required, reset_matches) :: !shadow_reqs)
        mx.mux_addr)
    route;
  {
    e_src = src;
    e_dst = dst;
    e_route = route;
    e_dead = !dead;
    e_shadow_reqs = Array.of_list !shadow_reqs;
    e_addr_ports = Array.of_list !addr_ports;
    (* Canonical input indices: duplicated data ports are one fault site. *)
    e_muxes =
      Array.of_list
        (List.map (fun (m, k) -> (m, Netlist.mux_input_class net m k)) route);
    e_detour = !detour;
  }

let make_ctx (net : Netlist.t) =
  let nsegs = Netlist.num_segments net in
  let nv = 2 + nsegs in
  let routes = Netlist.edge_routes net in
  let edges =
    Hashtbl.fold
      (fun (src, dst) rs acc ->
        List.rev_append (List.map (compile_edge net src dst) rs) acc)
      routes []
    |> Array.of_list
  in
  let out_edges = Array.make nv [] in
  let in_edges = Array.make nv [] in
  let mux_consumer = Array.make (Netlist.num_muxes net) (-1) in
  let pi_successor = Array.make nv false in
  Array.iteri
    (fun i e ->
      out_edges.(e.e_src) <- i :: out_edges.(e.e_src);
      in_edges.(e.e_dst) <- i :: in_edges.(e.e_dst);
      if e.e_src = 0 then pi_successor.(e.e_dst) <- true;
      Array.iter (fun (m, _) -> mux_consumer.(m) <- e.e_dst) e.e_muxes)
    edges;
  { net; nsegs; nv; edges; out_edges; in_edges; mux_consumer; pi_successor }

type verdict = {
  writable : bool array;
  readable : bool array;
  accessible : bool array;
}

(* Static per-fault effects, independent of the writability fixpoint. *)
type effects = {
  hard_block : bool array;      (* segment cannot shift at all *)
  corrupt_vertex : bool array;  (* data through the segment is corrupted *)
  corrupt_in : bool array;      (* data entering the segment is corrupted *)
  corrupt_out : bool array;     (* data leaving the segment is corrupted *)
  kill_write : bool array;      (* local write capability lost *)
  kill_read : bool array;       (* local read capability lost *)
  mux_out_bad : bool array;     (* per mux: output corrupts data *)
  mutable mux_in_bad : (int * int) list;  (* (mux, input) data faults *)
  mutable locked_addr : (int * int * bool) list; (* mux addr bits forced *)
  mutable stuck_shadow : (int * int * bool) list; (* shadow bits pinned *)
  mutable glitch_shadow : (int * int * bool) list;
      (* shadow bits whose INITIAL value is upset (transient faults): the
         bit starts at the given value instead of its reset state but
         remains rewritable — it only changes [edge_steerable]'s
         reset-value fallback, never pins *)
  mutable pi_dead : bool;
  mutable po_dead : bool;
}

let no_effects ctx =
  {
    hard_block = Array.make ctx.nsegs false;
    corrupt_vertex = Array.make ctx.nsegs false;
    corrupt_in = Array.make ctx.nsegs false;
    corrupt_out = Array.make ctx.nsegs false;
    kill_write = Array.make ctx.nsegs false;
    kill_read = Array.make ctx.nsegs false;
    mux_out_bad = Array.make (Netlist.num_muxes ctx.net) false;
    mux_in_bad = [];
    locked_addr = [];
    stuck_shadow = [];
    glitch_shadow = [];
    pi_dead = false;
    po_dead = false;
  }

(* Snapshot of an effects record: the bool arrays are copied (folding a
   further summary into the copy must not disturb the original), the lists
   and flags are immutable values and shared. *)
let effects_copy e =
  {
    hard_block = Array.copy e.hard_block;
    corrupt_vertex = Array.copy e.corrupt_vertex;
    corrupt_in = Array.copy e.corrupt_in;
    corrupt_out = Array.copy e.corrupt_out;
    kill_write = Array.copy e.kill_write;
    kill_read = Array.copy e.kill_read;
    mux_out_bad = Array.copy e.mux_out_bad;
    mux_in_bad = e.mux_in_bad;
    locked_addr = e.locked_addr;
    stuck_shadow = e.stuck_shadow;
    glitch_shadow = e.glitch_shadow;
    pi_dead = e.pi_dead;
    po_dead = e.po_dead;
  }

(* With duplicated scan ports (§III-E-4), the secondary scan-in is wired to
   the input of every successor of the primary scan-in, and every
   predecessor of the primary scan-out is wired to the secondary scan-out.
   A fault in a mux feeding such a vertex (or feeding the scan-out) is
   therefore bypassed by the port switch: data can enter the vertex from
   the secondary scan-in, or be observed at the secondary scan-out,
   without traversing the faulty mux. *)
let port_mux_masked ctx m =
  ctx.net.Netlist.dual_ports
  &&
  let c = ctx.mux_consumer.(m) in
  c = v_po || (c >= 0 && ctx.pi_successor.(c))

let port_masked = port_mux_masked

(* Folds one fault's canonical semantic summary (see {!Fault.summarize} —
   the single place the stuck-at case analysis lives; the BMC engine
   derives its predicates from the same summaries) into [e]; composable,
   so the same machinery analyzes multi-fault scenarios (beyond the
   paper's single stuck-at scope). *)
let add_summary_effects e (sm : Fault.summary) =
  let set a i = a.(i) <- true in
  List.iter (set e.hard_block) sm.Fault.sm_hard_block;
  List.iter (set e.corrupt_vertex) sm.Fault.sm_corrupt_vertex;
  List.iter (set e.corrupt_in) sm.Fault.sm_corrupt_in;
  List.iter (set e.corrupt_out) sm.Fault.sm_corrupt_out;
  List.iter (set e.kill_write) sm.Fault.sm_kill_write;
  List.iter (set e.kill_read) sm.Fault.sm_kill_read;
  List.iter (set e.mux_out_bad) sm.Fault.sm_mux_out;
  e.mux_in_bad <- sm.Fault.sm_mux_in @ e.mux_in_bad;
  e.locked_addr <- sm.Fault.sm_locked_addr @ e.locked_addr;
  e.stuck_shadow <- sm.Fault.sm_stuck_shadow @ e.stuck_shadow;
  e.glitch_shadow <- sm.Fault.sm_glitch_shadow @ e.glitch_shadow;
  if sm.Fault.sm_pi_dead then e.pi_dead <- true;
  if sm.Fault.sm_po_dead then e.po_dead <- true;
  e

let summarize ctx f =
  Fault.summarize ~port_masked:(port_mux_masked ctx) ctx.net f

let add_fault_effects ctx e (f : Fault.t) =
  add_summary_effects e (summarize ctx f)

let effects_of_faults ctx faults =
  List.fold_left (add_fault_effects ctx) (no_effects ctx) faults

let effects_of_fault ctx (f : Fault.t option) =
  effects_of_faults ctx (Option.to_list f)

(* Is an edge's data corrupted by the fault (mux data faults and the
   endpoint port faults)? *)
let edge_corrupt eff edge =
  (let bad = ref false in
   Array.iter
     (fun (m, k) ->
       if eff.mux_out_bad.(m) then bad := true
       else if List.mem (m, k) eff.mux_in_bad then bad := true)
     edge.e_muxes;
   !bad)
  || (edge.e_src >= 2 && eff.corrupt_out.(seg_of_v edge.e_src))
  || (edge.e_dst >= 2 && eff.corrupt_in.(seg_of_v edge.e_dst))

(* Can the muxes along an edge's route be steered to sensitize it, given
   the current set of writable segments?  A driver not (yet) writable must
   already hold the required value in its reset state (or be pinned to it
   by the fault). *)
let edge_steerable _ctx eff writable edge =
  (not edge.e_dead)
  && (eff.locked_addr = []
     ||
     let ok = ref true in
     Array.iter
       (fun (m', b', required) ->
         List.iter
           (fun (m, b, v) -> if m = m' && b = b' && v <> required then ok := false)
           eff.locked_addr)
       edge.e_addr_ports;
     !ok)
  &&
  let ok = ref true in
  Array.iter
    (fun (port, cseg, cbit, required, reset_matches) ->
      (* A port locked to the required value overrides its driver. *)
      let locked_right =
        List.exists (fun (m, b, v) -> (m, b) = port && v = required)
          eff.locked_addr
      in
      if not locked_right then begin
        (* Multi-fault effects can pin the same bit more than once — even
           to both values.  The check must not depend on effect order (the
           pair reduction relies on commutativity), so scan every entry:
           any pin to the wrong value defeats the requirement (two
           conflicting pins therefore kill the mux for both polarities), a
           pin to the required value satisfies it, and an unpinned bit
           falls back to the writability/reset rule. *)
        let pinned = ref false and wrong = ref false in
        List.iter
          (fun (s', b', v) ->
            if s' = cseg && b' = cbit then begin
              pinned := true;
              if v <> required then wrong := true
            end)
          eff.stuck_shadow;
        if !wrong then ok := false
        else if not !pinned then begin
          (* A transient upset replaces the bit's INITIAL value: a
             not-yet-writable host satisfies the requirement iff the
             value the bit actually starts at matches (the glitched
             value if upset, the reset value otherwise). *)
          let starts_right = ref reset_matches in
          (match eff.glitch_shadow with
          | [] -> ()
          | gl ->
              List.iter
                (fun (s', b', v) ->
                  if s' = cseg && b' = cbit then starts_right := v = required)
                gl);
          if (not writable.(cseg)) && not !starts_right then ok := false
        end
      end)
    edge.e_shadow_reqs;
  !ok

(* Vertex can shift data through (ports always; segments unless hard
   blocked). *)
let shiftable eff v = v < 2 || not eff.hard_block.(seg_of_v v)

(* Vertex passes data through uncorrupted. *)
let clean_through eff v = v < 2 || not (eff.corrupt_vertex.(seg_of_v v))

(* Forward reachability from scan-in over steerable edges.  [clean] selects
   whether data integrity is required along the way. *)
let reach_from_pi ctx eff writable ~clean =
  let ok = Array.make ctx.nv false in
  if not (clean && eff.pi_dead) then begin
    ok.(v_pi) <- true;
    let q = Queue.create () in
    Queue.add v_pi q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun ei ->
          let e = ctx.edges.(ei) in
          let v = e.e_dst in
          if
            (not ok.(v))
            && v <> v_po
            (* Data integrity (and the ability to shift) matter only in
               clean mode: the non-clean prefix/suffix of an access just
               has to exist topologically — segments behind the target
               may hold frozen or corrupted data without affecting it.
               Membership only needs clean data INTO v; v's own through-
               corruption is checked when extending beyond v. *)
            && ((not clean) || shiftable eff v)
            && (not clean || not (edge_corrupt eff e))
            && edge_steerable ctx eff writable e
          then begin
            (* In clean mode the source must also pass data through
               uncorrupted (except the scan-in port itself). *)
            if (not clean) || u = v_pi || clean_through eff u then begin
              ok.(v) <- true;
              Queue.add v q
            end
          end)
        ctx.out_edges.(u)
    done
  end;
  ok

(* Backward reachability to scan-out over steerable edges. *)
let coreach_to_po ctx eff writable ~clean =
  let ok = Array.make ctx.nv false in
  if not (clean && eff.po_dead) then begin
    ok.(v_po) <- true;
    let q = Queue.create () in
    Queue.add v_po q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun ei ->
          let e = ctx.edges.(ei) in
          let u = e.e_src in
          if
            (not ok.(u))
            && u <> v_pi
            && ((not clean) || shiftable eff u)
            && (not clean
               || ((not (edge_corrupt eff e)) && clean_through eff u))
            && edge_steerable ctx eff writable e
          then begin
            ok.(u) <- true;
            Queue.add u q
          end)
        ctx.in_edges.(v)
    done
  end;
  ok

(* Direct scan-in -> scan-out edges don't matter for segment access, and
   [reach_from_pi] never enters v_po; symmetric for the co-reach. *)

let fixpoint_writable ctx eff =
  let writable = Array.make ctx.nsegs false in
  let changed = ref true in
  while !changed do
    changed := false;
    let rw = reach_from_pi ctx eff writable ~clean:true in
    let s_any = coreach_to_po ctx eff writable ~clean:false in
    for i = 0 to ctx.nsegs - 1 do
      if
        (not writable.(i))
        && rw.(v_of_seg i)
        && s_any.(v_of_seg i)
        && (not eff.kill_write.(i))
        && (not eff.pi_dead)
      then begin
        writable.(i) <- true;
        changed := true
      end
    done
  done;
  writable

let verdict_of_effects ctx eff =
  let writable = fixpoint_writable ctx eff in
  let r_any = reach_from_pi ctx eff writable ~clean:false in
  let s_clean = coreach_to_po ctx eff writable ~clean:true in
  let readable = Array.make ctx.nsegs false in
  for i = 0 to ctx.nsegs - 1 do
    readable.(i) <-
      r_any.(v_of_seg i)
      && s_clean.(v_of_seg i)
      && (not eff.kill_read.(i))
      && (not eff.corrupt_vertex.(i))
      && (not eff.po_dead)
  done;
  let accessible = Array.init ctx.nsegs (fun i -> writable.(i) && readable.(i)) in
  { writable; readable; accessible }

let analyze_multi ctx faults =
  verdict_of_effects ctx (effects_of_faults ctx faults)

let analyze ctx fault = analyze_multi ctx (Option.to_list fault)

let accessible_count v =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v.accessible

let accessible_bits ctx v =
  let total = ref 0 in
  Array.iteri
    (fun i b -> if b then total := !total + Netlist.seg_len ctx.net i)
    v.accessible;
  !total

(* Dijkstra over dataflow vertices minimizing the scan-bit length of the
   path (the per-CSU shift-cycle count).  [edge_ok] filters usable edges.
   Returns the predecessor array, or distances of unreached vertices as
   max_int. *)
let shortest_paths ctx ~src ~edge_ok ~vertex_ok =
  let n = ctx.nv in
  (* Detour edges carry a dominating penalty so that witnesses use the
     original routes whenever possible — this keeps fault-free retargeting
     plans (and access latency) identical to the original RSN's, as §IV of
     the paper requires. *)
  let detour_penalty = (4 * Netlist.total_bits ctx.net) + 16 in
  let weight v =
    if v < 2 then 0 else Netlist.seg_len ctx.net (seg_of_v v)
  in
  let dist = Array.make n max_int in
  let prev = Array.make n (-1) in
  (* prev_edge.(v) is the edge index used to reach v *)
  let prev_edge = Array.make n (-1) in
  let done_ = Array.make n false in
  dist.(src) <- 0;
  let continue = ref true in
  while !continue do
    (* O(V^2) selection: dataflow graphs here have a few thousand
       vertices at most. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not done_.(v)) && dist.(v) < max_int
         && (!best < 0 || dist.(v) < dist.(!best))
      then best := v
    done;
    if !best < 0 then continue := false
    else begin
      let u = !best in
      done_.(u) <- true;
      List.iter
        (fun ei ->
          let e = ctx.edges.(ei) in
          let v = e.e_dst in
          if (not done_.(v)) && vertex_ok v && edge_ok e then begin
            let d =
              dist.(u) + weight v
              + if e.e_detour then detour_penalty else 0
            in
            if d < dist.(v) then begin
              dist.(v) <- d;
              prev.(v) <- u;
              prev_edge.(v) <- ei
            end
          end)
        ctx.out_edges.(u)
    end
  done;
  (dist, prev, prev_edge)

type witness = {
  w_vertices : int list;             (** scan-in .. scan-out *)
  w_routes : (int * int) list list;  (** steering route per edge, in order *)
}

let access_witness ctx fault s =
  let eff = effects_of_fault ctx fault in
  let writable = fixpoint_writable ctx eff in
  let target = v_of_seg s in
  let feasible =
    let rw = reach_from_pi ctx eff writable ~clean:true in
    let s_any = coreach_to_po ctx eff writable ~clean:false in
    rw.(target) && s_any.(target) && not eff.kill_write.(s)
  in
  if not feasible then None
  else begin
    (* The witness must be realizable BEFORE the target has ever been
       written, so its routes may not be steered by bits hosted in the
       target itself.  The fixpoint guarantees such a path exists: the
       target entered the writable set using only previously-writable
       hosts. *)
    let writable = Array.copy writable in
    writable.(s) <- false;
    let rw = reach_from_pi ctx eff writable ~clean:true in
    let s_any = coreach_to_po ctx eff writable ~clean:false in
    (* Minimum-bit prefix over clean steerable edges, then minimum-bit
       suffix over shiftable steerable edges. *)
    let prefix_edge_ok e =
      (not (edge_corrupt eff e))
      && edge_steerable ctx eff writable e
      && (e.e_src = v_pi || (rw.(e.e_src) && clean_through eff e.e_src))
    in
    let prefix_vertex_ok v = v = target || (v <> v_po && rw.(v)) in
    let _, pre_prev, pre_edge =
      shortest_paths ctx ~src:v_pi ~edge_ok:prefix_edge_ok
        ~vertex_ok:prefix_vertex_ok
    in
    let suffix_edge_ok e =
      edge_steerable ctx eff writable e
      && (e.e_src = target || s_any.(e.e_src))
    in
    let suffix_vertex_ok v = v = v_po || s_any.(v) in
    let _, suf_prev, suf_edge =
      shortest_paths ctx ~src:target ~edge_ok:suffix_edge_ok
        ~vertex_ok:suffix_vertex_ok
    in
    let rec unwind prev prev_e v acc_v acc_e =
      if prev.(v) < 0 then
        if v = v_pi || v = target then Some (v :: acc_v, acc_e) else None
      else
        unwind prev prev_e prev.(v) (v :: acc_v)
          (ctx.edges.(prev_e.(v)).e_route :: acc_e)
    in
    match
      (unwind pre_prev pre_edge target [] [],
       unwind suf_prev suf_edge v_po [] [])
    with
    | Some (pre_v, pre_r), Some (_ :: suf_v, suf_r) ->
        Some { w_vertices = pre_v @ suf_v; w_routes = pre_r @ suf_r }
    | _ -> None
  end

let access_path ctx fault s =
  Option.map (fun w -> w.w_vertices) (access_witness ctx fault s)

(* ---- fault-free baseline and cone-of-influence deltas ----

   The metric evaluates every fault of the universe against the same
   context, and most faults disturb only a small cone of the dataflow
   graph.  [baseline] precomputes the fault-free verdict plus the static
   reachability and dependency tables from which each fault's cone is
   derived; [analyze_delta] re-runs the fixpoint only inside the cone and
   splices the fault-free verdict everywhere else.  Exactness, not
   approximation: outside the cone the faulty least fixpoint provably
   coincides with the fault-free one, so the spliced verdict is
   bit-identical to [analyze]'s. *)

type baseline = {
  b_verdict : verdict;           (* fault-free analyze *)
  b_reach : Bitset.t array;      (* per vertex v: vertices reachable from v *)
  b_coreach : Bitset.t array;    (* per vertex v: vertices reaching v *)
  b_host_edges_all : int list array;
      (* per segment: edges with a shadow steering requirement hosted in
         the segment (any reset polarity) *)
  b_host_edges_nonreset : int list array;
      (* per segment: edges with a hosted requirement whose reset value
         does NOT match — the only requirements that consult the host's
         writability *)
  b_mux_edges : int list array;  (* per mux: edges routed through it *)
  b_steer : bool array;
      (* per edge: steerability in the fault-free network under the final
         fault-free writability.  Valid for any edge not affected by the
         fault, at every delta iteration: such an edge consults only
         non-cone hosts, whose writability never leaves its baseline
         value. *)
  b_corrupt : bool array;
      (* per edge: data corruption in the fault-free network — identically
         false, kept as the shared root of the stacked-delta corruption
         caches.  Never mutated. *)
  b_cyclic : bool;
      (* dataflow graph has a cycle: every tight analysis falls back to
         the coarse static cone *)
  b_live_out : int list array;
  b_live_in : int list array;
      (* per vertex: the baseline-steerable ("live") edges leaving /
         entering it — the subgraph every fault-free access uses *)
  b_live_reach : bool array;
      (* per vertex: reachable from scan-in over live edges.  In the
         fault-free network nothing is corrupted or blocked, so this is
         simultaneously the clean and the any-data forward traversal. *)
  b_live_coreach : bool array;  (* per vertex: reaches scan-out, ditto *)
  b_cert_rounds : (int array * int array) array;
      (* founded canonical writability certificates: per fixpoint round,
         the forward BFS tree from scan-in (per vertex, the incoming edge
         of its canonical prefix; -1 off-tree) and the backward BFS tree
         to scan-out (per vertex, the outgoing edge of its canonical
         suffix), both over edges enabled by the PREVIOUS rounds' writable
         set — so every not-reset-matching steering requirement on a
         certificate edge is hosted by a segment certified at a strictly
         earlier round.  The probe replays this forest to decide which
         segments keep their baseline-canonical access under a fault. *)
  b_cert_round_of : int array;
      (* per segment: the round at which it entered the writability
         fixpoint (its certificate lives in [b_cert_rounds] at that
         index); -1 if never writable *)
}

let baseline_verdict b = b.b_verdict

let baseline ctx =
  let b_verdict = analyze ctx None in
  let nv = ctx.nv in
  let g =
    Digraph.of_edges ~n:nv
      (Array.to_list (Array.map (fun e -> (e.e_src, e.e_dst)) ctx.edges))
  in
  let b_reach = Array.init nv (fun _ -> Bitset.create nv) in
  let b_coreach = Array.init nv (fun _ -> Bitset.create nv) in
  let order_opt = Order.sort g in
  (match order_opt with
  | Some order ->
      (* Successors first for reach, predecessors first for co-reach. *)
      for idx = nv - 1 downto 0 do
        let v = order.(idx) in
        Bitset.add b_reach.(v) v;
        List.iter
          (fun w -> Bitset.union_into b_reach.(v) b_reach.(w))
          (Digraph.succ g v)
      done;
      for idx = 0 to nv - 1 do
        let v = order.(idx) in
        Bitset.add b_coreach.(v) v;
        List.iter
          (fun u -> Bitset.union_into b_coreach.(v) b_coreach.(u))
          (Digraph.pred g v)
      done
  | None ->
      (* Cyclic dataflow (never produced by the synthesizer, but stay
         sound): every cone degenerates to the full network. *)
      Array.iter Bitset.fill b_reach;
      Array.iter Bitset.fill b_coreach);
  let b_host_edges_all = Array.make ctx.nsegs [] in
  let b_host_edges_nonreset = Array.make ctx.nsegs [] in
  let b_mux_edges = Array.make (Netlist.num_muxes ctx.net) [] in
  Array.iteri
    (fun ei e ->
      let seen_all = ref [] and seen_nr = ref [] in
      Array.iter
        (fun (_, cseg, _, _, reset_matches) ->
          if not (List.mem cseg !seen_all) then begin
            seen_all := cseg :: !seen_all;
            b_host_edges_all.(cseg) <- ei :: b_host_edges_all.(cseg)
          end;
          if (not reset_matches) && not (List.mem cseg !seen_nr) then begin
            seen_nr := cseg :: !seen_nr;
            b_host_edges_nonreset.(cseg) <- ei :: b_host_edges_nonreset.(cseg)
          end)
        e.e_shadow_reqs;
      let seen_m = ref [] in
      Array.iter
        (fun (m, _) ->
          if not (List.mem m !seen_m) then begin
            seen_m := m :: !seen_m;
            b_mux_edges.(m) <- ei :: b_mux_edges.(m)
          end)
        e.e_muxes)
    ctx.edges;
  let eff0 = no_effects ctx in
  let b_steer =
    Array.map (edge_steerable ctx eff0 b_verdict.writable) ctx.edges
  in
  let b_live_out = Array.make nv [] in
  let b_live_in = Array.make nv [] in
  for ei = Array.length ctx.edges - 1 downto 0 do
    if b_steer.(ei) then begin
      let e = ctx.edges.(ei) in
      b_live_out.(e.e_src) <- ei :: b_live_out.(e.e_src);
      b_live_in.(e.e_dst) <- ei :: b_live_in.(e.e_dst)
    end
  done;
  (* Plain reachability over the live subgraph; with no corruption and no
     blocks these coincide with both the clean and the any-data baseline
     traversals ([b_verdict] was computed from exactly these edges). *)
  let bfs adj ~root ~skip =
    let ok = Array.make nv false in
    ok.(root) <- true;
    let stack = ref [ root ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
          stack := rest;
          List.iter
            (fun ei ->
              let e = ctx.edges.(ei) in
              let v = if adj == b_live_out then e.e_dst else e.e_src in
              if (not ok.(v)) && v <> skip then begin
                ok.(v) <- true;
                stack := v :: !stack
              end)
            adj.(u)
    done;
    ok
  in
  let b_live_reach = bfs b_live_out ~root:v_pi ~skip:v_po in
  let b_live_coreach = bfs b_live_in ~root:v_po ~skip:v_pi in
  (* Founded canonical certificate forest: re-run the writability fixpoint
     in rounds, recording for each round a concrete scan-in prefix tree
     and scan-out suffix tree over the edges the PREVIOUS rounds enable.
     Every hosted not-reset-matching requirement on a round-k certificate
     edge is therefore certified at a round < k — the recursion the pair
     probe's fragility check relies on is well founded by construction.
     The fault-free network has no corruption or blocking, so the clean
     forward and any-data backward traversals are both plain BFS over the
     enabled edges, and the final writable set coincides with
     [b_verdict.writable]. *)
  let nedges = Array.length ctx.edges in
  let b_cert_round_of = Array.make ctx.nsegs (-1) in
  let cert_rounds = ref [] in
  let w = Array.make ctx.nsegs false in
  let progress = ref true in
  while !progress do
    progress := false;
    let enabled =
      Array.init nedges (fun ei -> edge_steerable ctx eff0 w ctx.edges.(ei))
    in
    let tree ~fwd ~root ~skip =
      let parent = Array.make nv (-1) in
      let seen = Array.make nv false in
      seen.(root) <- true;
      let stack = ref [ root ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            List.iter
              (fun ei ->
                if enabled.(ei) then begin
                  let e = ctx.edges.(ei) in
                  let v = if fwd then e.e_dst else e.e_src in
                  if (not seen.(v)) && v <> skip then begin
                    seen.(v) <- true;
                    parent.(v) <- ei;
                    stack := v :: !stack
                  end
                end)
              (if fwd then ctx.out_edges.(u) else ctx.in_edges.(u))
      done;
      parent
    in
    let pre = tree ~fwd:true ~root:v_pi ~skip:v_po in
    let suf = tree ~fwd:false ~root:v_po ~skip:v_pi in
    let round = List.length !cert_rounds in
    let promoted = ref false in
    for s = 0 to ctx.nsegs - 1 do
      if (not w.(s)) && pre.(v_of_seg s) >= 0 && suf.(v_of_seg s) >= 0
      then begin
        w.(s) <- true;
        b_cert_round_of.(s) <- round;
        promoted := true
      end
    done;
    if !promoted then begin
      cert_rounds := (pre, suf) :: !cert_rounds;
      progress := true
    end
  done;
  assert (w = b_verdict.writable);
  {
    b_verdict;
    b_reach;
    b_coreach;
    b_host_edges_all;
    b_host_edges_nonreset;
    b_mux_edges;
    b_steer;
    b_corrupt = Array.make (Array.length ctx.edges) false;
    b_cyclic = order_opt = None;
    b_live_out;
    b_live_in;
    b_live_reach;
    b_live_coreach;
    b_cert_rounds = Array.of_list (List.rev !cert_rounds);
    b_cert_round_of;
  }

(* Summary shapes that need no graph traversal at all (see analyze_delta's
   fast paths). *)
let only_kill_read (sm : Fault.summary) =
  sm.Fault.sm_kill_read <> []
  && Fault.summary_benign { sm with Fault.sm_kill_read = [] }

let only_kill_write (sm : Fault.summary) =
  sm.Fault.sm_kill_write <> []
  && Fault.summary_benign { sm with Fault.sm_kill_write = [] }

let local_kill_write base (sm : Fault.summary) =
  only_kill_write sm
  && List.for_all
       (fun i -> base.b_host_edges_nonreset.(i) = [])
       sm.Fault.sm_kill_write

(* Coarse static cone: data/steering damage at a vertex or edge taints
   everything downstream (reach) and upstream (co-reach); local interface
   damage (kill_write / kill_read) taints only the segment itself, plus —
   through the cascade — any edge steered by a not-reset-matching bit
   hosted in a tainted segment, because that segment's writability may
   have changed.  A sound over-approximation under ANY base state (the
   tables are static), which the tight probe below is not; kept as the
   fallback for the summaries the probe refuses. *)
let probe_coarse ctx base (sm : Fault.summary) =
  let cv = Bitset.create ctx.nv in
  let nedges = Array.length ctx.edges in
  let affected = Array.make nedges false in
  let aff_list = ref [] in
  (* Data corruption lives on the edges adjacent to the disturbed
     segments; mark them so the delta traversals re-evaluate the edge
     predicates there (and only there). *)
  let mark ei =
    if not affected.(ei) then begin
      affected.(ei) <- true;
      aff_list := ei :: !aff_list
    end
  in
  if sm.Fault.sm_pi_dead || sm.Fault.sm_po_dead then begin
    Bitset.fill cv;
    for ei = nedges - 1 downto 0 do
      mark ei
    done
  end
  else begin
    let add_v v =
      Bitset.union_into cv base.b_reach.(v);
      Bitset.union_into cv base.b_coreach.(v)
    in
    let add_edge ei =
      mark ei;
      let e = ctx.edges.(ei) in
      Bitset.union_into cv base.b_reach.(e.e_dst);
      Bitset.union_into cv base.b_coreach.(e.e_src)
    in
    let through i = add_v (v_of_seg i) in
    let local i = Bitset.add cv (v_of_seg i) in
    List.iter through sm.Fault.sm_hard_block;
    List.iter through sm.Fault.sm_corrupt_vertex;
    List.iter
      (fun i ->
        through i;
        List.iter mark ctx.in_edges.(v_of_seg i))
      sm.Fault.sm_corrupt_in;
    List.iter
      (fun i ->
        through i;
        List.iter mark ctx.out_edges.(v_of_seg i))
      sm.Fault.sm_corrupt_out;
    List.iter local sm.Fault.sm_kill_write;
    List.iter local sm.Fault.sm_kill_read;
    List.iter
      (fun m -> List.iter add_edge base.b_mux_edges.(m))
      sm.Fault.sm_mux_out;
    List.iter
      (fun (m, _) -> List.iter add_edge base.b_mux_edges.(m))
      sm.Fault.sm_mux_in;
    List.iter
      (fun (m, _, _) -> List.iter add_edge base.b_mux_edges.(m))
      sm.Fault.sm_locked_addr;
    List.iter
      (fun (i, _, _) -> List.iter add_edge base.b_host_edges_all.(i))
      sm.Fault.sm_stuck_shadow;
    (* Writability cascade: a tainted segment's writability may change,
       which re-steers every edge with a hosted not-reset-matching
       requirement; their endpoints' cones join until stable. *)
    let applied = Array.make ctx.nsegs false in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      for i = 0 to ctx.nsegs - 1 do
        if
          (not applied.(i))
          && base.b_host_edges_nonreset.(i) <> []
          && Bitset.mem cv (v_of_seg i)
        then begin
          applied.(i) <- true;
          List.iter add_edge base.b_host_edges_nonreset.(i);
          continue_ := true
        end
      done
    done
  end;
  (cv, affected, !aff_list)

let cone_vertices = probe_coarse

let cone_seg_list ctx cv =
  let acc = ref [] in
  for i = ctx.nsegs - 1 downto 0 do
    if Bitset.mem cv (v_of_seg i) then acc := i :: !acc
  done;
  !acc

(* ---- stacked secondary baselines ----

   The double-fault sweep groups pairs by first class, computes that
   class's faulty state ONCE, and runs the second fault's delta on top.
   [stacked] is the exact analogue of [baseline] for a (possibly) faulty
   base state: the verdict plus the per-edge steer/corruption caches under
   the stacked effects.  Everything the delta machinery consults about the
   BASE NETWORK (reach/co-reach tables, host/mux edge indices) is static,
   so it keeps coming from the underlying [baseline]; the cone argument
   only uses those tables as over-approximations of dependency, which they
   remain under any fault, so the splice is exact on stacked bases too. *)

type stacked = {
  s_base : baseline;
  s_sm : Fault.summary option;
      (* the stacked summary itself; [None] = fault-free base.  A delta on
         top must derive its cone from the UNION of this and the delta
         summary: the tight cone of the delta alone only bounds the
         divergence from the fault-free baseline, not from a faulty base
         (the base fault may have killed the very paths the splice relies
         on). *)
  s_eff : effects option;
      (* effects of the stacked summary; [None] = fault-free base (avoids
         allocating an effects record on the fast paths) *)
  s_verdict : verdict;  (* exact verdict under the stacked summary *)
  s_steer : bool array;
      (* per edge: steerability under the stacked effects and the settled
         writability of [s_verdict] *)
  s_corrupt : bool array;  (* per edge: corruption under the stacked effects *)
}

let stacked_verdict stk = stk.s_verdict

let of_baseline base =
  {
    s_base = base;
    s_sm = None;
    s_eff = None;
    s_verdict = base.b_verdict;
    s_steer = base.b_steer;
    s_corrupt = base.b_corrupt;
  }

(* Full cone-restricted fixpoint on top of the stacked state; [eff] must
   be the stacked effects extended with the delta summary, and [cone_sm]
   the union of the stacked and delta summaries (just the delta summary
   on a fault-free base).  Returns the combined verdict, the cone size,
   and the final steer/corruption caches (which [stack] packages into the
   next secondary baseline). *)
let delta_full ctx stk (cone_sm : Fault.summary) eff =
  let base = stk.s_base in
  let cv, _, aff_list = cone_vertices ctx base cone_sm in
  let cone_list = cone_seg_list ctx cv in
    (* Seeded fixpoint: outside the cone the combined least fixpoint
       equals the stacked one, so seeding with (stacked minus cone) starts
       below the combined fixpoint and chaotic iteration converges to
       exactly it.  Writability and steerability only grow during the
       iteration, so the two supporting traversals (clean reach from
       scan-in, any co-reach to scan-out) are maintained incrementally:
       when a promoted segment makes a hosted edge steerable, the
       traversals extend across that edge instead of restarting — total
       work is about two traversals however deep the enabling chain. *)
    let writable = Array.copy stk.s_verdict.writable in
    List.iter (fun i -> writable.(i) <- false) cone_list;
    (* Per-edge caches under the current writability: only the affected
       edges ever deviate from the stacked state, and [steer] is
       refreshed exactly when one of an edge's not-reset-matching hosts
       is promoted; corruption is static per delta. *)
    let steer = Array.copy stk.s_steer in
    List.iter
      (fun ei -> steer.(ei) <- edge_steerable ctx eff writable ctx.edges.(ei))
      aff_list;
    let corrupt = Array.copy stk.s_corrupt in
    List.iter
      (fun ei -> corrupt.(ei) <- edge_corrupt eff ctx.edges.(ei))
      aff_list;
    let rw = Array.make ctx.nv false in
    let s_any = Array.make ctx.nv false in
    (* Vertices that entered a traversal since the last promotion sweep. *)
    let newly = ref [] in
    let fstack = Array.make ctx.nv 0 in
    let fsp = ref 0 in
    let bstack = Array.make ctx.nv 0 in
    let bsp = ref 0 in
    let mark_f v =
      rw.(v) <- true;
      fstack.(!fsp) <- v;
      incr fsp;
      newly := v :: !newly
    in
    let mark_b v =
      s_any.(v) <- true;
      bstack.(!bsp) <- v;
      incr bsp;
      newly := v :: !newly
    in
    let drain_f () =
      while !fsp > 0 do
        decr fsp;
        let u = fstack.(!fsp) in
        if u = v_pi || clean_through eff u then
          List.iter
            (fun ei ->
              let v = ctx.edges.(ei).e_dst in
              if
                (not rw.(v))
                && v <> v_po
                && shiftable eff v
                && (not corrupt.(ei))
                && steer.(ei)
              then mark_f v)
            ctx.out_edges.(u)
      done
    in
    let drain_b () =
      while !bsp > 0 do
        decr bsp;
        let v = bstack.(!bsp) in
        List.iter
          (fun ei ->
            let u = ctx.edges.(ei).e_src in
            if (not s_any.(u)) && u <> v_pi && steer.(ei) then mark_b u)
          ctx.in_edges.(v)
      done
    in
    if not eff.pi_dead then begin
      mark_f v_pi;
      drain_f ()
    end;
    mark_b v_po;
    drain_b ();
    let promote i =
      if
        (not writable.(i))
        && rw.(v_of_seg i)
        && s_any.(v_of_seg i)
        && (not eff.kill_write.(i))
        && not eff.pi_dead
      then begin
        writable.(i) <- true;
        List.iter
          (fun ei ->
            if
              (not steer.(ei))
              && edge_steerable ctx eff writable ctx.edges.(ei)
            then begin
              steer.(ei) <- true;
              let e = ctx.edges.(ei) in
              if
                rw.(e.e_src)
                && (not rw.(e.e_dst))
                && e.e_dst <> v_po
                && shiftable eff e.e_dst
                && (not corrupt.(ei))
                && (e.e_src = v_pi || clean_through eff e.e_src)
              then begin
                mark_f e.e_dst;
                drain_f ()
              end;
              if s_any.(e.e_dst) && (not s_any.(e.e_src)) && e.e_src <> v_pi
              then begin
                mark_b e.e_src;
                drain_b ()
              end
            end)
          base.b_host_edges_nonreset.(i)
      end
    in
    newly := [];
    List.iter promote cone_list;
    let rec settle () =
      match !newly with
      | [] -> ()
      | vs ->
          newly := [];
          List.iter (fun v -> if v >= 2 then promote (seg_of_v v)) vs;
          settle ()
    in
    settle ();
    (* Final traversals under the settled writability, reusing the edge
       caches: any-data reach from scan-in, clean co-reach to scan-out. *)
    let r_any = Array.make ctx.nv false in
    r_any.(v_pi) <- true;
    fstack.(0) <- v_pi;
    fsp := 1;
    while !fsp > 0 do
      decr fsp;
      let u = fstack.(!fsp) in
      List.iter
        (fun ei ->
          let v = ctx.edges.(ei).e_dst in
          if (not r_any.(v)) && v <> v_po && steer.(ei) then begin
            r_any.(v) <- true;
            fstack.(!fsp) <- v;
            incr fsp
          end)
        ctx.out_edges.(u)
    done;
    let s_clean = Array.make ctx.nv false in
    if not eff.po_dead then begin
      s_clean.(v_po) <- true;
      bstack.(0) <- v_po;
      bsp := 1;
      while !bsp > 0 do
        decr bsp;
        let v = bstack.(!bsp) in
        List.iter
          (fun ei ->
            let u = ctx.edges.(ei).e_src in
            if
              (not s_clean.(u))
              && u <> v_pi
              && shiftable eff u
              && (not corrupt.(ei))
              && clean_through eff u
              && steer.(ei)
            then begin
              s_clean.(u) <- true;
              bstack.(!bsp) <- u;
              incr bsp
            end)
          ctx.in_edges.(v)
      done
    end;
    let readable = Array.copy stk.s_verdict.readable in
    let accessible = Array.copy stk.s_verdict.accessible in
    List.iter
      (fun i ->
        let r =
          r_any.(v_of_seg i)
          && s_clean.(v_of_seg i)
          && (not eff.kill_read.(i))
          && (not eff.corrupt_vertex.(i))
          && not eff.po_dead
        in
        readable.(i) <- r;
        accessible.(i) <- writable.(i) && r)
      cone_list;
    ({ writable; readable; accessible }, List.length cone_list, steer, corrupt)

(* Combined effects of the stacked state plus one further summary. *)
let stacked_eff ctx stk sm =
  match stk.s_eff with
  | None -> add_summary_effects (no_effects ctx) sm
  | Some e -> add_summary_effects (effects_copy e) sm

(* Delta of summary [sm] on top of an arbitrary stacked state.  The three
   fast paths mirror [analyze_delta]'s and stay valid on faulty bases:
   they reason about the DELTA summary alone, and splice from the stacked
   verdict.  Exact: the combined verdict is bit-identical to
   [analyze_multi] over the union of the stacked and delta summaries. *)
let analyze_delta_on ctx stk (sm : Fault.summary) =
  let glitchy =
    sm.Fault.sm_glitch_shadow <> []
    || (match stk.s_sm with
       | Some s0 -> s0.Fault.sm_glitch_shadow <> []
       | None -> false)
  in
  if Fault.summary_benign sm then (stk.s_verdict, 0)
  else if glitchy then begin
    (* Transient upsets can produce steering GAINS (a bit starting at the
       required value with an unwritable host) that the cone tables and
       the seeded delta below do not model — they were built for faults
       that only ever degrade steering.  Fall back to the full fixpoint;
       the reported cone is the exact verdict diff.  The transient
       universes are small (one class per shadow bit), so the fallback
       never dominates a sweep. *)
    let v = verdict_of_effects ctx (stacked_eff ctx stk sm) in
    let n = ref 0 in
    for i = 0 to ctx.nsegs - 1 do
      if
        v.writable.(i) <> stk.s_verdict.writable.(i)
        || v.readable.(i) <> stk.s_verdict.readable.(i)
      then incr n
    done;
    (v, !n)
  end
  else if only_kill_read sm then begin
    (* kill_read is consulted only by the readable formula: no traversal
       changes, so flip the affected segments in place. *)
    let readable = Array.copy stk.s_verdict.readable in
    let accessible = Array.copy stk.s_verdict.accessible in
    List.iter
      (fun i ->
        readable.(i) <- false;
        accessible.(i) <- false)
      sm.Fault.sm_kill_read;
    ( { writable = stk.s_verdict.writable; readable; accessible },
      List.length sm.Fault.sm_kill_read )
  end
  else if local_kill_write stk.s_base sm then begin
    (* Writability is consulted by steering only through
       not-reset-matching hosted requirements; with none hosted in the
       killed segments, the traversals are untouched too. *)
    let writable = Array.copy stk.s_verdict.writable in
    let accessible = Array.copy stk.s_verdict.accessible in
    List.iter
      (fun i ->
        writable.(i) <- false;
        accessible.(i) <- false)
      sm.Fault.sm_kill_write;
    ( { writable; readable = stk.s_verdict.readable; accessible },
      List.length sm.Fault.sm_kill_write )
  end
  else begin
    let cone_sm =
      match stk.s_sm with
      | None -> sm
      | Some s0 -> Fault.summary_union s0 sm
    in
    let v, n, _, _ = delta_full ctx stk cone_sm (stacked_eff ctx stk sm) in
    (v, n)
  end

let analyze_delta ctx base sm = analyze_delta_on ctx (of_baseline base) sm

(* ---- lane-parallel batch sweeps ----

   The metric evaluates thousands of collapsed classes against one
   context; [analyze_delta] already cuts each class to its cone, but
   still pays one fixpoint per class.  The lane sweep transposes the
   computation: up to [Lanes.width] classes share ONE fixpoint, every
   per-vertex / per-edge predicate becomes a machine word whose bit L
   answers lane L, and word-level AND/OR/ANDN replace the per-class
   boolean evaluation.  The word operations act lane-wise
   independently, so each lane runs exactly the scalar semantics:

   - the per-lane static effect masks below are the word transposition
     of [effects] ([add_summary_effects] projected onto segments,
     edges and the two port flags);
   - [steer_word] is [edge_steerable] lane-wise: a wrong lock or a
     constant contradiction kills the lane's edge outright, a lock on
     the required value waives the hosted requirement, a wrong pin
     defeats it even when the reset matches, a right pin satisfies it,
     and an untouched requirement falls back to the host's writability
     (or the reset value) — the pin/lock masks live in a sparse
     per-(edge, requirement) table materialized only for the edges the
     batch actually touches;
   - each lane's writability is seeded with the baseline writable set
     minus the lane's coarse cone ([probe_coarse] — the same cone
     [analyze_delta] restricts its fixpoint to).  Outside the cone the
     faulty least fixpoint provably equals the baseline, so each seed
     starts at or below its lane's least fixpoint, and the monotone
     word iteration (writability and steerability only grow) converges
     to exactly the per-lane least fixpoints — lanes whose seed is
     already settled simply never promote (counted as [ls_masked]);
   - one word-parallel traversal pass per round (clean forward reach,
     any-data backward co-reach) replaces [Lanes.width] scalar BFS
     passes, and the two final traversals produce all lanes' readable
     sets at once.

   The per-lane verdicts are bit-identical to [analyze_delta]'s (hence
   to [analyze]'s) — property-tested against both. *)

let lane_width = Lanes.width

type lane_stats = {
  ls_batches : int;  (* batch sweeps run *)
  ls_lanes : int;    (* lanes occupied across all batches *)
  ls_masked : int;   (* lanes settled at their cone seed: no promotion *)
  ls_fast : int;     (* classes answered by the O(1) fast paths instead *)
  ls_rounds : int;   (* fixpoint rounds across all batches *)
}

let lane_stats_zero =
  { ls_batches = 0; ls_lanes = 0; ls_masked = 0; ls_fast = 0; ls_rounds = 0 }

let lane_stats_add a b =
  {
    ls_batches = a.ls_batches + b.ls_batches;
    ls_lanes = a.ls_lanes + b.ls_lanes;
    ls_masked = a.ls_masked + b.ls_masked;
    ls_fast = a.ls_fast + b.ls_fast;
    ls_rounds = a.ls_rounds + b.ls_rounds;
  }

(* Classes [analyze_delta] answers without any traversal; they never
   occupy a lane. *)
let lane_fast base sm =
  Fault.summary_benign sm || only_kill_read sm || local_kill_write base sm

(* Batch formation: fast classes aside, the rest grouped by summary
   shape so the dead-port classes (full-network cones, extra fixpoint
   rounds) don't drag the shallow batches, then chunked [lane_width]
   wide in input order (deterministic). *)
let lane_plan base (sms : Fault.summary array) =
  let fast = ref [] and general = ref [] and port = ref [] in
  Array.iteri
    (fun i sm ->
      (* Glitch (transient) summaries go to the scalar delta path: the
         word-parallel steering rule below has no notion of an upset
         initial value ([analyze_delta] handles them by full fixpoint). *)
      if lane_fast base sm || sm.Fault.sm_glitch_shadow <> [] then
        fast := i :: !fast
      else
        match Fault.summary_shape sm with
        | Fault.Port_dead -> port := i :: !port
        | _ -> general := i :: !general)
    sms;
  let chunk l =
    let rec go acc cur n = function
      | [] -> if cur = [] then acc else List.rev cur :: acc
      | x :: rest ->
          if n = lane_width then go (List.rev cur :: acc) [ x ] 1 rest
          else go acc (x :: cur) (n + 1) rest
    in
    List.rev_map Array.of_list (go [] [] 0 (List.rev l))
  in
  (List.rev !fast, chunk !general @ chunk !port)

(* The batch generalized to an arbitrary stacked root (the double-fault
   sweep: one secondary baseline, up to [lane_width] second faults per
   fixpoint).  The stacked summary's effect masks are folded into every
   lane at the occupancy mask [occ] — the word transposition of
   [stacked_eff] (the scalar entry checks are order-independent, so OR
   accumulation is exact even when the stacked and delta summaries pin
   the same shadow bit) — and each lane's writability seed is the
   STACKED writable set minus the cone of the UNION of the stacked and
   delta summaries, exactly the cone [analyze_delta_on] restricts its
   seeded fixpoint to.  [probe_coarse] is sound under any base state
   (its tables are static over-approximations of dependency), so
   outside the union cone the combined least fixpoint equals the
   stacked one: each seed starts at or below its lane's combined least
   fixpoint and the monotone word iteration converges to exactly it.
   With a fault-free root ([of_baseline]) this is [analyze_lane_batch]
   verbatim. *)
let analyze_lane_batch_on ctx stk (sms : Fault.summary array) =
  let base = stk.s_base in
  let k = Array.length sms in
  if k = 0 || k > lane_width then
    invalid_arg "Engine.analyze_lane_batch: batch size";
  (match stk.s_sm with
  | Some s0 when s0.Fault.sm_glitch_shadow <> [] ->
      invalid_arg "Engine.analyze_lane_batch: glitch stacked base (scalar only)"
  | _ -> ());
  Array.iter
    (fun (sm : Fault.summary) ->
      if sm.Fault.sm_glitch_shadow <> [] then
        invalid_arg "Engine.analyze_lane_batch: glitch summary (scalar only)")
    sms;
  let occ = Lanes.lane_mask k in
  let nsegs = ctx.nsegs and nv = ctx.nv in
  let nedges = Array.length ctx.edges in
  (* Per-lane static effect masks: bit L set = the effect holds in lane
     L (the word transposition of [effects]). *)
  let hard_block_w = Array.make nsegs 0 in
  let corrupt_vertex_w = Array.make nsegs 0 in
  let kill_write_w = Array.make nsegs 0 in
  let kill_read_w = Array.make nsegs 0 in
  let corrupt_e = Array.make nedges 0 in
  let dead_e = Array.make nedges 0 in
  let pi_dead_w = ref 0 and po_dead_w = ref 0 in
  for ei = 0 to nedges - 1 do
    if ctx.edges.(ei).e_dead then dead_e.(ei) <- occ
  done;
  (* Sparse per-(edge, requirement) pin/lock masks, materialized only
     for the edges the batch's locks or pins touch. *)
  let req_masks = Array.make nedges None in
  let touch ei =
    match req_masks.(ei) with
    | Some m -> m
    | None ->
        let nr = Array.length ctx.edges.(ei).e_shadow_reqs in
        let m = (Array.make nr 0, Array.make nr 0, Array.make nr 0) in
        req_masks.(ei) <- Some m;
        m
  in
  let fold_summary bit (sm : Fault.summary) =
    let set_w a i = a.(i) <- a.(i) lor bit in
      List.iter (set_w hard_block_w) sm.Fault.sm_hard_block;
      List.iter (set_w corrupt_vertex_w) sm.Fault.sm_corrupt_vertex;
      List.iter (set_w kill_write_w) sm.Fault.sm_kill_write;
      List.iter (set_w kill_read_w) sm.Fault.sm_kill_read;
      List.iter
        (fun i -> List.iter (set_w corrupt_e) ctx.in_edges.(v_of_seg i))
        sm.Fault.sm_corrupt_in;
      List.iter
        (fun i -> List.iter (set_w corrupt_e) ctx.out_edges.(v_of_seg i))
        sm.Fault.sm_corrupt_out;
      List.iter
        (fun m -> List.iter (set_w corrupt_e) base.b_mux_edges.(m))
        sm.Fault.sm_mux_out;
      List.iter
        (fun (m, kk) ->
          List.iter
            (fun ei ->
              if
                Array.exists
                  (fun (m', k') -> m' = m && k' = kk)
                  ctx.edges.(ei).e_muxes
              then set_w corrupt_e ei)
            base.b_mux_edges.(m))
        sm.Fault.sm_mux_in;
      List.iter
        (fun (m, b, v) ->
          List.iter
            (fun ei ->
              let e = ctx.edges.(ei) in
              (* A lock to the wrong value kills the lane's edge
                 outright (the scalar check scans every addressed
                 port, shadow-driven or not). *)
              if
                Array.exists
                  (fun (m', b', required) -> m' = m && b' = b && required <> v)
                  e.e_addr_ports
              then set_w dead_e ei;
              (* A lock to the required value waives the hosted
                 requirement on that port. *)
              let lockr, _, _ = touch ei in
              Array.iteri
                (fun r ((m', b'), _, _, required, _) ->
                  if m' = m && b' = b && required = v then
                    lockr.(r) <- lockr.(r) lor bit)
                e.e_shadow_reqs)
            base.b_mux_edges.(m))
        sm.Fault.sm_locked_addr;
      List.iter
        (fun (cseg, cbit, v) ->
          List.iter
            (fun ei ->
              let e = ctx.edges.(ei) in
              let _, pinw, pinr = touch ei in
              Array.iteri
                (fun r (_, cseg', cbit', required, _) ->
                  if cseg' = cseg && cbit' = cbit then
                    if v <> required then pinw.(r) <- pinw.(r) lor bit
                    else pinr.(r) <- pinr.(r) lor bit)
                e.e_shadow_reqs)
            base.b_host_edges_all.(cseg))
        sm.Fault.sm_stuck_shadow;
      if sm.Fault.sm_pi_dead then pi_dead_w := !pi_dead_w lor bit;
      if sm.Fault.sm_po_dead then po_dead_w := !po_dead_w lor bit
  in
  (* The stacked summary holds in EVERY lane; each delta in its own. *)
  (match stk.s_sm with None -> () | Some s0 -> fold_summary occ s0);
  Array.iteri (fun l sm -> fold_summary (1 lsl l) sm) sms;
  (* Writability seeds: stacked writable everywhere, each lane's
     union-cone cleared.  [probe_coarse] over the union summary is the
     same cone [analyze_delta_on] restricts its fixpoint to, so each
     seed is at or below its lane's combined least fixpoint. *)
  let writable_w = Array.make nsegs 0 in
  let stk_writable = stk.s_verdict.writable in
  for i = 0 to nsegs - 1 do
    if stk_writable.(i) then writable_w.(i) <- occ
  done;
  let cone_lens = Array.make k 0 in
  Array.iteri
    (fun l sm ->
      let bit = 1 lsl l in
      let cone_sm =
        match stk.s_sm with
        | None -> sm
        | Some s0 -> Fault.summary_union s0 sm
      in
      let cv, _, _ = probe_coarse ctx base cone_sm in
      let cl = cone_seg_list ctx cv in
      cone_lens.(l) <- List.length cl;
      List.iter (fun i -> writable_w.(i) <- writable_w.(i) land lnot bit) cl)
    sms;
  (* [edge_steerable] lane-wise, under the current writability words. *)
  let steer = Array.make nedges 0 in
  let steer_word ei =
    let e = ctx.edges.(ei) in
    let s = ref (occ land lnot dead_e.(ei)) in
    (match req_masks.(ei) with
    | None ->
        Array.iter
          (fun (_, cseg, _, _, reset_matches) ->
            if not reset_matches then s := !s land writable_w.(cseg))
          e.e_shadow_reqs
    | Some (lockr, pinw, pinr) ->
        Array.iteri
          (fun r (_, cseg, _, _, reset_matches) ->
            let sat =
              lockr.(r)
              lor (lnot pinw.(r)
                  land
                  if reset_matches then occ else pinr.(r) lor writable_w.(cseg))
            in
            s := !s land sat)
          e.e_shadow_reqs);
    !s
  in
  for ei = 0 to nedges - 1 do
    steer.(ei) <- steer_word ei
  done;
  (* Word-parallel worklist traversals.  A vertex re-enters the queue
     whenever its word grows, so each pass settles all lanes at once. *)
  let stack = Array.make nv 0 in
  let sp = ref 0 in
  let inq = Array.make nv false in
  let push v =
    if not inq.(v) then begin
      inq.(v) <- true;
      stack.(!sp) <- v;
      incr sp
    end
  in
  let rw = Lanes.create nv in
  let s_any = Lanes.create nv in
  let shift_mask v =
    if v >= 2 then lnot hard_block_w.(seg_of_v v) else -1
  in
  (* Clean forward reach from scan-in ([reach_from_pi ~clean:true]):
     membership needs clean data INTO the vertex and its shiftability;
     extension beyond a vertex additionally needs its through-
     cleanness. *)
  let fwd_clean () =
    Lanes.clear rw;
    sp := 0;
    let start = occ land lnot !pi_dead_w in
    if start <> 0 then begin
      ignore (Lanes.or_in rw v_pi start);
      push v_pi
    end;
    while !sp > 0 do
      decr sp;
      let u = stack.(!sp) in
      inq.(u) <- false;
      let through =
        let x = Lanes.get rw u in
        if u >= 2 then x land lnot corrupt_vertex_w.(seg_of_v u) else x
      in
      if through <> 0 then
        List.iter
          (fun ei ->
            let v = ctx.edges.(ei).e_dst in
            if v <> v_po then begin
              let add =
                through land steer.(ei)
                land lnot corrupt_e.(ei)
                land shift_mask v
              in
              if add <> 0 && Lanes.or_in rw v add <> 0 then push v
            end)
          ctx.out_edges.(u)
    done
  in
  (* Any-data backward co-reach to scan-out ([coreach_to_po
     ~clean:false]): steering is the only gate. *)
  let bwd_any () =
    Lanes.clear s_any;
    sp := 0;
    ignore (Lanes.or_in s_any v_po occ);
    push v_po;
    while !sp > 0 do
      decr sp;
      let v = stack.(!sp) in
      inq.(v) <- false;
      let x = Lanes.get s_any v in
      List.iter
        (fun ei ->
          let u = ctx.edges.(ei).e_src in
          if u <> v_pi then begin
            let add = x land steer.(ei) in
            if add <> 0 && Lanes.or_in s_any u add <> 0 then push u
          end)
        ctx.in_edges.(v)
    done
  in
  let promoted = ref 0 in
  let rounds = ref 0 in
  let not_pi = lnot !pi_dead_w in
  let changed = ref true in
  while !changed do
    changed := false;
    incr rounds;
    fwd_clean ();
    bwd_any ();
    for i = 0 to nsegs - 1 do
      let nw =
        Lanes.get rw (v_of_seg i)
        land Lanes.get s_any (v_of_seg i)
        land lnot kill_write_w.(i)
        land not_pi
        land lnot writable_w.(i)
        land occ
      in
      if nw <> 0 then begin
        writable_w.(i) <- writable_w.(i) lor nw;
        promoted := !promoted lor nw;
        (* Only the not-reset-matching hosted requirements consult the
           host's writability — refresh exactly their edges. *)
        List.iter
          (fun ei -> steer.(ei) <- steer_word ei)
          base.b_host_edges_nonreset.(i);
        changed := true
      end
    done
  done;
  (* Final traversals under the settled steering: any-data forward
     reach (ignores dead ports), clean backward co-reach. *)
  let r_any = Lanes.create nv in
  sp := 0;
  ignore (Lanes.or_in r_any v_pi occ);
  push v_pi;
  while !sp > 0 do
    decr sp;
    let u = stack.(!sp) in
    inq.(u) <- false;
    let x = Lanes.get r_any u in
    List.iter
      (fun ei ->
        let v = ctx.edges.(ei).e_dst in
        if v <> v_po then begin
          let add = x land steer.(ei) in
          if add <> 0 && Lanes.or_in r_any v add <> 0 then push v
        end)
      ctx.out_edges.(u)
  done;
  let s_clean = Lanes.create nv in
  let start = occ land lnot !po_dead_w in
  if start <> 0 then begin
    ignore (Lanes.or_in s_clean v_po start);
    push v_po
  end;
  while !sp > 0 do
    decr sp;
    let v = stack.(!sp) in
    inq.(v) <- false;
    let x = Lanes.get s_clean v in
    List.iter
      (fun ei ->
        let u = ctx.edges.(ei).e_src in
        if u <> v_pi then begin
          let add =
            x land steer.(ei)
            land lnot corrupt_e.(ei)
            land shift_mask u
            land (if u >= 2 then lnot corrupt_vertex_w.(seg_of_v u) else -1)
          in
          if add <> 0 && Lanes.or_in s_clean u add <> 0 then push u
        end)
      ctx.in_edges.(v)
  done;
  let not_po = lnot !po_dead_w in
  let results =
    Array.init k (fun l ->
        let bit = 1 lsl l in
        let writable =
          Array.init nsegs (fun i -> writable_w.(i) land bit <> 0)
        in
        let readable =
          Array.init nsegs (fun i ->
              Lanes.get r_any (v_of_seg i)
              land Lanes.get s_clean (v_of_seg i)
              land lnot kill_read_w.(i)
              land lnot corrupt_vertex_w.(i)
              land not_po land bit
              <> 0)
        in
        let accessible =
          Array.init nsegs (fun i -> writable.(i) && readable.(i))
        in
        ({ writable; readable; accessible }, cone_lens.(l)))
  in
  let stats =
    {
      ls_batches = 1;
      ls_lanes = k;
      ls_masked = Lanes.popcount (occ land lnot !promoted);
      ls_fast = 0;
      ls_rounds = !rounds;
    }
  in
  (results, stats)

let analyze_lane_batch ctx base sms =
  analyze_lane_batch_on ctx (of_baseline base) sms

(* Lane sweep of many summaries against one stacked root: fast-path
   deltas scalar (they never occupy a lane), the rest shape-grouped and
   batched by [lane_plan] exactly as the single-fault sweep.  A glitchy
   stacked root falls back to the scalar delta per summary (the word
   steering rule has no notion of upset initial values); the verdicts
   stay bit-identical to [analyze_delta_on] either way. *)
let analyze_lanes_on ctx stk (sms : Fault.summary array) =
  let stacked_glitch =
    match stk.s_sm with
    | Some s0 -> s0.Fault.sm_glitch_shadow <> []
    | None -> false
  in
  if stacked_glitch then
    ( Array.map (analyze_delta_on ctx stk) sms,
      { lane_stats_zero with ls_fast = Array.length sms } )
  else begin
    let fast, batches = lane_plan stk.s_base sms in
    let out = Array.make (Array.length sms) (stk.s_verdict, 0) in
    let stats = ref lane_stats_zero in
    List.iter
      (fun i ->
        out.(i) <- analyze_delta_on ctx stk sms.(i);
        stats := { !stats with ls_fast = !stats.ls_fast + 1 })
      fast;
    List.iter
      (fun idxs ->
        let batch = Array.map (fun i -> sms.(i)) idxs in
        let vs, st = analyze_lane_batch_on ctx stk batch in
        Array.iteri (fun j i -> out.(i) <- vs.(j)) idxs;
        stats := lane_stats_add !stats st)
      batches;
    (out, !stats)
  end

let analyze_lanes_stats ctx ?base (classes : Fault.clas array) =
  let base = match base with Some b -> b | None -> baseline ctx in
  let sms = Array.map (fun c -> c.Fault.cls_summary) classes in
  let fast, batches = lane_plan base sms in
  let out = Array.make (Array.length classes) base.b_verdict in
  let stats = ref lane_stats_zero in
  List.iter
    (fun i ->
      let v, _ = analyze_delta ctx base sms.(i) in
      out.(i) <- v;
      stats := { !stats with ls_fast = !stats.ls_fast + 1 })
    fast;
  List.iter
    (fun idxs ->
      let batch = Array.map (fun i -> sms.(i)) idxs in
      let vs, st = analyze_lane_batch ctx base batch in
      Array.iteri (fun j i -> out.(i) <- fst vs.(j)) idxs;
      stats := lane_stats_add !stats st)
    batches;
  (out, !stats)

let analyze_lanes ctx ?base classes =
  fst (analyze_lanes_stats ctx ?base classes)

(* ---- pair probes: exact taints and interaction regions ----

   The double-fault factorization needs, per fault class, (a) the EXACT
   set of segments whose verdict differs from the baseline (the tight
   cone — the coarse one is usually the whole network on scan
   topologies), and (b) a certificate region such that two classes with
   disjoint regions compose POINTWISE: every traversal under both faults
   is the AND of the single-fault traversals, hence every verdict bit is
   the AND of the single-fault verdict bits.

   The taint comes for free by diffing the class's delta verdict against
   the baseline.  The delta also hands back the settled per-edge
   steerability/corruption caches, i.e. the exact faulty state — so the
   exact set of KILLED live edges (including the ones that died because a
   steering host lost its writability, transitively) is a linear scan,
   and the four access traversals under the fault are four cheap BFS over
   those caches.

   The region certifies non-interaction by induction along each
   traversal: for a vertex surviving both faults separately, one of its
   surviving in-edges must also survive the other fault — unless that
   edge was damaged by it (endpoints are in the region) or its tail lost
   the other traversal while the head survived (the head is then in the
   region as a traversal BOUNDARY).  So the region contains

   - both endpoints of every live edge the fault killed or corrupted,
   - the live neighborhoods of blocked / data-corrupting segments,
   - per traversal kind, every surviving vertex adjacent to a vertex
     that lost the traversal (the boundary — NOT the lost interior, so a
     trunk fault that wipes a whole co-reach cone exposes only the rim),
   - both endpoints of every live edge one of whose not-reset-matching
     steering requirements the fault PINS to its required value: such a
     pin changes nothing alone (the host is baseline-writable, else the
     probe refuses), but it can keep the edge alive when the OTHER fault
     kills the host's writability, making the combination strictly
     better than the AND.

   Purely local kill_write / kill_read summaries get an EMPTY region:
   they touch no traversal, their verdict change is already a pointwise
   conjunction, and it composes with any other fault.

   Note the taint is deliberately NOT part of the region: two faults may
   taint the same segment (say both kill its readability through distant
   damage) and still compose pointwise.  The pair sweep therefore
   combines counts with lost-list arithmetic rather than splicing.

   Disjoint regions alone do NOT suffice: writability is a least
   fixpoint, and two faults can each destroy the other's last FOUNDED
   support while every segment stays writable under either fault alone —
   fault i kills segment a's canonical derivation (a re-routes through an
   edge hosted by b), fault j kills b's (b re-routes through an edge
   hosted by a); under both, the two re-routes support only each other
   and the least fixpoint drops both, with no damage and no traversal
   boundary anywhere near a or b.  W_i AND W_j is a post-fixpoint of the
   combined steering operator but not the least one.

   The probe therefore also reports which segments became FRAGILE: still
   writable, but their baseline-canonical certificate (the founded
   prefix/suffix forest recorded in the baseline) was damaged, so their
   writability rests on a re-route whose foundedness the region argument
   cannot see.  A segment that keeps its canonical certificate under
   fault i AND under fault j keeps it under both (the certificate is
   shared and its hosts recurse at strictly smaller certificate rank),
   so it stays writable in the combined least fixpoint.

   For the fragile segments themselves the probe materializes a founded
   certificate under ITS OWN fault (the faulty fixpoint owns one — its
   rounds strictly decrease) and publishes the certificate paths' vertex
   footprint [pr_supp] and the set of steering hosts they rest on
   [pr_rhosts].  Such a re-route survives the PARTNER fault j too when
   (a) j's exact damage avoids the footprint — the certificate edges
   miss every baseline-live edge j kills or corrupts ([pr_dead_edges])
   and the certificate vertices miss every segment j blocks or turns
   corrupting ([pr_dmg]), so each re-route edge stays steerable and
   clean under j — and (b) every host stays writable under j with its
   canonical certificate intact (host not in j's writability losses and
   not in fragile_j), which by the shared-canonical argument keeps the
   host writable under BOTH.  Gating against j's exact damage rather
   than its whole region matters: region_j also collects undamaged rim
   vertices (traversal boundaries, endpoints of killed edges, pin
   guards) that a re-route may freely pass through.  Fragile hosts of
   re-routes are themselves fragile, so their own re-routes are in the
   footprint and the recursion stays founded by the faulty fixpoint's
   ranks.

   Hence the pair gate (checked in Metric): regions disjoint, each
   fault's [pr_supp_edges] disjoint from the partner's [pr_dead_edges],
   each fault's [pr_supp] disjoint from the partner's [pr_dmg], and
   each fault's [pr_rhosts] disjoint from both the partner's fragile
   set and the partner's writability losses — then W_combined =
   W_i AND W_j, the combined edge deaths are the union of the
   single-fault deaths, and the boundary induction above applies to
   every traversal. *)

type probe = {
  pr_verdict : verdict;
  pr_cone : Bitset.t;
  pr_region : Bitset.t;
  pr_fragile : Bitset.t;
  pr_supp : Bitset.t;
  pr_supp_edges : Bitset.t;
  pr_rhosts : Bitset.t;
  pr_dead_edges : Bitset.t;
  pr_dmg : Bitset.t;
  pr_coarse : bool;
}

let seg_bitset ctx cv =
  let cs = Bitset.create ctx.nsegs in
  List.iter (Bitset.add cs) (cone_seg_list ctx cv);
  cs

let probe ctx base (sm : Fault.summary) =
  let local segs =
    (* Pure interface kills: no edge, no traversal and no certificate is
       touched (a locally killed segment hosts no not-reset-matching
       requirement), so nothing is fragile. *)
    let v, _ = analyze_delta ctx base sm in
    {
      pr_verdict = v;
      pr_cone = Bitset.of_list ctx.nsegs segs;
      pr_region = Bitset.create ctx.nv;
      pr_fragile = Bitset.create ctx.nsegs;
      pr_supp = Bitset.create ctx.nv;
      pr_supp_edges = Bitset.create (Array.length ctx.edges);
      pr_rhosts = Bitset.create ctx.nsegs;
      pr_dead_edges = Bitset.create (Array.length ctx.edges);
      pr_dmg = Bitset.create ctx.nv;
      pr_coarse = false;
    }
  in
  let coarse () =
    let v, _ = analyze_delta ctx base sm in
    let cv, _, _ = probe_coarse ctx base sm in
    let full n = let b = Bitset.create n in Bitset.fill b; b in
    { pr_verdict = v; pr_cone = seg_bitset ctx cv;
      pr_region = full ctx.nv; pr_fragile = full ctx.nsegs;
      pr_supp = full ctx.nv;
      pr_supp_edges = full (Array.length ctx.edges);
      pr_rhosts = full ctx.nsegs;
      pr_dead_edges = full (Array.length ctx.edges);
      pr_dmg = full ctx.nv;
      pr_coarse = true }
  in
  if Fault.summary_benign sm then
    {
      pr_verdict = base.b_verdict;
      pr_cone = Bitset.create ctx.nsegs;
      pr_region = Bitset.create ctx.nv;
      pr_fragile = Bitset.create ctx.nsegs;
      pr_supp = Bitset.create ctx.nv;
      pr_supp_edges = Bitset.create (Array.length ctx.edges);
      pr_rhosts = Bitset.create ctx.nsegs;
      pr_dead_edges = Bitset.create (Array.length ctx.edges);
      pr_dmg = Bitset.create ctx.nv;
      pr_coarse = false;
    }
  else if sm.Fault.sm_glitch_shadow <> [] then begin
    (* Transient upsets: the verdict comes from the full fixpoint (exact
       — [analyze_delta] routes glitches there), the cone is the exact
       verdict diff, and the interaction machinery is conservatively
       voided (full region/footprints): upsets may create steering gains
       the no-gain certificate reasoning below assumes away.  Pair sweeps
       reject the transient model anyway ([Metric.evaluate_pairs]). *)
    let v, _ = analyze_delta ctx base sm in
    let cs = Bitset.create ctx.nsegs in
    let v0 = base.b_verdict in
    for i = 0 to ctx.nsegs - 1 do
      if v.writable.(i) <> v0.writable.(i) || v.readable.(i) <> v0.readable.(i)
      then Bitset.add cs i
    done;
    let full n =
      let b = Bitset.create n in
      Bitset.fill b;
      b
    in
    { pr_verdict = v; pr_cone = cs;
      pr_region = full ctx.nv; pr_fragile = full ctx.nsegs;
      pr_supp = full ctx.nv;
      pr_supp_edges = full (Array.length ctx.edges);
      pr_rhosts = full ctx.nsegs;
      pr_dead_edges = full (Array.length ctx.edges);
      pr_dmg = full ctx.nv;
      pr_coarse = true }
  end
  else if only_kill_read sm then local sm.Fault.sm_kill_read
  else if local_kill_write base sm then local sm.Fault.sm_kill_write
  else if sm.Fault.sm_pi_dead || sm.Fault.sm_po_dead || base.b_cyclic then
    coarse ()
  else begin
    let writable0 = base.b_verdict.writable in
    (* Steering-gain detection: a pin or lock matching a required address
       value whose hosting segment is NOT baseline-writable can turn a
       baseline-dead edge live, voiding the whole no-gain reasoning. *)
    let gain = ref false in
    List.iter
      (fun (s, b, v) ->
        if not writable0.(s) then
          List.iter
            (fun ei ->
              Array.iter
                (fun (_, cseg, cbit, required, reset_matches) ->
                  if cseg = s && cbit = b && required = v && not reset_matches
                  then gain := true)
                ctx.edges.(ei).e_shadow_reqs)
            base.b_host_edges_all.(s))
      sm.Fault.sm_stuck_shadow;
    List.iter
      (fun (m, b, v) ->
        List.iter
          (fun ei ->
            Array.iter
              (fun (port, cseg, _, required, reset_matches) ->
                if
                  port = (m, b) && required = v && (not reset_matches)
                  && not writable0.(cseg)
                then gain := true)
              ctx.edges.(ei).e_shadow_reqs)
          base.b_mux_edges.(m))
      sm.Fault.sm_locked_addr;
    if !gain then coarse ()
    else begin
      let eff = add_summary_effects (no_effects ctx) sm in
      let v, _, steer, corrupt = delta_full ctx (of_baseline base) sm eff in
      let nedges = Array.length ctx.edges in
      (* Exact taint: the verdict diff. *)
      let cs = Bitset.create ctx.nsegs in
      let v0 = base.b_verdict in
      for i = 0 to ctx.nsegs - 1 do
        if
          v.writable.(i) <> v0.writable.(i)
          || v.readable.(i) <> v0.readable.(i)
        then Bitset.add cs i
      done;
      (* The four access traversals under the settled faulty state. *)
      let traverse ~fwd ~clean =
        let root = if fwd then v_pi else v_po in
        let stop = if fwd then v_po else v_pi in
        let ok = Array.make ctx.nv false in
        ok.(root) <- true;
        let stack = ref [ root ] in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | u :: rest ->
              stack := rest;
              if fwd && clean && not (u = v_pi || clean_through eff u) then ()
              else
                List.iter
                  (fun ei ->
                    if steer.(ei) && not (clean && corrupt.(ei)) then begin
                      let e = ctx.edges.(ei) in
                      let w = if fwd then e.e_dst else e.e_src in
                      if
                        (not ok.(w))
                        && w <> stop
                        && ((not clean) || shiftable eff w)
                        && not ((not fwd) && clean && not (clean_through eff w))
                      then begin
                        ok.(w) <- true;
                        stack := w :: !stack
                      end
                    end)
                  (if fwd then ctx.out_edges.(u) else ctx.in_edges.(u))
        done;
        ok
      in
      let rw = traverse ~fwd:true ~clean:true in
      let r_any = traverse ~fwd:true ~clean:false in
      let s_clean = traverse ~fwd:false ~clean:true in
      let s_any = traverse ~fwd:false ~clean:false in
      let region = Bitset.create ctx.nv in
      let add_ei ei =
        let e = ctx.edges.(ei) in
        Bitset.add region e.e_src;
        Bitset.add region e.e_dst
      in
      (* Killed or corrupted live edges — [steer] is the exact faulty
         steerability, so writability-cascade deaths are included.
         [dead_edges] keeps the edge-granular set for the partner's
         re-route check. *)
      let dead_edges = Bitset.create nedges in
      for ei = 0 to nedges - 1 do
        if base.b_steer.(ei) && ((not steer.(ei)) || corrupt.(ei)) then begin
          Bitset.add dead_edges ei;
          add_ei ei
        end
      done;
      let dmg = Bitset.create ctx.nv in
      let vertex_damage w =
        Bitset.add region w;
        Bitset.add dmg w;
        List.iter
          (fun ei -> Bitset.add region ctx.edges.(ei).e_src)
          base.b_live_in.(w);
        List.iter
          (fun ei -> Bitset.add region ctx.edges.(ei).e_dst)
          base.b_live_out.(w)
      in
      List.iter (fun i -> vertex_damage (v_of_seg i)) sm.Fault.sm_hard_block;
      List.iter
        (fun i -> vertex_damage (v_of_seg i))
        sm.Fault.sm_corrupt_vertex;
      (* Traversal boundaries: surviving vertices adjacent (along a live
         edge) to a vertex that lost the traversal. *)
      for ei = 0 to nedges - 1 do
        if base.b_steer.(ei) then begin
          let e = ctx.edges.(ei) in
          let u = e.e_src and w = e.e_dst in
          if base.b_live_reach.(u) && w <> v_po then begin
            if (not rw.(u)) && rw.(w) then Bitset.add region w;
            if (not r_any.(u)) && r_any.(w) then Bitset.add region w
          end;
          if base.b_live_coreach.(w) && u <> v_pi then begin
            if (not s_any.(w)) && s_any.(u) then Bitset.add region u;
            if (not s_clean.(w)) && s_clean.(u) then Bitset.add region u
          end
        end
      done;
      (* Pinned-right steering requirements on live edges (see above). *)
      List.iter
        (fun (s, b, vv) ->
          List.iter
            (fun ei ->
              if base.b_steer.(ei) then begin
                let keep = ref false in
                Array.iter
                  (fun (_, cseg, cbit, required, reset_matches) ->
                    if
                      cseg = s && cbit = b && required = vv
                      && not reset_matches
                    then keep := true)
                  ctx.edges.(ei).e_shadow_reqs;
                if !keep then add_ei ei
              end)
            base.b_host_edges_all.(s))
        sm.Fault.sm_stuck_shadow;
      List.iter
        (fun (m, b, vv) ->
          List.iter
            (fun ei ->
              if base.b_steer.(ei) then begin
                let keep = ref false in
                Array.iter
                  (fun (port, _, _, required, reset_matches) ->
                    if port = (m, b) && required = vv && not reset_matches
                    then keep := true)
                  ctx.edges.(ei).e_shadow_reqs;
                if !keep then add_ei ei
              end)
            base.b_mux_edges.(m))
        sm.Fault.sm_locked_addr;
      (* Fragility: which segments keep their CANONICAL baseline
         certificate under the fault?  Replay the founded forest in round
         order.  [all_w] neutralizes [edge_steerable]'s host-writability
         fallback so the call checks only the syntactic conditions (dead
         edge, wrong pins, wrong locks); hosted not-reset-matching
         requirements are then handled by [hosts_ok] through the founded
         recursion — the host's own certificate must have survived
         ([pclass]), unless the fault itself pins or locks the bit to its
         required value (any pin on the bit is necessarily right here:
         wrong pins already failed the syntactic check). *)
      let all_w = Array.make ctx.nsegs true in
      let pclass = Array.make ctx.nsegs false in
      let hosts_ok e =
        let ok = ref true in
        Array.iter
          (fun (port, cseg, cbit, required, reset_matches) ->
            if (not reset_matches) && not pclass.(cseg) then begin
              let exempt =
                List.exists
                  (fun (m, b, vv) -> (m, b) = port && vv = required)
                  eff.locked_addr
                || List.exists
                     (fun (s', b', _) -> s' = cseg && b' = cbit)
                     eff.stuck_shadow
              in
              if not exempt then ok := false
            end)
          e.e_shadow_reqs;
        !ok
      in
      let pre_memo = Array.make ctx.nv 0 (* 0 unknown / 1 ok / 2 bad *) in
      let suf_memo = Array.make ctx.nv 0 in
      (* Iterative tree walk (certificate paths can be as long as the
         longest scan chain): ascend to the first memoized ancestor, then
         settle the collected chain root-side first. *)
      let walk memo parent next_v root edge_ok v0 =
        let chain = ref [] in
        let v = ref v0 in
        let known = ref None in
        while !known = None do
          if !v = root then known := Some true
          else if memo.(!v) = 1 then known := Some true
          else if memo.(!v) = 2 then known := Some false
          else begin
            chain := !v :: !chain;
            v := next_v parent.(!v)
          end
        done;
        let ok = ref (!known = Some true) in
        List.iter
          (fun u ->
            if !ok then ok := edge_ok u parent.(u);
            memo.(u) <- (if !ok then 1 else 2))
          !chain;
        !ok
      in
      let nrounds = Array.length base.b_cert_rounds in
      for round = 0 to nrounds - 1 do
        Array.fill pre_memo 0 ctx.nv 0;
        Array.fill suf_memo 0 ctx.nv 0;
        let pre_tree, suf_tree = base.b_cert_rounds.(round) in
        (* Prefix edges carry clean data into the target: steerable,
           uncorrupted, destination shiftable, source passing clean. *)
        let pre_edge_ok u ei =
          let e = ctx.edges.(ei) in
          edge_steerable ctx eff all_w e
          && hosts_ok e
          && (not corrupt.(ei))
          && shiftable eff u
          && (e.e_src = v_pi || clean_through eff e.e_src)
        in
        (* Suffix edges only need to exist topologically: steerable. *)
        let suf_edge_ok _u ei =
          let e = ctx.edges.(ei) in
          edge_steerable ctx eff all_w e && hosts_ok e
        in
        for s = 0 to ctx.nsegs - 1 do
          if
            base.b_cert_round_of.(s) = round
            && (not eff.kill_write.(s))
            && walk pre_memo pre_tree
                 (fun ei -> ctx.edges.(ei).e_src)
                 v_pi pre_edge_ok (v_of_seg s)
            && walk suf_memo suf_tree
                 (fun ei -> ctx.edges.(ei).e_dst)
                 v_po suf_edge_ok (v_of_seg s)
          then pclass.(s) <- true
        done
      done;
      let fragile = Bitset.create ctx.nsegs in
      for s = 0 to ctx.nsegs - 1 do
        if v.writable.(s) && not pclass.(s) then Bitset.add fragile s
      done;
      (* Re-routed certificates: a fragile segment is still writable, so
         the FAULTY fixpoint owns a founded certificate for it.
         Materialize one (round-stratified replay of the faulty fixpoint,
         exactly like the baseline forest but under [eff] and the settled
         corruption cache) and expose its vertex and edge footprints
         [supp] / [supp_edges] plus the steering hosts [rhosts] it rests
         on.  A partner fault whose exact damage (dead_edges, dmg)
         avoids the footprint and under which every such host keeps both
         its writability and its canonical certificate cannot disturb
         the re-route — the pair gate in Metric checks exactly that,
         instead of pessimistically refusing every fragile class. *)
      let supp = Bitset.create ctx.nv in
      let supp_edges = Bitset.create nedges in
      let rhosts = Bitset.create ctx.nsegs in
      if not (Bitset.is_empty fragile) then begin
        let wf = Array.make ctx.nsegs false in
        let frounds = ref [] in
        let fround_of = Array.make ctx.nsegs (-1) in
        let progress = ref true in
        while !progress do
          progress := false;
          let enabled =
            Array.init nedges (fun ei ->
                edge_steerable ctx eff wf ctx.edges.(ei))
          in
          (* Clean forward tree from scan-in under the fault (the entry /
             extension conditions of [reach_from_pi ~clean:true]). *)
          let pre = Array.make ctx.nv (-1) in
          let seenp = Array.make ctx.nv false in
          seenp.(v_pi) <- true;
          let stack = ref [ v_pi ] in
          while !stack <> [] do
            match !stack with
            | [] -> ()
            | u :: rest ->
                stack := rest;
                if u = v_pi || clean_through eff u then
                  List.iter
                    (fun ei ->
                      if enabled.(ei) && not corrupt.(ei) then begin
                        let w = ctx.edges.(ei).e_dst in
                        if (not seenp.(w)) && w <> v_po && shiftable eff w
                        then begin
                          seenp.(w) <- true;
                          pre.(w) <- ei;
                          stack := w :: !stack
                        end
                      end)
                    ctx.out_edges.(u)
          done;
          (* Any-data backward tree to scan-out. *)
          let suf = Array.make ctx.nv (-1) in
          let seens = Array.make ctx.nv false in
          seens.(v_po) <- true;
          let stack = ref [ v_po ] in
          while !stack <> [] do
            match !stack with
            | [] -> ()
            | w :: rest ->
                stack := rest;
                List.iter
                  (fun ei ->
                    if enabled.(ei) then begin
                      let u = ctx.edges.(ei).e_src in
                      if (not seens.(u)) && u <> v_pi then begin
                        seens.(u) <- true;
                        suf.(u) <- ei;
                        stack := u :: !stack
                      end
                    end)
                  ctx.in_edges.(w)
          done;
          let round = List.length !frounds in
          let promoted = ref false in
          for s = 0 to ctx.nsegs - 1 do
            if
              (not wf.(s))
              && (not eff.kill_write.(s))
              && pre.(v_of_seg s) >= 0
              && suf.(v_of_seg s) >= 0
            then begin
              wf.(s) <- true;
              fround_of.(s) <- round;
              promoted := true
            end
          done;
          if !promoted then begin
            frounds := (pre, suf) :: !frounds;
            progress := true
          end
        done;
        assert (wf = v.writable);
        let frounds = Array.of_list (List.rev !frounds) in
        let host_edge ei =
          Array.iter
            (fun (port, cseg, cbit, required, reset_matches) ->
              if not reset_matches then begin
                (* A pin on the bit is necessarily to the required value:
                   the certificate edge is steerable under the fault. *)
                let exempt =
                  List.exists
                    (fun (m, b, vv) -> (m, b) = port && vv = required)
                    eff.locked_addr
                  || List.exists
                       (fun (s', b', _) -> s' = cseg && b' = cbit)
                       eff.stuck_shadow
                in
                if not exempt then Bitset.add rhosts cseg
              end)
            ctx.edges.(ei).e_shadow_reqs
        in
        let pre_done = Array.make ctx.nv false in
        let suf_done = Array.make ctx.nv false in
        for round = 0 to Array.length frounds - 1 do
          Array.fill pre_done 0 ctx.nv false;
          Array.fill suf_done 0 ctx.nv false;
          let pre, suf = frounds.(round) in
          Bitset.iter
            (fun s ->
              if fround_of.(s) = round then begin
                let u = ref (v_of_seg s) in
                while !u <> v_pi && not pre_done.(!u) do
                  pre_done.(!u) <- true;
                  Bitset.add supp !u;
                  let ei = pre.(!u) in
                  Bitset.add supp_edges ei;
                  host_edge ei;
                  u := ctx.edges.(ei).e_src
                done;
                let u = ref (v_of_seg s) in
                while !u <> v_po && not suf_done.(!u) do
                  suf_done.(!u) <- true;
                  Bitset.add supp !u;
                  let ei = suf.(!u) in
                  Bitset.add supp_edges ei;
                  host_edge ei;
                  u := ctx.edges.(ei).e_dst
                done
              end)
            fragile
        done
      end;
      { pr_verdict = v; pr_cone = cs; pr_region = region;
        pr_fragile = fragile; pr_supp = supp; pr_supp_edges = supp_edges;
        pr_rhosts = rhosts; pr_dead_edges = dead_edges; pr_dmg = dmg;
        pr_coarse = false }
    end
  end

let cone ctx base (sm : Fault.summary) =
  if Fault.summary_benign sm then None
  else if only_kill_read sm then
    Some (Bitset.of_list ctx.nsegs sm.Fault.sm_kill_read)
  else if local_kill_write base sm then
    Some (Bitset.of_list ctx.nsegs sm.Fault.sm_kill_write)
  else Some (probe ctx base sm).pr_cone

(* Secondary baseline under [sm]: the stacked state all of [sm]'s pairs
   share.  The steer/corruption caches must reflect [sm] even when the
   verdict comes from a fast path — on those paths the fault-free caches
   are still exact (kill_read touches neither; a local kill_write changes
   writability only where no not-reset-matching requirement is hosted). *)
let stack ctx base (sm : Fault.summary) =
  let stk0 = of_baseline base in
  let eff = stacked_eff ctx stk0 sm in
  if
    Fault.summary_benign sm || only_kill_read sm || local_kill_write base sm
  then
    let v, _ = analyze_delta_on ctx stk0 sm in
    { stk0 with s_sm = Some sm; s_eff = Some eff; s_verdict = v }
  else if sm.Fault.sm_glitch_shadow <> [] then
    (* Full fixpoint (no seeded delta — see [analyze_delta_on]); the
       steer/corruption caches are recomputed for every edge under the
       settled writability, so the stacked state stays exact. *)
    let v = verdict_of_effects ctx eff in
    {
      s_base = base;
      s_sm = Some sm;
      s_eff = Some eff;
      s_verdict = v;
      s_steer = Array.map (edge_steerable ctx eff v.writable) ctx.edges;
      s_corrupt = Array.map (edge_corrupt eff) ctx.edges;
    }
  else
    let v, _, steer, corrupt = delta_full ctx stk0 sm eff in
    {
      s_base = base;
      s_sm = Some sm;
      s_eff = Some eff;
      s_verdict = v;
      s_steer = steer;
      s_corrupt = corrupt;
    }

(* Read counterpart: a path through the target whose SUFFIX (target to
   scan-out) is corruption-free and shiftable, while the prefix only needs
   to exist topologically.  Same self-steering exclusion as the write
   witness. *)
let read_witness ctx fault s =
  let eff = effects_of_fault ctx fault in
  let writable = fixpoint_writable ctx eff in
  let target = v_of_seg s in
  let feasible =
    let r_any = reach_from_pi ctx eff writable ~clean:false in
    let s_clean = coreach_to_po ctx eff writable ~clean:true in
    r_any.(target) && s_clean.(target)
    && (not eff.kill_read.(s))
    && (not eff.corrupt_vertex.(s))
    && not eff.po_dead
  in
  if not feasible then None
  else begin
    (* Unlike the write witness, steering by the target's own bits is
       allowed here whenever the target is writable: the bit can be
       pre-written (a write needs no clean suffix), then the read follows.
       An unwritable target is already excluded by the fixpoint. *)
    let r_any = reach_from_pi ctx eff writable ~clean:false in
    let s_clean = coreach_to_po ctx eff writable ~clean:true in
    if not (r_any.(target) && s_clean.(target)) then None
    else begin
      let prefix_edge_ok e =
        edge_steerable ctx eff writable e
        && (e.e_src = v_pi || r_any.(e.e_src))
      in
      let prefix_vertex_ok v = v = target || (v <> v_po && r_any.(v)) in
      let _, pre_prev, pre_edge =
        shortest_paths ctx ~src:v_pi ~edge_ok:prefix_edge_ok
          ~vertex_ok:prefix_vertex_ok
      in
      let suffix_edge_ok e =
        (not (edge_corrupt eff e))
        && edge_steerable ctx eff writable e
        && (e.e_src = target || (s_clean.(e.e_src) && clean_through eff e.e_src))
        && shiftable eff e.e_src
      in
      let suffix_vertex_ok v =
        v = v_po || (s_clean.(v) && shiftable eff v)
      in
      let _, suf_prev, suf_edge =
        shortest_paths ctx ~src:target ~edge_ok:suffix_edge_ok
          ~vertex_ok:suffix_vertex_ok
      in
      let rec unwind prev prev_e v acc_v acc_e =
        if prev.(v) < 0 then
          if v = v_pi || v = target then Some (v :: acc_v, acc_e) else None
        else
          unwind prev prev_e prev.(v) (v :: acc_v)
            (ctx.edges.(prev_e.(v)).e_route :: acc_e)
      in
      match
        (unwind pre_prev pre_edge target [] [],
         unwind suf_prev suf_edge v_po [] [])
      with
      | Some (pre_v, pre_r), Some (_ :: suf_v, suf_r) ->
          Some { w_vertices = pre_v @ suf_v; w_routes = pre_r @ suf_r }
      | _ -> None
    end
  end
