module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Bitset = Ftrsn_topo.Bitset
module Digraph = Ftrsn_topo.Digraph
module Order = Ftrsn_topo.Order

(* Dataflow vertex ids follow Netlist.dataflow_graph: 0 = scan-in,
   1 = scan-out, 2 + i = segment i. *)
let v_pi = 0
let v_po = 1
let v_of_seg i = 2 + i
let seg_of_v v = v - 2

type edge = {
  e_src : int;
  e_dst : int;
  e_route : (int * int) list;  (* (mux, input index) pairs, consumer first *)
  (* Compiled steering requirements (performance: the metric evaluates the
     whole fault universe, so the per-edge checks must be flat arrays). *)
  e_dead : bool;  (* a constant address bit contradicts the requirement *)
  e_shadow_reqs : ((int * int) * int * int * bool * bool) array;
      (* ((mux, addr bit), seg, bit, required, reset_matches) for
         shadow-driven addresses *)
  e_addr_ports : (int * int * bool) array;
      (* (mux, addr bit, required) for lock checks, incl. primary/const *)
  e_muxes : (int * int) array;  (* (mux, input) for data-corruption checks *)
  e_detour : bool;
      (* the route steers an augmentation mux away from its default input:
         a redundant detour, only taken when the default routes fail *)
}

type ctx = {
  net : Netlist.t;
  nsegs : int;
  nv : int;
  edges : edge array;
  out_edges : int list array;  (* edge indices by source vertex *)
  in_edges : int list array;   (* edge indices by destination vertex *)
  mux_consumer : int array;    (* dataflow vertex fed by each mux *)
  pi_successor : bool array;   (* vertex has a direct edge from scan-in *)
}

let netlist ctx = ctx.net

let compile_edge (net : Netlist.t) src dst route =
  let dead = ref false in
  let detour = ref false in
  let shadow_reqs = ref [] in
  let addr_ports = ref [] in
  List.iter
    (fun (m, k) ->
      let mx = net.Netlist.muxes.(m) in
      if k >= mx.Netlist.mux_rescue_from then detour := true;
      Array.iteri
        (fun b ctrl ->
          let required = k land (1 lsl b) <> 0 in
          addr_ports := (m, b, required) :: !addr_ports;
          match ctrl with
          | Netlist.Ctrl_const c -> if c <> required then dead := true
          | Netlist.Ctrl_primary _ -> ()
          | Netlist.Ctrl_shadow { cseg; cbit } ->
              let reset_matches =
                net.Netlist.segs.(cseg).Netlist.seg_reset.(cbit) = required
              in
              shadow_reqs :=
                ((m, b), cseg, cbit, required, reset_matches) :: !shadow_reqs)
        mx.mux_addr)
    route;
  {
    e_src = src;
    e_dst = dst;
    e_route = route;
    e_dead = !dead;
    e_shadow_reqs = Array.of_list !shadow_reqs;
    e_addr_ports = Array.of_list !addr_ports;
    (* Canonical input indices: duplicated data ports are one fault site. *)
    e_muxes =
      Array.of_list
        (List.map (fun (m, k) -> (m, Netlist.mux_input_class net m k)) route);
    e_detour = !detour;
  }

let make_ctx (net : Netlist.t) =
  let nsegs = Netlist.num_segments net in
  let nv = 2 + nsegs in
  let routes = Netlist.edge_routes net in
  let edges =
    Hashtbl.fold
      (fun (src, dst) rs acc ->
        List.rev_append (List.map (compile_edge net src dst) rs) acc)
      routes []
    |> Array.of_list
  in
  let out_edges = Array.make nv [] in
  let in_edges = Array.make nv [] in
  let mux_consumer = Array.make (Netlist.num_muxes net) (-1) in
  let pi_successor = Array.make nv false in
  Array.iteri
    (fun i e ->
      out_edges.(e.e_src) <- i :: out_edges.(e.e_src);
      in_edges.(e.e_dst) <- i :: in_edges.(e.e_dst);
      if e.e_src = 0 then pi_successor.(e.e_dst) <- true;
      Array.iter (fun (m, _) -> mux_consumer.(m) <- e.e_dst) e.e_muxes)
    edges;
  { net; nsegs; nv; edges; out_edges; in_edges; mux_consumer; pi_successor }

type verdict = {
  writable : bool array;
  readable : bool array;
  accessible : bool array;
}

(* Static per-fault effects, independent of the writability fixpoint. *)
type effects = {
  hard_block : bool array;      (* segment cannot shift at all *)
  corrupt_vertex : bool array;  (* data through the segment is corrupted *)
  corrupt_in : bool array;      (* data entering the segment is corrupted *)
  corrupt_out : bool array;     (* data leaving the segment is corrupted *)
  kill_write : bool array;      (* local write capability lost *)
  kill_read : bool array;       (* local read capability lost *)
  mux_out_bad : bool array;     (* per mux: output corrupts data *)
  mutable mux_in_bad : (int * int) list;  (* (mux, input) data faults *)
  mutable locked_addr : (int * int * bool) list; (* mux addr bits forced *)
  mutable stuck_shadow : (int * int * bool) list; (* shadow bits pinned *)
  mutable pi_dead : bool;
  mutable po_dead : bool;
}

let no_effects ctx =
  {
    hard_block = Array.make ctx.nsegs false;
    corrupt_vertex = Array.make ctx.nsegs false;
    corrupt_in = Array.make ctx.nsegs false;
    corrupt_out = Array.make ctx.nsegs false;
    kill_write = Array.make ctx.nsegs false;
    kill_read = Array.make ctx.nsegs false;
    mux_out_bad = Array.make (Netlist.num_muxes ctx.net) false;
    mux_in_bad = [];
    locked_addr = [];
    stuck_shadow = [];
    pi_dead = false;
    po_dead = false;
  }

(* With duplicated scan ports (§III-E-4), the secondary scan-in is wired to
   the input of every successor of the primary scan-in, and every
   predecessor of the primary scan-out is wired to the secondary scan-out.
   A fault in a mux feeding such a vertex (or feeding the scan-out) is
   therefore bypassed by the port switch: data can enter the vertex from
   the secondary scan-in, or be observed at the secondary scan-out,
   without traversing the faulty mux. *)
let port_mux_masked ctx m =
  ctx.net.Netlist.dual_ports
  &&
  let c = ctx.mux_consumer.(m) in
  c = v_po || (c >= 0 && ctx.pi_successor.(c))

let port_masked = port_mux_masked

(* Folds one fault's canonical semantic summary (see {!Fault.summarize} —
   the single place the stuck-at case analysis lives; the BMC engine
   derives its predicates from the same summaries) into [e]; composable,
   so the same machinery analyzes multi-fault scenarios (beyond the
   paper's single stuck-at scope). *)
let add_summary_effects e (sm : Fault.summary) =
  let set a i = a.(i) <- true in
  List.iter (set e.hard_block) sm.Fault.sm_hard_block;
  List.iter (set e.corrupt_vertex) sm.Fault.sm_corrupt_vertex;
  List.iter (set e.corrupt_in) sm.Fault.sm_corrupt_in;
  List.iter (set e.corrupt_out) sm.Fault.sm_corrupt_out;
  List.iter (set e.kill_write) sm.Fault.sm_kill_write;
  List.iter (set e.kill_read) sm.Fault.sm_kill_read;
  List.iter (set e.mux_out_bad) sm.Fault.sm_mux_out;
  e.mux_in_bad <- sm.Fault.sm_mux_in @ e.mux_in_bad;
  e.locked_addr <- sm.Fault.sm_locked_addr @ e.locked_addr;
  e.stuck_shadow <- sm.Fault.sm_stuck_shadow @ e.stuck_shadow;
  if sm.Fault.sm_pi_dead then e.pi_dead <- true;
  if sm.Fault.sm_po_dead then e.po_dead <- true;
  e

let summarize ctx f =
  Fault.summarize ~port_masked:(port_mux_masked ctx) ctx.net f

let add_fault_effects ctx e (f : Fault.t) =
  add_summary_effects e (summarize ctx f)

let effects_of_faults ctx faults =
  List.fold_left (add_fault_effects ctx) (no_effects ctx) faults

let effects_of_fault ctx (f : Fault.t option) =
  effects_of_faults ctx (Option.to_list f)

(* Is an edge's data corrupted by the fault (mux data faults and the
   endpoint port faults)? *)
let edge_corrupt eff edge =
  (let bad = ref false in
   Array.iter
     (fun (m, k) ->
       if eff.mux_out_bad.(m) then bad := true
       else if List.mem (m, k) eff.mux_in_bad then bad := true)
     edge.e_muxes;
   !bad)
  || (edge.e_src >= 2 && eff.corrupt_out.(seg_of_v edge.e_src))
  || (edge.e_dst >= 2 && eff.corrupt_in.(seg_of_v edge.e_dst))

(* Can the muxes along an edge's route be steered to sensitize it, given
   the current set of writable segments?  A driver not (yet) writable must
   already hold the required value in its reset state (or be pinned to it
   by the fault). *)
let edge_steerable _ctx eff writable edge =
  (not edge.e_dead)
  && (eff.locked_addr = []
     ||
     let ok = ref true in
     Array.iter
       (fun (m', b', required) ->
         List.iter
           (fun (m, b, v) -> if m = m' && b = b' && v <> required then ok := false)
           eff.locked_addr)
       edge.e_addr_ports;
     !ok)
  &&
  let ok = ref true in
  Array.iter
    (fun (port, cseg, cbit, required, reset_matches) ->
      (* A port locked to the required value overrides its driver. *)
      let locked_right =
        List.exists (fun (m, b, v) -> (m, b) = port && v = required)
          eff.locked_addr
      in
      if not locked_right then
        match
          List.find_opt (fun (s', b', _) -> s' = cseg && b' = cbit)
            eff.stuck_shadow
        with
        | Some (_, _, v) -> if v <> required then ok := false
        | None -> if (not writable.(cseg)) && not reset_matches then ok := false)
    edge.e_shadow_reqs;
  !ok

(* Vertex can shift data through (ports always; segments unless hard
   blocked). *)
let shiftable eff v = v < 2 || not eff.hard_block.(seg_of_v v)

(* Vertex passes data through uncorrupted. *)
let clean_through eff v = v < 2 || not (eff.corrupt_vertex.(seg_of_v v))

(* Forward reachability from scan-in over steerable edges.  [clean] selects
   whether data integrity is required along the way. *)
let reach_from_pi ctx eff writable ~clean =
  let ok = Array.make ctx.nv false in
  if not (clean && eff.pi_dead) then begin
    ok.(v_pi) <- true;
    let q = Queue.create () in
    Queue.add v_pi q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun ei ->
          let e = ctx.edges.(ei) in
          let v = e.e_dst in
          if
            (not ok.(v))
            && v <> v_po
            (* Data integrity (and the ability to shift) matter only in
               clean mode: the non-clean prefix/suffix of an access just
               has to exist topologically — segments behind the target
               may hold frozen or corrupted data without affecting it.
               Membership only needs clean data INTO v; v's own through-
               corruption is checked when extending beyond v. *)
            && ((not clean) || shiftable eff v)
            && (not clean || not (edge_corrupt eff e))
            && edge_steerable ctx eff writable e
          then begin
            (* In clean mode the source must also pass data through
               uncorrupted (except the scan-in port itself). *)
            if (not clean) || u = v_pi || clean_through eff u then begin
              ok.(v) <- true;
              Queue.add v q
            end
          end)
        ctx.out_edges.(u)
    done
  end;
  ok

(* Backward reachability to scan-out over steerable edges. *)
let coreach_to_po ctx eff writable ~clean =
  let ok = Array.make ctx.nv false in
  if not (clean && eff.po_dead) then begin
    ok.(v_po) <- true;
    let q = Queue.create () in
    Queue.add v_po q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun ei ->
          let e = ctx.edges.(ei) in
          let u = e.e_src in
          if
            (not ok.(u))
            && u <> v_pi
            && ((not clean) || shiftable eff u)
            && (not clean
               || ((not (edge_corrupt eff e)) && clean_through eff u))
            && edge_steerable ctx eff writable e
          then begin
            ok.(u) <- true;
            Queue.add u q
          end)
        ctx.in_edges.(v)
    done
  end;
  ok

(* Direct scan-in -> scan-out edges don't matter for segment access, and
   [reach_from_pi] never enters v_po; symmetric for the co-reach. *)

let fixpoint_writable ctx eff =
  let writable = Array.make ctx.nsegs false in
  let changed = ref true in
  while !changed do
    changed := false;
    let rw = reach_from_pi ctx eff writable ~clean:true in
    let s_any = coreach_to_po ctx eff writable ~clean:false in
    for i = 0 to ctx.nsegs - 1 do
      if
        (not writable.(i))
        && rw.(v_of_seg i)
        && s_any.(v_of_seg i)
        && (not eff.kill_write.(i))
        && (not eff.pi_dead)
      then begin
        writable.(i) <- true;
        changed := true
      end
    done
  done;
  writable

let analyze_multi ctx faults =
  let eff = effects_of_faults ctx faults in
  let writable = fixpoint_writable ctx eff in
  let r_any = reach_from_pi ctx eff writable ~clean:false in
  let s_clean = coreach_to_po ctx eff writable ~clean:true in
  let readable = Array.make ctx.nsegs false in
  for i = 0 to ctx.nsegs - 1 do
    readable.(i) <-
      r_any.(v_of_seg i)
      && s_clean.(v_of_seg i)
      && (not eff.kill_read.(i))
      && (not eff.corrupt_vertex.(i))
      && (not eff.po_dead)
  done;
  let accessible = Array.init ctx.nsegs (fun i -> writable.(i) && readable.(i)) in
  { writable; readable; accessible }

let analyze ctx fault = analyze_multi ctx (Option.to_list fault)

let accessible_count v =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v.accessible

let accessible_bits ctx v =
  let total = ref 0 in
  Array.iteri
    (fun i b -> if b then total := !total + Netlist.seg_len ctx.net i)
    v.accessible;
  !total

(* Dijkstra over dataflow vertices minimizing the scan-bit length of the
   path (the per-CSU shift-cycle count).  [edge_ok] filters usable edges.
   Returns the predecessor array, or distances of unreached vertices as
   max_int. *)
let shortest_paths ctx ~src ~edge_ok ~vertex_ok =
  let n = ctx.nv in
  (* Detour edges carry a dominating penalty so that witnesses use the
     original routes whenever possible — this keeps fault-free retargeting
     plans (and access latency) identical to the original RSN's, as §IV of
     the paper requires. *)
  let detour_penalty = (4 * Netlist.total_bits ctx.net) + 16 in
  let weight v =
    if v < 2 then 0 else Netlist.seg_len ctx.net (seg_of_v v)
  in
  let dist = Array.make n max_int in
  let prev = Array.make n (-1) in
  (* prev_edge.(v) is the edge index used to reach v *)
  let prev_edge = Array.make n (-1) in
  let done_ = Array.make n false in
  dist.(src) <- 0;
  let continue = ref true in
  while !continue do
    (* O(V^2) selection: dataflow graphs here have a few thousand
       vertices at most. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not done_.(v)) && dist.(v) < max_int
         && (!best < 0 || dist.(v) < dist.(!best))
      then best := v
    done;
    if !best < 0 then continue := false
    else begin
      let u = !best in
      done_.(u) <- true;
      List.iter
        (fun ei ->
          let e = ctx.edges.(ei) in
          let v = e.e_dst in
          if (not done_.(v)) && vertex_ok v && edge_ok e then begin
            let d =
              dist.(u) + weight v
              + if e.e_detour then detour_penalty else 0
            in
            if d < dist.(v) then begin
              dist.(v) <- d;
              prev.(v) <- u;
              prev_edge.(v) <- ei
            end
          end)
        ctx.out_edges.(u)
    end
  done;
  (dist, prev, prev_edge)

type witness = {
  w_vertices : int list;             (** scan-in .. scan-out *)
  w_routes : (int * int) list list;  (** steering route per edge, in order *)
}

let access_witness ctx fault s =
  let eff = effects_of_fault ctx fault in
  let writable = fixpoint_writable ctx eff in
  let target = v_of_seg s in
  let feasible =
    let rw = reach_from_pi ctx eff writable ~clean:true in
    let s_any = coreach_to_po ctx eff writable ~clean:false in
    rw.(target) && s_any.(target) && not eff.kill_write.(s)
  in
  if not feasible then None
  else begin
    (* The witness must be realizable BEFORE the target has ever been
       written, so its routes may not be steered by bits hosted in the
       target itself.  The fixpoint guarantees such a path exists: the
       target entered the writable set using only previously-writable
       hosts. *)
    let writable = Array.copy writable in
    writable.(s) <- false;
    let rw = reach_from_pi ctx eff writable ~clean:true in
    let s_any = coreach_to_po ctx eff writable ~clean:false in
    (* Minimum-bit prefix over clean steerable edges, then minimum-bit
       suffix over shiftable steerable edges. *)
    let prefix_edge_ok e =
      (not (edge_corrupt eff e))
      && edge_steerable ctx eff writable e
      && (e.e_src = v_pi || (rw.(e.e_src) && clean_through eff e.e_src))
    in
    let prefix_vertex_ok v = v = target || (v <> v_po && rw.(v)) in
    let _, pre_prev, pre_edge =
      shortest_paths ctx ~src:v_pi ~edge_ok:prefix_edge_ok
        ~vertex_ok:prefix_vertex_ok
    in
    let suffix_edge_ok e =
      edge_steerable ctx eff writable e
      && (e.e_src = target || s_any.(e.e_src))
    in
    let suffix_vertex_ok v = v = v_po || s_any.(v) in
    let _, suf_prev, suf_edge =
      shortest_paths ctx ~src:target ~edge_ok:suffix_edge_ok
        ~vertex_ok:suffix_vertex_ok
    in
    let rec unwind prev prev_e v acc_v acc_e =
      if prev.(v) < 0 then
        if v = v_pi || v = target then Some (v :: acc_v, acc_e) else None
      else
        unwind prev prev_e prev.(v) (v :: acc_v)
          (ctx.edges.(prev_e.(v)).e_route :: acc_e)
    in
    match
      (unwind pre_prev pre_edge target [] [],
       unwind suf_prev suf_edge v_po [] [])
    with
    | Some (pre_v, pre_r), Some (_ :: suf_v, suf_r) ->
        Some { w_vertices = pre_v @ suf_v; w_routes = pre_r @ suf_r }
    | _ -> None
  end

let access_path ctx fault s =
  Option.map (fun w -> w.w_vertices) (access_witness ctx fault s)

(* ---- fault-free baseline and cone-of-influence deltas ----

   The metric evaluates every fault of the universe against the same
   context, and most faults disturb only a small cone of the dataflow
   graph.  [baseline] precomputes the fault-free verdict plus the static
   reachability and dependency tables from which each fault's cone is
   derived; [analyze_delta] re-runs the fixpoint only inside the cone and
   splices the fault-free verdict everywhere else.  Exactness, not
   approximation: outside the cone the faulty least fixpoint provably
   coincides with the fault-free one, so the spliced verdict is
   bit-identical to [analyze]'s. *)

type baseline = {
  b_verdict : verdict;           (* fault-free analyze *)
  b_reach : Bitset.t array;      (* per vertex v: vertices reachable from v *)
  b_coreach : Bitset.t array;    (* per vertex v: vertices reaching v *)
  b_host_edges_all : int list array;
      (* per segment: edges with a shadow steering requirement hosted in
         the segment (any reset polarity) *)
  b_host_edges_nonreset : int list array;
      (* per segment: edges with a hosted requirement whose reset value
         does NOT match — the only requirements that consult the host's
         writability *)
  b_mux_edges : int list array;  (* per mux: edges routed through it *)
  b_steer : bool array;
      (* per edge: steerability in the fault-free network under the final
         fault-free writability.  Valid for any edge not affected by the
         fault, at every delta iteration: such an edge consults only
         non-cone hosts, whose writability never leaves its baseline
         value. *)
}

let baseline_verdict b = b.b_verdict

let baseline ctx =
  let b_verdict = analyze ctx None in
  let nv = ctx.nv in
  let g =
    Digraph.of_edges ~n:nv
      (Array.to_list (Array.map (fun e -> (e.e_src, e.e_dst)) ctx.edges))
  in
  let b_reach = Array.init nv (fun _ -> Bitset.create nv) in
  let b_coreach = Array.init nv (fun _ -> Bitset.create nv) in
  (match Order.sort g with
  | Some order ->
      (* Successors first for reach, predecessors first for co-reach. *)
      for idx = nv - 1 downto 0 do
        let v = order.(idx) in
        Bitset.add b_reach.(v) v;
        List.iter
          (fun w -> Bitset.union_into b_reach.(v) b_reach.(w))
          (Digraph.succ g v)
      done;
      for idx = 0 to nv - 1 do
        let v = order.(idx) in
        Bitset.add b_coreach.(v) v;
        List.iter
          (fun u -> Bitset.union_into b_coreach.(v) b_coreach.(u))
          (Digraph.pred g v)
      done
  | None ->
      (* Cyclic dataflow (never produced by the synthesizer, but stay
         sound): every cone degenerates to the full network. *)
      Array.iter Bitset.fill b_reach;
      Array.iter Bitset.fill b_coreach);
  let b_host_edges_all = Array.make ctx.nsegs [] in
  let b_host_edges_nonreset = Array.make ctx.nsegs [] in
  let b_mux_edges = Array.make (Netlist.num_muxes ctx.net) [] in
  Array.iteri
    (fun ei e ->
      let seen_all = ref [] and seen_nr = ref [] in
      Array.iter
        (fun (_, cseg, _, _, reset_matches) ->
          if not (List.mem cseg !seen_all) then begin
            seen_all := cseg :: !seen_all;
            b_host_edges_all.(cseg) <- ei :: b_host_edges_all.(cseg)
          end;
          if (not reset_matches) && not (List.mem cseg !seen_nr) then begin
            seen_nr := cseg :: !seen_nr;
            b_host_edges_nonreset.(cseg) <- ei :: b_host_edges_nonreset.(cseg)
          end)
        e.e_shadow_reqs;
      let seen_m = ref [] in
      Array.iter
        (fun (m, _) ->
          if not (List.mem m !seen_m) then begin
            seen_m := m :: !seen_m;
            b_mux_edges.(m) <- ei :: b_mux_edges.(m)
          end)
        e.e_muxes)
    ctx.edges;
  let eff0 = no_effects ctx in
  let b_steer =
    Array.map (edge_steerable ctx eff0 b_verdict.writable) ctx.edges
  in
  {
    b_verdict;
    b_reach;
    b_coreach;
    b_host_edges_all;
    b_host_edges_nonreset;
    b_mux_edges;
    b_steer;
  }

(* Summary shapes that need no graph traversal at all (see analyze_delta's
   fast paths). *)
let only_kill_read (sm : Fault.summary) =
  sm.Fault.sm_kill_read <> []
  && Fault.summary_benign { sm with Fault.sm_kill_read = [] }

let only_kill_write (sm : Fault.summary) =
  sm.Fault.sm_kill_write <> []
  && Fault.summary_benign { sm with Fault.sm_kill_write = [] }

let local_kill_write base (sm : Fault.summary) =
  only_kill_write sm
  && List.for_all
       (fun i -> base.b_host_edges_nonreset.(i) = [])
       sm.Fault.sm_kill_write

(* Vertices whose verdict (or writability) may differ from the fault-free
   baseline under [sm].  Data/steering damage at a vertex or edge taints
   everything downstream (reach) and upstream (co-reach); local interface
   damage (kill_write / kill_read) taints only the segment itself, plus —
   through the cascade — any edge steered by a not-reset-matching bit
   hosted in a tainted segment, because that segment's writability may
   have changed. *)
let cone_vertices ctx base (sm : Fault.summary) =
  let cv = Bitset.create ctx.nv in
  let nedges = Array.length ctx.edges in
  let affected = Array.make nedges false in
  let aff_list = ref [] in
  (* Data corruption lives on the edges adjacent to the disturbed
     segments; mark them so the delta traversals re-evaluate the edge
     predicates there (and only there). *)
  let mark ei =
    if not affected.(ei) then begin
      affected.(ei) <- true;
      aff_list := ei :: !aff_list
    end
  in
  if sm.Fault.sm_pi_dead || sm.Fault.sm_po_dead then begin
    Bitset.fill cv;
    for ei = nedges - 1 downto 0 do
      mark ei
    done
  end
  else begin
    let add_v v =
      Bitset.union_into cv base.b_reach.(v);
      Bitset.union_into cv base.b_coreach.(v)
    in
    let add_edge ei =
      mark ei;
      let e = ctx.edges.(ei) in
      Bitset.union_into cv base.b_reach.(e.e_dst);
      Bitset.union_into cv base.b_coreach.(e.e_src)
    in
    let through i = add_v (v_of_seg i) in
    let local i = Bitset.add cv (v_of_seg i) in
    List.iter through sm.Fault.sm_hard_block;
    List.iter through sm.Fault.sm_corrupt_vertex;
    List.iter
      (fun i ->
        through i;
        List.iter mark ctx.in_edges.(v_of_seg i))
      sm.Fault.sm_corrupt_in;
    List.iter
      (fun i ->
        through i;
        List.iter mark ctx.out_edges.(v_of_seg i))
      sm.Fault.sm_corrupt_out;
    List.iter local sm.Fault.sm_kill_write;
    List.iter local sm.Fault.sm_kill_read;
    List.iter
      (fun m -> List.iter add_edge base.b_mux_edges.(m))
      sm.Fault.sm_mux_out;
    List.iter
      (fun (m, _) -> List.iter add_edge base.b_mux_edges.(m))
      sm.Fault.sm_mux_in;
    List.iter
      (fun (m, _, _) -> List.iter add_edge base.b_mux_edges.(m))
      sm.Fault.sm_locked_addr;
    List.iter
      (fun (i, _, _) -> List.iter add_edge base.b_host_edges_all.(i))
      sm.Fault.sm_stuck_shadow;
    (* Writability cascade: a tainted segment's writability may change,
       which re-steers every edge with a hosted not-reset-matching
       requirement; their endpoints' cones join until stable. *)
    let applied = Array.make ctx.nsegs false in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      for i = 0 to ctx.nsegs - 1 do
        if
          (not applied.(i))
          && base.b_host_edges_nonreset.(i) <> []
          && Bitset.mem cv (v_of_seg i)
        then begin
          applied.(i) <- true;
          List.iter add_edge base.b_host_edges_nonreset.(i);
          continue_ := true
        end
      done
    done
  end;
  (cv, affected, !aff_list)

let cone_seg_list ctx cv =
  let acc = ref [] in
  for i = ctx.nsegs - 1 downto 0 do
    if Bitset.mem cv (v_of_seg i) then acc := i :: !acc
  done;
  !acc

let cone ctx base (sm : Fault.summary) =
  if Fault.summary_benign sm then None
  else if only_kill_read sm then
    Some (Bitset.of_list ctx.nsegs sm.Fault.sm_kill_read)
  else if local_kill_write base sm then
    Some (Bitset.of_list ctx.nsegs sm.Fault.sm_kill_write)
  else begin
    let cv, _, _ = cone_vertices ctx base sm in
    let cs = Bitset.create ctx.nsegs in
    List.iter (Bitset.add cs) (cone_seg_list ctx cv);
    Some cs
  end

let analyze_delta ctx base (sm : Fault.summary) =
  if Fault.summary_benign sm then (base.b_verdict, 0)
  else if only_kill_read sm then begin
    (* kill_read is consulted only by the readable formula: no traversal
       changes, so flip the affected segments in place. *)
    let readable = Array.copy base.b_verdict.readable in
    let accessible = Array.copy base.b_verdict.accessible in
    List.iter
      (fun i ->
        readable.(i) <- false;
        accessible.(i) <- false)
      sm.Fault.sm_kill_read;
    ( { writable = base.b_verdict.writable; readable; accessible },
      List.length sm.Fault.sm_kill_read )
  end
  else if local_kill_write base sm then begin
    (* Writability is consulted by steering only through
       not-reset-matching hosted requirements; with none hosted in the
       killed segments, the traversals are untouched too. *)
    let writable = Array.copy base.b_verdict.writable in
    let accessible = Array.copy base.b_verdict.accessible in
    List.iter
      (fun i ->
        writable.(i) <- false;
        accessible.(i) <- false)
      sm.Fault.sm_kill_write;
    ( { writable; readable = base.b_verdict.readable; accessible },
      List.length sm.Fault.sm_kill_write )
  end
  else begin
    let eff = add_summary_effects (no_effects ctx) sm in
    let cv, _, aff_list = cone_vertices ctx base sm in
    let cone_list = cone_seg_list ctx cv in
    (* Seeded fixpoint: outside the cone the faulty least fixpoint equals
       the fault-free one, so seeding with (baseline minus cone) starts
       below the faulty fixpoint and chaotic iteration converges to
       exactly it.  Writability and steerability only grow during the
       iteration, so the two supporting traversals (clean reach from
       scan-in, any co-reach to scan-out) are maintained incrementally:
       when a promoted segment makes a hosted edge steerable, the
       traversals extend across that edge instead of restarting — total
       work is about two traversals however deep the enabling chain. *)
    let writable = Array.copy base.b_verdict.writable in
    List.iter (fun i -> writable.(i) <- false) cone_list;
    (* Per-edge caches under the current writability: only the affected
       edges ever deviate from the fault-free baseline, and [steer] is
       refreshed exactly when one of an edge's not-reset-matching hosts
       is promoted; corruption is static per fault. *)
    let steer = Array.copy base.b_steer in
    List.iter
      (fun ei -> steer.(ei) <- edge_steerable ctx eff writable ctx.edges.(ei))
      aff_list;
    let corrupt = Array.make (Array.length ctx.edges) false in
    List.iter
      (fun ei -> if edge_corrupt eff ctx.edges.(ei) then corrupt.(ei) <- true)
      aff_list;
    let rw = Array.make ctx.nv false in
    let s_any = Array.make ctx.nv false in
    (* Vertices that entered a traversal since the last promotion sweep. *)
    let newly = ref [] in
    let fstack = Array.make ctx.nv 0 in
    let fsp = ref 0 in
    let bstack = Array.make ctx.nv 0 in
    let bsp = ref 0 in
    let mark_f v =
      rw.(v) <- true;
      fstack.(!fsp) <- v;
      incr fsp;
      newly := v :: !newly
    in
    let mark_b v =
      s_any.(v) <- true;
      bstack.(!bsp) <- v;
      incr bsp;
      newly := v :: !newly
    in
    let drain_f () =
      while !fsp > 0 do
        decr fsp;
        let u = fstack.(!fsp) in
        if u = v_pi || clean_through eff u then
          List.iter
            (fun ei ->
              let v = ctx.edges.(ei).e_dst in
              if
                (not rw.(v))
                && v <> v_po
                && shiftable eff v
                && (not corrupt.(ei))
                && steer.(ei)
              then mark_f v)
            ctx.out_edges.(u)
      done
    in
    let drain_b () =
      while !bsp > 0 do
        decr bsp;
        let v = bstack.(!bsp) in
        List.iter
          (fun ei ->
            let u = ctx.edges.(ei).e_src in
            if (not s_any.(u)) && u <> v_pi && steer.(ei) then mark_b u)
          ctx.in_edges.(v)
      done
    in
    if not eff.pi_dead then begin
      mark_f v_pi;
      drain_f ()
    end;
    mark_b v_po;
    drain_b ();
    let promote i =
      if
        (not writable.(i))
        && rw.(v_of_seg i)
        && s_any.(v_of_seg i)
        && (not eff.kill_write.(i))
        && not eff.pi_dead
      then begin
        writable.(i) <- true;
        List.iter
          (fun ei ->
            if
              (not steer.(ei))
              && edge_steerable ctx eff writable ctx.edges.(ei)
            then begin
              steer.(ei) <- true;
              let e = ctx.edges.(ei) in
              if
                rw.(e.e_src)
                && (not rw.(e.e_dst))
                && e.e_dst <> v_po
                && shiftable eff e.e_dst
                && (not corrupt.(ei))
                && (e.e_src = v_pi || clean_through eff e.e_src)
              then begin
                mark_f e.e_dst;
                drain_f ()
              end;
              if s_any.(e.e_dst) && (not s_any.(e.e_src)) && e.e_src <> v_pi
              then begin
                mark_b e.e_src;
                drain_b ()
              end
            end)
          base.b_host_edges_nonreset.(i)
      end
    in
    newly := [];
    List.iter promote cone_list;
    let rec settle () =
      match !newly with
      | [] -> ()
      | vs ->
          newly := [];
          List.iter (fun v -> if v >= 2 then promote (seg_of_v v)) vs;
          settle ()
    in
    settle ();
    (* Final traversals under the settled writability, reusing the edge
       caches: any-data reach from scan-in, clean co-reach to scan-out. *)
    let r_any = Array.make ctx.nv false in
    r_any.(v_pi) <- true;
    fstack.(0) <- v_pi;
    fsp := 1;
    while !fsp > 0 do
      decr fsp;
      let u = fstack.(!fsp) in
      List.iter
        (fun ei ->
          let v = ctx.edges.(ei).e_dst in
          if (not r_any.(v)) && v <> v_po && steer.(ei) then begin
            r_any.(v) <- true;
            fstack.(!fsp) <- v;
            incr fsp
          end)
        ctx.out_edges.(u)
    done;
    let s_clean = Array.make ctx.nv false in
    if not eff.po_dead then begin
      s_clean.(v_po) <- true;
      bstack.(0) <- v_po;
      bsp := 1;
      while !bsp > 0 do
        decr bsp;
        let v = bstack.(!bsp) in
        List.iter
          (fun ei ->
            let u = ctx.edges.(ei).e_src in
            if
              (not s_clean.(u))
              && u <> v_pi
              && shiftable eff u
              && (not corrupt.(ei))
              && clean_through eff u
              && steer.(ei)
            then begin
              s_clean.(u) <- true;
              bstack.(!bsp) <- u;
              incr bsp
            end)
          ctx.in_edges.(v)
      done
    end;
    let readable = Array.copy base.b_verdict.readable in
    let accessible = Array.copy base.b_verdict.accessible in
    List.iter
      (fun i ->
        let r =
          r_any.(v_of_seg i)
          && s_clean.(v_of_seg i)
          && (not eff.kill_read.(i))
          && (not eff.corrupt_vertex.(i))
          && not eff.po_dead
        in
        readable.(i) <- r;
        accessible.(i) <- writable.(i) && r)
      cone_list;
    ({ writable; readable; accessible }, List.length cone_list)
  end

(* Read counterpart: a path through the target whose SUFFIX (target to
   scan-out) is corruption-free and shiftable, while the prefix only needs
   to exist topologically.  Same self-steering exclusion as the write
   witness. *)
let read_witness ctx fault s =
  let eff = effects_of_fault ctx fault in
  let writable = fixpoint_writable ctx eff in
  let target = v_of_seg s in
  let feasible =
    let r_any = reach_from_pi ctx eff writable ~clean:false in
    let s_clean = coreach_to_po ctx eff writable ~clean:true in
    r_any.(target) && s_clean.(target)
    && (not eff.kill_read.(s))
    && (not eff.corrupt_vertex.(s))
    && not eff.po_dead
  in
  if not feasible then None
  else begin
    (* Unlike the write witness, steering by the target's own bits is
       allowed here whenever the target is writable: the bit can be
       pre-written (a write needs no clean suffix), then the read follows.
       An unwritable target is already excluded by the fixpoint. *)
    let r_any = reach_from_pi ctx eff writable ~clean:false in
    let s_clean = coreach_to_po ctx eff writable ~clean:true in
    if not (r_any.(target) && s_clean.(target)) then None
    else begin
      let prefix_edge_ok e =
        edge_steerable ctx eff writable e
        && (e.e_src = v_pi || r_any.(e.e_src))
      in
      let prefix_vertex_ok v = v = target || (v <> v_po && r_any.(v)) in
      let _, pre_prev, pre_edge =
        shortest_paths ctx ~src:v_pi ~edge_ok:prefix_edge_ok
          ~vertex_ok:prefix_vertex_ok
      in
      let suffix_edge_ok e =
        (not (edge_corrupt eff e))
        && edge_steerable ctx eff writable e
        && (e.e_src = target || (s_clean.(e.e_src) && clean_through eff e.e_src))
        && shiftable eff e.e_src
      in
      let suffix_vertex_ok v =
        v = v_po || (s_clean.(v) && shiftable eff v)
      in
      let _, suf_prev, suf_edge =
        shortest_paths ctx ~src:target ~edge_ok:suffix_edge_ok
          ~vertex_ok:suffix_vertex_ok
      in
      let rec unwind prev prev_e v acc_v acc_e =
        if prev.(v) < 0 then
          if v = v_pi || v = target then Some (v :: acc_v, acc_e) else None
        else
          unwind prev prev_e prev.(v) (v :: acc_v)
            (ctx.edges.(prev_e.(v)).e_route :: acc_e)
      in
      match
        (unwind pre_prev pre_edge target [] [],
         unwind suf_prev suf_edge v_po [] [])
      with
      | Some (pre_v, pre_r), Some (_ :: suf_v, suf_r) ->
          Some { w_vertices = pre_v @ suf_v; w_routes = pre_r @ suf_r }
      | _ -> None
    end
  end
