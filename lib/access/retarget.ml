module Netlist = Ftrsn_rsn.Netlist
module Config = Ftrsn_rsn.Config
module Sim = Ftrsn_rsn.Sim
module Fault = Ftrsn_fault.Fault

type csu_step = {
  writes : (int * int * bool) list;
  path : int list;
  step_primaries : (string * bool) list;
      (* primary control lines asserted while this CSU runs *)
}

type plan = {
  steps : csu_step list;
  access_path : int list;
  target : int;
  cycles : int;
  requirements : (int * int * bool) list;
  primaries : (string * bool) list;
  helpers : (string * bool) list;
}

(* All shadow bits that drive some multiplexer address: the control state
   that determines the scan topology. *)
let control_bits (net : Netlist.t) =
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun (m : Netlist.mux) ->
      Array.iter
        (function
          | Netlist.Ctrl_shadow { cseg; cbit } ->
              Hashtbl.replace seen (cseg, cbit) ()
          | Netlist.Ctrl_const _ | Netlist.Ctrl_primary _ -> ())
        m.mux_addr)
    net.muxes;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

(* All primary control input names of a netlist (rescue and port-switch
   lines added by the fault-tolerant synthesis). *)
let primary_names (net : Netlist.t) =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (m : Netlist.mux) ->
      Array.iter
        (function
          | Netlist.Ctrl_primary p -> Hashtbl.replace seen p ()
          | Netlist.Ctrl_const _ | Netlist.Ctrl_shadow _ -> ())
        m.mux_addr)
    net.muxes;
  Hashtbl.fold (fun p () acc -> p :: acc) seen []

let cycles_of_paths net paths =
  List.fold_left
    (fun acc p -> acc + 2 + Config.path_length net p)
    0 paths

(* Address assignments needed to sensitize the witness path: for every
   (mux, input) pair of the chosen routes, the required value of each
   shadow-driven address bit.  Returns None on conflicting requirements or
   on requirements contradicting the fault pins. *)
let assignments_of_witness (net : Netlist.t) fault (w : Engine.witness) =
  let needed = Hashtbl.create 16 in
  let needed_prim = Hashtbl.create 8 in
  let conflict = ref false in
  let require seg bit v =
    match Hashtbl.find_opt needed (seg, bit) with
    | Some v' when v' <> v -> conflict := true
    | Some _ -> ()
    | None -> Hashtbl.add needed (seg, bit) v
  in
  let require_prim p v =
    match Hashtbl.find_opt needed_prim p with
    | Some v' when v' <> v -> conflict := true
    | Some _ -> ()
    | None -> Hashtbl.add needed_prim p v
  in
  List.iter
    (fun route ->
      List.iter
        (fun (m, k) ->
          let mx = net.Netlist.muxes.(m) in
          Array.iteri
            (fun b ctrl ->
              let required = k land (1 lsl b) <> 0 in
              let addr_locked =
                match fault with
                | Some { Fault.site = Fault.Mux_addr (m', b'); stuck }
                  when m' = m && b' = b && not (Fault.port_masked_mux net m)
                  ->
                    Some stuck
                | _ -> None
              in
              match addr_locked with
              | Some v -> if v <> required then conflict := true
              | None -> (
                  match ctrl with
                  | Netlist.Ctrl_const c ->
                      if c <> required then conflict := true
                  | Netlist.Ctrl_primary p -> require_prim p required
                  | Netlist.Ctrl_shadow { cseg; cbit } -> (
                      let pinned =
                        match fault with
                        | Some
                            { Fault.site = Fault.Seg_shadow_reg (s, b'); stuck }
                          when s = cseg && b' = cbit
                               && not (Fault.tmr_protected_shadow net s b') ->
                            Some stuck
                        | _ -> None
                      in
                      match pinned with
                      | Some v -> if v <> required then conflict := true
                      | None -> require cseg cbit required)))
            mx.mux_addr)
        route)
    w.Engine.w_routes;
  if !conflict then None
  else
    Some
      ( Hashtbl.fold (fun (s, b) v acc -> (s, b, v) :: acc) needed [],
        Hashtbl.fold (fun p v acc -> (p, v) :: acc) needed_prim [] )

(* Which segments of an element-level trace receive uncorrupted write data
   under the fault: walks the trace from scan-in, flagging the stream as
   corrupt once it passes the fault site. *)
let writable_on_trace (net : Netlist.t) fault trace =
  let corrupt = ref false in
  (match fault with
  | Some { Fault.site = Fault.Primary_in; _ } when not net.Netlist.dual_ports ->
      corrupt := true
  | _ -> ());
  List.filter_map
    (fun item ->
      match item with
      | Sim.T_mux (m, k) ->
          (match fault with
          | Some { Fault.site = Fault.Mux_out m'; _ }
            when m' = m && not (Fault.port_masked_mux net m) ->
              corrupt := true
          | Some { Fault.site = Fault.Mux_data_in (m', k'); _ }
            when m' = m
                 && Netlist.mux_input_class net m k
                    = Netlist.mux_input_class net m' k'
                 && not (Fault.port_masked_mux net m) ->
              corrupt := true
          | _ -> ());
          None
      | Sim.T_seg s ->
          (match fault with
          | Some { Fault.site = Fault.Seg_scan_in s'; _ } when s' = s ->
              corrupt := true
          | _ -> ());
          let ok =
            (not !corrupt)
            &&
            match fault with
            | Some { Fault.site = Fault.Seg_shift_reg s'; _ } when s' = s ->
                false
            | Some { Fault.site = Fault.Seg_update_en s'; stuck = false }
              when s' = s ->
                false
            | Some { Fault.site = Fault.Seg_select s'; stuck = false }
              when s' = s ->
                false
            | _ -> true
          in
          (match fault with
          | Some { Fault.site = Fault.Seg_shift_reg s'; _ } when s' = s ->
              corrupt := true
          | Some { Fault.site = Fault.Seg_scan_out s'; _ } when s' = s ->
              corrupt := true
          | Some { Fault.site = Fault.Seg_select s'; stuck = false }
            when s' = s ->
              (* A non-shifting segment freezes the stream behind it. *)
              corrupt := true
          | _ -> ());
          Some (s, ok))
    trace

let plan_with ~witness ctx ?fault ~target () =
  let net = Engine.netlist ctx in
  match witness ctx fault target with
  | None -> None
  | Some w -> (
      match assignments_of_witness net fault w with
      | None -> None
      | Some (assignments, primaries) ->
          let inj =
            match fault with
            | Some f -> Fault.to_injection net f
            | None -> Sim.no_injection
          in
          let config =
            ref
              (List.fold_left
                 (fun c (p, v) -> Config.set_primary c p v)
                 (Config.reset net) primaries)
          in
          let steps = ref [] in
          let helpers = ref [] in
          (* Only route-ENABLING bits (required 1) are commitments to
             write; required-0 bits are "keep closed" preferences that hold
             at reset and, if overridden by a subgoal or by fault-induced
             junk, merely lengthen the active path — the semantic check on
             the final configuration decides. *)
          let enabling =
            List.filter
              (fun (s, b, v) ->
                v
                && Config.get_shadow !config ~seg:s ~bit:b <> v
                ||
                (* a non-reset required-0 bit still needs an explicit
                   write (does not arise with all-zero resets) *)
                ((not v) && Config.get_shadow !config ~seg:s ~bit:b))
              assignments
          in
          let committed = Hashtbl.create 16 in
          List.iter (fun (s, b, v) -> Hashtbl.replace committed (s, b) v)
            enabling;
          let remaining = ref enabling in
          (* Rescue/port primaries not demanded by the witness can still be
             needed transiently: force-opening a subtree makes a pending
             control bit reachable.  When the greedy write loop stalls, try
             asserting one more helper line. *)
          let helper_candidates =
            ref
              (List.filter
                 (fun p -> not (List.mem_assoc p primaries))
                 (primary_names net))
          in
          let writable_now cfg =
            match Sim.active_trace net inj cfg with
            | None -> []
            | Some trace -> writable_on_trace net fault trace
          in
          let stuck = ref false in
          while !remaining <> [] && not !stuck do
            let ok_list = writable_now !config in
            let can_write s =
              List.exists (fun (s', ok) -> s' = s && ok) ok_list
            in
            let now, later =
              List.partition (fun (s, _, _) -> can_write s) !remaining
            in
            if now = [] then begin
              (* Stalled: first look for a helper primary that unlocks a
                 pending segment. *)
              let helps p =
                let cfg = Config.set_primary !config p true in
                let ok' = writable_now cfg in
                List.exists
                  (fun (s, _, _) ->
                    List.exists (fun (s', ok) -> s' = s && ok) ok')
                  !remaining
              in
              (if Sys.getenv_opt "FTRSN_PLAN_DEBUG" <> None then
                 Printf.eprintf "stall: pending=[%s]\n%!"
                   (String.concat ";"
                      (List.map
                         (fun (s, b, v) ->
                           Printf.sprintf "%d.%d=%b" s b v)
                         !remaining)));
              match List.find_opt helps !helper_candidates with
              | Some p ->
                  helpers := (p, true) :: !helpers;
                  helper_candidates :=
                    List.filter (fun q -> q <> p) !helper_candidates;
                  config := Config.set_primary !config p true
              | None ->
                  (* Expand a pending goal: to write a host segment it may
                     first need its own access path configured, which can
                     demand further (lower-rank) control bits.  Merge one
                     pending segment's own witness requirements into the
                     goal set, unless they conflict. *)
                  let expanded = ref false in
                  List.iter
                    (fun (s, _, _) ->
                      if not !expanded then
                        match Engine.access_witness ctx fault s with
                        | None -> ()
                        | Some w' -> (
                            match assignments_of_witness net fault w' with
                            | None ->
                                if Sys.getenv_opt "FTRSN_PLAN_DEBUG" <> None
                                then
                                  Printf.eprintf
                                    "expand %d: witness assign conflict\n%!" s
                            | Some (assigns', prims') ->
                                (if Sys.getenv_opt "FTRSN_PLAN_DEBUG" <> None
                                 then
                                   Printf.eprintf
                                     "expand %d: assigns=[%s] prims=[%s]\n%!"
                                     s
                                     (String.concat ";"
                                        (List.map
                                           (fun (a, b, v) ->
                                             Printf.sprintf "%d.%d=%b" a b v)
                                           assigns'))
                                     (String.concat ";"
                                        (List.map
                                           (fun (p, v) ->
                                             Printf.sprintf "%s=%b" p v)
                                           prims')));
                                (* Merge the subgoal's route-enabling
                                   bits; keep-closed preferences and
                                   primary-false requirements are not
                                   commitments. *)
                                begin
                                  List.iter
                                    (fun (s', b', v') ->
                                      if
                                        v'
                                        && (not
                                              (Hashtbl.mem committed (s', b')))
                                        && Config.get_shadow !config ~seg:s'
                                             ~bit:b'
                                           <> v'
                                      then begin
                                        Hashtbl.add committed (s', b') v';
                                        remaining := (s', b', v') :: !remaining;
                                        expanded := true
                                      end)
                                    assigns';
                                  List.iter
                                    (fun (p, v) ->
                                      (* Helper lines are transient: even a
                                         primary the final configuration
                                         needs de-asserted may be asserted
                                         during configuration. *)
                                      if v && not (List.mem_assoc p !helpers)
                                      then begin
                                        helpers := (p, true) :: !helpers;
                                        helper_candidates :=
                                          List.filter (fun q -> q <> p)
                                            !helper_candidates;
                                        config :=
                                          Config.set_primary !config p true;
                                        expanded := true
                                      end)
                                    prims'
                                end))
                    !remaining;
                  (if Sys.getenv_opt "FTRSN_PLAN_DEBUG" <> None then
                     Printf.eprintf "expanded=%b\n%!" !expanded);
                  if not !expanded then stuck := true
            end
            else begin
              List.iter
                (fun (s, b, v) -> Config.set_shadow !config ~seg:s ~bit:b v)
                now;
              let path = List.map fst ok_list in
              steps :=
                { writes = now; path;
                  step_primaries = primaries @ List.rev !helpers }
                :: !steps;
              remaining := later
            end
          done;
          if !stuck then None
          else
            (* The final (access) configuration drops the helper lines and
               keeps exactly the witness primaries. *)
            let final_cfg =
              { !config with Config.primaries = primaries }
            in
            match Sim.active_path net inj final_cfg with
            | Some path when List.mem target path ->
                let steps = List.rev !steps in
                let all_paths = List.map (fun s -> s.path) steps @ [ path ] in
                (* The requirements are exactly the assigned bits: control
                   bits disturbed as a side effect of a control fault (e.g.
                   a select stuck-at-1 segment latching passing data) can
                   only splice subtrees in or out of the path, which the
                   adaptive executor tolerates as long as the final path
                   still delivers clean data to the target. *)
                Some
                  {
                    steps;
                    access_path = path;
                    target;
                    cycles = cycles_of_paths net all_paths;
                    requirements =
                      Hashtbl.fold
                        (fun (s, b) v acc -> (s, b, v) :: acc)
                        committed [];
                    primaries;
                    helpers = !helpers;
                  }
            | _ -> None)

let plan_write ctx ?fault ~target () =
  plan_with ~witness:Engine.access_witness ctx ?fault ~target ()

let plan_read ctx ?fault ~target () =
  plan_with ~witness:Engine.read_witness ctx ?fault ~target ()

(* Dual of [writable_on_trace]: which segments of a trace can be READ
   unscathed — no corrupting or non-shifting element between the segment
   (inclusive) and the scan-out.  Walks the trace from the scan-out side. *)
let readable_on_trace (net : Netlist.t) fault trace =
  let corrupt = ref false in
  (match fault with
  | Some { Fault.site = Fault.Primary_out; _ } when not net.Netlist.dual_ports
    ->
      corrupt := true
  | _ -> ());
  let out =
    List.rev_map
      (fun item ->
        match item with
        | Sim.T_mux (m, k) ->
            (match fault with
            | Some { Fault.site = Fault.Mux_out m'; _ }
              when m' = m && not (Fault.port_masked_mux net m) ->
                corrupt := true
            | Some { Fault.site = Fault.Mux_data_in (m', k'); _ }
              when m' = m
                   && Netlist.mux_input_class net m k
                      = Netlist.mux_input_class net m' k'
                   && not (Fault.port_masked_mux net m) ->
                corrupt := true
            | _ -> ());
            None
        | Sim.T_seg s ->
            (* Damage at the segment's output side is seen first when
               walking backwards. *)
            (match fault with
            | Some { Fault.site = Fault.Seg_scan_out s'; _ } when s' = s ->
                corrupt := true
            | _ -> ());
            let ok =
              (not !corrupt)
              &&
              match fault with
              | Some { Fault.site = Fault.Seg_shift_reg s'; _ } when s' = s ->
                  false
              | Some { Fault.site = Fault.Seg_capture_en s'; stuck = false }
                when s' = s ->
                  false
              | Some { Fault.site = Fault.Seg_select s'; stuck = false }
                when s' = s ->
                  false
              | _ -> true
            in
            (match fault with
            | Some { Fault.site = Fault.Seg_shift_reg s'; _ } when s' = s ->
                corrupt := true
            | Some { Fault.site = Fault.Seg_scan_in s'; _ } when s' = s ->
                corrupt := true
            | Some { Fault.site = Fault.Seg_select s'; stuck = false }
              when s' = s ->
                corrupt := true
            | _ -> ());
            Some (s, ok))
      (List.rev trace)
  in
  (* rev_map over rev preserves original order but wraps options. *)
  List.filter_map Fun.id out

(* Build the scan-in stream that leaves each path segment's shift register
   holding the desired contents after [path length] shift cycles.  Bits are
   listed first-in first: the bit fed at cycle t lands at global flop
   position (L - 1 - t). *)
let stream_for (net : Netlist.t) (state : Sim.state) path ~writes
    ~(patterns : (int * bool list) list) =
  let desired =
    List.map
      (fun s ->
        let seg = net.Netlist.segs.(s) in
        let d = Array.make seg.Netlist.seg_len false in
        (* Preserve current shadow contents by default (the update at the
           end of the CSU rewrites every selected shadow).  Shadow bit j
           mirrors shift stage [len - shadow + j]. *)
        let off = seg.Netlist.seg_len - seg.Netlist.seg_shadow in
        for j = 0 to seg.Netlist.seg_shadow - 1 do
          d.(off + j) <- state.Sim.config.Config.shadows.(s).(j)
        done;
        List.iter (fun (s', b, v) -> if s' = s then d.(off + b) <- v) writes;
        (match List.assoc_opt s patterns with
        | Some bits ->
            List.iteri
              (fun j v -> if j < Array.length d then d.(j) <- v)
              bits
        | None -> ());
        d)
      path
  in
  let flat = Array.concat desired in
  let len = Array.length flat in
  List.init len (fun t -> flat.(len - 1 - t))

(* Adaptive execution: rather than blindly replaying the planned CSUs, each
   iteration looks at the simulator's actual configuration (control faults
   such as a select stuck-at-1 can disturb shadow bits as a side effect of
   shifting) and writes whichever outstanding requirement bits are
   reachable and uncorrupted on the current active path.  Requirement bits
   that end up unreachable (e.g. "keep this subtree bypassed" bits behind a
   corrupting fault site) are tolerated; the final semantic check decides
   success. *)
let execute net ?fault plan ~pattern =
  let inj =
    match fault with
    | Some f -> Fault.to_injection net f
    | None -> Sim.no_injection
  in
  let base_state = Sim.initial net in
  let state = ref base_state in
  let set_primaries prims =
    state :=
      {
        !state with
        Sim.config =
          List.fold_left
            (fun c (p, v) -> Config.set_primary c p v)
            { !state.Sim.config with Config.primaries = [] }
            prims;
      }
  in
  let unsatisfied () =
    List.filter
      (fun (s, b, v) ->
        Config.get_shadow !state.Sim.config ~seg:s ~bit:b <> v)
      plan.requirements
  in
  let max_iters = 4 * (Netlist.num_segments net + 2) in
  let rec configure iter =
    if iter > max_iters then Ok ()
    else
      match unsatisfied () with
      | [] -> Ok ()
      | pending -> (
          match Sim.active_trace net inj !state.Sim.config with
          | None -> Error "invalid configuration reached during execution"
          | Some trace ->
              let ok_list = writable_on_trace net fault trace in
              let can_write s =
                List.exists (fun (s', ok) -> s' = s && ok) ok_list
              in
              let writes = List.filter (fun (s, _, _) -> can_write s) pending in
              if writes = [] then Ok ()
              else begin
                let path = List.map fst ok_list in
                (* Segments receiving corrupted data must not latch it:
                   disable their update (the Updis control of the paper's
                   model, eq. 1). *)
                let updis =
                  List.filter_map
                    (fun (s, ok) -> if ok then None else Some s)
                    ok_list
                in
                let stream =
                  stream_for net !state path ~writes ~patterns:[]
                in
                let (_ : bool list) =
                  Sim.csu net ~inj ~updis !state ~scan_in:stream
                in
                configure (iter + 1)
              end)
  in
  (* Phase 1: replay the planned CSUs with the primary-line state each was
     planned under (helper lines activate progressively).  Writes that fail
     to apply are left to the adaptive phase. *)
  List.iter
    (fun step ->
      set_primaries step.step_primaries;
      match Sim.active_trace net inj !state.Sim.config with
      | None -> ()
      | Some trace ->
          let ok_list = writable_on_trace net fault trace in
          let can_write s =
            List.exists (fun (s', ok) -> s' = s && ok) ok_list
          in
          let writes =
            List.filter
              (fun (s, b, v) ->
                can_write s
                && Config.get_shadow !state.Sim.config ~seg:s ~bit:b <> v)
              step.writes
          in
          if writes <> [] then begin
            let path = List.map fst ok_list in
            let updis =
              List.filter_map
                (fun (s, ok) -> if ok then None else Some s)
                ok_list
            in
            let stream = stream_for net !state path ~writes ~patterns:[] in
            let (_ : bool list) =
              Sim.csu net ~inj ~updis !state ~scan_in:stream
            in
            ()
          end)
    plan.steps;
  (* Phase 2: adaptive cleanup with every helper asserted. *)
  set_primaries (plan.primaries @ plan.helpers);
  match configure 0 with
  | Error e -> Error e
  | Ok () -> (
      (* Drop the helper lines for the access CSU: only the witness
         primaries remain asserted. *)
      set_primaries plan.primaries;
      match Sim.active_trace net inj !state.Sim.config with
      | None -> Error "invalid final configuration"
      | Some trace ->
          let ok_list = writable_on_trace net fault trace in
          let path = List.map fst ok_list in
          if not (List.mem plan.target path) then
            Error
              (Printf.sprintf
                 "target not on the final active path [%s] (unsatisfied: %s)"
                 (String.concat ";"
                    (List.map (Netlist.segment_name net) path))
                 (String.concat ";"
                    (List.map
                       (fun (s, b, v) ->
                         Printf.sprintf "%s.%d=%b"
                           (Netlist.segment_name net s) b v)
                       (unsatisfied ()))))
          else if
            not
              (List.exists
                 (fun (s, ok) -> s = plan.target && ok)
                 ok_list)
          then Error "final path does not deliver clean data to the target"
          else begin
            let updis =
              List.filter_map
                (fun (s, ok) -> if ok then None else Some s)
                ok_list
            in
            let stream =
              stream_for net !state path ~writes:[]
                ~patterns:[ (plan.target, pattern) ]
            in
            let (_ : bool list) =
              Sim.csu net ~inj ~updis !state ~scan_in:stream
            in
            Ok !state
          end)


(* Read access: configure like [execute], then run one CSU on the final
   path and extract the target's captured bits from the scan-out stream.
   Bit j of the target (global position off + j, off = sum of the lengths
   of preceding path segments) appears at output cycle L - 1 - (off + j). *)
let execute_read net ?fault plan ~instrument =
  let inj =
    match fault with
    | Some f -> Fault.to_injection net f
    | None -> Sim.no_injection
  in
  let state = ref (Sim.initial net) in
  (* Plant the instrument data the capture of the final CSU will pick up. *)
  List.iteri
    (fun j v ->
      if j < Netlist.seg_len net plan.target then
        !state.Sim.instrument.(plan.target).(j) <- v)
    instrument;
  let set_primaries prims =
    state :=
      {
        !state with
        Sim.config =
          List.fold_left
            (fun c (p, v) -> Config.set_primary c p v)
            { !state.Sim.config with Config.primaries = [] }
            prims;
      }
  in
  let run_step step =
    set_primaries step.step_primaries;
    match Sim.active_trace net inj !state.Sim.config with
    | None -> ()
    | Some trace ->
        let ok_list = writable_on_trace net fault trace in
        let can_write s = List.exists (fun (s', ok) -> s' = s && ok) ok_list in
        let writes =
          List.filter
            (fun (s, b, v) ->
              can_write s
              && Config.get_shadow !state.Sim.config ~seg:s ~bit:b <> v)
            step.writes
        in
        if writes <> [] then begin
          let path = List.map fst ok_list in
          let updis =
            List.filter_map (fun (s, ok) -> if ok then None else Some s) ok_list
          in
          let stream = stream_for net !state path ~writes ~patterns:[] in
          let (_ : bool list) = Sim.csu net ~inj ~updis !state ~scan_in:stream in
          ()
        end
  in
  List.iter run_step plan.steps;
  set_primaries (plan.primaries @ plan.helpers);
  (* Adaptive cleanup of outstanding requirement bits. *)
  let max_iters = 4 * (Netlist.num_segments net + 2) in
  let rec cleanup iter =
    if iter > max_iters then ()
    else
      let pending =
        List.filter
          (fun (s, b, v) ->
            Config.get_shadow !state.Sim.config ~seg:s ~bit:b <> v)
          plan.requirements
      in
      if pending <> [] then
        match Sim.active_trace net inj !state.Sim.config with
        | None -> ()
        | Some trace ->
            let ok_list = writable_on_trace net fault trace in
            let can_write s =
              List.exists (fun (s', ok) -> s' = s && ok) ok_list
            in
            let writes = List.filter (fun (s, _, _) -> can_write s) pending in
            if writes <> [] then begin
              let path = List.map fst ok_list in
              let updis =
                List.filter_map
                  (fun (s, ok) -> if ok then None else Some s)
                  ok_list
              in
              let stream = stream_for net !state path ~writes ~patterns:[] in
              let (_ : bool list) =
                Sim.csu net ~inj ~updis !state ~scan_in:stream
              in
              cleanup (iter + 1)
            end
  in
  cleanup 0;
  set_primaries plan.primaries;
  match Sim.active_trace net inj !state.Sim.config with
  | None -> Error "invalid final configuration"
  | Some trace -> (
      let readable = readable_on_trace net fault trace in
      let path = List.map fst readable in
      if not (List.mem plan.target path) then
        Error "target not on the final active path"
      else if
        not
          (List.exists (fun (s, ok) -> s = plan.target && ok) readable)
      then Error "final path does not observe the target unscathed"
      else begin
        let updis =
          let w = writable_on_trace net fault trace in
          List.filter_map (fun (s, ok) -> if ok then None else Some s) w
        in
        let stream = stream_for net !state path ~writes:[] ~patterns:[] in
        let out = Sim.csu net ~inj ~updis !state ~scan_in:stream in
        let out = Array.of_list out in
        let len = Array.length out in
        (* Offset of the target within the path. *)
        let rec offset acc = function
          | [] -> Error "target vanished from the path"
          | s :: _ when s = plan.target -> Ok acc
          | s :: tl -> offset (acc + Netlist.seg_len net s) tl
        in
        match offset 0 path with
        | Error e -> Error e
        | Ok off ->
            let bits =
              List.init (Netlist.seg_len net plan.target) (fun j ->
                  out.(len - 1 - (off + j)))
            in
            Ok bits
      end)


(* Fault-free execution trace for vector export: the scan-in stream fed
   and the scan-out stream observed for every CSU of the plan, in order
   (configuration steps, then the access CSU carrying [pattern]). *)
let trace_execution net plan ~pattern =
  let state = ref (Sim.initial net) in
  let set_primaries prims =
    state :=
      {
        !state with
        Sim.config =
          List.fold_left
            (fun c (p, v) -> Config.set_primary c p v)
            { !state.Sim.config with Config.primaries = [] }
            prims;
      }
  in
  let vectors = ref [] in
  let run ~writes ~patterns =
    match Sim.active_path net Sim.no_injection !state.Sim.config with
    | None -> Error "invalid configuration"
    | Some path ->
        let stream = stream_for net !state path ~writes ~patterns in
        let out = Sim.csu net !state ~scan_in:stream in
        vectors := (stream, out) :: !vectors;
        Ok ()
  in
  let rec steps = function
    | [] -> Ok ()
    | st :: tl -> (
        set_primaries st.step_primaries;
        match run ~writes:st.writes ~patterns:[] with
        | Error e -> Error e
        | Ok () -> steps tl)
  in
  match steps plan.steps with
  | Error e -> Error e
  | Ok () -> (
      set_primaries plan.primaries;
      match run ~writes:[] ~patterns:[ (plan.target, pattern) ] with
      | Error e -> Error e
      | Ok () -> Ok (List.rev !vectors))


(* ---- merged multi-target retargeting ----

   Accessing several segments with one CSU schedule (in the spirit of
   "Scan Pattern Retargeting and Merging with Reduced Access Time",
   Baranowski et al., ETS'13): targets whose steering requirements are
   compatible are grouped; each group shares its configuration CSUs and a
   single access CSU whose active path carries every target of the group. *)

type merged_plan = {
  groups : (plan * int list) list;
      (* per group: the plan (its [target] is the first of the group) and
         all the group's targets *)
  merged_cycles : int;
  sequential_cycles : int;  (* cost of accessing each target separately *)
}

let plan_write_merged ctx ?fault ~targets () =
  let net = Engine.netlist ctx in
  let inj =
    match fault with
    | Some f -> Fault.to_injection net f
    | None -> Sim.no_injection
  in
  (* Individual plans first: unreachable targets fail the merge. *)
  let singles =
    List.map
      (fun t ->
        match plan_write ctx ?fault ~target:t () with
        | Some p -> (t, p)
        | None -> raise Exit)
      targets
  in
  match singles with
  | exception Exit -> None
  | [] -> Some { groups = []; merged_cycles = 0; sequential_cycles = 0 }
  | singles ->
      let sequential_cycles =
        List.fold_left (fun acc (_, p) -> acc + p.cycles) 0 singles
      in
      (* Greedy grouping: fold targets into the current group while their
         requirement bits stay compatible; on conflict, start a new
         group. *)
      let conflict reqs reqs' =
        List.exists
          (fun (s, b, v) ->
            List.exists (fun (s', b', v') -> s = s' && b = b' && v <> v') reqs')
          reqs
      in
      let groups = ref [] in
      let cur = ref [] in
      let cur_reqs = ref [] in
      let flush () =
        if !cur <> [] then begin
          groups := (List.rev !cur, !cur_reqs) :: !groups;
          cur := [];
          cur_reqs := []
        end
      in
      List.iter
        (fun (t, p) ->
          if conflict p.requirements !cur_reqs then flush ();
          cur := (t, p) :: !cur;
          cur_reqs :=
            !cur_reqs
            @ List.filter
                (fun (s, b, _) ->
                  not
                    (List.exists (fun (s', b', _) -> s = s' && b = b') !cur_reqs))
                p.requirements)
        singles;
      flush ();
      let groups = List.rev !groups in
      (* Build one merged plan per group: union of requirements, union of
         primaries/helpers; the access path must carry every target. *)
      let build (members, reqs) =
        let ts = List.map fst members in
        let plans = List.map snd members in
        let union_assoc l =
          List.fold_left
            (fun acc kv -> if List.mem kv acc then acc else acc @ [ kv ])
            [] l
        in
        let primaries = union_assoc (List.concat_map (fun p -> p.primaries) plans) in
        let helpers = union_assoc (List.concat_map (fun p -> p.helpers) plans) in
        let config =
          ref
            (List.fold_left
               (fun c (p, v) -> Config.set_primary c p v)
               (Config.reset net) (primaries @ helpers))
        in
        let steps = ref [] in
        let remaining =
          ref
            (List.filter
               (fun (s, b, v) -> Config.get_shadow !config ~seg:s ~bit:b <> v)
               reqs)
        in
        let stuck = ref false in
        while !remaining <> [] && not !stuck do
          match Sim.active_trace net inj !config with
          | None -> stuck := true
          | Some trace ->
              let ok_list = writable_on_trace net fault trace in
              let can_write s =
                List.exists (fun (s', ok) -> s' = s && ok) ok_list
              in
              let now, later =
                List.partition (fun (s, _, _) -> can_write s) !remaining
              in
              if now = [] then stuck := true
              else begin
                List.iter
                  (fun (s, b, v) -> Config.set_shadow !config ~seg:s ~bit:b v)
                  now;
                steps :=
                  { writes = now; path = List.map fst ok_list;
                    step_primaries = primaries @ helpers }
                  :: !steps;
                remaining := later
              end
        done;
        if !stuck then None
        else
          let final_cfg = { !config with Config.primaries } in
          match Sim.active_path net inj final_cfg with
          | Some path when List.for_all (fun t -> List.mem t path) ts ->
              let steps = List.rev !steps in
              let all_paths = List.map (fun s -> s.path) steps @ [ path ] in
              Some
                ( {
                    steps;
                    access_path = path;
                    target = List.hd ts;
                    cycles = cycles_of_paths net all_paths;
                    requirements = reqs;
                    primaries;
                    helpers;
                  },
                  ts )
          | _ -> None
      in
      (* Merging is not always a win: a shared access CSU shifts through
         EVERY spliced-in register, so groups dominated by long instrument
         chains can cost more than sequential access.  Recursively split a
         group in half whenever merging it costs more than the sum of its
         parts — converging on per-subtree groupings where those pay. *)
      let reqs_of members =
        List.fold_left
          (fun acc (_, p) ->
            acc
            @ List.filter
                (fun (s, b, _) ->
                  not (List.exists (fun (s', b', _) -> s = s' && b = b') acc))
                p.requirements)
          [] members
      in
      let rec build_best members =
        match members with
        | [] -> Some []
        | [ (t, p) ] -> Some [ (p, [ t ]) ]
        | _ -> (
            let solo =
              List.fold_left (fun acc (_, p) -> acc + p.cycles) 0 members
            in
            let merged = build (members, reqs_of members) in
            let split () =
              let n = List.length members in
              let left = List.filteri (fun i _ -> i < n / 2) members in
              let right = List.filteri (fun i _ -> i >= n / 2) members in
              match (build_best left, build_best right) with
              | Some a, Some b -> Some (a @ b)
              | _ -> None
            in
            match merged with
            | Some (plan, ts) when plan.cycles <= solo -> (
                (* Try splitting anyway; keep whichever is cheaper. *)
                match split () with
                | Some parts ->
                    let part_cost =
                      List.fold_left (fun acc (p, _) -> acc + p.cycles) 0 parts
                    in
                    if part_cost < plan.cycles then Some parts
                    else Some [ (plan, ts) ]
                | None -> Some [ (plan, ts) ])
            | _ -> split ())
      in
      let built = List.map (fun (members, _) -> build_best members) groups in
      if List.exists (fun g -> g = None) built then None
      else begin
        let groups = List.concat (List.filter_map Fun.id built) in
        let merged_cycles =
          List.fold_left (fun acc (p, _) -> acc + p.cycles) 0 groups
        in
        Some { groups; merged_cycles; sequential_cycles }
      end

(* Execute a merged group: configuration phase as in [execute], then one
   access CSU carrying every (target, pattern) of the group. *)
let execute_merged net ?fault (p : plan) ~(patterns : (int * bool list) list) =
  let inj =
    match fault with
    | Some f -> Fault.to_injection net f
    | None -> Sim.no_injection
  in
  let state = ref (Sim.initial net) in
  let set_primaries prims =
    state :=
      {
        !state with
        Sim.config =
          List.fold_left
            (fun c (pr, v) -> Config.set_primary c pr v)
            { !state.Sim.config with Config.primaries = [] }
            prims;
      }
  in
  set_primaries (p.primaries @ p.helpers);
  let rec configure steps =
    match steps with
    | [] -> Ok ()
    | step :: tl -> (
        match Sim.active_trace net inj !state.Sim.config with
        | None -> Error "invalid configuration"
        | Some trace ->
            let ok_list = writable_on_trace net fault trace in
            let path = List.map fst ok_list in
            let updis =
              List.filter_map
                (fun (s, ok) -> if ok then None else Some s)
                ok_list
            in
            let stream =
              stream_for net !state path ~writes:step.writes ~patterns:[]
            in
            let (_ : bool list) =
              Sim.csu net ~inj ~updis !state ~scan_in:stream
            in
            configure tl)
  in
  match configure p.steps with
  | Error e -> Error e
  | Ok () -> (
      set_primaries p.primaries;
      match Sim.active_trace net inj !state.Sim.config with
      | None -> Error "invalid final configuration"
      | Some trace ->
          let ok_list = writable_on_trace net fault trace in
          let path = List.map fst ok_list in
          if
            List.exists
              (fun (t, _) ->
                not
                  (List.exists (fun (s, ok) -> s = t && ok) ok_list))
              patterns
          then Error "a target is not cleanly writable on the final path"
          else begin
            let updis =
              List.filter_map
                (fun (s, ok) -> if ok then None else Some s)
                ok_list
            in
            let stream = stream_for net !state path ~writes:[] ~patterns in
            let (_ : bool list) =
              Sim.csu net ~inj ~updis !state ~scan_in:stream
            in
            Ok !state
          end)
