(** Signature-based fault diagnosis of RSNs.

    The paper motivates fault-tolerant RSNs by post-silicon debug and
    diagnosis: before routing around a defect one must locate it.  This
    module implements the classic signature approach on top of the CSU
    simulator: a fixed, netlist-derived diagnostic stimulus (a sweep of
    CSU operations that progressively opens every hierarchy level while
    shifting an alternating pattern) is applied blindly; the scan-out
    streams observed from the device under diagnosis are compared against
    simulations of every candidate stuck-at fault.

    The candidates returned are exactly the faults whose behaviour is
    indistinguishable from the observation under this stimulus — the
    equivalence class that structure-oriented diagnosis (paper refs
    [17, 18]) would then refine with targeted patterns. *)

type stimulus = bool list list
(** The scan-in stream of each diagnostic CSU operation, in order. *)

type signature = bool list list
(** The scan-out stream observed for each CSU of the stimulus. *)

val signature_of_lines : string list -> signature
(** Parses the textual signature format shared by the CLI and the service
    layer: one 0/1 line per diagnostic CSU ('1' = true, anything else =
    false); surrounding whitespace and blank lines are ignored. *)

val lines_of_signature : signature -> string list
(** The inverse of {!signature_of_lines} (modulo dropped blank lines). *)

val stimulus : Ftrsn_rsn.Netlist.t -> stimulus
(** The deterministic diagnostic stimulus for a netlist: one configuration
    CSU per hierarchy level (opening every select bit reachable so far,
    while shifting a 1-0-alternating payload), then one observation CSU. *)

val apply :
  Ftrsn_rsn.Netlist.t -> ?fault:Ftrsn_fault.Fault.t -> stimulus -> signature
(** Runs the stimulus on the simulator (with the fault injected, if any)
    and returns the observed signature. *)

val diagnose :
  Ftrsn_rsn.Netlist.t -> observed:signature -> Ftrsn_fault.Fault.t list
(** All single stuck-at faults of the universe whose signature equals the
    observation.  An empty result means the observation matches no single
    stuck-at fault; a result containing benign faults alongside a
    fault-free match means the observation is consistent with a healthy
    network. *)

val healthy : Ftrsn_rsn.Netlist.t -> signature
(** The fault-free reference signature. *)

val coverage : Ftrsn_rsn.Netlist.t -> float
(** Fault coverage of the stimulus: the fraction of the single stuck-at
    universe whose signature differs from the fault-free one (undetected
    faults are either masked by hardening or benign under this stimulus). *)

val distinguishable_classes : Ftrsn_rsn.Netlist.t -> int
(** Number of distinct signatures across the whole fault universe plus the
    fault-free case — a measure of the stimulus' diagnostic resolution. *)
