module Netlist = Ftrsn_rsn.Netlist
module Config = Ftrsn_rsn.Config
module Sim = Ftrsn_rsn.Sim
module Fault = Ftrsn_fault.Fault

type stimulus = bool list list
type signature = bool list list

(* Textual signature format shared by the CLI and the service layer: one
   0/1 line per diagnostic CSU, blank lines ignored. *)
let signature_of_lines lines =
  lines
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l -> List.init (String.length l) (fun i -> l.[i] = '1'))

let lines_of_signature sg =
  List.map
    (fun bits -> String.concat "" (List.map (fun b -> if b then "1" else "0") bits))
    sg

let alternating len = List.init len (fun i -> i mod 2 = 0)

(* A stream that leaves the path registers holding [flat] AND pushes four
   probe bits all the way through to the scan-out: the probes emerge after
   [length flat] cycles, so the observed offset reveals the effective path
   length of this CSU — the main diagnostic observable, since the capture
   phase zeroes the register contents at each CSU. *)
let stream_with_probe flat =
  let l = Array.length flat in
  List.init (l + 4) (fun t -> if t < 4 then t mod 2 = 0 else flat.(l + 3 - t))

(* The stimulus is computed on the fault-free network: at each step, open
   every mux-driving shadow bit writable on the current active path (this
   splices one more hierarchy level in), shifting a pattern that leaves
   exactly those bits at 1 and an alternating payload elsewhere.  A final
   long CSU observes the fully-opened network. *)
let stimulus (net : Netlist.t) =
  let control = Retarget.control_bits net in
  let is_control s b = List.mem (s, b) control in
  let state = Sim.initial net in
  let streams = ref [] in
  let steps = Netlist.max_hier net + 1 in
  for _ = 1 to steps do
    match Sim.active_path net Sim.no_injection state.Sim.config with
    | None -> ()
    | Some path ->
        (* Desired register contents: control bits at 1, payload
           alternating. *)
        let desired =
          List.map
            (fun s ->
              let seg = net.Netlist.segs.(s) in
              Array.init seg.Netlist.seg_len (fun j ->
                  let off = seg.Netlist.seg_len - seg.Netlist.seg_shadow in
                  if j >= off && is_control s (j - off) then true
                  else j mod 2 = 0))
            path
        in
        let stream = stream_with_probe (Array.concat desired) in
        streams := stream :: !streams;
        let (_ : bool list) = Sim.csu net state ~scan_in:stream in
        ()
  done;
  (* Closing sweep: write every control bit back to 0 and observe the
     collapsed path — this distinguishes stuck-OPEN control faults, which
     the opening sweep alone cannot see. *)
  (match Sim.active_path net Sim.no_injection state.Sim.config with
  | Some path ->
      let desired =
        List.map
          (fun s ->
            let seg = net.Netlist.segs.(s) in
            Array.init seg.Netlist.seg_len (fun j ->
                let off = seg.Netlist.seg_len - seg.Netlist.seg_shadow in
                if j >= off && is_control s (j - off) then false
                else j mod 2 = 0))
          path
      in
      let stream = stream_with_probe (Array.concat desired) in
      streams := stream :: !streams;
      let (_ : bool list) = Sim.csu net state ~scan_in:stream in
      ()
  | None -> ());
  (match Sim.active_path net Sim.no_injection state.Sim.config with
  | Some path ->
      let len = Config.path_length net path in
      streams := alternating (len + 4) :: !streams
  | None -> ());
  List.rev !streams

let apply (net : Netlist.t) ?fault stim =
  let inj =
    match fault with
    | Some f -> Fault.to_injection net f
    | None -> Sim.no_injection
  in
  let state = Sim.initial net in
  List.map (fun stream -> Sim.csu net ~inj state ~scan_in:stream) stim

let healthy net = apply net (stimulus net)

let diagnose (net : Netlist.t) ~observed =
  let stim = stimulus net in
  List.filter
    (fun fault -> apply net ~fault stim = observed)
    (Fault.universe net)

let coverage (net : Netlist.t) =
  let stim = stimulus net in
  let healthy_sig = apply net stim in
  let universe = Fault.universe net in
  let detected =
    List.length
      (List.filter (fun f -> apply net ~fault:f stim <> healthy_sig) universe)
  in
  float_of_int detected /. float_of_int (List.length universe)

let distinguishable_classes (net : Netlist.t) =
  let stim = stimulus net in
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen (apply net stim) ();
  List.iter
    (fun fault -> Hashtbl.replace seen (apply net ~fault stim) ())
    (Fault.universe net);
  Hashtbl.length seen
