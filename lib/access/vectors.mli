(** Test-vector export: turn retargeting plans into SVF-flavoured vector
    programs for a scan tester.

    Each CSU of a plan becomes one [SDR] statement with the scan-in data
    ([TDI]), the expected scan-out data ([TDO], obtained by fault-free
    simulation) and an all-care [MASK]; primary control line changes
    become comment-annotated [PIO]-style statements.  The dialect is a
    documented subset of SVF (Serial Vector Format): hex strings are
    written most-significant-first, where bit 0 is the first bit shifted. *)

val of_plan :
  Ftrsn_rsn.Netlist.t ->
  Retarget.plan ->
  pattern:bool list ->
  (string, string) result
(** [of_plan net plan ~pattern] renders the write-access plan as a vector
    program.  Fails if the plan does not replay cleanly on the fault-free
    simulator. *)

val hex_of_bits : bool list -> string
(** Little helper: bits (first-shifted first) to an SVF hex literal. *)
