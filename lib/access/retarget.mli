(** Pattern retargeting: turning a segment access request into a series of
    CSU operations (paper §II-B), in fault-free and faulty RSNs.

    A plan is a sequence of configuration CSUs (each writing shadow bits of
    segments on the then-active path) followed by the access CSU whose
    active path contains the target segment.  The access latency is the
    paper's measure: the total number of clock cycles over all CSU
    operations (capture + shifts + update each). *)

type csu_step = {
  writes : (int * int * bool) list;
      (** shadow assignments performed by this CSU: (segment, bit, value) *)
  path : int list;  (** segments on the active path during this CSU *)
  step_primaries : (string * bool) list;
      (** primary control lines asserted while this CSU runs (helper
          rescue lines activate progressively during configuration) *)
}

type plan = {
  steps : csu_step list;   (** configuration CSUs, in order *)
  access_path : int list;  (** segments on the final (access) path *)
  target : int;
  cycles : int;            (** total latency in clock cycles *)
  requirements : (int * int * bool) list;
      (** shadow control bits the plan establishes; {!execute} uses these
          to repair bits disturbed by control faults *)
  primaries : (string * bool) list;
      (** primary control inputs (TAP-side rescue and port-switch lines)
          required by the final access configuration *)
  helpers : (string * bool) list;
      (** additional rescue lines asserted only during the configuration
          CSUs, to make otherwise-unreachable control bits writable; they
          are dropped for the access CSU *)
}

val plan_write :
  Engine.ctx -> ?fault:Ftrsn_fault.Fault.t -> target:int -> unit -> plan option
(** Computes a plan that makes the target segment part of an active scan
    path with a corruption-free prefix, using only configuration writes to
    segments that are writable along the way.  [None] if the target is not
    writable under the fault. *)

val execute :
  Ftrsn_rsn.Netlist.t ->
  ?fault:Ftrsn_fault.Fault.t ->
  plan ->
  pattern:bool list ->
  (Ftrsn_rsn.Sim.state, string) result
(** Runs the plan on the CSU simulator (with the fault injected if given),
    shifting [pattern] into the target segment during the final CSU.
    Returns the final simulator state; the caller can check that the
    target's shift register holds [pattern].  Errors report the first
    divergence (e.g. an invalid configuration reached). *)

val plan_read :
  Engine.ctx -> ?fault:Ftrsn_fault.Fault.t -> target:int -> unit -> plan option
(** Like {!plan_write}, for read access: the final path observes the
    target through a corruption-free suffix. *)

val execute_read :
  Ftrsn_rsn.Netlist.t ->
  ?fault:Ftrsn_fault.Fault.t ->
  plan ->
  instrument:bool list ->
  (bool list, string) result
(** Runs a read plan on the simulator: plants [instrument] as the target
    segment's data input, configures the network, performs a
    capture-shift-update on the final path and extracts the target's
    captured bits from the scan-out stream — on success they equal
    [instrument]. *)

(** Merged multi-target access (access merging in the spirit of
    Baranowski et al., ETS'13): compatible targets share configuration
    CSUs and a single access CSU. *)
type merged_plan = {
  groups : (plan * int list) list;
      (** per group: shared plan and the group's target segments *)
  merged_cycles : int;       (** total latency of the merged schedule *)
  sequential_cycles : int;   (** latency of accessing each target alone *)
}

val plan_write_merged :
  Engine.ctx -> ?fault:Ftrsn_fault.Fault.t -> targets:int list -> unit ->
  merged_plan option
(** Groups the targets greedily by steering compatibility and builds one
    shared plan per group.  [None] if some target is not writable. *)

val execute_merged :
  Ftrsn_rsn.Netlist.t ->
  ?fault:Ftrsn_fault.Fault.t ->
  plan ->
  patterns:(int * bool list) list ->
  (Ftrsn_rsn.Sim.state, string) result
(** Runs one merged group on the simulator, writing every (target,
    pattern) pair in the single access CSU. *)

val trace_execution :
  Ftrsn_rsn.Netlist.t ->
  plan ->
  pattern:bool list ->
  ((bool list * bool list) list, string) result
(** Fault-free execution trace of a plan: the (scan-in, scan-out) stream
    pair of every CSU, in order — the raw material of test-vector export
    ({!Vectors}). *)

val control_bits : Ftrsn_rsn.Netlist.t -> (int * int) list
(** All (segment, bit) shadow positions that drive some multiplexer
    address — the control state determining the scan topology. *)

val cycles_of_paths : Ftrsn_rsn.Netlist.t -> int list list -> int
(** Latency of a CSU series given the active path of each operation:
    [sum (2 + path length)] — one capture and one update cycle per CSU. *)
