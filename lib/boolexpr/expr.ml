(* Nodes are hash-consed: a table keyed by (constructor, child ids) maps to
   the unique node, so structural equality is id equality and the Tseitin
   pass can memoize on ids.  Negation is kept as an explicit node but
   collapses double negations; And/Or normalize argument order by id to
   improve sharing. *)

type t = { id : int; node : node }

and node =
  | True
  | False
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t

type key = K_true | K_false | K_var of int | K_not of int | K_and of int * int | K_or of int * int

type ctx = {
  tbl : (key, t) Hashtbl.t;
  mutable next_id : int;
  mutable nvars : int;
}

let mk ctx key node =
  match Hashtbl.find_opt ctx.tbl key with
  | Some e -> e
  | None ->
      let e = { id = ctx.next_id; node } in
      ctx.next_id <- ctx.next_id + 1;
      Hashtbl.add ctx.tbl key e;
      e

let create () = { tbl = Hashtbl.create 1024; next_id = 0; nvars = 0 }

let etrue ctx = mk ctx K_true True
let efalse ctx = mk ctx K_false False
let const ctx b = if b then etrue ctx else efalse ctx

let var ctx i =
  if i < 0 then invalid_arg "Expr.var: negative index";
  if i >= ctx.nvars then ctx.nvars <- i + 1;
  mk ctx (K_var i) (Var i)

let fresh_var ctx = var ctx ctx.nvars
let num_vars ctx = ctx.nvars
let var_index e = match e.node with Var i -> Some i | _ -> None
let equal a b = a.id = b.id
let is_true e = match e.node with True -> true | _ -> false
let is_false e = match e.node with False -> true | _ -> false

let not_ ctx e =
  match e.node with
  | True -> efalse ctx
  | False -> etrue ctx
  | Not x -> x
  | Var _ | And _ | Or _ -> mk ctx (K_not e.id) (Not e)

let and_ ctx a b =
  match (a.node, b.node) with
  | False, _ | _, False -> efalse ctx
  | True, _ -> b
  | _, True -> a
  | _ ->
      if a.id = b.id then a
      else begin
        (* x AND NOT x = false *)
        let contradictory =
          match (a.node, b.node) with
          | Not x, _ when x.id = b.id -> true
          | _, Not y when y.id = a.id -> true
          | _ -> false
        in
        if contradictory then efalse ctx
        else
          let x, y = if a.id <= b.id then (a, b) else (b, a) in
          mk ctx (K_and (x.id, y.id)) (And (x, y))
      end

let or_ ctx a b =
  match (a.node, b.node) with
  | True, _ | _, True -> etrue ctx
  | False, _ -> b
  | _, False -> a
  | _ ->
      if a.id = b.id then a
      else begin
        let tautological =
          match (a.node, b.node) with
          | Not x, _ when x.id = b.id -> true
          | _, Not y when y.id = a.id -> true
          | _ -> false
        in
        if tautological then etrue ctx
        else
          let x, y = if a.id <= b.id then (a, b) else (b, a) in
          mk ctx (K_or (x.id, y.id)) (Or (x, y))
      end

let xor_ ctx a b = or_ ctx (and_ ctx a (not_ ctx b)) (and_ ctx (not_ ctx a) b)
let iff_ ctx a b = not_ ctx (xor_ ctx a b)
let implies ctx a b = or_ ctx (not_ ctx a) b
let ite ctx c t e = or_ ctx (and_ ctx c t) (and_ ctx (not_ ctx c) e)
let and_list ctx es = List.fold_left (and_ ctx) (etrue ctx) es
let or_list ctx es = List.fold_left (or_ ctx) (efalse ctx) es

let eval env e =
  (* Memoized on node ids to stay linear in DAG size. *)
  let memo = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some v -> v
    | None ->
        let v =
          match e.node with
          | True -> true
          | False -> false
          | Var i -> env i
          | Not x -> not (go x)
          | And (x, y) -> go x && go y
          | Or (x, y) -> go x || go y
        in
        Hashtbl.add memo e.id v;
        v
  in
  go e

let size e =
  let seen = Hashtbl.create 64 in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      match e.node with
      | True | False | Var _ -> ()
      | Not x -> go x
      | And (x, y) | Or (x, y) ->
          go x;
          go y
    end
  in
  go e;
  Hashtbl.length seen

let rec pp fmt e =
  match e.node with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Var i -> Format.fprintf fmt "v%d" i
  | Not x -> Format.fprintf fmt "!%a" pp_atom x
  | And (x, y) -> Format.fprintf fmt "(%a & %a)" pp x pp y
  | Or (x, y) -> Format.fprintf fmt "(%a | %a)" pp x pp y

and pp_atom fmt e =
  match e.node with
  | True | False | Var _ | Not _ -> pp fmt e
  | And _ | Or _ -> Format.fprintf fmt "(%a)" pp e

module Cnf = struct
  type clause = int list
  type result = { clauses : clause list; num_sat_vars : int }

  (* Tseitin encoding.  Every And/Or node gets an auxiliary SAT variable;
     Not maps to literal negation; Var i maps to SAT variable i + 1.
     Polarity optimization is skipped: full bi-implications keep the
     encoding straightforwardly invertible, which the tests rely on. *)
  let of_exprs ctx es =
    let next = ref (ctx.nvars + 1) in
    let clauses = ref [] in
    let memo = Hashtbl.create 256 in
    let emit c = clauses := c :: !clauses in
    let rec lit_of e =
      match Hashtbl.find_opt memo e.id with
      | Some l -> l
      | None ->
          let l =
            match e.node with
            | True ->
                let v = !next in
                incr next;
                emit [ v ];
                v
            | False ->
                let v = !next in
                incr next;
                emit [ v ];
                -v
            | Var i -> i + 1
            | Not x -> -(lit_of x)
            | And (x, y) ->
                let a = lit_of x and b = lit_of y in
                let v = !next in
                incr next;
                emit [ -v; a ];
                emit [ -v; b ];
                emit [ v; -a; -b ];
                v
            | Or (x, y) ->
                let a = lit_of x and b = lit_of y in
                let v = !next in
                incr next;
                emit [ -v; a; b ];
                emit [ v; -a ];
                emit [ v; -b ];
                v
          in
          Hashtbl.add memo e.id l;
          l
    in
    List.iter (fun e -> emit [ lit_of e ]) es;
    { clauses = List.rev !clauses; num_sat_vars = !next - 1 }
end
