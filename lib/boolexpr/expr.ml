(* Nodes are hash-consed: a table keyed by (constructor, child ids) maps to
   the unique node, so structural equality is id equality and the Tseitin
   pass can memoize on ids.  Negation is kept as an explicit node but
   collapses double negations; And/Or normalize argument order by id to
   improve sharing. *)

type t = { id : int; node : node }

and node =
  | True
  | False
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t

type key = K_true | K_false | K_var of int | K_not of int | K_and of int * int | K_or of int * int

type ctx = {
  tbl : (key, t) Hashtbl.t;
  mutable next_id : int;
  mutable nvars : int;
}

let mk ctx key node =
  match Hashtbl.find_opt ctx.tbl key with
  | Some e -> e
  | None ->
      let e = { id = ctx.next_id; node } in
      ctx.next_id <- ctx.next_id + 1;
      Hashtbl.add ctx.tbl key e;
      e

let create () = { tbl = Hashtbl.create 1024; next_id = 0; nvars = 0 }

let etrue ctx = mk ctx K_true True
let efalse ctx = mk ctx K_false False
let const ctx b = if b then etrue ctx else efalse ctx

let var ctx i =
  if i < 0 then invalid_arg "Expr.var: negative index";
  if i >= ctx.nvars then ctx.nvars <- i + 1;
  mk ctx (K_var i) (Var i)

let fresh_var ctx = var ctx ctx.nvars
let num_vars ctx = ctx.nvars
let var_index e = match e.node with Var i -> Some i | _ -> None
let equal a b = a.id = b.id
let is_true e = match e.node with True -> true | _ -> false
let is_false e = match e.node with False -> true | _ -> false

let not_ ctx e =
  match e.node with
  | True -> efalse ctx
  | False -> etrue ctx
  | Not x -> x
  | Var _ | And _ | Or _ -> mk ctx (K_not e.id) (Not e)

let and_ ctx a b =
  match (a.node, b.node) with
  | False, _ | _, False -> efalse ctx
  | True, _ -> b
  | _, True -> a
  | _ ->
      if a.id = b.id then a
      else begin
        (* x AND NOT x = false *)
        let contradictory =
          match (a.node, b.node) with
          | Not x, _ when x.id = b.id -> true
          | _, Not y when y.id = a.id -> true
          | _ -> false
        in
        if contradictory then efalse ctx
        else
          let x, y = if a.id <= b.id then (a, b) else (b, a) in
          mk ctx (K_and (x.id, y.id)) (And (x, y))
      end

let or_ ctx a b =
  match (a.node, b.node) with
  | True, _ | _, True -> etrue ctx
  | False, _ -> b
  | _, False -> a
  | _ ->
      if a.id = b.id then a
      else begin
        let tautological =
          match (a.node, b.node) with
          | Not x, _ when x.id = b.id -> true
          | _, Not y when y.id = a.id -> true
          | _ -> false
        in
        if tautological then etrue ctx
        else
          let x, y = if a.id <= b.id then (a, b) else (b, a) in
          mk ctx (K_or (x.id, y.id)) (Or (x, y))
      end

let xor_ ctx a b = or_ ctx (and_ ctx a (not_ ctx b)) (and_ ctx (not_ ctx a) b)
let iff_ ctx a b = not_ ctx (xor_ ctx a b)
let implies ctx a b = or_ ctx (not_ ctx a) b
let ite ctx c t e = or_ ctx (and_ ctx c t) (and_ ctx (not_ ctx c) e)
let and_list ctx es = List.fold_left (and_ ctx) (etrue ctx) es
let or_list ctx es = List.fold_left (or_ ctx) (efalse ctx) es

let eval env e =
  (* Memoized on node ids to stay linear in DAG size. *)
  let memo = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some v -> v
    | None ->
        let v =
          match e.node with
          | True -> true
          | False -> false
          | Var i -> env i
          | Not x -> not (go x)
          | And (x, y) -> go x && go y
          | Or (x, y) -> go x || go y
        in
        Hashtbl.add memo e.id v;
        v
  in
  go e

let size e =
  let seen = Hashtbl.create 64 in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      match e.node with
      | True | False | Var _ -> ()
      | Not x -> go x
      | And (x, y) | Or (x, y) ->
          go x;
          go y
    end
  in
  go e;
  Hashtbl.length seen

let rec pp fmt e =
  match e.node with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Var i -> Format.fprintf fmt "v%d" i
  | Not x -> Format.fprintf fmt "!%a" pp_atom x
  | And (x, y) -> Format.fprintf fmt "(%a & %a)" pp x pp y
  | Or (x, y) -> Format.fprintf fmt "(%a | %a)" pp x pp y

and pp_atom fmt e =
  match e.node with
  | True | False | Var _ | Not _ -> pp fmt e
  | And _ | Or _ -> Format.fprintf fmt "(%a)" pp e

module Cnf = struct
  type clause = int list
  type result = { clauses : clause list; num_sat_vars : int }

  (* Tseitin encoding.  Every And/Or node gets an auxiliary SAT variable;
     Not maps to literal negation; Var i maps to SAT variable i + 1.
     Polarity optimization is skipped: full bi-implications keep the
     encoding straightforwardly invertible, which the tests rely on. *)
  let of_exprs ctx es =
    let next = ref (ctx.nvars + 1) in
    let clauses = ref [] in
    let memo = Hashtbl.create 256 in
    let emit c = clauses := c :: !clauses in
    let rec lit_of e =
      match Hashtbl.find_opt memo e.id with
      | Some l -> l
      | None ->
          let l =
            match e.node with
            | True ->
                let v = !next in
                incr next;
                emit [ v ];
                v
            | False ->
                let v = !next in
                incr next;
                emit [ v ];
                -v
            | Var i -> i + 1
            | Not x -> -(lit_of x)
            | And (x, y) ->
                let a = lit_of x and b = lit_of y in
                let v = !next in
                incr next;
                emit [ -v; a ];
                emit [ -v; b ];
                emit [ v; -a; -b ];
                v
            | Or (x, y) ->
                let a = lit_of x and b = lit_of y in
                let v = !next in
                incr next;
                emit [ -v; a; b ];
                emit [ v; -a ];
                emit [ v; -b ];
                v
          in
          Hashtbl.add memo e.id l;
          l
    in
    List.iter (fun e -> emit [ lit_of e ]) es;
    { clauses = List.rev !clauses; num_sat_vars = !next - 1 }

  (* ---- streaming emission into an existing solver ---- *)

  type sink = {
    fresh_var : unit -> int;
    add_clause : int option -> clause -> unit;
        (* [add_clause under c]: [under] is an opaque clause-group tag
           (e.g. a solver activation literal) the sink may use to register
           [c] for group retirement; [None] means ungrouped. *)
  }

  type emitter = {
    sink : sink;
    node_lit : (int, int) Hashtbl.t;   (* expr id -> DIMACS literal *)
    node_owner : (int, int) Hashtbl.t;
        (* expr id -> group tag its definition clauses were emitted
           under; absent = permanent (ungrouped) definitions *)
    retired : (int, unit) Hashtbl.t;   (* group tags retired by the user *)
    asserted : (int, unit) Hashtbl.t;  (* expr ids already unit-asserted *)
    mutable n_clauses : int;
    mutable n_reused : int;
  }

  (* Unlike [of_exprs], the emitter allocates a SAT variable for EVERY
     node, expression variables included, from the sink's allocator: the
     context keeps growing fresh expression variables between emissions
     (one unrolling step at a time), so the fixed "expr var i = SAT var
     i + 1" layout would collide with earlier auxiliaries.  Model lookup
     therefore goes through {!find_lit}. *)
  let make_emitter sink =
    {
      sink;
      node_lit = Hashtbl.create 1024;
      node_owner = Hashtbl.create 256;
      retired = Hashtbl.create 64;
      asserted = Hashtbl.create 64;
      n_clauses = 0;
      n_reused = 0;
    }

  (* Tseitin definitions are always emitted ungrouped ([under] absent):
     the memo shares them across clause groups, so they must outlive any
     individual group. *)
  let emit_clause ?under em c =
    em.n_clauses <- em.n_clauses + 1;
    em.sink.add_clause under c

  (* A node is reusable as-is when its definition clauses are permanent,
     or owned by the (live) group the caller is emitting under.  In every
     other case — owner retired, different group, or a permanent caller
     over group-owned definitions — the definitions are re-emitted for
     the same solver variable, so the memoized literal stays stable. *)
  let owner_ok em id under =
    match Hashtbl.find_opt em.node_owner id with
    | None -> true
    | Some g -> (
        (not (Hashtbl.mem em.retired g))
        && match under with Some g' -> g' = g | None -> false)

  let set_owner em id under =
    match under with
    | Some g -> Hashtbl.replace em.node_owner id g
    | None -> Hashtbl.remove em.node_owner id

  let rec lit ?under em e =
    match Hashtbl.find_opt em.node_lit e.id with
    | Some l when owner_ok em e.id under ->
        em.n_reused <- em.n_reused + 1;
        l
    | known ->
        (* [known = Some l]: the node's solver variable exists but its
           definition clauses must be (re-)emitted under [under]. *)
        let var_of () =
          match known with Some l -> abs l | None -> em.sink.fresh_var ()
        in
        let l =
          match e.node with
          | True ->
              let v = var_of () in
              emit_clause ?under em [ v ];
              v
          | False ->
              let v = var_of () in
              emit_clause ?under em [ v ];
              -v
          | Var _ -> em.sink.fresh_var ()
          | Not x ->
              let lx = lit ?under em x in
              (match known with Some l -> l | None -> -lx)
          | And (x, y) ->
              let a = lit ?under em x and b = lit ?under em y in
              let v = var_of () in
              emit_clause ?under em [ -v; a ];
              emit_clause ?under em [ -v; b ];
              emit_clause ?under em [ v; -a; -b ];
              v
          | Or (x, y) ->
              let a = lit ?under em x and b = lit ?under em y in
              let v = var_of () in
              emit_clause ?under em [ -v; a; b ];
              emit_clause ?under em [ v; -a ];
              emit_clause ?under em [ v; -b ];
              v
        in
        (match e.node with Var _ -> () | _ -> set_owner em e.id under);
        if known = None then Hashtbl.add em.node_lit e.id l;
        l

  let retire_owner em g = Hashtbl.replace em.retired g ()

  let find_lit em e = Hashtbl.find_opt em.node_lit e.id

  let emit em es =
    List.iter
      (fun e ->
        let l = lit em e in
        if not (Hashtbl.mem em.asserted e.id) then begin
          Hashtbl.add em.asserted e.id ();
          emit_clause em [ l ]
        end)
      es

  let emitter_stats em = (em.n_clauses, em.n_reused)
end
