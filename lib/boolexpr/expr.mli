(** Hash-consed boolean expressions with constant folding, plus the Tseitin
    transformation to CNF used by the BMC engine.

    All expressions live in a {!ctx}; combining expressions from different
    contexts is a programming error (unchecked, but ids will collide). *)

type t
(** An immutable boolean expression. *)

type ctx
(** An expression context: hash-consing table and variable allocator. *)

val create : unit -> ctx

val etrue : ctx -> t
val efalse : ctx -> t
val const : ctx -> bool -> t

val fresh_var : ctx -> t
(** A fresh boolean variable. *)

val var : ctx -> int -> t
(** [var ctx i] is variable number [i]; allocates up to [i] if needed. *)

val var_index : t -> int option
(** [Some i] if the expression is exactly variable [i]. *)

val num_vars : ctx -> int

val not_ : ctx -> t -> t
val and_ : ctx -> t -> t -> t
val or_ : ctx -> t -> t -> t
val xor_ : ctx -> t -> t -> t
val iff_ : ctx -> t -> t -> t
val implies : ctx -> t -> t -> t
val ite : ctx -> t -> t -> t -> t
val and_list : ctx -> t list -> t
val or_list : ctx -> t list -> t

val equal : t -> t -> bool
(** Structural equality (constant time thanks to hash-consing). *)

val is_true : t -> bool
val is_false : t -> bool

val eval : (int -> bool) -> t -> bool
(** [eval env e] evaluates [e] under the variable assignment [env]. *)

val size : t -> int
(** Number of distinct subexpressions. *)

val pp : Format.formatter -> t -> unit

(** Conjunctive normal form in DIMACS literal convention: variable [i]
    (0-based expression variable) appears as literal [i + 1], negated as
    [-(i + 1)].  Auxiliary Tseitin variables are numbered after the
    expression variables. *)
module Cnf : sig
  type clause = int list

  type result = {
    clauses : clause list;  (** the CNF, one clause per element *)
    num_sat_vars : int;     (** total SAT variables incl. auxiliaries *)
  }

  val of_exprs : ctx -> t list -> result
  (** [of_exprs ctx es] is an equisatisfiable CNF asserting every
      expression in [es].  Expression variable [i] is SAT variable
      [i + 1] in every call, so models translate back directly. *)
end
