(** Hash-consed boolean expressions with constant folding, plus the Tseitin
    transformation to CNF used by the BMC engine.

    All expressions live in a {!ctx}; combining expressions from different
    contexts is a programming error (unchecked, but ids will collide). *)

type t
(** An immutable boolean expression. *)

type ctx
(** An expression context: hash-consing table and variable allocator. *)

val create : unit -> ctx

val etrue : ctx -> t
val efalse : ctx -> t
val const : ctx -> bool -> t

val fresh_var : ctx -> t
(** A fresh boolean variable. *)

val var : ctx -> int -> t
(** [var ctx i] is variable number [i]; allocates up to [i] if needed. *)

val var_index : t -> int option
(** [Some i] if the expression is exactly variable [i]. *)

val num_vars : ctx -> int

val not_ : ctx -> t -> t
val and_ : ctx -> t -> t -> t
val or_ : ctx -> t -> t -> t
val xor_ : ctx -> t -> t -> t
val iff_ : ctx -> t -> t -> t
val implies : ctx -> t -> t -> t
val ite : ctx -> t -> t -> t -> t
val and_list : ctx -> t list -> t
val or_list : ctx -> t list -> t

val equal : t -> t -> bool
(** Structural equality (constant time thanks to hash-consing). *)

val is_true : t -> bool
val is_false : t -> bool

val eval : (int -> bool) -> t -> bool
(** [eval env e] evaluates [e] under the variable assignment [env]. *)

val size : t -> int
(** Number of distinct subexpressions. *)

val pp : Format.formatter -> t -> unit

(** Conjunctive normal form in DIMACS literal convention: variable [i]
    (0-based expression variable) appears as literal [i + 1], negated as
    [-(i + 1)].  Auxiliary Tseitin variables are numbered after the
    expression variables. *)
module Cnf : sig
  type clause = int list

  type result = {
    clauses : clause list;  (** the CNF, one clause per element *)
    num_sat_vars : int;     (** total SAT variables incl. auxiliaries *)
  }

  val of_exprs : ctx -> t list -> result
  (** [of_exprs ctx es] is an equisatisfiable CNF asserting every
      expression in [es].  Expression variable [i] is SAT variable
      [i + 1] in every call, so models translate back directly. *)

  (** {2 Streaming emission}

      A {!emitter} Tseitin-encodes expressions incrementally into an
      existing solver: each DAG node is encoded at most once over the
      emitter's whole lifetime, so consecutive queries that share
      structure (one BMC unrolling step at a time, many faults over one
      network) re-emit only their genuinely new cones.  Because the
      expression context keeps allocating fresh variables between
      emissions, the emitter maps {e every} node — expression variables
      included — through the sink's allocator; translate models back with
      {!find_lit} rather than the [i + 1] rule of {!of_exprs}. *)

  type sink = {
    fresh_var : unit -> int;   (** allocate the next solver variable *)
    add_clause : int option -> clause -> unit;
        (** [add_clause under c]: [under] is an opaque clause-group tag
            (e.g. a solver activation literal) that the sink may use to
            register [c] for group retirement; [None] means ungrouped.
            Tseitin definitions always arrive ungrouped — the memo shares
            them across groups. *)
  }

  type emitter

  val make_emitter : sink -> emitter

  val lit : ?under:int -> emitter -> t -> int
  (** The DIMACS literal equisatisfiably representing the expression,
      encoding any not-yet-emitted nodes into the sink (memoized).
      [?under] tags the definition clauses with a clause group: they are
      forwarded to the sink with that tag, and after {!retire_owner} on
      the tag the affected nodes are transparently re-encoded (for the
      same solver variable) the next time they are requested.  Nodes
      requested without [?under] get permanent definitions. *)

  val emit : emitter -> t list -> unit
  (** Asserts every expression (a unit clause on its {!lit}); asserting
      the same node twice emits nothing the second time. *)

  val emit_clause : ?under:int -> emitter -> clause -> unit
  (** Forwards a raw clause to the sink, counted in {!emitter_stats} —
      for gating clauses built from {!lit} results.  [?under] is passed
      through as the sink's clause-group tag. *)

  val retire_owner : emitter -> int -> unit
  (** Marks a clause group tag as retired: nodes whose definitions were
      emitted under it will be re-encoded on their next use.  Call this
      when the corresponding solver-side clause group is retired. *)

  val find_lit : emitter -> t -> int option
  (** The literal of an already-encoded node ([None] if the node never
      reached the solver); does not emit. *)

  val emitter_stats : emitter -> int * int
  (** [(clauses_emitted, nodes_reused)]: total clauses forwarded to the
      sink, and memo hits where an already-encoded node was requested
      again — the clause-reuse counters of the session layer. *)
end
