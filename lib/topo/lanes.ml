(* Lane vectors: one machine word per index, one lane (bit) per parallel
   analysis.  The structural engine batches up to [width] fault classes
   and sweeps them through a single fixpoint traversal; each dataflow
   vertex then carries a word whose bit L answers the query for lane L.
   Word-level AND/OR/ANDN replace per-class boolean evaluation. *)

let width = Sys.int_size

type t = { n : int; w : int array }

let create n =
  if n < 0 then invalid_arg "Lanes.create: negative capacity";
  { n; w = Array.make n 0 }

let length v = v.n

let check v i =
  if i < 0 || i >= v.n then invalid_arg "Lanes: index out of range"

let get v i =
  check v i;
  v.w.(i)

let set v i x =
  check v i;
  v.w.(i) <- x

let or_in v i x =
  check v i;
  let old = v.w.(i) in
  let nw = old lor x in
  v.w.(i) <- nw;
  nw lxor old

let same_capacity a b op =
  if a.n <> b.n then invalid_arg ("Lanes." ^ op ^ ": capacity mismatch")

let and_into dst src =
  same_capacity dst src "and_into";
  for i = 0 to dst.n - 1 do
    dst.w.(i) <- dst.w.(i) land src.w.(i)
  done

let or_into dst src =
  same_capacity dst src "or_into";
  for i = 0 to dst.n - 1 do
    dst.w.(i) <- dst.w.(i) lor src.w.(i)
  done

let andn_into dst src =
  same_capacity dst src "andn_into";
  for i = 0 to dst.n - 1 do
    dst.w.(i) <- dst.w.(i) land lnot src.w.(i)
  done

let fill v x = Array.fill v.w 0 v.n x
let clear v = fill v 0
let copy v = { n = v.n; w = Array.copy v.w }

let equal a b = a.n = b.n && Array.for_all2 ( = ) a.w b.w

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal v = Array.fold_left (fun acc x -> acc + popcount x) 0 v.w

(* All-ones over the low [k] lanes.  [k >= width] must yield the full
   word WITHOUT shifting by the word size (unspecified in OCaml). *)
let lane_mask k =
  if k < 0 then invalid_arg "Lanes.lane_mask: negative count"
  else if k >= width then -1
  else (1 lsl k) - 1

(* Ascending set-lane indices of one word.  The word is an OCaml int, so
   the sign bit is lane [width - 1]; strip each visited bit with x&(x-1)
   to stay total on negative words. *)
let iter_lanes f x =
  let x = ref x in
  while !x <> 0 do
    let low = !x land - !x in
    let rec lane_of b acc = if b = 1 then acc else lane_of (b lsr 1) (acc + 1) in
    (* [low] may be min_int (sign bit): [lane_of] walks it down safely
       with a logical shift. *)
    f (lane_of low 0);
    x := !x land (!x - 1)
  done
