(** Topological ordering and topological levels of directed acyclic graphs. *)

val sort : Digraph.t -> int array option
(** [sort g] is [Some order] with vertices in a topological order (Kahn's
    algorithm), or [None] if [g] contains a cycle. *)

val is_acyclic : Digraph.t -> bool

val levels : Digraph.t -> int array
(** [levels g] assigns each vertex its topological level: sources are at
    level 0 and [level v = 1 + max (level u) over edges u -> v] — the
    longest-path depth used by the synthesis cost function.
    @raise Invalid_argument if [g] is cyclic. *)

val levels_from : Digraph.t -> root:int -> int array
(** Like {!levels} but measured from a designated [root]; vertices not
    reachable from [root] keep level 0 relative to their own sources. *)

val reachable : Digraph.t -> from:int -> Bitset.t
(** Vertices reachable from [from] (including [from] itself). *)

val co_reachable : Digraph.t -> to_:int -> Bitset.t
(** Vertices from which [to_] is reachable (including [to_] itself). *)
