let escape s =
  String.concat ""
    (List.map
       (fun c -> if c = '"' then "\\\"" else String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(name = "g") ?(vertex_label = string_of_int)
    ?(highlight_edges = []) g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box];\n";
  for v = 0 to Digraph.vertex_count g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"];\n" v (escape (vertex_label v)))
  done;
  Digraph.iter_edges
    (fun u v ->
      let attrs =
        if List.mem (u, v) highlight_edges then
          " [style=dashed, color=\"#2b6cb0\"]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" u v attrs))
    g;
  List.iter
    (fun (u, v) ->
      if not (Digraph.has_edge g u v) then
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=dashed, color=\"#2b6cb0\"];\n"
             u v))
    highlight_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
