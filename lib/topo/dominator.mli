(** Dominator trees of rooted directed graphs (iterative
    Cooper–Harvey–Kennedy algorithm).

    Vertex [d] dominates [v] iff every path from the root to [v] passes
    through [d].  In an RSN dataflow graph the proper dominators of a
    segment are exactly the scan elements whose failure cuts it off from
    the scan-in — the single points of failure of §III-C (the test suite
    cross-checks this against the Menger-based computation). *)

val idoms : Digraph.t -> root:int -> int array
(** [idoms g ~root] is the immediate-dominator array: [idoms.(v)] is the
    immediate dominator of [v], [root] for the root itself, and [-1] for
    vertices unreachable from [root]. *)

val dominators : Digraph.t -> root:int -> int -> int list
(** [dominators g ~root v] lists all proper dominators of [v] (excluding
    [v] itself, including the root), innermost first.  Empty for the root
    or unreachable vertices. *)

val dominates : int array -> int -> int -> bool
(** [dominates idoms d v] using a precomputed {!idoms} array ([d = v]
    counts as true for reachable [v]). *)
