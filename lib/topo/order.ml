let sort g =
  let n = Digraph.vertex_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let q = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v q) indeg;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order.(!k) <- v;
    incr k;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w q)
      (Digraph.succ g v)
  done;
  if !k = n then Some order else None

let is_acyclic g = sort g <> None

let levels g =
  match sort g with
  | None -> invalid_arg "Order.levels: graph is cyclic"
  | Some order ->
      let n = Digraph.vertex_count g in
      let lv = Array.make n 0 in
      Array.iter
        (fun v ->
          List.iter
            (fun w -> if lv.(v) + 1 > lv.(w) then lv.(w) <- lv.(v) + 1)
            (Digraph.succ g v))
        order;
      lv

let levels_from g ~root =
  match sort g with
  | None -> invalid_arg "Order.levels_from: graph is cyclic"
  | Some order ->
      let n = Digraph.vertex_count g in
      let lv = Array.make n 0 in
      let seen = Bitset.create n in
      Bitset.add seen root;
      Array.iter
        (fun v ->
          if Bitset.mem seen v then
            List.iter
              (fun w ->
                Bitset.add seen w;
                if lv.(v) + 1 > lv.(w) then lv.(w) <- lv.(v) + 1)
              (Digraph.succ g v))
        order;
      lv

let bfs_collect next start n =
  let seen = Bitset.create n in
  let q = Queue.create () in
  Bitset.add seen start;
  Queue.add start q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun w ->
        if not (Bitset.mem seen w) then begin
          Bitset.add seen w;
          Queue.add w q
        end)
      (next v)
  done;
  seen

let reachable g ~from =
  bfs_collect (Digraph.succ g) from (Digraph.vertex_count g)

let co_reachable g ~to_ =
  bfs_collect (Digraph.pred g) to_ (Digraph.vertex_count g)
