(* Iterative DFS with tri-colour marking.  Back edges (to a grey vertex)
   are the removed set: dropping all of them leaves a DAG. *)

type colour = White | Grey | Black

let dfs_back_edges g =
  let n = Digraph.vertex_count g in
  let colour = Array.make n White in
  let back = ref [] in
  let call = Stack.create () in
  for root = 0 to n - 1 do
    if colour.(root) = White then begin
      colour.(root) <- Grey;
      Stack.push (root, Digraph.succ g root) call;
      while not (Stack.is_empty call) do
        let v, rest = Stack.pop call in
        match rest with
        | w :: rest' ->
            Stack.push (v, rest') call;
            (match colour.(w) with
            | White ->
                colour.(w) <- Grey;
                Stack.push (w, Digraph.succ g w) call
            | Grey -> back := (v, w) :: !back
            | Black -> ())
        | [] -> colour.(v) <- Black
      done
    end
  done;
  !back

let break_cycles g =
  let back = dfs_back_edges g in
  if back = [] then (Digraph.copy g, [])
  else begin
    let dag = Digraph.copy g in
    List.iter (fun (u, v) -> Digraph.remove_edge dag u v) back;
    (* A single DFS pass removes all back edges w.r.t. that DFS forest,
       which is sufficient: the remaining graph admits a DFS with no back
       edge, hence is acyclic. *)
    (dag, back)
  end

let find_cycle g =
  let comps = Scc.components g in
  let non_trivial =
    Array.to_list comps
    |> List.find_opt (fun c ->
           match c with
           | [ v ] -> Digraph.has_edge g v v
           | _ :: _ :: _ -> true
           | _ -> false)
  in
  match non_trivial with
  | None -> None
  | Some [ v ] -> Some [ v ]
  | Some (start :: _ as members) ->
      (* Walk inside the component until the start vertex is revisited. *)
      let in_comp = Bitset.of_list (Digraph.vertex_count g) members in
      let rec walk v acc visited =
        let next =
          List.find
            (fun w -> Bitset.mem in_comp w)
            (Digraph.succ g v)
        in
        if next = start then List.rev (v :: acc)
        else if List.mem next visited then
          (* Closed a cycle not through [start]: cut the prefix. *)
          let rec cut = function
            | w :: tl when w <> next -> cut tl
            | l -> l
          in
          cut (List.rev (v :: acc))
        else walk next (v :: acc) (next :: visited)
      in
      Some (walk start [] [ start ])
  | Some [] -> None
