(** Cycle breaking.  IEEE Std 1687 allows structural cycles in an RSN only
    if no active scan path can sensitize them, so the dataflow view can
    always be reduced to a DAG by dropping back edges (§III-B of the
    paper). *)

val break_cycles : Digraph.t -> Digraph.t * (int * int) list
(** [break_cycles g] is [(dag, removed)] where [dag] is [g] without the DFS
    back edges that close cycles and [removed] lists the dropped edges.
    If [g] is already acyclic, [removed] is empty and [dag] equals [g]. *)

val find_cycle : Digraph.t -> int list option
(** [find_cycle g] is [Some vs] with [vs] the vertices of some directed
    cycle (in order, first vertex repeated implicitly), or [None] if [g] is
    acyclic. *)
