(** Graphviz DOT export of directed graphs, for inspecting dataflow graphs
    and augmentation results. *)

val to_dot :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?highlight_edges:(int * int) list ->
  Digraph.t ->
  string
(** [to_dot g] renders [g] as a DOT digraph.  [vertex_label] defaults to
    the vertex number; edges in [highlight_edges] (e.g. the augmenting
    edge set) are drawn dashed and colored. *)
