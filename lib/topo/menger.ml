(* Vertex splitting: every vertex v becomes v_in = 2v and v_out = 2v + 1
   joined by a unit arc; an edge (u, v) becomes u_out -> v_in with "infinite"
   capacity.  The terminals' internal arcs get infinite capacity so that
   only interior vertices constrain the flow, matching the definition of
   vertex-independent paths. *)

let big = 1 lsl 28

let build_split g ~src ~dst =
  let n = Digraph.vertex_count g in
  let f = Ftrsn_flow.Maxflow.create ~n:(2 * n) in
  for v = 0 to n - 1 do
    let cap = if v = src || v = dst then big else 1 in
    ignore (Ftrsn_flow.Maxflow.add_edge f ~src:(2 * v) ~dst:((2 * v) + 1) ~cap)
  done;
  Digraph.iter_edges
    (fun u v ->
      ignore (Ftrsn_flow.Maxflow.add_edge f ~src:((2 * u) + 1) ~dst:(2 * v) ~cap:1))
    g;
  f

let vertex_disjoint_paths g ~src ~dst =
  if src = dst then invalid_arg "Menger.vertex_disjoint_paths: src = dst";
  let f = build_split g ~src ~dst in
  Ftrsn_flow.Maxflow.max_flow f ~s:((2 * src) + 1) ~t:(2 * dst)

let two_connected_through g ~root ~sink v =
  let from_root = v = root || vertex_disjoint_paths g ~src:root ~dst:v >= 2 in
  let to_sink = v = sink || vertex_disjoint_paths g ~src:v ~dst:sink >= 2 in
  from_root && to_sink

let cut_vertices g ~src ~dst =
  (* Interior vertices lying on every src-dst path: v is one iff removing v
     disconnects dst from src.  The number of candidate vertices in RSN
     dataflow graphs is small enough for the direct removal test, and the
     result is exact. *)
  let n = Digraph.vertex_count g in
  let on_path =
    let fwd = Order.reachable g ~from:src
    and bwd = Order.co_reachable g ~to_:dst in
    let s = Bitset.copy fwd in
    Bitset.inter_into s bwd;
    s
  in
  if not (Bitset.mem on_path dst) then []
  else begin
    let result = ref [] in
    Bitset.iter
      (fun v ->
        if v <> src && v <> dst then begin
          (* BFS from src avoiding v. *)
          let seen = Bitset.create n in
          let q = Queue.create () in
          Bitset.add seen src;
          Queue.add src q;
          while not (Queue.is_empty q) do
            let u = Queue.pop q in
            List.iter
              (fun w ->
                if w <> v && not (Bitset.mem seen w) then begin
                  Bitset.add seen w;
                  Queue.add w q
                end)
              (Digraph.succ g u)
          done;
          if not (Bitset.mem seen dst) then result := v :: !result
        end)
      on_path;
    List.rev !result
  end

let single_points_of_failure g ~root ~sink v =
  let upstream = if v = root then [] else cut_vertices g ~src:root ~dst:v in
  let downstream = if v = sink then [] else cut_vertices g ~src:v ~dst:sink in
  List.sort_uniq compare (upstream @ downstream)
