(* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm".
   Iterates intersection over a reverse-postorder numbering until fixed. *)

let reverse_postorder g root =
  let n = Digraph.vertex_count g in
  let visited = Array.make n false in
  let order = ref [] in
  (* Iterative DFS with an explicit stack of (vertex, remaining succs). *)
  let stack = Stack.create () in
  visited.(root) <- true;
  Stack.push (root, Digraph.succ g root) stack;
  while not (Stack.is_empty stack) do
    let v, rest = Stack.pop stack in
    match rest with
    | w :: rest' ->
        Stack.push (v, rest') stack;
        if not visited.(w) then begin
          visited.(w) <- true;
          Stack.push (w, Digraph.succ g w) stack
        end
    | [] -> order := v :: !order
  done;
  Array.of_list !order

let idoms g ~root =
  let n = Digraph.vertex_count g in
  if root < 0 || root >= n then invalid_arg "Dominator.idoms: bad root";
  let rpo = reverse_postorder g root in
  let number = Array.make n (-1) in
  Array.iteri (fun i v -> number.(v) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if number.(a) > number.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> root then begin
          let preds =
            List.filter (fun p -> number.(p) >= 0) (Digraph.pred g v)
          in
          let processed = List.filter (fun p -> idom.(p) >= 0) preds in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(v) <> new_idom then begin
                idom.(v) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  idom

let dominators g ~root v =
  let idom = idoms g ~root in
  if v = root || idom.(v) < 0 then []
  else begin
    (* innermost first: idom(v), idom(idom(v)), ..., root *)
    let rec walk d acc =
      if d = root then List.rev (root :: acc) else walk idom.(d) (d :: acc)
    in
    walk idom.(v) []
  end

let dominates idom d v =
  if idom.(v) < 0 then false
  else begin
    let rec walk x = x = d || (x <> idom.(x) && walk idom.(x)) in
    walk v
  end
