(** Fixed-capacity bit sets over [0 .. n-1], packed into an int array. *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n]. *)

val capacity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val cardinal : t -> int
(** Number of members (linear in capacity). *)

val is_empty : t -> bool
val clear : t -> unit
val fill : t -> unit
(** [fill s] adds every element of [0 .. capacity-1]. *)

val copy : t -> t
val equal : t -> t -> bool

val disjoint : t -> t -> bool
(** [disjoint a b] is [true] iff [a ∩ b] is empty (one word-scan, no
    allocation). @raise Invalid_argument on capacity mismatch. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] replaces [dst] with [dst ∩ src].
    @raise Invalid_argument on capacity mismatch. *)

val union_into : t -> t -> unit
(** [union_into dst src] replaces [dst] with [dst ∪ src]. *)

val andn_into : t -> t -> unit
(** [andn_into dst src] replaces [dst] with [dst \ src].
    @raise Invalid_argument on capacity mismatch. *)

val iter : (int -> unit) -> t -> unit
(** [iter f s] applies [f] to every member in increasing order. *)

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is the set with capacity [n] containing [xs]. *)
