(** Strongly connected components (Tarjan's algorithm, iterative). *)

val compute : Digraph.t -> int array * int
(** [compute g] is [(comp, k)] where [comp.(v)] is the component index of
    vertex [v] and [k] the number of components.  Component indices are in
    reverse topological order of the condensation (a component only has
    edges into components with smaller indices). *)

val components : Digraph.t -> int list array
(** The members of each component, indexed as in {!compute}. *)
