(* Adjacency is kept as per-vertex lists in reverse insertion order plus a
   hash table keyed by packed (u, v) pairs for O(1) duplicate detection. *)

type t = {
  mutable n : int;
  mutable out_adj : int list array;
  mutable in_adj : int list array;
  mutable m : int;
  edge_set : (int, unit) Hashtbl.t;
}

let create ?(size_hint = 16) () =
  {
    n = 0;
    out_adj = Array.make (max 1 size_hint) [];
    in_adj = Array.make (max 1 size_hint) [];
    m = 0;
    edge_set = Hashtbl.create (4 * size_hint);
  }

let grow g =
  let len = Array.length g.out_adj in
  if g.n >= len then begin
    let grow_array a = Array.append a (Array.make len []) in
    g.out_adj <- grow_array g.out_adj;
    g.in_adj <- grow_array g.in_adj
  end

let add_vertex g =
  grow g;
  let v = g.n in
  g.n <- g.n + 1;
  v

let add_vertices g k =
  for _ = 1 to k do
    ignore (add_vertex g)
  done

let vertex_count g = g.n
let edge_count g = g.m

let check g v label =
  if v < 0 || v >= g.n then invalid_arg ("Digraph." ^ label ^ ": bad vertex")

(* Edges are packed into a single int key; vertex counts stay far below
   2^31 in this code base. *)
let key u v = (u lsl 31) lor v

let has_edge g u v =
  check g u "has_edge";
  check g v "has_edge";
  Hashtbl.mem g.edge_set (key u v)

let add_edge g u v =
  check g u "add_edge";
  check g v "add_edge";
  if not (Hashtbl.mem g.edge_set (key u v)) then begin
    Hashtbl.add g.edge_set (key u v) ();
    g.out_adj.(u) <- v :: g.out_adj.(u);
    g.in_adj.(v) <- u :: g.in_adj.(v);
    g.m <- g.m + 1
  end

let remove_edge g u v =
  check g u "remove_edge";
  check g v "remove_edge";
  if Hashtbl.mem g.edge_set (key u v) then begin
    Hashtbl.remove g.edge_set (key u v);
    g.out_adj.(u) <- List.filter (fun w -> w <> v) g.out_adj.(u);
    g.in_adj.(v) <- List.filter (fun w -> w <> u) g.in_adj.(v);
    g.m <- g.m - 1
  end

let succ g v =
  check g v "succ";
  List.rev g.out_adj.(v)

let pred g v =
  check g v "pred";
  List.rev g.in_adj.(v)

let out_degree g v =
  check g v "out_degree";
  List.length g.out_adj.(v)

let in_degree g v =
  check g v "in_degree";
  List.length g.in_adj.(v)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) (List.rev g.out_adj.(u))
  done

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) g.out_adj.(u)
  done;
  !acc

let of_edges ~n es =
  let g = create ~size_hint:n () in
  add_vertices g n;
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g = of_edges ~n:g.n (edges g)

let transpose g =
  let t = create ~size_hint:g.n () in
  add_vertices t g.n;
  iter_edges (fun u v -> add_edge t v u) g;
  t

let sources g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if g.in_adj.(v) = [] then acc := v :: !acc
  done;
  !acc

let sinks g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if g.out_adj.(v) = [] then acc := v :: !acc
  done;
  !acc

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph (%d vertices, %d edges)" g.n g.m;
  iter_edges (fun u v -> Format.fprintf fmt "@,  %d -> %d" u v) g;
  Format.fprintf fmt "@]"
