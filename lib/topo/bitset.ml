type t = { n : int; words : int array }

let bits_per_word = Sys.int_size

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0 }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of range"

let mem s i =
  check s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  check s i;
  s.words.(i / bits_per_word) <-
    s.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let remove s i =
  check s i;
  s.words.(i / bits_per_word) <-
    s.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words
let is_empty s = Array.for_all (fun w -> w = 0) s.words
let clear s = Array.fill s.words 0 (Array.length s.words) 0

let fill s =
  for i = 0 to s.n - 1 do
    s.words.(i / bits_per_word) <-
      s.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))
  done

let copy s = { n = s.n; words = Array.copy s.words }

let equal a b =
  a.n = b.n && Array.for_all2 (fun x y -> x = y) a.words b.words

let same_capacity a b op =
  if a.n <> b.n then invalid_arg ("Bitset." ^ op ^ ": capacity mismatch")

let disjoint a b =
  same_capacity a b "disjoint";
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let inter_into dst src =
  same_capacity dst src "inter_into";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let union_into dst src =
  same_capacity dst src "union_into";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let andn_into dst src =
  same_capacity dst src "andn_into";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

let iter f s =
  for i = 0 to s.n - 1 do
    if s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0
    then f i
  done

let elements s =
  let acc = ref [] in
  for i = s.n - 1 downto 0 do
    if mem s i then acc := i :: !acc
  done;
  !acc

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s
