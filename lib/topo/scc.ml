(* Iterative Tarjan: an explicit stack of (vertex, remaining successors)
   frames avoids stack overflow on long chains (p93791-sized RSNs produce
   thousands of vertices). *)

let compute g =
  let n = Digraph.vertex_count g in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let comp = Array.make n (-1) in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let call = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      Stack.push (root, Digraph.succ g root) call;
      index.(root) <- !next_index;
      low.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while not (Stack.is_empty call) do
        let v, rest = Stack.pop call in
        match rest with
        | w :: rest' ->
            Stack.push (v, rest') call;
            if index.(w) < 0 then begin
              index.(w) <- !next_index;
              low.(w) <- !next_index;
              incr next_index;
              stack := w :: !stack;
              on_stack.(w) <- true;
              Stack.push (w, Digraph.succ g w) call
            end
            else if on_stack.(w) && index.(w) < low.(v) then
              low.(v) <- index.(w)
        | [] ->
            if low.(v) = index.(v) then begin
              let continue = ref true in
              while !continue do
                match !stack with
                | w :: tl ->
                    stack := tl;
                    on_stack.(w) <- false;
                    comp.(w) <- !next_comp;
                    if w = v then continue := false
                | [] -> assert false
              done;
              incr next_comp
            end;
            (match Stack.top_opt call with
            | Some (p, _) -> if low.(v) < low.(p) then low.(p) <- low.(v)
            | None -> ())
      done
    end
  done;
  (comp, !next_comp)

let components g =
  let comp, k = compute g in
  let out = Array.make k [] in
  for v = Digraph.vertex_count g - 1 downto 0 do
    out.(comp.(v)) <- v :: out.(comp.(v))
  done;
  out
