(** Lane vectors: one machine word per index, one lane (bit) per
    parallel analysis.

    The structural accessibility engine batches up to {!width} fault
    classes and answers all of them in one fixpoint sweep: every
    dataflow vertex carries a word whose bit L is the predicate value
    for lane L, and word-level AND/OR/ANDN replace per-class boolean
    evaluation.  [width] is [Sys.int_size] (63 on 64-bit OCaml — the
    native int drops one tag bit), so "64-wide" batches are
    [Sys.int_size]-wide. *)

val width : int
(** Lanes per word ([Sys.int_size]). *)

type t
(** A mutable vector of [length] words. *)

val create : int -> t
(** [create n] is the all-zero vector of [n] words. *)

val length : t -> int

val get : t -> int -> int
val set : t -> int -> int -> unit

val or_in : t -> int -> int -> int
(** [or_in v i x] ORs [x] into word [i] and returns the NEWLY set bits
    ([x] minus what was already there) — the monotone-growth test the
    fixpoint worklist keys on. *)

val and_into : t -> t -> unit
(** [and_into dst src] replaces each [dst] word with [dst land src].
    @raise Invalid_argument on capacity mismatch. *)

val or_into : t -> t -> unit
(** [or_into dst src] replaces each [dst] word with [dst lor src]. *)

val andn_into : t -> t -> unit
(** [andn_into dst src] replaces each [dst] word with
    [dst land (lnot src)] — clears in [dst] every lane set in [src]. *)

val fill : t -> int -> unit
(** [fill v x] sets every word to [x]. *)

val clear : t -> unit
val copy : t -> t
val equal : t -> t -> bool

val popcount : int -> int
(** Set bits of one word (total on negative words). *)

val cardinal : t -> int
(** Sum of {!popcount} over all words. *)

val lane_mask : int -> int
(** [lane_mask k] is the word with the low [k] lanes set; [-1] (all
    lanes) for any [k >= width] — no shift by the word size is ever
    performed.  @raise Invalid_argument on negative [k]. *)

val iter_lanes : (int -> unit) -> int -> unit
(** [iter_lanes f x] applies [f] to the ascending lane indices set in
    the word [x], the sign lane ([width - 1]) included. *)
