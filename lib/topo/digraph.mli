(** Mutable directed graphs over dense integer vertices.

    Vertices are identifiers [0 .. vertex_count - 1], allocated with
    {!add_vertex}.  Parallel edges are rejected; self-loops are allowed at
    construction but rejected by the acyclicity-sensitive algorithms of this
    library. *)

type t

val create : ?size_hint:int -> unit -> t
(** [create ()] is the empty graph. *)

val add_vertex : t -> int
(** Allocates and returns a fresh vertex identifier. *)

val add_vertices : t -> int -> unit
(** [add_vertices g k] allocates [k] fresh vertices. *)

val vertex_count : t -> int
val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds edge [u -> v]; a duplicate edge is ignored.
    @raise Invalid_argument if a vertex is out of range. *)

val remove_edge : t -> int -> int -> unit
(** Removes edge [u -> v] if present. *)

val has_edge : t -> int -> int -> bool

val succ : t -> int -> int list
(** Successors of a vertex, in insertion order. *)

val pred : t -> int -> int list
(** Predecessors of a vertex, in insertion order. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_edges : (int -> int -> unit) -> t -> unit
(** [iter_edges f g] applies [f u v] to every edge [u -> v]. *)

val edges : t -> (int * int) list
(** All edges, ordered by source vertex. *)

val copy : t -> t
val transpose : t -> t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n es] is the graph with [n] vertices and edge list [es]. *)

val sources : t -> int list
(** Vertices with no incoming edge. *)

val sinks : t -> int list
(** Vertices with no outgoing edge. *)

val pp : Format.formatter -> t -> unit
