(** Vertex-independent path counting (Menger's theorem via vertex-split
    maximum flow).

    Two paths are vertex-independent iff they share no vertex except
    possibly their endpoints — the connectivity notion of §III-C of the
    paper.  The fault-tolerance requirement on a dataflow graph is
    [vertex_disjoint_paths ~src:root ~dst:s >= 2] and likewise from [s] to
    the sink, for every segment vertex [s]. *)

val vertex_disjoint_paths : Digraph.t -> src:int -> dst:int -> int
(** Maximum number of pairwise vertex-independent [src]-[dst] paths
    (interior vertices distinct; endpoints excluded from the splitting).
    Returns 0 if [dst] is unreachable from [src].  A direct edge
    [src -> dst] contributes one path.
    @raise Invalid_argument if [src = dst]. *)

val two_connected_through : Digraph.t -> root:int -> sink:int -> int -> bool
(** [two_connected_through g ~root ~sink v] holds iff there are at least two
    vertex-independent [root]-[v] paths and at least two vertex-independent
    [v]-[sink] paths — i.e. vertex [v] satisfies the paper's connectivity
    requirement.  For [v = root] or [v = sink] only the applicable half is
    checked. *)

val single_points_of_failure : Digraph.t -> root:int -> sink:int -> int -> int list
(** [single_points_of_failure g ~root ~sink v] lists the interior vertices
    whose removal disconnects [v] from [root] or from [sink] — the scan
    elements that are single points of failure for accessing [v].  Empty
    iff {!two_connected_through} holds and redundant paths exist. *)
