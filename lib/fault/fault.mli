(** Fault models for RSNs.

    The core universe is the paper's single stuck-at model (§III-A): fault
    sites are the ports of scan segments, registers and multiplexers, plus
    the primary scan ports — the universe over which the paper's
    fault-tolerance metric aggregates.  Faults in global control (clock,
    reset) are excluded, as in the paper.

    For TMR-hardened multiplexer addresses the three replica sites are
    enumerated but masked (a single stuck-at is outvoted); the voter output
    remains an unmasked site that locks the selection.

    Three further {!model}s reuse the same machinery (summaries,
    collapsing, both accessibility engines) over different site universes:
    bridging faults between adjacent scan segments, selection-control
    faults (select lines, address logic, broken TMR voters), and transient
    single-event upsets of shadow bits, whose verdict is a
    recovery-reachability question. *)

type model = Stuck | Bridge | Select | Transient
(** Which fault universe {!universe} enumerates.  [Stuck] (the default
    everywhere) is the paper's single stuck-at universe; [Bridge] is
    wired-AND/wired-OR bridges between adjacent scan segments; [Select]
    restricts to the sites that corrupt mux selection (plus broken-voter
    sites); [Transient] is one single-event upset per shadow bit, where
    accessibility means a fault-free reconfiguration sequence recovers the
    target after the glitch. *)

val all_models : model list
val model_to_string : model -> string
val model_of_string : string -> model option

type site =
  | Seg_scan_in of int        (** data corrupted entering the segment *)
  | Seg_scan_out of int       (** data corrupted leaving the segment *)
  | Seg_shift_reg of int      (** a shift-register stage stuck *)
  | Seg_shadow_reg of int * int  (** shadow bit stuck *)
  | Seg_select of int         (** select port *)
  | Seg_capture_en of int     (** capture enable *)
  | Seg_update_en of int      (** update enable *)
  | Mux_addr of int * int     (** address port (voter output if TMR) *)
  | Mux_addr_replica of int * int * int
      (** TMR replica [r] of an address bit; masked *)
  | Mux_data_in of int * int  (** one data input port *)
  | Mux_out of int            (** output port *)
  | Primary_in                (** primary scan-in port *)
  | Primary_out               (** primary scan-out port *)
  | Bridge_segs of int * int
      (** bridge between the scan wires of two adjacent segments
          (canonical [a < b]); [stuck = false] is the wired-AND variant,
          [stuck = true] the wired-OR one *)
  | Mux_voter of int * int * int
      (** broken TMR voter of mux [m], address bit [b]: forwards replica
          [r] instead of the majority; masked under single faults (all
          replicas carry the correct value) *)
  | Glitch_shadow of int * int
      (** transient upset of shadow bit [(seg, bit)]; [stuck] is the
          upset value the bit holds when the glitch lands *)

type t = { site : site; stuck : bool }

val universe : ?model:model -> Ftrsn_rsn.Netlist.t -> t list
(** The fault universe of the given {!model} (default [Stuck]: all single
    stuck-at-0/1 faults of the netlist).  [Bridge] enumerates both
    dominance variants per adjacency ({!bridge_adjacencies}); [Select]
    the selection-control stuck-ats plus one broken-voter fault per TMR
    replica; [Transient] one upset per shadow bit, flipping it away from
    its reset value (the reset-valued upset is indistinguishable from
    fault-free). *)

val bridge_adjacencies : Ftrsn_rsn.Netlist.t -> (int * int) list
(** Adjacent segment pairs (canonical [a < b], deduplicated, deterministic
    order): segments connected by a dataflow edge, or driving data inputs
    of the same multiplexer. *)

val is_masked : Ftrsn_rsn.Netlist.t -> t -> bool
(** Whether the fault is structurally masked by hardening: TMR address
    replicas, and single select-stem stuck-at-0 when the select network is
    hardened are handled by the accessibility engines; [is_masked] covers
    only the TMR replicas, which have no observable effect at all. *)

val tmr_protected_shadow : Ftrsn_rsn.Netlist.t -> int -> int -> bool
(** Whether shadow bit [(seg, bit)] drives only TMR-hardened multiplexer
    addresses: a single stuck replica is outvoted, so the routing never
    sees the stuck value (the bit's own write interface is still
    considered broken). *)

val port_masked_mux : Ftrsn_rsn.Netlist.t -> int -> bool
(** Whether faults in the given mux are bypassed by the duplicated scan
    ports (paper SIII-E-4): the netlist has [dual_ports] and the mux feeds
    the primary scan-out or a direct successor of the primary scan-in —
    the secondary port reaches around it. *)

val to_injection : Ftrsn_rsn.Netlist.t -> t -> Ftrsn_rsn.Sim.injection
(** Simulator overrides realizing the fault (the identity injection for a
    masked fault). *)

val weight : Ftrsn_rsn.Netlist.t -> t -> int
(** Physical multiplicity of the site, used to weight the average of the
    fault-tolerance metric.  Port and register sites currently weigh 1. *)

(** {2 Semantic summaries and equivalence collapsing}

    A fault's {!summary} is its canonical semantic effect on the netlist:
    the per-segment interface damage, data-corruption sites, pinned shadow
    bits and locked address ports that BOTH accessibility engines
    ({!Ftrsn_access.Engine} and {!Ftrsn_bmc.Bmc}) derive their per-fault
    effect records from.  Faults with equal summaries are therefore
    provably equivalent: they receive identical verdicts from either
    engine, so the metric needs to evaluate only one representative per
    class.  Classic cases collapsed this way: the two stuck values of a
    data fault (segment scan-in/out, shift stage, mux data/output port —
    corruption does not depend on the stuck polarity), benign faults
    (select/capture/update stuck-at-1, masked TMR replicas, faults
    bypassed by duplicated scan ports), and TMR-outvoted shadow replicas
    of the same segment. *)

type summary = {
  sm_hard_block : int list;         (** segments that cannot shift at all *)
  sm_corrupt_vertex : int list;     (** data through the segment corrupted *)
  sm_corrupt_in : int list;         (** data entering the segment corrupted *)
  sm_corrupt_out : int list;        (** data leaving the segment corrupted *)
  sm_kill_write : int list;         (** local write capability lost *)
  sm_kill_read : int list;          (** local read capability lost *)
  sm_mux_out : int list;            (** mux outputs corrupting data *)
  sm_mux_in : (int * int) list;     (** (mux, canonical input) data faults *)
  sm_locked_addr : (int * int * bool) list;  (** mux addr bits forced *)
  sm_stuck_shadow : (int * int * bool) list; (** shadow bits pinned *)
  sm_glitch_shadow : (int * int * bool) list;
      (** shadow bits transiently upset to the given value: the network
          starts from reset-with-these-bits-flipped instead of reset, and
          the bits remain rewritable afterwards (contrast
          [sm_stuck_shadow], which pins forever) *)
  sm_pi_dead : bool;
  sm_po_dead : bool;
}

val empty_summary : summary
(** The fault-free summary. *)

val summarize :
  ?port_masked:(int -> bool) -> Ftrsn_rsn.Netlist.t -> t -> summary
(** Canonical semantic summary of a single fault.  [port_masked] overrides
    the duplicated-scan-port masking predicate (the engines pass their
    cached {!Ftrsn_access.Engine.port_masked}); by default it is computed
    from the netlist's edge routes. *)

val summary_benign : summary -> bool
(** Whether the summary equals {!empty_summary}: the fault is
    indistinguishable from the fault-free network for both engines. *)

type shape = Benign | Read_only | Write_only | Port_dead | General
(** Coarse shape of a summary's semantic effect, used by the
    lane-parallel structural engine to form batches: classes of the
    same shape have similarly sized cones, so batching them together
    keeps each batch's cone union (hence its shared fixpoint cost)
    close to the members' own.  [Benign] = no effect; [Read_only] /
    [Write_only] = pure local interface kills (answered without any
    traversal); [Port_dead] = a dead primary scan port (full-network
    cone); [General] = everything else. *)

val summary_shape : summary -> shape

val summary_union : summary -> summary -> summary
(** Combined semantic effect of two simultaneous faults: per-site lists
    concatenate, the global port-kill flags disjoin.  Both engines apply
    summaries set-wise, so [summary_union] is commutative, associative and
    idempotent up to engine semantics — the basis of the double-fault pair
    reduction (a pair verdict depends only on the union of the two class
    summaries). *)

val port_mask_table : Ftrsn_rsn.Netlist.t -> int -> bool
(** Memoized form of {!port_masked_mux}: the returned predicate shares one
    edge-route computation across all muxes. *)

type clas = {
  cls_rep : t;          (** representative (first member in input order) *)
  cls_members : t list; (** all members, in input order *)
  cls_weight : int;     (** sum of the members' {!weight}s *)
  cls_summary : summary;
}

val collapse : Ftrsn_rsn.Netlist.t -> t list -> clas list
(** Partition a fault list into semantic equivalence classes (equal
    {!summary}), in order of first appearance.  Exact weight bookkeeping:
    the class weights sum to the total weight of the input list, so
    evaluating one representative per class with its class weight
    reproduces the unreduced metric bit for bit. *)

val pp : Ftrsn_rsn.Netlist.t -> Format.formatter -> t -> unit
val to_string : Ftrsn_rsn.Netlist.t -> t -> string
