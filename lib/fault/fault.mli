(** Stuck-at fault model for RSNs (paper §III-A).

    Fault sites are the ports of scan segments, registers and multiplexers,
    plus the primary scan ports — the universe over which the paper's
    fault-tolerance metric aggregates.  Faults in global control (clock,
    reset) are excluded, as in the paper.

    For TMR-hardened multiplexer addresses the three replica sites are
    enumerated but masked (a single stuck-at is outvoted); the voter output
    remains an unmasked site that locks the selection. *)

type site =
  | Seg_scan_in of int        (** data corrupted entering the segment *)
  | Seg_scan_out of int       (** data corrupted leaving the segment *)
  | Seg_shift_reg of int      (** a shift-register stage stuck *)
  | Seg_shadow_reg of int * int  (** shadow bit stuck *)
  | Seg_select of int         (** select port *)
  | Seg_capture_en of int     (** capture enable *)
  | Seg_update_en of int      (** update enable *)
  | Mux_addr of int * int     (** address port (voter output if TMR) *)
  | Mux_addr_replica of int * int * int
      (** TMR replica [r] of an address bit; masked *)
  | Mux_data_in of int * int  (** one data input port *)
  | Mux_out of int            (** output port *)
  | Primary_in                (** primary scan-in port *)
  | Primary_out               (** primary scan-out port *)

type t = { site : site; stuck : bool }

val universe : Ftrsn_rsn.Netlist.t -> t list
(** All single stuck-at-0/1 faults of the netlist. *)

val is_masked : Ftrsn_rsn.Netlist.t -> t -> bool
(** Whether the fault is structurally masked by hardening: TMR address
    replicas, and single select-stem stuck-at-0 when the select network is
    hardened are handled by the accessibility engines; [is_masked] covers
    only the TMR replicas, which have no observable effect at all. *)

val tmr_protected_shadow : Ftrsn_rsn.Netlist.t -> int -> int -> bool
(** Whether shadow bit [(seg, bit)] drives only TMR-hardened multiplexer
    addresses: a single stuck replica is outvoted, so the routing never
    sees the stuck value (the bit's own write interface is still
    considered broken). *)

val port_masked_mux : Ftrsn_rsn.Netlist.t -> int -> bool
(** Whether faults in the given mux are bypassed by the duplicated scan
    ports (paper SIII-E-4): the netlist has [dual_ports] and the mux feeds
    the primary scan-out or a direct successor of the primary scan-in —
    the secondary port reaches around it. *)

val to_injection : Ftrsn_rsn.Netlist.t -> t -> Ftrsn_rsn.Sim.injection
(** Simulator overrides realizing the fault (the identity injection for a
    masked fault). *)

val weight : Ftrsn_rsn.Netlist.t -> t -> int
(** Physical multiplicity of the site, used to weight the average of the
    fault-tolerance metric.  Port and register sites currently weigh 1. *)

val pp : Ftrsn_rsn.Netlist.t -> Format.formatter -> t -> unit
val to_string : Ftrsn_rsn.Netlist.t -> t -> string
