module Netlist = Ftrsn_rsn.Netlist
module Sim = Ftrsn_rsn.Sim
module Digraph = Ftrsn_topo.Digraph

type model = Stuck | Bridge | Select | Transient

let all_models = [ Stuck; Bridge; Select; Transient ]

let model_to_string = function
  | Stuck -> "stuck"
  | Bridge -> "bridge"
  | Select -> "select"
  | Transient -> "transient"

let model_of_string = function
  | "stuck" -> Some Stuck
  | "bridge" -> Some Bridge
  | "select" -> Some Select
  | "transient" -> Some Transient
  | _ -> None

type site =
  | Seg_scan_in of int
  | Seg_scan_out of int
  | Seg_shift_reg of int
  | Seg_shadow_reg of int * int
  | Seg_select of int
  | Seg_capture_en of int
  | Seg_update_en of int
  | Mux_addr of int * int
  | Mux_addr_replica of int * int * int
  | Mux_data_in of int * int
  | Mux_out of int
  | Primary_in
  | Primary_out
  | Bridge_segs of int * int
  | Mux_voter of int * int * int
  | Glitch_shadow of int * int

type t = { site : site; stuck : bool }

let stuck_universe (net : Netlist.t) =
  let sites = ref [] in
  let push s = sites := s :: !sites in
  Array.iteri
    (fun i (s : Netlist.segment) ->
      push (Seg_scan_in i);
      push (Seg_scan_out i);
      (* Internal scan cells of instrument segments are outside the paper's
         fault universe ("all actual scan cells in the scan segments ...
         beyond the scope of this paper", §IV-B); register faults are
         enumerated only for pure control registers (SIBs and
         configuration segments, whose whole shift register is mirrored by
         the shadow).  Instrument segments still contribute their port
         sites, and any hosted control bits contribute shadow sites. *)
      if s.seg_shadow = s.seg_len then push (Seg_shift_reg i);
      push (Seg_select i);
      push (Seg_capture_en i);
      if s.seg_shadow > 0 then begin
        push (Seg_update_en i);
        for b = 0 to s.seg_shadow - 1 do
          push (Seg_shadow_reg (i, b))
        done
      end)
    net.segs;
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      push (Mux_out m);
      (* Inputs sharing a driver are one physical port. *)
      Array.iteri
        (fun k _ ->
          if Netlist.mux_input_class net m k = k then
            push (Mux_data_in (m, k)))
        mx.mux_inputs;
      Array.iteri
        (fun b ctrl ->
          match ctrl with
          | Netlist.Ctrl_const _ -> ()
          | Netlist.Ctrl_shadow _ | Netlist.Ctrl_primary _ ->
              push (Mux_addr (m, b));
              if mx.mux_tmr then
                for r = 0 to 2 do
                  push (Mux_addr_replica (m, b, r))
                done)
        mx.mux_addr)
    net.muxes;
  push Primary_in;
  push Primary_out;
  List.concat_map
    (fun site -> [ { site; stuck = false }; { site; stuck = true } ])
    (List.rev !sites)

let is_masked (_net : Netlist.t) f =
  match f.site with
  | Mux_addr_replica _ | Mux_voter _ -> true
  | _ -> false

(* Muxes addressed by the given shadow bit. *)
let driven_muxes (net : Netlist.t) seg bit =
  let result = ref [] in
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      Array.iter
        (function
          | Netlist.Ctrl_shadow { cseg; cbit } when cseg = seg && cbit = bit ->
              result := m :: !result
          | _ -> ())
        mx.mux_addr)
    net.muxes;
  !result

let tmr_protected_shadow (net : Netlist.t) seg bit =
  let driven = driven_muxes net seg bit in
  driven <> []
  && List.for_all (fun m -> net.Netlist.muxes.(m).Netlist.mux_tmr) driven

(* ---- alternative fault models ---- *)

(* Adjacent scan-segment pairs for the bridging universe: two segments are
   adjacent when one feeds the other in the dataflow graph (their scan
   wires run between the same two elements) or when both drive data
   inputs of the same multiplexer (their output wires converge on one
   routing element).  Canonicalized [a < b], deduplicated, deterministic
   order. *)
let bridge_adjacencies (net : Netlist.t) =
  let g, _ = Netlist.dataflow_graph net in
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let add a b =
    if a <> b then begin
      let key = if a < b then (a, b) else (b, a) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        order := key :: !order
      end
    end
  in
  List.iter
    (fun (u, v) -> if u >= 2 && v >= 2 then add (u - 2) (v - 2))
    (Digraph.edges g);
  Array.iter
    (fun (mx : Netlist.mux) ->
      let segs =
        Array.to_list mx.mux_inputs
        |> List.filter_map (function Netlist.Seg i -> Some i | _ -> None)
      in
      let rec pairs = function
        | [] -> ()
        | x :: rest ->
            List.iter (add x) rest;
            pairs rest
      in
      pairs segs)
    net.muxes;
  List.rev !order

(* Both dominance variants per adjacency: stuck=false is the wired-AND
   bridge, stuck=true the wired-OR one. *)
let bridge_universe (net : Netlist.t) =
  List.concat_map
    (fun (a, b) ->
      let site = Bridge_segs (a, b) in
      [ { site; stuck = false }; { site; stuck = true } ])
    (bridge_adjacencies net)

(* Selection-control universe: the stuck-at sites that corrupt mux
   selection rather than scanned data — select/update enables, shadow
   bits that actually drive addresses, address ports and their TMR
   replicas — plus broken-voter sites (the voter forwards replica [r]
   instead of the majority). *)
let select_universe (net : Netlist.t) =
  let sites = ref [] in
  let push s = sites := s :: !sites in
  Array.iteri
    (fun i (s : Netlist.segment) ->
      push (Seg_select i);
      if s.seg_shadow > 0 then begin
        push (Seg_update_en i);
        for b = 0 to s.seg_shadow - 1 do
          if driven_muxes net i b <> [] then push (Seg_shadow_reg (i, b))
        done
      end)
    net.segs;
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      Array.iteri
        (fun b ctrl ->
          match ctrl with
          | Netlist.Ctrl_const _ -> ()
          | Netlist.Ctrl_shadow _ | Netlist.Ctrl_primary _ ->
              push (Mux_addr (m, b));
              if mx.mux_tmr then
                for r = 0 to 2 do
                  push (Mux_addr_replica (m, b, r))
                done)
        mx.mux_addr)
    net.muxes;
  let stuck_pairs =
    List.concat_map
      (fun site -> [ { site; stuck = false }; { site; stuck = true } ])
      (List.rev !sites)
  in
  (* Voter faults carry no polarity: the broken voter forwards replica
     [r] verbatim, and with a single fault all three replicas hold the
     correct value, so only one variant per replica is enumerated. *)
  let voters = ref [] in
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      if mx.mux_tmr then
        Array.iteri
          (fun b ctrl ->
            match ctrl with
            | Netlist.Ctrl_const _ -> ()
            | Netlist.Ctrl_shadow _ | Netlist.Ctrl_primary _ ->
                for r = 0 to 2 do
                  voters := { site = Mux_voter (m, b, r); stuck = false } :: !voters
                done)
          mx.mux_addr)
    net.muxes;
  stuck_pairs @ List.rev !voters

(* Transient (SEU) universe: one glitch per shadow bit, flipping it away
   from its reset value while the network is otherwise quiescent (the
   upset-to-reset variant is indistinguishable from the fault-free
   network).  [stuck] records the upset value. *)
let transient_universe (net : Netlist.t) =
  let faults = ref [] in
  Array.iteri
    (fun i (s : Netlist.segment) ->
      for b = 0 to s.seg_shadow - 1 do
        faults :=
          { site = Glitch_shadow (i, b); stuck = not s.seg_reset.(b) }
          :: !faults
      done)
    net.segs;
  List.rev !faults

let universe ?(model = Stuck) (net : Netlist.t) =
  match model with
  | Stuck -> stuck_universe net
  | Bridge -> bridge_universe net
  | Select -> select_universe net
  | Transient -> transient_universe net

(* Consumer dataflow vertex of each mux and the set of scan-in successor
   vertices, from the collapsed dataflow view.  Mirrors the engine's
   cached computation. *)
let port_mask_table (net : Netlist.t) =
  if not net.Netlist.dual_ports then fun _ -> false
  else begin
    let routes = Netlist.edge_routes net in
    let consumer = Array.make (Array.length net.Netlist.muxes) (-1) in
    let pi_succ = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (src, dst) rs ->
        if src = 0 then Hashtbl.replace pi_succ dst ();
        List.iter
          (List.iter (fun (m', _) -> consumer.(m') <- dst))
          rs)
      routes;
    fun m -> consumer.(m) = 1 || Hashtbl.mem pi_succ consumer.(m)
  end

let port_masked_mux (net : Netlist.t) m = port_mask_table net m

let to_injection (net : Netlist.t) f =
  let v = f.stuck in
  let base = Sim.no_injection in
  match f.site with
  | Seg_scan_in i -> { base with stuck_seg_in = [ (i, v) ] }
  | Seg_scan_out i -> { base with stuck_seg_out = [ (i, v) ] }
  | Seg_shift_reg i ->
      (* A representative stage in the middle of the register. *)
      { base with stuck_shift = [ (i, net.segs.(i).seg_len / 2, v) ] }
  | Seg_shadow_reg (i, b) ->
      (* A TMR-protected bit (it drives only hardened addresses) is a
         single replica: the voted address value stays fault-free, so the
         configuration seen by the routing logic is unaffected. *)
      if tmr_protected_shadow net i b then base
      else { base with stuck_shadow = [ (i, b, v) ] }
  | Seg_select i -> { base with stuck_select = [ (i, v) ] }
  | Seg_capture_en i -> { base with stuck_capture = [ (i, v) ] }
  | Seg_update_en i -> { base with stuck_update = [ (i, v) ] }
  (* Faults bypassed by the duplicated scan ports: with the port switched,
     the faulty element is not on the used route.  The netlist does not
     model the port muxes structurally, so the faithful simulation of the
     switched configuration is the fault-free routing. *)
  | Mux_addr (m, b) ->
      if port_masked_mux net m then base
      else { base with stuck_mux_addr = [ (m, b, v) ] }
  | Mux_addr_replica _ -> base
  | Mux_data_in (m, k) ->
      if port_masked_mux net m then base
      else { base with stuck_mux_in = [ (m, k, v) ] }
  | Mux_out m ->
      if port_masked_mux net m then base
      else { base with stuck_mux_out = [ (m, v) ] }
  | Primary_in ->
      if net.Netlist.dual_ports then base else { base with stuck_pi = Some v }
  | Primary_out ->
      if net.Netlist.dual_ports then base else { base with stuck_po = Some v }
  (* Bridges and transient upsets are not expressible as static simulator
     overrides (a bridge couples two wires, a glitch is a state change,
     not a forcing); callers needing their semantics go through the
     accessibility engines, which derive them from the summary. *)
  | Bridge_segs _ | Mux_voter _ | Glitch_shadow _ -> base

let weight (_net : Netlist.t) (_f : t) = 1

(* ---- semantic summaries and equivalence collapsing ---- *)

type summary = {
  sm_hard_block : int list;
  sm_corrupt_vertex : int list;
  sm_corrupt_in : int list;
  sm_corrupt_out : int list;
  sm_kill_write : int list;
  sm_kill_read : int list;
  sm_mux_out : int list;
  sm_mux_in : (int * int) list;
  sm_locked_addr : (int * int * bool) list;
  sm_stuck_shadow : (int * int * bool) list;
  sm_glitch_shadow : (int * int * bool) list;
  sm_pi_dead : bool;
  sm_po_dead : bool;
}

let empty_summary =
  {
    sm_hard_block = [];
    sm_corrupt_vertex = [];
    sm_corrupt_in = [];
    sm_corrupt_out = [];
    sm_kill_write = [];
    sm_kill_read = [];
    sm_mux_out = [];
    sm_mux_in = [];
    sm_locked_addr = [];
    sm_stuck_shadow = [];
    sm_glitch_shadow = [];
    sm_pi_dead = false;
    sm_po_dead = false;
  }

let summary_benign sm = sm = empty_summary

(* Coarse shape of a summary's semantic effect, used to form lane
   batches: classes of the same shape tend to have similarly sized
   cones, so batching them together keeps a batch's cone union (and
   its fixpoint round count) close to each member's own. *)
type shape = Benign | Read_only | Write_only | Port_dead | General

let summary_shape sm =
  if summary_benign sm then Benign
  else if sm.sm_pi_dead || sm.sm_po_dead then Port_dead
  else if
    sm.sm_kill_read <> [] && summary_benign { sm with sm_kill_read = [] }
  then Read_only
  else if
    sm.sm_kill_write <> [] && summary_benign { sm with sm_kill_write = [] }
  then Write_only
  else General

(* Combined semantic effect of two (or more) simultaneous faults: every
   per-site list concatenates and the global kill flags disjoin.  Duplicate
   entries are harmless — both engines treat the lists as sets — so no
   deduplication is attempted. *)
let summary_union a b =
  {
    sm_hard_block = a.sm_hard_block @ b.sm_hard_block;
    sm_corrupt_vertex = a.sm_corrupt_vertex @ b.sm_corrupt_vertex;
    sm_corrupt_in = a.sm_corrupt_in @ b.sm_corrupt_in;
    sm_corrupt_out = a.sm_corrupt_out @ b.sm_corrupt_out;
    sm_kill_write = a.sm_kill_write @ b.sm_kill_write;
    sm_kill_read = a.sm_kill_read @ b.sm_kill_read;
    sm_mux_out = a.sm_mux_out @ b.sm_mux_out;
    sm_mux_in = a.sm_mux_in @ b.sm_mux_in;
    sm_locked_addr = a.sm_locked_addr @ b.sm_locked_addr;
    sm_stuck_shadow = a.sm_stuck_shadow @ b.sm_stuck_shadow;
    sm_glitch_shadow = a.sm_glitch_shadow @ b.sm_glitch_shadow;
    sm_pi_dead = a.sm_pi_dead || b.sm_pi_dead;
    sm_po_dead = a.sm_po_dead || b.sm_po_dead;
  }

let summarize ?port_masked (net : Netlist.t) f =
  let masked =
    match port_masked with Some p -> p | None -> port_mask_table net
  in
  let e = empty_summary in
  match f with
  | f when is_masked net f -> e
  | { site; stuck } -> (
      match site with
      | Seg_scan_in i -> { e with sm_corrupt_in = [ i ]; sm_kill_write = [ i ] }
      | Seg_scan_out i ->
          { e with sm_corrupt_out = [ i ]; sm_kill_read = [ i ] }
      | Seg_shift_reg i ->
          {
            e with
            sm_corrupt_vertex = [ i ];
            sm_kill_write = [ i ];
            sm_kill_read = [ i ];
          }
      | Seg_shadow_reg (i, b) ->
          if tmr_protected_shadow net i b then { e with sm_kill_write = [ i ] }
          else
            {
              e with
              sm_kill_write = [ i ];
              sm_stuck_shadow = [ (i, b, stuck) ];
            }
      | Seg_select i -> if stuck then e else { e with sm_hard_block = [ i ] }
      | Seg_capture_en i -> if stuck then e else { e with sm_kill_read = [ i ] }
      | Seg_update_en i -> if stuck then e else { e with sm_kill_write = [ i ] }
      | Mux_addr (m, b) ->
          if masked m then e else { e with sm_locked_addr = [ (m, b, stuck) ] }
      | Mux_addr_replica _ -> e
      | Mux_data_in (m, k) ->
          if masked m then e
          else { e with sm_mux_in = [ (m, Netlist.mux_input_class net m k) ] }
      | Mux_out m -> if masked m then e else { e with sm_mux_out = [ m ] }
      | Primary_in ->
          if net.Netlist.dual_ports then e else { e with sm_pi_dead = true }
      | Primary_out ->
          if net.Netlist.dual_ports then e else { e with sm_po_dead = true }
      (* A bridge between adjacent segments corrupts the data leaving
         both bridged segments whenever either toggles — under both
         dominance variants (the polarity only selects WHICH pattern is
         destroyed, not WHETHER data integrity can be relied on), so
         wired-AND and wired-OR collapse into one class per adjacency.
         The summary is exactly the union of the two segments'
         scan-out-stuck summaries: corrupt output data plus the local
         read kill, the same split both engines already implement. *)
      | Bridge_segs (a, b) ->
          { e with sm_corrupt_out = [ a; b ]; sm_kill_read = [ a; b ] }
      | Mux_voter _ -> e (* unreachable: is_masked *)
      (* A transient upset of a TMR-protected shadow bit is outvoted at
         every address port it drives and overwritten by the next update,
         so it is benign; otherwise the upset leaves the network in the
         glitched state and the verdict is a recovery-reachability
         question, delegated to the engines via [sm_glitch_shadow]. *)
      | Glitch_shadow (i, b) ->
          if tmr_protected_shadow net i b then e
          else { e with sm_glitch_shadow = [ (i, b, stuck) ] })

type clas = {
  cls_rep : t;
  cls_members : t list;
  cls_weight : int;
  cls_summary : summary;
}

let collapse (net : Netlist.t) faults =
  let masked = port_mask_table net in
  let tbl : (summary, t list ref * int ref) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun f ->
      let sm = summarize ~port_masked:masked net f in
      match Hashtbl.find_opt tbl sm with
      | Some (members, w) ->
          members := f :: !members;
          w := !w + weight net f
      | None ->
          let cell = (ref [ f ], ref (weight net f)) in
          Hashtbl.add tbl sm cell;
          order := (sm, cell) :: !order)
    faults;
  List.rev_map
    (fun (sm, (members, w)) ->
      let members = List.rev !members in
      {
        cls_rep = List.hd members;
        cls_members = members;
        cls_weight = !w;
        cls_summary = sm;
      })
    !order

let pp net fmt f =
  let seg i = Netlist.segment_name net i in
  let mux m = net.Netlist.muxes.(m).mux_name in
  let s =
    match f.site with
    | Seg_scan_in i -> Printf.sprintf "%s.scan-in" (seg i)
    | Seg_scan_out i -> Printf.sprintf "%s.scan-out" (seg i)
    | Seg_shift_reg i -> Printf.sprintf "%s.shift-reg" (seg i)
    | Seg_shadow_reg (i, b) -> Printf.sprintf "%s.shadow[%d]" (seg i) b
    | Seg_select i -> Printf.sprintf "%s.select" (seg i)
    | Seg_capture_en i -> Printf.sprintf "%s.capture-en" (seg i)
    | Seg_update_en i -> Printf.sprintf "%s.update-en" (seg i)
    | Mux_addr (m, b) -> Printf.sprintf "%s.addr[%d]" (mux m) b
    | Mux_addr_replica (m, b, r) ->
        Printf.sprintf "%s.addr[%d].tmr%d" (mux m) b r
    | Mux_data_in (m, k) -> Printf.sprintf "%s.in[%d]" (mux m) k
    | Mux_out m -> Printf.sprintf "%s.out" (mux m)
    | Primary_in -> "primary.scan-in"
    | Primary_out -> "primary.scan-out"
    | Bridge_segs (a, b) -> Printf.sprintf "%s~%s.bridge" (seg a) (seg b)
    | Mux_voter (m, b, r) -> Printf.sprintf "%s.addr[%d].voter%d" (mux m) b r
    | Glitch_shadow (i, b) -> Printf.sprintf "%s.shadow[%d]" (seg i) b
  in
  match f.site with
  | Bridge_segs _ ->
      Format.fprintf fmt "%s/%s" s (if f.stuck then "or" else "and")
  | Mux_voter _ -> Format.fprintf fmt "%s/pass" s
  | Glitch_shadow _ ->
      Format.fprintf fmt "%s/seu%d" s (if f.stuck then 1 else 0)
  | _ -> Format.fprintf fmt "%s/sa%d" s (if f.stuck then 1 else 0)

let to_string net f = Format.asprintf "%a" (pp net) f
