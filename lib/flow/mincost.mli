(** Minimum-cost flow (successive shortest augmenting paths with Johnson
    potentials) and minimum-cost feasible flow with arc lower bounds.

    Costs must be non-negative; capacities non-negative integers.  The
    lower-bound solver uses the standard super-source/super-sink reduction
    and is what the degree-constrained augmentation of the synthesis uses
    when the exact ILP is too large. *)

type t
(** A mutable min-cost flow network. *)

val create : n:int -> t
(** [create ~n] is an empty network over vertices [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> int
(** [add_edge g ~src ~dst ~cap ~cost] adds an arc and returns its edge id.
    @raise Invalid_argument on negative capacity or cost, or bad vertex. *)

val min_cost_max_flow : t -> s:int -> t:int -> int * int
(** [min_cost_max_flow g ~s ~t] is [(flow, cost)] for a maximum flow of
    minimum cost.  Residual state is reset before the run. *)

val min_cost_flow : t -> s:int -> t:int -> amount:int -> int option
(** [min_cost_flow g ~s ~t ~amount] routes exactly [amount] units at minimum
    cost, returning [Some cost], or [None] if the network cannot carry
    [amount] units. *)

val flow_on : t -> int -> int
(** [flow_on g e] is the flow on edge [e] after the last solver run. *)

(** Minimum-cost feasible flow with per-arc lower bounds, solved by the
    super-terminal reduction. *)
module With_lower_bounds : sig
  type spec = {
    lb_src : int;   (** tail vertex *)
    lb_dst : int;   (** head vertex *)
    lb_low : int;   (** lower bound on the arc flow *)
    lb_cap : int;   (** upper bound on the arc flow; [lb_low <= lb_cap] *)
    lb_cost : int;  (** non-negative unit cost *)
  }

  val solve :
    n:int -> arcs:spec array -> s:int -> t:int -> (int * int array) option
  (** [solve ~n ~arcs ~s ~t] finds an [s]-[t] flow respecting all bounds and
      of minimum cost among feasible flows that additionally saturate no more
      than necessary.  Returns [Some (cost, per_arc_flow)] or [None] if no
      feasible flow exists.  The [s]-[t] flow value itself is free (an
      unbounded zero-cost return arc [t -> s] closes the circulation). *)
end
