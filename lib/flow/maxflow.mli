(** Maximum flow on integer-capacity directed graphs (Dinic's algorithm).

    The graph is built incrementally with [add_edge]; every call creates the
    forward arc together with its residual reverse arc.  Capacities must be
    non-negative.  [max_flow] may be called repeatedly with different
    terminals; the residual state is reset before each run. *)

type t
(** A mutable flow network. *)

val create : n:int -> t
(** [create ~n] is an empty network over vertices [0 .. n-1]. *)

val vertex_count : t -> int
(** Number of vertices of the network. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** [add_edge g ~src ~dst ~cap] adds an arc of capacity [cap] and returns its
    edge identifier, usable with {!flow_on} after a [max_flow] run.
    @raise Invalid_argument if [cap < 0] or a vertex is out of range. *)

val max_flow : t -> s:int -> t:int -> int
(** [max_flow g ~s ~t] computes the maximum [s]-[t] flow value.  Any flow
    left from a previous run is cleared first.
    @raise Invalid_argument if [s = t] or a terminal is out of range. *)

val flow_on : t -> int -> int
(** [flow_on g e] is the flow currently routed through edge [e] (as returned
    by {!add_edge}) after the last {!max_flow} run. *)

val min_cut_side : t -> s:int -> bool array
(** [min_cut_side g ~s] is, after a {!max_flow} run, the characteristic
    vector of the source side of a minimum cut (vertices still reachable
    from [s] in the residual graph). *)
