(* Successive shortest augmenting paths with Johnson potentials.  Arcs are
   stored in the paired forward/reverse layout of [Maxflow]; Dijkstra runs on
   reduced costs, which stay non-negative because input costs are
   non-negative and potentials are updated after every augmentation. *)

type t = {
  n : int;
  mutable head : int array array;
  mutable dst : int array;
  mutable cap : int array;
  mutable cap0 : int array;
  mutable cost : int array;
  mutable arcs : int;
  mutable adj : int list array;
  mutable frozen : bool;
  pot : int array;     (* Johnson potentials *)
  dist : int array;
  prev_arc : int array;
}

let inf = max_int / 4

let create ~n =
  if n <= 0 then invalid_arg "Mincost.create: n must be positive";
  {
    n;
    head = [||];
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    cap0 = Array.make 16 0;
    cost = Array.make 16 0;
    arcs = 0;
    adj = Array.make n [];
    frozen = false;
    pot = Array.make n 0;
    dist = Array.make n inf;
    prev_arc = Array.make n (-1);
  }

let ensure_arc_room g =
  let len = Array.length g.dst in
  if g.arcs + 2 > len then begin
    let len' = 2 * len in
    let grow a = Array.append a (Array.make (len' - len) 0) in
    g.dst <- grow g.dst;
    g.cap <- grow g.cap;
    g.cap0 <- grow g.cap0;
    g.cost <- grow g.cost
  end

let add_edge g ~src ~dst ~cap ~cost =
  if g.frozen then invalid_arg "Mincost.add_edge: network already solved";
  if cap < 0 then invalid_arg "Mincost.add_edge: negative capacity";
  if cost < 0 then invalid_arg "Mincost.add_edge: negative cost";
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Mincost.add_edge: vertex out of range";
  ensure_arc_room g;
  let a = g.arcs in
  g.dst.(a) <- dst;
  g.cap.(a) <- cap;
  g.cap0.(a) <- cap;
  g.cost.(a) <- cost;
  g.dst.(a + 1) <- src;
  g.cap.(a + 1) <- 0;
  g.cap0.(a + 1) <- 0;
  g.cost.(a + 1) <- -cost;
  g.adj.(src) <- a :: g.adj.(src);
  g.adj.(dst) <- (a + 1) :: g.adj.(dst);
  g.arcs <- g.arcs + 2;
  a / 2

let freeze g =
  if not g.frozen then begin
    g.head <- Array.map (fun l -> Array.of_list (List.rev l)) g.adj;
    g.frozen <- true
  end

let reset g =
  Array.blit g.cap0 0 g.cap 0 g.arcs;
  Array.fill g.pot 0 g.n 0

(* A small binary heap of (dist, vertex) pairs for Dijkstra. *)
module Heap = struct
  type h = { mutable a : (int * int) array; mutable len : int }

  let make () = { a = Array.make 64 (0, 0); len = 0 }

  let push h x =
    if h.len = Array.length h.a then
      h.a <- Array.append h.a (Array.make h.len (0, 0));
    h.a.(h.len) <- x;
    let i = ref h.len in
    h.len <- h.len + 1;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      fst h.a.(p) > fst h.a.(!i)
    do
      let p = (!i - 1) / 2 in
      let t = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- t;
      i := p
    done

  let pop h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.len && fst h.a.(l) < fst h.a.(!m) then m := l;
      if r < h.len && fst h.a.(r) < fst h.a.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        let t = h.a.(!m) in
        h.a.(!m) <- h.a.(!i);
        h.a.(!i) <- t;
        i := !m
      end
    done;
    top

  let is_empty h = h.len = 0
end

(* One Dijkstra pass on reduced costs; fills [dist] and [prev_arc].
   Returns true iff [t] is reachable in the residual graph. *)
let dijkstra g s t =
  Array.fill g.dist 0 g.n inf;
  Array.fill g.prev_arc 0 g.n (-1);
  let h = Heap.make () in
  g.dist.(s) <- 0;
  Heap.push h (0, s);
  while not (Heap.is_empty h) do
    let d, v = Heap.pop h in
    if d <= g.dist.(v) then
      Array.iter
        (fun a ->
          if g.cap.(a) > 0 then begin
            let w = g.dst.(a) in
            let rc = g.cost.(a) + g.pot.(v) - g.pot.(w) in
            let nd = d + rc in
            if nd < g.dist.(w) then begin
              g.dist.(w) <- nd;
              g.prev_arc.(w) <- a;
              Heap.push h (nd, w)
            end
          end)
        g.head.(v)
  done;
  g.dist.(t) < inf

(* Augment along the shortest-path tree; returns (delta, path_cost_delta). *)
let augment g s t limit =
  let bottleneck = ref limit in
  let v = ref t in
  while !v <> s do
    let a = g.prev_arc.(!v) in
    if g.cap.(a) < !bottleneck then bottleneck := g.cap.(a);
    v := g.dst.(a lxor 1)
  done;
  let cost = ref 0 in
  let v = ref t in
  while !v <> s do
    let a = g.prev_arc.(!v) in
    g.cap.(a) <- g.cap.(a) - !bottleneck;
    g.cap.(a lxor 1) <- g.cap.(a lxor 1) + !bottleneck;
    cost := !cost + g.cost.(a);
    v := g.dst.(a lxor 1)
  done;
  (!bottleneck, !cost)

let run g ~s ~t ~amount =
  if s = t then invalid_arg "Mincost: s = t";
  if s < 0 || s >= g.n || t < 0 || t >= g.n then
    invalid_arg "Mincost: terminal out of range";
  freeze g;
  reset g;
  let flow = ref 0 and cost = ref 0 in
  let want = match amount with None -> inf | Some a -> a in
  let continue = ref true in
  while !continue && !flow < want && dijkstra g s t do
    for v = 0 to g.n - 1 do
      if g.dist.(v) < inf then g.pot.(v) <- g.pot.(v) + g.dist.(v)
    done;
    let d, c = augment g s t (want - !flow) in
    if d = 0 then continue := false
    else begin
      flow := !flow + d;
      cost := !cost + (c * d)
    end
  done;
  (!flow, !cost)

let min_cost_max_flow g ~s ~t = run g ~s ~t ~amount:None

let min_cost_flow g ~s ~t ~amount =
  let flow, cost = run g ~s ~t ~amount:(Some amount) in
  if flow = amount then Some cost else None

let flow_on g e =
  let a = 2 * e in
  if a < 0 || a >= g.arcs then invalid_arg "Mincost.flow_on: bad edge id";
  g.cap0.(a) - g.cap.(a)

module With_lower_bounds = struct
  type spec = {
    lb_src : int;
    lb_dst : int;
    lb_low : int;
    lb_cap : int;
    lb_cost : int;
  }

  (* Standard reduction: an arc (u, v) with bounds [l, c] becomes an arc
     (u, v) with capacity c - l, plus l units forced through the
     super-source S* -> v and u -> super-sink T*.  A free return arc t -> s
     closes the circulation.  Feasible iff the S*-T* max flow saturates all
     demand; the per-arc flow is the reduced-arc flow plus its lower
     bound. *)
  let solve ~n ~arcs ~s ~t =
    Array.iteri
      (fun i a ->
        if a.lb_low < 0 || a.lb_low > a.lb_cap then
          invalid_arg
            (Printf.sprintf "With_lower_bounds.solve: bad bounds on arc %d" i))
      arcs;
    let ss = n and tt = n + 1 in
    let g = create ~n:(n + 2) in
    let ids = Array.make (Array.length arcs) (-1) in
    let excess = Array.make n 0 in
    Array.iteri
      (fun i a ->
        ids.(i) <-
          add_edge g ~src:a.lb_src ~dst:a.lb_dst ~cap:(a.lb_cap - a.lb_low)
            ~cost:a.lb_cost;
        excess.(a.lb_dst) <- excess.(a.lb_dst) + a.lb_low;
        excess.(a.lb_src) <- excess.(a.lb_src) - a.lb_low)
      arcs;
    (* Mandatory cost of the lower bounds themselves. *)
    let base_cost =
      Array.fold_left (fun acc a -> acc + (a.lb_low * a.lb_cost)) 0 arcs
    in
    let demand = ref 0 in
    for v = 0 to n - 1 do
      if excess.(v) > 0 then begin
        ignore (add_edge g ~src:ss ~dst:v ~cap:excess.(v) ~cost:0);
        demand := !demand + excess.(v)
      end
      else if excess.(v) < 0 then
        ignore (add_edge g ~src:v ~dst:tt ~cap:(-excess.(v)) ~cost:0)
    done;
    ignore (add_edge g ~src:t ~dst:s ~cap:inf ~cost:0);
    let flow, cost = min_cost_max_flow g ~s:ss ~t:tt in
    if flow <> !demand then None
    else begin
      let per_arc =
        Array.mapi (fun i a -> a.lb_low + flow_on g ids.(i)) arcs
      in
      Some (base_cost + cost, per_arc)
    end
end
