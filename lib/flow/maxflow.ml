(* Dinic's algorithm with the usual paired-arc residual representation:
   arc [2k] is the forward arc of the k-th added edge and arc [2k+1] its
   reverse.  [level] holds the BFS layering, [iter] the per-vertex cursor of
   the current-arc optimisation used by the blocking-flow DFS. *)

type t = {
  n : int;
  mutable head : int array array; (* head.(v) = arc ids leaving v *)
  mutable dst : int array;        (* dst.(a)  = head vertex of arc a *)
  mutable cap : int array;        (* residual capacity of arc a *)
  mutable cap0 : int array;       (* original capacity of arc a *)
  mutable arcs : int;             (* number of arcs in use *)
  mutable adj : int list array;   (* building-time adjacency, arc ids *)
  mutable frozen : bool;
  level : int array;
  iter : int array;
}

let create ~n =
  if n <= 0 then invalid_arg "Maxflow.create: n must be positive";
  {
    n;
    head = [||];
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    cap0 = Array.make 16 0;
    arcs = 0;
    adj = Array.make n [];
    frozen = false;
    level = Array.make n (-1);
    iter = Array.make n 0;
  }

let vertex_count g = g.n

let ensure_arc_room g =
  let len = Array.length g.dst in
  if g.arcs + 2 > len then begin
    let len' = 2 * len in
    let grow a = Array.append a (Array.make (len' - len) 0) in
    g.dst <- grow g.dst;
    g.cap <- grow g.cap;
    g.cap0 <- grow g.cap0
  end

let add_edge g ~src ~dst ~cap =
  if g.frozen then invalid_arg "Maxflow.add_edge: network already solved";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  ensure_arc_room g;
  let a = g.arcs in
  g.dst.(a) <- dst;
  g.cap.(a) <- cap;
  g.cap0.(a) <- cap;
  g.dst.(a + 1) <- src;
  g.cap.(a + 1) <- 0;
  g.cap0.(a + 1) <- 0;
  g.adj.(src) <- a :: g.adj.(src);
  g.adj.(dst) <- (a + 1) :: g.adj.(dst);
  g.arcs <- g.arcs + 2;
  a / 2

let freeze g =
  if not g.frozen then begin
    g.head <- Array.map (fun l -> Array.of_list (List.rev l)) g.adj;
    g.frozen <- true
  end

let reset_flow g = Array.blit g.cap0 0 g.cap 0 g.arcs

(* BFS layering from [s]; returns true iff [t] is reachable. *)
let bfs g s t =
  Array.fill g.level 0 g.n (-1);
  let q = Queue.create () in
  g.level.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun a ->
        let w = g.dst.(a) in
        if g.cap.(a) > 0 && g.level.(w) < 0 then begin
          g.level.(w) <- g.level.(v) + 1;
          Queue.add w q
        end)
      g.head.(v)
  done;
  g.level.(t) >= 0

(* Blocking-flow DFS with the current-arc optimisation. *)
let rec dfs g v t f =
  if v = t then f
  else begin
    let arcs = g.head.(v) in
    let m = Array.length arcs in
    let pushed = ref 0 in
    while !pushed = 0 && g.iter.(v) < m do
      let a = arcs.(g.iter.(v)) in
      let w = g.dst.(a) in
      if g.cap.(a) > 0 && g.level.(w) = g.level.(v) + 1 then begin
        let d = dfs g w t (min f g.cap.(a)) in
        if d > 0 then begin
          g.cap.(a) <- g.cap.(a) - d;
          g.cap.(a lxor 1) <- g.cap.(a lxor 1) + d;
          pushed := d
        end
        else g.iter.(v) <- g.iter.(v) + 1
      end
      else g.iter.(v) <- g.iter.(v) + 1
    done;
    !pushed
  end

let max_flow g ~s ~t =
  if s = t then invalid_arg "Maxflow.max_flow: s = t";
  if s < 0 || s >= g.n || t < 0 || t >= g.n then
    invalid_arg "Maxflow.max_flow: terminal out of range";
  freeze g;
  reset_flow g;
  let total = ref 0 in
  while bfs g s t do
    Array.fill g.iter 0 g.n 0;
    let rec pump () =
      let f = dfs g s t max_int in
      if f > 0 then begin
        total := !total + f;
        pump ()
      end
    in
    pump ()
  done;
  !total

let flow_on g e =
  let a = 2 * e in
  if a < 0 || a >= g.arcs then invalid_arg "Maxflow.flow_on: bad edge id";
  g.cap0.(a) - g.cap.(a)

let min_cut_side g ~s =
  freeze g;
  let side = Array.make g.n false in
  let q = Queue.create () in
  side.(s) <- true;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun a ->
        let w = g.dst.(a) in
        if g.cap.(a) > 0 && not side.(w) then begin
          side.(w) <- true;
          Queue.add w q
        end)
      g.head.(v)
  done;
  side
