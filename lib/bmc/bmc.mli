(** Bounded model checking of scan-segment accessibility — the paper's
    formal model (§II-B) with the stuck-at extensions (§III-A), decided by
    SAT.

    The model M = {S, H, I, V, C, c0, Select, Updis, Capdis, Active} is
    encoded over boolean variables: one per shadow-register bit and primary
    control input and unrolling step.  The transition relation (eq. 1)
    constrains a shadow bit to keep its value unless its segment lies on
    the active scan path of the current configuration; the active path and
    the propagation of a stuck-at fault along it are compiled to boolean
    circuits over the configuration variables, and the n-step unrolling is
    handed to the CDCL solver.

    Semantics are aligned with {!Ftrsn_access.Engine} (which computes the
    same verdicts by graph fixpoints): writes through corrupted data are
    never relied upon (the transition keeps the old value), select
    stuck-at-1 faults are recoverable and hence benign, TMR replicas and
    duplicated-port-adjacent mux faults are masked.  The test suite checks
    the two engines agree on entire fault universes of small networks. *)

type t

val create : Ftrsn_rsn.Netlist.t -> t
(** Builds the static model data (consumer maps, topological orders). *)

type verdict =
  | Accessible of int
      (** accessible; payload = number of CSU operations needed (the
          unrolling depth at which the check succeeded) *)
  | Inaccessible

val check_write :
  t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int -> unit ->
  verdict
(** Can a pattern be shifted into the target segment through an
    uncorrupted prefix, using only reachable configurations?
    [max_steps] defaults to the netlist hierarchy depth + 2. *)

val check_read :
  t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int -> unit ->
  verdict
(** Can the target's captured contents be shifted out unscathed? *)

val write_witness :
  t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int -> unit ->
  (int * Ftrsn_rsn.Config.t list) option
(** Like {!check_write}, but also decodes the SAT model into the witness
    configuration sequence [c_0 .. c_n] (reset first): each consecutive
    pair satisfies the transition relation and the final configuration
    puts the target on the active path with clean write data.  [None] if
    inaccessible. *)

val check_access :
  t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int -> unit ->
  verdict
(** Both {!check_write} and {!check_read}; the payload is the larger of
    the two unrolling depths. *)
