(** Bounded model checking of scan-segment accessibility — the paper's
    formal model (§II-B) with the stuck-at extensions (§III-A), decided by
    SAT.

    The model M = {S, H, I, V, C, c0, Select, Updis, Capdis, Active} is
    encoded over boolean variables: one per shadow-register bit and primary
    control input and unrolling step.  The transition relation (eq. 1)
    constrains a shadow bit to keep its value unless its segment lies on
    the active scan path of the current configuration; the active path and
    the propagation of a stuck-at fault along it are compiled to boolean
    circuits over the configuration variables, and the n-step unrolling is
    handed to the CDCL solver.

    Solving is incremental: a {!Session} holds one solver per netlist and
    grows the encoding monotonically across queries — unrolling variables
    and Tseitin cones are shared between faults, depths and goals, with
    per-fault and per-goal clause groups gated behind activation literals.
    The classic one-shot entry points ({!check_write} etc.) are thin
    wrappers over a session cached in the model.

    Semantics are aligned with {!Ftrsn_access.Engine} (which computes the
    same verdicts by graph fixpoints): writes through corrupted data are
    never relied upon (the transition keeps the old value), select
    stuck-at-1 faults are recoverable and hence benign, TMR replicas and
    duplicated-port-adjacent mux faults are masked.  The test suite checks
    the two engines agree on entire fault universes of small networks. *)

type t

val create : Ftrsn_rsn.Netlist.t -> t
(** Builds the static model data (consumer maps, topological orders). *)

val netlist : t -> Ftrsn_rsn.Netlist.t
(** The netlist the model was built from. *)

type verdict =
  | Accessible of int
      (** accessible; payload = number of CSU operations needed (the
          unrolling depth at which the check succeeded) *)
  | Inaccessible

type model = t
(** Alias so {!Session} can refer to the model type under its own [t]. *)

(** An incremental solving session: one SAT solver, one expression context
    and one streaming CNF emitter per netlist, reused across every query.

    The transition relation of each queried fault is encoded once per
    depth and only grown, never rebuilt; each (goal, target, depth) gets
    an activation literal so a query is a [solve ~assumptions] call with
    exactly two assumptions.  Switching to a different fault retires the
    previous fault's clause groups (see DESIGN.md), so sweeping a fault
    universe keeps the live clause set bounded while the shared Tseitin
    cones keep later faults cheaper to encode than the first. *)
module Session : sig
  type t

  exception Certification_failed of string
  (** Raised in certified mode when the independent checker rejects a
      solver proof event or an [Unsat] verdict's final clause.  Never
      raised by a correct solver — this surfacing is the point of the
      certified mode. *)

  val create : ?certify:bool -> model -> t
  (** [~certify:true] runs the session in certified mode: an independent
      {!Ftrsn_sat.Checker} mirrors the solver's DRUP proof stream
      (inputs, RUP-verified lemmas, deletions), and every [Unsat]
      verdict is additionally certified inline by checking that the
      negation of the solver's failed-assumption set is RUP with respect
      to the logged proof.  Default [false] (no proof overhead). *)

  val model : t -> model

  val certified : t -> bool
  (** Whether this session runs in certified mode. *)

  val check_write :
    t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int ->
    unit -> verdict

  val check_read :
    t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int ->
    unit -> verdict

  val write_witness :
    t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int ->
    unit -> (int * Ftrsn_rsn.Config.t list) option

  val check_access :
    t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int ->
    unit -> verdict
  (** Write and read legs share one encoding of the fault: the read query
      reuses the transition clauses and circuits the write query emitted. *)

  val check_targets :
    t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int ->
    ?only:(int -> bool) -> ?fallback:(int -> verdict) -> int list ->
    verdict array
  (** Access verdict for each target under one (optional) fault; all
      targets share the fault's single encoding.  [only] restricts the
      SAT queries to the targets it accepts (default: all) — the
      cone-of-influence restriction of the reduced metric; a filtered-out
      target gets [fallback target] instead (default [Inaccessible]),
      typically the fault-free verdict spliced in by the caller. *)

  val check_targets_multi :
    t -> ?max_steps:int -> ?only:(int -> bool) ->
    ?fallback:(int -> verdict) -> faults:Ftrsn_fault.Fault.t list ->
    int list -> verdict array
  (** Like {!check_targets}, under a SET of simultaneous faults ([[]] =
      fault-free): the faults' canonical summaries are merged with
      {!Ftrsn_fault.Fault.summary_union} and encoded as one clause group,
      keyed by the list, so the double-fault sweep reuses encodings like
      the single-fault sweep does.  The list order is the caller's
      canonical key — pass pairs in a fixed order to maximize reuse. *)

  val check_faults :
    t -> ?max_steps:int -> target:int -> Ftrsn_fault.Fault.t list ->
    verdict list
  (** Access verdict of one target under each fault in turn.  Faults are
      encoded and retired sequentially; Tseitin cones shared between
      faults stay memoized, so later faults emit strictly fewer clauses. *)

  val check_targets_base : t -> int list -> verdict array
  (** Fault-free {!check_targets}, memoized on the target list: the
      verdicts are deterministic per model, so a long-lived session (e.g.
      one held in a service pool) answers repeated baseline sweeps from
      the cache instead of re-solving one query per segment.  The
      returned array is shared — treat it as immutable. *)

  val netlist : t -> Ftrsn_rsn.Netlist.t
  (** The netlist of the session's model ([netlist (model sess)]). *)

  val retire_fault : t -> Ftrsn_fault.Fault.t option -> unit
  (** Explicitly retire a fault's clause groups (normally automatic when
      the next query concerns a different fault). *)

  type query_stat = {
    q_emitted : int;    (** clauses emitted into the solver by this query *)
    q_reused : int;     (** emitter memo hits (already-encoded nodes) *)
    q_conflicts : int;  (** solver conflicts during this query *)
    q_sat : bool;
  }

  type cert_stats = {
    cert_unsat : int;    (** [Unsat] verdicts certified *)
    cert_lemmas : int;   (** solver derivations RUP-verified *)
    cert_inputs : int;   (** problem clauses mirrored to the checker *)
    cert_deletes : int;  (** deletion events forwarded *)
    cert_time : float;
        (** CPU seconds spent RUP-verifying (lemma checks and UNSAT
            certifications; the cheap clause mirror/delete events are
            not timed — the timer syscall would dominate them) *)
  }

  type stats = {
    queries : int;
    clauses_emitted : int;  (** cumulative, whole session *)
    nodes_reused : int;     (** cumulative emitter memo hits *)
    conflicts : int;
    decisions : int;
    propagations : int;
    restarts : int;
    learnt_lits : int;      (** learnt literals before minimization *)
    minimized_lits : int;   (** literals removed by minimization *)
    reductions : int;       (** learnt-DB reduction passes *)
    learnt_db : int;        (** live learnt clauses (after reductions) *)
    subsumed : int;         (** clauses deleted by subsumption *)
    strengthened_lits : int;  (** literals removed by strengthening *)
    eliminated_vars : int;  (** variables eliminated by BVE *)
    vivified_lits : int;    (** literals removed by vivification *)
    simp_passes : int;      (** completed inprocessing passes *)
    per_query : query_stat list;  (** chronological *)
    cert : cert_stats option;  (** [Some] iff the session is certified *)
  }

  val stats : t -> stats

  val solver : t -> Ftrsn_sat.Solver.t
  (** The session's underlying solver — exposed for tests and benchmark
      ablations (e.g. {!Ftrsn_sat.Solver.set_learnt_limit}); mutating it
      other than through the feature switches voids the warranty. *)
end

val session : t -> Session.t
(** The model's cached default session (created on first use); the
    one-shot-style functions below all route through it. *)

val check_write :
  t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int -> unit ->
  verdict
(** Can a pattern be shifted into the target segment through an
    uncorrupted prefix, using only reachable configurations?
    [max_steps] defaults to the netlist hierarchy depth + 2. *)

val check_read :
  t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int -> unit ->
  verdict
(** Can the target's captured contents be shifted out unscathed? *)

val write_witness :
  t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int -> unit ->
  (int * Ftrsn_rsn.Config.t list) option
(** Like {!check_write}, but also decodes the SAT model into the witness
    configuration sequence [c_0 .. c_n] (reset first): each consecutive
    pair satisfies the transition relation and the final configuration
    puts the target on the active path with clean write data.  [None] if
    inaccessible. *)

val check_access :
  t -> ?fault:Ftrsn_fault.Fault.t -> ?max_steps:int -> target:int -> unit ->
  verdict
(** Both {!check_write} and {!check_read}; the payload is the larger of
    the two unrolling depths. *)
