module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Engine = Ftrsn_access.Engine
module Expr = Ftrsn_boolexpr.Expr
module Solver = Ftrsn_sat.Solver
module Order = Ftrsn_topo.Order

(* Condition under which an interconnect from an element to its consumer is
   sensitized. *)
type cond = C_true | C_sel of int * int  (* mux, input index *)

type t = {
  net : Netlist.t;
  ectx : Engine.ctx;                      (* for the port-masking rule *)
  order : int array;                      (* element topological order *)
  consumers : (int * cond) list array;    (* per element id *)
  drivers : int array;                    (* per segment: driver element *)
  max_hier : int;
}

let create (net : Netlist.t) =
  let n = Netlist.Elt.count net in
  let consumers = Array.make n [] in
  let drivers = Array.make (Netlist.num_segments net) 0 in
  Array.iteri
    (fun i (s : Netlist.segment) ->
      let d = Netlist.Elt.of_node net s.seg_input in
      drivers.(i) <- d;
      consumers.(d) <- (Netlist.Elt.of_seg i, C_true) :: consumers.(d))
    net.segs;
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      Array.iteri
        (fun k inp ->
          let d = Netlist.Elt.of_node net inp in
          consumers.(d) <- (Netlist.Elt.of_mux net m, C_sel (m, k)) :: consumers.(d))
        mx.mux_inputs)
    net.muxes;
  let po_driver = Netlist.Elt.of_node net net.out_src in
  consumers.(po_driver) <- (Netlist.Elt.scan_out, C_true) :: consumers.(po_driver);
  let g = Netlist.element_graph net in
  let order =
    match Order.sort g with
    | Some o -> o
    | None -> invalid_arg "Bmc.create: cyclic netlist"
  in
  { net; ectx = Engine.make_ctx net; order; consumers; drivers;
    max_hier = Netlist.max_hier net }

type verdict = Accessible of int | Inaccessible

(* ---- static fault predicates, aligned with Engine.effects_of_fault ---- *)

type fsum = {
  pi_dead : bool;
  po_dead : bool;
  seg_scan_in : int -> bool;
  seg_scan_out : int -> bool;
  seg_shift : int -> bool;
  seg_sel0 : int -> bool;
  mux_out : int -> bool;
  mux_in : int -> int -> bool;  (* mux, input (classes applied) *)
  locked : int -> int -> bool option;  (* mux, addr bit *)
  pinned : int -> int -> bool option;  (* seg, shadow bit *)
  kill_write : int -> bool;
  kill_read : int -> bool;
}

let no_fault =
  {
    pi_dead = false;
    po_dead = false;
    seg_scan_in = (fun _ -> false);
    seg_scan_out = (fun _ -> false);
    seg_shift = (fun _ -> false);
    seg_sel0 = (fun _ -> false);
    mux_out = (fun _ -> false);
    mux_in = (fun _ _ -> false);
    locked = (fun _ _ -> None);
    pinned = (fun _ _ -> None);
    kill_write = (fun _ -> false);
    kill_read = (fun _ -> false);
  }

let driven_all_tmr (net : Netlist.t) seg bit =
  let driven = ref [] in
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      Array.iter
        (function
          | Netlist.Ctrl_shadow { cseg; cbit } when cseg = seg && cbit = bit ->
              driven := m :: !driven
          | _ -> ())
        mx.mux_addr)
    net.muxes;
  !driven <> []
  && List.for_all (fun m -> net.Netlist.muxes.(m).Netlist.mux_tmr) !driven

let summarize t = function
  | None -> no_fault
  | Some f when Fault.is_masked t.net f -> no_fault
  | Some { Fault.site; stuck } -> (
      let eq2 a b (x, y) = a = x && b = y in
      match site with
      | Fault.Primary_in ->
          if t.net.Netlist.dual_ports then no_fault
          else { no_fault with pi_dead = true }
      | Fault.Primary_out ->
          if t.net.Netlist.dual_ports then no_fault
          else { no_fault with po_dead = true }
      | Fault.Seg_scan_in i ->
          {
            no_fault with
            seg_scan_in = ( = ) i;
            kill_write = ( = ) i;
          }
      | Fault.Seg_scan_out i ->
          { no_fault with seg_scan_out = ( = ) i; kill_read = ( = ) i }
      | Fault.Seg_shift_reg i ->
          {
            no_fault with
            seg_shift = ( = ) i;
            kill_write = ( = ) i;
            kill_read = ( = ) i;
          }
      | Fault.Seg_select i ->
          if stuck then no_fault (* recoverable, as in the engine *)
          else
            (* The segment cannot shift: it is lost itself, and any data
               passing through it freezes. *)
            {
              no_fault with
              seg_sel0 = ( = ) i;
              kill_write = ( = ) i;
              kill_read = ( = ) i;
            }
      | Fault.Seg_capture_en i ->
          if stuck then no_fault else { no_fault with kill_read = ( = ) i }
      | Fault.Seg_update_en i ->
          if stuck then no_fault else { no_fault with kill_write = ( = ) i }
      | Fault.Seg_shadow_reg (i, b) ->
          if driven_all_tmr t.net i b then
            { no_fault with kill_write = ( = ) i }
          else
            {
              no_fault with
              kill_write = ( = ) i;
              pinned = (fun s b' -> if s = i && b' = b then Some stuck else None);
            }
      | Fault.Mux_addr (m, b) ->
          if Engine.port_masked t.ectx m then no_fault
          else
            {
              no_fault with
              locked =
                (fun m' b' -> if eq2 m b (m', b') then Some stuck else None);
            }
      | Fault.Mux_addr_replica _ -> no_fault
      | Fault.Mux_data_in (m, k) ->
          if Engine.port_masked t.ectx m then no_fault
          else
            let k = Netlist.mux_input_class t.net m k in
            {
              no_fault with
              mux_in =
                (fun m' k' ->
                  m = m' && k = Netlist.mux_input_class t.net m' k');
            }
      | Fault.Mux_out m ->
          if Engine.port_masked t.ectx m then no_fault
          else { no_fault with mux_out = ( = ) m })

(* ---- per-step circuit construction ---- *)

type step_exprs = {
  on : Expr.t array;        (* per element: lies on the active path *)
  dirty_in : Expr.t array;  (* per segment: write data corrupted *)
  after : Expr.t array;     (* per element: corruption between its output
                               and the scan-out *)
}

(* Build the circuits of one unrolling step.  [shadow] gives the boolean
   expression of each shadow bit at this step, [primary] of each primary
   control input. *)
let step_circuits t ctx fs ~shadow ~primary =
  let net = t.net in
  let n = Netlist.Elt.count net in
  let bit_expr m b =
    match fs.locked m b with
    | Some v -> Expr.const ctx v
    | None -> (
        match net.Netlist.muxes.(m).Netlist.mux_addr.(b) with
        | Netlist.Ctrl_const c -> Expr.const ctx c
        | Netlist.Ctrl_primary p -> primary p
        | Netlist.Ctrl_shadow { cseg; cbit } -> (
            match fs.pinned cseg cbit with
            | Some v -> Expr.const ctx v
            | None -> shadow cseg cbit))
  in
  let sel_expr m k =
    let width = Array.length net.Netlist.muxes.(m).Netlist.mux_addr in
    let bits =
      List.init width (fun b ->
          let e = bit_expr m b in
          if k land (1 lsl b) <> 0 then e else Expr.not_ ctx e)
    in
    Expr.and_list ctx bits
  in
  let cond_expr = function
    | C_true -> Expr.etrue ctx
    | C_sel (m, k) -> sel_expr m k
  in
  (* on: reverse topological order. *)
  let on = Array.make n (Expr.efalse ctx) in
  on.(Netlist.Elt.scan_out) <- Expr.etrue ctx;
  for idx = Array.length t.order - 1 downto 0 do
    let e = t.order.(idx) in
    if e <> Netlist.Elt.scan_out then
      on.(e) <-
        Expr.or_list ctx
          (List.map
             (fun (c, cond) -> Expr.and_ ctx on.(c) (cond_expr cond))
             t.consumers.(e))
  done;
  (* dirty (write-side), topological order. *)
  let dirty_out = Array.make n (Expr.efalse ctx) in
  let dirty_in = Array.make (Netlist.num_segments net) (Expr.efalse ctx) in
  Array.iter
    (fun e ->
      match Netlist.Elt.to_node net e with
      | Netlist.Scan_in ->
          dirty_out.(e) <- Expr.const ctx fs.pi_dead
      | Netlist.Scan_out -> ()
      | Netlist.Seg i ->
          let din =
            Expr.or_ ctx
              dirty_out.(t.drivers.(i))
              (Expr.const ctx (fs.seg_scan_in i))
          in
          dirty_in.(i) <- din;
          dirty_out.(e) <-
            Expr.or_list ctx
              [
                din;
                Expr.const ctx (fs.seg_shift i);
                Expr.const ctx (fs.seg_scan_out i);
                Expr.const ctx (fs.seg_sel0 i);
              ]
      | Netlist.Mux m ->
          let mx = net.Netlist.muxes.(m) in
          let choices =
            List.init (Array.length mx.mux_inputs) (fun k ->
                let src = Netlist.Elt.of_node net mx.mux_inputs.(k) in
                Expr.and_ ctx (sel_expr m k)
                  (Expr.or_ ctx dirty_out.(src)
                     (Expr.const ctx (fs.mux_in m k))))
          in
          dirty_out.(e) <-
            Expr.or_ ctx (Expr.or_list ctx choices)
              (Expr.const ctx (fs.mux_out m)))
    t.order;
  (* after (read-side), reverse topological order. *)
  let after = Array.make n (Expr.efalse ctx) in
  for idx = Array.length t.order - 1 downto 0 do
    let e = t.order.(idx) in
    if e <> Netlist.Elt.scan_out then
      after.(e) <-
        Expr.or_list ctx
          (List.map
             (fun (c, cond) ->
               let local =
                 match Netlist.Elt.to_node net c with
                 | Netlist.Scan_out -> Expr.const ctx fs.po_dead
                 | Netlist.Seg i ->
                     Expr.const ctx
                       (fs.seg_scan_in i || fs.seg_shift i
                      || fs.seg_scan_out i || fs.seg_sel0 i)
                 | Netlist.Mux m ->
                     let k = match cond with C_sel (_, k) -> k | C_true -> 0 in
                     Expr.const ctx (fs.mux_in m k || fs.mux_out m)
                 | Netlist.Scan_in -> Expr.efalse ctx
               in
               (* Damage counts only along the branch the active path
                  actually takes: the consumer must be on the path and the
                  interconnect sensitized. *)
               Expr.and_list ctx
                 [ on.(c); cond_expr cond; Expr.or_ ctx local after.(c) ])
             t.consumers.(e))
  done;
  { on; dirty_in; after }

(* ---- unrolled check ---- *)

type goal = G_write | G_read

let check_goal ?(want_witness = false) t fault goal ~max_steps ~target =
  ignore want_witness;
  let net = t.net in
  let fs = summarize t fault in
  let statically_dead =
    match goal with
    | G_write -> fs.kill_write target || fs.pi_dead
    | G_read -> fs.kill_read target || fs.po_dead
  in
  if statically_dead then (Inaccessible, [])
  else begin
    let result = ref None in
    let n = ref 0 in
    while !result = None && !n <= max_steps do
      let steps = !n in
      let ctx = Expr.create () in
      (* Shadow variables per step; step 0 is the reset constants. *)
      let nsegs = Netlist.num_segments net in
      let shadow_vars =
        Array.init (steps + 1) (fun tstep ->
            Array.init nsegs (fun s ->
                Array.init net.Netlist.segs.(s).Netlist.seg_shadow (fun b ->
                    if tstep = 0 then
                      Expr.const ctx net.Netlist.segs.(s).Netlist.seg_reset.(b)
                    else Expr.fresh_var ctx)))
      in
      let primaries = Hashtbl.create 8 in
      let primary_var tstep p =
        match Hashtbl.find_opt primaries (tstep, p) with
        | Some v -> v
        | None ->
            let v = Expr.fresh_var ctx in
            Hashtbl.add primaries (tstep, p) v;
            v
      in
      let circuits =
        Array.init (steps + 1) (fun tstep ->
            step_circuits t ctx fs
              ~shadow:(fun s b -> shadow_vars.(tstep).(s).(b))
              ~primary:(primary_var tstep))
      in
      (* Transition relation between consecutive steps (eq. 1 extended):
         a shadow bit changes only when its segment is on the active path
         with clean write data; corrupted writes are not relied upon. *)
      let assertions = ref [] in
      for tstep = 0 to steps - 1 do
        let c = circuits.(tstep) in
        for s = 0 to nsegs - 1 do
          for b = 0 to net.Netlist.segs.(s).Netlist.seg_shadow - 1 do
            let cur = shadow_vars.(tstep).(s).(b) in
            let next = shadow_vars.(tstep + 1).(s).(b) in
            let keep = Expr.iff_ ctx next cur in
            let writable =
              if fs.kill_write s then Expr.efalse ctx
              else
                Expr.and_ ctx
                  c.on.(Netlist.Elt.of_seg s)
                  (Expr.not_ ctx c.dirty_in.(s))
            in
            assertions := Expr.or_ ctx writable keep :: !assertions
          done
        done
      done;
      (* Goal at the final step. *)
      let cfin = circuits.(steps) in
      let goal_expr =
        match goal with
        | G_write ->
            Expr.and_ ctx
              cfin.on.(Netlist.Elt.of_seg target)
              (Expr.not_ ctx cfin.dirty_in.(target))
        | G_read ->
            Expr.and_ ctx
              cfin.on.(Netlist.Elt.of_seg target)
              (Expr.not_ ctx cfin.after.(Netlist.Elt.of_seg target))
      in
      assertions := goal_expr :: !assertions;
      let cnf = Expr.Cnf.of_exprs ctx !assertions in
      let solver = Solver.create () in
      Solver.ensure_vars solver cnf.Expr.Cnf.num_sat_vars;
      List.iter (Solver.add_clause solver) cnf.Expr.Cnf.clauses;
      (match Solver.solve solver with
      | Solver.Sat ->
          let witness =
            if not want_witness then []
            else
              List.init (steps + 1) (fun tstep ->
                  let shadows =
                    Array.init nsegs (fun s ->
                        Array.init
                          net.Netlist.segs.(s).Netlist.seg_shadow
                          (fun bq ->
                            let e = shadow_vars.(tstep).(s).(bq) in
                            match Ftrsn_boolexpr.Expr.var_index e with
                            | Some i -> Solver.value solver (i + 1)
                            | None -> Ftrsn_boolexpr.Expr.is_true e))
                  in
                  let primaries =
                    Hashtbl.fold
                      (fun (ts, p) e acc ->
                        if ts <> tstep then acc
                        else
                          match Ftrsn_boolexpr.Expr.var_index e with
                          | Some i -> (p, Solver.value solver (i + 1)) :: acc
                          | None -> acc)
                      primaries []
                  in
                  { Ftrsn_rsn.Config.shadows; primaries })
          in
          result := Some (Accessible steps, witness)
      | Solver.Unsat -> ());
      incr n
    done;
    match !result with Some r -> r | None -> (Inaccessible, [])
  end

let default_steps t = t.max_hier + 2

let check_write t ?fault ?max_steps ~target () =
  let max_steps = Option.value ~default:(default_steps t) max_steps in
  fst (check_goal t fault G_write ~max_steps ~target)

let check_read t ?fault ?max_steps ~target () =
  let max_steps = Option.value ~default:(default_steps t) max_steps in
  fst (check_goal t fault G_read ~max_steps ~target)

let write_witness t ?fault ?max_steps ~target () =
  let max_steps = Option.value ~default:(default_steps t) max_steps in
  match check_goal ~want_witness:true t fault G_write ~max_steps ~target with
  | Accessible n, configs -> Some (n, configs)
  | Inaccessible, _ -> None

let check_access t ?fault ?max_steps ~target () =
  match check_write t ?fault ?max_steps ~target () with
  | Inaccessible -> Inaccessible
  | Accessible w -> (
      match check_read t ?fault ?max_steps ~target () with
      | Inaccessible -> Inaccessible
      | Accessible r -> Accessible (max w r))
