module Netlist = Ftrsn_rsn.Netlist
module Fault = Ftrsn_fault.Fault
module Engine = Ftrsn_access.Engine
module Expr = Ftrsn_boolexpr.Expr
module Solver = Ftrsn_sat.Solver
module Checker = Ftrsn_sat.Checker
module Order = Ftrsn_topo.Order

(* Condition under which an interconnect from an element to its consumer is
   sensitized. *)
type cond = C_true | C_sel of int * int  (* mux, input index *)

(* ---- static fault predicates, aligned with Engine.effects_of_fault ---- *)

type fsum = {
  pi_dead : bool;
  po_dead : bool;
  seg_scan_in : int -> bool;
  seg_scan_out : int -> bool;
  seg_shift : int -> bool;
  seg_sel0 : int -> bool;
  mux_out : int -> bool;
  mux_in : int -> int -> bool;  (* mux, input (classes applied) *)
  locked : int -> int -> bool option;  (* mux, addr bit *)
  pinned : int -> int -> bool option;  (* seg, shadow bit *)
  bit_conflict : int -> int -> bool;
      (* mux, addr bit: the effective control carries contradictory
         constants (locks to both values, or — when unlocked — the driving
         shadow bit pinned both ways).  Only multi-fault summaries can
         conflict; the mux is then unsensitizable, matching the structural
         engine's order-independent pin/lock checks. *)
  kill_write : int -> bool;
  kill_read : int -> bool;
  glitch : int -> int -> bool option;
      (* seg, shadow bit: transiently upset INITIAL value (transient
         fault model).  Only the step-0 state is affected: the unrolling
         starts from reset-with-these-bits-flipped, and the bits stay
         rewritable — the verdict is "does a reconfiguration sequence
         recover access after the glitch", the fault-active/fault-cleared
         phase split of the transient model. *)
}

(* Per-step circuits of one unrolling step.  [dirty_out] is only read
   when a fault encoding rebuilds its tainted cone on top of these
   circuits (see {!step_taint}); queries use [on]/[dirty_in]/[after]. *)
type step_exprs = {
  on : Expr.t array;        (* per element: lies on the active path *)
  dirty_in : Expr.t array;  (* per segment: write data corrupted *)
  dirty_out : Expr.t array; (* per element: corruption leaving it *)
  after : Expr.t array;     (* per element: corruption between its output
                               and the scan-out *)
}

(* Fault-cone taint: which per-step expressions can differ from the
   fault-free skeleton's.  The flags are step-independent — every
   unrolling step reads the same shared shadow/primary input expressions —
   so one set per fault serves all depths.  Conservative over-
   approximation: a flagged element is recomputed (and hash-conses onto
   the skeleton wherever it happens to be equal); an unflagged element
   provably reconstructs the identical expression node, so the skeleton's
   is reused without traversal.  Computed by {!step_taint}. *)
type taint = {
  t_on : bool array;  (* indexed by element: on-path cone may differ *)
  t_dirty : bool array;  (* indexed by element: write-corruption cone *)
  t_dirty_in : bool array;  (* indexed by segment *)
  t_after : bool array;  (* indexed by element: read-corruption cone *)
  t_any : bool;  (* false: the fault never perturbs any step circuit *)
}

type verdict = Accessible of int | Inaccessible

type goal = G_write | G_read

(* The static model [t] and the incremental [session] are mutually
   recursive: a session holds the model it encodes, and the model caches a
   default session for the thin one-shot-style wrappers. *)
type t = {
  net : Netlist.t;
  ectx : Engine.ctx;                      (* for the port-masking rule *)
  order : int array;                      (* element topological order *)
  consumers : (int * cond) list array;    (* per element id *)
  drivers : int array;                    (* per segment: driver element *)
  max_hier : int;
  mutable cached : session option;        (* default session (wrappers) *)
}

and session = {
  model : t;
  solver : Solver.t;
  em : Expr.Cnf.emitter;
  sctx : Expr.ctx;
  (* Shared unrolling variables, grown monotonically with depth and reused
     by every fault and every query: shadows.(step).(seg).(bit), and one
     variable per (step, primary input). *)
  mutable shadows : Expr.t array array array;
  sprimaries : (int * string, Expr.t) Hashtbl.t;
  (* Fault-free skeleton: circuits per step, encoded permanently
     (ungrouped) so every fault's cones hash-cons onto them and only the
     genuinely perturbed deltas live and die with a fault's group. *)
  base_fs : fsum;
  mutable base_circuits : step_exprs array;
  (* Fault SETS are the encoding unit: [[]] is fault-free, singletons are
     the classic single-fault queries, two-element lists the double-fault
     sweep.  List order is the caller's; the metric's pair sweep always
     passes [rep_i; rep_j] with i < j, so keys stay canonical. *)
  fenc : (Fault.t list, fault_enc) Hashtbl.t;
  mutable active : Fault.t list option;  (* last queried fault set *)
  mutable queries : int;
  (* newest first: (emitted, reused, conflicts, sat) per query *)
  mutable qlog : (int * int * int * bool) list;
  (* fault-free verdicts of the last base-target list queried through
     [check_targets_base]; verdicts are deterministic per model, so a
     long-lived (pooled) session answers repeated baseline sweeps from
     this cache instead of re-solving one query per segment *)
  mutable base_cache : (int list * verdict array) option;
  (* Inprocessing schedule: solver conflict/propagation counts at the
     last simplification pass; a new pass runs between query batches
     once enough search has happened since.  The conflict gap grows
     geometrically — early passes catch the easy simplifications, and a
     session that has already been simplified pays ever less often. *)
  mutable ip_conflicts : int;
  mutable ip_props : int;
  mutable ip_gap : int;
  cert : cert_state option;  (* Some = certified mode *)
}

(* Inline certification: the independent RUP checker mirrors the solver's
   proof events, and every Unsat verdict is certified on the spot by
   checking that the negated failed-assumption set is RUP. *)
and cert_state = {
  cc : Checker.t;
  mutable cc_inputs : int;   (* problem clauses mirrored *)
  mutable cc_lemmas : int;   (* derivations verified *)
  mutable cc_deletes : int;  (* deletion events forwarded *)
  mutable cc_unsat : int;    (* Unsat verdicts certified *)
  mutable cc_time : float;   (* CPU seconds spent in the checker *)
}

and fault_enc = {
  fe_act : int;                       (* activation gating this fault *)
  fe_fs : fsum;
  fe_taint : taint;                   (* cone that differs from the base *)
  mutable fe_circuits : step_exprs array;  (* per step, grown *)
  mutable fe_depth : int;             (* transitions emitted for steps
                                         [0 .. fe_depth - 1] *)
  fe_goals : (bool * int * int, int) Hashtbl.t;
      (* (is_write, target, depth) -> goal activation *)
}

let create (net : Netlist.t) =
  let n = Netlist.Elt.count net in
  let consumers = Array.make n [] in
  let drivers = Array.make (Netlist.num_segments net) 0 in
  Array.iteri
    (fun i (s : Netlist.segment) ->
      let d = Netlist.Elt.of_node net s.seg_input in
      drivers.(i) <- d;
      consumers.(d) <- (Netlist.Elt.of_seg i, C_true) :: consumers.(d))
    net.segs;
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      Array.iteri
        (fun k inp ->
          let d = Netlist.Elt.of_node net inp in
          consumers.(d) <- (Netlist.Elt.of_mux net m, C_sel (m, k)) :: consumers.(d))
        mx.mux_inputs)
    net.muxes;
  let po_driver = Netlist.Elt.of_node net net.out_src in
  consumers.(po_driver) <- (Netlist.Elt.scan_out, C_true) :: consumers.(po_driver);
  let g = Netlist.element_graph net in
  let order =
    match Order.sort g with
    | Some o -> o
    | None -> invalid_arg "Bmc.create: cyclic netlist"
  in
  { net; ectx = Engine.make_ctx net; order; consumers; drivers;
    max_hier = Netlist.max_hier net; cached = None }

let no_fault =
  {
    pi_dead = false;
    po_dead = false;
    seg_scan_in = (fun _ -> false);
    seg_scan_out = (fun _ -> false);
    seg_shift = (fun _ -> false);
    seg_sel0 = (fun _ -> false);
    mux_out = (fun _ -> false);
    mux_in = (fun _ _ -> false);
    locked = (fun _ _ -> None);
    pinned = (fun _ _ -> None);
    bit_conflict = (fun _ _ -> false);
    kill_write = (fun _ -> false);
    kill_read = (fun _ -> false);
    glitch = (fun _ _ -> None);
  }

(* The predicates are derived from the fault's canonical semantic summary
   ({!Fault.summarize}), the single place the stuck-at case analysis
   lives.  A hard-blocked segment (select stuck-at-0) cannot shift: it is
   lost itself — the engine encodes this as an unreachable vertex, the
   BMC as kill_write/kill_read plus the seg_sel0 path predicate. *)
let of_summary (net : Netlist.t) (sm : Fault.summary) =
  if Fault.summary_benign sm then no_fault
  else
    let mem l i = List.mem i l in
    {
      pi_dead = sm.Fault.sm_pi_dead;
      po_dead = sm.Fault.sm_po_dead;
      seg_scan_in = mem sm.Fault.sm_corrupt_in;
      seg_scan_out = mem sm.Fault.sm_corrupt_out;
      seg_shift = mem sm.Fault.sm_corrupt_vertex;
      seg_sel0 = mem sm.Fault.sm_hard_block;
      mux_out = mem sm.Fault.sm_mux_out;
      mux_in =
        (fun m k ->
          let kc = Netlist.mux_input_class net m k in
          List.exists (fun (m', k') -> m' = m && k' = kc) sm.Fault.sm_mux_in);
      locked =
        (fun m b ->
          List.find_map
            (fun (m', b', v) -> if m' = m && b' = b then Some v else None)
            sm.Fault.sm_locked_addr);
      pinned =
        (fun s b ->
          List.find_map
            (fun (s', b', v) -> if s' = s && b' = b then Some v else None)
            sm.Fault.sm_stuck_shadow);
      bit_conflict =
        (fun m b ->
          let values sel l =
            List.filter_map sel l |> fun vs ->
            (List.mem true vs, List.mem false vs)
          in
          let lock_true, lock_false =
            values
              (fun (m', b', v) -> if m' = m && b' = b then Some v else None)
              sm.Fault.sm_locked_addr
          in
          if lock_true && lock_false then true
          else if lock_true || lock_false then false
            (* a single lock dominates any pin, as in the structural
               engine's locked_right override *)
          else
            match net.Netlist.muxes.(m).Netlist.mux_addr.(b) with
            | Netlist.Ctrl_shadow { cseg; cbit } ->
                let pin_true, pin_false =
                  values
                    (fun (s', b', v) ->
                      if s' = cseg && b' = cbit then Some v else None)
                    sm.Fault.sm_stuck_shadow
                in
                pin_true && pin_false
            | _ -> false);
      kill_write =
        (fun i -> mem sm.Fault.sm_kill_write i || mem sm.Fault.sm_hard_block i);
      kill_read =
        (fun i -> mem sm.Fault.sm_kill_read i || mem sm.Fault.sm_hard_block i);
      glitch =
        (fun s b ->
          List.find_map
            (fun (s', b', v) -> if s' = s && b' = b then Some v else None)
            sm.Fault.sm_glitch_shadow);
    }

(* Predicates of a SET of simultaneous faults ([[]] = fault-free): the
   canonical summaries merge via {!Fault.summary_union} before compiling,
   so both engines derive multi-fault effects from the same merged
   summary. *)
let summarize_faults t faults =
  match faults with
  | [] -> no_fault
  | _ ->
      of_summary t.net
        (List.fold_left
           (fun acc f ->
             Fault.summary_union acc
               (Fault.summarize ~port_masked:(Engine.port_masked t.ectx) t.net
                  f))
           Fault.empty_summary faults)

(* ---- per-step circuit construction ---- *)

let step_taint t fs =
  let net = t.net in
  let n = Netlist.Elt.count net in
  (* A mux select cone differs when any address bit is locked, pinned
     (through its controlling shadow bit), or in conflict. *)
  let sel_taint = Array.make (Array.length net.Netlist.muxes) false in
  Array.iteri
    (fun m (mx : Netlist.mux) ->
      let width = Array.length mx.mux_addr in
      let rec diff b =
        b < width
        && (fs.bit_conflict m b
           || fs.locked m b <> None
           || (match mx.mux_addr.(b) with
              | Netlist.Ctrl_shadow { cseg; cbit } ->
                  (* A glitch perturbs only the step-0 circuits, but the
                     taint flags are per fault, not per step: flagging the
                     cone for every step is sound (steps >= 1 recompute
                     from the same shared variables and hash-cons onto
                     the identical skeleton nodes). *)
                  fs.pinned cseg cbit <> None || fs.glitch cseg cbit <> None
              | _ -> false)
           || diff (b + 1))
      in
      sel_taint.(m) <- diff 0)
    net.Netlist.muxes;
  let cond_taint = function
    | C_true -> false
    | C_sel (m, _) -> sel_taint.(m)
  in
  (* on: flows from scan-out toward producers (reverse topological). *)
  let t_on = Array.make n false in
  for idx = Array.length t.order - 1 downto 0 do
    let e = t.order.(idx) in
    if e <> Netlist.Elt.scan_out then
      t_on.(e) <-
        List.exists
          (fun (c, cond) -> t_on.(c) || cond_taint cond)
          t.consumers.(e)
  done;
  (* dirty: flows from scan-in toward consumers (topological). *)
  let t_dirty = Array.make n false in
  let t_dirty_in = Array.make (Netlist.num_segments net) false in
  Array.iter
    (fun e ->
      match Netlist.Elt.to_node net e with
      | Netlist.Scan_in -> t_dirty.(e) <- fs.pi_dead
      | Netlist.Scan_out -> ()
      | Netlist.Seg i ->
          t_dirty_in.(i) <- t_dirty.(t.drivers.(i)) || fs.seg_scan_in i;
          t_dirty.(e) <-
            t_dirty_in.(i) || fs.seg_shift i || fs.seg_scan_out i
            || fs.seg_sel0 i
      | Netlist.Mux m ->
          let mx = net.Netlist.muxes.(m) in
          let rec diff k =
            k < Array.length mx.mux_inputs
            && (t_dirty.(Netlist.Elt.of_node net mx.mux_inputs.(k))
               || fs.mux_in m k
               || diff (k + 1))
          in
          t_dirty.(e) <- sel_taint.(m) || fs.mux_out m || diff 0)
    t.order;
  (* after: backward again, but the damage constants live on the consumer
     side of each interconnect, and the path condition reads [on]. *)
  let local_taint c cond =
    match Netlist.Elt.to_node net c with
    | Netlist.Scan_out -> fs.po_dead
    | Netlist.Seg i ->
        fs.seg_scan_in i || fs.seg_shift i || fs.seg_scan_out i
        || fs.seg_sel0 i
    | Netlist.Mux m ->
        let k = match cond with C_sel (_, k) -> k | C_true -> 0 in
        fs.mux_in m k || fs.mux_out m
    | Netlist.Scan_in -> false
  in
  let t_after = Array.make n false in
  for idx = Array.length t.order - 1 downto 0 do
    let e = t.order.(idx) in
    if e <> Netlist.Elt.scan_out then
      t_after.(e) <-
        List.exists
          (fun (c, cond) ->
            t_on.(c) || t_after.(c) || cond_taint cond || local_taint c cond)
          t.consumers.(e)
  done;
  let any = Array.exists Fun.id in
  {
    t_on;
    t_dirty;
    t_dirty_in;
    t_after;
    t_any = any t_on || any t_dirty || any t_dirty_in || any t_after;
  }

(* Build the circuits of one unrolling step.  [shadow] gives the boolean
   expression of each shadow bit at this step, [primary] of each primary
   control input.  With [reuse], only the expressions flagged by the
   taint are rebuilt; the rest are copied from the fault-free skeleton's
   circuits for the same step (provably the identical hash-consed node,
   see {!step_taint}). *)
let step_circuits t ctx fs ?reuse ~shadow ~primary () =
  let net = t.net in
  let n = Netlist.Elt.count net in
  let bit_expr m b =
    match fs.locked m b with
    | Some v -> Expr.const ctx v
    | None -> (
        match net.Netlist.muxes.(m).Netlist.mux_addr.(b) with
        | Netlist.Ctrl_const c -> Expr.const ctx c
        | Netlist.Ctrl_primary p -> primary p
        | Netlist.Ctrl_shadow { cseg; cbit } -> (
            match fs.pinned cseg cbit with
            | Some v -> Expr.const ctx v
            | None -> shadow cseg cbit))
  in
  let sel_expr m k =
    let width = Array.length net.Netlist.muxes.(m).Netlist.mux_addr in
    let rec conflicted b = b < width && (fs.bit_conflict m b || conflicted (b + 1)) in
    if conflicted 0 then Expr.efalse ctx
    else
      let bits =
        List.init width (fun b ->
            let e = bit_expr m b in
            if k land (1 lsl b) <> 0 then e else Expr.not_ ctx e)
      in
      Expr.and_list ctx bits
  in
  let cond_expr = function
    | C_true -> Expr.etrue ctx
    | C_sel (m, k) -> sel_expr m k
  in
  let need_on, need_dirty, need_dirty_in, need_after =
    match reuse with
    | None ->
        let all _ = true in
        (all, all, all, all)
    | Some (tt, _) ->
        ( (fun e -> tt.t_on.(e)),
          (fun e -> tt.t_dirty.(e)),
          (fun s -> tt.t_dirty_in.(s)),
          (fun e -> tt.t_after.(e)) )
  in
  (* on: reverse topological order. *)
  let on = Array.make n (Expr.efalse ctx) in
  (match reuse with Some (_, b) -> Array.blit b.on 0 on 0 n | None -> ());
  on.(Netlist.Elt.scan_out) <- Expr.etrue ctx;
  for idx = Array.length t.order - 1 downto 0 do
    let e = t.order.(idx) in
    if e <> Netlist.Elt.scan_out && need_on e then
      on.(e) <-
        Expr.or_list ctx
          (List.map
             (fun (c, cond) -> Expr.and_ ctx on.(c) (cond_expr cond))
             t.consumers.(e))
  done;
  (* dirty (write-side), topological order. *)
  let dirty_out = Array.make n (Expr.efalse ctx) in
  let dirty_in = Array.make (Netlist.num_segments net) (Expr.efalse ctx) in
  (match reuse with
  | Some (_, b) ->
      Array.blit b.dirty_in 0 dirty_in 0 (Array.length dirty_in);
      Array.blit b.dirty_out 0 dirty_out 0 n
  | None -> ());
  Array.iter
    (fun e ->
      match Netlist.Elt.to_node net e with
      | Netlist.Scan_in ->
          if need_dirty e then dirty_out.(e) <- Expr.const ctx fs.pi_dead
      | Netlist.Scan_out -> ()
      | Netlist.Seg i ->
          if need_dirty e || need_dirty_in i then begin
            let din =
              Expr.or_ ctx
                dirty_out.(t.drivers.(i))
                (Expr.const ctx (fs.seg_scan_in i))
            in
            dirty_in.(i) <- din;
            dirty_out.(e) <-
              Expr.or_list ctx
                [
                  din;
                  Expr.const ctx (fs.seg_shift i);
                  Expr.const ctx (fs.seg_scan_out i);
                  Expr.const ctx (fs.seg_sel0 i);
                ]
          end
      | Netlist.Mux m ->
          if need_dirty e then begin
            let mx = net.Netlist.muxes.(m) in
            let choices =
              List.init (Array.length mx.mux_inputs) (fun k ->
                  let src = Netlist.Elt.of_node net mx.mux_inputs.(k) in
                  Expr.and_ ctx (sel_expr m k)
                    (Expr.or_ ctx dirty_out.(src)
                       (Expr.const ctx (fs.mux_in m k))))
            in
            dirty_out.(e) <-
              Expr.or_ ctx (Expr.or_list ctx choices)
                (Expr.const ctx (fs.mux_out m))
          end)
    t.order;
  (* after (read-side), reverse topological order. *)
  let after = Array.make n (Expr.efalse ctx) in
  (match reuse with
  | Some (_, b) -> Array.blit b.after 0 after 0 n
  | None -> ());
  for idx = Array.length t.order - 1 downto 0 do
    let e = t.order.(idx) in
    if e <> Netlist.Elt.scan_out && need_after e then
      after.(e) <-
        Expr.or_list ctx
          (List.map
             (fun (c, cond) ->
               let local =
                 match Netlist.Elt.to_node net c with
                 | Netlist.Scan_out -> Expr.const ctx fs.po_dead
                 | Netlist.Seg i ->
                     Expr.const ctx
                       (fs.seg_scan_in i || fs.seg_shift i
                      || fs.seg_scan_out i || fs.seg_sel0 i)
                 | Netlist.Mux m ->
                     let k = match cond with C_sel (_, k) -> k | C_true -> 0 in
                     Expr.const ctx (fs.mux_in m k || fs.mux_out m)
                 | Netlist.Scan_in -> Expr.efalse ctx
               in
               (* Damage counts only along the branch the active path
                  actually takes: the consumer must be on the path and the
                  interconnect sensitized. *)
               Expr.and_list ctx
                 [ on.(c); cond_expr cond; Expr.or_ ctx local after.(c) ])
             t.consumers.(e))
  done;
  { on; dirty_in; dirty_out; after }

let default_steps t = t.max_hier + 2

(* ---- incremental session ---- *)

type model = t

module Session = struct
  module Cnf = Expr.Cnf

  type t = session

  type query_stat = {
    q_emitted : int;
    q_reused : int;
    q_conflicts : int;
    q_sat : bool;
  }

  type cert_stats = {
    cert_unsat : int;
    cert_lemmas : int;
    cert_inputs : int;
    cert_deletes : int;
    cert_time : float;
  }

  type stats = {
    queries : int;
    clauses_emitted : int;
    nodes_reused : int;
    conflicts : int;
    decisions : int;
    propagations : int;
    restarts : int;
    learnt_lits : int;
    minimized_lits : int;
    reductions : int;
    learnt_db : int;
    subsumed : int;
    strengthened_lits : int;
    eliminated_vars : int;
    vivified_lits : int;
    simp_passes : int;
    per_query : query_stat list;
    cert : cert_stats option;
  }

  exception Certification_failed of string

  let create ?(certify = false) (model : model) =
    let solver = Solver.create () in
    let cert =
      if not certify then None
      else begin
        let cs =
          { cc = Checker.create (); cc_inputs = 0; cc_lemmas = 0;
            cc_deletes = 0; cc_unsat = 0; cc_time = 0.0 }
        in
        (* Only RUP verification is timed: [Sys.time] is a real syscall
           (~250 ns here), and wrapping the thousands of cheap mirror /
           delete events measurably slowed the certified sweeps — the
           timer would have cost more than the work it measured. *)
        Solver.set_proof_sink solver
          (Some
             (fun ev ->
               match ev with
               | Solver.P_input c ->
                   cs.cc_inputs <- cs.cc_inputs + 1;
                   Checker.add_clause cs.cc c
               | Solver.P_add c -> (
                   cs.cc_lemmas <- cs.cc_lemmas + 1;
                   let t0 = Sys.time () in
                   let r = Checker.add_lemma cs.cc c in
                   cs.cc_time <- cs.cc_time +. (Sys.time () -. t0);
                   match r with
                   | Ok () -> ()
                   | Error e ->
                       raise
                         (Certification_failed
                            ("Bmc.Session: proof rejected: " ^ e)))
               | Solver.P_delete c ->
                   cs.cc_deletes <- cs.cc_deletes + 1;
                   Checker.delete_clause cs.cc c));
        Some cs
      end
    in
    let em =
      Cnf.make_emitter
        {
          Cnf.fresh_var = (fun () -> Solver.new_var solver);
          add_clause =
            (fun under c ->
              match under with
              | Some act -> Solver.add_clause_under solver act c
              | None -> Solver.add_clause solver c);
        }
    in
    {
      model;
      solver;
      em;
      sctx = Expr.create ();
      shadows = [||];
      sprimaries = Hashtbl.create 64;
      base_fs = summarize_faults model [];
      base_circuits = [||];
      fenc = Hashtbl.create 16;
      active = None;
      queries = 0;
      qlog = [];
      base_cache = None;
      ip_conflicts = 0;
      ip_props = 0;
      ip_gap = 2_000;
      cert;
    }

  let model sess = sess.model
  let certified (sess : t) = sess.cert <> None

  (* Certify one Unsat verdict: the negation of the failed-assumption set
     is the final clause of this query's proof — it must be derivable from
     the logged events by reverse unit propagation alone. *)
  let certify_unsat (sess : t) =
    match sess.cert with
    | None -> ()
    | Some cs ->
        let t0 = Sys.time () in
        let final =
          List.rev_map (fun l -> -l)
            (Solver.failed_assumptions sess.solver)
        in
        let ok = Checker.check_rup cs.cc final in
        cs.cc_time <- cs.cc_time +. (Sys.time () -. t0);
        if not ok then
          raise
            (Certification_failed
               (Printf.sprintf
                  "Bmc.Session: Unsat verdict not RUP-certifiable \
                   (final clause [%s])"
                  (String.concat " " (List.map string_of_int final))));
        cs.cc_unsat <- cs.cc_unsat + 1

  (* Shared step variables, allocated once and reused by every fault. *)
  let ensure_steps sess tstep =
    while Array.length sess.shadows <= tstep do
      let net = sess.model.net in
      let t0 = Array.length sess.shadows in
      let arr =
        Array.init (Netlist.num_segments net) (fun s ->
            Array.init net.Netlist.segs.(s).Netlist.seg_shadow (fun b ->
                if t0 = 0 then
                  Expr.const sess.sctx net.Netlist.segs.(s).Netlist.seg_reset.(b)
                else Expr.fresh_var sess.sctx))
      in
      sess.shadows <- Array.append sess.shadows [| arr |]
    done

  let primary_var sess tstep p =
    match Hashtbl.find_opt sess.sprimaries (tstep, p) with
    | Some v -> v
    | None ->
        let v = Expr.fresh_var sess.sctx in
        Hashtbl.add sess.sprimaries (tstep, p) v;
        v

  (* Retire a fault's whole clause group: hard-assert the negations of its
     activation and every goal activation.  The gated clauses become inert
     forever — a retired fault is re-encoded from scratch (fresh
     activation) if it is ever queried again — and the solver deletes each
     group in O(group size), so sequential sweeps over a fault universe
     do not accumulate dead clauses in the watch lists. *)
  let retire_enc sess fe =
    Solver.retire_activation sess.solver fe.fe_act;
    Hashtbl.iter
      (fun _ g -> Solver.retire_activation sess.solver g)
      fe.fe_goals;
    (* The fault's Tseitin definitions died with its clause group; tell
       the emitter so shared cones get re-encoded if a later fault's
       circuits hash-cons onto them. *)
    Cnf.retire_owner sess.em fe.fe_act

  let retire_faults sess faults =
    match Hashtbl.find_opt sess.fenc faults with
    | Some fe ->
        retire_enc sess fe;
        Hashtbl.remove sess.fenc faults;
        if sess.active = Some faults then sess.active <- None
    | None -> ()

  let retire_fault sess fault = retire_faults sess (Option.to_list fault)

  (* The per-fault-set encoding.  Switching to a different set retires the
     previous one, so sequential sweeps over a fault universe keep the
     solver's live clause set bounded by one set's encoding (plus the
     Tseitin cones, which are shared across faults by hash-consing and by
     the emitter memo). *)
  let enc sess faults =
    (match sess.active with
    | Some prev when prev <> faults -> retire_faults sess prev
    | _ -> ());
    sess.active <- Some faults;
    match Hashtbl.find_opt sess.fenc faults with
    | Some fe -> fe
    | None ->
        let fs = summarize_faults sess.model faults in
        let fe =
          {
            fe_act = Solver.new_activation sess.solver;
            fe_fs = fs;
            fe_taint = step_taint sess.model fs;
            fe_circuits = [||];
            fe_depth = 0;
            fe_goals = Hashtbl.create 8;
          }
        in
        Hashtbl.add sess.fenc faults fe;
        fe

  let base_circuits_at sess tstep =
    while Array.length sess.base_circuits <= tstep do
      let t0 = Array.length sess.base_circuits in
      ensure_steps sess t0;
      let sh = sess.shadows.(t0) in
      let c =
        step_circuits sess.model sess.sctx sess.base_fs
          ~shadow:(fun s b -> sh.(s).(b))
          ~primary:(primary_var sess t0) ()
      in
      sess.base_circuits <- Array.append sess.base_circuits [| c |]
    done;
    sess.base_circuits.(tstep)

  (* A fault's circuits are rebuilt only inside its taint cone, on top of
     the fault-free skeleton's circuits for the same step; a fault whose
     cone is empty (a benign fault set) shares the skeleton outright. *)
  let circuits_at sess fe tstep =
    while Array.length fe.fe_circuits <= tstep do
      let t0 = Array.length fe.fe_circuits in
      let base = base_circuits_at sess t0 in
      let c =
        if not fe.fe_taint.t_any then base
        else begin
          let sh = sess.shadows.(t0) in
          (* Transient faults start from the glitched state: the step-0
             circuits read the upset constants instead of the shared
             reset constants; every later step reads the shared
             variables unchanged (the glitch has cleared — recovery is
             an ordinary fault-free reconfiguration). *)
          let shadow s b =
            if t0 = 0 then
              match fe.fe_fs.glitch s b with
              | Some v -> Expr.const sess.sctx v
              | None -> sh.(s).(b)
            else sh.(s).(b)
          in
          step_circuits sess.model sess.sctx fe.fe_fs
            ~reuse:(fe.fe_taint, base)
            ~shadow
            ~primary:(primary_var sess t0) ()
        end
      in
      fe.fe_circuits <- Array.append fe.fe_circuits [| c |]
    done;
    fe.fe_circuits.(tstep)

  (* Transition relation between consecutive steps (eq. 1 extended): a
     shadow bit changes only when its segment is on the active path with
     clean write data.  Emitted once per fault and depth, gated by the
     fault's activation, and grown monotonically — transitions for steps
     beyond a query's depth are harmless (any prefix extends by keeping
     every shadow bit). *)
  let ensure_transitions sess fe depth =
    let net = sess.model.net in
    let nsegs = Netlist.num_segments net in
    let writable_of fs (c : step_exprs) s =
      if fs.kill_write s then Expr.efalse sess.sctx
      else
        Expr.and_ sess.sctx
          c.on.(Netlist.Elt.of_seg s)
          (Expr.not_ sess.sctx c.dirty_in.(s))
    in
    while fe.fe_depth < depth do
      let tstep = fe.fe_depth in
      let c = circuits_at sess fe tstep in
      let bc = base_circuits_at sess tstep in
      ensure_steps sess (tstep + 1);
      let cur = sess.shadows.(tstep) and next = sess.shadows.(tstep + 1) in
      for s = 0 to nsegs - 1 do
        for b = 0 to net.Netlist.segs.(s).Netlist.seg_shadow - 1 do
          let keep = Expr.iff_ sess.sctx next.(s).(b) cur.(s).(b) in
          (* Fault-independent skeleton — the keep cone and the fault-free
             transition cone — is encoded permanently (ungrouped), so
             every fault's cones hash-cons onto it.  Only the perturbed
             delta of this fault's transition is gated by (and retired
             with) the fault's clause group. *)
          ignore
            (Cnf.lit sess.em
               (Expr.or_ sess.sctx (writable_of sess.base_fs bc s) keep));
          (* A glitched bit's step-0 value is the upset constant, not the
             shared reset constant: substitute it in this fault's gated
             keep (the ungrouped skeleton literal above is a Tseitin
             definition only — it asserts nothing). *)
          let keep_f =
            if tstep = 0 then
              match fe.fe_fs.glitch s b with
              | Some v ->
                  Expr.iff_ sess.sctx next.(s).(b) (Expr.const sess.sctx v)
              | None -> keep
            else keep
          in
          let l =
            Cnf.lit ~under:fe.fe_act sess.em
              (Expr.or_ sess.sctx (writable_of fe.fe_fs c s) keep_f)
          in
          Cnf.emit_clause ~under:fe.fe_act sess.em [ l ]
        done
      done;
      fe.fe_depth <- tstep + 1
    done

  let goal_act sess fe goal target depth =
    let key = ((goal = G_write), target, depth) in
    match Hashtbl.find_opt fe.fe_goals key with
    | Some a -> a
    | None ->
        let goal_expr (cfin : step_exprs) =
          match goal with
          | G_write ->
              Expr.and_ sess.sctx
                cfin.on.(Netlist.Elt.of_seg target)
                (Expr.not_ sess.sctx cfin.dirty_in.(target))
          | G_read ->
              Expr.and_ sess.sctx
                cfin.on.(Netlist.Elt.of_seg target)
                (Expr.not_ sess.sctx cfin.after.(Netlist.Elt.of_seg target))
        in
        (* Permanent fault-free goal cone first (shared skeleton), then
           this fault's gated delta. *)
        ignore (Cnf.lit sess.em (goal_expr (base_circuits_at sess depth)));
        let ge = goal_expr (circuits_at sess fe depth) in
        let a = Solver.new_activation sess.solver in
        Cnf.emit_clause ~under:a sess.em
          [ Cnf.lit ~under:fe.fe_act sess.em ge ];
        Hashtbl.add fe.fe_goals key a;
        a

  (* Decode the model of a Sat answer into the witness configuration
     sequence.  Model lookup goes through the emitter: an expression
     variable that never reached the solver is unconstrained and reads as
     false, exactly as in the one-shot encoding. *)
  let decode sess steps =
    let value_of e =
      match Expr.var_index e with
      | None -> Expr.is_true e
      | Some _ -> (
          match Cnf.find_lit sess.em e with
          | None -> false
          | Some l when l > 0 -> Solver.value sess.solver l
          | Some l -> not (Solver.value sess.solver (-l)))
    in
    List.init (steps + 1) (fun tstep ->
        let shadows =
          Array.map (Array.map value_of) sess.shadows.(tstep)
        in
        let primaries =
          Hashtbl.fold
            (fun (ts, p) e acc ->
              if ts <> tstep then acc
              else
                match Cnf.find_lit sess.em e with
                | None -> acc
                | Some l when l > 0 -> (p, Solver.value sess.solver l) :: acc
                | Some l -> (p, not (Solver.value sess.solver (-l))) :: acc)
            sess.sprimaries []
        in
        { Ftrsn_rsn.Config.shadows; primaries })

  let check_goal ?(want_witness = false) sess faults goal ~max_steps ~target =
    let fe = enc sess faults in
    let fs = fe.fe_fs in
    sess.queries <- sess.queries + 1;
    let statically_dead =
      match goal with
      | G_write -> fs.kill_write target || fs.pi_dead
      | G_read -> fs.kill_read target || fs.po_dead
    in
    if statically_dead then begin
      sess.qlog <- (0, 0, 0, false) :: sess.qlog;
      (Inaccessible, [])
    end
    else begin
      let em0, ru0 = Cnf.emitter_stats sess.em in
      let cf0, _, _ = Solver.stats sess.solver in
      let result = ref None in
      let n = ref 0 in
      while !result = None && !n <= max_steps do
        let depth = !n in
        ensure_transitions sess fe depth;
        let g = goal_act sess fe goal target depth in
        (match Solver.solve ~assumptions:[ fe.fe_act; g ] sess.solver with
        | Solver.Sat ->
            let witness = if want_witness then decode sess depth else [] in
            result := Some (Accessible depth, witness)
        | Solver.Unsat -> certify_unsat sess);
        incr n
      done;
      let em1, ru1 = Cnf.emitter_stats sess.em in
      let cf1, _, _ = Solver.stats sess.solver in
      sess.qlog <-
        (em1 - em0, ru1 - ru0, cf1 - cf0, !result <> None) :: sess.qlog;
      match !result with Some r -> r | None -> (Inaccessible, [])
    end

  let steps_for sess max_steps =
    Option.value ~default:(default_steps sess.model) max_steps

  let check_write sess ?fault ?max_steps ~target () =
    let max_steps = steps_for sess max_steps in
    fst (check_goal sess (Option.to_list fault) G_write ~max_steps ~target)

  let check_read sess ?fault ?max_steps ~target () =
    let max_steps = steps_for sess max_steps in
    fst (check_goal sess (Option.to_list fault) G_read ~max_steps ~target)

  let write_witness sess ?fault ?max_steps ~target () =
    let max_steps = steps_for sess max_steps in
    match
      check_goal ~want_witness:true sess (Option.to_list fault) G_write
        ~max_steps ~target
    with
    | Accessible n, configs -> Some (n, configs)
    | Inaccessible, _ -> None

  (* Between query batches, once enough search has accumulated since the
     last pass, let the solver simplify its clause database.  Activation
     and assumption variables are frozen inside the solver, so anything
     a later query may assume survives; the conflict gap doubles after
     every pass (capped), so a long-lived session converges to paying
     almost nothing, and a quiet session never pays at all. *)
  let ip_gap_max = 32_000
  let ip_prop_gap = 20_000_000

  let maybe_inprocess sess =
    let cf, _, pr = Solver.stats sess.solver in
    if
      cf - sess.ip_conflicts >= sess.ip_gap
      || pr - sess.ip_props >= ip_prop_gap
    then begin
      Solver.inprocess ~budget:1_000_000 sess.solver;
      let cf, _, pr = Solver.stats sess.solver in
      sess.ip_conflicts <- cf;
      sess.ip_props <- pr;
      sess.ip_gap <- min ip_gap_max (2 * sess.ip_gap)
    end

  let access_multi sess ~faults ?max_steps ~target () =
    let max_steps = steps_for sess max_steps in
    maybe_inprocess sess;
    match fst (check_goal sess faults G_write ~max_steps ~target) with
    | Inaccessible -> Inaccessible
    | Accessible w -> (
        match fst (check_goal sess faults G_read ~max_steps ~target) with
        | Inaccessible -> Inaccessible
        | Accessible r -> Accessible (max w r))

  let check_access sess ?fault ?max_steps ~target () =
    access_multi sess ~faults:(Option.to_list fault) ?max_steps ~target ()

  let check_targets_multi sess ?max_steps ?only ?fallback ~faults targets =
    let keep = match only with None -> fun _ -> true | Some p -> p in
    let skipped =
      match fallback with None -> fun _ -> Inaccessible | Some f -> f
    in
    Array.of_list
      (List.map
         (fun target ->
           if keep target then
             access_multi sess ~faults ?max_steps ~target ()
           else skipped target)
         targets)

  let check_targets sess ?fault ?max_steps ?only ?fallback targets =
    check_targets_multi sess ?max_steps ?only ?fallback
      ~faults:(Option.to_list fault) targets

  let check_faults sess ?max_steps ~target faults =
    List.map
      (fun f -> check_access sess ~fault:f ?max_steps ~target ())
      faults

  let check_targets_base sess targets =
    match sess.base_cache with
    | Some (ts, vs) when ts = targets -> vs
    | _ ->
        let vs = check_targets sess targets in
        sess.base_cache <- Some (targets, vs);
        vs

  let netlist sess = sess.model.net

  let solver sess = sess.solver

  let stats sess =
    let em, ru = Cnf.emitter_stats sess.em in
    let ss = Solver.search_stats sess.solver in
    {
      queries = sess.queries;
      clauses_emitted = em;
      nodes_reused = ru;
      conflicts = ss.Solver.st_conflicts;
      decisions = ss.Solver.st_decisions;
      propagations = ss.Solver.st_propagations;
      restarts = ss.Solver.st_restarts;
      learnt_lits = ss.Solver.st_learnt_lits;
      minimized_lits = ss.Solver.st_minimized_lits;
      reductions = ss.Solver.st_reductions;
      learnt_db = ss.Solver.st_learnt_db;
      subsumed = ss.Solver.st_subsumed;
      strengthened_lits = ss.Solver.st_strengthened_lits;
      eliminated_vars = ss.Solver.st_eliminated_vars;
      vivified_lits = ss.Solver.st_vivified_lits;
      simp_passes = ss.Solver.st_simp_passes;
      per_query =
        List.rev_map
          (fun (e, r, cf, sat) ->
            { q_emitted = e; q_reused = r; q_conflicts = cf; q_sat = sat })
          sess.qlog;
      cert =
        Option.map
          (fun cs ->
            { cert_unsat = cs.cc_unsat; cert_lemmas = cs.cc_lemmas;
              cert_inputs = cs.cc_inputs; cert_deletes = cs.cc_deletes;
              cert_time = cs.cc_time })
          sess.cert;
    }
end

(* ---- one-shot-style wrappers over the model's cached session ---- *)

let session t =
  match t.cached with
  | Some s -> s
  | None ->
      let s = Session.create t in
      t.cached <- Some s;
      s

let netlist t = t.net

let check_write t ?fault ?max_steps ~target () =
  Session.check_write (session t) ?fault ?max_steps ~target ()

let check_read t ?fault ?max_steps ~target () =
  Session.check_read (session t) ?fault ?max_steps ~target ()

let write_witness t ?fault ?max_steps ~target () =
  Session.write_witness (session t) ?fault ?max_steps ~target ()

let check_access t ?fault ?max_steps ~target () =
  Session.check_access (session t) ?fault ?max_steps ~target ()
