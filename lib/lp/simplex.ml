(* Two-phase dense primal simplex on a row-major tableau.

   On [solve] the stated problem is normalized:
   - each variable x_i is shifted by its lower bound (y_i = x_i - lo_i);
   - a finite upper bound becomes an extra <= row;
   - rows are sign-normalized to rhs >= 0, then get a slack (<=), a surplus
     plus artificial (>=) or an artificial (=).

   Phase 1 minimizes the artificial sum; phase 2 the shifted objective.
   Dantzig pricing with a Bland fallback kicks in after an iteration budget
   to rule out cycling. *)

type relop = Le | Ge | Eq

type row = { coeffs : (int * float) list; op : relop; rhs : float }

type problem = {
  nv : int;
  obj : float array;
  mutable rows : row list;
  mutable nrows : int;
  lo : float array;
  hi : float array;
}

let make ~num_vars ~objective =
  if Array.length objective <> num_vars then
    invalid_arg "Simplex.make: objective length mismatch";
  {
    nv = num_vars;
    obj = Array.copy objective;
    rows = [];
    nrows = 0;
    lo = Array.make num_vars 0.0;
    hi = Array.make num_vars infinity;
  }

let add_constraint p ~coeffs ~op ~rhs =
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= p.nv then
        invalid_arg "Simplex.add_constraint: variable out of range")
    coeffs;
  (* Sum duplicates for a well-formed row. *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (i, a) ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl i) in
      Hashtbl.replace tbl i (prev +. a))
    coeffs;
  let coeffs = Hashtbl.fold (fun i a acc -> (i, a) :: acc) tbl [] in
  p.rows <- { coeffs; op; rhs } :: p.rows;
  p.nrows <- p.nrows + 1

let set_bounds p i ~lo ~hi =
  if i < 0 || i >= p.nv then invalid_arg "Simplex.set_bounds: bad variable";
  if lo < 0.0 || lo > hi then invalid_arg "Simplex.set_bounds: bad bounds";
  p.lo.(i) <- lo;
  p.hi.(i) <- hi

let num_vars p = p.nv
let num_constraints p = p.nrows

type outcome =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

(* A normalized row in tableau construction: dense coeffs over the original
   variables, op, rhs (>= 0 after sign normalization). *)
type norm_row = { a : float array; mutable nop : relop; mutable b : float }

exception Unbounded_exn

let solve p =
  let nv = p.nv in
  (* Shifted rows: substitute x = lo + y. *)
  let base_rows =
    List.rev_map
      (fun r ->
        let a = Array.make nv 0.0 in
        List.iter (fun (i, c) -> a.(i) <- a.(i) +. c) r.coeffs;
        let shift =
          List.fold_left (fun acc (i, c) -> acc +. (c *. p.lo.(i))) 0.0 r.coeffs
        in
        { a; nop = r.op; b = r.rhs -. shift })
      p.rows
  in
  (* Upper-bound rows: y_i <= hi - lo. *)
  let ub_rows =
    List.concat
      (List.init nv (fun i ->
           if p.hi.(i) < infinity then begin
             let a = Array.make nv 0.0 in
             a.(i) <- 1.0;
             [ { a; nop = Le; b = p.hi.(i) -. p.lo.(i) } ]
           end
           else []))
  in
  let rows = base_rows @ ub_rows in
  (* Quick infeasibility: bounds crossing was rejected at set_bounds, but an
     upper-bound row with negative rhs can arise only from lo > hi. *)
  List.iter
    (fun r ->
      if r.b < 0.0 then begin
        (* Normalize to rhs >= 0. *)
        Array.iteri (fun j v -> r.a.(j) <- -.v) r.a;
        r.b <- -.r.b;
        r.nop <- (match r.nop with Le -> Ge | Ge -> Le | Eq -> Eq)
      end)
    rows;
  let m = List.length rows in
  (* Column layout: [0, nv) structural, then one slack/surplus per Le/Ge
     row, then one artificial per Ge/Eq row. *)
  let n_slack =
    List.fold_left
      (fun acc r -> match r.nop with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let n_art =
    List.fold_left
      (fun acc r -> match r.nop with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let ncols = nv + n_slack + n_art in
  let t = Array.make_matrix m (ncols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let art_cols = ref [] in
  let slack_cursor = ref nv in
  let art_cursor = ref (nv + n_slack) in
  List.iteri
    (fun i r ->
      Array.blit r.a 0 t.(i) 0 nv;
      t.(i).(ncols) <- r.b;
      (match r.nop with
      | Le ->
          t.(i).(!slack_cursor) <- 1.0;
          basis.(i) <- !slack_cursor;
          incr slack_cursor
      | Ge ->
          t.(i).(!slack_cursor) <- -1.0;
          incr slack_cursor;
          t.(i).(!art_cursor) <- 1.0;
          basis.(i) <- !art_cursor;
          art_cols := !art_cursor :: !art_cols;
          incr art_cursor
      | Eq ->
          t.(i).(!art_cursor) <- 1.0;
          basis.(i) <- !art_cursor;
          art_cols := !art_cursor :: !art_cols;
          incr art_cursor))
    rows;
  let is_art = Array.make ncols false in
  List.iter (fun c -> is_art.(c) <- true) !art_cols;

  let pivot ri cj =
    let prow = t.(ri) in
    let pv = prow.(cj) in
    for j = 0 to ncols do
      prow.(j) <- prow.(j) /. pv
    done;
    for i = 0 to m - 1 do
      if i <> ri then begin
        let f = t.(i).(cj) in
        if abs_float f > 0.0 then
          for j = 0 to ncols do
            t.(i).(j) <- t.(i).(j) -. (f *. prow.(j))
          done
      end
    done;
    basis.(ri) <- cj
  in

  (* Run simplex iterations minimizing objective [c] over allowed columns.
     Returns the objective value.  Raises Unbounded_exn. *)
  let run_phase c allowed =
    (* Reduced costs: z_j = c_j - c_B B^-1 A_j, computed directly from the
       tableau since rows are B^-1 A. *)
    let reduced = Array.make ncols 0.0 in
    let obj_val () =
      let v = ref 0.0 in
      for i = 0 to m - 1 do
        v := !v +. (c.(basis.(i)) *. t.(i).(ncols))
      done;
      !v
    in
    let recompute () =
      for j = 0 to ncols - 1 do
        if allowed.(j) then begin
          let z = ref c.(j) in
          for i = 0 to m - 1 do
            if abs_float t.(i).(j) > 0.0 then
              z := !z -. (c.(basis.(i)) *. t.(i).(j))
          done;
          reduced.(j) <- !z
        end
        else reduced.(j) <- infinity
      done
    in
    let iterations = ref 0 in
    let budget = 50 * (m + ncols + 10) in
    let continue = ref true in
    while !continue do
      recompute ();
      incr iterations;
      let bland = !iterations > budget in
      (* Entering column. *)
      let enter = ref (-1) in
      if bland then begin
        (try
           for j = 0 to ncols - 1 do
             if allowed.(j) && reduced.(j) < -.eps then begin
               enter := j;
               raise Exit
             end
           done
         with Exit -> ())
      end
      else begin
        let best = ref (-.eps) in
        for j = 0 to ncols - 1 do
          if allowed.(j) && reduced.(j) < !best then begin
            best := reduced.(j);
            enter := j
          end
        done
      end;
      if !enter < 0 then continue := false
      else begin
        (* Ratio test (Bland tie-break on basis variable index). *)
        let leave = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to m - 1 do
          let aij = t.(i).(!enter) in
          if aij > eps then begin
            let ratio = t.(i).(ncols) /. aij in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && (!leave < 0 || basis.(i) < basis.(!leave)))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then raise Unbounded_exn;
        pivot !leave !enter
      end
    done;
    obj_val ()
  in

  try
    (* Phase 1. *)
    let c1 = Array.make ncols 0.0 in
    List.iter (fun j -> c1.(j) <- 1.0) !art_cols;
    let allowed1 = Array.make ncols true in
    let v1 = if !art_cols = [] then 0.0 else run_phase c1 allowed1 in
    if v1 > 1e-7 then Infeasible
    else begin
      (* Drive remaining artificials out of the basis where possible. *)
      for i = 0 to m - 1 do
        if is_art.(basis.(i)) then begin
          let found = ref (-1) in
          for j = 0 to ncols - 1 do
            if !found < 0 && (not is_art.(j)) && abs_float t.(i).(j) > eps
            then found := j
          done;
          if !found >= 0 then pivot i !found
          (* else: the row is redundant (all-zero over structurals);
             the artificial stays basic at value zero, harmless if barred
             from re-entering. *)
        end
      done;
      (* Phase 2: original (shifted) objective, artificials barred. *)
      let c2 = Array.make ncols 0.0 in
      Array.blit p.obj 0 c2 0 nv;
      let allowed2 = Array.init ncols (fun j -> not is_art.(j)) in
      let v2 = run_phase c2 allowed2 in
      let x = Array.copy p.lo in
      for i = 0 to m - 1 do
        if basis.(i) < nv then
          x.(basis.(i)) <- x.(basis.(i)) +. t.(i).(ncols)
      done;
      let shift_obj =
        let s = ref 0.0 in
        for i = 0 to nv - 1 do
          s := !s +. (p.obj.(i) *. p.lo.(i))
        done;
        !s
      in
      Optimal { obj = v2 +. shift_obj; x }
    end
  with Unbounded_exn -> Unbounded
