(** Linear programming by the two-phase dense primal simplex method.

    Problems are stated as: minimize [c^T x] subject to linear constraints
    and per-variable bounds [lo <= x_i <= hi] with [lo >= 0].  This is the
    relaxation engine of the 0/1 ILP used for connectivity augmentation
    (paper §III-D); sizes there are small enough for a dense tableau. *)

type relop = Le | Ge | Eq

type problem

val make : num_vars:int -> objective:float array -> problem
(** [make ~num_vars ~objective] is a minimization problem with the given
    objective; all variables start with bounds [0, +infinity].
    @raise Invalid_argument if lengths disagree. *)

val add_constraint :
  problem -> coeffs:(int * float) list -> op:relop -> rhs:float -> unit
(** Adds the constraint [sum coeffs . x  op  rhs].  Duplicate variable
    entries in [coeffs] are summed. *)

val set_bounds : problem -> int -> lo:float -> hi:float -> unit
(** Sets the bounds of a variable.  [hi] may be [infinity]; [lo] must be
    non-negative and at most [hi]. *)

val num_vars : problem -> int
val num_constraints : problem -> int

type outcome =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** Solves the problem.  The returned [x] has one entry per variable of the
    original problem.  The problem record is not consumed and may be
    extended with further constraints and re-solved (used by the lazy-cut
    loop of the ILP). *)
