(* Tests for the boolean expression layer and the CDCL SAT solver,
   including a qcheck cross-validation against brute-force enumeration. *)

module Expr = Ftrsn_boolexpr.Expr
module Solver = Ftrsn_sat.Solver

let check = Alcotest.check
let bool_t = Alcotest.bool

let is_sat = function Solver.Sat -> true | Solver.Unsat -> false

let test_trivial_sat () =
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  check bool_t "unit clause" true (is_sat (Solver.solve s));
  check bool_t "value" true (Solver.value s 1)

let test_trivial_unsat () =
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ -1 ];
  check bool_t "contradiction" false (is_sat (Solver.solve s))

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  check bool_t "empty clause" false (is_sat (Solver.solve s))

let test_no_clauses () =
  let s = Solver.create () in
  Solver.ensure_vars s 3;
  check bool_t "vacuous" true (is_sat (Solver.solve s))

let test_implication_chain () =
  let s = Solver.create () in
  let n = 50 in
  for i = 1 to n - 1 do
    Solver.add_clause s [ -i; i + 1 ]
  done;
  Solver.add_clause s [ 1 ];
  check bool_t "chain sat" true (is_sat (Solver.solve s));
  for i = 1 to n do
    check bool_t (Printf.sprintf "var %d forced" i) true (Solver.value s i)
  done;
  Solver.add_clause s [ -n ];
  check bool_t "chain + negation unsat" false (is_sat (Solver.solve s))

let test_xor_constraints () =
  (* x xor y, y xor z, x xor z is unsat (parity argument). *)
  let s = Solver.create () in
  let xor a b =
    Solver.add_clause s [ a; b ];
    Solver.add_clause s [ -a; -b ]
  in
  xor 1 2;
  xor 2 3;
  xor 1 3;
  check bool_t "odd xor cycle" false (is_sat (Solver.solve s))

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: var p*2+h+1 means pigeon p in hole h. *)
  let s = Solver.create () in
  let v p h = (p * 2) + h + 1 in
  for p = 0 to 2 do
    Solver.add_clause s [ v p 0; v p 1 ]
  done;
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        Solver.add_clause s [ -(v p1 h); -(v p2 h) ]
      done
    done
  done;
  check bool_t "PHP(3,2) unsat" false (is_sat (Solver.solve s))

let test_pigeonhole_4_3 () =
  let s = Solver.create () in
  let v p h = (p * 3) + h + 1 in
  for p = 0 to 3 do
    Solver.add_clause s [ v p 0; v p 1; v p 2 ]
  done;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        Solver.add_clause s [ -(v p1 h); -(v p2 h) ]
      done
    done
  done;
  check bool_t "PHP(4,3) unsat" false (is_sat (Solver.solve s))

let test_assumptions () =
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  check bool_t "sat with assumption -1" true
    (is_sat (Solver.solve ~assumptions:[ -1 ] s));
  check bool_t "forced 2" true (Solver.value s 2);
  check bool_t "unsat with both negative" false
    (is_sat (Solver.solve ~assumptions:[ -1; -2 ] s));
  check bool_t "solver usable after assumption unsat" true
    (is_sat (Solver.solve s))

let test_incremental () =
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  check bool_t "first solve" true (is_sat (Solver.solve s));
  Solver.add_clause s [ -1 ];
  check bool_t "still sat" true (is_sat (Solver.solve s));
  check bool_t "2 forced now" true (Solver.value s 2);
  Solver.add_clause s [ -2 ];
  check bool_t "now unsat" false (is_sat (Solver.solve s));
  check bool_t "stays unsat" false (is_sat (Solver.solve s))

let test_model_satisfies () =
  (* A moderately constrained instance; check the model satisfies every
     clause. *)
  let clauses =
    [ [ 1; 2; -3 ]; [ -1; 3 ]; [ 2; 3; 4 ]; [ -4; -2 ]; [ 1; -2; 3; -4 ]; [ -3; 4; 5 ] ]
  in
  let s = Solver.create () in
  List.iter (Solver.add_clause s) clauses;
  check bool_t "sat" true (is_sat (Solver.solve s));
  List.iter
    (fun c ->
      let sat_clause =
        List.exists
          (fun l ->
            let v = Solver.value s (abs l) in
            if l > 0 then v else not v)
          c
      in
      check bool_t "clause satisfied" true sat_clause)
    clauses

let test_failed_assumptions () =
  let s = Solver.create () in
  Solver.add_clause s [ -1; 2 ];
  Solver.add_clause s [ -2; 3 ];
  (* Assuming 1 and -3 contradicts the implication chain; 5 is idle. *)
  check bool_t "unsat under assumptions" false
    (is_sat (Solver.solve ~assumptions:[ 1; -3; 5 ] s));
  let failed = Solver.failed_assumptions s in
  check bool_t "1 failed" true (List.mem 1 failed);
  check bool_t "-3 failed" true (List.mem (-3) failed);
  check bool_t "idle assumption not blamed" false (List.mem 5 failed);
  check bool_t "sat again without them" true
    (is_sat (Solver.solve ~assumptions:[ 1; 3 ] s));
  check bool_t "failed cleared on sat" true
    (Solver.failed_assumptions s = [])

let test_activation_groups () =
  let s = Solver.create () in
  let a = Solver.new_activation s and b = Solver.new_activation s in
  let x = Solver.new_var s in
  Solver.add_clause_under s a [ x ];
  Solver.add_clause_under s b [ -x ];
  (* Each group alone is consistent; both together clash on x. *)
  check bool_t "group a alone" true (is_sat (Solver.solve ~assumptions:[ a ] s));
  check bool_t "x under a" true (Solver.value s x);
  check bool_t "group b alone" true (is_sat (Solver.solve ~assumptions:[ b ] s));
  check bool_t "!x under b" false (Solver.value s x);
  check bool_t "groups clash" false
    (is_sat (Solver.solve ~assumptions:[ a; b ] s));
  check bool_t "no groups, no constraint" true (is_sat (Solver.solve s))

let test_retire_activation () =
  let s = Solver.create () in
  let a = Solver.new_activation s in
  let x = Solver.new_var s in
  Solver.add_clause_under s a [ x ];
  check bool_t "active" true (is_sat (Solver.solve ~assumptions:[ a ] s));
  Solver.retire_activation s a;
  check bool_t "solver still sat" true (is_sat (Solver.solve s));
  check bool_t "assuming retired activation is unsat" false
    (is_sat (Solver.solve ~assumptions:[ a ] s));
  check bool_t "retired activation blamed" true
    (List.mem a (Solver.failed_assumptions s));
  (* x is no longer constrained: it can be assumed either way. *)
  check bool_t "x free (true)" true
    (is_sat (Solver.solve ~assumptions:[ x ] s));
  check bool_t "x free (false)" true
    (is_sat (Solver.solve ~assumptions:[ -x ] s))

let test_simplify_preserves () =
  (* Root-level facts let simplify sweep satisfied clauses; verdicts and
     models must not change. *)
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  Solver.add_clause s [ -1; 3 ];
  Solver.add_clause s [ 1 ];
  check bool_t "sat before" true (is_sat (Solver.solve s));
  Solver.simplify s;
  check bool_t "sat after simplify" true (is_sat (Solver.solve s));
  check bool_t "1 still forced" true (Solver.value s 1);
  check bool_t "3 still forced" true (Solver.value s 3);
  Solver.add_clause s [ -3 ];
  check bool_t "contradiction still detected" false (is_sat (Solver.solve s))

(* --- boolexpr tests --- *)

let test_expr_fold_constants () =
  let ctx = Expr.create () in
  let x = Expr.fresh_var ctx in
  check bool_t "x & true = x" true
    (Expr.equal (Expr.and_ ctx x (Expr.etrue ctx)) x);
  check bool_t "x | false = x" true
    (Expr.equal (Expr.or_ ctx x (Expr.efalse ctx)) x);
  check bool_t "x & false = false" true
    (Expr.is_false (Expr.and_ ctx x (Expr.efalse ctx)));
  check bool_t "x & !x = false" true
    (Expr.is_false (Expr.and_ ctx x (Expr.not_ ctx x)));
  check bool_t "x | !x = true" true
    (Expr.is_true (Expr.or_ ctx x (Expr.not_ ctx x)));
  check bool_t "!!x = x" true (Expr.equal (Expr.not_ ctx (Expr.not_ ctx x)) x)

let test_expr_hash_consing () =
  let ctx = Expr.create () in
  let x = Expr.var ctx 0 and y = Expr.var ctx 1 in
  let a = Expr.and_ ctx x y and b = Expr.and_ ctx y x in
  check bool_t "commutative sharing" true (Expr.equal a b)

let test_expr_eval () =
  let ctx = Expr.create () in
  let x = Expr.var ctx 0 and y = Expr.var ctx 1 and z = Expr.var ctx 2 in
  let e = Expr.ite ctx x (Expr.xor_ ctx y z) (Expr.iff_ ctx y z) in
  let eval vx vy vz =
    Expr.eval (fun i -> [| vx; vy; vz |].(i)) e
  in
  check bool_t "ite true branch" true (eval true true false);
  check bool_t "ite true branch both" false (eval true true true);
  check bool_t "ite false branch" true (eval false true true);
  check bool_t "ite false branch diff" false (eval false true false)

let test_tseitin_roundtrip () =
  (* CNF of an expression is satisfiable exactly when the expression is,
     and SAT models evaluate the expression to true. *)
  let ctx = Expr.create () in
  let x = Expr.var ctx 0 and y = Expr.var ctx 1 and z = Expr.var ctx 2 in
  let e =
    Expr.and_ ctx (Expr.or_ ctx x (Expr.not_ ctx y)) (Expr.xor_ ctx y z)
  in
  let cnf = Expr.Cnf.of_exprs ctx [ e ] in
  let s = Solver.create () in
  Solver.ensure_vars s cnf.Expr.Cnf.num_sat_vars;
  List.iter (Solver.add_clause s) cnf.Expr.Cnf.clauses;
  check bool_t "sat" true (is_sat (Solver.solve s));
  let env i = Solver.value s (i + 1) in
  check bool_t "model satisfies expression" true (Expr.eval env e)

let test_tseitin_unsat () =
  let ctx = Expr.create () in
  let x = Expr.var ctx 0 in
  let y = Expr.fresh_var ctx in
  (* (x | y) & !x & !y *)
  let e =
    Expr.and_list ctx
      [ Expr.or_ ctx x y; Expr.not_ ctx x; Expr.not_ ctx y ]
  in
  check bool_t "constant folding already catches it or CNF is unsat" true
    (Expr.is_false e
    ||
    let cnf = Expr.Cnf.of_exprs ctx [ e ] in
    let s = Solver.create () in
    List.iter (Solver.add_clause s) cnf.Expr.Cnf.clauses;
    not (is_sat (Solver.solve s)))

let test_streaming_emitter () =
  (* The streaming emitter gives the same verdicts as one-shot CNF, and a
     second emission of a shared cone emits no new clauses. *)
  let ctx = Expr.create () in
  let x = Expr.fresh_var ctx and y = Expr.fresh_var ctx in
  let shared = Expr.xor_ ctx x y in
  let s = Solver.create () in
  let em =
    Expr.Cnf.make_emitter
      {
        Expr.Cnf.fresh_var = (fun () -> Solver.new_var s);
        add_clause = (fun _ c -> Solver.add_clause s c);
      }
  in
  Expr.Cnf.emit em [ shared ];
  let emitted1, _ = Expr.Cnf.emitter_stats em in
  check bool_t "first emission emits" true (emitted1 > 0);
  check bool_t "xor satisfiable" true (is_sat (Solver.solve s));
  let lx = Option.get (Expr.Cnf.find_lit em x) in
  let ly = Option.get (Expr.Cnf.find_lit em y) in
  check bool_t "model satisfies xor" true
    (Solver.value s (abs lx) <> Solver.value s (abs ly));
  (* Re-asserting the same expression: pure memo hits, zero new clauses. *)
  Expr.Cnf.emit em [ shared ];
  let emitted2, reused2 = Expr.Cnf.emitter_stats em in
  check bool_t "re-emission emits nothing" true (emitted2 = emitted1);
  check bool_t "re-emission is a memo hit" true (reused2 > 0);
  (* A superexpression reuses the shared cone: only the new node emits. *)
  let z = Expr.fresh_var ctx in
  Expr.Cnf.emit em [ Expr.and_ ctx shared z ];
  let emitted3, _ = Expr.Cnf.emitter_stats em in
  check bool_t "superexpression reuses cone" true
    (emitted3 - emitted2 <= 5);
  check bool_t "still satisfiable" true (is_sat (Solver.solve s));
  let lz = Option.get (Expr.Cnf.find_lit em z) in
  check bool_t "z forced by conjunction" true (Solver.value s (abs lz) = (lz > 0))

let test_emitter_under_activations () =
  (* Streamed cones gated by activation literals: the emitter encodes the
     definition clauses once; contradictory groups only clash when both
     are assumed. *)
  let ctx = Expr.create () in
  let x = Expr.fresh_var ctx and y = Expr.fresh_var ctx in
  let e = Expr.and_ ctx x y in
  let s = Solver.create () in
  let em =
    Expr.Cnf.make_emitter
      {
        Expr.Cnf.fresh_var = (fun () -> Solver.new_var s);
        add_clause = (fun _ c -> Solver.add_clause s c);
      }
  in
  let a = Solver.new_activation s and b = Solver.new_activation s in
  let le = Expr.Cnf.lit em e in
  Expr.Cnf.emit_clause em [ -a; le ];
  Expr.Cnf.emit_clause em [ -b; -le ];
  check bool_t "a: conjunction holds" true
    (is_sat (Solver.solve ~assumptions:[ a ] s));
  let lx = Option.get (Expr.Cnf.find_lit em x) in
  check bool_t "a forces x" true (Solver.value s (abs lx) = (lx > 0));
  check bool_t "b alone fine" true (is_sat (Solver.solve ~assumptions:[ b ] s));
  check bool_t "a and b clash" false
    (is_sat (Solver.solve ~assumptions:[ a; b ] s))

(* --- DIMACS --- *)

module Dimacs = Ftrsn_sat.Dimacs

let test_dimacs_roundtrip () =
  let cnf =
    { Dimacs.num_vars = 4; clauses = [ [ 1; -2 ]; [ 3; 4; -1 ]; [ -4 ] ] }
  in
  match Dimacs.parse (Dimacs.print cnf) with
  | Error e -> Alcotest.fail e
  | Ok cnf' ->
      check bool_t "round trip" true (cnf = cnf');
      check bool_t "satisfiable" true (Dimacs.solve cnf = Solver.Sat)

let test_dimacs_parse () =
  let text = "c comment\np cnf 2 2\n1 2 0\n-1 -2 0\n" in
  (match Dimacs.parse text with
  | Ok cnf ->
      check bool_t "2 vars" true (cnf.Dimacs.num_vars = 2);
      check bool_t "2 clauses" true (List.length cnf.Dimacs.clauses = 2)
  | Error e -> Alcotest.fail e);
  check bool_t "garbage rejected" true
    (match Dimacs.parse "p cnf x y" with Error _ -> true | Ok _ -> false);
  check bool_t "unterminated clause rejected" true
    (match Dimacs.parse "p cnf 2 1\n1 2" with Error _ -> true | Ok _ -> false);
  check bool_t "out-of-range literal rejected" true
    (match Dimacs.parse "p cnf 1 1\n2 0" with Error _ -> true | Ok _ -> false)

let test_dimacs_unsat () =
  let cnf = { Dimacs.num_vars = 1; clauses = [ [ 1 ]; [ -1 ] ] } in
  check bool_t "unsat" true (Dimacs.solve cnf = Solver.Unsat)

(* Brute-force satisfiability of a clause list over n variables. *)
let brute_force_sat n clauses =
  let rec go mask =
    if mask >= 1 lsl n then false
    else
      let ok =
        List.for_all
          (List.exists (fun l ->
               let v = mask land (1 lsl (abs l - 1)) <> 0 in
               if l > 0 then v else not v))
          clauses
      in
      ok || go (mask + 1)
  in
  go 0

let prop_random_3sat =
  QCheck.Test.make ~name:"CDCL agrees with brute force on random 3-SAT"
    ~count:150
    QCheck.(pair (int_range 3 10) (int_range 0 100_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let m = 2 + Random.State.int st (4 * n) in
      let clauses =
        List.init m (fun _ ->
            List.init 3 (fun _ ->
                let v = 1 + Random.State.int st n in
                if Random.State.bool st then v else -v))
      in
      let s = Solver.create () in
      Solver.ensure_vars s n;
      List.iter (Solver.add_clause s) clauses;
      is_sat (Solver.solve s) = brute_force_sat n clauses)

let prop_model_is_model =
  QCheck.Test.make ~name:"SAT models satisfy all clauses" ~count:150
    QCheck.(pair (int_range 3 12) (int_range 0 100_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let m = 2 + Random.State.int st (3 * n) in
      let clauses =
        List.init m (fun _ ->
            List.init (1 + Random.State.int st 3) (fun _ ->
                let v = 1 + Random.State.int st n in
                if Random.State.bool st then v else -v))
      in
      let s = Solver.create () in
      Solver.ensure_vars s n;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Unsat -> true
      | Solver.Sat ->
          List.for_all
            (List.exists (fun l ->
                 let v = Solver.value s (abs l) in
                 if l > 0 then v else not v))
            clauses)

let suite =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "no clauses" `Quick test_no_clauses;
    Alcotest.test_case "implication chain" `Quick test_implication_chain;
    Alcotest.test_case "xor parity unsat" `Quick test_xor_constraints;
    Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
    Alcotest.test_case "pigeonhole 4/3" `Quick test_pigeonhole_4_3;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "incremental solving" `Quick test_incremental;
    Alcotest.test_case "model satisfies clauses" `Quick test_model_satisfies;
    Alcotest.test_case "failed assumptions" `Quick test_failed_assumptions;
    Alcotest.test_case "activation groups" `Quick test_activation_groups;
    Alcotest.test_case "retire activation" `Quick test_retire_activation;
    Alcotest.test_case "simplify preserves" `Quick test_simplify_preserves;
    Alcotest.test_case "expr constant folding" `Quick test_expr_fold_constants;
    Alcotest.test_case "expr hash consing" `Quick test_expr_hash_consing;
    Alcotest.test_case "expr evaluation" `Quick test_expr_eval;
    Alcotest.test_case "tseitin round trip" `Quick test_tseitin_roundtrip;
    Alcotest.test_case "tseitin unsat" `Quick test_tseitin_unsat;
    Alcotest.test_case "streaming emitter" `Quick test_streaming_emitter;
    Alcotest.test_case "emitter under activations" `Quick
      test_emitter_under_activations;
    Alcotest.test_case "dimacs round trip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs parsing" `Quick test_dimacs_parse;
    Alcotest.test_case "dimacs unsat" `Quick test_dimacs_unsat;
    QCheck_alcotest.to_alcotest prop_random_3sat;
    QCheck_alcotest.to_alcotest prop_model_is_model;
  ]
